#!/bin/sh
# Campaign-service smoke: start the daemon on an auto-assigned port,
# submit a 2-shard job, stream its live SSE events and replay-validate
# them, re-submit the identical job and assert it is served from the
# content-addressed store (done immediately, byte-identical artifacts),
# then fetch the served dashboard and cross-run history pages.
#
# Uses the already-built CLI binary directly (no dune locking while the
# daemon runs).  Override CLI / ROOT from the environment if needed.
set -e

CLI=${CLI:-./_build/default/bin/ferrum_cli.exe}
ROOT=${ROOT:-/tmp/ferrum_serve_smoke}

[ -x "$CLI" ] || { echo "serve-smoke: $CLI not built"; exit 1; }

rm -rf "$ROOT"
"$CLI" serve --root "$ROOT" --port 0 2>"$ROOT.log" &
DAEMON=$!
cleanup() {
  [ -f "$ROOT/pid" ] && kill "$(cat "$ROOT/pid")" 2>/dev/null
  kill "$DAEMON" 2>/dev/null
  true
}
trap cleanup EXIT

# Wait for the daemon to record its auto-assigned port.
i=0
while [ ! -f "$ROOT/port" ] && [ $i -lt 100 ]; do i=$((i+1)); sleep 0.1; done
[ -f "$ROOT/port" ] || { echo "serve-smoke: daemon never bound"; cat "$ROOT.log"; exit 1; }
PORT=$(cat "$ROOT/port")

# Fresh submission: accepted and queued, not cached.
"$CLI" submit kmeans -p ferrum --samples 24 --shards 2 --port "$PORT" > "$ROOT.submit1"
grep -q '"cached":0' "$ROOT.submit1"

# Live SSE stream: the reassembled records must replay-validate as a
# ferrum.events.v1 log (`ferrum metrics` runs Events.replay on it).
timeout 300 "$CLI" watch 1 --port "$PORT" > "$ROOT.watch"
{ echo '{"schema":"ferrum.events.v1","version":1}'; cat "$ROOT.watch"; } > "$ROOT.events"
"$CLI" metrics "$ROOT.events" > /dev/null

DIGEST=$(sed -n 's/.*"digest":"\([0-9a-f]\{32\}\)".*/\1/p' "$ROOT.submit1" | head -1)

# Stored artifacts validate against their schemas.
"$CLI" fetch "/runs/$DIGEST/records" --port "$PORT" -o "$ROOT.rec1"
"$CLI" metrics "$ROOT.rec1" > /dev/null
"$CLI" fetch "/runs/$DIGEST/vulnmap" --port "$PORT" -o "$ROOT.vmap"
"$CLI" metrics "$ROOT.vmap" > /dev/null

# Identical re-submission: a cache hit, answered done immediately.
"$CLI" submit kmeans -p ferrum --samples 24 --shards 2 --port "$PORT" > "$ROOT.submit2"
grep -q '"cached":1' "$ROOT.submit2"
grep -q '"state":"done"' "$ROOT.submit2"
grep -q "\"digest\":\"$DIGEST\"" "$ROOT.submit2"

# The cache hit serves the stored bytes unchanged.
"$CLI" fetch "/runs/$DIGEST/records" --port "$PORT" -o "$ROOT.rec2"
cmp "$ROOT.rec1" "$ROOT.rec2"

# Queue state and the run index are schema-valid JSONL too.
"$CLI" fetch /runs --port "$PORT" -o "$ROOT.runs"
"$CLI" metrics "$ROOT.runs" > /dev/null
"$CLI" fetch /metricz --port "$PORT" -o "$ROOT.jobs"
"$CLI" metrics "$ROOT.jobs" > /dev/null

# Served pages: the per-run dashboard and the cross-run history.
"$CLI" fetch "/runs/$DIGEST/dashboard" --port "$PORT" -o "$ROOT.dashboard.html"
grep -q "<html" "$ROOT.dashboard.html"
"$CLI" fetch /history --port "$PORT" -o "$ROOT.history.html"
SHORT=$(echo "$DIGEST" | cut -c1-12)
grep -q "$SHORT" "$ROOT.history.html"

echo "serve-smoke: daemon, live SSE replay, cache hit and served artifacts OK"
