(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index) and runs
   bechamel micro-benchmarks of the toolchain itself.

     dune exec bench/main.exe                 # full report (E1-E5)
     dune exec bench/main.exe -- fig10        # one artefact
     dune exec bench/main.exe -- ablation     # E6/E7/E10 + cost sensitivity
     dune exec bench/main.exe -- allsites     # E8
     dune exec bench/main.exe -- peephole     # E9
     dune exec bench/main.exe -- multibit     # E11
     dune exec bench/main.exe -- selective    # E12
     dune exec bench/main.exe -- lint         # E14
     dune exec bench/main.exe -- micro        # bechamel micro-benches
     dune exec bench/main.exe -- all --samples 1000 --csv out.csv  # paper-scale

   The default sample count (400 per configuration) keeps the default
   run under a couple of minutes; the paper used 1000. *)

module R = Ferrum_report
module Experiments = R.Experiments
module Render = R.Render
module Ablation = R.Ablation

let usage () =
  print_endline
    "usage: main.exe [table1|table2|fig10|fig11|exectime|outcomes|summary|\n\
    \                 ablation|allsites|multibit|peephole|selective|vulnmap|\n\
    \                 adaptive|perf|lint|micro|all]\n\
    \                [--samples N] [--seed N] [--shards N] [--csv PATH]\n\
    \                [--metrics PATH] [--vulnmap DIR] [--smoke]";
  exit 2

type cmd =
  | Table1 | Table2 | Fig10 | Fig11 | Exectime | Outcomes | Summary
  | AblationCmd | Allsites | Multibit | PeepholeCmd | Selective | VulnmapCmd
  | AdaptiveCmd | LintCmd | Micro | Perf | All
  | Default

let parse_args () =
  let cmd = ref Default in
  let samples = ref 400 in
  let seed = ref 2024L in
  let shards = ref 1 in
  let csv = ref None in
  let metrics = ref None in
  let vulnmap_dir = ref None in
  let smoke = ref false in
  let rec go = function
    | [] -> ()
    | "--samples" :: n :: rest ->
      samples := int_of_string n;
      go rest
    | "--seed" :: n :: rest ->
      seed := Int64.of_string n;
      go rest
    | "--shards" :: n :: rest ->
      shards := int_of_string n;
      go rest
    | "--csv" :: path :: rest ->
      csv := Some path;
      go rest
    | "--metrics" :: path :: rest ->
      metrics := Some path;
      go rest
    | "--vulnmap" :: dir :: rest ->
      vulnmap_dir := Some dir;
      go rest
    | "--smoke" :: rest ->
      smoke := true;
      go rest
    | arg :: rest ->
      (cmd :=
         match arg with
         | "table1" -> Table1
         | "table2" -> Table2
         | "fig10" -> Fig10
         | "fig11" -> Fig11
         | "exectime" -> Exectime
         | "outcomes" -> Outcomes
         | "summary" -> Summary
         | "ablation" -> AblationCmd
         | "allsites" -> Allsites
         | "multibit" -> Multibit
         | "peephole" -> PeepholeCmd
         | "selective" -> Selective
         | "vulnmap" -> VulnmapCmd
         | "adaptive" -> AdaptiveCmd
         | "lint" -> LintCmd
         | "micro" -> Micro
         | "perf" -> Perf
         | "all" -> All
         | _ -> usage ());
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (!cmd, !samples, !seed, !shards, !csv, !metrics, !vulnmap_dir, !smoke)

(* ------------------------------------------------------------------ *)
(* Detection-latency comparison across techniques (vulnmap campaigns). *)
(* ------------------------------------------------------------------ *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics

(* Traced campaigns for every technique over the whole catalogue: how
   fast does each checking scheme catch the faults it catches, and how
   much escapes?  With [dir] set, each per-benchmark map is exported as
   DIR/<bench>.<technique>.jsonl (ferrum.vulnmap.v1). *)
let vulnmap_compare ~samples ~seed ~shards dir =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  let techniques = Ferrum_eddi.Technique.all in
  let rows =
    List.map
      (fun tech ->
        let latencies = ref [] in
        let counts = ref F.zero_counts in
        List.iter
          (fun (entry : Ferrum_workloads.Catalog.entry) ->
            let m = entry.build () in
            let p = (Ferrum_eddi.Pipeline.protect tech m).program in
            let img = Ferrum_machine.Machine.load p in
            (* shards > 1 routes through the fork pool; the shard/merge
               discipline makes the map identical to the sequential one. *)
            let v =
              if shards <= 1 then F.vulnmap_campaign ~seed ~samples img
              else
                let target = F.prepare img in
                Option.get
                  (Ferrum_campaign.Runner.run
                     ~mode:Ferrum_campaign.Runner.Traced ~shards ~seed
                     ~samples target)
                    .Ferrum_campaign.Runner.vulnmap
            in
            latencies := List.rev_append v.F.v_latencies !latencies;
            counts :=
              {
                F.samples = (!counts).F.samples + v.F.v_counts.F.samples;
                benign = (!counts).F.benign + v.F.v_counts.F.benign;
                sdc = (!counts).F.sdc + v.F.v_counts.F.sdc;
                detected = (!counts).F.detected + v.F.v_counts.F.detected;
                crash = (!counts).F.crash + v.F.v_counts.F.crash;
                timeout = (!counts).F.timeout + v.F.v_counts.F.timeout;
              };
            match dir with
            | None -> ()
            | Some d ->
              let path =
                Filename.concat d
                  (Fmt.str "%s.%s.jsonl" entry.name
                     (Ferrum_eddi.Technique.short_name tech))
              in
              let sink = Metrics.file_sink path in
              Metrics.emit sink
                (Metrics.header ~kind:F.vulnmap_kind
                   [
                     ("benchmark", Json.Str entry.name);
                     ("technique",
                      Json.Str (Ferrum_eddi.Technique.short_name tech));
                     ("samples", Json.Int samples);
                     ("seed", Json.Str (Int64.to_string seed));
                     ("scope", Json.Str "original");
                     ("fault_bits", Json.Int 1);
                   ]);
              List.iter (Metrics.emit sink) (F.vulnmap_rows v);
              Metrics.close sink;
              Fmt.epr "[vulnmap] wrote %s@." path)
          Ferrum_workloads.Catalog.all;
        let steps = List.map fst !latencies in
        let sorted = List.sort compare steps in
        let n = List.length sorted in
        let pick p =
          if n = 0 then 0
          else
            List.nth sorted
              (max 0
                 (min (n - 1)
                    (int_of_float (ceil (p *. float_of_int n)) - 1)))
        in
        let mean =
          if n = 0 then 0.0
          else float_of_int (List.fold_left ( + ) 0 steps) /. float_of_int n
        in
        let c = !counts in
        let pct k =
          if c.F.samples = 0 then 0.0
          else float_of_int k /. float_of_int c.F.samples
        in
        [
          Ferrum_eddi.Technique.short_name tech;
          R.Ascii.percent (pct c.F.detected);
          R.Ascii.percent (pct c.F.sdc);
          Fmt.str "%.1f" mean;
          string_of_int (pick 0.5);
          string_of_int (pick 0.95);
          string_of_int (List.fold_left max 0 sorted);
        ])
      techniques
  in
  Fmt.str
    "Detection latency by technique (%d samples/benchmark, seed %Ld;\n\
     latency in retired instructions from flip to checker)@.%s"
    samples seed
    (R.Ascii.table
       ~header:
         [ "technique"; "detected"; "sdc"; "mean"; "p50"; "p95"; "max" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* E18: flat vs adaptive sample allocation at equal budget.            *)
(* ------------------------------------------------------------------ *)

module Stats = Ferrum_telemetry.Stats
module Runner = Ferrum_campaign.Runner

(* Flat (occurrence-proportional, the paper's protocol) and adaptive
   (CI-width-directed rounds) campaigns at the same total budget, on
   raw workloads, scored by the mean Wilson 95% half-width over the
   worst decile of vulnerability-map sites — the sites a flat campaign
   leaves least certain.  The budget is at least 4x the candidate-site
   count so either scheme can lift every site past a couple of
   samples. *)
let adaptive_compare ~samples ~seed =
  let rounds = 8 in
  let results =
    List.map
      (fun name ->
        let entry = Option.get (Ferrum_workloads.Catalog.find name) in
        let m = entry.Ferrum_workloads.Catalog.build () in
        let img =
          Ferrum_machine.Machine.load (Ferrum_eddi.Pipeline.raw m).program
        in
        let target = F.prepare img in
        let sites = Array.length (F.site_candidates target) in
        let budget = max samples (4 * sites) in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let flat, flat_wall =
          timed (fun () ->
              Runner.run ~mode:Runner.Traced ~shards:1 ~seed ~samples:budget
                target)
        in
        let adaptive, adaptive_wall =
          timed (fun () ->
              Runner.run_adaptive ~mode:Runner.Traced ~shards:1 ~seed ~budget
                ~policy:{ F.rounds; target_ci = 0.0 }
                target)
        in
        let site_counts (r : Runner.result) i =
          (Option.get r.Runner.vulnmap).F.v_sites.(i).F.s_counts
        in
        let p_hat (c : F.counts) =
          if c.F.samples = 0 then 0.0
          else float_of_int c.F.sdc /. float_of_int c.F.samples
        in
        let candidates =
          List.filter
            (fun i -> target.F.eligible.(i))
            (List.init (Array.length target.F.eligible) Fun.id)
        in
        let ranked =
          List.sort
            (fun a b ->
              let d =
                compare
                  (p_hat (site_counts flat b))
                  (p_hat (site_counts flat a))
              in
              if d <> 0 then d else compare a b)
            candidates
        in
        let decile =
          let n = (List.length candidates + 9) / 10 in
          List.filteri (fun i _ -> i < n) ranked
        in
        let mean f =
          List.fold_left (fun acc i -> acc +. f i) 0.0 decile
          /. float_of_int (List.length decile)
        in
        let mean_hw r =
          mean (fun i ->
              let c = site_counts r i in
              Stats.half_width
                (Stats.wilson { Stats.n = c.F.samples; k = c.F.sdc }))
        in
        let mean_n r =
          mean (fun i -> float_of_int (site_counts r i).F.samples)
        in
        {
          R.Export.a_benchmark = name;
          a_budget = budget;
          a_rounds = rounds;
          a_sites = sites;
          a_decile = List.length decile;
          a_flat_n = mean_n flat;
          a_adaptive_n = mean_n adaptive;
          a_flat_hw = mean_hw flat;
          a_adaptive_hw = mean_hw adaptive;
          a_flat_wall = flat_wall;
          a_adaptive_wall = adaptive_wall;
        })
      [ "kNN"; "LUD" ]
  in
  let rows =
    List.map
      (fun (a : R.Export.adaptive_result) ->
        [
          a.R.Export.a_benchmark;
          string_of_int a.R.Export.a_sites;
          string_of_int a.R.Export.a_budget;
          Fmt.str "%.1f" a.R.Export.a_flat_n;
          Fmt.str "%.1f" a.R.Export.a_adaptive_n;
          Fmt.str "%.4f" a.R.Export.a_flat_hw;
          Fmt.str "%.4f" a.R.Export.a_adaptive_hw;
          R.Ascii.percent (R.Export.adaptive_savings a);
          Fmt.str "%.1f / %.1f" a.R.Export.a_flat_wall
            a.R.Export.a_adaptive_wall;
        ])
      results
  in
  let table =
    Fmt.str
      "Flat vs adaptive allocation at equal budget (seed %Ld, %d rounds;\n\
       n-bar and Wilson 95%% half-width averaged over the worst decile \
       of sites;\n\
       savings = 1 - (adaptive/flat)^2, the flat budget share directed \
       sampling saves)@.%s"
      seed rounds
      (R.Ascii.table
         ~header:
           [
             "benchmark"; "sites"; "budget"; "flat n"; "adpt n"; "flat hw";
             "adpt hw"; "savings"; "wall f/a";
           ]
         ~rows)
  in
  (table, results)

(* ------------------------------------------------------------------ *)
(* E14: static uncovered set vs dynamic checkable escapes.             *)
(* ------------------------------------------------------------------ *)

module Lint = Ferrum_analysis.Lint

(* Catalogue-wide lint + crossval at every protection level: the
   statically uncovered fraction should collapse as checking tightens,
   and every dynamically observed check-free escape must land inside
   the statically predicted uncovered set ("inclusion"). *)
let lint_compare ~samples ~seed =
  let configs = None :: List.map (fun t -> Some t) Ferrum_eddi.Technique.all in
  let rows =
    List.map
      (fun tech ->
        let name =
          match tech with
          | None -> "raw"
          | Some t -> Ferrum_eddi.Technique.short_name t
        in
        let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
        let uncovered = ref 0 and eligible = ref 0 in
        let sdc = ref 0 and checkable = ref 0 and confirmed = ref 0 in
        let inclusion = ref true in
        List.iter
          (fun (entry : Ferrum_workloads.Catalog.entry) ->
            let m = entry.build () in
            let r =
              match tech with
              | None -> Ferrum_eddi.Pipeline.raw m
              | Some t -> Ferrum_eddi.Pipeline.protect t m
            in
            let report = Ferrum_eddi.Pipeline.lint r in
            let e = Lint.errors report and w = Lint.warnings report in
            errors := !errors + e;
            warnings := !warnings + w;
            infos := !infos + List.length report.Lint.r_findings - e - w;
            uncovered := !uncovered + List.length report.Lint.r_uncovered;
            eligible := !eligible + report.Lint.r_eligible;
            let o =
              R.Crossval.run ~seed ~samples r.Ferrum_eddi.Pipeline.program
            in
            sdc := !sdc + o.R.Crossval.c_sdc;
            checkable := !checkable + o.R.Crossval.c_checkable;
            confirmed := !confirmed + o.R.Crossval.c_confirmed;
            inclusion := !inclusion && R.Crossval.passed o)
          Ferrum_workloads.Catalog.all;
        [
          name;
          Fmt.str "%d/%d" !uncovered !eligible;
          string_of_int !errors;
          string_of_int !warnings;
          string_of_int !infos;
          string_of_int !sdc;
          Fmt.str "%d/%d" !confirmed !checkable;
          (if !inclusion then "yes" else "NO");
        ])
      configs
  in
  Fmt.str
    "Static uncovered set vs dynamic escapes (%d samples/benchmark, seed \
     %Ld;\n\
     inclusion = every checkable escape hit a statically uncovered site)@.%s"
    samples seed
    (R.Ascii.table
       ~header:
         [
           "technique"; "uncovered"; "err"; "warn"; "info"; "sdc";
           "confirmed"; "inclusion";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* E16: injection-engine throughput (scratch vs pooled vs checkpointed).*)
(* ------------------------------------------------------------------ *)

(* End-to-end campaign throughput per engine configuration, on the
   FERRUM-protected catalogue.  The checkpointed engine is timed twice —
   on the legacy [Machine.step] dispatch loop (the PR 5 baseline) and on
   the pre-decoded threaded loop — and outcome counts are cross-checked
   across every configuration (they must agree exactly — the engines and
   the two dispatchers are bit-identical by construction and by the test
   battery).  With [smoke] set, only the first workload runs and the
   function fails loudly unless the predecoded checkpointed engine beats
   both the legacy checkpointed baseline and the scratch path — the
   `make perf` / CI perf-smoke regression gate. *)
let perf_compare ~samples ~seed ~smoke =
  let entries =
    if smoke then [ List.hd Ferrum_workloads.Catalog.all ]
    else Ferrum_workloads.Catalog.all
  in
  let failed = ref false in
  let results = ref [] in
  let rows =
    List.map
      (fun (entry : Ferrum_workloads.Catalog.entry) ->
        let m = entry.build () in
        let p =
          (Ferrum_eddi.Pipeline.protect Ferrum_eddi.Technique.Ferrum m)
            .program
        in
        let img = Ferrum_machine.Machine.load p in
        let timed ?(legacy = false) engine =
          let pre = Ferrum_machine.Predecode.enabled in
          let saved = !pre in
          pre := not legacy;
          Fun.protect
            ~finally:(fun () -> pre := saved)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let res = F.campaign ~seed ~samples ~engine img in
              let dt = Unix.gettimeofday () -. t0 in
              (res.F.counts, float_of_int samples /. dt))
        in
        let configs =
          [ ("scratch", timed F.Scratch);
            ("pooled", timed F.Pooled);
            ("legacy", timed ~legacy:true F.default_engine);
            ("predecoded", timed F.default_engine) ]
        in
        let reference = fst (snd (List.hd configs)) in
        List.iter
          (fun (name, (c, _)) ->
            if c <> reference then begin
              Fmt.epr
                "[perf] %s: %s configuration disagrees on outcome counts!@."
                entry.name name;
              failed := true
            end)
          configs;
        let sps name = snd (List.assoc name configs) in
        let scratch = sps "scratch" and pooled = sps "pooled" in
        let legacy = sps "legacy" and predecoded = sps "predecoded" in
        if smoke && predecoded < legacy then begin
          Fmt.epr
            "[perf] %s: predecoded dispatch slower than legacy ckpt (%.0f \
             vs %.0f samples/s)@."
            entry.name predecoded legacy;
          failed := true
        end;
        if smoke && predecoded < scratch then begin
          Fmt.epr
            "[perf] %s: predecoded ckpt slower than scratch (%.0f vs %.0f \
             samples/s)@."
            entry.name predecoded scratch;
          failed := true
        end;
        results :=
          { Ferrum_report.Export.p_benchmark = entry.name;
            p_scratch = scratch; p_pooled = pooled; p_legacy = legacy;
            p_predecoded = predecoded }
          :: !results;
        [
          entry.name;
          Fmt.str "%.0f" scratch;
          Fmt.str "%.0f" pooled;
          Fmt.str "%.0f" legacy;
          Fmt.str "%.0f" predecoded;
          Fmt.str "%.1fx" (predecoded /. legacy);
        ])
      entries
  in
  let table =
    Fmt.str
      "Injection throughput by engine (samples/sec, %d samples, seed %Ld;\n\
       legacy = ckpt-4096 on Machine.step dispatch, predecoded = ckpt-4096\n\
       on the pre-decoded threaded loop; speedup = predecoded over legacy)@.%s"
      samples seed
      (R.Ascii.table
         ~header:
           [ "benchmark"; "scratch"; "pooled"; "legacy"; "predecoded";
             "speedup" ]
         ~rows)
  in
  if !failed then begin
    print_endline table;
    Fmt.epr "[perf] FAILED@.";
    exit 1
  end;
  (table, List.rev !results)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the toolchain.                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let entry = List.hd Ferrum_workloads.Catalog.all in
  let m = entry.build () in
  let raw = Ferrum_eddi.Pipeline.raw m in
  let ferrum =
    Ferrum_eddi.Pipeline.protect Ferrum_eddi.Technique.Ferrum m
  in
  let raw_img = Ferrum_machine.Machine.load raw.program in
  let ferrum_img = Ferrum_machine.Machine.load ferrum.program in
  let tests =
    [
      Test.make ~name:"backend.compile"
        (Staged.stage (fun () -> Ferrum_eddi.Pipeline.raw m));
      Test.make ~name:"pass.ir-eddi"
        (Staged.stage (fun () -> Ferrum_eddi.Ir_eddi.protect m));
      Test.make ~name:"pass.hybrid"
        (Staged.stage (fun () -> Ferrum_eddi.Hybrid.protect m));
      Test.make ~name:"pass.ferrum"
        (Staged.stage (fun () ->
             Ferrum_eddi.Ferrum_pass.protect raw.program));
      Test.make ~name:"simulate.raw"
        (Staged.stage (fun () -> Ferrum_machine.Machine.golden raw_img));
      Test.make ~name:"simulate.ferrum"
        (Staged.stage (fun () -> Ferrum_machine.Machine.golden ferrum_img));
      Test.make ~name:"inject.one-fault"
        (Staged.stage
           (let target = Ferrum_faultsim.Faultsim.prepare ferrum_img in
            let rng = Ferrum_faultsim.Rng.create ~seed:5L in
            fun () ->
              Ferrum_faultsim.Faultsim.inject target rng
                ~dyn_index:(target.eligible_steps / 2)));
      (* the per-span cost every traced campaign pays: recorder setup,
         one span open/close with its wall+rusage readings, one counter *)
      Test.make ~name:"trace.span"
        (Staged.stage (fun () ->
             let module Trace = Ferrum_telemetry.Trace in
             let tr = Trace.create ~trace:"bench" ~proc:"bench" () in
             Trace.span tr "span" (fun () ->
                 Trace.counter tr "n" 1;
                 Trace.advance tr 1)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Fmt.pr "Micro-benchmarks (bechamel; %s workload, ns per run)@."
    entry.name;
  let grouped = Test.make_grouped ~name:"ferrum" ~fmt:"%s %s" tests in
  let results = benchmark grouped in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ t ] -> Fmt.pr "  %-24s %12.1f ns/run@." name t
          | _ -> Fmt.pr "  %-24s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let cmd, samples, seed, shards, csv, metrics, vulnmap_dir, smoke =
    parse_args ()
  in
  let options perf_only =
    { Experiments.default_options with
      samples = (if perf_only then 0 else samples);
      seed; shards }
  in
  (* Per-experiment wall-clock timings and the last full result set, for
     the --metrics JSON (wall time lives only there, never in the
     deterministic per-benchmark results). *)
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    timings := (name, Unix.gettimeofday () -. t0) :: !timings;
    r
  in
  let captured = ref [] in
  let captured_adaptive = ref [] in
  let captured_perf = ref [] in
  let run_adaptive () =
    let table, results =
      timed "adaptive" (fun () -> adaptive_compare ~samples ~seed)
    in
    captured_adaptive := results;
    table
  in
  let run_perf ~smoke =
    let table, results =
      timed "perf" (fun () -> perf_compare ~samples ~seed ~smoke)
    in
    captured_perf := results;
    table
  in
  let run ?(perf_only = false) () =
    let name = if perf_only then "experiments(perf)" else "experiments" in
    let r = timed name (fun () -> Experiments.run ~options:(options perf_only) ()) in
    captured := r;
    r
  in
  let maybe_csv results =
    match csv with
    | Some path ->
      Ferrum_report.Export.write_csv path results;
      Fmt.pr "(wrote %s)@." path
    | None -> ()
  in
  let print_all ~with_outcomes () =
    let results = run () in
    maybe_csv results;
    print_endline (Render.table1 ());
    print_newline ();
    print_endline (Render.table2 results);
    print_newline ();
    print_endline (Render.fig10 results);
    print_endline (Render.fig11 results);
    print_endline (Render.exec_time results);
    if with_outcomes then begin
      print_newline ();
      print_endline (Render.outcome_table results)
    end;
    print_newline ();
    print_endline (Render.summary results)
  in
  (match cmd with
  | Default ->
    print_all ~with_outcomes:false ();
    print_newline ();
    print_endline (run_adaptive ());
    print_newline ();
    print_endline (run_perf ~smoke:false)
  | All ->
    print_all ~with_outcomes:true ();
    print_newline ();
    print_endline (run_adaptive ());
    print_newline ();
    print_endline
      (timed "ablation" (fun () ->
           Ablation.render (Ablation.run ~samples:(samples / 2) ())));
    print_newline ();
    print_endline
      (timed "allsites" (fun () -> Ablation.all_sites ~samples:(samples / 2) ()));
    print_newline ();
    print_endline
      (timed "multibit" (fun () -> Ablation.multibit ~samples:(samples / 2) ()));
    print_newline ();
    print_endline
      (timed "peephole" (fun () ->
           Ablation.optimized_backend ~samples:(samples / 2) ()));
    print_newline ();
    print_endline
      (timed "selective" (fun () -> R.Selective.render ~samples:(samples / 2) ()));
    print_newline ();
    timed "micro" micro
  | Table1 -> print_endline (Render.table1 ())
  | Table2 -> print_endline (Render.table2 (run ~perf_only:true ()))
  | Fig10 -> print_endline (Render.fig10 (run ()))
  | Fig11 -> print_endline (Render.fig11 (run ~perf_only:true ()))
  | Exectime -> print_endline (Render.exec_time (run ~perf_only:true ()))
  | Outcomes -> print_endline (Render.outcome_table (run ()))
  | Summary -> print_endline (Render.summary (run ()))
  | AblationCmd ->
    print_endline (Ablation.render (Ablation.run ~samples ()))
  | Allsites -> print_endline (Ablation.all_sites ~samples ())
  | Multibit -> print_endline (Ablation.multibit ~samples ())
  | PeepholeCmd -> print_endline (Ablation.optimized_backend ~samples ())
  | Selective -> print_endline (R.Selective.render ~samples ())
  | VulnmapCmd ->
    print_endline
      (timed "vulnmap" (fun () ->
           vulnmap_compare ~samples ~seed ~shards vulnmap_dir))
  | AdaptiveCmd -> print_endline (run_adaptive ())
  | LintCmd ->
    print_endline (timed "lint" (fun () -> lint_compare ~samples ~seed))
  | Perf -> print_endline (run_perf ~smoke)
  | Micro -> micro ());
  match metrics with
  | Some path ->
    Ferrum_report.Export.write_metrics_json ~adaptive:!captured_adaptive
      ~perf:!captured_perf path ~samples ~seed
      ~experiments:(List.rev !timings) !captured;
    Fmt.pr "(wrote %s)@." path
  | None -> ()
