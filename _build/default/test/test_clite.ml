(* Tests for the C-lite frontend: lexer, parser (precedence), lowering
   semantics (differential against both the IR interpreter and the
   compiled simulation), error reporting, and the full protection
   pipeline over C input. *)

module Clite = Ferrum_clite.Clite
module Lexer = Ferrum_clite.Lexer
module Parser = Ferrum_clite.Parser
module Ast = Ferrum_clite.Ast
module Token = Ferrum_clite.Token
module Machine = Ferrum_machine.Machine
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

(* Compile a source string, check interpreter = simulator, and return
   the output. *)
let run_c src =
  let m = Clite.compile src in
  let interp = (Ferrum_ir.Interp.run m).Ferrum_ir.Interp.output in
  match Machine.run_fresh (Machine.load (Pipeline.raw m).program) with
  | Machine.Exit out, _ ->
    Alcotest.(check (list int64)) "interp = compiled" interp out;
    out
  | o, _ -> Alcotest.failf "compiled run failed: %a" Machine.pp_outcome o

let check_out name src expect =
  Alcotest.(check (list int64)) name expect (run_c src)

(* ---- lexer ---- *)

let test_lexer_basic () =
  let toks =
    List.map (fun (t : Token.spanned) -> t.Token.tok)
      (Lexer.tokenize "long x = 0x10 + 42; // comment\nx = x << 2;")
  in
  Alcotest.(check bool) "tokens" true
    (toks
    = Token.[ KW_LONG; IDENT "x"; ASSIGN; INT 16L; PLUS; INT 42L; SEMI;
              IDENT "x"; ASSIGN; IDENT "x"; SHL; INT 2L; SEMI; EOF ])

let test_lexer_comments_and_lines () =
  let toks = Lexer.tokenize "/* multi\nline */ long y;" in
  (match toks with
  | { Token.tok = Token.KW_LONG; line } :: _ ->
    Alcotest.(check int) "line tracked through comment" 2 line
  | _ -> Alcotest.fail "bad tokens");
  match Lexer.tokenize "/* unterminated" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Error _ -> ()

let test_lexer_two_char_ops () =
  let toks =
    List.map (fun (t : Token.spanned) -> t.Token.tok)
      (Lexer.tokenize "<= >= == != && || << >> < >")
  in
  Alcotest.(check bool) "ops" true
    (toks = Token.[ LE; GE; EQ; NE; ANDAND; PIPEPIPE; SHL; SHR; LT; GT; EOF ])

(* ---- parser: precedence ---- *)

let parse_expr_of src =
  let p = Parser.parse ("void main() { long t = " ^ src ^ "; }") in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ Ast.Decl (_, Some e) ] -> e
  | _ -> Alcotest.fail "unexpected body"

let test_precedence () =
  (match parse_expr_of "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int 1L, Ast.Binop (Ast.Mul, Ast.Int 2L, Ast.Int 3L))
    -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse_expr_of "1 < 2 == 3 < 4" with
  | Ast.Binop (Ast.Eq, Ast.Binop (Ast.Lt, _, _), Ast.Binop (Ast.Lt, _, _)) ->
    ()
  | _ -> Alcotest.fail "relational binds tighter than equality");
  (match parse_expr_of "1 | 2 & 3" with
  | Ast.Binop (Ast.BOr, Ast.Int 1L, Ast.Binop (Ast.BAnd, _, _)) -> ()
  | _ -> Alcotest.fail "& binds tighter than |");
  (match parse_expr_of "1 && 2 || 3" with
  | Ast.Binop (Ast.LOr, Ast.Binop (Ast.LAnd, _, _), Ast.Int 3L) -> ()
  | _ -> Alcotest.fail "&& binds tighter than ||");
  match parse_expr_of "-x[2]" with
  | Ast.Unop (Ast.Neg, Ast.Index ("x", Ast.Int 2L)) -> ()
  | _ -> Alcotest.fail "unary over postfix"

let test_parse_errors () =
  let bad src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Error _ -> ()
  in
  bad "void main() { long; }";
  bad "void main() { if (1) return; }" (* blocks are mandatory *) ;
  bad "void main() { x = ; }";
  bad "long g[; void main() {}";
  bad "void v; void main() {}"

(* ---- semantics ---- *)

let test_arith_semantics () =
  check_out "division truncates toward zero"
    "void main() { print(-17 / 5); print(-17 % 5); print(17 / -5); }"
    [ -3L; -2L; -3L ];
  check_out "shift semantics"
    "void main() { print(-1024 >> 3); print(3 << 4); }"
    [ -128L; 48L ];
  check_out "bitwise and unary"
    "void main() { print(12 & 10); print(12 | 3); print(12 ^ 10); print(~0); print(!5); print(!0); }"
    [ 8L; 15L; 6L; -1L; 0L; 1L ];
  check_out "comparisons produce 0/1"
    "void main() { print(3 < 4); print(4 <= 3); print(-1 > -2); print(5 == 5); }"
    [ 1L; 0L; 1L; 1L ]

let test_short_circuit () =
  (* the right operand must not evaluate when the left decides *)
  check_out "short circuit"
    "long calls;\n\
     long bump() { calls = calls + 1; return 1; }\n\
     void main() {\n\
     \  calls = 0;\n\
     \  print(0 && bump());\n\
     \  print(calls);\n\
     \  print(1 || bump());\n\
     \  print(calls);\n\
     \  print(1 && bump());\n\
     \  print(calls);\n\
     }"
    [ 0L; 0L; 1L; 0L; 1L; 1L ]

let test_control_flow () =
  check_out "factorial via while"
    "void main() { long n = 10; long f = 1; while (n > 1) { f = f * n; n = n - 1; } print(f); }"
    [ 3628800L ];
  check_out "for with break/continue"
    "void main() {\n\
     \  long acc = 0;\n\
     \  for (long i = 0; i < 100; i = i + 1) {\n\
     \    if (i % 2 == 0) { continue; }\n\
     \    if (i > 10) { break; }\n\
     \    acc = acc + i;\n\
     \  }\n\
     \  print(acc);\n\
     }"
    [ 25L ] (* 1+3+5+7+9 *);
  check_out "if/else if chain"
    "long grade(long x) { if (x > 90) { return 4; } else if (x > 80) { return 3; } else { return 0; } }\n\
     void main() { print(grade(95)); print(grade(85)); print(grade(10)); }"
    [ 4L; 3L; 0L ]

let test_functions_and_recursion () =
  check_out "recursive gcd"
    "long gcd(long a, long b) { if (b == 0) { return a; } return gcd(b, a % b); }\n\
     void main() { print(gcd(1071, 462)); }"
    [ 21L ];
  check_out "fall-through returns 0"
    "long nothing() { }\nvoid main() { print(nothing()); }"
    [ 0L ]

let test_arrays () =
  check_out "global and local arrays"
    "long g[8];\n\
     void main() {\n\
     \  long l[4];\n\
     \  for (long i = 0; i < 8; i = i + 1) { g[i] = i * i; }\n\
     \  for (long i = 0; i < 4; i = i + 1) { l[i] = g[i + 2]; }\n\
     \  print(l[0] + l[1] + l[2] + l[3]);\n\
     }"
    [ 54L ] (* 4 + 9 + 16 + 25 *)

let test_array_params () =
  check_out "array parameters share storage"
    "long buf[6];\n\
     void fill(long a[], long n) { for (long i = 0; i < n; i = i + 1) { a[i] = i + 1; } }\n\
     long sum(long a[], long n) { long s = 0; for (long i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }\n\
     void main() { fill(buf, 6); print(sum(buf, 6)); }"
    [ 21L ]

let test_globals_zero_initialised () =
  check_out "globals start at zero"
    "long g;\nlong a[3];\nvoid main() { print(g + a[0] + a[2]); }"
    [ 0L ]

(* ---- lowering errors ---- *)

let test_lowering_errors () =
  let bad src =
    match Clite.compile src with
    | _ -> Alcotest.failf "expected error for %S" src
    | exception Clite.Error _ -> ()
  in
  bad "void main() { print(x); }";
  bad "void main() { long x = 1; long x = 2; }";
  bad "void f() {} void main() { print(f()); }";
  bad "void main() { break; }";
  bad "void f() {}";
  bad "long a[0]; void main() {}";
  bad "void main() { nope(); }";
  bad "long x; void main() { print(x[0]); }"

(* ---- full pipeline over the example programs ---- *)

let example_goldens =
  [ ("examples/programs/matmul.c", [ 4001L; 24099L; 14807L ]);
    ("examples/programs/sort.c", [ 1L; 3423L; 64382L; 17L; -1L ]) ]

(* the test binary runs from test/; examples live one level up *)
let example_path p =
  if Sys.file_exists p then p else Filename.concat ".." p

let test_example_programs () =
  List.iter
    (fun (path, expect) ->
      let m = Clite.compile_file (example_path path) in
      let raw = (Pipeline.raw m).program in
      (match Machine.run_fresh (Machine.load raw) with
      | Machine.Exit out, _ ->
        Alcotest.(check (list int64)) (path ^ " golden") expect out
      | o, _ -> Alcotest.failf "%s: %a" path Machine.pp_outcome o);
      List.iter
        (fun t ->
          let p = (Pipeline.protect t m).program in
          match Machine.run_fresh (Machine.load p) with
          | Machine.Exit out, _ ->
            Alcotest.(check (list int64))
              (path ^ " " ^ Technique.short_name t)
              expect out
          | o, _ ->
            Alcotest.failf "%s under %s: %a" path (Technique.name t)
              Machine.pp_outcome o)
        Technique.all)
    example_goldens

let test_example_no_sdc_under_ferrum () =
  let m = Clite.compile_file (example_path "examples/programs/sort.c") in
  let p = (Pipeline.protect Technique.Ferrum m).program in
  let c =
    (Ferrum_faultsim.Faultsim.campaign ~seed:13L ~samples:150
       (Machine.load p))
      .Ferrum_faultsim.Faultsim.counts
  in
  Alcotest.(check int) "no sdc" 0 c.Ferrum_faultsim.Faultsim.sdc

let () =
  Alcotest.run "clite"
    [
      ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "comments + lines" `Quick
            test_lexer_comments_and_lines;
          Alcotest.test_case "two-char operators" `Quick
            test_lexer_two_char_ops ] );
      ( "parser",
        [ Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "semantics",
        [ Alcotest.test_case "arithmetic" `Quick test_arith_semantics;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions_and_recursion;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "array parameters" `Quick test_array_params;
          Alcotest.test_case "globals" `Quick test_globals_zero_initialised ]
      );
      ( "errors",
        [ Alcotest.test_case "lowering errors" `Quick test_lowering_errors ] );
      ( "pipeline",
        [ Alcotest.test_case "example programs x techniques" `Quick
            test_example_programs;
          Alcotest.test_case "FERRUM coverage on C input" `Slow
            test_example_no_sdc_under_ferrum ] );
    ]
