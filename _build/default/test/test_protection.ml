(* Tests for the three protection passes: semantics preservation,
   structural properties of the emitted code, spare-register analysis,
   transform statistics, and configuration variants. *)

open Ferrum_asm
module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
module Machine = Ferrum_machine.Machine
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Ferrum_pass = Ferrum_eddi.Ferrum_pass
module Hybrid = Ferrum_eddi.Hybrid
module Ir_eddi = Ferrum_eddi.Ir_eddi
module Spare = Ferrum_eddi.Spare
module Asm_protect = Ferrum_eddi.Asm_protect

let workload name =
  (Option.get (Ferrum_workloads.Catalog.find name)).build ()

let outcome_of p =
  let o, _ = Machine.run_fresh (Machine.load p) in
  o

(* ---- semantics preservation on every workload x technique ---- *)

let test_semantics_preserved () =
  List.iter
    (fun (e : Ferrum_workloads.Catalog.entry) ->
      let m = e.build () in
      let raw = outcome_of (Pipeline.raw m).program in
      List.iter
        (fun t ->
          let prot = outcome_of (Pipeline.protect t m).program in
          if not (Machine.equal_outcome raw prot) then
            Alcotest.failf "%s under %s: %a vs %a" e.name (Technique.name t)
              Machine.pp_outcome raw Machine.pp_outcome prot)
        Technique.all)
    Ferrum_workloads.Catalog.all

(* ---- spare-register analysis ---- *)

let test_spare_analysis () =
  let m = workload "Pathfinder" in
  let p = (Pipeline.raw m).program in
  List.iter
    (fun (f : Prog.func) ->
      let sp = Spare.analyze_func f in
      (* the backend never touches RBX/R10..R15 *)
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Reg.gpr_name r Reg.Q ^ " spare")
            true
            (List.mem r sp.Spare.spare_gprs))
        Reg.[ RBX; R10; R11; R12; R13; R14; R15 ];
      Alcotest.(check bool) "rsp never spare" false
        (List.mem Reg.RSP sp.Spare.spare_gprs);
      Alcotest.(check bool) "rbp never spare" false
        (List.mem Reg.RBP sp.Spare.spare_gprs);
      (* no SIMD register is used, so all 16 are spare *)
      Alcotest.(check int) "all xmm spare" 16 (List.length sp.Spare.spare_simd))
    p.funcs

let test_block_unused () =
  let b =
    Prog.block "b"
      [ Instr.original (Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RCX));
        Instr.original Instr.Ret ]
  in
  let unused = Spare.block_unused b in
  Alcotest.(check bool) "rax not unused" false (List.mem Reg.RAX unused);
  Alcotest.(check bool) "r10 unused" true (List.mem Reg.R10 unused)

(* ---- Asm_protect unit behaviour ---- *)

let test_protect_movslq_fig4 () =
  (* the paper's Fig. 4 case: movslq %ecx, %rcx overwrites its source *)
  let ins = Instr.original (Instr.Movslq (Instr.Reg Reg.RCX, Reg.RCX)) in
  let seq = Asm_protect.protect ~spares:[ Reg.R10 ] ins in
  match List.map (fun (i : Instr.ins) -> i.op) seq with
  | [ Instr.Movslq (Instr.Reg Reg.RCX, Reg.R10); (* duplicate first *)
      Instr.Movslq (Instr.Reg Reg.RCX, Reg.RCX);
      Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RCX);
      Instr.Jcc (Cond.NE, "exit_function") ] -> ()
  | _ ->
    Alcotest.failf "unexpected sequence:@.%a"
      Fmt.(list (fun ppf (i : Instr.ins) -> Fmt.string ppf (Printer.string_of_instr i.op)))
      seq

let test_protect_accumulator () =
  let ins =
    Instr.original (Instr.Alu (Instr.Add, Reg.Q, Instr.Reg Reg.RCX, Instr.Reg Reg.RAX))
  in
  let seq, owed = Asm_protect.protect_parts ~spares:[ Reg.R10 ] ins in
  Alcotest.(check int) "3 instructions" 3 (List.length seq);
  (match owed with
  | [ { Asm_protect.orig = Reg.RAX; dup = Instr.Reg Reg.R10; width = Reg.Q } ] -> ()
  | _ -> Alcotest.fail "unexpected owed checks");
  (* self-referencing source uses the copy *)
  let ins2 =
    Instr.original (Instr.Alu (Instr.Add, Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RAX))
  in
  let seq2, _ = Asm_protect.protect_parts ~spares:[ Reg.R10 ] ins2 in
  (match List.map (fun (i : Instr.ins) -> i.op) seq2 with
  | [ Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.R10);
      Instr.Alu (Instr.Add, Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.R10);
      Instr.Alu (Instr.Add, Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RAX) ] -> ()
  | _ -> Alcotest.fail "self-add duplicate must read the copy")

let test_protect_rejects_mentioned_spare () =
  let ins = Instr.original (Instr.Mov (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RAX)) in
  match Asm_protect.protect ~spares:[ Reg.R10 ] ins with
  | _ -> Alcotest.fail "expected Unprotectable"
  | exception Asm_protect.Unprotectable _ -> ()

let test_protect_idiv_needs_four () =
  let ins = Instr.original (Instr.Idiv (Reg.Q, Instr.Reg Reg.RCX)) in
  (match Asm_protect.protect ~spares:[ Reg.R10; Reg.R13 ] ins with
  | _ -> Alcotest.fail "expected Unprotectable"
  | exception Asm_protect.Unprotectable _ -> ());
  let seq =
    Asm_protect.protect ~spares:[ Reg.R10; Reg.R13; Reg.R14; Reg.R15 ] ins
  in
  Alcotest.(check int) "idiv sequence + 2 checks" 12 (List.length seq)

(* ---- semantics of each protected instruction shape ---- *)

(* run a raw body and its FERRUM-protected version as full programs and
   compare final outputs through memory *)
let test_executed_duplicates_are_equivalent () =
  let m = workload "LUD" in
  let raw = (Pipeline.raw m).program in
  let prot, _ = Ferrum_pass.protect raw in
  Alcotest.(check bool) "protected is bigger" true
    (Prog.num_instructions prot > Prog.num_instructions raw);
  Alcotest.(check bool) "same outcome" true
    (Machine.equal_outcome (outcome_of raw) (outcome_of prot))

(* ---- FERRUM structural invariants ---- *)

let ferrum_program ?(config = Ferrum_pass.default_config) name =
  let raw = (Pipeline.raw (workload name)).program in
  fst (Ferrum_pass.protect ~config raw)

let iter_instrs p f =
  List.iter
    (fun (fn : Prog.func) ->
      List.iter (fun (b : Prog.block) -> List.iter (f fn b) b.insns) fn.blocks)
    p.Prog.funcs

let test_ferrum_flag_safety () =
  (* every flag reader's nearest preceding flag writer must be a genuine
     comparison (cmp/test/vptest) in the same block — never an ALU side
     effect, and never missing.  A set<cc> may legitimately read flags
     through other set<cc>/mov instructions, which preserve them. *)
  let p = ferrum_program "kmeans" in
  List.iter
    (fun (fn : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          let arr = Array.of_list b.insns in
          Array.iteri
            (fun i (ins : Instr.ins) ->
              if Instr.reads_flags ins.op then begin
                let rec nearest_writer j =
                  if j < 0 then
                    Alcotest.failf "%s/%s: %s reads flags with no producer"
                      fn.fname b.label
                      (Printer.string_of_instr ins.op)
                  else if Instr.writes_flags arr.(j).op then arr.(j).op
                  else nearest_writer (j - 1)
                in
                match nearest_writer (i - 1) with
                | Instr.Cmp _ | Instr.Test _ | Instr.Vptest _ -> ()
                | other ->
                  Alcotest.failf "%s/%s: %s reads flags of %s" fn.fname
                    b.label
                    (Printer.string_of_instr ins.op)
                    (Printer.string_of_instr other)
              end)
            arr)
        fn.blocks)
    p.funcs

let test_ferrum_checker_targets () =
  (* every checker jcc targets the detector *)
  let p = ferrum_program "BFS" in
  iter_instrs p (fun _ _ (ins : Instr.ins) ->
      match (ins.prov, ins.op) with
      | Instr.Check, Instr.Jcc (c, target) ->
        Alcotest.(check string) "checker target" Prog.exit_function_label target;
        Alcotest.(check bool) "checker condition is NE" true (c = Cond.NE)
      | _ -> ())

let test_ferrum_originals_preserved () =
  (* the original instruction stream survives, in order *)
  let raw = (Pipeline.raw (workload "kNN")).program in
  let prot = ferrum_program "kNN" in
  let originals p =
    List.concat_map
      (fun (f : Prog.func) ->
        List.concat_map
          (fun (b : Prog.block) ->
            List.filter_map
              (fun (i : Instr.ins) ->
                if i.prov = Instr.Original then Some i.op else None)
              b.insns)
          f.blocks)
      p.Prog.funcs
  in
  Alcotest.(check bool) "original stream unchanged" true
    (originals raw = originals prot)

let test_ferrum_simd_only_uses_spares () =
  let p = ferrum_program "Backprop" in
  iter_instrs p (fun _ _ (ins : Instr.ins) ->
      List.iter
        (fun x ->
          if x < 12 then
            Alcotest.failf "instrumentation used non-spare xmm%d" x)
        (Instr.simds_mentioned ins.op))

let test_ferrum_stats () =
  let raw = (Pipeline.raw (workload "Needle")).program in
  let _, stats = Ferrum_pass.protect raw in
  Alcotest.(check bool) "batched some" true (stats.Ferrum_pass.simd_batched > 0);
  Alcotest.(check bool) "flushed some" true (stats.Ferrum_pass.flushes > 0);
  Alcotest.(check bool) "protected generals" true
    (stats.Ferrum_pass.general_protected > 0);
  Alcotest.(check bool) "protected comparisons" true
    (stats.Ferrum_pass.comparisons_protected > 0);
  Alcotest.(check int) "nothing unprotected" 0 stats.Ferrum_pass.unprotected

let test_ferrum_no_simd_config () =
  let config = { Ferrum_pass.default_config with use_simd = false } in
  let p = ferrum_program ~config "Pathfinder" in
  iter_instrs p (fun _ _ (ins : Instr.ins) ->
      if Instr.simds_mentioned ins.op <> [] then
        Alcotest.fail "SIMD instruction emitted with use_simd = false");
  Alcotest.(check bool) "still correct" true
    (Machine.equal_outcome
       (outcome_of (Pipeline.raw (workload "Pathfinder")).program)
       (outcome_of p))

let test_ferrum_register_pressure_configs () =
  List.iter
    (fun cap ->
      let config = { Ferrum_pass.default_config with max_spare_gprs = Some cap } in
      List.iter
        (fun name ->
          let raw = (Pipeline.raw (workload name)).program in
          let p, _ = Ferrum_pass.protect ~config raw in
          if
            not
              (Machine.equal_outcome (outcome_of raw) (outcome_of p))
          then Alcotest.failf "pressure cap %d broke %s" cap name)
        [ "Pathfinder"; "kmeans"; "BFS" ])
    [ 0; 1; 2; 3 ]

let test_ferrum_requisition_used_under_pressure () =
  let config = { Ferrum_pass.default_config with max_spare_gprs = Some 0 } in
  let raw = (Pipeline.raw (workload "Pathfinder")).program in
  let p, stats = Ferrum_pass.protect ~config raw in
  Alcotest.(check bool) "requisition events happened" true
    (stats.Ferrum_pass.requisitioned_blocks > 0);
  (* push/pop instrumentation pairs are balanced *)
  let pushes = ref 0 and pops = ref 0 in
  iter_instrs p (fun _ _ (ins : Instr.ins) ->
      if ins.prov = Instr.Instrumentation then
        match ins.op with
        | Instr.Push _ -> incr pushes
        | Instr.Pop _ -> incr pops
        | _ -> ());
  Alcotest.(check int) "balanced push/pop" !pushes !pops

(* ---- hybrid ---- *)

let test_hybrid_stats_and_structure () =
  let m = workload "kmeans" in
  let p, stats = Hybrid.protect m in
  Alcotest.(check bool) "protected many" true (stats.Hybrid.protected_count > 100);
  Alcotest.(check int) "skipped none" 0 stats.Hybrid.skipped;
  (* hybrid never emits SIMD *)
  iter_instrs p (fun _ _ (ins : Instr.ins) ->
      if Instr.simds_mentioned ins.op <> [] then
        Alcotest.fail "hybrid emitted SIMD")

let test_hybrid_signature_blocks_present () =
  let m = workload "BFS" in
  let m', _ = Hybrid.signature_pass m in
  Ferrum_ir.Verify.run m';
  let has_edge_blocks =
    List.exists
      (fun (f : Ir.func) ->
        List.exists
          (fun (b : Ir.block) ->
            String.length b.label > 4
            &&
            let parts = String.split_on_char '_' b.label in
            List.mem "sig" parts)
          f.blocks)
      m'.Ir.funcs
  in
  Alcotest.(check bool) "edge/check blocks inserted" true has_edge_blocks

(* ---- IR-level EDDI ---- *)

let test_ir_eddi_shadows () =
  let m = workload "LUD" in
  let m', _ = Ir_eddi.protect m in
  Ferrum_ir.Verify.run m';
  Alcotest.(check bool) "IR grew" true
    (Ir.num_instructions m' > Ir.num_instructions m);
  (* provenance tagging flows through the backend *)
  let r = Pipeline.protect Technique.Ir_level_eddi m in
  let _, dups, checks, _ = Prog.provenance_counts r.program in
  Alcotest.(check bool) "dup provenance present" true (dups > 0);
  Alcotest.(check bool) "check provenance present" true (checks > 0)

let test_transform_timing_reported () =
  let m = workload "BFS" in
  List.iter
    (fun t ->
      let r = Pipeline.protect t m in
      Alcotest.(check bool) "non-negative time" true (r.transform_seconds >= 0.0))
    Technique.all

(* ---- Table I ---- *)

let test_table1_matches_paper () =
  let open Technique in
  Alcotest.(check string) "ir basic" "IR" (level_name (coverage Ir_level_eddi Basic));
  Alcotest.(check string) "ir store" "/" (level_name (coverage Ir_level_eddi Store));
  Alcotest.(check string) "hybrid branch" "IR"
    (level_name (coverage Hybrid_assembly_eddi Branch));
  Alcotest.(check string) "hybrid store" "AS1"
    (level_name (coverage Hybrid_assembly_eddi Store));
  List.iter
    (fun c ->
      Alcotest.(check string) "ferrum all AS2" "AS2"
        (level_name (coverage Ferrum c)))
    categories

let () =
  Alcotest.run "protection"
    [
      ( "semantics",
        [ Alcotest.test_case "all workloads x all techniques" `Slow
            test_semantics_preserved;
          Alcotest.test_case "duplicates equivalent" `Quick
            test_executed_duplicates_are_equivalent ] );
      ( "spare",
        [ Alcotest.test_case "function analysis" `Quick test_spare_analysis;
          Alcotest.test_case "block unused" `Quick test_block_unused ] );
      ( "asm_protect",
        [ Alcotest.test_case "Fig. 4 movslq" `Quick test_protect_movslq_fig4;
          Alcotest.test_case "accumulator shapes" `Quick
            test_protect_accumulator;
          Alcotest.test_case "mentioned spare rejected" `Quick
            test_protect_rejects_mentioned_spare;
          Alcotest.test_case "idiv spares" `Quick test_protect_idiv_needs_four
        ] );
      ( "ferrum",
        [ Alcotest.test_case "flag safety" `Quick test_ferrum_flag_safety;
          Alcotest.test_case "checker targets" `Quick
            test_ferrum_checker_targets;
          Alcotest.test_case "originals preserved" `Quick
            test_ferrum_originals_preserved;
          Alcotest.test_case "SIMD register discipline" `Quick
            test_ferrum_simd_only_uses_spares;
          Alcotest.test_case "stats" `Quick test_ferrum_stats;
          Alcotest.test_case "no-SIMD config" `Quick test_ferrum_no_simd_config;
          Alcotest.test_case "register pressure configs" `Slow
            test_ferrum_register_pressure_configs;
          Alcotest.test_case "requisition under pressure" `Quick
            test_ferrum_requisition_used_under_pressure ] );
      ( "hybrid",
        [ Alcotest.test_case "stats + no SIMD" `Quick
            test_hybrid_stats_and_structure;
          Alcotest.test_case "signature blocks" `Quick
            test_hybrid_signature_blocks_present ] );
      ( "ir-eddi",
        [ Alcotest.test_case "shadow structure" `Quick test_ir_eddi_shadows ] );
      ( "pipeline",
        [ Alcotest.test_case "timing" `Quick test_transform_timing_reported;
          Alcotest.test_case "Table I" `Quick test_table1_matches_paper ] );
    ]
