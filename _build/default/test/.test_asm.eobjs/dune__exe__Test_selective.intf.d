test/test_selective.mli:
