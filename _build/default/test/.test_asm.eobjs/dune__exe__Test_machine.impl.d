test/test_machine.ml: Alcotest Array Cond Ferrum_asm Ferrum_machine Instr Int64 List Prog QCheck QCheck_alcotest Reg Tgen
