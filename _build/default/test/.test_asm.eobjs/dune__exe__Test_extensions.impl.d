test/test_extensions.ml: Alcotest Array Cond Ferrum_asm Ferrum_backend Ferrum_eddi Ferrum_faultsim Ferrum_machine Ferrum_workloads Instr Int64 List Option Parser Printer Printf Prog Reg
