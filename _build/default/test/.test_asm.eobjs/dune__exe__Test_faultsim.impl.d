test/test_faultsim.ml: Alcotest Array Cond Ferrum_asm Ferrum_eddi Ferrum_faultsim Ferrum_machine Ferrum_workloads Instr Int64 Option Prog QCheck QCheck_alcotest Reg
