test/test_protection.ml: Alcotest Array Cond Ferrum_asm Ferrum_eddi Ferrum_ir Ferrum_machine Ferrum_workloads Fmt Instr List Option Printer Prog Reg String
