test/test_clite.mli:
