test/test_workloads.ml: Alcotest Ferrum_eddi Ferrum_ir Ferrum_machine Ferrum_workloads Int64 List Option
