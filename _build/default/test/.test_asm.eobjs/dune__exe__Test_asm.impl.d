test/test_asm.ml: Alcotest Cond Ferrum_asm Ferrum_eddi Ferrum_workloads Instr List Parser Printer Prog QCheck QCheck_alcotest Reg Stats Tgen
