test/test_backend.ml: Alcotest Array Cond Ferrum_asm Ferrum_backend Ferrum_ir Ferrum_machine Ferrum_workloads Instr List Option Prog QCheck QCheck_alcotest Reg Tgen
