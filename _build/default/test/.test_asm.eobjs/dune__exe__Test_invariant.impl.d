test/test_invariant.ml: Alcotest Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Ferrum_workloads List Option Printf QCheck QCheck_alcotest Tgen
