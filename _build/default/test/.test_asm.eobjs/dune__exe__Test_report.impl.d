test/test_report.ml: Alcotest Ferrum_eddi Ferrum_report Lazy List Option String
