test/test_ir.ml: Alcotest Ferrum_ir Ferrum_workloads Int32 Int64 List String
