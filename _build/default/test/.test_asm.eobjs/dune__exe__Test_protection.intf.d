test/test_protection.mli:
