test/tgen.ml: Cond Ferrum_asm Ferrum_ir Ferrum_workloads Instr Int64 List Printf QCheck Reg
