test/test_selective.ml: Alcotest Array Ferrum_asm Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Ferrum_report Ferrum_workloads Hashtbl Instr List Option Prog QCheck QCheck_alcotest Reg Tgen
