test/test_clite.ml: Alcotest Ferrum_clite Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Filename List Sys
