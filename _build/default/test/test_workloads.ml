(* Workload tests: every kernel verifies, interprets, compiles and
   simulates to the same output; golden outputs are pinned as regression
   values; catalogue metadata matches paper Table II. *)

module Machine = Ferrum_machine.Machine
module Interp = Ferrum_ir.Interp
module Catalog = Ferrum_workloads.Catalog

let find name = Option.get (Catalog.find name)

let compiled_output m =
  match Machine.run_fresh (Machine.load (Ferrum_eddi.Pipeline.raw m).program) with
  | Machine.Exit out, st -> (out, st.Machine.steps)
  | o, _ -> Alcotest.failf "compiled run failed: %a" Machine.pp_outcome o

let test_differential_all () =
  List.iter
    (fun (e : Catalog.entry) ->
      let m = e.build () in
      Ferrum_ir.Verify.run m;
      let interp = Interp.run m in
      let out, _ = compiled_output m in
      Alcotest.(check (list int64)) (e.name ^ " interp = compiled")
        interp.Interp.output out)
    Catalog.all

(* Pinned golden outputs: these change only if a kernel or the LCG
   changes, which should be a deliberate decision. *)
let goldens =
  [
    ("Backprop", [ 34L; 41L; -1L; -54L; 999L ]);
    ("BFS", [ 15392L; 6L; 96L ]);
    ("Pathfinder", [ 31L; 23537L ]);
    ("LUD", [ 13331L; -225506L ]);
    ("Needle", [ 19L; 1544L ]);
    ("kNN", [ 6L; 9L; 0L; 31L; 37L; 691510L ]);
    ("kmeans", [ 708L; 231L; 687L; 696L; 221L; 828L; 240L; 238L; 1430L ]);
    ("Particlefilter", [ 10601L; 506L ]);
  ]

let test_goldens () =
  List.iter
    (fun (name, expect) ->
      let m = (find name).build () in
      let out, _ = compiled_output m in
      Alcotest.(check (list int64)) (name ^ " golden") expect out)
    goldens

let test_catalog_metadata () =
  Alcotest.(check int) "eight benchmarks" 8 (List.length Catalog.all);
  let domains =
    [ ("Backprop", "Machine Learning"); ("BFS", "Graph Algorithm");
      ("Pathfinder", "Dynamic Programming"); ("LUD", "Linear Algebra");
      ("Needle", "Dynamic Programming"); ("kNN", "Machine Learning");
      ("kmeans", "Data Mining"); ("Particlefilter", "Noise estimator") ]
  in
  List.iter
    (fun (name, domain) ->
      let e = find name in
      Alcotest.(check string) (name ^ " suite") "Rodinia" e.Catalog.suite;
      Alcotest.(check string) (name ^ " domain") domain e.Catalog.domain)
    domains;
  Alcotest.(check bool) "lookup is case-insensitive" true
    (Catalog.find "bfs" <> None);
  Alcotest.(check bool) "unknown name" true (Catalog.find "nope" = None)

let test_dynamic_sizes () =
  (* kernels must be big enough to be meaningful fault-injection targets
     and small enough that campaigns stay fast *)
  List.iter
    (fun (e : Catalog.entry) ->
      let _, steps = compiled_output (e.build ()) in
      if steps < 5_000 || steps > 2_000_000 then
        Alcotest.failf "%s: %d dynamic instructions out of range" e.name steps)
    Catalog.all

let test_outputs_are_input_sensitive () =
  (* sanity against degenerate kernels: output must not be all zeros *)
  List.iter
    (fun (e : Catalog.entry) ->
      let out, _ = compiled_output (e.build ()) in
      Alcotest.(check bool)
        (e.name ^ " non-trivial output")
        true
        (List.exists (fun v -> not (Int64.equal v 0L)) out))
    Catalog.all

let test_builds_are_deterministic () =
  List.iter
    (fun (e : Catalog.entry) ->
      let a, _ = compiled_output (e.build ()) in
      let b, _ = compiled_output (e.build ()) in
      Alcotest.(check (list int64)) (e.name ^ " deterministic") a b)
    Catalog.all

let () =
  Alcotest.run "workloads"
    [
      ( "semantics",
        [ Alcotest.test_case "interpreter = compiled, all kernels" `Quick
            test_differential_all;
          Alcotest.test_case "pinned golden outputs" `Quick test_goldens;
          Alcotest.test_case "deterministic builds" `Quick
            test_builds_are_deterministic ] );
      ( "catalogue",
        [ Alcotest.test_case "Table II metadata" `Quick test_catalog_metadata;
          Alcotest.test_case "dynamic size envelope" `Quick test_dynamic_sizes;
          Alcotest.test_case "non-trivial outputs" `Quick
            test_outputs_are_input_sensitive ] );
    ]
