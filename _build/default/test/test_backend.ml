(* Backend tests: compiled programs behave exactly like the reference
   interpreter (differential testing on hand-written cases and random
   kernels), and the lowering has the structural properties the
   protection passes rely on. *)

open Ferrum_asm
module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
module Interp = Ferrum_ir.Interp
module Backend = Ferrum_backend.Backend
module Machine = Ferrum_machine.Machine

let compiled_output m =
  let img = Machine.load (Backend.compile m) in
  match Machine.run_fresh img with
  | Machine.Exit out, _ -> out
  | o, _ -> Alcotest.failf "compiled run failed: %a" Machine.pp_outcome o

let differential name m =
  let expect = (Interp.run m).Interp.output in
  Alcotest.(check (list int64)) name expect (compiled_output m)

let simple_main body =
  let t = B.create () in
  ignore (B.func t "main" ~params:[] ~ret:None (fun fb _ -> body fb; B.ret fb None));
  B.finish t

(* ---- differential unit cases ---- *)

let test_constants_and_alu () =
  differential "alu"
    (simple_main (fun fb ->
         B.print_i64 fb (B.add fb (B.i64 40) (B.i64 2));
         B.print_i64 fb (B.sub fb (B.i64 1) (B.i64 100));
         B.print_i64 fb (B.mul fb (B.i64 (-12)) (B.i64 12));
         B.print_i64 fb (B.xor fb (B.i64 0xFF) (B.i64 0x0F));
         B.print_i64 fb (B.shl fb (B.i64 3) 5);
         B.print_i64 fb (B.binop fb Ir.Or Ir.I64 (B.i64 8) (B.i64 1))))

let test_division_lowering () =
  differential "sdiv/srem"
    (simple_main (fun fb ->
         B.print_i64 fb (B.sdiv fb (B.i64 (-100)) (B.i64 7));
         B.print_i64 fb (B.srem fb (B.i64 (-100)) (B.i64 7));
         B.print_i64 fb (B.sdiv fb (B.i64 100) (B.i64 (-7)))))

let test_variable_shift () =
  differential "shift by cl"
    (simple_main (fun fb ->
         let amt = B.local_var fb (B.i64 3) in
         B.print_i64 fb
           (B.binop fb Ir.Shl Ir.I64 (B.i64 5) (B.get fb amt));
         B.print_i64 fb
           (B.binop fb Ir.Ashr Ir.I64 (B.i64 (-1024)) (B.get fb amt))))

let test_branches () =
  differential "branch both ways"
    (simple_main (fun fb ->
         List.iter
           (fun (a, b) ->
             let c = B.icmp fb Ir.Slt (B.i64 a) (B.i64 b) in
             B.if_ fb ~hint:"t" c
               ~then_:(fun () -> B.print_i64 fb (B.i64 1))
               ~else_:(fun () -> B.print_i64 fb (B.i64 0))
               ())
           [ (1, 2); (2, 1); (-5, 5); (0, 0) ]))

let test_all_predicates () =
  differential "every icmp predicate"
    (simple_main (fun fb ->
         List.iter
           (fun pred ->
             let c =
               B.icmp fb pred (B.i64' (-3L)) (B.i64' 4L)
             in
             B.print_i64 fb (B.cast fb Ir.Zext_i1_i64 c))
           Ir.[ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ]))

let test_globals_and_gep () =
  let t = B.create () in
  let g = B.global t "data" ~bytes:64 in
  let h = B.global t "data2" ~bytes:32 in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         B.store fb Ir.I64 (B.i64 7) (B.gep fb g (B.i64 3) ~scale:8);
         B.store fb Ir.I64 (B.i64 9) (B.gep fb h (B.i64 1) ~scale:8);
         B.print_i64 fb (B.load fb Ir.I64 (B.gep fb g (B.i64 3) ~scale:8));
         B.print_i64 fb (B.load fb Ir.I64 (B.gep fb h (B.i64 1) ~scale:8));
         (* untouched slots read back zero in both worlds *)
         B.print_i64 fb (B.load fb Ir.I64 (B.gep fb g (B.i64 0) ~scale:8));
         B.ret fb None));
  differential "globals" (B.finish t)

let test_params_and_calls () =
  let t = B.create () in
  ignore
    (B.func t "combine" ~params:[ Ir.I64; Ir.I64; Ir.I64; Ir.I64; Ir.I64; Ir.I64 ]
       ~ret:(Some Ir.I64) (fun fb args ->
         let sum =
           List.fold_left (fun acc a -> B.add fb acc a) (B.i64 0) args
         in
         (* weight the last parameter so ordering mistakes are caught *)
         B.ret fb (Some (B.add fb sum (B.mul fb (List.nth args 5) (B.i64 100))))));
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         B.print_i64 fb
           (B.call_v fb "combine"
              [ B.i64 1; B.i64 2; B.i64 3; B.i64 4; B.i64 5; B.i64 6 ]);
         B.ret fb None));
  differential "six-argument call" (B.finish t)

let test_i32_lowering () =
  differential "i32 ops and casts"
    (simple_main (fun fb ->
         let a = B.binop fb Ir.Add Ir.I32 (B.i32 0x7FFFFFFF) (B.i32 2) in
         B.print_i64 fb (B.cast fb Ir.Sext_i32_i64 a);
         let b = B.binop fb Ir.Mul Ir.I32 (B.i32 100000) (B.i32 100000) in
         B.print_i64 fb (B.cast fb Ir.Sext_i32_i64 b)))

let test_i1_through_memory () =
  differential "i1 store/load"
    (simple_main (fun fb ->
         let slot = B.alloca fb ~bytes:1 in
         let c = B.icmp fb Ir.Sgt (B.i64 9) (B.i64 4) in
         B.store fb Ir.I1 c slot;
         let c' = B.load fb Ir.I1 slot in
         B.if_ fb ~hint:"c" c'
           ~then_:(fun () -> B.print_i64 fb (B.i64 77))
           ~else_:(fun () -> B.print_i64 fb (B.i64 88))
           ()))

let prop_random_kernels_differential =
  QCheck.Test.make ~name:"random kernels: interpreter = compiled" ~count:60
    Tgen.kernel_arbitrary
    (fun k ->
      let m = Tgen.build_kernel k in
      Ferrum_ir.Verify.run m;
      let expect = (Interp.run m).Interp.output in
      compiled_output m = expect)

(* ---- structural properties of lowered code ---- *)

let pathfinder () =
  (Option.get (Ferrum_workloads.Catalog.find "Pathfinder")).build ()

let test_lowered_structure () =
  let p = Backend.compile (pathfinder ()) in
  Prog.validate p;
  (* every flag consumer is immediately preceded by its flag producer;
     the protection passes rely on this adjacency *)
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          let arr = Array.of_list b.insns in
          Array.iteri
            (fun i (ins : Instr.ins) ->
              if Instr.reads_flags ins.op && not (Instr.is_barrier ins.op)
              then begin
                if i = 0 then
                  Alcotest.failf "%s: flag reader at block start" f.fname;
                let prev = arr.(i - 1) in
                if not (Instr.writes_flags prev.op) then
                  Alcotest.failf "%s: flag reader not preceded by producer"
                    f.fname
              end)
            arr)
        f.blocks)
    p.funcs

let test_backend_register_discipline () =
  (* generated code never touches R10-R15 or RBX: they stay spare *)
  let p = Backend.compile (pathfinder ()) in
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          List.iter
            (fun (ins : Instr.ins) ->
              List.iter
                (fun r ->
                  if List.mem r Reg.[ RBX; R10; R11; R12; R13; R14; R15 ]
                  then
                    Alcotest.failf "backend used reserved-spare %s"
                      (Reg.gpr_name r Reg.Q))
                (Instr.gprs_mentioned ins.op))
            b.insns)
        f.blocks)
    p.funcs

let test_backend_no_simd () =
  let p = Backend.compile (pathfinder ()) in
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          List.iter
            (fun (ins : Instr.ins) ->
              if Instr.simds_mentioned ins.op <> [] then
                Alcotest.fail "backend emitted SIMD")
            b.insns)
        f.blocks)
    p.funcs

let test_branch_materialisation () =
  (* the paper's Fig. 9 pattern: lowered conditional branches compare the
     stored i1 against zero, creating a flag-fault site *)
  let p = Backend.compile (pathfinder ()) in
  let found = ref false in
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          let rec scan = function
            | { Instr.op = Instr.Cmp (Reg.B, Instr.Imm 0L, Instr.Mem _); _ }
              :: { Instr.op = Instr.Jcc (Cond.E, _); _ } :: _ ->
              found := true
            | _ :: rest -> scan rest
            | [] -> ()
          in
          scan b.insns)
        f.blocks)
    p.funcs;
  Alcotest.(check bool) "cmpb $0, slot; je present" true !found

let test_too_many_args_rejected () =
  let t = B.create () in
  ignore
    (B.func t "seven"
       ~params:[ Ir.I64; Ir.I64; Ir.I64; Ir.I64; Ir.I64; Ir.I64; Ir.I64 ]
       ~ret:None (fun fb _ -> B.ret fb None));
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore
           (B.call fb "seven"
              [ B.i64 1; B.i64 2; B.i64 3; B.i64 4; B.i64 5; B.i64 6; B.i64 7 ]);
         B.ret fb None));
  match Backend.compile (B.finish t) with
  | _ -> Alcotest.fail "expected Backend.Error"
  | exception Backend.Error _ -> ()

let () =
  Alcotest.run "backend"
    [
      ( "differential",
        [ Alcotest.test_case "constants + alu" `Quick test_constants_and_alu;
          Alcotest.test_case "division" `Quick test_division_lowering;
          Alcotest.test_case "variable shift" `Quick test_variable_shift;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "all predicates" `Quick test_all_predicates;
          Alcotest.test_case "globals + gep" `Quick test_globals_and_gep;
          Alcotest.test_case "calls" `Quick test_params_and_calls;
          Alcotest.test_case "i32" `Quick test_i32_lowering;
          Alcotest.test_case "i1 through memory" `Quick
            test_i1_through_memory;
          QCheck_alcotest.to_alcotest prop_random_kernels_differential ] );
      ( "structure",
        [ Alcotest.test_case "flag adjacency" `Quick test_lowered_structure;
          Alcotest.test_case "spare registers untouched" `Quick
            test_backend_register_discipline;
          Alcotest.test_case "no SIMD in generated code" `Quick
            test_backend_no_simd;
          Alcotest.test_case "Fig. 9 branch materialisation" `Quick
            test_branch_materialisation;
          Alcotest.test_case "arity limit" `Quick test_too_many_args_rejected
        ] );
    ]
