(* Shared QCheck generators for the test suites: random registers,
   operands, instructions (for printer/parser round-trips), and random
   structured IR kernels (for semantics-preservation and the headline
   no-SDC property). *)

open Ferrum_asm
module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir

let gpr : Reg.gpr QCheck.Gen.t = QCheck.Gen.oneofl Reg.all_gprs

(* Registers legal as explicit operands in generated instructions (we
   keep RSP out to avoid generating stack-corrupting programs). *)
let operand_gpr : Reg.gpr QCheck.Gen.t =
  QCheck.Gen.oneofl
    Reg.[ RAX; RBX; RCX; RDX; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let size : Reg.size QCheck.Gen.t = QCheck.Gen.oneofl Reg.[ B; W; D; Q ]

let cond : Cond.t QCheck.Gen.t = QCheck.Gen.oneofl Cond.all

let mem : Instr.mem QCheck.Gen.t =
  let open QCheck.Gen in
  let* base = opt operand_gpr in
  let* index = opt operand_gpr in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = int_range (-512) 512 in
  (* scale is only printable when an index register is present *)
  let scale = match index with None -> 1 | Some _ -> scale in
  return { Instr.base; index; scale; disp }

let operand : Instr.operand QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ map (fun i -> Instr.Imm (Int64.of_int i)) (int_range (-100000) 100000);
      map (fun r -> Instr.Reg r) operand_gpr;
      map (fun m -> Instr.Mem m) mem ]

let reg_or_mem : Instr.operand QCheck.Gen.t =
  let open QCheck.Gen in
  oneof [ map (fun r -> Instr.Reg r) operand_gpr;
          map (fun m -> Instr.Mem m) mem ]

let alu : Instr.alu QCheck.Gen.t =
  QCheck.Gen.oneofl Instr.[ Add; Sub; Imul; And; Or; Xor ]

(* A random instruction with valid operand shapes (no label-dependent
   control flow: those are exercised by program-level generators). *)
let instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let mov =
    let* s = size in
    let* src = operand in
    let* dst = reg_or_mem in
    return (Instr.Mov (s, src, dst))
  in
  let alu_i =
    let* op = alu in
    let* s = size in
    let* src = operand in
    let* dst = map (fun r -> Instr.Reg r) operand_gpr in
    return (Instr.Alu (op, s, src, dst))
  in
  let shift =
    let* k = oneofl Instr.[ Shl; Sar; Shr ] in
    let* s = size in
    let* amt =
      oneof [ map (fun n -> Instr.Amt_imm n) (int_range 0 63);
              return Instr.Amt_cl ]
    in
    let* dst = map (fun r -> Instr.Reg r) operand_gpr in
    return (Instr.Shift (k, s, amt, dst))
  in
  let cmp =
    let* s = size in
    let* src = operand in
    let* dst = reg_or_mem in
    return (Instr.Cmp (s, src, dst))
  in
  let simd =
    let* x = int_range 0 15 in
    oneof
      [ (let* o = reg_or_mem in
         return (Instr.MovQ_to_xmm (o, x)));
        (let* r = operand_gpr in
         return (Instr.MovQ_from_xmm (x, r)));
        (let* lane = int_range 0 1 in
         let* r = operand_gpr in
         return (Instr.Pinsrq (lane, Instr.Psrc_reg r, x)));
        (let* lane = int_range 0 1 in
         let* r = operand_gpr in
         return (Instr.Pextrq (lane, x, r)));
        (let* a = int_range 0 15 in
         let* d = int_range 0 15 in
         return (Instr.Vpxor (a, x, d)));
        (let* a = int_range 0 15 in
         return (Instr.Vptest (a, x)));
        (let* s = int_range 0 15 in
         let* a = int_range 0 15 in
         let* half = int_range 0 1 in
         return (Instr.Vinserti128 (half, s, a, x))) ]
  in
  let misc =
    oneof
      [ (let* m = mem in
         let* r = operand_gpr in
         return (Instr.Lea (m, r)));
        (let* o = reg_or_mem in
         let* r = operand_gpr in
         return (Instr.Movslq (o, r)));
        (let* o = reg_or_mem in
         let* r = operand_gpr in
         return (Instr.Movzbq (o, r)));
        (let* c = cond in
         let* o = reg_or_mem in
         return (Instr.Set (c, o)));
        (let* s = size in
         let* o = reg_or_mem in
         return (Instr.Neg (s, o)));
        (let* s = size in
         let* o = reg_or_mem in
         return (Instr.Not (s, o)));
        (let* o = operand in
         return (Instr.Push o));
        map (fun r -> Instr.Pop r) operand_gpr;
        return Instr.Cqto;
        return Instr.Ret ]
  in
  oneof [ mov; alu_i; shift; cmp; simd; misc ]

(* ------------------------------------------------------------------ *)
(* Random structured IR kernels.                                       *)
(*                                                                     *)
(* A kernel owns [n_vars] mutable i64 variables initialised to small   *)
(* constants, runs a bounded loop whose body applies random updates    *)
(* (arithmetic, comparisons feeding branches, array traffic through a  *)
(* global), and prints every variable at the end.  Divisions divide by *)
(* a non-zero constant so fault-free runs never trap.                  *)
(* ------------------------------------------------------------------ *)

type update =
  | U_binop of Ir.binop * int * int (* var <- var op other *)
  | U_const of int * int (* var <- constant *)
  | U_if_swap of int * int (* if (a < b) a <- a + b else a <- a - b *)
  | U_array of int * int (* g[i mod 8] <- var; var <- g[(i+k) mod 8] *)
  | U_div of int * int (* var <- var / const *)

let update_gen n_vars : update QCheck.Gen.t =
  let open QCheck.Gen in
  let var = int_range 0 (n_vars - 1) in
  oneof
    [ (let* op =
         oneofl Ir.[ Add; Sub; Mul; And; Or; Xor; Shl; Ashr ]
       in
       let* a = var in
       let* b = var in
       return (U_binop (op, a, b)));
      (let* a = var in
       let* c = int_range (-1000) 1000 in
       return (U_const (a, c)));
      (let* a = var in
       let* b = var in
       return (U_if_swap (a, b)));
      (let* a = var in
       let* k = int_range 1 7 in
       return (U_array (a, k)));
      (let* a = var in
       let* c = oneofl [ 2; 3; 5; 7; 11 ] in
       return (U_div (a, c))) ]

type kernel = {
  n_vars : int;
  inits : int list;
  iterations : int;
  updates : update list;
}

let kernel_gen : kernel QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_vars = int_range 2 5 in
  let* inits = list_size (return n_vars) (int_range (-50) 50) in
  let* iterations = int_range 1 6 in
  let* updates = list_size (int_range 1 8) (update_gen n_vars) in
  return { n_vars; inits; iterations; updates }

(* Build the kernel as an IR module. *)
let build_kernel (k : kernel) : Ir.modul =
  let t = B.create () in
  let arr = B.global t "arr" ~bytes:(8 * 8) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         let vars =
           List.map (fun c -> B.local_var fb (B.i64 c)) k.inits
         in
         let var i = List.nth vars i in
         (* mask shift amounts so they stay in range *)
         let apply iv = function
           | U_binop (op, a, b) ->
             let vb = B.get fb (var b) in
             let vb =
               match op with
               | Ir.Shl | Ir.Ashr | Ir.Lshr -> B.and_ fb vb (B.i64 15)
               | _ -> vb
             in
             B.set fb (var a) (B.binop fb op Ir.I64 (B.get fb (var a)) vb)
           | U_const (a, c) -> B.set fb (var a) (B.i64 c)
           | U_if_swap (a, b) ->
             let va = B.get fb (var a) and vb = B.get fb (var b) in
             let c = B.icmp fb Ir.Slt va vb in
             B.if_ fb ~hint:"swap" c
               ~then_:(fun () ->
                 B.set fb (var a)
                   (B.add fb (B.get fb (var a)) (B.get fb (var b))))
               ~else_:(fun () ->
                 B.set fb (var a)
                   (B.sub fb (B.get fb (var a)) (B.get fb (var b))))
               ()
           | U_array (a, kk) ->
             let idx = B.and_ fb iv (B.i64 7) in
             Ferrum_workloads.Wutil.set fb arr idx (B.get fb (var a));
             let idx2 = B.and_ fb (B.add fb iv (B.i64 kk)) (B.i64 7) in
             B.set fb (var a) (Ferrum_workloads.Wutil.get fb arr idx2)
           | U_div (a, c) ->
             B.set fb (var a) (B.sdiv fb (B.get fb (var a)) (B.i64 c))
         in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 k.iterations) ~hint:"it"
           (fun iv -> List.iter (apply iv) k.updates);
         List.iter (fun v -> B.print_i64 fb (B.get fb v)) vars;
         B.ret fb None));
  B.finish t

let kernel_arbitrary =
  QCheck.make ~print:(fun k ->
      Printf.sprintf "kernel{vars=%d iters=%d updates=%d}" k.n_vars
        k.iterations (List.length k.updates))
    kernel_gen
