(* Tests for the mini-IR: builder output, verifier acceptance and
   rejection, and the reference interpreter's semantics. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
module Verify = Ferrum_ir.Verify
module Interp = Ferrum_ir.Interp

let interp_output m = (Interp.run m).Interp.output

let check_out = Alcotest.(check (list int64))

(* ---- builder + interpreter ---- *)

let simple_main body =
  let t = B.create () in
  ignore (B.func t "main" ~params:[] ~ret:None (fun fb _ -> body fb; B.ret fb None));
  B.finish t

let test_arith () =
  let m =
    simple_main (fun fb ->
        let a = B.i64 21 in
        B.print_i64 fb (B.add fb a a);
        B.print_i64 fb (B.mul fb (B.i64 6) (B.i64 7));
        B.print_i64 fb (B.sdiv fb (B.i64 (-17)) (B.i64 5));
        B.print_i64 fb (B.srem fb (B.i64 (-17)) (B.i64 5));
        B.print_i64 fb (B.ashr fb (B.i64 (-256)) 4);
        B.print_i64 fb (B.binop fb Ir.Lshr Ir.I64 (B.i64' (-1L)) (B.i64 60)))
  in
  Verify.run m;
  check_out "arith" [ 42L; 42L; -3L; -2L; -16L; 15L ] (interp_output m)

let test_memory_and_loop () =
  let t = B.create () in
  let g = B.global t "g" ~bytes:(8 * 10) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 10) ~hint:"i" (fun i ->
             B.store fb Ir.I64 (B.mul fb i i) (B.gep fb g i ~scale:8));
         let sum = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 10) ~hint:"j" (fun j ->
             B.set fb sum
               (B.add fb (B.get fb sum)
                  (B.load fb Ir.I64 (B.gep fb g j ~scale:8))));
         B.print_i64 fb (B.get fb sum);
         B.ret fb None));
  let m = B.finish t in
  Verify.run m;
  check_out "sum of squares 0..9" [ 285L ] (interp_output m)

let test_function_calls () =
  let t = B.create () in
  ignore
    (B.func t "fib" ~params:[ Ir.I64 ] ~ret:(Some Ir.I64) (fun fb args ->
         let n = List.nth args 0 in
         let small = B.icmp fb Ir.Slt n (B.i64 2) in
         B.if_ fb ~hint:"base" small
           ~then_:(fun () -> B.ret fb (Some n))
           ();
         let a = B.call_v fb "fib" [ B.sub fb n (B.i64 1) ] in
         let b = B.call_v fb "fib" [ B.sub fb n (B.i64 2) ] in
         B.ret fb (Some (B.add fb a b))));
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         B.print_i64 fb (B.call_v fb "fib" [ B.i64 12 ]);
         B.ret fb None));
  let m = B.finish t in
  Verify.run m;
  check_out "fib 12" [ 144L ] (interp_output m)

let test_i32_semantics () =
  let m =
    simple_main (fun fb ->
        (* 32-bit wrap-around then sign extension *)
        let big = B.binop fb Ir.Add Ir.I32 (B.i32 0x7FFFFFFF) (B.i32 1) in
        let wide = B.cast fb Ir.Sext_i32_i64 big in
        B.print_i64 fb wide;
        let trunc = B.cast fb Ir.Trunc_i64_i32 (B.i64' 0x1_0000_0005L) in
        B.print_i64 fb (B.cast fb Ir.Sext_i32_i64 trunc))
  in
  Verify.run m;
  check_out "i32 wrap + sext" [ Int64.of_int32 Int32.min_int; 5L ]
    (interp_output m)

let test_icmp_zext () =
  let m =
    simple_main (fun fb ->
        let c = B.icmp fb Ir.Sge (B.i64 3) (B.i64 3) in
        B.print_i64 fb (B.cast fb Ir.Zext_i1_i64 c);
        let c2 = B.icmp fb Ir.Ult (B.i64' (-1L)) (B.i64 0) in
        B.print_i64 fb (B.cast fb Ir.Zext_i1_i64 c2))
  in
  Verify.run m;
  check_out "icmp" [ 1L; 0L ] (interp_output m)

let test_while_loop () =
  let m =
    simple_main (fun fb ->
        (* Collatz steps for 27 *)
        let x = B.local_var fb (B.i64 27) in
        let steps = B.local_var fb (B.i64 0) in
        B.while_ fb ~hint:"collatz"
          (fun () -> B.icmp fb Ir.Ne (B.get fb x) (B.i64 1))
          (fun () ->
            let v = B.get fb x in
            let odd = B.and_ fb v (B.i64 1) in
            let is_odd = B.icmp fb Ir.Eq odd (B.i64 1) in
            B.if_ fb ~hint:"odd" is_odd
              ~then_:(fun () ->
                B.set fb x (B.add fb (B.mul fb (B.get fb x) (B.i64 3)) (B.i64 1)))
              ~else_:(fun () -> B.set fb x (B.ashr fb (B.get fb x) 1))
              ();
            B.set fb steps (B.add fb (B.get fb steps) (B.i64 1)));
        B.print_i64 fb (B.get fb steps))
  in
  Verify.run m;
  check_out "collatz 27" [ 111L ] (interp_output m)

let test_div_by_zero_fails () =
  let m = simple_main (fun fb -> B.print_i64 fb (B.sdiv fb (B.i64 1) (B.i64 0))) in
  match Interp.run m with
  | _ -> Alcotest.fail "expected Runtime_error"
  | exception Interp.Runtime_error _ -> ()

(* ---- verifier rejections ---- *)

let expect_invalid name m =
  match Verify.run m with
  | () -> Alcotest.fail (name ^ ": expected Invalid")
  | exception Verify.Invalid _ -> ()

let func_with blocks : Ir.modul =
  { Ir.funcs = [ { Ir.name = "main"; params = []; ret = None; blocks } ];
    globals = []; main = "main" }

let test_verify_use_before_def () =
  expect_invalid "use before def"
    (func_with
       [ { Ir.label = "main";
           body = [ Ir.Store { ty = Ir.I64; v = Ir.Vreg 3; ptr = Ir.Vreg 4 } ];
           term = Ir.Ret None } ])

let test_verify_double_assignment () =
  expect_invalid "double assignment"
    (func_with
       [ { Ir.label = "main";
           body =
             [ Ir.Alloca { dst = 0; bytes = 8 };
               Ir.Alloca { dst = 0; bytes = 8 } ];
           term = Ir.Ret None } ])

let test_verify_type_mismatch () =
  expect_invalid "i1 into binop"
    (func_with
       [ { Ir.label = "main";
           body =
             [ Ir.Icmp { dst = 0; pred = Ir.Eq; ty = Ir.I64;
                         a = Ir.Const (Ir.I64, 0L); b = Ir.Const (Ir.I64, 0L) };
               Ir.Binop { dst = 1; op = Ir.Add; ty = Ir.I64; a = Ir.Vreg 0;
                          b = Ir.Const (Ir.I64, 1L) } ];
           term = Ir.Ret None } ])

let test_verify_bad_branch_target () =
  expect_invalid "bad target"
    (func_with [ { Ir.label = "main"; body = []; term = Ir.Jmp "nope" } ])

let test_verify_bad_cond_type () =
  expect_invalid "br on i64"
    (func_with
       [ { Ir.label = "main";
           body = [];
           term =
             Ir.Br { cond = Ir.Const (Ir.I64, 1L); ifso = "main"; ifnot = "main" } } ])

let test_verify_unknown_callee () =
  expect_invalid "unknown callee"
    (func_with
       [ { Ir.label = "main";
           body = [ Ir.Call { dst = None; callee = "ghost"; args = [] } ];
           term = Ir.Ret None } ])

let test_verify_unknown_global () =
  expect_invalid "unknown global"
    (func_with
       [ { Ir.label = "main";
           body = [ Ir.Load { dst = 0; ty = Ir.I64; ptr = Ir.Global "ghost" } ];
           term = Ir.Ret None } ])

let test_verify_dominance_across_blocks () =
  (* def in one arm of a diamond does not dominate the join *)
  expect_invalid "non-dominating def"
    (func_with
       [ { Ir.label = "main";
           body =
             [ Ir.Icmp { dst = 0; pred = Ir.Eq; ty = Ir.I64;
                         a = Ir.Const (Ir.I64, 0L); b = Ir.Const (Ir.I64, 0L) } ];
           term = Ir.Br { cond = Ir.Vreg 0; ifso = "a"; ifnot = "join" } };
         { Ir.label = "a";
           body =
             [ Ir.Binop { dst = 1; op = Ir.Add; ty = Ir.I64;
                          a = Ir.Const (Ir.I64, 1L); b = Ir.Const (Ir.I64, 2L) } ];
           term = Ir.Jmp "join" };
         { Ir.label = "join";
           body = [ Ir.Call { dst = None; callee = "print_i64"; args = [ Ir.Vreg 1 ] } ];
           term = Ir.Ret None } ])

let test_verify_accepts_workloads () =
  List.iter
    (fun (e : Ferrum_workloads.Catalog.entry) -> Verify.run (e.build ()))
    Ferrum_workloads.Catalog.all

let test_num_instructions () =
  let m = simple_main (fun fb -> B.print_i64 fb (B.i64 1)) in
  Alcotest.(check bool) "positive" true (Ir.num_instructions m > 0)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_printer_smoke () =
  let m = simple_main (fun fb -> B.print_i64 fb (B.add fb (B.i64 1) (B.i64 2))) in
  let s = Ir.to_string m in
  Alcotest.(check bool) "mentions add" true (contains s "add");
  Alcotest.(check bool) "mentions main" true (contains s "define @main")

let () =
  Alcotest.run "ir"
    [
      ( "interp",
        [ Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "memory + loops" `Quick test_memory_and_loop;
          Alcotest.test_case "recursive calls" `Quick test_function_calls;
          Alcotest.test_case "i32 semantics" `Quick test_i32_semantics;
          Alcotest.test_case "icmp + zext" `Quick test_icmp_zext;
          Alcotest.test_case "while loop" `Quick test_while_loop;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero_fails
        ] );
      ( "verify",
        [ Alcotest.test_case "use before def" `Quick test_verify_use_before_def;
          Alcotest.test_case "double assignment" `Quick
            test_verify_double_assignment;
          Alcotest.test_case "type mismatch" `Quick test_verify_type_mismatch;
          Alcotest.test_case "bad branch target" `Quick
            test_verify_bad_branch_target;
          Alcotest.test_case "bad cond type" `Quick test_verify_bad_cond_type;
          Alcotest.test_case "unknown callee" `Quick test_verify_unknown_callee;
          Alcotest.test_case "unknown global" `Quick test_verify_unknown_global;
          Alcotest.test_case "dominance" `Quick
            test_verify_dominance_across_blocks;
          Alcotest.test_case "accepts all workloads" `Quick
            test_verify_accepts_workloads ] );
      ( "misc",
        [ Alcotest.test_case "num_instructions" `Quick test_num_instructions;
          Alcotest.test_case "printer" `Quick test_printer_smoke ] );
    ]
