(* The headline property (paper Fig. 10): programs protected by FERRUM
   or HYBRID-ASSEMBLY-LEVEL-EDDI never produce silent data corruption
   under the fault model — every single-bit destination-register fault
   is masked, detected, or turns into a crash/timeout, but never a wrong
   output.

   We verify it two ways: exhaustively over every eligible dynamic site
   (all 64 bits sampled randomly per site) on small fixed kernels, and
   statistically on random kernels from the generator. *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir

(* Sweep every eligible dynamic site of a protected program once. *)
let sweep_all_sites ?(scope = F.Original_only) ~seed program =
  let t = F.prepare ~scope (Machine.load program) in
  let rng = Rng.create ~seed in
  let sdc = ref [] in
  for dyn_index = 0 to t.F.eligible_steps - 1 do
    let cls, fault = F.inject t (Rng.split rng) ~dyn_index in
    if cls = F.Sdc then sdc := fault :: !sdc
  done;
  (t.F.eligible_steps, !sdc)

let report_sdc name = function
  | [] -> ()
  | faults ->
    Alcotest.failf "%s: %d SDC escapes, first at dyn=%d %s bit=%d" name
      (List.length faults)
      (List.hd (List.rev_map (fun (f : F.fault) -> f.F.dyn_index) faults))
      (List.hd faults).F.dest_desc (List.hd faults).F.bit

(* A compact kernel exercising every protected shape: loads, stores,
   ALU, shifts, comparisons both directions, division, calls, i32. *)
let mixed_kernel () =
  let t = B.create () in
  let g = B.global t "buf" ~bytes:64 in
  ignore
    (B.func t "step" ~params:[ Ir.I64 ] ~ret:(Some Ir.I64) (fun fb args ->
         let x = List.nth args 0 in
         let q = B.sdiv fb x (B.i64 3) in
         let r = B.srem fb x (B.i64 5) in
         B.ret fb (Some (B.add fb (B.mul fb q (B.i64 7)) r))));
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         let acc = B.local_var fb (B.i64 1) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 5) ~hint:"i" (fun i ->
             B.store fb Ir.I64 (B.get fb acc) (B.gep fb g i ~scale:8);
             let v = B.load fb Ir.I64 (B.gep fb g i ~scale:8) in
             let c = B.icmp fb Ir.Sgt v (B.i64 10) in
             B.if_ fb ~hint:"big" c
               ~then_:(fun () -> B.set fb acc (B.ashr fb (B.get fb acc) 1))
               ~else_:(fun () ->
                 B.set fb acc
                   (B.add fb (B.shl fb (B.get fb acc) 2) (B.i64 3)))
               ();
             B.set fb acc (B.call_v fb "step" [ B.get fb acc ]));
         let narrow =
           B.binop fb Ir.Add Ir.I32
             (B.cast fb Ir.Trunc_i64_i32 (B.get fb acc))
             (B.i32 9)
         in
         B.print_i64 fb (B.cast fb Ir.Sext_i32_i64 narrow);
         B.print_i64 fb (B.get fb acc);
         B.ret fb None));
  B.finish t

let exhaustive technique name m seed () =
  let prog = (Pipeline.protect technique m).program in
  let sites, sdc = sweep_all_sites ~seed prog in
  Alcotest.(check bool) "has sites" true (sites > 100);
  report_sdc (name ^ "/" ^ Technique.short_name technique) sdc

(* statistical check over random kernels: [per_kernel] random sites each *)
let prop_no_sdc technique =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: no SDC on random kernels"
         (Technique.name technique))
    ~count:25 Tgen.kernel_arbitrary
    (fun k ->
      let m = Tgen.build_kernel k in
      Ferrum_ir.Verify.run m;
      let prog = (Pipeline.protect technique m).program in
      let t = F.prepare (Machine.load prog) in
      let rng = Rng.create ~seed:31L in
      let ok = ref true in
      for _ = 1 to 60 do
        let dyn_index = Rng.int rng t.F.eligible_steps in
        match fst (F.inject t (Rng.split rng) ~dyn_index) with
        | F.Sdc -> ok := false
        | _ -> ()
      done;
      !ok)

(* protected programs preserve fault-free semantics on random kernels *)
let prop_semantics_preserved technique =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: semantics preserved on random kernels"
         (Technique.name technique))
    ~count:40 Tgen.kernel_arbitrary
    (fun k ->
      let m = Tgen.build_kernel k in
      Ferrum_ir.Verify.run m;
      let raw, _ = Machine.run_fresh (Machine.load (Pipeline.raw m).program) in
      let prot, _ =
        Machine.run_fresh (Machine.load (Pipeline.protect technique m).program)
      in
      Machine.equal_outcome raw prot)

(* FERRUM under forced register pressure: everything except direct
   stack-pointer writers stays covered.  RSP-writing instructions
   (prologue [subq $N, %rsp], epilogue [movq %rbp, %rsp]) cannot be
   requisition-wrapped — the wrapping push/pop would strand the save
   slot — so with zero spares they are the one documented gap (see
   DESIGN.md E7); any SDC escape must be an RSP fault. *)
let test_pressure_no_sdc () =
  let config =
    { Ferrum_eddi.Ferrum_pass.default_config with max_spare_gprs = Some 0 }
  in
  let m = mixed_kernel () in
  let prog =
    (Pipeline.protect ~ferrum_config:config Technique.Ferrum m).program
  in
  let _, sdc = sweep_all_sites ~seed:17L prog in
  let non_rsp =
    List.filter (fun (f : F.fault) -> f.F.dest_desc <> "%rsp") sdc
  in
  report_sdc "mixed/ferrum-0spares (non-rsp)" non_rsp

(* IR-level EDDI, by contrast, must leak SDC somewhere on the suite —
   the paper's core observation.  (If this ever fails, the backend has
   stopped generating unprotected glue and the reproduction is broken.) *)
let test_ir_eddi_leaks () =
  let leaks =
    List.exists
      (fun name ->
        let m = (Option.get (Ferrum_workloads.Catalog.find name)).build () in
        let prog = (Pipeline.protect Technique.Ir_level_eddi m).program in
        let t = F.prepare (Machine.load prog) in
        let rng = Rng.create ~seed:23L in
        let sdc = ref 0 in
        for _ = 1 to 300 do
          let dyn_index = Rng.int rng t.F.eligible_steps in
          if fst (F.inject t (Rng.split rng) ~dyn_index) = F.Sdc then incr sdc
        done;
        !sdc > 0)
      [ "LUD"; "Pathfinder"; "kNN" ]
  in
  Alcotest.(check bool) "IR-level EDDI lets some SDC through" true leaks

let () =
  let m = mixed_kernel () in
  Alcotest.run "invariant"
    [
      ( "exhaustive",
        [ Alcotest.test_case "ferrum: every original site" `Slow
            (exhaustive Technique.Ferrum "mixed" m 41L);
          Alcotest.test_case "hybrid: every original site" `Slow
            (exhaustive Technique.Hybrid_assembly_eddi "mixed" m 43L);
          Alcotest.test_case "ferrum under pressure" `Slow
            test_pressure_no_sdc ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest (prop_no_sdc Technique.Ferrum);
          QCheck_alcotest.to_alcotest
            (prop_no_sdc Technique.Hybrid_assembly_eddi);
          QCheck_alcotest.to_alcotest
            (prop_semantics_preserved Technique.Ferrum);
          QCheck_alcotest.to_alcotest
            (prop_semantics_preserved Technique.Hybrid_assembly_eddi);
          QCheck_alcotest.to_alcotest
            (prop_semantics_preserved Technique.Ir_level_eddi) ] );
      ( "contrast",
        [ Alcotest.test_case "IR-level EDDI leaks" `Slow test_ir_eddi_leaks ]
      );
    ]
