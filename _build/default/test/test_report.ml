(* Tests for the reporting layer: ASCII rendering, experiment drivers on
   a reduced configuration, and the headline metrics' plumbing. *)

module R = Ferrum_report
module Experiments = R.Experiments
module Render = R.Render
module Ascii = R.Ascii
module Technique = Ferrum_eddi.Technique

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- ascii ---- *)

let test_table_renders () =
  let s =
    Ascii.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has header" true (contains s "| a ");
  Alcotest.(check bool) "has row" true (contains s "333");
  (* all lines are equally wide *)
  let lines = String.split_on_char '\n' s in
  let w = String.length (List.hd lines) in
  List.iter
    (fun l -> Alcotest.(check int) "aligned" w (String.length l))
    lines

let test_bar_scaling () =
  Alcotest.(check string) "empty at zero" (String.make 32 ' ')
    (Ascii.bar ~max_value:1.0 0.0);
  Alcotest.(check string) "full at max" (String.make 32 '#')
    (Ascii.bar ~max_value:1.0 1.0);
  let half = Ascii.bar ~max_value:1.0 0.5 in
  Alcotest.(check int) "half filled" 16
    (String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 half)

let test_percent () =
  Alcotest.(check string) "fmt" "100.0%" (String.trim (Ascii.percent 1.0));
  Alcotest.(check string) "fmt2" "29.8%" (String.trim (Ascii.percent 0.2983))

(* ---- experiments on a reduced run ---- *)

let reduced_results =
  lazy
    (let options =
       { Experiments.default_options with
         samples = 40;
         benchmarks = Some [ "LUD"; "kNN" ] }
     in
     Experiments.run ~options ())

let test_experiment_driver () =
  let results = Lazy.force reduced_results in
  Alcotest.(check int) "two benchmarks" 2 (List.length results);
  List.iter
    (fun (b : Experiments.bench_result) ->
      Alcotest.(check int) "three techniques" 3 (List.length b.techniques);
      Alcotest.(check bool) "raw campaign ran" true (b.raw_counts <> None);
      List.iter
        (fun (t : Experiments.tech_result) ->
          Alcotest.(check bool) "overhead positive" true (t.overhead > 0.0);
          Alcotest.(check bool) "coverage in [0,1]" true
            (match t.coverage with
            | Some c -> c >= 0.0 && c <= 1.0
            | None -> false);
          Alcotest.(check bool) "bigger static" true
            (t.static_instructions > b.static_raw))
        b.techniques)
    results

let test_full_protection_covers () =
  let results = Lazy.force reduced_results in
  List.iter
    (fun (b : Experiments.bench_result) ->
      List.iter
        (fun t ->
          let r = Experiments.find_tech b t in
          Alcotest.(check (float 1e-9))
            (b.name ^ " " ^ Technique.name t ^ " full coverage")
            1.0
            (Option.get r.Experiments.coverage))
        [ Technique.Ferrum; Technique.Hybrid_assembly_eddi ])
    results

let test_renderers_mention_content () =
  let results = Lazy.force reduced_results in
  Alcotest.(check bool) "table1" true
    (contains (Render.table1 ()) "FERRUM");
  Alcotest.(check bool) "table2" true
    (contains (Render.table2 results) "Linear Algebra");
  Alcotest.(check bool) "fig10" true
    (contains (Render.fig10 results) "SDC coverage");
  Alcotest.(check bool) "fig11" true
    (contains (Render.fig11 results) "overhead");
  Alcotest.(check bool) "exectime" true
    (contains (Render.exec_time results) "FERRUM transform");
  Alcotest.(check bool) "outcomes" true
    (contains (Render.outcome_table results) "detected");
  Alcotest.(check bool) "summary" true
    (contains (Render.summary results) "paper")

let test_perf_only_mode () =
  let options =
    { Experiments.default_options with
      samples = 0;
      benchmarks = Some [ "BFS" ] }
  in
  let results = Experiments.run ~options () in
  List.iter
    (fun (b : Experiments.bench_result) ->
      Alcotest.(check bool) "no campaign" true (b.raw_counts = None);
      List.iter
        (fun (t : Experiments.tech_result) ->
          Alcotest.(check bool) "no coverage" true (t.coverage = None))
        b.techniques)
    results

let test_csv_export () =
  let results = Lazy.force reduced_results in
  let csv = R.Export.csv results in
  let lines = String.split_on_char '\n' csv in
  (* header + (1 raw + 3 techniques) per benchmark + trailing newline *)
  Alcotest.(check int) "line count" (1 + (2 * 4) + 1) (List.length lines);
  Alcotest.(check bool) "header" true
    (contains (List.hd lines) "benchmark,suite,domain,config");
  Alcotest.(check bool) "has ferrum rows" true (contains csv ",ferrum,");
  Alcotest.(check bool) "has raw rows" true (contains csv ",raw,")

let test_csv_escaping () =
  (* commas and quotes in cells must be quoted *)
  Alcotest.(check bool) "quoting" true
    (contains
       (R.Export.csv
          [ { (List.hd (Lazy.force reduced_results)) with
              domain = "Linear, \"Algebra\"" } ])
       "\"Linear, \"\"Algebra\"\"\"")

let test_mean_over () =
  let results = Lazy.force reduced_results in
  let avg =
    Experiments.mean_over results (fun b ->
        (Experiments.find_tech b Technique.Ferrum).Experiments.overhead)
  in
  Alcotest.(check bool) "mean positive" true (avg > 0.0)

let () =
  Alcotest.run "report"
    [
      ( "ascii",
        [ Alcotest.test_case "table" `Quick test_table_renders;
          Alcotest.test_case "bars" `Quick test_bar_scaling;
          Alcotest.test_case "percent" `Quick test_percent ] );
      ( "experiments",
        [ Alcotest.test_case "driver" `Slow test_experiment_driver;
          Alcotest.test_case "assembly techniques fully cover" `Slow
            test_full_protection_covers;
          Alcotest.test_case "renderers" `Slow test_renderers_mention_content;
          Alcotest.test_case "performance-only mode" `Quick
            test_perf_only_mode;
          Alcotest.test_case "csv export" `Slow test_csv_export;
          Alcotest.test_case "csv escaping" `Slow test_csv_escaping;
          Alcotest.test_case "mean" `Slow test_mean_over ] );
    ]
