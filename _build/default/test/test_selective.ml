(* Tests for selective protection (E12) and the liveness soundness
   property that underpins liveness-directed register reuse. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Ferrum_pass = Ferrum_eddi.Ferrum_pass
module Liveness = Ferrum_eddi.Liveness
module Selective = Ferrum_report.Selective

let workload name = (Option.get (Ferrum_workloads.Catalog.find name)).build ()

let outcome_of p = fst (Machine.run_fresh (Machine.load p))

(* ---- selective machinery ---- *)

let test_site_table_matches_loader () =
  let p = (Pipeline.raw (workload "LUD")).program in
  let table = Selective.site_table p in
  let img = Machine.load p in
  Alcotest.(check int) "one entry per flattened instruction"
    (Array.length img.Machine.code)
    (Array.length table);
  (* spot-check: the entry block starts at index 0, position 0 *)
  let label0, i0 = table.(0) in
  Alcotest.(check int) "first position" 0 i0;
  Alcotest.(check bool) "first label is a function entry" true
    (List.exists (fun (f : Prog.func) -> f.fname = label0) p.funcs)

let test_select_none_is_raw_cost () =
  let m = workload "Pathfinder" in
  let raw = (Pipeline.raw m).program in
  let config =
    { Ferrum_pass.default_config with select = Some (fun _ _ -> false) }
  in
  let p, stats = Ferrum_pass.protect ~config raw in
  Alcotest.(check int) "nothing protected" 0
    (stats.Ferrum_pass.simd_batched + stats.Ferrum_pass.general_protected
    + stats.Ferrum_pass.comparisons_protected);
  Alcotest.(check int) "same size" (Prog.num_instructions raw)
    (Prog.num_instructions p);
  Alcotest.(check bool) "same behaviour" true
    (Machine.equal_outcome (outcome_of raw) (outcome_of p))

let test_select_all_equals_full () =
  let m = workload "kNN" in
  let raw = (Pipeline.raw m).program in
  let full, _ = Ferrum_pass.protect raw in
  let all, _ =
    Ferrum_pass.protect
      ~config:{ Ferrum_pass.default_config with select = Some (fun _ _ -> true) }
      raw
  in
  Alcotest.(check int) "identical size" (Prog.num_instructions full)
    (Prog.num_instructions all)

let test_selected_subset_semantics () =
  (* protecting arbitrary subsets must never change fault-free output *)
  let m = workload "kmeans" in
  let raw = (Pipeline.raw m).program in
  let expect = outcome_of raw in
  List.iter
    (fun modulus ->
      let config =
        { Ferrum_pass.default_config with
          select = Some (fun _ i -> i mod modulus = 0) }
      in
      let p, _ = Ferrum_pass.protect ~config raw in
      if not (Machine.equal_outcome expect (outcome_of p)) then
        Alcotest.failf "subset (mod %d) broke semantics" modulus)
    [ 2; 3; 5 ]

let test_budget_monotone_overhead () =
  let points = Selective.run_benchmark ~samples:150 (workload "LUD") in
  let rec check_sorted = function
    | (a : Selective.point) :: (b :: _ as rest) ->
      Alcotest.(check bool) "overhead grows with budget" true
        (a.Selective.overhead <= b.Selective.overhead +. 1e-9);
      check_sorted rest
    | _ -> ()
  in
  check_sorted points;
  (* full protection is the last point and must reach 100% *)
  let full = List.nth points (List.length points - 1) in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 full.Selective.coverage

let test_profile_attributes_sdc () =
  let m = workload "Backprop" in
  let img = Machine.load (Pipeline.raw m).program in
  let counts, totals = Selective.profile ~samples:200 ~seed:31L img in
  let attributed = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
  Alcotest.(check int) "every sdc attributed to a site" totals.F.sdc
    attributed

(* ---- liveness soundness property ----

   If the analysis says register r is dead right before instruction k,
   then clobbering r at that point must not change the program's
   output.  We check it by rebuilding the function with a poison write
   inserted and comparing outcomes. *)

let clobber_at (p : Prog.t) ~fname ~label ~k r poison =
  let poison_ins =
    Instr.original (Instr.Mov (Reg.Q, Instr.Imm poison, Instr.Reg r))
  in
  Prog.map_funcs
    (fun (f : Prog.func) ->
      if f.fname <> fname then f
      else
        Prog.func f.fname
          (List.map
             (fun (b : Prog.block) ->
               if b.label <> label then b
               else
                 let rec insert i = function
                   | rest when i = k -> poison_ins :: rest
                   | [] -> []
                   | x :: rest -> x :: insert (i + 1) rest
                 in
                 Prog.block b.label (insert 0 b.insns))
             f.blocks))
    p

let prop_liveness_sound =
  QCheck.Test.make ~name:"liveness: clobbering a dead register is invisible"
    ~count:25 Tgen.kernel_arbitrary
    (fun kernel ->
      let m = Tgen.build_kernel kernel in
      Ferrum_ir.Verify.run m;
      let p = (Pipeline.raw m).program in
      let expect = outcome_of p in
      let rng = Rng.create ~seed:8L in
      (* try a handful of (function, block, position, register) points *)
      let ok = ref true in
      List.iter
        (fun (f : Prog.func) ->
          let lv = Liveness.analyze f in
          List.iter
            (fun (b : Prog.block) ->
              let n = List.length b.insns in
              if n > 0 then begin
                let k = Rng.int rng n in
                match Liveness.dead_regs_at lv ~label:b.label ~k with
                | [] -> ()
                | dead ->
                  let r = List.nth dead (Rng.int rng (List.length dead)) in
                  let poisoned =
                    clobber_at p ~fname:f.fname ~label:b.label ~k r
                      0x5A5A5A5A5A5AL
                  in
                  if not (Machine.equal_outcome expect (outcome_of poisoned))
                  then ok := false
              end)
            f.blocks)
        p.funcs;
      !ok)

let () =
  Alcotest.run "selective"
    [
      ( "machinery",
        [ Alcotest.test_case "site table" `Quick test_site_table_matches_loader;
          Alcotest.test_case "select none" `Quick test_select_none_is_raw_cost;
          Alcotest.test_case "select all = full" `Quick
            test_select_all_equals_full;
          Alcotest.test_case "subset semantics" `Quick
            test_selected_subset_semantics;
          Alcotest.test_case "profile attribution" `Quick
            test_profile_attributes_sdc;
          Alcotest.test_case "budget curve" `Slow test_budget_monotone_overhead
        ] );
      ( "liveness-soundness",
        [ QCheck_alcotest.to_alcotest prop_liveness_sound ] );
    ]
