(* Unit and property tests for the assembly layer: register model,
   condition codes, instruction metadata, printer/parser round-trip and
   program validation. *)

open Ferrum_asm

let check = Alcotest.check
let string_t = Alcotest.string

(* ---- registers ---- *)

let test_gpr_names () =
  check string_t "rax q" "rax" (Reg.gpr_name Reg.RAX Reg.Q);
  check string_t "rax d" "eax" (Reg.gpr_name Reg.RAX Reg.D);
  check string_t "rax w" "ax" (Reg.gpr_name Reg.RAX Reg.W);
  check string_t "rax b" "al" (Reg.gpr_name Reg.RAX Reg.B);
  check string_t "r10 b" "r10b" (Reg.gpr_name Reg.R10 Reg.B);
  check string_t "rsi b" "sil" (Reg.gpr_name Reg.RSI Reg.B);
  check string_t "r15 d" "r15d" (Reg.gpr_name Reg.R15 Reg.D)

let test_gpr_name_roundtrip () =
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          match Reg.gpr_of_name (Reg.gpr_name r s) with
          | Some (r', s') ->
            Alcotest.(check bool) "same reg" true (r = r' && s = s')
          | None -> Alcotest.fail "name did not parse")
        Reg.[ B; W; D; Q ])
    Reg.all_gprs

let test_gpr_index_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "index roundtrip" true
        (Reg.gpr_of_index (Reg.gpr_index r) = r))
    Reg.all_gprs

let test_sizes () =
  Alcotest.(check int) "B" 1 (Reg.size_bytes Reg.B);
  Alcotest.(check int) "W" 2 (Reg.size_bytes Reg.W);
  Alcotest.(check int) "D" 4 (Reg.size_bytes Reg.D);
  Alcotest.(check int) "Q" 8 (Reg.size_bytes Reg.Q);
  Alcotest.(check int) "bits" 64 (Reg.size_bits Reg.Q)

(* ---- condition codes ---- *)

let test_cond_negate_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "negate twice" true
        (Cond.negate (Cond.negate c) = c))
    Cond.all

let prop_cond_negate_eval =
  QCheck.Test.make ~name:"cond: eval (negate c) = not (eval c)" ~count:500
    QCheck.(
      quad (QCheck.make Tgen.cond) bool bool (pair bool bool))
    (fun (c, zf, sf, (cf, of_)) ->
      Cond.eval (Cond.negate c) ~zf ~sf ~cf ~of_
      = not (Cond.eval c ~zf ~sf ~cf ~of_))

let test_cond_names () =
  List.iter
    (fun c ->
      match Cond.of_name (Cond.name c) with
      | Some c' -> Alcotest.(check bool) "cond name roundtrip" true (c = c')
      | None -> Alcotest.fail "cond name did not parse")
    Cond.all

let test_cond_reads () =
  Alcotest.(check bool) "E reads ZF" true (Cond.reads Cond.E = [ Cond.ZF ]);
  Alcotest.(check int) "LE reads 3 flags" 3 (List.length (Cond.reads Cond.LE))

(* ---- instruction metadata ---- *)

let test_defs () =
  let open Instr in
  Alcotest.(check int) "mov reg: 1 def" 1
    (List.length (defs (Mov (Reg.Q, Imm 1L, Reg Reg.RAX))));
  Alcotest.(check int) "mov to mem: 0 defs" 0
    (List.length (defs (Mov (Reg.Q, Reg Reg.RAX, Mem (mem ~base:Reg.RBP (-8))))));
  Alcotest.(check int) "cmp: flags only" 1
    (List.length (defs (Cmp (Reg.Q, Reg Reg.RAX, Reg Reg.RCX))));
  Alcotest.(check int) "idiv: rax and rdx" 2
    (List.length
       (List.filter
          (function Dgpr _ -> true | _ -> false)
          (defs (Idiv (Reg.Q, Reg Reg.RCX)))));
  Alcotest.(check bool) "jmp: none" true (defs (Jmp "l") = []);
  Alcotest.(check bool) "alu writes flags" true
    (writes_flags (Alu (Add, Reg.Q, Imm 1L, Reg Reg.RAX)));
  Alcotest.(check bool) "mov does not write flags" false
    (writes_flags (Mov (Reg.Q, Imm 1L, Reg Reg.RAX)));
  Alcotest.(check bool) "jcc reads flags" true (reads_flags (Jcc (Cond.E, "l")));
  Alcotest.(check bool) "set reads flags" true
    (reads_flags (Set (Cond.E, Reg Reg.RAX)))

let test_gprs_mentioned () =
  let open Instr in
  let mentions i r = List.mem r (gprs_mentioned i) in
  let i = Mov (Reg.Q, Mem (mem ~base:Reg.RBP ~index:Reg.RCX ~scale:8 4), Reg Reg.RAX) in
  Alcotest.(check bool) "base" true (mentions i Reg.RBP);
  Alcotest.(check bool) "index" true (mentions i Reg.RCX);
  Alcotest.(check bool) "dest" true (mentions i Reg.RAX);
  Alcotest.(check bool) "other" false (mentions i Reg.R10);
  Alcotest.(check bool) "cqto mentions rax+rdx" true
    (mentions Cqto Reg.RAX && mentions Cqto Reg.RDX);
  Alcotest.(check bool) "shift by cl mentions rcx" true
    (mentions (Shift (Shl, Reg.Q, Amt_cl, Reg Reg.RAX)) Reg.RCX)

let test_klass () =
  let open Instr in
  Alcotest.(check string) "load"
    "load" (klass_name (klass (Mov (Reg.Q, Mem (mem 0), Reg Reg.RAX))));
  Alcotest.(check string) "store"
    "store" (klass_name (klass (Mov (Reg.Q, Reg Reg.RAX, Mem (mem 0)))));
  Alcotest.(check string) "alu"
    "alu" (klass_name (klass (Alu (Add, Reg.Q, Imm 1L, Reg Reg.RAX))));
  Alcotest.(check string) "branch" "branch" (klass_name (klass (Jmp "x")));
  Alcotest.(check string) "simd"
    "simd" (klass_name (klass (Vpxor (0, 1, 2))))

(* ---- printer / parser ---- *)

let test_print_examples () =
  let open Instr in
  let p i = Printer.string_of_instr i in
  let check = Alcotest.check in
  check string_t "mov" "movq $42, %rax" (p (Mov (Reg.Q, Imm 42L, Reg Reg.RAX)));
  check string_t "movl" "movl %ecx, %eax" (p (Mov (Reg.D, Reg Reg.RCX, Reg Reg.RAX)));
  check string_t "mem" "movq -8(%rbp), %rax"
    (p (Mov (Reg.Q, Mem (mem ~base:Reg.RBP (-8)), Reg Reg.RAX)));
  check string_t "sib" "leaq (%rax,%rcx,8), %rdx"
    (p (Lea (mem ~base:Reg.RAX ~index:Reg.RCX ~scale:8 0, Reg.RDX)));
  check string_t "jne" "jne exit_function" (p (Jcc (Cond.NE, "exit_function")));
  check string_t "sete" "sete %r11b" (p (Set (Cond.E, Reg Reg.R11)));
  check string_t "pinsrq" "pinsrq $1, %rdi, %xmm1"
    (p (Pinsrq (1, Psrc_reg Reg.RDI, 1)));
  check string_t "vinserti128" "vinserti128 $1, %xmm2, %ymm0, %ymm0"
    (p (Vinserti128 (1, 2, 0, 0)));
  check string_t "vptest" "vptest %ymm0, %ymm0" (p (Vptest (0, 0)))

let roundtrip_instr i =
  let line = Printer.string_of_instr i in
  match Parser.parse_instr line with
  | i' -> i = i'
  | exception Parser.Parse_error msg ->
    QCheck.Test.fail_reportf "parse error on %S: %s" line msg

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"printer/parser instruction round-trip" ~count:2000
    (QCheck.make ~print:Printer.string_of_instr Tgen.instr)
    roundtrip_instr

let test_program_roundtrip () =
  (* full program round-trip including provenance comments *)
  let e = List.hd Ferrum_workloads.Catalog.all in
  let p =
    (Ferrum_eddi.Pipeline.protect Ferrum_eddi.Technique.Ferrum (e.build ()))
      .program
  in
  let p' = Parser.program (Printer.program_to_string p) in
  Alcotest.(check int) "instruction count survives"
    (Prog.num_instructions p) (Prog.num_instructions p');
  let a = Prog.provenance_counts p and b = Prog.provenance_counts p' in
  Alcotest.(check bool) "provenance survives" true (a = b)

(* ---- program validation ---- *)

let block label insns = Prog.block label (List.map Instr.original insns)

let test_validate_ok () =
  let p =
    Prog.program
      [ Prog.func "main"
          [ block "main" [ Instr.Jmp "next" ];
            block "next" [ Instr.Ret ] ] ]
  in
  Prog.validate p

let expect_ill_formed name p =
  match Prog.validate p with
  | () -> Alcotest.fail (name ^ ": expected Ill_formed")
  | exception Prog.Ill_formed _ -> ()

let test_validate_bad_target () =
  expect_ill_formed "unknown target"
    (Prog.program
       [ Prog.func "main" [ block "main" [ Instr.Jmp "nowhere" ] ] ])

let test_validate_fallthrough_end () =
  expect_ill_formed "falls off end"
    (Prog.program
       [ Prog.func "main"
           [ block "main" [ Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RAX) ] ] ])

let test_validate_duplicate_label () =
  expect_ill_formed "duplicate label"
    (Prog.program
       [ Prog.func "main"
           [ block "main" [ Instr.Jmp "main" ]; block "main" [ Instr.Ret ] ] ])

let test_validate_unknown_call () =
  expect_ill_formed "unknown callee"
    (Prog.program
       [ Prog.func "main" [ block "main" [ Instr.Call "nope"; Instr.Ret ] ] ])

let test_validate_exit_function_allowed () =
  Prog.validate
    (Prog.program
       [ Prog.func "main"
           [ block "main" [ Instr.Jcc (Cond.NE, "exit_function"); Instr.Ret ] ] ])

(* ---- stats ---- *)

let test_stats () =
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main"
              [ Instr.original (Instr.Mov (Reg.Q, Instr.Mem (Instr.mem 0), Instr.Reg Reg.RAX));
                Instr.dup (Instr.Mov (Reg.Q, Instr.Mem (Instr.mem 0), Instr.Reg Reg.R10));
                Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RAX));
                Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
                Instr.original Instr.Ret ] ] ]
  in
  let s = Stats.of_program p in
  Alcotest.(check int) "total" 5 s.Stats.total;
  Alcotest.(check int) "originals" 2 s.Stats.originals;
  Alcotest.(check int) "dups" 1 s.Stats.dups;
  Alcotest.(check int) "checks" 2 s.Stats.checks;
  Alcotest.(check bool) "expansion" true
    (abs_float (Stats.expansion ~baseline:s ~protected_:s -. 1.0) < 1e-9)

let () =
  Alcotest.run "asm"
    [
      ( "registers",
        [ Alcotest.test_case "view names" `Quick test_gpr_names;
          Alcotest.test_case "name roundtrip" `Quick test_gpr_name_roundtrip;
          Alcotest.test_case "index roundtrip" `Quick test_gpr_index_roundtrip;
          Alcotest.test_case "sizes" `Quick test_sizes ] );
      ( "conditions",
        [ Alcotest.test_case "negate involution" `Quick
            test_cond_negate_involution;
          Alcotest.test_case "names" `Quick test_cond_names;
          Alcotest.test_case "flag reads" `Quick test_cond_reads;
          QCheck_alcotest.to_alcotest prop_cond_negate_eval ] );
      ( "metadata",
        [ Alcotest.test_case "defs" `Quick test_defs;
          Alcotest.test_case "gprs mentioned" `Quick test_gprs_mentioned;
          Alcotest.test_case "klass" `Quick test_klass ] );
      ( "text",
        [ Alcotest.test_case "printer examples" `Quick test_print_examples;
          QCheck_alcotest.to_alcotest prop_instr_roundtrip;
          Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip
        ] );
      ( "validation",
        [ Alcotest.test_case "valid program" `Quick test_validate_ok;
          Alcotest.test_case "unknown target" `Quick test_validate_bad_target;
          Alcotest.test_case "fallthrough end" `Quick
            test_validate_fallthrough_end;
          Alcotest.test_case "duplicate label" `Quick
            test_validate_duplicate_label;
          Alcotest.test_case "unknown callee" `Quick test_validate_unknown_call;
          Alcotest.test_case "exit_function target" `Quick
            test_validate_exit_function_allowed ] );
      ("stats", [ Alcotest.test_case "counting" `Quick test_stats ]);
    ]
