(* ferrum — command-line front end for the toolchain.

   Subcommands:
     list                      benchmark catalogue (paper Table II)
     ir BENCH                  print the mini-IR of a benchmark
     compile BENCH [-p TECH]   print (protected) assembly
     run BENCH [-p TECH]       simulate and report output/cycles
     inject BENCH [-p TECH]    run a fault-injection campaign
     report [ARTEFACT]         regenerate the paper's tables/figures *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog
open Cmdliner

let find_bench name =
  match Catalog.find name with
  | Some e -> e
  | None ->
    Fmt.epr "unknown benchmark %S; try: %s@." name
      (String.concat ", " Catalog.names);
    exit 1

let technique_conv =
  let parse s =
    match Technique.of_short_name s with
    | Some t -> Ok t
    | None -> Error (`Msg "expected ir-eddi, hybrid or ferrum")
  in
  let print ppf t = Fmt.string ppf (Technique.short_name t) in
  Arg.conv (parse, print)

let bench_arg =
  let doc = "Benchmark name (see `ferrum list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let protect_arg =
  let doc = "Protection technique: ir-eddi, hybrid or ferrum." in
  Arg.(value & opt (some technique_conv) None & info [ "p"; "protect" ] ~doc)

let samples_arg =
  let doc = "Number of fault injections to sample." in
  Arg.(value & opt int 400 & info [ "samples" ] ~doc)

let seed_arg =
  let doc = "PRNG seed; campaigns are bit-reproducible for a given seed." in
  Arg.(value & opt int64 2024L & info [ "seed" ] ~doc)

let all_sites_arg =
  let doc =
    "Also inject into duplicated/checker/instrumentation instructions \
     (DESIGN.md experiment E8)."
  in
  Arg.(value & flag & info [ "all-sites" ] ~doc)

let fault_bits_arg =
  let doc = "Bits flipped per fault (>1 reproduces multi-bit upsets, E11)." in
  Arg.(value & opt int 1 & info [ "fault-bits" ] ~doc)

let optimize_arg =
  let doc = "Run the backend peephole optimiser before protection (E9)." in
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc)

let no_simd_arg =
  let doc = "Disable FERRUM's SIMD batching (E6 ablation)." in
  Arg.(value & flag & info [ "no-simd" ] ~doc)

let zmm_arg =
  let doc = "Batch eight results through ZMM registers (E10 extension)." in
  Arg.(value & flag & info [ "zmm" ] ~doc)

let liveness_arg =
  let doc =
    "Under register pressure, clobber liveness-proven dead registers \
     instead of push/pop requisition (paper SIII-B2)."
  in
  Arg.(value & flag & info [ "liveness" ] ~doc)

let spares_arg =
  let doc =
    "Cap the spare general-purpose registers FERRUM may use (E7: forces \
     stack-level requisition, paper Fig. 7)."
  in
  Arg.(value & opt (some int) None & info [ "max-spares" ] ~doc)

type knobs = {
  optimize : bool;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
}

let knobs_term =
  let make optimize no_simd zmm liveness max_spares =
    {
      optimize;
      ferrum_config =
        {
          Ferrum_eddi.Ferrum_pass.use_simd = not no_simd;
          use_zmm = zmm;
          use_liveness = liveness;
          select = None;
          max_spare_gprs = max_spares;
          max_spare_simd = None;
        };
    }
  in
  Term.(
    const make $ optimize_arg $ no_simd_arg $ zmm_arg $ liveness_arg
    $ spares_arg)

let program_of ?technique knobs entry =
  let m = entry.Catalog.build () in
  match technique with
  | None -> (Pipeline.raw ~optimize:knobs.optimize m).program
  | Some t ->
    (Pipeline.protect ~ferrum_config:knobs.ferrum_config
       ~optimize:knobs.optimize t m)
      .program

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Catalog.entry) ->
        Fmt.pr "%-16s %-8s %s@." e.name e.suite e.domain)
      Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark catalogue (Table II).")
    Term.(const run $ const ())

(* ---- ir ---- *)

let ir_cmd =
  let run bench =
    let e = find_bench bench in
    print_string (Ferrum_ir.Ir.to_string (e.build ()))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Print the mini-IR of a benchmark.")
    Term.(const run $ bench_arg)

(* ---- compile ---- *)

let compile_cmd =
  let run bench technique knobs =
    let p = program_of ?technique knobs (find_bench bench) in
    print_string (Ferrum_asm.Printer.program_to_string p)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a benchmark to AT&T-syntax assembly, optionally protected.")
    Term.(const run $ bench_arg $ protect_arg $ knobs_term)

(* ---- run ---- *)

let run_cmd =
  let run bench technique knobs =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let outcome, st = Machine.run_fresh img in
    Fmt.pr "outcome: %a@." Machine.pp_outcome outcome;
    Fmt.pr "dynamic instructions: %d@." st.Machine.steps;
    Fmt.pr "model cycles: %.0f@." st.Machine.cycles;
    Fmt.pr "static instructions: %d@." (Ferrum_asm.Prog.num_instructions p);
    match outcome with Machine.Exit _ -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a (optionally protected) benchmark.")
    Term.(const run $ bench_arg $ protect_arg $ knobs_term)

(* ---- inject ---- *)

let inject_cmd =
  let run bench technique knobs samples seed all_sites fault_bits verbose =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let scope = if all_sites then F.All_sites else F.Original_only in
    let res = F.campaign ~scope ~seed ~samples ~fault_bits img in
    Fmt.pr "%a@." F.pp_counts res.F.counts;
    Fmt.pr "SDC probability: %.4f +/- %.4f (95%%)@."
      (F.sdc_probability res.F.counts)
      (F.confidence95 res.F.counts);
    if verbose then
      List.iter
        (fun (cls, (f : F.fault)) ->
          Fmt.pr "  %-8s dyn=%-8d %s bit=%d@." (F.classification_name cls)
            f.F.dyn_index f.F.dest_desc f.F.bit)
        (List.rev res.F.faults)
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every fault.")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Fault-injection campaign: single bit flips in destination \
          registers of sampled dynamic instructions.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ samples_arg
      $ seed_arg $ all_sites_arg $ fault_bits_arg $ verbose_arg)

(* ---- trace: annotated execution trace ---- *)

let trace_cmd =
  let run bench technique knobs limit skip =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let printed = ref 0 and seen = ref 0 in
    let on_step (st : Machine.state) idx =
      incr seen;
      if !seen > skip && !printed < limit then begin
        incr printed;
        let ins = img.Machine.code.(idx) in
        let dests =
          List.filter_map
            (function
              | Ferrum_asm.Instr.Dgpr (r, _) ->
                Some
                  (Fmt.str "%s=%Ld"
                     (Ferrum_asm.Reg.gpr_name r Ferrum_asm.Reg.Q)
                     st.Machine.gpr.(Ferrum_asm.Reg.gpr_index r))
              | Ferrum_asm.Instr.Dflags _ ->
                Some
                  (Fmt.str "zf=%b sf=%b" st.Machine.zf st.Machine.sf)
              | Ferrum_asm.Instr.Dsimd (x, lanes) ->
                Some
                  (Fmt.str "xmm%d[%d]=%Ld" x (List.hd lanes)
                     st.Machine.simd.((x * 8) + List.hd lanes)))
            img.Machine.dests.(idx)
        in
        Fmt.pr "%8d  %-40s %s@." !seen
          (Ferrum_asm.Printer.string_of_instr ins.Ferrum_asm.Instr.op)
          (String.concat "  " dests)
      end
    in
    let outcome, st = Machine.run_fresh ~on_step img in
    Fmt.pr "... %a after %d instructions@." Machine.pp_outcome outcome
      st.Machine.steps
  in
  let limit_arg =
    Arg.(value & opt int 60 & info [ "limit" ] ~doc:"Instructions to print.")
  in
  let skip_arg =
    Arg.(value & opt int 0 & info [ "skip" ] ~doc:"Instructions to skip first.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Print an annotated execution trace (each retired instruction \
          with the values it wrote).")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ limit_arg $ skip_arg)

(* ---- check: parse/validate/run assembly text ---- *)

let check_cmd =
  let run file execute =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ferrum_asm.Parser.program text with
    | exception Ferrum_asm.Parser.Parse_error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1
    | p -> (
      match Ferrum_asm.Prog.validate p with
      | exception Ferrum_asm.Prog.Ill_formed msg ->
        Fmt.epr "%s: ill-formed: %s@." file msg;
        exit 1
      | () ->
        let stats = Ferrum_asm.Stats.of_program p in
        Fmt.pr "%s: ok@.%a" file Ferrum_asm.Stats.pp stats;
        if execute then begin
          let outcome, st = Machine.run_fresh (Machine.load p) in
          Fmt.pr "outcome: %a (%d instructions, %.0f cycles)@."
            Machine.pp_outcome outcome st.Machine.steps st.Machine.cycles;
          match outcome with Machine.Exit _ -> () | _ -> exit 1
        end)
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Assembly text in the dialect printed by `compile'.")
  in
  let exec_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Also simulate the program.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse and validate an assembly file (as printed by `compile'), \
          report its composition, and optionally simulate it.")
    Term.(const run $ file_arg $ exec_arg)

(* ---- stats: transform statistics ---- *)

let stats_cmd =
  let run bench knobs =
    let e = find_bench bench in
    let m = e.Catalog.build () in
    let raw = (Pipeline.raw ~optimize:knobs.optimize m).program in
    let p, fstats =
      Ferrum_eddi.Ferrum_pass.protect ~config:knobs.ferrum_config raw
    in
    let sraw = Ferrum_asm.Stats.of_program raw in
    let sprot = Ferrum_asm.Stats.of_program p in
    Fmt.pr "raw:@.%a@.ferrum:@.%a@." Ferrum_asm.Stats.pp sraw
      Ferrum_asm.Stats.pp sprot;
    Fmt.pr "static expansion: %.2fx@."
      (Ferrum_asm.Stats.expansion ~baseline:sraw ~protected_:sprot);
    Fmt.pr "transform: %a@." Ferrum_eddi.Ferrum_pass.pp_stats fstats
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Static composition and FERRUM transform statistics for a \
             benchmark.")
    Term.(const run $ bench_arg $ knobs_term)

(* ---- cc: the C-lite frontend ---- *)

let cc_cmd =
  let run file technique knobs emit samples seed fault_bits =
    let m =
      try Ferrum_clite.Clite.compile_file file
      with Ferrum_clite.Clite.Error msg ->
        Fmt.epr "%s: %s@." file msg;
        exit 1
    in
    let program () =
      match technique with
      | None -> (Pipeline.raw ~optimize:knobs.optimize m).program
      | Some t ->
        (Pipeline.protect ~ferrum_config:knobs.ferrum_config
           ~optimize:knobs.optimize t m)
          .program
    in
    match emit with
    | "ir" -> print_string (Ferrum_ir.Ir.to_string m)
    | "asm" -> print_string (Ferrum_asm.Printer.program_to_string (program ()))
    | "run" ->
      let img = Machine.load (program ()) in
      let outcome, st = Machine.run_fresh img in
      Fmt.pr "outcome: %a@." Machine.pp_outcome outcome;
      Fmt.pr "dynamic instructions: %d@." st.Machine.steps;
      Fmt.pr "model cycles: %.0f@." st.Machine.cycles;
      (match outcome with Machine.Exit _ -> () | _ -> exit 1)
    | "inject" ->
      let img = Machine.load (program ()) in
      let res = F.campaign ~seed ~samples ~fault_bits img in
      Fmt.pr "%a@." F.pp_counts res.F.counts;
      Fmt.pr "SDC probability: %.4f +/- %.4f (95%%)@."
        (F.sdc_probability res.F.counts)
        (F.confidence95 res.F.counts)
    | other ->
      Fmt.epr "unknown --emit %S (expected ir, asm, run or inject)@." other;
      exit 2
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"C-lite source file (see examples/programs).")
  in
  let emit_arg =
    Arg.(value & opt string "run"
         & info [ "emit" ] ~doc:"What to do: ir, asm, run or inject.")
  in
  Cmd.v
    (Cmd.info "cc"
       ~doc:
         "Compile a C-lite source file and print its IR or assembly, \
          simulate it, or run a fault-injection campaign on it.")
    Term.(
      const run $ file_arg $ protect_arg $ knobs_term $ emit_arg
      $ samples_arg $ seed_arg $ fault_bits_arg)

(* ---- report ---- *)

let report_cmd =
  let run samples seed =
    let options =
      { Ferrum_report.Experiments.default_options with samples; seed }
    in
    let results = Ferrum_report.Experiments.run ~options () in
    print_endline (Ferrum_report.Render.table1 ());
    print_newline ();
    print_endline (Ferrum_report.Render.table2 results);
    print_newline ();
    print_endline (Ferrum_report.Render.fig10 results);
    print_endline (Ferrum_report.Render.fig11 results);
    print_endline (Ferrum_report.Render.exec_time results);
    print_newline ();
    print_endline (Ferrum_report.Render.summary results)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate the paper's evaluation tables and figures.")
    Term.(const run $ samples_arg $ seed_arg)

let () =
  let doc =
    "FERRUM: assembly-level error detection by duplicated instructions \
     with SIMD-batched checking (reproduction of He, Xu & Li, DSN 2024)."
  in
  let info = Cmd.info "ferrum" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; ir_cmd; compile_cmd; run_cmd; inject_cmd; cc_cmd;
            check_cmd; stats_cmd; trace_cmd; report_cmd ]))
