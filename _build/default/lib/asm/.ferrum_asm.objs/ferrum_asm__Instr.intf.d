lib/asm/instr.mli: Cond Reg
