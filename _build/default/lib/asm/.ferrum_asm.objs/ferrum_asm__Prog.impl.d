lib/asm/prog.ml: Fmt Instr List Set String
