lib/asm/printer.ml: Cond Fmt Instr List Printf Prog Reg
