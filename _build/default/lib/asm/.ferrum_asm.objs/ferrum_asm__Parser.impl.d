lib/asm/parser.ml: Buffer Cond Fmt Instr Int64 List Prog Reg String
