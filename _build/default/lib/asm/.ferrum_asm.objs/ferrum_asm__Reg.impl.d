lib/asm/reg.ml: Fmt List Printf String
