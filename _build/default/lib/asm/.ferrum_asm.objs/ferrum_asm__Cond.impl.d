lib/asm/cond.ml: Fmt
