lib/asm/prog.mli: Format Instr
