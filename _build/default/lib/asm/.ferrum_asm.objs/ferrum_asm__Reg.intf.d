lib/asm/reg.mli: Format
