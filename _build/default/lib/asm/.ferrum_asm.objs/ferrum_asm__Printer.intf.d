lib/asm/printer.mli: Format Instr Prog Reg
