lib/asm/parser.mli: Instr Prog
