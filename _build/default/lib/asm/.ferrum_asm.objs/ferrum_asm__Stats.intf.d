lib/asm/stats.mli: Format Instr Prog
