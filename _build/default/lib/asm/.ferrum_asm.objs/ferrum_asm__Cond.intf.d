lib/asm/cond.mli: Format
