lib/asm/instr.ml: Cond List Reg
