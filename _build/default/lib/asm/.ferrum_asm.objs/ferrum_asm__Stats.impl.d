lib/asm/stats.ml: Fmt Hashtbl Instr List Option Prog
