(* AT&T-syntax pretty printer.  The output of [program] is accepted by
   [Parser.program] (round-trip tested by property tests). *)

open Instr

let string_of_mem (m : mem) =
  let base = match m.base with Some r -> "%" ^ Reg.gpr_name r Reg.Q | None -> "" in
  let index =
    match m.index with
    | Some r -> Printf.sprintf ",%%%s,%d" (Reg.gpr_name r Reg.Q) m.scale
    | None -> ""
  in
  if m.base = None && m.index = None then Printf.sprintf "%d" m.disp
  else if m.disp = 0 then Printf.sprintf "(%s%s)" base index
  else Printf.sprintf "%d(%s%s)" m.disp base index

let string_of_operand size = function
  | Imm i -> Printf.sprintf "$%Ld" i
  | Reg r -> "%" ^ Reg.gpr_name r size
  | Mem m -> string_of_mem m

let string_of_alu = function
  | Add -> "add" | Sub -> "sub" | Imul -> "imul"
  | And -> "and" | Or -> "or" | Xor -> "xor"

let string_of_shift = function Shl -> "shl" | Sar -> "sar" | Shr -> "shr"

let string_of_pinsr_src = function
  | Psrc_reg r -> "%" ^ Reg.gpr_name r Reg.Q
  | Psrc_mem m -> string_of_mem m

let string_of_instr (i : t) =
  let sz = Reg.size_suffix in
  let op2 name s a b =
    Printf.sprintf "%s%s %s, %s" name (sz s) (string_of_operand s a)
      (string_of_operand s b)
  in
  match i with
  | Mov (s, a, b) -> op2 "mov" s a b
  | Movslq (a, r) ->
    Printf.sprintf "movslq %s, %%%s" (string_of_operand Reg.D a)
      (Reg.gpr_name r Reg.Q)
  | Movzbq (a, r) ->
    Printf.sprintf "movzbq %s, %%%s" (string_of_operand Reg.B a)
      (Reg.gpr_name r Reg.Q)
  | Lea (m, r) ->
    Printf.sprintf "leaq %s, %%%s" (string_of_mem m) (Reg.gpr_name r Reg.Q)
  | Alu (op, s, a, b) -> op2 (string_of_alu op) s a b
  | Shift (k, s, amt, dst) ->
    let amt_s =
      match amt with Amt_imm n -> Printf.sprintf "$%d" n | Amt_cl -> "%cl"
    in
    Printf.sprintf "%s%s %s, %s" (string_of_shift k) (sz s) amt_s
      (string_of_operand s dst)
  | Neg (s, o) -> Printf.sprintf "neg%s %s" (sz s) (string_of_operand s o)
  | Not (s, o) -> Printf.sprintf "not%s %s" (sz s) (string_of_operand s o)
  | Cmp (s, a, b) -> op2 "cmp" s a b
  | Test (s, a, b) -> op2 "test" s a b
  | Set (c, o) ->
    Printf.sprintf "set%s %s" (Cond.name c) (string_of_operand Reg.B o)
  | Jmp l -> Printf.sprintf "jmp %s" l
  | Jcc (c, l) -> Printf.sprintf "j%s %s" (Cond.name c) l
  | Call f -> Printf.sprintf "call %s" f
  | Ret -> "ret"
  | Push o -> Printf.sprintf "pushq %s" (string_of_operand Reg.Q o)
  | Pop r -> Printf.sprintf "popq %%%s" (Reg.gpr_name r Reg.Q)
  | Cqto -> "cqto"
  | Idiv (s, o) -> Printf.sprintf "idiv%s %s" (sz s) (string_of_operand s o)
  | MovQ_to_xmm (o, x) ->
    Printf.sprintf "movq %s, %%%s" (string_of_operand Reg.Q o) (Reg.xmm_name x)
  | MovQ_from_xmm (x, r) ->
    Printf.sprintf "movq %%%s, %%%s" (Reg.xmm_name x) (Reg.gpr_name r Reg.Q)
  | Pinsrq (lane, src, x) ->
    Printf.sprintf "pinsrq $%d, %s, %%%s" lane (string_of_pinsr_src src)
      (Reg.xmm_name x)
  | Pextrq (lane, x, r) ->
    Printf.sprintf "pextrq $%d, %%%s, %%%s" lane (Reg.xmm_name x)
      (Reg.gpr_name r Reg.Q)
  | Vinserti128 (lane, s, a, d) ->
    Printf.sprintf "vinserti128 $%d, %%%s, %%%s, %%%s" lane (Reg.xmm_name s)
      (Reg.ymm_name a) (Reg.ymm_name d)
  | Vpxor (a, b, d) ->
    Printf.sprintf "vpxor %%%s, %%%s, %%%s" (Reg.ymm_name a) (Reg.ymm_name b)
      (Reg.ymm_name d)
  | Vptest (a, b) ->
    Printf.sprintf "vptest %%%s, %%%s" (Reg.ymm_name a) (Reg.ymm_name b)
  | Vinserti64x4 (lane, s, a, d) ->
    Printf.sprintf "vinserti64x4 $%d, %%%s, %%%s, %%%s" lane (Reg.ymm_name s)
      (Reg.zmm_name a) (Reg.zmm_name d)
  | Vpxorq512 (a, b, d) ->
    Printf.sprintf "vpxorq %%%s, %%%s, %%%s" (Reg.zmm_name a) (Reg.zmm_name b)
      (Reg.zmm_name d)
  | Vptestmq512 (a, b) ->
    Printf.sprintf "vptestmq %%%s, %%%s" (Reg.zmm_name a) (Reg.zmm_name b)

let provenance_comment = function
  | Original -> ""
  | Dup -> "\t# dup"
  | Check -> "\t# check"
  | Instrumentation -> "\t# instr"

let pp_ins ?(comments = true) ppf (i : ins) =
  Fmt.pf ppf "\t%s%s" (string_of_instr i.op)
    (if comments then provenance_comment i.prov else "")

let pp_block ?comments ppf (b : Prog.block) =
  Fmt.pf ppf "%s:@\n" b.label;
  List.iter (fun i -> Fmt.pf ppf "%a@\n" (pp_ins ?comments) i) b.insns

let pp_func ?comments ppf (f : Prog.func) =
  Fmt.pf ppf "\t.globl %s@\n" f.fname;
  List.iter (pp_block ?comments ppf) f.blocks

let pp_program ?comments ppf (t : Prog.t) =
  Fmt.pf ppf "\t.text@\n";
  List.iter (fun f -> Fmt.pf ppf "%a@\n" (pp_func ?comments) f) t.funcs

let program_to_string ?comments t =
  Fmt.str "%a" (pp_program ?comments) t

let instr_to_string = string_of_instr
