(** AT&T-syntax pretty printer.  [program_to_string] output is accepted
    by {!Parser.program}; the round trip preserves instructions and
    provenance (property-tested). *)

val string_of_mem : Instr.mem -> string

(** Render an operand at the given width (selects the register view). *)
val string_of_operand : Reg.size -> Instr.operand -> string

(** One instruction, without indentation or provenance comment. *)
val string_of_instr : Instr.t -> string

(** Alias of {!string_of_instr}. *)
val instr_to_string : Instr.t -> string

(** Print one instruction with a tab indent; when [comments] (default
    true), non-original provenance is appended as "# dup", "# check" or
    "# instr", which {!Parser} restores. *)
val pp_ins : ?comments:bool -> Format.formatter -> Instr.ins -> unit

val pp_block : ?comments:bool -> Format.formatter -> Prog.block -> unit
val pp_func : ?comments:bool -> Format.formatter -> Prog.func -> unit
val pp_program : ?comments:bool -> Format.formatter -> Prog.t -> unit
val program_to_string : ?comments:bool -> Prog.t -> string
