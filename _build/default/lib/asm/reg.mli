(** x86-64 register model.

    Sixteen general-purpose registers with the architectural 8/16/32/
    64-bit views, and sixteen SIMD registers identified by index, where
    XMM{i}/YMM{i}/ZMM{i} alias the low 128/256/512 bits of the same
    physical register. *)

(** General-purpose registers. *)
type gpr =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

(** Operand widths: byte, word, double word, quad word. *)
type size = B | W | D | Q

(** A SIMD register index in [0, 15]. *)
type simd = int

(** All sixteen general-purpose registers, in encoding order. *)
val all_gprs : gpr list

(** Encoding number of a register, 0..15. *)
val gpr_index : gpr -> int

(** Inverse of {!gpr_index}; raises [Invalid_argument] outside 0..15. *)
val gpr_of_index : int -> gpr

(** Bytes in a value of the given width (1, 2, 4 or 8). *)
val size_bytes : size -> int

(** Bits in a value of the given width. *)
val size_bits : size -> int

(** AT&T mnemonic suffix for a width: "b", "w", "l" or "q". *)
val size_suffix : size -> string

val equal_gpr : gpr -> gpr -> bool

(** Total order on general-purpose registers (by encoding). *)
val compare_gpr : gpr -> gpr -> int

(** AT&T name of a register view, e.g. [gpr_name RAX D = "eax"],
    [gpr_name R10 B = "r10b"]. *)
val gpr_name : gpr -> size -> string

(** Parse any view name back to the register and the width it denotes. *)
val gpr_of_name : string -> (gpr * size) option

(** ["xmm3"]-style names for the three SIMD views of register [i]. *)
val xmm_name : simd -> string

val ymm_name : simd -> string
val zmm_name : simd -> string

(** Print a GPR at its 64-bit view with the AT&T "%" prefix. *)
val pp_gpr : Format.formatter -> gpr -> unit
