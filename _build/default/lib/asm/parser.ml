(* Parser for the AT&T-syntax subset emitted by {!Printer}.  Intended for
   round-tripping protected programs through text (tests, CLI, external
   inspection), not for arbitrary compiler output. *)

open Instr

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let is_space c = c = ' ' || c = '\t'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Split "op a, b, c" into the mnemonic and comma-separated operands,
   ignoring any "# ..." comment suffix. *)
let split_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  match String.index_opt line ' ' with
  | None -> (line, [])
  | Some i ->
    let mnem = String.sub line 0 i in
    let rest = String.sub line i (String.length line - i) in
    (* split on commas outside parentheses: memory operands such as
       (%rax,%rcx,8) contain commas of their own *)
    let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
      rest;
    parts := Buffer.contents buf :: !parts;
    (mnem, List.rev_map strip !parts)

let parse_gpr s =
  if String.length s < 2 || s.[0] <> '%' then
    parse_error "expected register, got %S" s
  else
    let name = String.sub s 1 (String.length s - 1) in
    match Reg.gpr_of_name name with
    | Some rs -> rs
    | None -> parse_error "unknown register %S" s

let parse_simd s =
  if String.length s < 5 || s.[0] <> '%' then
    parse_error "expected SIMD register, got %S" s
  else
    let name = String.sub s 1 (String.length s - 1) in
    let prefix = String.sub name 0 3 in
    if prefix <> "xmm" && prefix <> "ymm" && prefix <> "zmm" then
      parse_error "expected SIMD register, got %S" s
    else
      match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
      | Some i when i >= 0 && i < 16 -> i
      | _ -> parse_error "bad SIMD register %S" s

let parse_imm s =
  if String.length s < 2 || s.[0] <> '$' then
    parse_error "expected immediate, got %S" s
  else
    match Int64.of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i -> i
    | None -> parse_error "bad immediate %S" s

(* Memory operand: [disp] "(" %base [ "," %index "," scale ] ")" or a bare
   absolute displacement. *)
let parse_mem s =
  match String.index_opt s '(' with
  | None -> (
    match int_of_string_opt s with
    | Some disp -> mem disp
    | None -> parse_error "bad memory operand %S" s)
  | Some lp ->
    let disp =
      if lp = 0 then 0
      else
        match int_of_string_opt (String.sub s 0 lp) with
        | Some d -> d
        | None -> parse_error "bad displacement in %S" s
    in
    let rp =
      match String.index_opt s ')' with
      | Some i -> i
      | None -> parse_error "unterminated memory operand %S" s
    in
    let inner = String.sub s (lp + 1) (rp - lp - 1) in
    let parts = List.map strip (String.split_on_char ',' inner) in
    let reg_of s = fst (parse_gpr s) in
    (match parts with
    | [ b ] -> { base = Some (reg_of b); index = None; scale = 1; disp }
    | [ b; i; sc ] ->
      let base = if String.equal b "" then None else Some (reg_of b) in
      let scale =
        match int_of_string_opt sc with
        | Some k -> k
        | None -> parse_error "bad scale in %S" s
      in
      { base; index = Some (reg_of i); scale; disp }
    | _ -> parse_error "bad memory operand %S" s)

let parse_operand s =
  if s = "" then parse_error "empty operand"
  else if s.[0] = '$' then Imm (parse_imm s)
  else if s.[0] = '%' then Reg (fst (parse_gpr s))
  else Mem (parse_mem s)

let alu_of_mnem = function
  | "add" -> Some Add | "sub" -> Some Sub | "imul" -> Some Imul
  | "and" -> Some And | "or" -> Some Or | "xor" -> Some Xor
  | _ -> None

let shift_of_mnem = function
  | "shl" -> Some Shl | "sar" -> Some Sar | "shr" -> Some Shr
  | _ -> None

let size_of_suffix = function
  | 'b' -> Some Reg.B | 'w' -> Some Reg.W | 'l' -> Some Reg.D
  | 'q' -> Some Reg.Q | _ -> None

(* Split a sized mnemonic like "movq" into ("mov", Q). *)
let split_sized mnem =
  let n = String.length mnem in
  if n < 2 then None
  else
    match size_of_suffix mnem.[n - 1] with
    | Some s -> Some (String.sub mnem 0 (n - 1), s)
    | None -> None

let is_simd_operand s = String.length s > 4 && s.[0] = '%'
  && (String.sub s 1 3 = "xmm" || String.sub s 1 3 = "ymm"
     || String.sub s 1 3 = "zmm")

let parse_instr line : t =
  let mnem, ops = split_line line in
  let op2 k =
    match ops with
    | [ a; b ] -> k a b
    | _ -> parse_error "expected 2 operands in %S" line
  in
  match (mnem, ops) with
  | "ret", [] -> Ret
  | "cqto", [] -> Cqto
  | "jmp", [ l ] -> Jmp l
  | "call", [ f ] -> Call f
  | "movslq", [ a; b ] -> Movslq (parse_operand a, fst (parse_gpr b))
  | "movzbq", [ a; b ] -> Movzbq (parse_operand a, fst (parse_gpr b))
  | "leaq", [ a; b ] -> Lea (parse_mem a, fst (parse_gpr b))
  | "pushq", [ a ] -> Push (parse_operand a)
  | "popq", [ a ] -> Pop (fst (parse_gpr a))
  | "pinsrq", [ l; s; d ] ->
    let lane = Int64.to_int (parse_imm l) in
    let src =
      if s.[0] = '%' then Psrc_reg (fst (parse_gpr s)) else Psrc_mem (parse_mem s)
    in
    Pinsrq (lane, src, parse_simd d)
  | "pextrq", [ l; s; d ] ->
    Pextrq (Int64.to_int (parse_imm l), parse_simd s, fst (parse_gpr d))
  | "vinserti128", [ l; s; a; d ] ->
    Vinserti128 (Int64.to_int (parse_imm l), parse_simd s, parse_simd a,
      parse_simd d)
  | "vpxor", [ a; b; d ] -> Vpxor (parse_simd a, parse_simd b, parse_simd d)
  | "vptest", [ a; b ] -> Vptest (parse_simd a, parse_simd b)
  | "vinserti64x4", [ l; s; a; d ] ->
    Vinserti64x4 (Int64.to_int (parse_imm l), parse_simd s, parse_simd a,
      parse_simd d)
  | "vpxorq", [ a; b; d ] ->
    Vpxorq512 (parse_simd a, parse_simd b, parse_simd d)
  | "vptestmq", [ a; b ] -> Vptestmq512 (parse_simd a, parse_simd b)
  | "movq", [ a; b ] when is_simd_operand a || is_simd_operand b ->
    if is_simd_operand a then MovQ_from_xmm (parse_simd a, fst (parse_gpr b))
    else MovQ_to_xmm (parse_operand a, parse_simd b)
  | _ -> (
    (* setcc / jcc *)
    if String.length mnem > 3 && String.sub mnem 0 3 = "set" then
      match (Cond.of_name (String.sub mnem 3 (String.length mnem - 3)), ops)
      with
      | Some c, [ o ] -> Set (c, parse_operand o)
      | _ -> parse_error "bad setcc %S" line
    else if
      String.length mnem >= 2 && mnem.[0] = 'j'
      && Cond.of_name (String.sub mnem 1 (String.length mnem - 1)) <> None
    then
      match (Cond.of_name (String.sub mnem 1 (String.length mnem - 1)), ops)
      with
      | Some c, [ l ] -> Jcc (c, l)
      | _ -> parse_error "bad jcc %S" line
    else
      match split_sized mnem with
      | None -> parse_error "unknown mnemonic %S" line
      | Some (base, s) -> (
        match base with
        | "mov" -> op2 (fun a b -> Mov (s, parse_operand a, parse_operand b))
        | "cmp" -> op2 (fun a b -> Cmp (s, parse_operand a, parse_operand b))
        | "test" -> op2 (fun a b -> Test (s, parse_operand a, parse_operand b))
        | "neg" -> (
          match ops with
          | [ o ] -> Neg (s, parse_operand o)
          | _ -> parse_error "bad neg %S" line)
        | "not" -> (
          match ops with
          | [ o ] -> Not (s, parse_operand o)
          | _ -> parse_error "bad not %S" line)
        | "idiv" -> (
          match ops with
          | [ o ] -> Idiv (s, parse_operand o)
          | _ -> parse_error "bad idiv %S" line)
        | _ -> (
          match (alu_of_mnem base, shift_of_mnem base) with
          | Some a, _ ->
            op2 (fun x y -> Alu (a, s, parse_operand x, parse_operand y))
          | None, Some k -> (
            match ops with
            | [ amt; dst ] ->
              let amount =
                if String.equal amt "%cl" then Amt_cl
                else Amt_imm (Int64.to_int (parse_imm amt))
              in
              Shift (k, s, amount, parse_operand dst)
            | _ -> parse_error "bad shift %S" line)
          | None, None -> parse_error "unknown mnemonic %S" line)))

(* Parse a whole program in the format produced by {!Printer.pp_program}.
   Provenance comments are restored from the trailing "# dup" / "# check"
   / "# instr" markers. *)
let program text : Prog.t =
  let lines = String.split_on_char '\n' text in
  let funcs = ref [] in
  let cur_fname = ref None in
  let cur_blocks = ref [] in
  let cur_label = ref None in
  let cur_insns = ref [] in
  let flush_block () =
    match !cur_label with
    | None ->
      if !cur_insns <> [] then parse_error "instructions before any label"
    | Some l ->
      cur_blocks := Prog.block l (List.rev !cur_insns) :: !cur_blocks;
      cur_label := None;
      cur_insns := []
  in
  let flush_func () =
    flush_block ();
    match !cur_fname with
    | None -> if !cur_blocks <> [] then parse_error "blocks before .globl"
    | Some name ->
      funcs := Prog.func name (List.rev !cur_blocks) :: !funcs;
      cur_fname := None;
      cur_blocks := []
  in
  let prov_of_line line =
    match String.index_opt line '#' with
    | None -> Original
    | Some i ->
      let tag = strip (String.sub line (i + 1) (String.length line - i - 1)) in
      (match tag with
      | "dup" -> Dup
      | "check" -> Check
      | "instr" -> Instrumentation
      | _ -> Original)
  in
  List.iter
    (fun raw ->
      let line = strip raw in
      if String.equal line "" || String.equal line ".text" then ()
      else if String.length line > 6 && String.sub line 0 6 = ".globl" then begin
        flush_func ();
        cur_fname := Some (strip (String.sub line 6 (String.length line - 6)))
      end
      else if String.length line > 0 && line.[String.length line - 1] = ':'
      then begin
        flush_block ();
        cur_label := Some (String.sub line 0 (String.length line - 1))
      end
      else
        let op = parse_instr line in
        cur_insns := { op; prov = prov_of_line raw } :: !cur_insns)
    lines;
  flush_func ();
  Prog.program (List.rev !funcs)
