(* Static statistics over assembly programs: instruction-class histograms
   and code-size expansion factors, used by reports and tests. *)

type t = {
  total : int;
  by_class : (Instr.klass * int) list;
  originals : int;
  dups : int;
  checks : int;
  instrumentation : int;
}

let all_klasses =
  Instr.[ K_alu; K_load; K_store; K_branch; K_call; K_simd; K_div; K_setcc ]

let of_program (p : Prog.t) =
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          List.iter (fun (i : Instr.ins) -> bump (Instr.klass i.op)) b.insns)
        f.blocks)
    p.funcs;
  let by_class =
    List.map
      (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt counts k)))
      all_klasses
  in
  let originals, dups, checks, instrumentation = Prog.provenance_counts p in
  { total = Prog.num_instructions p; by_class; originals; dups; checks;
    instrumentation }

(* Static code-size expansion of a protected program over its baseline. *)
let expansion ~baseline ~protected_ =
  if baseline.total = 0 then 0.0
  else float_of_int protected_.total /. float_of_int baseline.total

let pp ppf t =
  Fmt.pf ppf "total=%d (orig=%d dup=%d check=%d instr=%d)@\n" t.total
    t.originals t.dups t.checks t.instrumentation;
  List.iter
    (fun (k, n) ->
      if n > 0 then Fmt.pf ppf "  %-7s %d@\n" (Instr.klass_name k) n)
    t.by_class
