(** x86 condition codes, as used by [set<cc>] and [j<cc>], and their
    evaluation over the RFLAGS bits the machine models (ZF, SF, CF,
    OF). *)

type t =
  | E  (** equal: ZF *)
  | NE  (** not equal: [not ZF] *)
  | L  (** signed less: SF <> OF *)
  | LE  (** signed less-or-equal *)
  | G  (** signed greater *)
  | GE  (** signed greater-or-equal *)
  | B  (** unsigned below: CF *)
  | BE  (** unsigned below-or-equal *)
  | A  (** unsigned above *)
  | AE  (** unsigned above-or-equal *)
  | S  (** sign set *)
  | NS  (** sign clear *)

(** Every condition code, for enumeration in tests. *)
val all : t list

(** Mnemonic suffix, e.g. [name LE = "le"]. *)
val name : t -> string

(** Parse a suffix; accepts the common aliases ("z", "nz", "c", "nc"). *)
val of_name : string -> t option

(** Logical negation: [eval (negate c) = not (eval c)] for all flags. *)
val negate : t -> t

(** Evaluate the condition against concrete flag values. *)
val eval : t -> zf:bool -> sf:bool -> cf:bool -> of_:bool -> bool

(** The individual RFLAGS bits our machine models. *)
type flag = ZF | SF | CF | OF

(** Which flags a condition reads; used by the fault injector to decide
    whether a flag fault can influence a later conditional. *)
val reads : t -> flag list

val pp : Format.formatter -> t -> unit
