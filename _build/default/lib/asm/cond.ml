(* x86 condition codes used by [set<cc>] and [j<cc>] instructions, together
   with their evaluation over the RFLAGS bits our machine models. *)

type t =
  | E   (* equal: ZF *)
  | NE  (* not equal: !ZF *)
  | L   (* signed less: SF <> OF *)
  | LE  (* signed less-or-equal: ZF || SF <> OF *)
  | G   (* signed greater: !ZF && SF = OF *)
  | GE  (* signed greater-or-equal: SF = OF *)
  | B   (* unsigned below: CF *)
  | BE  (* unsigned below-or-equal: CF || ZF *)
  | A   (* unsigned above: !CF && !ZF *)
  | AE  (* unsigned above-or-equal: !CF *)
  | S   (* sign: SF *)
  | NS  (* no sign: !SF *)

let all = [ E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]

let name = function
  | E -> "e" | NE -> "ne" | L -> "l" | LE -> "le" | G -> "g" | GE -> "ge"
  | B -> "b" | BE -> "be" | A -> "a" | AE -> "ae" | S -> "s" | NS -> "ns"

let of_name = function
  | "e" | "z" -> Some E
  | "ne" | "nz" -> Some NE
  | "l" -> Some L
  | "le" -> Some LE
  | "g" -> Some G
  | "ge" -> Some GE
  | "b" | "c" -> Some B
  | "be" -> Some BE
  | "a" -> Some A
  | "ae" | "nc" -> Some AE
  | "s" -> Some S
  | "ns" -> Some NS
  | _ -> None

let negate = function
  | E -> NE | NE -> E
  | L -> GE | GE -> L
  | LE -> G | G -> LE
  | B -> AE | AE -> B
  | BE -> A | A -> BE
  | S -> NS | NS -> S

(* Evaluate the condition against concrete flag values. *)
let eval t ~zf ~sf ~cf ~of_ =
  match t with
  | E -> zf
  | NE -> not zf
  | L -> sf <> of_
  | LE -> zf || sf <> of_
  | G -> (not zf) && sf = of_
  | GE -> sf = of_
  | B -> cf
  | BE -> cf || zf
  | A -> (not cf) && not zf
  | AE -> not cf
  | S -> sf
  | NS -> not sf

(* Which RFLAGS bits the condition reads; used by the fault injector to
   decide whether a flag fault can influence a later conditional. *)
type flag = ZF | SF | CF | OF

let reads = function
  | E | NE -> [ ZF ]
  | L | GE -> [ SF; OF ]
  | LE | G -> [ ZF; SF; OF ]
  | B | AE -> [ CF ]
  | BE | A -> [ CF; ZF ]
  | S | NS -> [ SF ]

let pp ppf t = Fmt.string ppf (name t)
