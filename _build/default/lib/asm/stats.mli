(** Static statistics over assembly programs: instruction-class
    histograms, provenance counts and code-size expansion factors. *)

type t = {
  total : int;
  by_class : (Instr.klass * int) list;
  originals : int;
  dups : int;
  checks : int;
  instrumentation : int;
}

(** Classes reported in {!t.by_class}, in display order. *)
val all_klasses : Instr.klass list

val of_program : Prog.t -> t

(** Static code-size expansion of a protected program over its baseline
    (e.g. 3.4 means 3.4x more instructions). *)
val expansion : baseline:t -> protected_:t -> float

val pp : Format.formatter -> t -> unit
