(** Parser for the AT&T-syntax subset emitted by {!Printer}.  Intended
    for round-tripping protected programs through text (tests, CLI,
    external inspection), not for arbitrary compiler output. *)

exception Parse_error of string

(** Parse one instruction line (without label or directive); trailing
    "#" comments are ignored.  Raises {!Parse_error}. *)
val parse_instr : string -> Instr.t

(** Parse a whole program in {!Printer.pp_program} format: ".globl"
    directives open functions, "label:" lines open blocks, and
    provenance is restored from the trailing comment markers.  Raises
    {!Parse_error}. *)
val program : string -> Prog.t
