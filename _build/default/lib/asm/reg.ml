(* x86-64 register model: 16 general-purpose registers with the usual
   8/16/32/64-bit views, and 16 SIMD registers where each YMM register
   aliases the XMM register of the same index in its low 128 bits. *)

type gpr =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type size = B | W | D | Q

(* SIMD registers are identified by index 0..15; whether an operand views
   the register as XMM (128-bit) or YMM (256-bit) is carried separately. *)
type simd = int

let all_gprs =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

let gpr_index = function
  | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3
  | RSI -> 4 | RDI -> 5 | RBP -> 6 | RSP -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let gpr_of_index = function
  | 0 -> RAX | 1 -> RBX | 2 -> RCX | 3 -> RDX
  | 4 -> RSI | 5 -> RDI | 6 -> RBP | 7 -> RSP
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.gpr_of_index: %d" n)

let size_bytes = function B -> 1 | W -> 2 | D -> 4 | Q -> 8
let size_bits s = 8 * size_bytes s

let size_suffix = function B -> "b" | W -> "w" | D -> "l" | Q -> "q"

let equal_gpr (a : gpr) (b : gpr) = a = b

let compare_gpr a b = compare (gpr_index a) (gpr_index b)

(* AT&T names for each view of a general-purpose register. *)
let gpr_name r s =
  let base64, base32, base16, base8 =
    match r with
    | RAX -> "rax", "eax", "ax", "al"
    | RBX -> "rbx", "ebx", "bx", "bl"
    | RCX -> "rcx", "ecx", "cx", "cl"
    | RDX -> "rdx", "edx", "dx", "dl"
    | RSI -> "rsi", "esi", "si", "sil"
    | RDI -> "rdi", "edi", "di", "dil"
    | RBP -> "rbp", "ebp", "bp", "bpl"
    | RSP -> "rsp", "esp", "sp", "spl"
    | R8 -> "r8", "r8d", "r8w", "r8b"
    | R9 -> "r9", "r9d", "r9w", "r9b"
    | R10 -> "r10", "r10d", "r10w", "r10b"
    | R11 -> "r11", "r11d", "r11w", "r11b"
    | R12 -> "r12", "r12d", "r12w", "r12b"
    | R13 -> "r13", "r13d", "r13w", "r13b"
    | R14 -> "r14", "r14d", "r14w", "r14b"
    | R15 -> "r15", "r15d", "r15w", "r15b"
  in
  match s with Q -> base64 | D -> base32 | W -> base16 | B -> base8

let gpr_of_name name =
  let rec scan rs =
    match rs with
    | [] -> None
    | r :: rest ->
      let hit =
        List.exists (fun s -> String.equal (gpr_name r s) name) [ B; W; D; Q ]
      in
      if hit then
        let sz = List.find (fun s -> String.equal (gpr_name r s) name) [ B; W; D; Q ] in
        Some (r, sz)
      else scan rest
  in
  scan all_gprs

let xmm_name i = Printf.sprintf "xmm%d" i
let ymm_name i = Printf.sprintf "ymm%d" i
let zmm_name i = Printf.sprintf "zmm%d" i

let pp_gpr ppf r = Fmt.pf ppf "%%%s" (gpr_name r Q)
