(** Mini LLVM-like IR in the alloca-based (-O0) form the paper's Fig. 2
    shows: virtual registers are single-assignment, mutable state flows
    through memory (allocas and globals), and control joins need no phi
    nodes.  This is what IR-LEVEL-EDDI transforms and what the backend
    lowers. *)

type ty = I1 | I32 | I64 | Ptr

val ty_name : ty -> string

(** Bytes a value of this type occupies in memory. *)
val ty_bytes : ty -> int

type value =
  | Vreg of int  (** a virtual register *)
  | Const of ty * int64
  | Global of string  (** address of a module-level array *)

type binop = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Ashr | Lshr

type pred = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type cast = Sext_i32_i64 | Trunc_i64_i32 | Zext_i1_i64

type instr =
  | Alloca of { dst : int; bytes : int }
      (** [dst : Ptr] points at a fixed per-activation frame area *)
  | Load of { dst : int; ty : ty; ptr : value }
  | Store of { ty : ty; v : value; ptr : value }
  | Binop of { dst : int; op : binop; ty : ty; a : value; b : value }
  | Icmp of { dst : int; pred : pred; ty : ty; a : value; b : value }
  | Gep of { dst : int; base : value; index : value; scale : int }
      (** dst = base + index * scale; scale in 1/2/4/8 *)
  | Cast of { dst : int; kind : cast; v : value }
  | Call of { dst : int option; callee : string; args : value list }

type terminator =
  | Br of { cond : value; ifso : string; ifnot : string }
  | Jmp of string
  | Ret of value option

type block = { label : string; body : instr list; term : terminator }

type func = {
  name : string;
  params : (int * ty) list;  (** vreg bound to each parameter *)
  ret : ty option;
  blocks : block list;  (** first block is the entry *)
}

type modul = {
  funcs : func list;
  globals : (string * int) list;  (** name, size in bytes *)
  main : string;
}

val binop_name : binop -> string
val pred_name : pred -> string
val cast_name : cast -> string

(** Destination vreg defined by an instruction, if any. *)
val def : instr -> int option

(** Values an instruction reads. *)
val uses : instr -> value list

val uses_of_term : terminator -> value list

(** Successor block labels of a terminator. *)
val successors : terminator -> string list

(** Static IR instruction count, terminators included. *)
val num_instructions : modul -> int

val find_func : modul -> string -> func option

(** {1 LLVM-flavoured printer} *)

val pp_value : Format.formatter -> value -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_term : Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val pp_modul : Format.formatter -> modul -> unit
val to_string : modul -> string
