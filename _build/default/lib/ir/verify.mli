(** IR verifier: structural well-formedness, single-assignment, operand
    typing, known globals/callees, and dominance of definitions over
    uses (computed with the classic iterative dominator algorithm).
    Run by the backend and by every protection pass before and after
    transformation. *)

exception Invalid of string

(** Verify a whole module; raises {!Invalid} with a diagnostic. *)
val run : Ir.modul -> unit
