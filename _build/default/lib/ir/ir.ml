(* Mini LLVM-like IR in the alloca-based (-O0) form the paper's Fig. 2
   uses: virtual registers are single-assignment, all mutable program
   state flows through memory (allocas and globals), and control joins
   need no phi nodes.  This is the representation the IR-level EDDI
   baseline transforms, and the input of the backend compiler. *)

type ty = I1 | I32 | I64 | Ptr

let ty_name = function I1 -> "i1" | I32 -> "i32" | I64 -> "i64" | Ptr -> "ptr"

(* Bytes a value of this type occupies in memory. *)
let ty_bytes = function I1 -> 1 | I32 -> 4 | I64 -> 8 | Ptr -> 8

type value =
  | Vreg of int
  | Const of ty * int64
  | Global of string (* address of a module-level array *)

type binop = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Ashr | Lshr

type pred = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type cast = Sext_i32_i64 | Trunc_i64_i32 | Zext_i1_i64

type instr =
  | Alloca of { dst : int; bytes : int }
  | Load of { dst : int; ty : ty; ptr : value }
  | Store of { ty : ty; v : value; ptr : value }
  | Binop of { dst : int; op : binop; ty : ty; a : value; b : value }
  | Icmp of { dst : int; pred : pred; ty : ty; a : value; b : value }
  | Gep of { dst : int; base : value; index : value; scale : int }
    (* dst = base + index * scale; scale in {1,2,4,8} *)
  | Cast of { dst : int; kind : cast; v : value }
  | Call of { dst : int option; callee : string; args : value list }

type terminator =
  | Br of { cond : value; ifso : string; ifnot : string }
  | Jmp of string
  | Ret of value option

type block = { label : string; body : instr list; term : terminator }

type func = {
  name : string;
  params : (int * ty) list; (* vreg bound to each parameter *)
  ret : ty option;
  blocks : block list;
}

type modul = {
  funcs : func list;
  globals : (string * int) list; (* name, size in bytes *)
  main : string;
}

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Ashr -> "ashr" | Lshr -> "lshr"

let pred_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let cast_name = function
  | Sext_i32_i64 -> "sext"
  | Trunc_i64_i32 -> "trunc"
  | Zext_i1_i64 -> "zext"

(* Destination vreg defined by an instruction, if any. *)
let def = function
  | Alloca { dst; _ } | Load { dst; _ } | Binop { dst; _ } | Icmp { dst; _ }
  | Gep { dst; _ } | Cast { dst; _ } -> Some dst
  | Call { dst; _ } -> dst
  | Store _ -> None

(* Values an instruction reads. *)
let uses = function
  | Alloca _ -> []
  | Load { ptr; _ } -> [ ptr ]
  | Store { v; ptr; _ } -> [ v; ptr ]
  | Binop { a; b; _ } | Icmp { a; b; _ } -> [ a; b ]
  | Gep { base; index; _ } -> [ base; index ]
  | Cast { v; _ } -> [ v ]
  | Call { args; _ } -> args

let uses_of_term = function
  | Br { cond; _ } -> [ cond ]
  | Jmp _ -> []
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let successors = function
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Jmp l -> [ l ]
  | Ret _ -> []

(* Number of static IR instructions (terminators included). *)
let num_instructions (m : modul) =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc b -> acc + List.length b.body + 1) acc f.blocks)
    0 m.funcs

let find_func m name = List.find_opt (fun f -> String.equal f.name name) m.funcs

(* ------------------------------------------------------------------ *)
(* Printer (LLVM-flavoured, for inspection and docs).                  *)
(* ------------------------------------------------------------------ *)

let pp_value ppf = function
  | Vreg r -> Fmt.pf ppf "%%%d" r
  | Const (t, v) -> Fmt.pf ppf "%s %Ld" (ty_name t) v
  | Global g -> Fmt.pf ppf "@%s" g

let pp_instr ppf = function
  | Alloca { dst; bytes } -> Fmt.pf ppf "%%%d = alloca %d bytes" dst bytes
  | Load { dst; ty; ptr } ->
    Fmt.pf ppf "%%%d = load %s, %a" dst (ty_name ty) pp_value ptr
  | Store { ty; v; ptr } ->
    Fmt.pf ppf "store %s %a, %a" (ty_name ty) pp_value v pp_value ptr
  | Binop { dst; op; ty; a; b } ->
    Fmt.pf ppf "%%%d = %s %s %a, %a" dst (binop_name op) (ty_name ty)
      pp_value a pp_value b
  | Icmp { dst; pred; ty; a; b } ->
    Fmt.pf ppf "%%%d = icmp %s %s %a, %a" dst (pred_name pred) (ty_name ty)
      pp_value a pp_value b
  | Gep { dst; base; index; scale } ->
    Fmt.pf ppf "%%%d = gep %a, %a x %d" dst pp_value base pp_value index scale
  | Cast { dst; kind; v } ->
    Fmt.pf ppf "%%%d = %s %a" dst (cast_name kind) pp_value v
  | Call { dst; callee; args } -> (
    let pp_args = Fmt.list ~sep:(Fmt.any ", ") pp_value in
    match dst with
    | Some d -> Fmt.pf ppf "%%%d = call @%s(%a)" d callee pp_args args
    | None -> Fmt.pf ppf "call @%s(%a)" callee pp_args args)

let pp_term ppf = function
  | Br { cond; ifso; ifnot } ->
    Fmt.pf ppf "br %a, label %%%s, label %%%s" pp_value cond ifso ifnot
  | Jmp l -> Fmt.pf ppf "br label %%%s" l
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_value v
  | Ret None -> Fmt.pf ppf "ret void"

let pp_func ppf f =
  Fmt.pf ppf "define @%s(%a) {@\n" f.name
    Fmt.(list ~sep:(any ", ") (fun ppf (r, t) -> pf ppf "%s %%%d" (ty_name t) r))
    f.params;
  List.iter
    (fun b ->
      Fmt.pf ppf "%s:@\n" b.label;
      List.iter (fun i -> Fmt.pf ppf "  %a@\n" pp_instr i) b.body;
      Fmt.pf ppf "  %a@\n" pp_term b.term)
    f.blocks;
  Fmt.pf ppf "}@\n"

let pp_modul ppf m =
  List.iter (fun (g, n) -> Fmt.pf ppf "@%s = global [%d bytes]@\n" g n)
    m.globals;
  List.iter (pp_func ppf) m.funcs

let to_string m = Fmt.str "%a" pp_modul m
