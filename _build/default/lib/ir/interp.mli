(** Reference interpreter for the mini IR.

    Shares no code with the backend or the machine simulator, which
    makes it a useful oracle: every workload's compiled execution is
    differentially tested against interpretation.  Alloca addresses are
    fixed per activation, mirroring the backend's static frames. *)

exception Runtime_error of string

type result = {
  output : int64 list;  (** values passed to [print_i64], in order *)
  steps : int;  (** IR instructions executed *)
}

(** Interpret the module's main function.  Raises {!Runtime_error} on
    division by zero, out-of-bounds access, fuel exhaustion, or if a
    detector builtin is reached. *)
val run : ?fuel:int -> ?mem_size:int -> Ir.modul -> result
