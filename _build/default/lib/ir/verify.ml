(* IR verifier: structural well-formedness, single-assignment, typing,
   and dominance of definitions over uses.  Run by the backend and the
   protection passes before and after transformation. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

module SMap = Map.Make (String)
module ISet = Set.Make (Int)

(* Compute the dominator sets of a function's CFG with the classic
   iterative data-flow algorithm; blocks are small enough that the
   quadratic behaviour is irrelevant. *)
let dominators (f : Ir.func) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace index b.label i) blocks;
  let preds = Array.make n [] in
  Array.iteri
    (fun i (b : Ir.block) ->
      List.iter
        (fun l ->
          match Hashtbl.find_opt index l with
          | Some j -> preds.(j) <- i :: preds.(j)
          | None -> fail "%s: branch to unknown block %s" f.name l)
        (Ir.successors b.term))
    blocks;
  let all = ISet.of_list (List.init n Fun.id) in
  let dom = Array.make n all in
  if n > 0 then dom.(0) <- ISet.singleton 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter =
        match preds.(i) with
        | [] -> ISet.singleton i (* unreachable: dominated only by itself *)
        | p :: ps ->
          List.fold_left (fun acc q -> ISet.inter acc dom.(q)) dom.(p) ps
      in
      let d = ISet.add i inter in
      if not (ISet.equal d dom.(i)) then begin
        dom.(i) <- d;
        changed := true
      end
    done
  done;
  (index, dom)

let value_ty globals types = function
  | Ir.Const (t, _) -> t
  | Ir.Global g ->
    if not (List.mem_assoc g globals) then fail "use of unknown global @%s" g;
    Ir.Ptr
  | Ir.Vreg r -> (
    match Hashtbl.find_opt types r with
    | Some t -> t
    | None -> fail "use of undefined vreg %%%d" r)

let check_func (m : Ir.modul) (f : Ir.func) =
  let types : (int, Ir.ty) Hashtbl.t = Hashtbl.create 64 in
  let define r t =
    if Hashtbl.mem types r then
      fail "%s: vreg %%%d assigned more than once" f.name r;
    Hashtbl.replace types r t
  in
  List.iter (fun (r, t) -> define r t) f.params;
  (* First pass: definitions and types. *)
  let instr_ty i =
    match i with
    | Ir.Alloca _ -> Some Ir.Ptr
    | Ir.Load { ty; _ } -> Some ty
    | Ir.Store _ -> None
    | Ir.Binop { ty; _ } ->
      if ty <> Ir.I32 && ty <> Ir.I64 then fail "%s: binop on %s" f.name (Ir.ty_name ty);
      Some ty
    | Ir.Icmp _ -> Some Ir.I1
    | Ir.Gep _ -> Some Ir.Ptr
    | Ir.Cast { kind; _ } ->
      Some
        (match kind with
        | Ir.Sext_i32_i64 -> Ir.I64
        | Ir.Trunc_i64_i32 -> Ir.I32
        | Ir.Zext_i1_i64 -> Ir.I64)
    | Ir.Call _ -> Some Ir.I64
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match (Ir.def i, instr_ty i) with
          | Some d, Some t -> define d t
          | Some _, None | None, Some _ -> ()
          | None, None -> ())
        b.body)
    f.blocks;
  (* Second pass: operand typing. *)
  let expect what want v =
    let got = value_ty m.Ir.globals types v in
    if got <> want then
      fail "%s: %s expects %s, got %s" f.name what (Ir.ty_name want)
        (Ir.ty_name got)
  in
  let check_instr i =
    match i with
    | Ir.Alloca { bytes; _ } ->
      if bytes <= 0 then fail "%s: alloca of %d bytes" f.name bytes
    | Ir.Load { ptr; _ } -> expect "load" Ir.Ptr ptr
    | Ir.Store { ty; v; ptr } ->
      expect "store value" ty v;
      expect "store" Ir.Ptr ptr
    | Ir.Binop { ty; a; b; _ } ->
      expect "binop lhs" ty a;
      expect "binop rhs" ty b
    | Ir.Icmp { ty; a; b; _ } ->
      expect "icmp lhs" ty a;
      expect "icmp rhs" ty b
    | Ir.Gep { base; index; scale; _ } ->
      expect "gep base" Ir.Ptr base;
      expect "gep index" Ir.I64 index;
      if not (List.mem scale [ 1; 2; 4; 8 ]) then
        fail "%s: gep scale %d" f.name scale
    | Ir.Cast { kind; v; _ } ->
      expect "cast operand"
        (match kind with
        | Ir.Sext_i32_i64 -> Ir.I32
        | Ir.Trunc_i64_i32 -> Ir.I64
        | Ir.Zext_i1_i64 -> Ir.I1)
        v
    | Ir.Call { callee; args; _ } ->
      if
        (not (String.equal callee "print_i64"))
        && (not (String.equal callee "__ferrum_detect"))
        && Ir.find_func m callee = None
      then fail "%s: call to unknown @%s" f.name callee;
      List.iter
        (fun a ->
          match value_ty m.Ir.globals types a with
          | Ir.I64 | Ir.Ptr -> ()
          | t -> fail "%s: call argument of type %s" f.name (Ir.ty_name t))
        args
  in
  let check_term t =
    match t with
    | Ir.Br { cond; _ } -> expect "br condition" Ir.I1 cond
    | Ir.Jmp _ -> ()
    | Ir.Ret None ->
      if f.ret <> None then fail "%s: ret void from non-void" f.name
    | Ir.Ret (Some v) -> (
      match f.ret with
      | None -> fail "%s: ret value from void function" f.name
      | Some t -> expect "ret" t v)
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter check_instr b.body;
      check_term b.term)
    f.blocks;
  (* Third pass: dominance of defs over uses. *)
  let index, dom = dominators f in
  let def_site : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* params are defined at entry *)
  List.iter (fun (r, _) -> Hashtbl.replace def_site r (0, -1)) f.params;
  List.iteri
    (fun bi (b : Ir.block) ->
      List.iteri
        (fun ii i ->
          match Ir.def i with
          | Some d -> Hashtbl.replace def_site d (bi, ii)
          | None -> ())
        b.body)
    f.blocks;
  let check_use bi ii v =
    match v with
    | Ir.Vreg r -> (
      match Hashtbl.find_opt def_site r with
      | None -> fail "%s: use of undefined %%%d" f.name r
      | Some (dbi, dii) ->
        let ok =
          if dbi = bi then dii < ii
          else ISet.mem dbi dom.(bi)
        in
        if not ok then
          fail "%s: %%%d used before its definition dominates the use" f.name r)
    | Ir.Const _ | Ir.Global _ -> ()
  in
  List.iteri
    (fun bi (b : Ir.block) ->
      List.iteri
        (fun ii i -> List.iter (check_use bi ii) (Ir.uses i))
        b.body;
      List.iter (check_use bi max_int) (Ir.uses_of_term b.term))
    f.blocks;
  ignore index

(* Verify a whole module; raises [Invalid] with a diagnostic otherwise. *)
let run (m : Ir.modul) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (g, n) ->
      if Hashtbl.mem seen g then fail "duplicate global @%s" g;
      Hashtbl.replace seen g ();
      if n <= 0 then fail "global @%s of size %d" g n)
    m.globals;
  (match Ir.find_func m m.main with
  | None -> fail "no main function @%s" m.main
  | Some _ -> ());
  List.iter (check_func m) m.funcs
