(* Imperative builder for {!Ir} modules.  Workloads and tests use it to
   write kernels in a compact SSA-with-allocas style; [local_var] /
   [for_up] capture the clang -O0 idiom of a counter in an alloca. *)

type t = {
  mutable funcs : Ir.func list; (* reverse order *)
  mutable globals : (string * int) list;
  mutable main : string;
}

let create () = { funcs = []; globals = []; main = "main" }

let global t name ~bytes =
  if List.mem_assoc name t.globals then
    invalid_arg ("Builder.global: duplicate " ^ name);
  t.globals <- (name, bytes) :: t.globals;
  Ir.Global name

let finish (t : t) : Ir.modul =
  let funcs = List.rev t.funcs
  and globals = List.rev t.globals
  and main = t.main in
  { Ir.funcs; globals; main }

(* ------------------------------------------------------------------ *)
(* Function builder.                                                   *)
(* ------------------------------------------------------------------ *)

type fb = {
  fname : string;
  mutable next_vreg : int;
  mutable next_label : int;
  mutable done_blocks : Ir.block list; (* reverse order *)
  mutable cur_label : string option;
  mutable cur_body : Ir.instr list; (* reverse order *)
}

let fresh_vreg fb =
  let v = fb.next_vreg in
  fb.next_vreg <- v + 1;
  v

(* Labels are globally unique ("<func>_<hint><n>") so that flattened
   assembly programs need no label mangling downstream. *)
let fresh_label fb hint =
  let n = fb.next_label in
  fb.next_label <- n + 1;
  Printf.sprintf "%s_%s%d" fb.fname hint n

let emit fb i = fb.cur_body <- i :: fb.cur_body

let seal fb term =
  match fb.cur_label with
  | None -> invalid_arg "Builder: terminator with no open block"
  | Some label ->
    fb.done_blocks <-
      Ir.{ label; body = List.rev fb.cur_body; term } :: fb.done_blocks;
    fb.cur_label <- None;
    fb.cur_body <- []

(* Open a new block.  The previous block must have been terminated. *)
let start_block fb label =
  (match fb.cur_label with
  | Some open_l ->
    invalid_arg
      (Printf.sprintf "Builder: block %s still open when starting %s" open_l
         label)
  | None -> ());
  fb.cur_label <- Some label

let i64 v = Ir.Const (Ir.I64, Int64.of_int v)
let i64' v = Ir.Const (Ir.I64, v)
let i32 v = Ir.Const (Ir.I32, Int64.of_int v)

let alloca fb ~bytes =
  let dst = fresh_vreg fb in
  emit fb (Ir.Alloca { dst; bytes });
  Ir.Vreg dst

let load fb ty ptr =
  let dst = fresh_vreg fb in
  emit fb (Ir.Load { dst; ty; ptr });
  Ir.Vreg dst

let store fb ty v ptr = emit fb (Ir.Store { ty; v; ptr })

let binop fb op ty a b =
  let dst = fresh_vreg fb in
  emit fb (Ir.Binop { dst; op; ty; a; b });
  Ir.Vreg dst

let add fb a b = binop fb Ir.Add Ir.I64 a b
let sub fb a b = binop fb Ir.Sub Ir.I64 a b
let mul fb a b = binop fb Ir.Mul Ir.I64 a b
let sdiv fb a b = binop fb Ir.Sdiv Ir.I64 a b
let srem fb a b = binop fb Ir.Srem Ir.I64 a b
let ashr fb a n = binop fb Ir.Ashr Ir.I64 a (i64 n)
let shl fb a n = binop fb Ir.Shl Ir.I64 a (i64 n)
let xor fb a b = binop fb Ir.Xor Ir.I64 a b
let and_ fb a b = binop fb Ir.And Ir.I64 a b

let icmp fb pred a b =
  let dst = fresh_vreg fb in
  emit fb (Ir.Icmp { dst; pred; ty = Ir.I64; a; b });
  Ir.Vreg dst

let gep fb base index ~scale =
  let dst = fresh_vreg fb in
  emit fb (Ir.Gep { dst; base; index; scale });
  Ir.Vreg dst

let cast fb kind v =
  let dst = fresh_vreg fb in
  emit fb (Ir.Cast { dst; kind; v });
  Ir.Vreg dst

let call fb ?ret callee args =
  match ret with
  | Some _ ->
    let dst = fresh_vreg fb in
    emit fb (Ir.Call { dst = Some dst; callee; args });
    Some (Ir.Vreg dst)
  | None ->
    emit fb (Ir.Call { dst = None; callee; args });
    None

let call_v fb callee args =
  match call fb ~ret:Ir.I64 callee args with
  | Some v -> v
  | None -> assert false

let print_i64 fb v = ignore (call fb "print_i64" [ v ])

let br fb cond ~ifso ~ifnot = seal fb (Ir.Br { cond; ifso; ifnot })
let jmp fb l = seal fb (Ir.Jmp l)
let ret fb v = seal fb (Ir.Ret v)

(* Jump only when the current block is still open; lets an [if_] branch
   end with an early [ret]. *)
let jmp_if_open fb l =
  match fb.cur_label with Some _ -> jmp fb l | None -> ()

(* True while a block is open (no terminator emitted yet). *)
let is_open fb = fb.cur_label <> None

(* A stack-allocated mutable i64 variable, as clang -O0 would produce. *)
type var = { slot : Ir.value }

let local_var fb init =
  let slot = alloca fb ~bytes:8 in
  store fb Ir.I64 init slot;
  { slot }

let get fb v = load fb Ir.I64 v.slot
let set fb v x = store fb Ir.I64 x v.slot

(* Counted loop: for (i = from; i < to; i++) body, all state in memory. *)
let for_up fb ~from ~to_ ~hint body =
  let head = fresh_label fb (hint ^ "_head") in
  let body_l = fresh_label fb (hint ^ "_body") in
  let exit_l = fresh_label fb (hint ^ "_exit") in
  let iv = local_var fb from in
  jmp fb head;
  start_block fb head;
  let i = get fb iv in
  let c = icmp fb Ir.Slt i to_ in
  br fb c ~ifso:body_l ~ifnot:exit_l;
  start_block fb body_l;
  let i = get fb iv in
  body i;
  let i' = get fb iv in
  set fb iv (add fb i' (i64 1));
  jmp fb head;
  start_block fb exit_l

(* While loop with an arbitrary condition computed each iteration. *)
let while_ fb ~hint cond body =
  let head = fresh_label fb (hint ^ "_head") in
  let body_l = fresh_label fb (hint ^ "_body") in
  let exit_l = fresh_label fb (hint ^ "_exit") in
  jmp fb head;
  start_block fb head;
  let c = cond () in
  br fb c ~ifso:body_l ~ifnot:exit_l;
  start_block fb body_l;
  body ();
  jmp fb head;
  start_block fb exit_l

(* if (cond) then-branch [else else-branch], continuing in a join block. *)
let if_ fb ~hint cond ~then_ ?else_ () =
  let then_l = fresh_label fb (hint ^ "_then") in
  let join_l = fresh_label fb (hint ^ "_join") in
  let else_l =
    match else_ with Some _ -> fresh_label fb (hint ^ "_else") | None -> join_l
  in
  br fb cond ~ifso:then_l ~ifnot:else_l;
  start_block fb then_l;
  then_ ();
  jmp_if_open fb join_l;
  (match else_ with
  | Some f ->
    start_block fb else_l;
    f ();
    jmp_if_open fb join_l
  | None -> ());
  start_block fb join_l

let func t name ~params ~ret build =
  let fb =
    {
      fname = name;
      next_vreg = 0;
      next_label = 0;
      done_blocks = [];
      cur_label = None;
      cur_body = [];
    }
  in
  let param_regs = List.map (fun ty -> (fresh_vreg fb, ty)) params in
  start_block fb name;
  build fb (List.map (fun (r, _) -> Ir.Vreg r) param_regs);
  (match fb.cur_label with
  | Some _ -> seal fb (Ir.Ret None)
  | None -> ());
  let f =
    Ir.{ name; params = param_regs; ret; blocks = List.rev fb.done_blocks }
  in
  t.funcs <- f :: t.funcs;
  f
