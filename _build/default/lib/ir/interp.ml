(* Reference interpreter for the mini IR.  It shares no code with the
   backend or the machine simulator, which makes it a useful oracle:
   every workload's compiled execution is differentially tested against
   interpretation (see test/test_differential.ml). *)

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type result = { output : int64 list; steps : int }

type ctx = {
  modul : Ir.modul;
  mem : Bytes.t;
  mutable brk : int; (* bump allocator for allocas *)
  global_addr : (string, int) Hashtbl.t;
  mutable out_rev : int64 list;
  mutable steps : int;
  fuel : int;
}

let mask32 = 0xFFFFFFFFL

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32

let eval_binop op ty a b =
  let wrap v = if ty = Ir.I32 then Int64.logand v mask32 else v in
  let sa = if ty = Ir.I32 then sext32 a else a in
  let sb = if ty = Ir.I32 then sext32 b else b in
  match op with
  | Ir.Add -> wrap (Int64.add sa sb)
  | Ir.Sub -> wrap (Int64.sub sa sb)
  | Ir.Mul -> wrap (Int64.mul sa sb)
  | Ir.Sdiv ->
    if Int64.equal sb 0L then fail "sdiv by zero" else wrap (Int64.div sa sb)
  | Ir.Srem ->
    if Int64.equal sb 0L then fail "srem by zero" else wrap (Int64.rem sa sb)
  | Ir.And -> wrap (Int64.logand sa sb)
  | Ir.Or -> wrap (Int64.logor sa sb)
  | Ir.Xor -> wrap (Int64.logxor sa sb)
  | Ir.Shl -> wrap (Int64.shift_left sa (Int64.to_int sb land (if ty = Ir.I32 then 31 else 63)))
  | Ir.Ashr -> wrap (Int64.shift_right sa (Int64.to_int sb land (if ty = Ir.I32 then 31 else 63)))
  | Ir.Lshr ->
    let ua = if ty = Ir.I32 then Int64.logand a mask32 else a in
    wrap (Int64.shift_right_logical ua (Int64.to_int sb land (if ty = Ir.I32 then 31 else 63)))

let eval_icmp pred ty a b =
  let sa = if ty = Ir.I32 then sext32 a else a in
  let sb = if ty = Ir.I32 then sext32 b else b in
  let ua = if ty = Ir.I32 then Int64.logand a mask32 else a in
  let ub = if ty = Ir.I32 then Int64.logand b mask32 else b in
  let s = Int64.compare sa sb and u = Int64.unsigned_compare ua ub in
  let r =
    match pred with
    | Ir.Eq -> s = 0
    | Ir.Ne -> s <> 0
    | Ir.Slt -> s < 0
    | Ir.Sle -> s <= 0
    | Ir.Sgt -> s > 0
    | Ir.Sge -> s >= 0
    | Ir.Ult -> u < 0
    | Ir.Ule -> u <= 0
    | Ir.Ugt -> u > 0
    | Ir.Uge -> u >= 0
  in
  if r then 1L else 0L

let check_addr ctx addr bytes =
  let a = Int64.to_int addr in
  if a < 0 || a + bytes > Bytes.length ctx.mem then
    fail "memory access at 0x%Lx" addr
  else a

let load_mem ctx ty addr =
  match ty with
  | Ir.I1 -> Int64.of_int (Char.code (Bytes.get ctx.mem (check_addr ctx addr 1)))
  | Ir.I32 ->
    Int64.logand
      (Int64.of_int32 (Bytes.get_int32_le ctx.mem (check_addr ctx addr 4)))
      mask32
  | Ir.I64 | Ir.Ptr -> Bytes.get_int64_le ctx.mem (check_addr ctx addr 8)

let store_mem ctx ty v addr =
  match ty with
  | Ir.I1 ->
    Bytes.set ctx.mem (check_addr ctx addr 1)
      (Char.chr (Int64.to_int (Int64.logand v 1L)))
  | Ir.I32 -> Bytes.set_int32_le ctx.mem (check_addr ctx addr 4) (Int64.to_int32 v)
  | Ir.I64 | Ir.Ptr -> Bytes.set_int64_le ctx.mem (check_addr ctx addr 8) v

(* Execute one function call; [env] maps vreg number to value. *)
let rec exec_func ctx (f : Ir.func) (args : int64 list) : int64 option =
  let max_vreg =
    List.fold_left
      (fun acc (b : Ir.block) ->
        List.fold_left
          (fun acc i -> match Ir.def i with Some d -> max acc d | None -> acc)
          acc b.body)
      (List.fold_left (fun acc (r, _) -> max acc r) 0 f.params)
      f.blocks
  in
  let env = Array.make (max_vreg + 1) 0L in
  (try List.iter2 (fun (r, _) v -> env.(r) <- v) f.params args
   with Invalid_argument _ -> fail "@%s: arity mismatch" f.name);
  let block_tbl = Hashtbl.create 16 in
  let frame_base = ctx.brk in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace block_tbl b.label b) f.blocks;
  (* Allocas are frame slots with fixed addresses for the whole call,
     mirroring the backend's static frame layout (a C local declared in
     a loop body still has one address per activation). *)
  let alloca_addr : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match i with
          | Ir.Alloca { dst; bytes } ->
            Hashtbl.replace alloca_addr dst ctx.brk;
            ctx.brk <- ctx.brk + ((bytes + 7) / 8 * 8);
            if ctx.brk > Bytes.length ctx.mem then fail "out of memory"
          | _ -> ())
        b.body)
    f.blocks;
  let eval = function
    | Ir.Vreg r -> env.(r)
    | Ir.Const (_, v) -> v
    | Ir.Global g -> (
      match Hashtbl.find_opt ctx.global_addr g with
      | Some a -> Int64.of_int a
      | None -> fail "unknown global @%s" g)
  in
  let rec run_block (b : Ir.block) : int64 option =
    List.iter
      (fun i ->
        ctx.steps <- ctx.steps + 1;
        if ctx.steps > ctx.fuel then fail "fuel exhausted";
        match i with
        | Ir.Alloca { dst; _ } ->
          env.(dst) <- Int64.of_int (Hashtbl.find alloca_addr dst)
        | Ir.Load { dst; ty; ptr } -> env.(dst) <- load_mem ctx ty (eval ptr)
        | Ir.Store { ty; v; ptr } -> store_mem ctx ty (eval v) (eval ptr)
        | Ir.Binop { dst; op; ty; a; b } ->
          env.(dst) <- eval_binop op ty (eval a) (eval b)
        | Ir.Icmp { dst; pred; ty; a; b } ->
          env.(dst) <- eval_icmp pred ty (eval a) (eval b)
        | Ir.Gep { dst; base; index; scale } ->
          env.(dst) <-
            Int64.add (eval base) (Int64.mul (eval index) (Int64.of_int scale))
        | Ir.Cast { dst; kind; v } ->
          env.(dst) <-
            (match kind with
            | Ir.Sext_i32_i64 -> sext32 (eval v)
            | Ir.Trunc_i64_i32 -> Int64.logand (eval v) mask32
            | Ir.Zext_i1_i64 -> Int64.logand (eval v) 1L)
        | Ir.Call { dst; callee; args } ->
          let argv = List.map eval args in
          if String.equal callee "print_i64" then (
            match argv with
            | [ v ] -> ctx.out_rev <- v :: ctx.out_rev
            | _ -> fail "print_i64 arity")
          else if String.equal callee "__ferrum_detect" then
            (* protected code never reaches the detector on fault-free
               runs; interpreting one is a transform bug *)
            fail "detector reached during fault-free interpretation"
          else
            let g =
              match Ir.find_func ctx.modul callee with
              | Some g -> g
              | None -> fail "unknown function @%s" callee
            in
            let r = exec_func ctx g argv in
            (match (dst, r) with
            | Some d, Some v -> env.(d) <- v
            | Some _, None -> fail "@%s returned void" callee
            | None, _ -> ()))
      b.body;
    ctx.steps <- ctx.steps + 1;
    match b.term with
    | Ir.Jmp l -> run_block (Hashtbl.find block_tbl l)
    | Ir.Br { cond; ifso; ifnot } ->
      let l = if Int64.equal (eval cond) 0L then ifnot else ifso in
      run_block (Hashtbl.find block_tbl l)
    | Ir.Ret v ->
      let r = Option.map eval v in
      (* allocas are function-scoped: release the frame *)
      ctx.brk <- frame_base;
      r
  in
  match f.blocks with
  | [] -> fail "@%s has no blocks" f.name
  | entry :: _ -> run_block entry

(* Interpret a module's main function; returns the observable output. *)
let run ?(fuel = 20_000_000) ?(mem_size = 1 lsl 20) (m : Ir.modul) =
  let ctx =
    {
      modul = m;
      mem = Bytes.make mem_size '\000';
      brk = 8; (* keep address 0 unmapped-ish *)
      global_addr = Hashtbl.create 16;
      out_rev = [];
      steps = 0;
      fuel;
    }
  in
  List.iter
    (fun (g, bytes) ->
      Hashtbl.replace ctx.global_addr g ctx.brk;
      ctx.brk <- ctx.brk + ((bytes + 7) / 8 * 8))
    m.globals;
  if ctx.brk > mem_size then fail "globals exceed memory";
  let main =
    match Ir.find_func m m.main with
    | Some f -> f
    | None -> fail "no main"
  in
  ignore (exec_func ctx main []);
  { output = List.rev ctx.out_rev; steps = ctx.steps }
