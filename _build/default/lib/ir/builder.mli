(** Imperative builder for {!Ir} modules.

    Workloads and tests write kernels in a compact style; {!local_var},
    {!for_up}, {!while_} and {!if_} capture the clang -O0 idiom of all
    mutable state living in allocas.  Labels are generated globally
    unique, so flattened assembly needs no mangling downstream. *)

type t

val create : unit -> t

(** Declare a zero-initialised module-level array and return its
    address value.  Raises [Invalid_argument] on duplicate names. *)
val global : t -> string -> bytes:int -> Ir.value

(** Freeze the module (functions and globals in declaration order). *)
val finish : t -> Ir.modul

(** A function under construction. *)
type fb

val fresh_vreg : fb -> int

(** A fresh block label ["<func>_<hint><n>"]. *)
val fresh_label : fb -> string -> string

(** Append an instruction to the open block. *)
val emit : fb -> Ir.instr -> unit

(** Open a new block; the previous one must have been terminated. *)
val start_block : fb -> string -> unit

(** {1 Value shorthands} *)

val i64 : int -> Ir.value
val i64' : int64 -> Ir.value
val i32 : int -> Ir.value

(** {1 Instructions} *)

val alloca : fb -> bytes:int -> Ir.value
val load : fb -> Ir.ty -> Ir.value -> Ir.value
val store : fb -> Ir.ty -> Ir.value -> Ir.value -> unit
val binop : fb -> Ir.binop -> Ir.ty -> Ir.value -> Ir.value -> Ir.value

val add : fb -> Ir.value -> Ir.value -> Ir.value
val sub : fb -> Ir.value -> Ir.value -> Ir.value
val mul : fb -> Ir.value -> Ir.value -> Ir.value
val sdiv : fb -> Ir.value -> Ir.value -> Ir.value
val srem : fb -> Ir.value -> Ir.value -> Ir.value

(** Arithmetic shift right by a constant. *)
val ashr : fb -> Ir.value -> int -> Ir.value

(** Shift left by a constant. *)
val shl : fb -> Ir.value -> int -> Ir.value

val xor : fb -> Ir.value -> Ir.value -> Ir.value
val and_ : fb -> Ir.value -> Ir.value -> Ir.value

(** 64-bit comparison producing an i1. *)
val icmp : fb -> Ir.pred -> Ir.value -> Ir.value -> Ir.value

val gep : fb -> Ir.value -> Ir.value -> scale:int -> Ir.value
val cast : fb -> Ir.cast -> Ir.value -> Ir.value

(** Direct call; pass [~ret] for a non-void callee. *)
val call : fb -> ?ret:Ir.ty -> string -> Ir.value list -> Ir.value option

(** Call returning i64 (raises if used on a void call path). *)
val call_v : fb -> string -> Ir.value list -> Ir.value

(** Emit the observable output of the program. *)
val print_i64 : fb -> Ir.value -> unit

(** {1 Terminators} *)

val br : fb -> Ir.value -> ifso:string -> ifnot:string -> unit
val jmp : fb -> string -> unit
val ret : fb -> Ir.value option -> unit

(** Jump only when the current block is still open; lets a structured
    branch end with an early [ret]. *)
val jmp_if_open : fb -> string -> unit

(** True while a block is open (no terminator emitted yet). *)
val is_open : fb -> bool

(** {1 Structured control} *)

(** A stack-allocated mutable i64 variable. *)
type var

val local_var : fb -> Ir.value -> var
val get : fb -> var -> Ir.value
val set : fb -> var -> Ir.value -> unit

(** [for_up fb ~from ~to_ ~hint body]: counted loop
    [for (i = from; i < to_; i++) body i], state in memory. *)
val for_up :
  fb -> from:Ir.value -> to_:Ir.value -> hint:string -> (Ir.value -> unit) -> unit

(** While loop; the condition closure is re-evaluated each iteration. *)
val while_ : fb -> hint:string -> (unit -> Ir.value) -> (unit -> unit) -> unit

(** Two-armed conditional continuing in a join block; either arm may end
    with an early [ret]. *)
val if_ :
  fb ->
  hint:string ->
  Ir.value ->
  then_:(unit -> unit) ->
  ?else_:(unit -> unit) ->
  unit ->
  unit

(** Define a function; the body callback receives the builder and the
    parameter values.  An unterminated body is closed with [ret void]. *)
val func :
  t ->
  string ->
  params:Ir.ty list ->
  ret:Ir.ty option ->
  (fb -> Ir.value list -> unit) ->
  Ir.func
