lib/ir/interp.mli: Ir
