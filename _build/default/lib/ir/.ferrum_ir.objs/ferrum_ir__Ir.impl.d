lib/ir/ir.ml: Fmt List String
