lib/ir/verify.mli: Ir
