lib/ir/builder.ml: Int64 Ir List Printf
