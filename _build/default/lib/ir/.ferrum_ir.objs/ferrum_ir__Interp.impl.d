lib/ir/interp.ml: Array Bytes Char Fmt Hashtbl Int64 Ir List Option String
