lib/ir/verify.ml: Array Fmt Fun Hashtbl Int Ir List Map Set String
