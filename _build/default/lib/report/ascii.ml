(* Plain-text rendering of the paper's tables and bar-chart figures. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(* Render a table with a header row; column widths fit the content. *)
let table ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths)
    ^ "+"
  in
  let render_row row =
    "| "
    ^ String.concat " | " (List.mapi (fun c cell -> pad (List.nth widths c) cell) row)
    ^ " |"
  in
  String.concat "\n"
    ([ line '-'; render_row header; line '=' ]
    @ List.map render_row rows
    @ [ line '-' ])

(* A horizontal bar scaled to [max_value] over [width] characters. *)
let bar ?(width = 32) ~max_value v =
  if max_value <= 0.0 then ""
  else
    let n = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    let n = max 0 (min width n) in
    String.make n '#' ^ String.make (width - n) ' '

(* Grouped horizontal bar chart: one group per row, one bar per series.
   [fmt_value] renders the numeric label after each bar. *)
let grouped_bars ~title ~series_names ~fmt_value ~max_value rows =
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let series_w =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series_names
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, values) ->
      Buffer.add_string buf (pad label_w label ^ "\n");
      List.iteri
        (fun i v ->
          Buffer.add_string buf
            (Printf.sprintf "  %s |%s| %s\n"
               (pad series_w (List.nth series_names i))
               (bar ~max_value v) (fmt_value v)))
        values)
    rows;
  Buffer.contents buf

let percent v = Printf.sprintf "%5.1f%%" (100.0 *. v)
