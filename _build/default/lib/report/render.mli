(** Renderers for each artefact of the paper's evaluation section.
    Every function returns a ready-to-print string; bench/main.exe
    stitches them into the full report recorded in EXPERIMENTS.md. *)

(** Table I: the technique capability matrix (static). *)
val table1 : unit -> string

(** Table II: benchmark details, plus measured sizes. *)
val table2 : Experiments.bench_result list -> string

(** Figure 10: SDC coverage per benchmark and technique, with the
    cross-benchmark average row. *)
val fig10 : Experiments.bench_result list -> string

(** Figure 11: cycle-model runtime overhead per benchmark/technique. *)
val fig11 : Experiments.bench_result list -> string

(** §IV-B3: FERRUM transform time per benchmark, with the
    per-instruction rate showing the linear relationship. *)
val exec_time : Experiments.bench_result list -> string

(** Raw fault-injection outcome counts with confidence intervals. *)
val outcome_table : Experiments.bench_result list -> string

(** Headline metrics side by side with the paper's numbers. *)
val summary : Experiments.bench_result list -> string
