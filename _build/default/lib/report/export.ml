(* Machine-readable export of experiment results (CSV), so the recorded
   runs can be post-processed outside OCaml (spreadsheets, plotting). *)

module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
open Experiments

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row cells = String.concat "," (List.map escape cells) ^ "\n"

let counts_cells = function
  | Some (c : F.counts) ->
    [ string_of_int c.F.samples; string_of_int c.F.benign;
      string_of_int c.F.sdc; string_of_int c.F.detected;
      string_of_int c.F.crash; string_of_int c.F.timeout ]
  | None -> [ ""; ""; ""; ""; ""; "" ]

(* One line per (benchmark, configuration), raw included. *)
let csv (results : bench_result list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (row
       [ "benchmark"; "suite"; "domain"; "config"; "static_instructions";
         "dynamic_instructions"; "cycles"; "overhead"; "dyn_overhead";
         "coverage"; "transform_seconds"; "samples"; "benign"; "sdc";
         "detected"; "crash"; "timeout" ]);
  List.iter
    (fun (b : bench_result) ->
      Buffer.add_string buf
        (row
           ([ b.name; b.suite; b.domain; "raw"; string_of_int b.static_raw;
              string_of_int b.dyn_raw; Printf.sprintf "%.1f" b.cycles_raw;
              "0"; "0"; ""; "0" ]
           @ counts_cells b.raw_counts));
      List.iter
        (fun (t : tech_result) ->
          Buffer.add_string buf
            (row
               ([ b.name; b.suite; b.domain;
                  Technique.short_name t.technique;
                  string_of_int t.static_instructions;
                  string_of_int t.dyn_instructions;
                  Printf.sprintf "%.1f" t.cycles;
                  Printf.sprintf "%.6f" t.overhead;
                  Printf.sprintf "%.6f" t.dyn_overhead;
                  (match t.coverage with
                  | Some c -> Printf.sprintf "%.6f" c
                  | None -> "");
                  Printf.sprintf "%.6f" t.transform_seconds ]
               @ counts_cells t.counts)))
        b.techniques)
    results;
  Buffer.contents buf

let write_csv path results =
  let oc = open_out path in
  output_string oc (csv results);
  close_out oc
