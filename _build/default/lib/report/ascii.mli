(** Plain-text rendering of the paper's tables and bar-chart figures. *)

val pad : int -> string -> string
val pad_left : int -> string -> string

(** Render a bordered table; column widths fit the content. *)
val table : header:string list -> rows:string list list -> string

(** A horizontal bar of '#' scaled to [max_value] over [width] (default
    32) characters. *)
val bar : ?width:int -> max_value:float -> float -> string

(** Grouped horizontal bar chart: one group per row, one labelled bar
    per series (used for the paper's Figs. 10-11). *)
val grouped_bars :
  title:string ->
  series_names:string list ->
  fmt_value:(float -> string) ->
  max_value:float ->
  (string * float list) list ->
  string

(** Format a ratio as a fixed-width percentage, e.g. [" 29.8%"]. *)
val percent : float -> string
