(* Ablation and extension studies over FERRUM's design choices
   (DESIGN.md E6-E11):

   - E6: disable the SIMD path — every duplicate falls back to the
     GENERAL scheme with immediate checkers, quantifying how much of
     FERRUM's advantage the batched SIMD checking provides;
   - E7: simulated register pressure — cap the spare-register pool so
     the stack-requisition machinery (paper Fig. 7) carries the
     protection, with and without liveness-directed register reuse;
   - E8: all-sites injection — also sample duplicates, checkers and
     instrumentation as fault targets;
   - E9: backend peephole — shrink the lowering glue the paper blames
     for the cross-layer coverage gap;
   - E10: ZMM batching (the paper's §III-B5 future work);
   - E11: multiple-bit upsets (§II-A future work);
   - cost-model sensitivity: the no-overlap model charges protection
     instructions full price. *)

module Technique = Ferrum_eddi.Technique
module Cost = Ferrum_machine.Cost
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Pipeline = Ferrum_eddi.Pipeline
open Experiments

type variant = {
  label : string;
  description : string;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
  cost_model : Cost.model;
}

let baseline_variant =
  {
    label = "ferrum";
    description = "full FERRUM, default cost model";
    ferrum_config = Ferrum_eddi.Ferrum_pass.default_config;
    cost_model = Cost.default;
  }

let variants =
  [
    baseline_variant;
    {
      label = "zmm";
      description = "E10: eight results per batch through ZMM (AVX-512)";
      ferrum_config = Ferrum_eddi.Ferrum_pass.zmm_config;
      cost_model = Cost.default;
    };
    {
      label = "no-simd";
      description = "E6: SIMD batching disabled (GENERAL scheme only)";
      ferrum_config =
        { Ferrum_eddi.Ferrum_pass.default_config with use_simd = false };
      cost_model = Cost.default;
    };
    {
      label = "2-spares";
      description = "E7: only two spare GPRs (pair reserved, requisition)";
      ferrum_config =
        { Ferrum_eddi.Ferrum_pass.default_config with max_spare_gprs = Some 2 };
      cost_model = Cost.default;
    };
    {
      label = "0-spares";
      description = "E7: no spare GPRs at all (full requisition)";
      ferrum_config =
        { Ferrum_eddi.Ferrum_pass.default_config with max_spare_gprs = Some 0 };
      cost_model = Cost.default;
    };
    {
      label = "0-spares+lv";
      description = "E7: no spares, liveness-directed reuse instead of push/pop";
      ferrum_config =
        { Ferrum_eddi.Ferrum_pass.default_config with
          max_spare_gprs = Some 0; use_liveness = true };
      cost_model = Cost.default;
    };
    {
      label = "no-overlap";
      description = "cost-model sensitivity: no superscalar overlap";
      ferrum_config = Ferrum_eddi.Ferrum_pass.default_config;
      cost_model = Cost.no_overlap;
    };
  ]

type row = {
  variant : variant;
  avg_overhead : float;
  avg_coverage : float option;
}

(* Run every FERRUM variant over the suite. *)
let run ?(samples = 150) ?(seed = 77L) () : row list =
  let entries = Ferrum_workloads.Catalog.all in
  List.map
    (fun v ->
      let per_bench =
        List.map
          (fun (e : Ferrum_workloads.Catalog.entry) ->
            let m = e.build () in
            let raw = Pipeline.raw m in
            let raw_img = Machine.load ~cost_model:v.cost_model raw.program in
            let raw_g = Machine.golden raw_img in
            let prot =
              Pipeline.protect ~ferrum_config:v.ferrum_config Technique.Ferrum
                m
            in
            let img = Machine.load ~cost_model:v.cost_model prot.program in
            let g = Machine.golden img in
            (match g.Machine.outcome with
            | Machine.Exit _ -> ()
            | o ->
              Fmt.failwith "ablation %s on %s: %a" v.label e.name
                Machine.pp_outcome o);
            let overhead =
              F.overhead ~raw_cycles:raw_g.Machine.cycles
                ~prot_cycles:g.Machine.cycles
            in
            let coverage =
              if samples > 0 then begin
                let raw_c = (F.campaign ~seed ~samples raw_img).F.counts in
                let c = (F.campaign ~seed ~samples img).F.counts in
                Some (F.sdc_coverage ~raw:raw_c ~protected_:c)
              end
              else None
            in
            (overhead, coverage))
          entries
      in
      let n = float_of_int (List.length per_bench) in
      let avg_overhead =
        List.fold_left (fun acc (o, _) -> acc +. o) 0.0 per_bench /. n
      in
      let avg_coverage =
        if List.for_all (fun (_, c) -> c <> None) per_bench then
          Some
            (List.fold_left
               (fun acc (_, c) -> acc +. Option.get c)
               0.0 per_bench
            /. n)
        else None
      in
      { variant = v; avg_overhead; avg_coverage })
    variants

let render (rows : row list) =
  let header = [ "variant"; "description"; "avg overhead"; "avg coverage" ] in
  let table_rows =
    List.map
      (fun r ->
        [ r.variant.label; r.variant.description;
          Ascii.percent r.avg_overhead;
          (match r.avg_coverage with
          | Some c -> Ascii.percent c
          | None -> "-") ])
      rows
  in
  "Ablations — FERRUM variants (DESIGN.md E6/E7 + cost-model sensitivity)\n"
  ^ Ascii.table ~header ~rows:table_rows

(* E9: backend peephole optimisation — the paper blames IR-level EDDI's
   coverage loss and the hybrid baseline's overhead on backend-generated
   glue; this re-runs the headline experiment with the store/reload
   peephole enabled so the glue shrinks. *)
let optimized_backend ?(samples = 150) ?(seed = 55L) () =
  let entries = Ferrum_workloads.Catalog.all in
  let header =
    [ "Benchmark"; "backend"; "raw dyn"; "IR-EDDI coverage"; "IR-EDDI ovh";
      "FERRUM ovh" ]
  in
  let rows =
    List.concat_map
      (fun (e : Ferrum_workloads.Catalog.entry) ->
        let m = e.build () in
        List.map
          (fun optimize ->
            let raw_img = Machine.load (Pipeline.raw ~optimize m).program in
            let raw_g = Machine.golden raw_img in
            let raw_c = (F.campaign ~seed ~samples raw_img).F.counts in
            let ir =
              Machine.load
                (Pipeline.protect ~optimize Technique.Ir_level_eddi m).program
            in
            let ir_g = Machine.golden ir in
            let ir_c = (F.campaign ~seed ~samples ir).F.counts in
            let fe =
              Machine.load
                (Pipeline.protect ~optimize Technique.Ferrum m).program
            in
            let fe_g = Machine.golden fe in
            [ e.name; (if optimize then "peephole" else "-O0");
              string_of_int raw_g.Machine.dyn_instructions;
              Ascii.percent (F.sdc_coverage ~raw:raw_c ~protected_:ir_c);
              Ascii.percent
                (F.overhead ~raw_cycles:raw_g.Machine.cycles
                   ~prot_cycles:ir_g.Machine.cycles);
              Ascii.percent
                (F.overhead ~raw_cycles:raw_g.Machine.cycles
                   ~prot_cycles:fe_g.Machine.cycles) ])
          [ false; true ])
      entries
  in
  "E9 — backend peephole: less lowering glue vs coverage and overhead\n"
  ^ Ascii.table ~header ~rows

(* E11: multiple-bit upsets (the paper's future work, §II-A): coverage
   of raw vs FERRUM when each fault flips 1..3 bits of the destination. *)
let multibit ?(samples = 150) ?(seed = 123L) () =
  let entries = Ferrum_workloads.Catalog.all in
  let header =
    [ "Benchmark"; "bits"; "raw SDC p"; "FERRUM sdc"; "FERRUM coverage" ]
  in
  let rows =
    List.concat_map
      (fun (e : Ferrum_workloads.Catalog.entry) ->
        let m = e.build () in
        let raw_img = Machine.load (Pipeline.raw m).program in
        let prot = Pipeline.protect Technique.Ferrum m in
        let img = Machine.load prot.program in
        List.map
          (fun bits ->
            let raw_c =
              (F.campaign ~seed ~samples ~fault_bits:bits raw_img).F.counts
            in
            let c = (F.campaign ~seed ~samples ~fault_bits:bits img).F.counts in
            [ e.name; string_of_int bits;
              Printf.sprintf "%.3f" (F.sdc_probability raw_c);
              string_of_int c.F.sdc;
              Ascii.percent (F.sdc_coverage ~raw:raw_c ~protected_:c) ])
          [ 1; 2; 3 ])
      entries
  in
  "E11 — multiple-bit upsets: FERRUM coverage under 1-3 bit flips per fault\n"
  ^ Ascii.table ~header ~rows

(* E8: coverage when instrumentation itself is an injection target. *)
let all_sites ?(samples = 150) ?(seed = 99L) () =
  let entries = Ferrum_workloads.Catalog.all in
  let header = [ "Benchmark"; "scope"; "sdc"; "detected"; "crash"; "coverage" ] in
  let rows =
    List.concat_map
      (fun (e : Ferrum_workloads.Catalog.entry) ->
        let m = e.build () in
        let raw_img = Machine.load (Pipeline.raw m).program in
        let prot = Pipeline.protect Technique.Ferrum m in
        let img = Machine.load prot.program in
        List.map
          (fun (scope, scope_name) ->
            let raw_c =
              (F.campaign ~scope ~seed ~samples raw_img).F.counts
            in
            let c = (F.campaign ~scope ~seed ~samples img).F.counts in
            [ e.name; scope_name; string_of_int c.F.sdc;
              string_of_int c.F.detected; string_of_int c.F.crash;
              Ascii.percent (F.sdc_coverage ~raw:raw_c ~protected_:c) ])
          [ (F.Original_only, "original"); (F.All_sites, "all-sites") ])
      entries
  in
  "E8 — FERRUM coverage when protection instructions are also injection \
   sites\n"
  ^ Ascii.table ~header ~rows
