(** Selective protection (experiment E12, SDCTune-style).

    Profile SDCs on the unprotected binary, attribute them to the static
    instructions whose write-backs were faulted, and have FERRUM protect
    only the sites covering a budget of the observed SDC mass.
    Evaluation uses an independent seed from profiling. *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim

(** Flattened static index -> (block label, index within block), in the
    loader's flatten order. *)
val site_table : Ferrum_asm.Prog.t -> (string * int) array

(** Per-static-site SDC counts plus the campaign totals. *)
val profile :
  samples:int -> seed:int64 -> Machine.image ->
  (int, int) Hashtbl.t * F.counts

(** Smallest site set covering [budget] of the observed SDC mass, as a
    (label, index) set, plus its cardinality. *)
val select_sites :
  Ferrum_asm.Prog.t -> (int, int) Hashtbl.t -> budget:float ->
  (string * int, unit) Hashtbl.t * int

type point = {
  budget : float;  (** 2.0 denotes full (unselective) FERRUM *)
  sites_protected : int;
  overhead : float;
  coverage : float;
}

(** The coverage/overhead curve for one module over budgets
    25/50/75/90/100% and full FERRUM. *)
val run_benchmark :
  ?samples:int -> ?profile_seed:int64 -> ?eval_seed:int64 ->
  Ferrum_ir.Ir.modul -> point list

(** The E12 table over the whole suite. *)
val render : ?samples:int -> unit -> string
