(** Machine-readable export of experiment results: one CSV line per
    (benchmark, configuration) with sizes, cycles, overheads, coverage,
    transform time and raw outcome counts. *)

val csv : Experiments.bench_result list -> string

val write_csv : string -> Experiments.bench_result list -> unit
