lib/report/experiments.ml: Ferrum_asm Ferrum_eddi Ferrum_faultsim Ferrum_machine Ferrum_workloads Fmt List
