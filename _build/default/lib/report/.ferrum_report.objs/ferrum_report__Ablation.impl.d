lib/report/ablation.ml: Ascii Experiments Ferrum_eddi Ferrum_faultsim Ferrum_machine Ferrum_workloads Fmt List Option Printf
