lib/report/selective.mli: Ferrum_asm Ferrum_faultsim Ferrum_ir Ferrum_machine Hashtbl
