lib/report/export.mli: Experiments
