lib/report/render.mli: Experiments
