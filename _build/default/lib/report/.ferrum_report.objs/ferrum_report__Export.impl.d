lib/report/export.ml: Buffer Experiments Ferrum_eddi Ferrum_faultsim List Printf String
