lib/report/selective.ml: Array Ascii Ferrum_asm Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Ferrum_workloads Hashtbl List Option Printf Prog
