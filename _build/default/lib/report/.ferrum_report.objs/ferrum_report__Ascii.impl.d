lib/report/ascii.ml: Buffer Float List Printf String
