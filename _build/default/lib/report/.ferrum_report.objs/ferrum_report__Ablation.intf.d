lib/report/ablation.mli: Ferrum_eddi Ferrum_machine
