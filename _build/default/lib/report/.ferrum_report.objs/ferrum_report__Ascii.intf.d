lib/report/ascii.mli:
