lib/report/render.ml: Ascii Experiments Ferrum_eddi Ferrum_faultsim List Printf
