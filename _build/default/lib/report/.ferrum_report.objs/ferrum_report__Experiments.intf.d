lib/report/experiments.mli: Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Ferrum_workloads
