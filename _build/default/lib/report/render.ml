(* Renderers for each artefact of the paper's evaluation section.  Every
   function returns a string ready to print; bench/main.exe stitches
   them into the full report (see EXPERIMENTS.md for recorded output). *)

module Technique = Ferrum_eddi.Technique
module F = Ferrum_faultsim.Faultsim
open Experiments

(* ------------------------------------------------------------------ *)
(* Table I: technique capability matrix.                               *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let header =
    "technique"
    :: List.map Technique.category_name Technique.categories
  in
  let rows =
    List.map
      (fun t ->
        Technique.name t
        :: List.map
             (fun c -> Technique.level_name (Technique.coverage t c))
             Technique.categories)
      Technique.all
  in
  "Table I — FERRUM and baseline techniques (implementation level per \
   instruction category)\n"
  ^ Ascii.table ~header ~rows

(* ------------------------------------------------------------------ *)
(* Table II: benchmark details.                                        *)
(* ------------------------------------------------------------------ *)

let table2 (results : bench_result list) =
  let header = [ "Benchmark"; "Suite"; "Domain"; "Static instrs"; "Dynamic instrs" ] in
  let rows =
    List.map
      (fun b ->
        [ b.name; b.suite; b.domain; string_of_int b.static_raw;
          string_of_int b.dyn_raw ])
      results
  in
  "Table II — details of benchmarks\n" ^ Ascii.table ~header ~rows

(* ------------------------------------------------------------------ *)
(* Figure 10: SDC coverage.                                            *)
(* ------------------------------------------------------------------ *)

let coverage_of b t =
  match (find_tech b t).coverage with Some c -> c | None -> nan

let fig10 (results : bench_result list) =
  let rows =
    List.map
      (fun b ->
        (b.name, List.map (fun t -> coverage_of b t) Technique.all))
      results
    @ [ ("AVERAGE",
         List.map
           (fun t -> mean_over results (fun b -> coverage_of b t))
           Technique.all) ]
  in
  Ascii.grouped_bars
    ~title:
      "Figure 10 — SDC coverage per benchmark (higher is better; paper: \
       FERRUM/Hybrid = 100%, IR-LEVEL-EDDI = 72% avg)"
    ~series_names:(List.map Technique.name Technique.all)
    ~fmt_value:Ascii.percent ~max_value:1.0 rows

(* ------------------------------------------------------------------ *)
(* Figure 11: runtime performance overhead.                            *)
(* ------------------------------------------------------------------ *)

let overhead_of b t = (find_tech b t).overhead

let fig11 (results : bench_result list) =
  let max_value =
    List.fold_left
      (fun acc b ->
        List.fold_left (fun acc t -> max acc (overhead_of b t)) acc
          Technique.all)
      0.0 results
  in
  let rows =
    List.map
      (fun b -> (b.name, List.map (overhead_of b) Technique.all))
      results
    @ [ ("AVERAGE",
         List.map
           (fun t -> mean_over results (fun b -> overhead_of b t))
           Technique.all) ]
  in
  Ascii.grouped_bars
    ~title:
      "Figure 11 — runtime performance overhead per benchmark (lower is \
       better; paper: IR 62.27%, Hybrid 83.39%, FERRUM 29.83%)"
    ~series_names:(List.map Technique.name Technique.all)
    ~fmt_value:Ascii.percent ~max_value rows

(* ------------------------------------------------------------------ *)
(* §IV-B3: time to execute FERRUM.                                     *)
(* ------------------------------------------------------------------ *)

let exec_time (results : bench_result list) =
  let header =
    [ "Benchmark"; "Static instrs (raw)"; "FERRUM transform (ms)";
      "us / instruction" ]
  in
  let rows =
    List.map
      (fun b ->
        let t = find_tech b Technique.Ferrum in
        let ms = t.transform_seconds *. 1e3 in
        [ b.name; string_of_int b.static_raw; Printf.sprintf "%.3f" ms;
          Printf.sprintf "%.2f" (ms *. 1e3 /. float_of_int b.static_raw) ])
      results
  in
  let times =
    List.map
      (fun b -> (find_tech b Technique.Ferrum).transform_seconds)
      results
  in
  let avg = List.fold_left ( +. ) 0.0 times /. float_of_int (List.length times) in
  "Execution time of the FERRUM transform (paper §IV-B3: linear in the \
   static instruction count)\n"
  ^ Ascii.table ~header ~rows
  ^ Printf.sprintf "\naverage %.3f ms; max %.3f ms; min %.3f ms\n"
      (avg *. 1e3)
      (List.fold_left max neg_infinity times *. 1e3)
      (List.fold_left min infinity times *. 1e3)

(* ------------------------------------------------------------------ *)
(* Fault-injection outcome detail (supporting table).                  *)
(* ------------------------------------------------------------------ *)

let outcome_table (results : bench_result list) =
  let header =
    [ "Benchmark"; "Config"; "n"; "benign"; "sdc"; "detected"; "crash";
      "timeout"; "SDC p"; "+/-95%" ]
  in
  let row name config (c : F.counts) =
    [ name; config; string_of_int c.F.samples; string_of_int c.F.benign;
      string_of_int c.F.sdc; string_of_int c.F.detected;
      string_of_int c.F.crash; string_of_int c.F.timeout;
      Printf.sprintf "%.3f" (F.sdc_probability c);
      Printf.sprintf "%.3f" (F.confidence95 c) ]
  in
  let rows =
    List.concat_map
      (fun b ->
        (match b.raw_counts with
        | Some c -> [ row b.name "raw" c ]
        | None -> [])
        @ List.filter_map
            (fun t ->
              match t.counts with
              | Some c ->
                Some (row b.name (Technique.short_name t.technique) c)
              | None -> None)
            b.techniques)
      results
  in
  "Fault-injection outcomes (single bit flip in a destination register \
   of a sampled dynamic instruction)\n"
  ^ Ascii.table ~header ~rows

(* ------------------------------------------------------------------ *)
(* Headline summary vs the paper.                                      *)
(* ------------------------------------------------------------------ *)

let summary (results : bench_result list) =
  let avg_cov t = mean_over results (fun b -> coverage_of b t) in
  let avg_ovh t = mean_over results (fun b -> overhead_of b t) in
  let speedup =
    let ir = avg_ovh Technique.Ir_level_eddi in
    if ir = 0.0 then 0.0 else (ir -. avg_ovh Technique.Ferrum) /. ir
  in
  let header = [ "metric"; "paper"; "this repro" ] in
  let rows =
    [
      [ "IR-LEVEL-EDDI avg SDC coverage"; "72%";
        Ascii.percent (avg_cov Technique.Ir_level_eddi) ];
      [ "HYBRID avg SDC coverage"; "100%";
        Ascii.percent (avg_cov Technique.Hybrid_assembly_eddi) ];
      [ "FERRUM avg SDC coverage"; "100%";
        Ascii.percent (avg_cov Technique.Ferrum) ];
      [ "IR-LEVEL-EDDI avg overhead"; "62.27%";
        Ascii.percent (avg_ovh Technique.Ir_level_eddi) ];
      [ "HYBRID avg overhead"; "83.39%";
        Ascii.percent (avg_ovh Technique.Hybrid_assembly_eddi) ];
      [ "FERRUM avg overhead"; "29.83%";
        Ascii.percent (avg_ovh Technique.Ferrum) ];
      [ "FERRUM speedup over IR-LEVEL-EDDI"; "~52%"; Ascii.percent speedup ];
    ]
  in
  "Headline comparison with the paper\n" ^ Ascii.table ~header ~rows
