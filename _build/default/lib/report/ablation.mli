(** Ablation and extension studies over FERRUM's design choices
    (DESIGN.md E6-E11): SIMD batching disabled, ZMM batching, simulated
    register pressure, the no-overlap cost model, all-sites injection,
    multi-bit upsets, and the backend peephole. *)

type variant = {
  label : string;
  description : string;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
  cost_model : Ferrum_machine.Cost.model;
}

val baseline_variant : variant

(** ferrum / zmm / no-simd / 2-spares / 0-spares / no-overlap. *)
val variants : variant list

type row = {
  variant : variant;
  avg_overhead : float;
  avg_coverage : float option;
}

(** Run every variant over the whole suite (E6/E7/E10 + cost model). *)
val run : ?samples:int -> ?seed:int64 -> unit -> row list

val render : row list -> string

(** E9: the headline numbers with the backend peephole on and off. *)
val optimized_backend : ?samples:int -> ?seed:int64 -> unit -> string

(** E11: FERRUM coverage under 1-3 bit flips per fault. *)
val multibit : ?samples:int -> ?seed:int64 -> unit -> string

(** E8: coverage when protection instructions are injection sites too. *)
val all_sites : ?samples:int -> ?seed:int64 -> unit -> string
