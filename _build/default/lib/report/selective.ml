(* Selective protection (experiment E12).

   The paper's related work (SDCTune [9], the authors' own selective-
   duplication study [13]) trades coverage for overhead by protecting
   only the most SDC-prone instructions.  This module reproduces that
   study on top of FERRUM: a profiling campaign on the unprotected
   binary attributes observed SDCs to the static instructions whose
   write-backs were faulted; instructions are then ranked by their SDC
   contribution and FERRUM protects just enough of them to cover a given
   budget (fraction of observed SDC mass).  Evaluation uses a different
   seed than profiling, so the selection must generalise. *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Ferrum_pass = Ferrum_eddi.Ferrum_pass
open Ferrum_asm

(* Map flattened static instruction index -> (block label, index within
   block), replicating the loader's flatten order. *)
let site_table (p : Prog.t) : (string * int) array =
  let out = ref [] in
  List.iter
    (fun (f : Prog.func) ->
      List.iter
        (fun (b : Prog.block) ->
          List.iteri (fun i _ -> out := (b.label, i) :: !out) b.insns)
        f.blocks)
    p.funcs;
  Array.of_list (List.rev !out)

(* Per-static-site SDC counts from a profiling campaign on the raw
   program. *)
let profile ~samples ~seed (img : Machine.image) =
  let res = F.campaign ~seed ~samples img in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (cls, (fault : F.fault)) ->
      if cls = F.Sdc && fault.F.static_index >= 0 then
        Hashtbl.replace counts fault.F.static_index
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts fault.F.static_index)))
    res.F.faults;
  (counts, res.F.counts)

(* The smallest set of static sites covering [budget] of the observed
   SDC mass, as a (label, index) selector. *)
let select_sites (p : Prog.t) counts ~budget =
  let table = site_table p in
  let ranked =
    Hashtbl.fold (fun idx n acc -> (idx, n) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 ranked in
  let want = int_of_float (ceil (budget *. float_of_int total)) in
  let selected = Hashtbl.create 64 in
  let rec take acc = function
    | [] -> ()
    | (idx, n) :: rest ->
      if acc >= want then ()
      else begin
        Hashtbl.replace selected table.(idx) ();
        take (acc + n) rest
      end
  in
  take 0 ranked;
  (selected, Hashtbl.length selected)

(* One benchmark, one budget: protect the selection, measure overhead
   and coverage with an independent evaluation seed. *)
type point = {
  budget : float;
  sites_protected : int;
  overhead : float;
  coverage : float;
}

let run_benchmark ?(samples = 300) ?(profile_seed = 404L) ?(eval_seed = 505L)
    (m : Ferrum_ir.Ir.modul) : point list =
  let raw = Pipeline.raw m in
  let raw_img = Machine.load raw.program in
  let raw_golden = Machine.golden raw_img in
  let counts, _ = profile ~samples ~seed:profile_seed raw_img in
  let eval_raw = (F.campaign ~seed:eval_seed ~samples raw_img).F.counts in
  List.map
    (fun budget ->
      let config, sites_protected =
        if budget >= 2.0 then (Ferrum_pass.default_config, -1)
        else
          let selected, n = select_sites raw.program counts ~budget in
          ( { Ferrum_pass.default_config with
              select = Some (fun label i -> Hashtbl.mem selected (label, i)) },
            n )
      in
      let prot = Pipeline.protect ~ferrum_config:config Technique.Ferrum m in
      let img = Machine.load prot.program in
      let golden = Machine.golden img in
      let eval = (F.campaign ~seed:eval_seed ~samples img).F.counts in
      {
        budget;
        sites_protected;
        overhead =
          F.overhead ~raw_cycles:raw_golden.Machine.cycles
            ~prot_cycles:golden.Machine.cycles;
        coverage = F.sdc_coverage ~raw:eval_raw ~protected_:eval;
      })
    [ 0.25; 0.5; 0.75; 0.9; 1.0; 2.0 (* 2.0 = full FERRUM *) ]

let render ?(samples = 300) () =
  let header =
    [ "Benchmark"; "budget"; "sites"; "overhead"; "coverage (eval seed)" ]
  in
  let rows =
    List.concat_map
      (fun (e : Ferrum_workloads.Catalog.entry) ->
        let points = run_benchmark ~samples (e.build ()) in
        List.map
          (fun (pt : point) ->
            [ e.name;
              (if pt.budget >= 2.0 then "full"
               else Printf.sprintf "%.0f%%" (100.0 *. pt.budget));
              (if pt.sites_protected < 0 then "all"
               else string_of_int pt.sites_protected);
              Ascii.percent pt.overhead; Ascii.percent pt.coverage ])
          points)
      Ferrum_workloads.Catalog.all
  in
  "E12 — selective FERRUM (SDCTune-style): protect the static sites \
   covering a budget of profiled SDC mass\n"
  ^ Ascii.table ~header ~rows
