lib/core/pipeline.ml: Ferrum_asm Ferrum_backend Ferrum_ir Ferrum_pass Hybrid Ir_eddi List Prog Technique Unix
