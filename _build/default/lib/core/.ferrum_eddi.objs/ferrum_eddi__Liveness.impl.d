lib/core/liveness.ml: Array Ferrum_asm Hashtbl Instr List Prog Reg Spare
