lib/core/ir_eddi.ml: Ferrum_asm Ferrum_backend Ferrum_ir Hashtbl Instr Ir List Printf Verify
