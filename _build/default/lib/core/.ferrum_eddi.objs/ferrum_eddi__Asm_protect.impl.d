lib/core/asm_protect.ml: Cond Ferrum_asm Fmt Instr Lazy List Printer Prog Reg
