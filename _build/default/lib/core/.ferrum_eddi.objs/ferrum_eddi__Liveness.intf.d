lib/core/liveness.mli: Ferrum_asm Instr Prog Reg Spare
