lib/core/spare.mli: Ferrum_asm Prog Reg Set
