lib/core/pipeline.mli: Ferrum_asm Ferrum_backend Ferrum_ir Ferrum_pass Technique
