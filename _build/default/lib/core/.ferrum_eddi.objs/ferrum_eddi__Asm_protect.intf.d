lib/core/asm_protect.mli: Ferrum_asm Instr Reg
