lib/core/ir_eddi.mli: Ferrum_backend Ferrum_ir Hashtbl
