lib/core/technique.mli:
