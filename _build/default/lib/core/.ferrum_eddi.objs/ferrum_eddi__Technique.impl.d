lib/core/technique.ml:
