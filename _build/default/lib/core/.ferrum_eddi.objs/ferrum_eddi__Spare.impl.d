lib/core/spare.ml: Ferrum_asm Instr Int List Prog Reg Set
