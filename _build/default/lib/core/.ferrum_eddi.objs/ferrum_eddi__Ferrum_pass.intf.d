lib/core/ferrum_pass.mli: Ferrum_asm Format Prog
