lib/core/hybrid.mli: Ferrum_asm Ferrum_backend Ferrum_ir
