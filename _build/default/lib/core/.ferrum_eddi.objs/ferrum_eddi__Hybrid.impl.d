lib/core/hybrid.ml: Asm_protect Ferrum_asm Ferrum_backend Ferrum_ir Hashtbl Instr Ir Ir_eddi List Printf Prog Spare Verify
