lib/core/ferrum_pass.ml: Array Asm_protect Cond Ferrum_asm Fmt Hashtbl Instr List Liveness Prog Reg Spare String
