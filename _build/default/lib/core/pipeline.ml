(* End-to-end drivers: compile a module unprotected or under any of the
   three techniques, with transform timing for the paper's compile-time
   measurement (§IV-B3). *)

open Ferrum_asm

type result = {
  technique : Technique.t option; (* None = unprotected baseline *)
  program : Prog.t;
  transform_seconds : float; (* time spent in the protection transform *)
}

(* Compile, optionally running the backend peephole optimiser
   (experiment E9: how much of the cross-layer story is -O0 glue). *)
let compile_raw ?(optimize = false) ?oracle (m : Ferrum_ir.Ir.modul) : Prog.t
    =
  let p = Ferrum_backend.Backend.compile ?oracle m in
  if optimize then fst (Ferrum_backend.Peephole.run p) else p

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Protect [m] with [technique].  The timed section covers only the
   protection transform itself (for IR-level techniques, the IR pass;
   for FERRUM, the assembly pass), matching how the paper reports
   FERRUM's execution time. *)
let protect ?(ferrum_config = Ferrum_pass.default_config) ?(optimize = false)
    technique (m : Ferrum_ir.Ir.modul) : result =
  match technique with
  | Technique.Ir_level_eddi ->
    let (m', oracle), secs = timed (fun () -> Ir_eddi.protect m) in
    {
      technique = Some technique;
      program = compile_raw ~optimize ~oracle m';
      transform_seconds = secs;
    }
  | Technique.Hybrid_assembly_eddi ->
    let (p, _stats), secs = timed (fun () -> Hybrid.protect ~optimize m) in
    { technique = Some technique; program = p; transform_seconds = secs }
  | Technique.Ferrum ->
    let base = compile_raw ~optimize m in
    let (p, _stats), secs =
      timed (fun () -> Ferrum_pass.protect ~config:ferrum_config base)
    in
    { technique = Some technique; program = p; transform_seconds = secs }

let raw ?(optimize = false) (m : Ferrum_ir.Ir.modul) : result =
  { technique = None; program = compile_raw ~optimize m;
    transform_seconds = 0.0 }

(* All four configurations of a module: raw + the three techniques. *)
let all_configurations ?ferrum_config ?optimize m =
  raw ?optimize m
  :: List.map (fun t -> protect ?ferrum_config ?optimize t m) Technique.all
