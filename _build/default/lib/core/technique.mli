(** The three protection techniques the paper evaluates, and the
    capability matrix of its Table I. *)

type t = Ir_level_eddi | Hybrid_assembly_eddi | Ferrum

val all : t list

(** Paper name, e.g. "HYBRID-ASSEMBLY-LEVEL-EDDI". *)
val name : t -> string

(** CLI-friendly name: "ir-eddi", "hybrid" or "ferrum". *)
val short_name : t -> string

val of_short_name : string -> t option

(** Implementation level of a protection facility (Table I cells). *)
type level =
  | IR  (** implemented at IR level *)
  | AS1  (** assembly level, no SIMD *)
  | AS2  (** assembly level with SIMD *)
  | Uncovered  (** "/" in the paper: faults there escape the technique *)

val level_name : level -> string

(** Table I's columns.  "Mapping" is the backend's data movement between
    stack slots and registers; it only exists below the IR. *)
type category = Basic | Store | Branch | CallCat | Mapping | Comparison

val categories : category list
val category_name : category -> string

(** Paper Table I: at which level [t] covers faults in category [c]. *)
val coverage : t -> category -> level
