(** IR-LEVEL-EDDI (paper §II-C, Fig. 2; the first baseline of §IV-A1).

    Classic EDDI in the SWIFT lineage: every duplicable IR instruction
    (load, binop, icmp, gep, cast) gets a shadow computing over shadow
    operands, and originals are compared against shadows at
    synchronisation points — stores (value and address), conditional
    branches (condition), calls (arguments) and returns — with a
    mismatch routed to a per-function detector block.

    Faults landing in instructions the backend introduces later (operand
    reloads, branch-condition materialisation, store/call data movement)
    are invisible to this pass: that is the coverage gap the paper
    measures at assembly level. *)

val detect_builtin : string

(** Bookkeeping of which vregs are shadows and which are checker
    comparisons, per function, plus detector/edge block labels; shared
    with {!Hybrid}'s signature pass. *)
type prov_tables = {
  shadows : (string * int, unit) Hashtbl.t;  (** (fname, vreg) *)
  checks : (string * int, unit) Hashtbl.t;
  detect_labels : (string, unit) Hashtbl.t;
}

val fresh_tables : unit -> prov_tables

(** Turn the tables into a backend oracle tagging lowered shadow code as
    [Dup], checker code as [Check]. *)
val oracle_of_tables : prov_tables -> Ferrum_backend.Backend.prov_oracle

(** Apply IR-level EDDI to every function; returns the protected,
    re-verified module and the provenance oracle for lowering. *)
val protect : Ferrum_ir.Ir.modul ->
  Ferrum_ir.Ir.modul * Ferrum_backend.Backend.prov_oracle
