(** Backward liveness analysis over assembly functions.

    The paper invokes liveness when arguing FERRUM's register reuse is
    safe (§III-B2).  [analyze] computes per-instruction live-in GPR sets
    with the classic backward data-flow over the block CFG; FERRUM's
    requisition path (with [use_liveness]) clobbers provably-dead
    registers without the Fig. 7 push/pop.

    Conservatism: [call] reads every register (protected callees may
    touch anything), so nothing is dead across a call; partial (8/16-bit)
    writes do not kill; unknown positions report live. *)

open Ferrum_asm

(** Registers an instruction reads, including address components and the
    read half of read-modify-write destinations. *)
val reads : Instr.t -> Spare.GSet.t

(** Registers an instruction fully defines (64/32-bit writes). *)
val writes : Instr.t -> Spare.GSet.t

type t

val analyze : Prog.func -> t

(** [dead_at t ~label ~k r]: is [r] dead immediately before instruction
    [k] of block [label] (safe to clobber)?  Unknown positions are
    live. *)
val dead_at : t -> label:string -> k:int -> Reg.gpr -> bool

(** Dead registers at a position, in {!Spare.preference} order. *)
val dead_regs_at : t -> label:string -> k:int -> Reg.gpr list
