(* Backward liveness analysis over assembly functions.

   The paper invokes liveness analysis when arguing FERRUM's register
   reuse is safe ("according to liveness analysis, after the check
   process, the register can immediately be put into new use",
   §III-B2).  This module computes per-instruction live-in GPR sets with
   the classic backward data-flow over the block CFG, and FERRUM's
   requisition path uses it (when enabled) to clobber registers that are
   provably dead at a program point without the Fig. 7 push/pop.

   Conservatism: a [call] is treated as reading every register (callees
   are analysed separately and their own protection may touch anything),
   so nothing is ever "dead across a call"; [ret] reads RAX (potential
   return value) and the stack registers; [jmp]/[jcc] feed successor
   live-ins; a fall-through edge goes to the next block in layout
   order. *)

open Ferrum_asm
module GSet = Spare.GSet

(* Registers an instruction reads (including address components and the
   read half of read-modify-write destinations). *)
let reads (i : Instr.t) : GSet.t =
  let of_operand = function
    | Instr.Reg r -> [ r ]
    | Instr.Mem m -> Instr.gprs_of_mem m
    | Instr.Imm _ -> []
  in
  let addr_only = function
    | Instr.Mem m -> Instr.gprs_of_mem m
    | Instr.Reg _ | Instr.Imm _ -> []
  in
  let l =
    match i with
    | Instr.Mov (_, src, dst) -> of_operand src @ addr_only dst
    | Instr.Movslq (src, _) | Instr.Movzbq (src, _) -> of_operand src
    | Instr.Lea (m, _) -> Instr.gprs_of_mem m
    (* two-operand ALU and shifts read their destination too *)
    | Instr.Alu (_, _, src, dst) -> of_operand src @ of_operand dst
    | Instr.Shift (_, _, amt, dst) ->
      (match amt with Instr.Amt_cl -> [ Reg.RCX ] | Instr.Amt_imm _ -> [])
      @ of_operand dst
    | Instr.Neg (_, o) | Instr.Not (_, o) -> of_operand o
    | Instr.Cmp (_, a, b) | Instr.Test (_, a, b) -> of_operand a @ of_operand b
    | Instr.Set (_, dst) -> addr_only dst
    | Instr.Jmp _ | Instr.Jcc _ -> []
    | Instr.Call _ -> Reg.all_gprs (* conservative: see header *)
    | Instr.Ret -> Reg.[ RAX; RSP; RBP ]
    | Instr.Push o -> Reg.RSP :: of_operand o
    | Instr.Pop _ -> [ Reg.RSP ]
    | Instr.Cqto -> [ Reg.RAX ]
    | Instr.Idiv (_, o) -> Reg.[ RAX; RDX ] @ of_operand o
    | Instr.MovQ_to_xmm (o, _) -> of_operand o
    | Instr.MovQ_from_xmm _ -> []
    | Instr.Pinsrq (_, s, _) -> Instr.gprs_of_pinsr_src s
    | Instr.Pextrq _ -> []
    | Instr.Vinserti128 _ | Instr.Vpxor _ | Instr.Vptest _
    | Instr.Vinserti64x4 _ | Instr.Vpxorq512 _ | Instr.Vptestmq512 _ -> []
  in
  GSet.of_list l

(* Registers an instruction fully defines (kills).  Partial writes
   (8/16-bit merges) do not kill; 32-bit writes zero-extend and do. *)
let writes (i : Instr.t) : GSet.t =
  let l =
    List.filter_map
      (function
        | Instr.Dgpr (r, (Reg.Q | Reg.D)) -> Some r
        | Instr.Dgpr (_, (Reg.B | Reg.W)) -> None
        | Instr.Dsimd _ | Instr.Dflags _ -> None)
      (Instr.defs i)
  in
  let l =
    match i with
    | Instr.Push _ | Instr.Pop _ -> Reg.RSP :: l
    | _ -> l
  in
  GSet.of_list l

(* Per-function result: live-in set for each (block label, instruction
   index) position, and per-block live-out. *)
type t = {
  live_in : (string * int, GSet.t) Hashtbl.t;
  block_live_out : (string, GSet.t) Hashtbl.t;
}

let analyze (f : Prog.func) : t =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i (b : Prog.block) -> Hashtbl.replace index b.label i) blocks;
  (* successor indices per block: explicit targets + fall-through *)
  let successors i =
    let b = blocks.(i) in
    let rec last_barrier = function
      | [] -> false
      | [ (ins : Instr.ins) ] -> Instr.is_barrier ins.op
      | _ :: rest -> last_barrier rest
    in
    let explicit =
      List.concat_map
        (fun (ins : Instr.ins) ->
          List.filter_map (Hashtbl.find_opt index) (Instr.targets ins.op))
        b.insns
    in
    let fallthrough =
      if (not (last_barrier b.insns)) && i + 1 < n then [ i + 1 ] else []
    in
    explicit @ fallthrough
  in
  let live_in_block = Array.make n GSet.empty in
  let live_out_block = Array.make n GSet.empty in
  (* transfer through a whole block *)
  let through (b : Prog.block) out =
    List.fold_left
      (fun live (ins : Instr.ins) ->
        GSet.union (reads ins.op) (GSet.diff live (writes ins.op)))
      out
      (List.rev b.insns)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> GSet.union acc live_in_block.(s))
          GSet.empty (successors i)
      in
      let inn = through blocks.(i) out in
      if not (GSet.equal out live_out_block.(i)) then begin
        live_out_block.(i) <- out;
        changed := true
      end;
      if not (GSet.equal inn live_in_block.(i)) then begin
        live_in_block.(i) <- inn;
        changed := true
      end
    done
  done;
  (* expand to per-instruction live-in *)
  let live_in = Hashtbl.create 256 in
  let block_live_out = Hashtbl.create n in
  Array.iteri
    (fun i (b : Prog.block) ->
      Hashtbl.replace block_live_out b.label live_out_block.(i);
      let arr = Array.of_list b.insns in
      let m = Array.length arr in
      let live = ref live_out_block.(i) in
      for k = m - 1 downto 0 do
        live := GSet.union (reads arr.(k).op) (GSet.diff !live (writes arr.(k).op));
        Hashtbl.replace live_in (b.label, k) !live
      done)
    blocks;
  { live_in; block_live_out }

(* Is [r] dead immediately before instruction [k] of block [label]?
   (i.e. safe to clobber at that point — nothing reads it before its
   next full definition on any path).  Missing positions are treated as
   live (conservative). *)
let dead_at (t : t) ~label ~k r =
  match Hashtbl.find_opt t.live_in (label, k) with
  | Some live -> not (GSet.mem r live)
  | None -> false

(* Registers dead immediately before instruction [k] of block [label],
   in {!Spare.preference} order. *)
let dead_regs_at (t : t) ~label ~k =
  List.filter (fun r -> dead_at t ~label ~k r) Spare.preference
