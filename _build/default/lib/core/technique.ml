(* The three protection techniques evaluated in the paper, and the
   capability matrix of paper Table I: at which level (if any) each
   technique covers each assembly instruction category. *)

type t = Ir_level_eddi | Hybrid_assembly_eddi | Ferrum

let all = [ Ir_level_eddi; Hybrid_assembly_eddi; Ferrum ]

let name = function
  | Ir_level_eddi -> "IR-LEVEL-EDDI"
  | Hybrid_assembly_eddi -> "HYBRID-ASSEMBLY-LEVEL-EDDI"
  | Ferrum -> "FERRUM"

let short_name = function
  | Ir_level_eddi -> "ir-eddi"
  | Hybrid_assembly_eddi -> "hybrid"
  | Ferrum -> "ferrum"

let of_short_name = function
  | "ir-eddi" -> Some Ir_level_eddi
  | "hybrid" -> Some Hybrid_assembly_eddi
  | "ferrum" -> Some Ferrum
  | _ -> None

(* Implementation level of a protection facility (Table I cells). *)
type level =
  | IR (* implemented at IR level *)
  | AS1 (* assembly level, no SIMD *)
  | AS2 (* assembly level with SIMD *)
  | Uncovered (* "/" in the paper: faults there escape the technique *)

let level_name = function
  | IR -> "IR"
  | AS1 -> "AS1"
  | AS2 -> "AS2"
  | Uncovered -> "/"

(* Instruction categories of Table I's columns.  "Mapping" is the
   backend's data movement between stack slots and registers (operand
   reloads and result spills); it only exists below the IR. *)
type category = Basic | Store | Branch | CallCat | Mapping | Comparison

let categories = [ Basic; Store; Branch; CallCat; Mapping; Comparison ]

let category_name = function
  | Basic -> "basic"
  | Store -> "store"
  | Branch -> "branch"
  | CallCat -> "call"
  | Mapping -> "mapping"
  | Comparison -> "comparison"

(* Paper Table I. *)
let coverage t c =
  match (t, c) with
  | Ir_level_eddi, Basic -> IR
  | Ir_level_eddi, _ -> Uncovered
  | Hybrid_assembly_eddi, (Branch | Comparison) -> IR
  | Hybrid_assembly_eddi, _ -> AS1
  | Ferrum, _ -> AS2
