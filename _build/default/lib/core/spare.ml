(* Spare-register discovery (paper §III-B1).

   FERRUM scans every instruction of a function and records which
   general-purpose and SIMD registers the program uses; the complement
   (minus RSP/RBP and the calling-convention registers when the function
   makes or receives calls) is available for duplication.  FERRUM needs
   at least one general spare for GENERAL-INSTRUCTIONS, two reserved
   spares for comparison protection and four spare XMM registers for
   SIMD-batched checking; below those thresholds it falls back to
   stack-level requisition (paper §III-B4, our Requisition module). *)

open Ferrum_asm

module GSet = Set.Make (struct
  type t = Reg.gpr

  let compare = Reg.compare_gpr
end)

module ISet = Set.Make (Int)

type t = {
  used_gprs : GSet.t;
  spare_gprs : Reg.gpr list; (* stable, preference-ordered *)
  used_simd : ISet.t;
  spare_simd : int list;
}

(* Registers that participate in the calling convention; a function that
   contains calls may have live values in them at call boundaries even
   when they never appear syntactically. *)
let call_clobbered = Reg.[ RAX; RCX; RDX; RSI; RDI; R8; R9 ]

let never_spare = Reg.[ RSP; RBP ]

(* Preference order for spares: high registers first, mirroring the
   paper's examples (r10 for duplication, r11/r12 for the flag pair). *)
let preference =
  Reg.[ R10; R11; R12; R13; R14; R15; RBX; R9; R8; RSI; RDI; RDX; RCX; RAX ]

let analyze_func (f : Prog.func) =
  let used = ref GSet.empty in
  let used_simd = ref ISet.empty in
  let has_call = ref false in
  List.iter
    (fun (b : Prog.block) ->
      List.iter
        (fun (i : Instr.ins) ->
          List.iter (fun r -> used := GSet.add r !used) (Instr.gprs_mentioned i.op);
          List.iter (fun x -> used_simd := ISet.add x !used_simd)
            (Instr.simds_mentioned i.op);
          match i.op with Instr.Call _ -> has_call := true | _ -> ())
        b.insns)
    f.blocks;
  let blocked =
    if !has_call then GSet.union !used (GSet.of_list call_clobbered)
    else !used
  in
  let blocked = GSet.union blocked (GSet.of_list never_spare) in
  let spare_gprs = List.filter (fun r -> not (GSet.mem r blocked)) preference in
  let spare_simd =
    List.filter (fun x -> not (ISet.mem x !used_simd)) [ 15; 14; 13; 12; 11; 10; 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ]
  in
  { used_gprs = !used; spare_gprs; used_simd = !used_simd; spare_simd }

(* Registers unused inside one basic block (candidates for temporary
   requisition via push/pop, paper Fig. 7). *)
let block_unused (b : Prog.block) =
  let used = ref (GSet.of_list never_spare) in
  List.iter
    (fun (i : Instr.ins) ->
      List.iter (fun r -> used := GSet.add r !used) (Instr.gprs_mentioned i.op))
    b.insns;
  List.filter (fun r -> not (GSet.mem r !used)) preference

(* Thresholds from the paper: 1 general spare for GENERAL-INSTRUCTIONS,
   2 for comparison protection, 4 XMM spares for SIMD batching. *)
let general_needed = 1
let pair_needed = 2
let simd_needed = 4
