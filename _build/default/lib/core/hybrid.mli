(** HYBRID-ASSEMBLY-LEVEL-EDDI (paper §IV-A1, the second baseline).

    Plain assembly-level EDDI as replicated from the literature: every
    protectable assembly instruction is immediately duplicated and
    checked with the Fig. 4 scheme (no SIMD), while comparisons and
    branches are protected at IR level with signature-style checks
    (paper Table I: branch/comparison = IR) — every icmp is re-executed
    and compared on the spot, and every conditional branch is routed
    through per-edge verification blocks that re-test the stored
    condition against the direction actually taken. *)

(** Transform statistics of the assembly duplication pass. *)
type stats = {
  mutable protected_count : int;
  mutable skipped : int;
      (** protectable original instructions left alone (no safe
          insertion point or not enough spares) — 0 on the benchmark
          suite *)
}

(** The IR signature pass alone (icmp re-execution + branch direction
    checks); returns the re-verified module and the provenance oracle
    for lowering. *)
val signature_pass : Ferrum_ir.Ir.modul ->
  Ferrum_ir.Ir.modul * Ferrum_backend.Backend.prov_oracle

(** Full hybrid pipeline: signature pass, lowering (optionally through
    the peephole), then Fig. 4 duplication of every protectable original
    instruction. *)
val protect : ?optimize:bool -> Ferrum_ir.Ir.modul ->
  Ferrum_asm.Prog.t * stats
