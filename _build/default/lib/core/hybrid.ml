(* HYBRID-ASSEMBLY-LEVEL-EDDI (paper §IV-A1, second baseline).

   A replication of plain assembly-level EDDI assembled from the
   literature: every protectable assembly instruction is immediately
   duplicated and checked with the Fig. 4 scheme (no SIMD), while
   comparison and branch instructions are protected at IR level with
   signature-style checks (paper Table I: branch/comparison = IR),
   because those are the two categories the paper's prior work found
   hard to protect natively in assembly.

   The IR part does two things:
   - every icmp is re-executed and the two results compared immediately
     (catches flag corruption in the lowered compare feeding a setcc);
   - every conditional branch is routed through per-edge verification
     blocks that re-test the condition value from memory and detect a
     wrong-direction branch (catches flag corruption in the lowered
     compare feeding the jcc). *)

open Ferrum_asm
open Ferrum_ir

(* ------------------------------------------------------------------ *)
(* IR signature pass.                                                  *)
(* ------------------------------------------------------------------ *)

type irstate = {
  mutable next_vreg : int;
  mutable next_label : int;
  tables : Ir_eddi.prov_tables;
  fname : string;
  detect_label : string;
  mutable finished : Ir.block list; (* reverse *)
  mutable cur_label : string;
  mutable cur_body : Ir.instr list; (* reverse *)
  mutable edges : Ir.block list; (* verification blocks, reverse *)
}

let fresh_vreg st =
  let v = st.next_vreg in
  st.next_vreg <- v + 1;
  v

let fresh_label st hint =
  let n = st.next_label in
  st.next_label <- n + 1;
  Printf.sprintf "%s_sig_%s%d" st.fname hint n

let emit st i = st.cur_body <- i :: st.cur_body

let finish_block st term =
  st.finished <-
    Ir.{ label = st.cur_label; body = List.rev st.cur_body; term }
    :: st.finished;
  st.cur_body <- []

(* Duplicate an icmp and branch to the detector if the two disagree. *)
let protect_icmp st (i : Ir.instr) =
  match i with
  | Ir.Icmp { dst; pred; ty; a; b } ->
    emit st i;
    let s = fresh_vreg st in
    Hashtbl.replace st.tables.Ir_eddi.shadows (st.fname, s) ();
    emit st (Ir.Icmp { dst = s; pred; ty; a; b });
    let m = fresh_vreg st in
    Hashtbl.replace st.tables.Ir_eddi.checks (st.fname, m) ();
    emit st
      (Ir.Icmp { dst = m; pred = Ir.Ne; ty = Ir.I1; a = Ir.Vreg dst;
                 b = Ir.Vreg s });
    let cont = fresh_label st "cont" in
    finish_block st
      (Ir.Br { cond = Ir.Vreg m; ifso = st.detect_label; ifnot = cont });
    st.cur_label <- cont
  | _ -> assert false

(* Route a conditional branch through edge blocks that re-verify the
   condition's stored value against the direction actually taken. *)
let protect_branch st cond ifso ifnot =
  let edge_so = fresh_label st "so" in
  let edge_not = fresh_label st "not" in
  Hashtbl.replace st.tables.Ir_eddi.detect_labels edge_so ();
  Hashtbl.replace st.tables.Ir_eddi.detect_labels edge_not ();
  st.edges <-
    Ir.{ label = edge_so; body = [];
         term = Ir.Br { cond; ifso; ifnot = st.detect_label } }
    :: Ir.{ label = edge_not; body = [];
            term = Ir.Br { cond; ifso = st.detect_label; ifnot } }
    :: st.edges;
  Ir.Br { cond; ifso = edge_so; ifnot = edge_not }

let max_vreg (f : Ir.func) =
  List.fold_left
    (fun acc (b : Ir.block) ->
      List.fold_left
        (fun acc i -> match Ir.def i with Some d -> max acc d | None -> acc)
        acc b.body)
    (List.fold_left (fun acc (r, _) -> max acc r) (-1) f.params)
    f.blocks

let signature_pass_func tables (f : Ir.func) : Ir.func =
  let st =
    {
      next_vreg = max_vreg f + 1;
      next_label = 0;
      tables;
      fname = f.name;
      detect_label = f.name ^ "_sig_detect";
      finished = [];
      cur_label = "";
      cur_body = [];
      edges = [];
    }
  in
  Hashtbl.replace tables.Ir_eddi.detect_labels st.detect_label ();
  List.iter
    (fun (b : Ir.block) ->
      st.cur_label <- b.label;
      st.cur_body <- [];
      List.iter
        (fun i ->
          match i with Ir.Icmp _ -> protect_icmp st i | _ -> emit st i)
        b.body;
      let term =
        match b.term with
        | Ir.Br { cond = Ir.Vreg _ as cond; ifso; ifnot } ->
          protect_branch st cond ifso ifnot
        | t -> t
      in
      finish_block st term)
    f.blocks;
  let detect_block =
    Ir.
      {
        label = st.detect_label;
        body =
          [ Ir.Call { dst = None; callee = "__ferrum_detect"; args = [] } ];
        term = Ir.Jmp st.detect_label;
      }
  in
  { f with
    blocks = List.rev st.finished @ List.rev st.edges @ [ detect_block ] }

let signature_pass (m : Ir.modul) :
    Ir.modul * Ferrum_backend.Backend.prov_oracle =
  let tables = Ir_eddi.fresh_tables () in
  let m' = { m with funcs = List.map (signature_pass_func tables) m.funcs } in
  Verify.run m';
  (m', Ir_eddi.oracle_of_tables tables)

(* ------------------------------------------------------------------ *)
(* Assembly duplication pass (Fig. 4 for everything protectable).      *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable protected_count : int;
  mutable skipped : int; (* protectable but no safe insertion point *)
}

let duplicate_func stats (f : Prog.func) : Prog.func =
  let sp = Spare.analyze_func f in
  let protect_one spares next (ins : Instr.ins) =
    let flag_hazard =
      match next with
      | Some (n : Instr.ins) -> Instr.reads_flags n.op
      | None -> false
    in
    if
      ins.Instr.prov = Instr.Original
      && Asm_protect.protectable ins.op
      && (not flag_hazard)
      && List.length spares >= Asm_protect.spares_needed ins.op
    then begin
      stats.protected_count <- stats.protected_count + 1;
      Asm_protect.protect ~spares ins
    end
    else begin
      (* IR-inserted signature code (non-Original) is deliberately left
         alone and does not count as a skip *)
      if ins.Instr.prov = Instr.Original && Asm_protect.protectable ins.op
      then stats.skipped <- stats.skipped + 1;
      [ ins ]
    end
  in
  let blocks =
    List.map
      (fun (b : Prog.block) ->
        let rec go = function
          | [] -> []
          | [ ins ] -> protect_one sp.Spare.spare_gprs None ins
          | ins :: (next :: _ as rest) ->
            protect_one sp.Spare.spare_gprs (Some next) ins @ go rest
        in
        Prog.block b.label (go b.insns))
      f.blocks
  in
  Prog.func f.fname blocks

(* Full hybrid pipeline: IR signature pass, lowering, then duplication
   of every protectable assembly instruction. *)
let protect ?(optimize = false) (m : Ir.modul) : Prog.t * stats =
  let stats = { protected_count = 0; skipped = 0 } in
  let m', oracle = signature_pass m in
  let p = Ferrum_backend.Backend.compile ~oracle m' in
  let p = if optimize then fst (Ferrum_backend.Peephole.run p) else p in
  let p' = Prog.map_funcs (duplicate_func stats) p in
  Prog.validate p';
  (p', stats)
