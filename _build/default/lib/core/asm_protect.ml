(* Assembly-level duplication of GENERAL-INSTRUCTIONS (paper §III-B2,
   Fig. 4): re-execute the instruction into a spare register and compare
   the two results with a checker branching to [exit_function].

   Three shapes are needed:
   - re-executable instructions (moves, movslq, lea, setcc, pop-peek):
     run the duplicate FIRST, with the destination replaced by a spare,
     so that an original that overwrites one of its own sources (paper
     Fig. 4's [movslq %ecx, %rcx]) still duplicates correctly;
   - accumulator instructions (two-operand ALU, shifts, neg/not) whose
     destination is also an input: copy the destination into the spare,
     apply the operation to the spare, then run the original;
   - implicit-destination instructions (cqto, idiv) with bespoke
     sequences over several spares.

   The caller guarantees that the instruction after the protected one
   does not read RFLAGS (the checker's [cmp] redefines them); in
   backend-generated code the only flag readers are the jcc/setcc
   immediately after a cmp, which has no GPR destination and therefore
   never receives a checker. *)

open Ferrum_asm

exception Unprotectable of string

let unprotectable fmt = Fmt.kstr (fun s -> raise (Unprotectable s)) fmt

(* The GPR destination of an instruction, if it has exactly one. *)
let dest_gpr (i : Instr.t) =
  let gprs =
    List.filter_map
      (function Instr.Dgpr (r, s) -> Some (r, s) | _ -> None)
      (Instr.defs i)
  in
  match gprs with [ d ] -> Some d | _ -> None

(* Width at which original and duplicate are compared: 32-bit writes
   zero-extend on x86, so a full 64-bit compare is both valid and
   strictest; byte/word writes merge and must be compared at their own
   width. *)
let check_width = function
  | Reg.B -> Reg.B
  | Reg.W -> Reg.W
  | Reg.D | Reg.Q -> Reg.Q

let checker ?(target = Prog.exit_function_label) width ~orig ~dup =
  [ Instr.check (Instr.Cmp (check_width width, dup, Instr.Reg orig));
    Instr.check (Instr.Jcc (Cond.NE, target)) ]

(* Build the duplicate of a re-executable instruction with its
   destination replaced by [s]. *)
let reexec_with_dest (i : Instr.t) s =
  match i with
  | Instr.Mov (sz, src, Instr.Reg _) -> Instr.Mov (sz, src, Instr.Reg s)
  | Instr.Movslq (src, _) -> Instr.Movslq (src, s)
  | Instr.Movzbq (src, _) -> Instr.Movzbq (src, s)
  | Instr.Lea (m, _) -> Instr.Lea (m, s)
  | Instr.Set (c, Instr.Reg _) -> Instr.Set (c, Instr.Reg s)
  | Instr.MovQ_from_xmm (x, _) -> Instr.MovQ_from_xmm (x, s)
  | Instr.Pextrq (lane, x, _) -> Instr.Pextrq (lane, x, s)
  | _ -> unprotectable "reexec_with_dest: %s" (Printer.string_of_instr i)

(* How many spare registers [protect] needs for an instruction. *)
let spares_needed (i : Instr.t) =
  match i with
  | Instr.Idiv _ -> 4
  | Instr.Pop _ -> 0 (* verified against the still-intact stack slot *)
  | _ -> ( match dest_gpr i with Some _ -> 1 | None -> 0)

(* A comparison the protection owes after the duplicate has executed:
   original register vs the duplicate value (a spare register, or for
   pop the still-intact memory slot just above the stack pointer). *)
type owed_check = { orig : Reg.gpr; dup : Instr.operand; width : Reg.size }

(* Duplicate one Original instruction, returning the replacement
   sequence WITHOUT checkers plus the comparisons owed.  [spares] must
   contain at least [spares_needed i] registers, none of which the
   instruction mentions.  FERRUM batches the owed comparisons through
   SIMD; the hybrid baseline materialises them immediately. *)
let protect_parts ~spares (ins : Instr.ins) :
    Instr.ins list * owed_check list =
  let i = ins.op in
  (match List.find_opt (fun s -> List.mem s (Instr.gprs_mentioned i)) spares with
  | Some s ->
    unprotectable "spare %s mentioned by %s" (Reg.gpr_name s Reg.Q)
      (Printer.string_of_instr i)
  | None -> ());
  let s0 =
    lazy (match spares with s :: _ -> s | [] -> unprotectable "no spare")
  in
  let copy a b =
    Instr.instrumentation (Instr.Mov (Reg.Q, Instr.Reg a, Instr.Reg b))
  in
  match i with
  (* Re-executable: duplicate first (Fig. 4). *)
  | Instr.Mov (_, _, Instr.Reg d)
  | Instr.Set (_, Instr.Reg d)
  | Instr.Movslq (_, d) | Instr.Movzbq (_, d) | Instr.Lea (_, d)
  | Instr.MovQ_from_xmm (_, d) | Instr.Pextrq (_, _, d) ->
    let width =
      match i with
      | Instr.Mov (w, _, _) -> w
      | Instr.Set _ -> Reg.B
      | _ -> Reg.Q
    in
    let s0 = Lazy.force s0 in
    ([ Instr.dup (reexec_with_dest i s0); ins ],
     [ { orig = d; dup = Instr.Reg s0; width } ])
  (* Accumulator shapes: copy, apply to the copy, then the original. *)
  | Instr.Alu (op, sz, src, Instr.Reg d) ->
    let s0 = Lazy.force s0 in
    let src' =
      match src with
      | Instr.Reg r when Reg.equal_gpr r d -> Instr.Reg s0
      | _ -> src
    in
    ([ copy d s0; Instr.dup (Instr.Alu (op, sz, src', Instr.Reg s0)); ins ],
     [ { orig = d; dup = Instr.Reg s0; width = sz } ])
  | Instr.Shift (k, sz, amt, Instr.Reg d) ->
    let s0 = Lazy.force s0 in
    ([ copy d s0; Instr.dup (Instr.Shift (k, sz, amt, Instr.Reg s0)); ins ],
     [ { orig = d; dup = Instr.Reg s0; width = sz } ])
  | Instr.Neg (sz, Instr.Reg d) ->
    let s0 = Lazy.force s0 in
    ([ copy d s0; Instr.dup (Instr.Neg (sz, Instr.Reg s0)); ins ],
     [ { orig = d; dup = Instr.Reg s0; width = sz } ])
  | Instr.Not (sz, Instr.Reg d) ->
    let s0 = Lazy.force s0 in
    ([ copy d s0; Instr.dup (Instr.Not (sz, Instr.Reg s0)); ins ],
     [ { orig = d; dup = Instr.Reg s0; width = sz } ])
  (* Pop: after the pop the popped slot still holds the true value just
     below the new stack top; compare the register against it.  Needs no
     spare register at all. *)
  | Instr.Pop d ->
    ([ ins ],
     [ { orig = d; dup = Instr.Mem (Instr.mem ~base:Reg.RSP (-8));
         width = Reg.Q } ])
  (* Cqto: recompute the sign extension and compare RDX. *)
  | Instr.Cqto ->
    let s0 = Lazy.force s0 in
    ([ ins; copy Reg.RDX s0; Instr.dup Instr.Cqto ],
     [ { orig = Reg.RDX; dup = Instr.Reg s0; width = Reg.Q } ])
  (* Idiv: save the inputs, divide, save the results, restore the
     inputs, divide again, compare quotient and remainder. *)
  | Instr.Idiv (sz, src) -> (
    match spares with
    | s0 :: s1 :: s2 :: s3 :: _ ->
      (match src with
      | Instr.Reg (Reg.RAX | Reg.RDX) ->
        unprotectable "idiv with RAX/RDX divisor"
      | _ -> ());
      ([ copy Reg.RAX s0; copy Reg.RDX s1; ins; copy Reg.RAX s2;
         copy Reg.RDX s3; copy s0 Reg.RAX; copy s1 Reg.RDX;
         Instr.dup (Instr.Idiv (sz, src)) ],
       [ { orig = Reg.RAX; dup = Instr.Reg s2; width = Reg.Q };
         { orig = Reg.RDX; dup = Instr.Reg s3; width = Reg.Q } ])
    | _ -> unprotectable "idiv needs 4 spare registers")
  | _ ->
    unprotectable "protect: no GPR destination in %s"
      (Printer.string_of_instr i)

(* Fig. 4 protection with immediate checkers, as the hybrid baseline
   deploys it. *)
let protect ?target ~spares (ins : Instr.ins) : Instr.ins list =
  let seq, owed = protect_parts ~spares ins in
  seq
  @ List.concat_map
      (fun { orig; dup; width } -> checker ?target width ~orig ~dup)
      owed

(* True when [protect] applies to the instruction. *)
let protectable (i : Instr.t) =
  match i with
  | Instr.Cqto -> true
  | Instr.Idiv _ -> true
  | Instr.Pop _ -> true
  | _ -> dest_gpr i <> None
