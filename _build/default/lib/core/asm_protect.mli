(** Assembly-level duplication of GENERAL-INSTRUCTIONS (paper §III-B2,
    Fig. 4): re-execute an instruction into a spare register and compare
    the two results.

    Re-executable instructions (moves, movslq, lea, setcc) run the
    duplicate first, so an original that overwrites one of its sources
    (Fig. 4's [movslq %ecx, %rcx]) still duplicates correctly;
    accumulator instructions copy the destination into the spare and
    apply the operation to the copy; [cqto]/[idiv] use bespoke
    multi-spare sequences; [pop] is verified against the still-intact
    stack slot just below the new top and needs no spare at all. *)

open Ferrum_asm

exception Unprotectable of string

(** The single GPR destination of an instruction, if it has exactly
    one. *)
val dest_gpr : Instr.t -> (Reg.gpr * Reg.size) option

(** Width at which a duplicate is compared: 32-bit writes zero-extend,
    so D is widened to a strict 64-bit compare; B/W compare at their own
    width. *)
val check_width : Reg.size -> Reg.size

(** The immediate Fig. 4 checker: [cmp dup, %orig; jne target]
    ([target] defaults to the detector label). *)
val checker :
  ?target:string -> Reg.size -> orig:Reg.gpr -> dup:Instr.operand ->
  Instr.ins list

(** Spare registers {!protect} needs: 4 for [idiv], 0 for [pop], 1
    otherwise (0 for instructions with no GPR destination). *)
val spares_needed : Instr.t -> int

(** A comparison owed after the duplicate has executed: the original
    register against the duplicate value (a spare register, or for pop
    the stack slot).  FERRUM batches these through SIMD; the hybrid
    baseline materialises them immediately. *)
type owed_check = { orig : Reg.gpr; dup : Instr.operand; width : Reg.size }

(** Duplicate one instruction, returning the replacement sequence
    without checkers plus the comparisons owed.  The spares must not be
    mentioned by the instruction.  Raises {!Unprotectable}. *)
val protect_parts :
  spares:Reg.gpr list -> Instr.ins -> Instr.ins list * owed_check list

(** Fig. 4 protection with immediate checkers, as the hybrid baseline
    deploys it. *)
val protect :
  ?target:string -> spares:Reg.gpr list -> Instr.ins -> Instr.ins list

(** True when {!protect} applies to the instruction. *)
val protectable : Instr.t -> bool
