(* FERRUM (paper §III): assembly-level EDDI boosted with SIMD and
   compiler-level transformations.

   Per function:
   1. spare-register discovery (Spare) classifies GPRs/SIMD registers;
   2. instruction annotation: 64-bit moves whose destination differs
      from the source register are SIMD-ENABLED-INSTRUCTIONS — their
      duplicate is re-executed straight into a spare XMM lane and their
      original result is copied into a partner lane, four results per
      XMM pair, checked at once through YMM (paper Fig. 6).  Everything
      else with a GPR destination is a GENERAL-INSTRUCTION (Fig. 4);
   3. comparison instructions get deferred detection: a set<cc> pair
      captures the branch's condition from the original and from a
      re-executed compare, and both the fall-through path and the jump
      target re-verify the pair (paper Fig. 5);
   4. when spare registers run out, registers unused within a basic
      block are requisitioned by push/pop (paper Fig. 7).

   Batched SIMD checks are flushed at the points where a divergence
   could influence control flow or escape the function: before any
   compare (whose consumer branches), unconditional jumps, calls and
   returns, and whenever the four slots fill up. *)

open Ferrum_asm

type config = {
  use_simd : bool; (* E6 ablation: disable the SIMD path entirely *)
  use_zmm : bool; (* E10: batch eight results through ZMM (paper
                     §III-B5 names AVX-512 as the natural extension) *)
  use_liveness : bool; (* under register pressure, clobber provably-dead
                          registers instead of push/pop requisition
                          (the paper's §III-B2 liveness argument) *)
  select : (string -> int -> bool) option;
    (* selective protection (E12, SDCTune-style): protect only the
       original instruction at (block label, index) when the predicate
       holds; [None] protects everything *)
  max_spare_gprs : int option; (* E7 ablation: simulate register pressure *)
  max_spare_simd : int option;
}

let default_config =
  { use_simd = true; use_zmm = false; use_liveness = false; select = None;
    max_spare_gprs = None; max_spare_simd = None }

let zmm_config = { default_config with use_zmm = true }

type stats = {
  mutable simd_batched : int; (* SIMD-ENABLED instructions protected *)
  mutable flushes : int;
  mutable general_protected : int;
  mutable comparisons_protected : int;
  mutable requisitioned_blocks : int; (* requisition events *)
  mutable unprotected : int; (* instructions left without duplication *)
}

let fresh_stats () =
  {
    simd_batched = 0;
    flushes = 0;
    general_protected = 0;
    comparisons_protected = 0;
    requisitioned_blocks = 0;
    unprotected = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "simd=%d flushes=%d general=%d comparisons=%d requisitions=%d unprotected=%d"
    s.simd_batched s.flushes s.general_protected s.comparisons_protected
    s.requisitioned_blocks s.unprotected

let cap limit l =
  match limit with
  | None -> l
  | Some n -> List.filteri (fun i _ -> i < n) l

let exit_l = Prog.exit_function_label

(* ------------------------------------------------------------------ *)
(* Per-function protection context.                                    *)
(* ------------------------------------------------------------------ *)

(* Collector registers for batched checking: [xa] receives duplicates,
   [xb] originals, two 64-bit slots per XMM.  [capacity] is 4 (YMM,
   paper Fig. 6) or 8 (ZMM extension). *)
type batch = { xa : int array; xb : int array; capacity : int }

type ctx = {
  cfg : config;
  stats : stats;
  pair : (Reg.gpr * Reg.gpr) option; (* reserved flag-capture pair *)
  general_pool : Reg.gpr list; (* function-wide spares for duplication *)
  simd : batch option;
  liveness : Liveness.t option; (* of the raw function, when enabled *)
  mutable cur_label : string; (* block being walked *)
  mutable cur_index : int; (* original instruction index within it *)
  mutable batch_count : int; (* filled 64-bit slots *)
  mutable out : Instr.ins list; (* emitted code, reversed *)
  mutable entry_checks : (string, unit) Hashtbl.t;
    (* jcc targets that must verify the set<cc> pair on entry *)
}

let emit ctx i = ctx.out <- i :: ctx.out

let emit_all ctx is = List.iter (emit ctx) is

(* The YMM- (or ZMM-) wide comparison of collected duplicates against
   originals.  Unfilled slots hold stale-but-equal pairs from earlier
   batches (or the all-zero initial state), so a partial flush compares
   equal lanes and never false-fires. *)
let flush_batch ctx =
  match ctx.simd with
  | Some b when ctx.batch_count > 0 ->
    ctx.stats.flushes <- ctx.stats.flushes + 1;
    ctx.batch_count <- 0;
    let gather side =
      Instr.instrumentation (Instr.Vinserti128 (1, side.(1), side.(0), side.(0)))
      ::
      (if b.capacity = 8 then
         [ Instr.instrumentation
             (Instr.Vinserti128 (1, side.(3), side.(2), side.(2)));
           Instr.instrumentation
             (Instr.Vinserti64x4 (1, side.(2), side.(0), side.(0))) ]
       else [])
    in
    emit_all ctx (gather b.xa);
    emit_all ctx (gather b.xb);
    if b.capacity = 8 then
      emit_all ctx
        [ Instr.check (Instr.Vpxorq512 (b.xb.(0), b.xa.(0), b.xa.(0)));
          Instr.check (Instr.Vptestmq512 (b.xa.(0), b.xa.(0)));
          Instr.check (Instr.Jcc (Cond.NE, exit_l)) ]
    else
      emit_all ctx
        [ Instr.check (Instr.Vpxor (b.xb.(0), b.xa.(0), b.xa.(0)));
          Instr.check (Instr.Vptest (b.xa.(0), b.xa.(0)));
          Instr.check (Instr.Jcc (Cond.NE, exit_l)) ]
  | _ -> ()

(* SIMD-ENABLED (paper §III-B1): a 64-bit move with a register
   destination whose source is not the destination itself, excluding
   the stack registers (whose corruption must be caught before any
   further stack traffic, hence immediate GENERAL protection). *)
let simd_enabled ctx (i : Instr.t) =
  match (ctx.simd, i) with
  | Some _, Instr.Mov (Reg.Q, src, Instr.Reg d) -> (
    (not (Reg.equal_gpr d Reg.RSP))
    && (not (Reg.equal_gpr d Reg.RBP))
    &&
    match src with
    | Instr.Reg s -> not (Reg.equal_gpr s d)
    | Instr.Mem _ -> true
    | Instr.Imm _ -> false)
  | _ -> false

let psrc_of_operand = function
  | Instr.Reg r -> Instr.Psrc_reg r
  | Instr.Mem m -> Instr.Psrc_mem m
  | Instr.Imm _ -> assert false

(* Deposit one 64-bit value into the next free lane of the duplicate
   (dup = true) or original collection registers. *)
let deposit ctx ~prov ~dup (src : Instr.operand) =
  let b = match ctx.simd with Some b -> b | None -> assert false in
  let k = ctx.batch_count in
  let x = (if dup then b.xa else b.xb).(k / 2) in
  let op =
    if k mod 2 = 0 then Instr.MovQ_to_xmm (src, x)
    else Instr.Pinsrq (1, psrc_of_operand src, x)
  in
  emit ctx Instr.{ op; prov }

let advance_batch ctx =
  ctx.batch_count <- ctx.batch_count + 1;
  match ctx.simd with
  | Some b when ctx.batch_count = b.capacity -> flush_batch ctx
  | _ -> ()

(* Duplicate a SIMD-ENABLED move into the current batch slot: the
   duplicate re-executes straight into a lane, the original's result is
   copied into the partner lane (paper Fig. 6). *)
let batch_simd ctx (ins : Instr.ins) =
  let src, d =
    match ins.op with
    | Instr.Mov (Reg.Q, src, Instr.Reg d) -> (src, d)
    | _ -> assert false
  in
  deposit ctx ~prov:Instr.Dup ~dup:true src;
  emit ctx ins;
  deposit ctx ~prov:Instr.Instrumentation ~dup:false (Instr.Reg d);
  ctx.stats.simd_batched <- ctx.stats.simd_batched + 1;
  advance_batch ctx

(* Batch an owed (original, duplicate) register comparison: both results
   are shifted into partner lanes and checked at the next flush.  Only
   sound at 32/64-bit widths (zero-extended writes make the full 64-bit
   lanes comparable); byte-wide results are checked immediately. *)
let batch_owed_check ctx (c : Asm_protect.owed_check) =
  deposit ctx ~prov:Instr.Instrumentation ~dup:true c.dup;
  deposit ctx ~prov:Instr.Instrumentation ~dup:false (Instr.Reg c.orig);
  advance_batch ctx

let owed_check_batchable ctx (c : Asm_protect.owed_check) =
  ctx.simd <> None
  && (match c.width with Reg.D | Reg.Q -> true | Reg.B | Reg.W -> false)
  && (match c.dup with Instr.Imm _ -> false | _ -> true)
  && (not (Reg.equal_gpr c.orig Reg.RSP))
  && not (Reg.equal_gpr c.orig Reg.RBP)

(* ------------------------------------------------------------------ *)
(* GENERAL-INSTRUCTIONS, with requisition fallback (paper Fig. 7).     *)
(* ------------------------------------------------------------------ *)

(* Registers safe to requisition around one instruction: not mentioned
   by it, not the reserved pair, not RSP/RBP. *)
let requisition_candidates ctx (i : Instr.t) =
  let mentioned = Instr.gprs_mentioned i in
  let blocked =
    (match ctx.pair with Some (a, b) -> [ a; b ] | None -> [])
    @ Reg.[ RSP; RBP ]
    @ mentioned
  in
  List.filter (fun r -> not (List.mem r blocked)) Spare.preference

(* Emit Fig. 4 duplication; comparisons go through the SIMD batch when
   sound, and fall back to an immediate cmp+jne otherwise. *)
let emit_protected ctx ~spares ins =
  let seq, owed = Asm_protect.protect_parts ~spares ins in
  emit_all ctx seq;
  List.iter
    (fun (c : Asm_protect.owed_check) ->
      if owed_check_batchable ctx c then batch_owed_check ctx c
      else
        emit_all ctx (Asm_protect.checker c.width ~orig:c.orig ~dup:c.dup))
    owed

let protect_general ctx ?(pool = ctx.general_pool) (ins : Instr.ins) =
  let needed = Asm_protect.spares_needed ins.op in
  let usable =
    List.filter
      (fun s -> not (List.mem s (Instr.gprs_mentioned ins.op)))
      pool
  in
  if List.length usable >= needed then begin
    emit_protected ctx ~spares:usable ins;
    ctx.stats.general_protected <- ctx.stats.general_protected + 1
  end
  else begin
    (* Liveness-directed reuse (paper §III-B2): registers provably dead
       at this point can be clobbered outright, no push/pop needed. *)
    let dead_pool =
      match ctx.liveness with
      | Some lv when ctx.cfg.use_liveness ->
        List.filter
          (fun r ->
            (not (List.mem r (Instr.gprs_mentioned ins.op)))
            && (match ctx.pair with
               | Some (a, b) -> not (Reg.equal_gpr r a || Reg.equal_gpr r b)
               | None -> true))
          (Liveness.dead_regs_at lv ~label:ctx.cur_label ~k:ctx.cur_index)
      | _ -> []
    in
    if List.length dead_pool >= needed then begin
      emit_protected ctx ~spares:dead_pool ins;
      ctx.stats.general_protected <- ctx.stats.general_protected + 1
    end
    else
    (* Requisition registers for just this instruction.  Anything that
       reads or moves RSP is exempt: the wrapping push/pop displaces the
       stack pointer (a pop's peek would read the saved register, and a
       [subq $N, %rsp] would strand the requisition slot below the new
       top, so the closing pop would reload garbage). *)
    match ins.op with
    | op when List.mem Reg.RSP (Instr.gprs_mentioned op) ->
      ctx.stats.unprotected <- ctx.stats.unprotected + 1;
      emit ctx ins
    | _ -> (
      let cands = requisition_candidates ctx ins.op in
      if List.length cands < needed then begin
        ctx.stats.unprotected <- ctx.stats.unprotected + 1;
        emit ctx ins
      end
      else
        let taken = List.filteri (fun i _ -> i < needed) cands in
        List.iter
          (fun r -> emit ctx (Instr.instrumentation (Instr.Push (Instr.Reg r))))
          taken;
        (* requisitioned spares must be restored before the next flush
           could fire, so their comparisons are always immediate *)
        let seq, owed = Asm_protect.protect_parts ~spares:taken ins in
        emit_all ctx seq;
        List.iter
          (fun (c : Asm_protect.owed_check) ->
            emit_all ctx (Asm_protect.checker c.width ~orig:c.orig ~dup:c.dup))
          owed;
        List.iter
          (fun r -> emit ctx (Instr.instrumentation (Instr.Pop r)))
          (List.rev taken);
        ctx.stats.general_protected <- ctx.stats.general_protected + 1;
        ctx.stats.requisitioned_blocks <- ctx.stats.requisitioned_blocks + 1)
  end

(* ------------------------------------------------------------------ *)
(* Comparison protection (paper §III-B2, Fig. 5).                      *)
(* ------------------------------------------------------------------ *)

let pair_check ctx =
  match ctx.pair with
  | Some (pa, pb) ->
    [ Instr.check (Instr.Cmp (Reg.B, Instr.Reg pb, Instr.Reg pa));
      Instr.check (Instr.Jcc (Cond.NE, exit_l)) ]
  | None -> []

(* cmp/test followed by jcc: capture the branch's condition from both
   the original and a re-executed compare into the reserved pair, then
   verify the pair on the fall-through path and at the jump target
   (deferred detection). *)
let protect_cmp_jcc ctx (cmp_ins : Instr.ins) cc target (jcc_ins : Instr.ins) =
  ctx.stats.comparisons_protected <- ctx.stats.comparisons_protected + 1;
  match ctx.pair with
  | Some (pa, pb) ->
    emit ctx cmp_ins;
    emit ctx (Instr.instrumentation (Instr.Set (cc, Instr.Reg pa)));
    emit ctx (Instr.dup cmp_ins.op);
    emit ctx (Instr.dup (Instr.Set (cc, Instr.Reg pb)));
    emit ctx jcc_ins;
    (* fall-through verification *)
    emit_all ctx (pair_check ctx);
    (* jump-target verification, inserted after the walk *)
    Hashtbl.replace ctx.entry_checks target ()
  | None ->
    (* No function-wide pair: immediate detection with requisitioned
       registers, re-materialising the flags for the branch. *)
    let cands = requisition_candidates ctx cmp_ins.op in
    (match cands with
    | sa :: sb :: _ ->
      emit ctx cmp_ins;
      emit ctx (Instr.instrumentation (Instr.Push (Instr.Reg sa)));
      emit ctx (Instr.instrumentation (Instr.Push (Instr.Reg sb)));
      emit ctx (Instr.instrumentation (Instr.Set (cc, Instr.Reg sa)));
      emit ctx (Instr.dup cmp_ins.op);
      emit ctx (Instr.dup (Instr.Set (cc, Instr.Reg sb)));
      emit ctx (Instr.check (Instr.Cmp (Reg.B, Instr.Reg sb, Instr.Reg sa)));
      emit ctx (Instr.check (Instr.Jcc (Cond.NE, exit_l)));
      emit ctx (Instr.instrumentation (Instr.Pop sb));
      emit ctx (Instr.instrumentation (Instr.Pop sa));
      emit ctx (Instr.instrumentation cmp_ins.op);
      emit ctx jcc_ins
    | _ ->
      ctx.stats.unprotected <- ctx.stats.unprotected + 1;
      emit ctx cmp_ins;
      emit ctx jcc_ins)

(* cmp followed by set<cc>: verify the flags by re-executing the compare
   and the setcc destination against the captured condition. *)
let protect_cmp_set ctx (cmp_ins : Instr.ins) cc dst (set_ins : Instr.ins) =
  ctx.stats.comparisons_protected <- ctx.stats.comparisons_protected + 1;
  (* the duplicate compare must run before the original set<cc>: the
     setcc destination (e.g. %al) is typically an operand of the compare
     and would corrupt the re-execution *)
  let with_pair pa pb restore =
    emit ctx cmp_ins;
    emit ctx (Instr.instrumentation (Instr.Set (cc, Instr.Reg pa)));
    emit ctx (Instr.dup cmp_ins.op);
    emit ctx (Instr.dup (Instr.Set (cc, Instr.Reg pb)));
    emit ctx set_ins;
    emit ctx (Instr.check (Instr.Cmp (Reg.B, Instr.Reg pb, Instr.Reg pa)));
    emit ctx (Instr.check (Instr.Jcc (Cond.NE, exit_l)));
    (match dst with
    | Instr.Reg d ->
      emit ctx (Instr.check (Instr.Cmp (Reg.B, Instr.Reg pa, Instr.Reg d)));
      emit ctx (Instr.check (Instr.Jcc (Cond.NE, exit_l)))
    | _ -> ());
    restore ()
  in
  match ctx.pair with
  | Some (pa, pb) -> with_pair pa pb (fun () -> ())
  | None -> (
    let cands =
      List.filter
        (fun r ->
          not
            (List.mem r
               (Instr.gprs_mentioned cmp_ins.op
               @ Instr.gprs_mentioned set_ins.op)))
        (requisition_candidates ctx cmp_ins.op)
    in
    match cands with
    | sa :: sb :: _ ->
      emit ctx (Instr.instrumentation (Instr.Push (Instr.Reg sa)));
      emit ctx (Instr.instrumentation (Instr.Push (Instr.Reg sb)));
      with_pair sa sb (fun () ->
          emit ctx (Instr.instrumentation (Instr.Pop sb));
          emit ctx (Instr.instrumentation (Instr.Pop sa)))
    | _ ->
      ctx.stats.unprotected <- ctx.stats.unprotected + 1;
      emit ctx cmp_ins;
      emit ctx set_ins)

(* ------------------------------------------------------------------ *)
(* Block walk.                                                         *)
(* ------------------------------------------------------------------ *)

let is_cmp_like = function Instr.Cmp _ | Instr.Test _ -> true | _ -> false

let walk_block ctx (b : Prog.block) =
  ctx.out <- [];
  ctx.batch_count <- 0;
  ctx.cur_label <- b.label;
  let selected i =
    match ctx.cfg.select with None -> true | Some f -> f b.label i
  in
  let body = Array.of_list b.insns in
  let n = Array.length body in
  let rec go i =
    ctx.cur_index <- i;
    if i >= n then ()
    else
      let ins = body.(i) in
      match ins.op with
      | op when is_cmp_like op && i + 1 < n && not (selected i) ->
        (* deselected compare: leave it and its consumer alone *)
        flush_batch ctx;
        emit ctx ins;
        (match body.(i + 1).op with
        | Instr.Jcc _ | Instr.Set _ ->
          emit ctx body.(i + 1);
          go (i + 2)
        | _ -> go (i + 1))
      | op when is_cmp_like op && i + 1 < n -> (
        flush_batch ctx;
        match body.(i + 1).op with
        | Instr.Jcc (cc, target) when not (String.equal target exit_l) ->
          protect_cmp_jcc ctx ins cc target body.(i + 1);
          go (i + 2)
        | Instr.Set (cc, dst) ->
          protect_cmp_set ctx ins cc dst body.(i + 1);
          go (i + 2)
        | _ ->
          (* flags unread before redefinition: faults are benign *)
          emit ctx ins;
          go (i + 1))
      | op when is_cmp_like op ->
        flush_batch ctx;
        emit ctx ins;
        go (i + 1)
      | Instr.Jmp _ | Instr.Ret ->
        flush_batch ctx;
        emit ctx ins;
        go (i + 1)
      | Instr.Call _ ->
        flush_batch ctx;
        emit ctx ins;
        (* the callee's own protection dirties the set<cc> pair of this
           function; restore the equal-unless-faulty invariant *)
        (match ctx.pair with
        | Some (pa, pb) ->
          emit ctx
            (Instr.instrumentation (Instr.Mov (Reg.B, Instr.Reg pa, Instr.Reg pb)))
        | None -> ());
        go (i + 1)
      | Instr.Jcc _ ->
        (* a jcc not consumed by the cmp lookahead: its compare was not
           recognised; keep it unprotected but flush first *)
        flush_batch ctx;
        ctx.stats.unprotected <- ctx.stats.unprotected + 1;
        emit ctx ins;
        go (i + 1)
      | op when (simd_enabled ctx op || Asm_protect.protectable op)
                && not (selected i) ->
        emit ctx ins;
        go (i + 1)
      | op when simd_enabled ctx op ->
        batch_simd ctx ins;
        go (i + 1)
      | op when Asm_protect.protectable op ->
        protect_general ctx ins;
        go (i + 1)
      | _ ->
        (* stores, pushes: no injectable destination *)
        emit ctx ins;
        go (i + 1)
  in
  go 0;
  flush_batch ctx;
  Prog.block b.label (List.rev ctx.out)

(* ------------------------------------------------------------------ *)
(* Function / program entry points.                                    *)
(* ------------------------------------------------------------------ *)

let protect_func cfg stats (f : Prog.func) : Prog.func =
  let sp = Spare.analyze_func f in
  let spare_gprs = cap cfg.max_spare_gprs sp.Spare.spare_gprs in
  let spare_simd = cap cfg.max_spare_simd sp.Spare.spare_simd in
  let pair, general_pool =
    match spare_gprs with
    | a :: b :: rest -> (Some (a, b), rest)
    | rest -> (None, rest)
  in
  let simd =
    if not cfg.use_simd then None
    else
      let want = if cfg.use_zmm then 8 else 4 in
      if List.length spare_simd >= want then begin
        let regs = Array.of_list (cap (Some want) spare_simd) in
        let half = want / 2 in
        Some
          {
            xa = Array.init half (fun i -> regs.(i));
            xb = Array.init half (fun i -> regs.(half + i));
            capacity = want;
          }
      end
      else if List.length spare_simd >= 4 then begin
        let regs = Array.of_list (cap (Some 4) spare_simd) in
        Some
          { xa = [| regs.(0); regs.(1) |]; xb = [| regs.(2); regs.(3) |];
            capacity = 4 }
      end
      else None
  in
  let liveness =
    if cfg.use_liveness then Some (Liveness.analyze f) else None
  in
  let ctx =
    {
      cfg;
      stats;
      pair;
      general_pool;
      simd;
      liveness;
      cur_label = "";
      cur_index = 0;
      batch_count = 0;
      out = [];
      entry_checks = Hashtbl.create 16;
    }
  in
  let blocks = List.map (walk_block ctx) f.blocks in
  (* insert deferred pair verification at every protected jcc target *)
  let blocks =
    List.map
      (fun (b : Prog.block) ->
        if Hashtbl.mem ctx.entry_checks b.label then
          Prog.block b.label (pair_check ctx @ b.insns)
        else b)
      blocks
  in
  (* the post-call pair re-equalisation only matters when some block
     verifies the pair on entry; drop it otherwise (e.g. fully
     deselected functions) *)
  let blocks =
    if Hashtbl.length ctx.entry_checks > 0 then blocks
    else
      let is_equalise (i : Instr.ins) =
        match (ctx.pair, i.prov, i.op) with
        | Some (pa, pb), Instr.Instrumentation,
          Instr.Mov (Reg.B, Instr.Reg a, Instr.Reg b) ->
          Reg.equal_gpr a pa && Reg.equal_gpr b pb
        | _ -> false
      in
      List.map
        (fun (b : Prog.block) ->
          Prog.block b.label (List.filter (fun i -> not (is_equalise i)) b.insns))
        blocks
  in
  Prog.func f.fname blocks

(* Apply FERRUM to a whole program, returning the protected program and
   transform statistics. *)
let protect ?(config = default_config) (p : Prog.t) : Prog.t * stats =
  let stats = fresh_stats () in
  let p' = Prog.map_funcs (protect_func config stats) p in
  Prog.validate p';
  (p', stats)
