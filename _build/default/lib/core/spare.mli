(** Spare-register discovery (paper §III-B1).

    FERRUM scans every instruction of a function and records which
    general-purpose and SIMD registers the program uses; the complement
    — minus RSP/RBP always, and minus the calling-convention registers
    when the function makes calls — is available for duplication. *)

open Ferrum_asm

module GSet : Set.S with type elt = Reg.gpr
module ISet : Set.S with type elt = int

type t = {
  used_gprs : GSet.t;
  spare_gprs : Reg.gpr list;  (** stable, preference-ordered *)
  used_simd : ISet.t;
  spare_simd : int list;
}

(** Registers a call may carry live values in. *)
val call_clobbered : Reg.gpr list

(** RSP and RBP, never spare. *)
val never_spare : Reg.gpr list

(** Preference order for spares, mirroring the paper's examples (R10 for
    duplication, R11/R12 for the flag pair). *)
val preference : Reg.gpr list

val analyze_func : Prog.func -> t

(** Registers unused inside one basic block: candidates for temporary
    requisition via push/pop (paper Fig. 7). *)
val block_unused : Prog.block -> Reg.gpr list

(** Paper thresholds: spares needed for GENERAL protection, the
    comparison pair, and SIMD batching respectively. *)
val general_needed : int

val pair_needed : int
val simd_needed : int
