(* IR-LEVEL-EDDI (paper §II-C, Fig. 2; first baseline of §IV-A1).

   Classic EDDI in the SWIFT lineage: every duplicable IR instruction
   (load, binop, icmp, gep, cast) gets a shadow copy computing over
   shadow operands, and the original is compared against the shadow at
   synchronisation points — stores (value and address), conditional
   branches (condition value), calls (arguments) and returns — with a
   mismatch transferring control to a detector block.

   Memory is not duplicated (the fault model assumes ECC), so shadow
   loads re-read the same location.  Faults that land in instructions the
   backend introduces later (operand reloads, branch-condition
   materialisation, store/call data movement) are invisible to this pass;
   that is precisely the coverage gap the paper measures. *)

open Ferrum_ir

let detect_builtin = "__ferrum_detect"

(* Provenance bookkeeping: which vregs are shadows (duplicates) and
   which are checker comparisons, per function; consumed by the backend
   oracle so lowered assembly carries the right tags. *)
type prov_tables = {
  shadows : (string * int, unit) Hashtbl.t; (* (fname, vreg) *)
  checks : (string * int, unit) Hashtbl.t;
  detect_labels : (string, unit) Hashtbl.t;
}

let fresh_tables () =
  {
    shadows = Hashtbl.create 256;
    checks = Hashtbl.create 128;
    detect_labels = Hashtbl.create 8;
  }

let oracle_of_tables (tb : prov_tables) : Ferrum_backend.Backend.prov_oracle =
  let open Ferrum_asm in
  {
    Ferrum_backend.Backend.instr_prov =
      (fun ~fname i ->
        match Ir.def i with
        | Some d when Hashtbl.mem tb.shadows (fname, d) -> Instr.Dup
        | Some d when Hashtbl.mem tb.checks (fname, d) -> Instr.Check
        | _ -> Instr.Original);
    term_prov =
      (fun ~fname ~label:_ t ->
        match t with
        | Ir.Br { cond = Ir.Vreg c; _ } when Hashtbl.mem tb.checks (fname, c)
          -> Instr.Check
        | _ -> Instr.Original);
    block_prov =
      (fun ~fname:_ ~label ->
        if Hashtbl.mem tb.detect_labels label then Some Instr.Check else None);
  }

type state = {
  mutable next_vreg : int;
  mutable next_label : int;
  shadow : (int, int) Hashtbl.t;
  tables : prov_tables;
  fname : string;
  detect_label : string;
  (* block assembly state *)
  mutable finished : Ir.block list; (* reverse *)
  mutable cur_label : string;
  mutable cur_body : Ir.instr list; (* reverse *)
}

let fresh_vreg st =
  let v = st.next_vreg in
  st.next_vreg <- v + 1;
  v

let fresh_label st =
  let n = st.next_label in
  st.next_label <- n + 1;
  Printf.sprintf "%s_eddichk%d" st.fname n

let max_vreg (f : Ir.func) =
  List.fold_left
    (fun acc (b : Ir.block) ->
      List.fold_left
        (fun acc i -> match Ir.def i with Some d -> max acc d | None -> acc)
        acc b.body)
    (List.fold_left (fun acc (r, _) -> max acc r) (-1) f.params)
    f.blocks

let shadow_value st = function
  | Ir.Vreg r as v -> (
    match Hashtbl.find_opt st.shadow r with
    | Some s -> Ir.Vreg s
    | None -> v)
  | v -> v

let emit st i = st.cur_body <- i :: st.cur_body

let finish_block st term =
  st.finished <-
    Ir.{ label = st.cur_label; body = List.rev st.cur_body; term }
    :: st.finished;
  st.cur_body <- []

(* Compare [v] against its shadow (if any) and detect on mismatch; cuts
   the current block. *)
let check_value st ty v =
  match v with
  | Ir.Vreg r when Hashtbl.mem st.shadow r ->
    let m = fresh_vreg st in
    Hashtbl.replace st.tables.checks (st.fname, m) ();
    emit st
      (Ir.Icmp { dst = m; pred = Ir.Ne; ty; a = v; b = shadow_value st v });
    let cont = fresh_label st in
    finish_block st
      (Ir.Br { cond = Ir.Vreg m; ifso = st.detect_label; ifnot = cont });
    st.cur_label <- cont
  | _ -> ()

let register_shadow st dst s =
  Hashtbl.replace st.shadow dst s;
  Hashtbl.replace st.tables.shadows (st.fname, s) ()

(* Type of a value for checking purposes; looked up from a per-function
   type table prepared before rewriting. *)
let duplicate_instr st types i =
  match i with
  | Ir.Load { dst; ty; ptr } ->
    let s = fresh_vreg st in
    register_shadow st dst s;
    emit st i;
    emit st (Ir.Load { dst = s; ty; ptr = shadow_value st ptr })
  | Ir.Binop { dst; op; ty; a; b } ->
    let s = fresh_vreg st in
    register_shadow st dst s;
    emit st i;
    emit st
      (Ir.Binop
         { dst = s; op; ty; a = shadow_value st a; b = shadow_value st b })
  | Ir.Icmp { dst; pred; ty; a; b } ->
    let s = fresh_vreg st in
    register_shadow st dst s;
    emit st i;
    emit st
      (Ir.Icmp
         { dst = s; pred; ty; a = shadow_value st a; b = shadow_value st b })
  | Ir.Gep { dst; base; index; scale } ->
    let s = fresh_vreg st in
    register_shadow st dst s;
    emit st i;
    emit st
      (Ir.Gep
         { dst = s; base = shadow_value st base;
           index = shadow_value st index; scale })
  | Ir.Cast { dst; kind; v } ->
    let s = fresh_vreg st in
    register_shadow st dst s;
    emit st i;
    emit st (Ir.Cast { dst = s; kind; v = shadow_value st v })
  | Ir.Store { ty; v; ptr } ->
    check_value st ty v;
    check_value st Ir.Ptr ptr;
    emit st i
  | Ir.Call { args; _ } ->
    List.iter (fun a -> check_value st (types a) a) args;
    emit st i
  | Ir.Alloca _ -> emit st i

let value_type_table (f : Ir.func) =
  let types : (int, Ir.ty) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (r, t) -> Hashtbl.replace types r t) f.params;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match (Ir.def i, i) with
          | Some d, Ir.Load { ty; _ } -> Hashtbl.replace types d ty
          | Some d, Ir.Binop { ty; _ } -> Hashtbl.replace types d ty
          | Some d, Ir.Icmp _ -> Hashtbl.replace types d Ir.I1
          | Some d, (Ir.Alloca _ | Ir.Gep _) -> Hashtbl.replace types d Ir.Ptr
          | Some d, Ir.Cast { kind = Ir.Trunc_i64_i32; _ } ->
            Hashtbl.replace types d Ir.I32
          | Some d, Ir.Cast _ -> Hashtbl.replace types d Ir.I64
          | Some d, Ir.Call _ -> Hashtbl.replace types d Ir.I64
          | _ -> ())
        b.body)
    f.blocks;
  fun (v : Ir.value) ->
    match v with
    | Ir.Vreg r -> (
      match Hashtbl.find_opt types r with Some t -> t | None -> Ir.I64)
    | Ir.Const (t, _) -> t
    | Ir.Global _ -> Ir.Ptr

let protect_func tables (f : Ir.func) : Ir.func =
  let st =
    {
      next_vreg = max_vreg f + 1;
      next_label = 0;
      shadow = Hashtbl.create 64;
      tables;
      fname = f.name;
      detect_label = f.name ^ "_eddi_detect";
      finished = [];
      cur_label = "";
      cur_body = [];
    }
  in
  Hashtbl.replace tables.detect_labels st.detect_label ();
  let types = value_type_table f in
  List.iter
    (fun (b : Ir.block) ->
      st.cur_label <- b.label;
      st.cur_body <- [];
      List.iter (duplicate_instr st types) b.body;
      (match b.term with
      | Ir.Br { cond; _ } -> check_value st Ir.I1 cond
      | Ir.Ret (Some v) -> check_value st (types v) v
      | Ir.Ret None | Ir.Jmp _ -> ());
      finish_block st b.term)
    f.blocks;
  let detect_block =
    Ir.
      {
        label = st.detect_label;
        body = [ Ir.Call { dst = None; callee = detect_builtin; args = [] } ];
        term = Ir.Jmp st.detect_label;
      }
  in
  { f with blocks = List.rev st.finished @ [ detect_block ] }

(* Apply IR-level EDDI to every function of a module.  Returns the
   protected module and a backend oracle that tags the lowered shadow
   and checker code with its provenance. *)
let protect (m : Ir.modul) : Ir.modul * Ferrum_backend.Backend.prov_oracle =
  let tables = fresh_tables () in
  let m' = { m with funcs = List.map (protect_func tables) m.funcs } in
  Verify.run m';
  (m', oracle_of_tables tables)
