(** FERRUM (paper §III): assembly-level EDDI boosted with SIMD-batched
    checking and compiler-level transformations.

    Per function: spare-register discovery ({!Spare}); instruction
    annotation — 64-bit moves whose source differs from the destination
    are SIMD-ENABLED and duplicate straight into spare XMM lanes, four
    (or, with {!val-zmm_config}, eight) results checked at once through
    YMM/ZMM (paper Fig. 6); everything else with a GPR destination gets
    the Fig. 4 GENERAL scheme with its comparison funnelled through the
    same batch; comparisons get deferred detection via a re-executed
    compare and a set<cc> pair verified on both outgoing paths (Fig. 5);
    and when spares run out, registers are requisitioned around single
    instructions by push/pop (Fig. 7).

    Batches are flushed before anything that could consume a corrupted
    value for control flow or output — compares, jumps, calls, returns —
    and whenever the slots fill up, so every original write is compared
    against its duplicate before the program can act on it. *)

open Ferrum_asm

type config = {
  use_simd : bool;  (** E6 ablation: disable the SIMD path entirely *)
  use_zmm : bool;  (** E10: eight results per batch through ZMM *)
  use_liveness : bool;
      (** under register pressure, clobber registers {!Liveness} proves
          dead instead of push/pop requisition (paper §III-B2) *)
  select : (string -> int -> bool) option;
      (** selective protection (E12, SDCTune-style): protect only the
          original instruction at (block label, index) when the
          predicate holds; [None] protects everything *)
  max_spare_gprs : int option;  (** E7 ablation: simulated pressure *)
  max_spare_simd : int option;
}

val default_config : config

(** {!default_config} with [use_zmm = true]. *)
val zmm_config : config

type stats = {
  mutable simd_batched : int;  (** SIMD-ENABLED instructions protected *)
  mutable flushes : int;
  mutable general_protected : int;
  mutable comparisons_protected : int;
  mutable requisitioned_blocks : int;  (** requisition events *)
  mutable unprotected : int;
      (** instructions left without duplication; non-zero only under
          forced register pressure (RSP writers cannot be
          requisition-wrapped, see DESIGN.md E7) *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Protect a compiled program; the result is re-validated. *)
val protect : ?config:config -> Prog.t -> Prog.t * stats
