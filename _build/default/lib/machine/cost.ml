(* Parametric cycle-cost model.

   The paper (§IV-B2) measures wall-clock runtime on an Intel Xeon; our
   substrate is a simulator, so runtime is replaced by a per-instruction
   cycle model.  Two well-known microarchitectural effects matter for the
   relative overheads the paper reports and are modelled explicitly:

   - instructions added by duplication carry no data dependence on the
     original stream, so a superscalar core executes most of them in
     otherwise-idle issue slots (the classic EDDI observation, Oh et
     al. 2002).  We charge provenance [Dup] and [Instrumentation]
     instructions [dup_overlap] (a fraction in [0;1]) of their base cost;
   - checker branches ([Check]-provenance conditional jumps) are
     never taken in fault-free runs and predict perfectly, but still
     consume fetch/issue bandwidth; they are charged [check_branch].

   All parameters are plain record fields so ablation benches can sweep
   them; the defaults are documented in EXPERIMENTS.md. *)

type model = {
  alu : float;
  load : float;
  store : float;
  branch : float; (* program's own control flow *)
  check_branch : float; (* never-taken checker jcc *)
  setcc : float;
  call : float;
  div : float;
  simd_mov : float; (* movq gpr<->xmm, pinsrq/pextrq reg form *)
  simd_load : float; (* SIMD ops reading memory *)
  simd_op : float; (* vinserti128 / vpxor *)
  vptest : float;
  dup_overlap : float; (* cost multiplier for Dup/Instrumentation *)
  simd_overlap : float; (* multiplier for SIMD-class protection ops *)
}

let default =
  {
    alu = 1.0;
    load = 3.0;
    store = 3.0;
    branch = 2.0;
    check_branch = 1.0;
    setcc = 1.0;
    call = 4.0;
    div = 24.0;
    simd_mov = 1.0;
    simd_load = 3.0;
    simd_op = 1.0;
    vptest = 1.5;
    dup_overlap = 0.45;
    simd_overlap = 0.08;
  }

(* A model with no overlap effects: every instruction costs its full
   base price regardless of provenance.  Used by the ablation bench to
   show how much of FERRUM's advantage comes from ILP assumptions. *)
let no_overlap =
  { default with dup_overlap = 1.0; simd_overlap = 1.0;
    check_branch = default.branch }

open Ferrum_asm

(* SIMD-class instructions execute on the vector ports, which the
   integer-only programs we protect leave idle (the under-utilisation
   FERRUM exploits, paper SIII); their protection-mode discount is
   therefore deeper than the scalar one. *)
let is_simd_class (i : Instr.t) =
  match i with
  | Instr.MovQ_to_xmm _ | Instr.MovQ_from_xmm _ | Instr.Pinsrq _
  | Instr.Pextrq _ | Instr.Vinserti128 _ | Instr.Vpxor _ | Instr.Vptest _
  | Instr.Vinserti64x4 _ | Instr.Vpxorq512 _ | Instr.Vptestmq512 _ -> true
  | _ -> false

let base_cost m (i : Instr.t) =
  match i with
  | Instr.Vptest _ | Instr.Vptestmq512 _ -> m.vptest
  | Instr.Vinserti128 _ | Instr.Vpxor _ | Instr.Vinserti64x4 _
  | Instr.Vpxorq512 _ -> m.simd_op
  | Instr.MovQ_to_xmm (o, _) ->
    if Instr.is_mem_operand o then m.simd_load else m.simd_mov
  | Instr.Pinsrq (_, Instr.Psrc_mem _, _) -> m.simd_load
  | Instr.Pinsrq (_, Instr.Psrc_reg _, _) | Instr.Pextrq _
  | Instr.MovQ_from_xmm _ -> m.simd_mov
  | _ -> (
    match Instr.klass i with
    | Instr.K_alu -> m.alu
    | Instr.K_load -> m.load
    | Instr.K_store -> m.store
    | Instr.K_branch -> m.branch
    | Instr.K_call -> m.call
    | Instr.K_div -> m.div
    | Instr.K_setcc -> m.setcc
    | Instr.K_simd -> m.simd_mov)

(* Cost of one instruction given its provenance.  All protection code
   (duplicates, checks, instrumentation) receives the overlap discount —
   it is data-independent of the original stream — except checker
   branches, which are charged the flat never-taken price. *)
let cost m (ins : Instr.ins) =
  let overlap op =
    if is_simd_class op then m.simd_overlap else m.dup_overlap
  in
  match ins.prov with
  | Instr.Check -> (
    match ins.op with
    | Instr.Jcc _ -> m.check_branch
    | op -> base_cost m op *. overlap op)
  | Instr.Dup | Instr.Instrumentation ->
    base_cost m ins.op *. overlap ins.op
  | Instr.Original -> base_cost m ins.op
