lib/machine/machine.mli: Bytes Cond Cost Ferrum_asm Format Instr Prog Reg
