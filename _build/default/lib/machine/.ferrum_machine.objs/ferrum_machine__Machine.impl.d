lib/machine/machine.ml: Array Bytes Char Cond Cost Ferrum_asm Fmt Hashtbl Instr Int64 List Prog Reg String
