lib/machine/cost.ml: Ferrum_asm Instr
