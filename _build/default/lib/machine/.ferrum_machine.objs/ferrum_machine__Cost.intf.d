lib/machine/cost.mli: Ferrum_asm
