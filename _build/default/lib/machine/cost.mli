(** Parametric cycle-cost model.

    The paper (§IV-B2) measures wall-clock runtime on an Intel Xeon; our
    substrate is a simulator, so runtime is replaced by a per-instruction
    cycle model with two explicitly modelled microarchitectural effects:

    - instructions added by duplication carry no data dependence on the
      original stream, so a superscalar core executes most of them in
      otherwise-idle issue slots (the classic EDDI observation); they
      are charged [dup_overlap] of their base cost — and SIMD-class
      protection instructions, which run on the vector ports that the
      integer-only workloads leave idle (FERRUM's central claim), the
      deeper [simd_overlap];
    - checker branches are never taken in fault-free runs and predict
      perfectly, but still consume fetch/issue bandwidth: flat
      [check_branch].

    Defaults are calibrated against the paper's Fig. 11 and recorded in
    EXPERIMENTS.md; every field is sweepable by the ablation bench. *)

type model = {
  alu : float;
  load : float;
  store : float;
  branch : float;  (** the program's own control flow *)
  check_branch : float;  (** never-taken checker jcc *)
  setcc : float;
  call : float;
  div : float;
  simd_mov : float;  (** movq gpr<->xmm, pinsrq/pextrq register forms *)
  simd_load : float;  (** SIMD ops reading memory *)
  simd_op : float;  (** vinserti128/64x4, vpxor *)
  vptest : float;
  dup_overlap : float;  (** multiplier for scalar protection code *)
  simd_overlap : float;  (** multiplier for SIMD-class protection code *)
}

(** The calibrated default model. *)
val default : model

(** No overlap effects: protection code costs full price.  Used by the
    ablation bench to show how much of FERRUM's advantage comes from the
    ILP assumptions. *)
val no_overlap : model

(** True for the SSE/AVX/AVX-512 instructions of the subset. *)
val is_simd_class : Ferrum_asm.Instr.t -> bool

(** Base price of an instruction, before provenance discounts. *)
val base_cost : model -> Ferrum_asm.Instr.t -> float

(** Price of one instruction given its provenance. *)
val cost : model -> Ferrum_asm.Instr.ins -> float
