(** Hand-written lexer for C-lite: decimal and 0x literals, identifiers,
    keywords, //- and /*-comments.  Tokens carry their source line. *)

exception Error of string

val tokenize : string -> Token.spanned list
