(* Lowering from the C-lite AST to the mini-IR, through the builder.

   Conventions: every scalar is a 64-bit signed long living in an alloca
   slot; arrays are contiguous long[] areas (allocas when local, globals
   otherwise); array parameters pass the base address.  Comparisons and
   logical operators produce 0/1 longs; && and || short-circuit.
   Declarations follow C block scoping (shadowing allowed, no collision
   within one block; a for-header declaration scopes to the loop). *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type binding =
  | Scalar of Ir.value (* pointer to the 8-byte slot *)
  | Array_direct of Ir.value (* base address (local or global array) *)
  | Array_slot of Ir.value (* slot holding the base address (parameter) *)

type env = {
  mutable scopes : (string, binding) Hashtbl.t list; (* innermost first *)
  returns : (string, bool) Hashtbl.t; (* callee -> returns_value *)
  mutable loops : (string * string) list; (* (break_l, continue_l) stack *)
  fb : B.fb;
}

(* C block scoping: lookup walks outward; a declaration may shadow an
   outer binding but not collide within its own block. *)
let lookup env name =
  let rec go = function
    | [] -> error "undefined variable '%s'" name
    | scope :: outer -> (
      match Hashtbl.find_opt scope name with
      | Some b -> b
      | None -> go outer)
  in
  go env.scopes

let bind env name b =
  match env.scopes with
  | [] -> assert false
  | scope :: _ ->
    if Hashtbl.mem scope name then error "redefinition of '%s'" name;
    Hashtbl.replace scope name b

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let in_scope env f =
  push_scope env;
  let r = f () in
  pop_scope env;
  r

let array_base env name =
  match lookup env name with
  | Array_direct base -> base
  | Array_slot slot -> B.load env.fb Ir.Ptr slot
  | Scalar _ -> error "'%s' is not an array" name

(* 0/1 long from an i1. *)
let bool_to_long env c = B.cast env.fb Ir.Zext_i1_i64 c

(* i1 from a long: e != 0. *)
let truthy env v = B.icmp env.fb Ir.Ne v (B.i64 0)

let rec lower_expr env (e : Ast.expr) : Ir.value =
  let fb = env.fb in
  match e with
  | Ast.Int v -> B.i64' v
  | Ast.Var name -> (
    match lookup env name with
    | Scalar slot -> B.load fb Ir.I64 slot
    | Array_direct _ | Array_slot _ ->
      (* array name decays to its address (for passing to calls) *)
      array_base env name)
  | Ast.Index (name, idx) ->
    let base = array_base env name in
    B.load fb Ir.I64 (B.gep fb base (lower_expr env idx) ~scale:8)
  | Ast.Unop (Ast.Neg, e) -> B.sub fb (B.i64 0) (lower_expr env e)
  | Ast.Unop (Ast.BNot, e) -> B.xor fb (lower_expr env e) (B.i64' (-1L))
  | Ast.Unop (Ast.LNot, e) ->
    bool_to_long env (B.icmp fb Ir.Eq (lower_expr env e) (B.i64 0))
  | Ast.Binop (Ast.LAnd, a, b) -> lower_short_circuit env ~is_and:true a b
  | Ast.Binop (Ast.LOr, a, b) -> lower_short_circuit env ~is_and:false a b
  | Ast.Binop (op, a, b) -> (
    let va = lower_expr env a in
    let vb = lower_expr env b in
    let arith o = B.binop fb o Ir.I64 va vb in
    let compare p = bool_to_long env (B.icmp fb p va vb) in
    match op with
    | Ast.Add -> arith Ir.Add
    | Ast.Sub -> arith Ir.Sub
    | Ast.Mul -> arith Ir.Mul
    | Ast.Div -> arith Ir.Sdiv
    | Ast.Mod -> arith Ir.Srem
    | Ast.BAnd -> arith Ir.And
    | Ast.BOr -> arith Ir.Or
    | Ast.BXor -> arith Ir.Xor
    | Ast.Shl -> arith Ir.Shl
    | Ast.Shr -> arith Ir.Ashr (* C's >> on signed longs *)
    | Ast.Lt -> compare Ir.Slt
    | Ast.Le -> compare Ir.Sle
    | Ast.Gt -> compare Ir.Sgt
    | Ast.Ge -> compare Ir.Sge
    | Ast.Eq -> compare Ir.Eq
    | Ast.Ne -> compare Ir.Ne
    | Ast.LAnd | Ast.LOr -> assert false)
  | Ast.Call (callee, args) -> (
    match lower_call env callee args with
    | Some v -> v
    | None -> error "void function '%s' used as a value" callee)

(* && / || with C short-circuit semantics, through a result slot. *)
and lower_short_circuit env ~is_and a b =
  let fb = env.fb in
  let result = B.local_var fb (B.i64 (if is_and then 0 else 1)) in
  let eval_b = B.fresh_label fb "sc_rhs" in
  let done_l = B.fresh_label fb "sc_done" in
  let ca = truthy env (lower_expr env a) in
  if is_and then B.br fb ca ~ifso:eval_b ~ifnot:done_l
  else B.br fb ca ~ifso:done_l ~ifnot:eval_b;
  B.start_block fb eval_b;
  let cb = truthy env (lower_expr env b) in
  B.set fb result (bool_to_long env cb);
  B.jmp fb done_l;
  B.start_block fb done_l;
  B.get fb result

and lower_call env callee args : Ir.value option =
  let fb = env.fb in
  let argv = List.map (lower_expr env) args in
  if String.equal callee "print" then begin
    (match argv with
    | [ v ] -> B.print_i64 fb v
    | _ -> error "print takes exactly one argument");
    None
  end
  else
    match Hashtbl.find_opt env.returns callee with
    | None -> error "call to undefined function '%s'" callee
    | Some true -> Some (B.call_v fb callee argv)
    | Some false ->
      ignore (B.call fb callee argv);
      None

let lower_lvalue env (lv : Ast.lvalue) : Ir.value =
  match lv with
  | Ast.Lvar name -> (
    match lookup env name with
    | Scalar slot -> slot
    | _ -> error "cannot assign to array '%s'" name)
  | Ast.Lindex (name, idx) ->
    let base = array_base env name in
    B.gep env.fb base (lower_expr env idx) ~scale:8

let rec lower_stmt env (s : Ast.stmt) : unit =
  let fb = env.fb in
  match s with
  | Ast.Decl (name, init) ->
    let slot = B.alloca fb ~bytes:8 in
    bind env name (Scalar slot);
    let v = match init with Some e -> lower_expr env e | None -> B.i64 0 in
    B.store fb Ir.I64 v slot
  | Ast.DeclArray (name, n) ->
    if n <= 0 then error "array '%s' of size %d" name n;
    let base = B.alloca fb ~bytes:(8 * n) in
    bind env name (Array_direct base)
  | Ast.Assign (lv, e) ->
    let ptr = lower_lvalue env lv in
    B.store fb Ir.I64 (lower_expr env e) ptr
  | Ast.ExprStmt e -> (
    match e with
    | Ast.Call (callee, args) -> ignore (lower_call env callee args)
    | _ -> ignore (lower_expr env e))
  | Ast.Return v -> (
    match v with
    | Some e -> B.ret fb (Some (lower_expr env e))
    | None -> B.ret fb None)
  | Ast.If (cond, then_, else_) ->
    let then_l = B.fresh_label fb "then" in
    let else_l = B.fresh_label fb "else" in
    let join_l = B.fresh_label fb "join" in
    let c = truthy env (lower_expr env cond) in
    B.br fb c ~ifso:then_l ~ifnot:(if else_ = [] then join_l else else_l);
    B.start_block fb then_l;
    in_scope env (fun () -> lower_stmts env then_);
    B.jmp_if_open fb join_l;
    if else_ <> [] then begin
      B.start_block fb else_l;
      in_scope env (fun () -> lower_stmts env else_);
      B.jmp_if_open fb join_l
    end;
    B.start_block fb join_l
  | Ast.While (cond, body) ->
    let head = B.fresh_label fb "while_head" in
    let body_l = B.fresh_label fb "while_body" in
    let exit_l = B.fresh_label fb "while_exit" in
    B.jmp fb head;
    B.start_block fb head;
    let c = truthy env (lower_expr env cond) in
    B.br fb c ~ifso:body_l ~ifnot:exit_l;
    B.start_block fb body_l;
    env.loops <- (exit_l, head) :: env.loops;
    in_scope env (fun () -> lower_stmts env body);
    env.loops <- List.tl env.loops;
    B.jmp_if_open fb head;
    B.start_block fb exit_l
  | Ast.For (init, cond, step, body) ->
    (* C99: the for-header declaration lives in its own scope *)
    push_scope env;
    (match init with Some s -> lower_stmt env s | None -> ());
    let head = B.fresh_label fb "for_head" in
    let body_l = B.fresh_label fb "for_body" in
    let step_l = B.fresh_label fb "for_step" in
    let exit_l = B.fresh_label fb "for_exit" in
    B.jmp fb head;
    B.start_block fb head;
    (match cond with
    | Some e ->
      let c = truthy env (lower_expr env e) in
      B.br fb c ~ifso:body_l ~ifnot:exit_l
    | None -> B.jmp fb body_l);
    B.start_block fb body_l;
    env.loops <- (exit_l, step_l) :: env.loops;
    in_scope env (fun () -> lower_stmts env body);
    env.loops <- List.tl env.loops;
    B.jmp_if_open fb step_l;
    B.start_block fb step_l;
    (match step with Some s -> lower_stmt env s | None -> ());
    B.jmp fb head;
    B.start_block fb exit_l;
    pop_scope env
  | Ast.Break -> (
    match env.loops with
    | (brk, _) :: _ -> B.jmp fb brk
    | [] -> error "break outside a loop")
  | Ast.Continue -> (
    match env.loops with
    | (_, cont) :: _ -> B.jmp fb cont
    | [] -> error "continue outside a loop")

and lower_stmts env stmts =
  (* statements after a break/continue/return in the same block are
     unreachable; C allows them, so we tolerate and drop them *)
  List.iter
    (fun s -> if block_open env then lower_stmt env s)
    stmts

(* The builder has no public "is a block open" query; probe by trying a
   harmless sealed-state-only operation is worse, so track via loops of
   control statements: we instead rely on jmp_if_open semantics by
   wrapping in exception-free check below. *)
and block_open env = B.is_open env.fb

(* ------------------------------------------------------------------ *)

let lower_func t returns (f : Ast.func) globals_bind =
  let params =
    List.map
      (fun (_, pty) ->
        match pty with Ast.Pscalar -> Ir.I64 | Ast.Parray -> Ir.Ptr)
      f.Ast.params
  in
  let ret = if f.Ast.returns_value then Some Ir.I64 else None in
  ignore
    (B.func t f.Ast.name ~params ~ret (fun fb args ->
         let env =
           { scopes = [ Hashtbl.create 16; globals_bind ]; returns;
             loops = []; fb }
         in
         List.iter2
           (fun (pname, pty) arg ->
             let slot = B.alloca fb ~bytes:8 in
             B.store fb
               (match pty with Ast.Pscalar -> Ir.I64 | Ast.Parray -> Ir.Ptr)
               arg slot;
             bind env pname
               (match pty with
               | Ast.Pscalar -> Scalar slot
               | Ast.Parray -> Array_slot slot))
           f.Ast.params args;
         lower_stmts env f.Ast.body;
         (* close any fall-through path; a value-returning function
            falling off the end returns 0 (defined where C leaves it
            undefined) *)
         let epilogue = B.fresh_label fb "fallthrough" in
         B.jmp_if_open fb epilogue;
         B.start_block fb epilogue;
         B.ret fb (if f.Ast.returns_value then Some (B.i64 0) else None)))

(* Lower a parsed program to a verified IR module. *)
let lower (p : Ast.program) : Ir.modul =
  let t = B.create () in
  let globals_bind : (string, binding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun g ->
      match g with
      | Ast.Gscalar name ->
        if Hashtbl.mem globals_bind name then error "redefinition of '%s'" name;
        Hashtbl.replace globals_bind name
          (Scalar (B.global t name ~bytes:8))
      | Ast.Garray (name, n) ->
        if n <= 0 then error "array '%s' of size %d" name n;
        if Hashtbl.mem globals_bind name then error "redefinition of '%s'" name;
        Hashtbl.replace globals_bind name
          (Array_direct (B.global t name ~bytes:(8 * n))))
    p.Ast.globals;
  let returns : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem returns f.Ast.name then
        error "redefinition of function '%s'" f.Ast.name;
      Hashtbl.replace returns f.Ast.name f.Ast.returns_value)
    p.Ast.funcs;
  if not (Hashtbl.mem returns "main") then error "no main function";
  List.iter (fun f -> lower_func t returns f globals_bind) p.Ast.funcs;
  let m = B.finish t in
  Ferrum_ir.Verify.run m;
  m
