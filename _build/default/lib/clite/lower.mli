(** Lowering from the C-lite AST to the mini-IR.

    Scalars live in 8-byte alloca slots, local arrays in sized allocas,
    globals in the module data section; array parameters pass base
    addresses; [&&]/[||] short-circuit through a result slot; [>>] is
    arithmetic (C on signed longs).  The result is verified before it is
    returned. *)

exception Error of string

val lower : Ast.program -> Ferrum_ir.Ir.modul
