(* Recursive-descent parser for C-lite with standard C operator
   precedence.  Grammar sketch:

     program   := (global | func)*
     global    := "long" IDENT ("[" INT "]")? ";"
     func      := ("long" | "void") IDENT "(" params ")" block
     params    := e | param ("," param)*
     param     := "long" IDENT ("[" "]")?
     block     := "{" stmt* "}"
     stmt      := "long" IDENT ("[" INT "]")? ("=" expr)? ";"
                | lvalue "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | ifstmt))?
                | "while" "(" expr ")" block
                | "for" "(" simple? ";" expr? ";" simple? ")" block
                | "return" expr? ";" | "break" ";" | "continue" ";"
                | expr ";"
     expr      := C precedence over || && | ^ & ==/!= relational
                  shifts additive multiplicative unary postfix primary *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type st = { mutable toks : Token.spanned list }

let peek st =
  match st.toks with
  | [] -> Token.EOF
  | t :: _ -> t.Token.tok

let line st = match st.toks with [] -> 0 | t :: _ -> t.Token.line

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    error "line %d: expected %s, found '%s'" (line st) what
      (Token.to_string (peek st))

let expect_ident st what =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error "line %d: expected %s, found '%s'" (line st) what (Token.to_string t)

let expect_int st =
  match peek st with
  | Token.INT v ->
    advance st;
    v
  | t -> error "line %d: expected integer, found '%s'" (line st) (Token.to_string t)

(* ---- expressions ---- *)

let rec parse_expr st = parse_lor st

and parse_lor st =
  let lhs = ref (parse_land st) in
  while peek st = Token.PIPEPIPE do
    advance st;
    lhs := Ast.Binop (Ast.LOr, !lhs, parse_land st)
  done;
  !lhs

and parse_land st =
  let lhs = ref (parse_bor st) in
  while peek st = Token.ANDAND do
    advance st;
    lhs := Ast.Binop (Ast.LAnd, !lhs, parse_bor st)
  done;
  !lhs

and parse_bor st =
  let lhs = ref (parse_bxor st) in
  while peek st = Token.PIPE do
    advance st;
    lhs := Ast.Binop (Ast.BOr, !lhs, parse_bxor st)
  done;
  !lhs

and parse_bxor st =
  let lhs = ref (parse_band st) in
  while peek st = Token.CARET do
    advance st;
    lhs := Ast.Binop (Ast.BXor, !lhs, parse_band st)
  done;
  !lhs

and parse_band st =
  let lhs = ref (parse_equality st) in
  while peek st = Token.AMP do
    advance st;
    lhs := Ast.Binop (Ast.BAnd, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_rel st) in
  let rec go () =
    match peek st with
    | Token.EQ ->
      advance st;
      lhs := Ast.Binop (Ast.Eq, !lhs, parse_rel st);
      go ()
    | Token.NE ->
      advance st;
      lhs := Ast.Binop (Ast.Ne, !lhs, parse_rel st);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_rel st =
  let lhs = ref (parse_shift st) in
  let rec go () =
    match peek st with
    | Token.LT -> advance st; lhs := Ast.Binop (Ast.Lt, !lhs, parse_shift st); go ()
    | Token.LE -> advance st; lhs := Ast.Binop (Ast.Le, !lhs, parse_shift st); go ()
    | Token.GT -> advance st; lhs := Ast.Binop (Ast.Gt, !lhs, parse_shift st); go ()
    | Token.GE -> advance st; lhs := Ast.Binop (Ast.Ge, !lhs, parse_shift st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let rec go () =
    match peek st with
    | Token.SHL -> advance st; lhs := Ast.Binop (Ast.Shl, !lhs, parse_additive st); go ()
    | Token.SHR -> advance st; lhs := Ast.Binop (Ast.Shr, !lhs, parse_additive st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match peek st with
    | Token.PLUS ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_multiplicative st);
      go ()
    | Token.MINUS ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_multiplicative st);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Token.STAR -> advance st; lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st); go ()
    | Token.SLASH -> advance st; lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st); go ()
    | Token.PERCENT -> advance st; lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.TILDE ->
    advance st;
    Ast.Unop (Ast.BNot, parse_unary st)
  | Token.BANG ->
    advance st;
    Ast.Unop (Ast.LNot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  match peek st with
  | Token.INT v ->
    advance st;
    Ast.Int v
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN ")";
    e
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN ")";
      Ast.Call (name, args)
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET "]";
      Ast.Index (name, idx)
    | _ -> Ast.Var name)
  | t -> error "line %d: expected expression, found '%s'" (line st) (Token.to_string t)

and parse_args st =
  if peek st = Token.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

(* ---- statements ---- *)

(* A "simple" statement (no trailing semicolon): declaration,
   assignment, or expression — used by for-headers too. *)
let rec parse_simple st : Ast.stmt =
  match peek st with
  | Token.KW_LONG -> (
    advance st;
    let name = expect_ident st "variable name" in
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let n = Int64.to_int (expect_int st) in
      expect st Token.RBRACKET "]";
      Ast.DeclArray (name, n)
    | Token.ASSIGN ->
      advance st;
      Ast.Decl (name, Some (parse_expr st))
    | _ -> Ast.Decl (name, None))
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.ASSIGN ->
      advance st;
      Ast.Assign (Ast.Lvar name, parse_expr st)
    | Token.LBRACKET -> (
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET "]";
      match peek st with
      | Token.ASSIGN ->
        advance st;
        Ast.Assign (Ast.Lindex (name, idx), parse_expr st)
      | _ ->
        (* an expression statement beginning with arr[...]: evaluate *)
        Ast.ExprStmt (Ast.Index (name, idx)))
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN ")";
      Ast.ExprStmt (Ast.Call (name, args))
    | t -> error "line %d: unexpected '%s' after identifier" (line st) (Token.to_string t))
  | _ -> Ast.ExprStmt (parse_expr st)

and parse_stmt st : Ast.stmt =
  match peek st with
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN "(";
    let cond = parse_expr st in
    expect st Token.RPAREN ")";
    let then_ = parse_block st in
    let else_ =
      if peek st = Token.KW_ELSE then begin
        advance st;
        if peek st = Token.KW_IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN "(";
    let cond = parse_expr st in
    expect st Token.RPAREN ")";
    Ast.While (cond, parse_block st)
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN "(";
    let init =
      if peek st = Token.SEMI then None else Some (parse_simple st)
    in
    expect st Token.SEMI ";";
    let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI ";";
    let step =
      if peek st = Token.RPAREN then None else Some (parse_simple st)
    in
    expect st Token.RPAREN ")";
    Ast.For (init, cond, step, parse_block st)
  | Token.KW_RETURN ->
    advance st;
    let v = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI ";";
    Ast.Return v
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI ";";
    Ast.Break
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI ";";
    Ast.Continue
  | _ ->
    let s = parse_simple st in
    expect st Token.SEMI ";";
    s

and parse_block st : Ast.stmt list =
  expect st Token.LBRACE "{";
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---- top level ---- *)

let parse_param st =
  expect st Token.KW_LONG "'long'";
  let name = expect_ident st "parameter name" in
  if peek st = Token.LBRACKET then begin
    advance st;
    expect st Token.RBRACKET "]";
    (name, Ast.Parray)
  end
  else (name, Ast.Pscalar)

let parse_params st =
  if peek st = Token.RPAREN then []
  else
    let rec go acc =
      let p = parse_param st in
      if peek st = Token.COMMA then begin
        advance st;
        go (p :: acc)
      end
      else List.rev (p :: acc)
    in
    go []

let parse_program (toks : Token.spanned list) : Ast.program =
  let st = { toks } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek st with
    | Token.EOF -> ()
    | Token.KW_LONG | Token.KW_VOID ->
      let returns_value = peek st = Token.KW_LONG in
      advance st;
      let name = expect_ident st "name" in
      (match peek st with
      | Token.LPAREN ->
        advance st;
        let params = parse_params st in
        expect st Token.RPAREN ")";
        let body = parse_block st in
        funcs := { Ast.name; params; returns_value; body } :: !funcs;
        go ()
      | Token.LBRACKET ->
        if not returns_value then
          error "line %d: void array makes no sense" (line st);
        advance st;
        let n = Int64.to_int (expect_int st) in
        expect st Token.RBRACKET "]";
        expect st Token.SEMI ";";
        globals := Ast.Garray (name, n) :: !globals;
        go ()
      | Token.SEMI ->
        if not returns_value then
          error "line %d: void variable makes no sense" (line st);
        advance st;
        globals := Ast.Gscalar name :: !globals;
        go ()
      | t ->
        error "line %d: expected '(', '[' or ';', found '%s'" (line st)
          (Token.to_string t))
    | t ->
      error "line %d: expected declaration, found '%s'" (line st)
        (Token.to_string t)
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let parse (src : string) : Ast.program =
  parse_program (Lexer.tokenize src)
