(* Hand-written lexer for C-lite.  Supports decimal and 0x literals,
   //-comments and /* ... */ comments. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let keyword_of = function
  | "long" -> Some Token.KW_LONG
  | "void" -> Some Token.KW_VOID
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

(* Tokenise a whole source string. *)
let tokenize (src : string) : Token.spanned list =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { Token.tok; line = !line } :: !out in
  let rec go i =
    if i >= n then emit Token.EOF
    else
      let c = src.[i] in
      match c with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then error "line %d: unterminated comment" !line
          else if src.[j] = '\n' then (incr line; skip (j + 1))
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else skip (j + 1)
        in
        go (skip (i + 2))
      | '0' when i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') ->
        let rec scan j =
          if
            j < n
            && (is_digit src.[j]
               || (src.[j] >= 'a' && src.[j] <= 'f')
               || (src.[j] >= 'A' && src.[j] <= 'F'))
          then scan (j + 1)
          else j
        in
        let stop = scan (i + 2) in
        (match Int64.of_string_opt (String.sub src i (stop - i)) with
        | Some v -> emit (Token.INT v)
        | None -> error "line %d: bad hex literal" !line);
        go stop
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let stop = scan i in
        (match Int64.of_string_opt (String.sub src i (stop - i)) with
        | Some v -> emit (Token.INT v)
        | None -> error "line %d: bad integer literal" !line);
        go stop
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident src.[j] then scan (j + 1) else j in
        let stop = scan i in
        let word = String.sub src i (stop - i) in
        (match keyword_of word with
        | Some kw -> emit kw
        | None -> emit (Token.IDENT word));
        go stop
      | _ ->
        let two op = emit op; go (i + 2) in
        let one op = emit op; go (i + 1) in
        let peek = if i + 1 < n then Some src.[i + 1] else None in
        (match (c, peek) with
        | '<', Some '<' -> two Token.SHL
        | '>', Some '>' -> two Token.SHR
        | '<', Some '=' -> two Token.LE
        | '>', Some '=' -> two Token.GE
        | '=', Some '=' -> two Token.EQ
        | '!', Some '=' -> two Token.NE
        | '&', Some '&' -> two Token.ANDAND
        | '|', Some '|' -> two Token.PIPEPIPE
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '[', _ -> one Token.LBRACKET
        | ']', _ -> one Token.RBRACKET
        | ';', _ -> one Token.SEMI
        | ',', _ -> one Token.COMMA
        | '=', _ -> one Token.ASSIGN
        | '+', _ -> one Token.PLUS
        | '-', _ -> one Token.MINUS
        | '*', _ -> one Token.STAR
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | '&', _ -> one Token.AMP
        | '|', _ -> one Token.PIPE
        | '^', _ -> one Token.CARET
        | '~', _ -> one Token.TILDE
        | '!', _ -> one Token.BANG
        | '<', _ -> one Token.LT
        | '>', _ -> one Token.GT
        | _ -> error "line %d: unexpected character %C" !line c)
  in
  go 0;
  List.rev !out
