(** Recursive-descent parser for C-lite with C operator precedence (see
    the grammar sketch in the implementation and the language summary in
    {!Clite}). *)

exception Error of string

(** Parse a token stream into a program. *)
val parse_program : Token.spanned list -> Ast.program

(** Lex and parse source text. *)
val parse : string -> Ast.program
