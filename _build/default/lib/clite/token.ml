(* Tokens of the C-lite language (see Clite's interface for the
   grammar).  Positions are kept for error messages. *)

type t =
  | INT of int64
  | IDENT of string
  (* keywords *)
  | KW_LONG
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  (* operators *)
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | PIPEPIPE
  | EOF

let to_string = function
  | INT v -> Int64.to_string v
  | IDENT s -> s
  | KW_LONG -> "long"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | PIPEPIPE -> "||"
  | EOF -> "<eof>"

(* A token with its source line (1-based). *)
type spanned = { tok : t; line : int }
