lib/clite/ast.ml:
