lib/clite/lexer.ml: Fmt Int64 List String Token
