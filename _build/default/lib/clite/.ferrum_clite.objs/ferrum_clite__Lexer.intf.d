lib/clite/lexer.mli: Token
