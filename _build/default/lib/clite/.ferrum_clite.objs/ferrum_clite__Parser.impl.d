lib/clite/parser.ml: Ast Fmt Int64 Lexer List Token
