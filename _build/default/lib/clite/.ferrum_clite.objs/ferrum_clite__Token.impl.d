lib/clite/token.ml: Int64
