lib/clite/clite.ml: Ferrum_ir Lexer Lower Parser
