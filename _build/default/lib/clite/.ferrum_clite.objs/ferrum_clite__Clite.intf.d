lib/clite/clite.mli: Ferrum_ir
