lib/clite/lower.mli: Ast Ferrum_ir
