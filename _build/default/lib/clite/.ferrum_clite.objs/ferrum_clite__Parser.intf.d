lib/clite/parser.mli: Ast Token
