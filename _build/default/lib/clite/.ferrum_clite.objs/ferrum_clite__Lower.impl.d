lib/clite/lower.ml: Ast Ferrum_ir Fmt Hashtbl List String
