(* Front door of the C-lite frontend: source text to verified mini-IR.
   See the interface for the language definition. *)

exception Error of string

let compile (src : string) : Ferrum_ir.Ir.modul =
  try Lower.lower (Parser.parse src) with
  | Lexer.Error msg -> raise (Error ("lex error: " ^ msg))
  | Parser.Error msg -> raise (Error ("parse error: " ^ msg))
  | Lower.Error msg -> raise (Error ("error: " ^ msg))

let compile_file (path : string) : Ferrum_ir.Ir.modul =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile src
