(* Abstract syntax of C-lite.  The only scalar type is [long] (64-bit
   signed); arrays of long are the only aggregate.  Everything else —
   pointers, structs, floating point — is out of the language, matching
   what the workloads need. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr (* short-circuit *)

type unop = Neg | BNot | LNot

type expr =
  | Int of int64
  | Var of string
  | Index of string * expr (* arr[e] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Decl of string * expr option (* long x [= e]; *)
  | DeclArray of string * int (* long a[N]; *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | ExprStmt of expr (* calls for effect *)

(* Parameter types: scalar long, or long[] (an array address). *)
type param_ty = Pscalar | Parray

type func = {
  name : string;
  params : (string * param_ty) list;
  returns_value : bool; (* long f(...) vs void f(...) *)
  body : stmt list;
}

type global = Gscalar of string | Garray of string * int

type program = { globals : global list; funcs : func list }
