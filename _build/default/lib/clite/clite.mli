(** C-lite: a small C-like frontend for the mini-IR.

    The paper's toolchain starts from C source (its Fig. 2 shows the
    C → LLVM-IR step); this frontend plays that role for the
    reproduction, so kernels can be written as ordinary text and pushed
    through compilation, protection and fault injection.

    The language, in brief:
    - one scalar type, [long] (64-bit signed); arrays of long are the
      only aggregate ([long a\[N\];] globally or locally);
    - functions [long f(long x, long v[]) { ... }] or [void f(...)];
      array parameters receive the array's address;
    - statements: declarations with optional initialisers, assignments
      (scalar and indexed), [if]/[else], [while], [for], [return],
      [break], [continue], expression statements;
    - expressions: C operator precedence over [|| && | ^ & == != < <= >
      >= << >> + - * / %], unary [- ~ !], calls, indexing; [&&]/[||]
      short-circuit; comparisons yield 0/1;
    - [print(e)] is the builtin observable output (the simulator's
      [print_i64]);
    - [//] and [/* ... */] comments.

    Declarations follow C block scoping (a [for]-header declaration
    scopes to the loop); a value-returning function that falls off the
    end returns 0.  See [examples/programs/*.c]. *)

exception Error of string

(** Compile source text to a verified {!Ferrum_ir.Ir.modul}.  Raises
    {!Error} with a located message on lexical, syntactic or semantic
    problems. *)
val compile : string -> Ferrum_ir.Ir.modul

(** {!compile} on a file's contents. *)
val compile_file : string -> Ferrum_ir.Ir.modul
