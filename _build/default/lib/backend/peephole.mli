(** Peephole optimiser over backend output (experiment E9).

    The paper's §IV-B2 attributes IR-level EDDI's coverage loss and the
    hybrid baseline's extra overhead to the backend's -O0 lowering glue;
    this pass removes the most blatant store-to-slot/reload-from-slot
    traffic so that claim can be tested directly.  Only flag-neutral
    rewrites over adjacent instructions inside a block are performed
    (dead reload elimination and store-to-load forwarding of RBP-relative
    slots). *)

type stats = { mutable dead_reloads : int; mutable forwarded_loads : int }

(** Optimise one block to a fixpoint, accumulating into [stats]. *)
val optimize_block : stats -> Ferrum_asm.Prog.block -> Ferrum_asm.Prog.block

(** Optimise a whole (validated) program; the result is re-validated. *)
val run : Ferrum_asm.Prog.t -> Ferrum_asm.Prog.t * stats
