lib/backend/backend.mli: Ferrum_asm Ferrum_ir Instr Ir Prog Reg
