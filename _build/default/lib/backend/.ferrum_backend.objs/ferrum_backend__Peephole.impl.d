lib/backend/peephole.ml: Ferrum_asm Instr List Prog Reg
