lib/backend/backend.ml: Cond Ferrum_asm Ferrum_ir Fmt Hashtbl Instr Int64 Ir List Prog Reg Verify
