lib/backend/peephole.mli: Ferrum_asm
