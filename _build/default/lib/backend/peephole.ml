(* Peephole optimiser over backend output.

   The paper's root-cause analysis (§IV-B2) attributes both IR-level
   EDDI's coverage loss and the hybrid baseline's extra overhead to the
   "additional unprotected footprint" of naive -O0 lowering.  This pass
   lets us test that analysis directly (experiment E9 in DESIGN.md): it
   removes the most blatant store-to-slot/reload-from-slot traffic, so
   with it enabled the backend produces less glue — IR-level EDDI's
   measured coverage should rise and every technique's overhead fall.

   Only flag-neutral rewrites over adjacent instructions inside a block
   are performed:
     1. [mov %r, S; mov S, %r]   -> [mov %r, S]            (dead reload)
     2. [mov %r, S; mov S, %r2]  -> [mov %r, S; mov %r, %r2]
        (forward the just-stored value; the load becomes a register
        move, which FERRUM still classifies as SIMD-enabled)
   where S is an RBP-relative slot and %r is not RSP/RBP. *)

open Ferrum_asm

type stats = { mutable dead_reloads : int; mutable forwarded_loads : int }

let same_slot (a : Instr.mem) (b : Instr.mem) =
  a.Instr.base = Some Reg.RBP && b.Instr.base = Some Reg.RBP
  && a.Instr.index = None && b.Instr.index = None
  && a.Instr.disp = b.Instr.disp

let eligible_reg r = not Reg.(equal_gpr r RSP || equal_gpr r RBP)

let rec rewrite stats (insns : Instr.ins list) : Instr.ins list =
  match insns with
  | ({ Instr.op = Instr.Mov (Reg.Q, Instr.Reg r1, Instr.Mem s1); _ } as st)
    :: { Instr.op = Instr.Mov (Reg.Q, Instr.Mem s2, Instr.Reg r2); prov }
    :: rest
    when same_slot s1 s2 && eligible_reg r1 && eligible_reg r2 ->
    if Reg.equal_gpr r1 r2 then begin
      stats.dead_reloads <- stats.dead_reloads + 1;
      st :: rewrite stats rest
    end
    else begin
      stats.forwarded_loads <- stats.forwarded_loads + 1;
      st
      :: { Instr.op = Instr.Mov (Reg.Q, Instr.Reg r1, Instr.Reg r2); prov }
      :: rewrite stats rest
    end
  | i :: rest -> i :: rewrite stats rest
  | [] -> []

(* Repeat until no more rewrites apply (a forwarded move can expose a
   further pair). *)
let optimize_block stats (b : Prog.block) =
  let rec fixpoint insns =
    let before = (stats.dead_reloads, stats.forwarded_loads) in
    let insns' = rewrite stats insns in
    if (stats.dead_reloads, stats.forwarded_loads) = before then insns'
    else fixpoint insns'
  in
  Prog.block b.label (fixpoint b.insns)

let run (p : Prog.t) : Prog.t * stats =
  let stats = { dead_reloads = 0; forwarded_loads = 0 } in
  let p' =
    Prog.map_funcs
      (fun f -> Prog.func f.Prog.fname (List.map (optimize_block stats) f.Prog.blocks))
      p
  in
  Prog.validate p';
  (p', stats)
