(** Backend compiler: mini-IR to x86-64 subset assembly.

    The lowering mirrors clang -O0: every virtual register lives in a
    stack slot, operands are reloaded before use, branch conditions are
    re-materialised from memory with a compare against zero (the paper's
    Figs. 8-9), and calls marshal arguments through the System-V
    argument registers.  These backend-introduced instructions are the
    "additional unprotected footprint" (paper §IV-B2) that costs
    IR-level EDDI its coverage at assembly level.

    Generated code uses RAX/RCX/RDX as scratch and the argument
    registers at calls; RBX and R10-R15 are never touched, and no SIMD
    register is ever used — the under-utilisation FERRUM exploits. *)

open Ferrum_asm
open Ferrum_ir

exception Error of string

(** Base address of the global data region in simulator memory. *)
val global_base : int

(** Argument registers, in order (RDI, RSI, RDX, RCX, R8, R9). *)
val arg_regs : Reg.gpr list

(** IR-level protection passes insert shadow and checker IR code; this
    oracle lets them tag it so the lowered assembly carries the right
    provenance (the fault injector and the cycle model distinguish
    program code from protection code). *)
type prov_oracle = {
  instr_prov : fname:string -> Ir.instr -> Instr.provenance;
  term_prov : fname:string -> label:string -> Ir.terminator -> Instr.provenance;
  block_prov : fname:string -> label:string -> Instr.provenance option;
      (** whole-block override, e.g. detector blocks *)
}

(** Everything tagged [Original]. *)
val default_oracle : prov_oracle

(** Compile a module (it is verified first).  Globals receive fixed
    addresses from {!global_base} upward; the result passes
    {!Ferrum_asm.Prog.validate}.  Raises {!Error} on unsupported shapes
    (e.g. more than six call arguments). *)
val compile : ?oracle:prov_oracle -> Ir.modul -> Prog.t

(** Total bytes of global data after alignment, for memory sizing. *)
val globals_bytes : Ir.modul -> int
