(* Backend compiler: mini-IR to x86-64 subset assembly.

   The lowering mirrors clang -O0: every virtual register lives in a
   stack slot, every operand is reloaded before use, branch conditions
   are re-materialised from memory with a compare against zero (paper
   Figs. 8-9), and calls marshal arguments through the System-V argument
   registers.  These backend-introduced instructions are exactly the
   "additional unprotected footprint" (paper §IV-B2) that makes IR-level
   EDDI lose coverage when faults are injected at assembly level.

   Register usage of generated code: RAX/RCX/RDX as scratch, RDI/RSI/
   RDX/RCX/R8/R9 at call sites, RBP/RSP for the frame.  RBX and R10-R15
   are never used, which is the under-utilisation FERRUM's spare-register
   analysis discovers.  No SIMD register is ever used by generated code. *)

open Ferrum_asm
open Ferrum_ir

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Base address of the global data region in simulator memory.  The
   stack grows down from the top of memory; keeping globals low keeps
   the two apart for any memory size >= 64 KiB. *)
let global_base = 0x1000

let arg_regs = Reg.[ RDI; RSI; RDX; RCX; R8; R9 ]

(* IR-level protection passes insert shadow and checker IR instructions;
   this oracle lets them tag that code so the lowered assembly carries
   the right provenance (the fault injector and the cycle model both
   distinguish program code from protection code). *)
type prov_oracle = {
  instr_prov : fname:string -> Ir.instr -> Instr.provenance;
  term_prov : fname:string -> label:string -> Ir.terminator -> Instr.provenance;
  block_prov : fname:string -> label:string -> Instr.provenance option;
}

let default_oracle =
  {
    instr_prov = (fun ~fname:_ _ -> Instr.Original);
    term_prov = (fun ~fname:_ ~label:_ _ -> Instr.Original);
    block_prov = (fun ~fname:_ ~label:_ -> None);
  }

type env = {
  slot_of_vreg : (int, int) Hashtbl.t; (* vreg -> rbp displacement *)
  alloca_off : (int, int) Hashtbl.t; (* alloca dst vreg -> rbp displacement *)
  global_addr : (string, int) Hashtbl.t;
  frame_size : int;
}

let slot env r =
  match Hashtbl.find_opt env.slot_of_vreg r with
  | Some disp -> Instr.mem ~base:Reg.RBP disp
  | None -> error "no slot for vreg %%%d" r

(* ------------------------------------------------------------------ *)
(* Frame layout.                                                       *)
(* ------------------------------------------------------------------ *)

let layout_frame (f : Ir.func) global_addr =
  let slot_of_vreg = Hashtbl.create 64 in
  let alloca_off = Hashtbl.create 16 in
  let next = ref 0 in
  let assign_slot r =
    if not (Hashtbl.mem slot_of_vreg r) then begin
      next := !next + 8;
      Hashtbl.replace slot_of_vreg r (- !next)
    end
  in
  List.iter (fun (r, _) -> assign_slot r) f.params;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i -> match Ir.def i with Some d -> assign_slot d | None -> ())
        b.body)
    f.blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match i with
          | Ir.Alloca { dst; bytes } ->
            let aligned = (bytes + 7) / 8 * 8 in
            next := !next + aligned;
            Hashtbl.replace alloca_off dst (- !next)
          | _ -> ())
        b.body)
    f.blocks;
  let frame_size = (!next + 15) / 16 * 16 in
  { slot_of_vreg; alloca_off; global_addr; frame_size }

(* ------------------------------------------------------------------ *)
(* Instruction selection.                                              *)
(* ------------------------------------------------------------------ *)

let size_of_ty = function
  | Ir.I1 -> Reg.B
  | Ir.I32 -> Reg.D
  | Ir.I64 | Ir.Ptr -> Reg.Q

let cc_of_pred = function
  | Ir.Eq -> Cond.E
  | Ir.Ne -> Cond.NE
  | Ir.Slt -> Cond.L
  | Ir.Sle -> Cond.LE
  | Ir.Sgt -> Cond.G
  | Ir.Sge -> Cond.GE
  | Ir.Ult -> Cond.B
  | Ir.Ule -> Cond.BE
  | Ir.Ugt -> Cond.A
  | Ir.Uge -> Cond.AE

(* Emit code loading [v] into register [r] at the width of [ty].
   Returns instructions in order. *)
let load_value env ty v r =
  let sz = size_of_ty ty in
  match v with
  | Ir.Vreg vr -> (
    match Hashtbl.find_opt env.alloca_off vr with
    | Some disp ->
      (* the value of an alloca is the address of its frame area *)
      [ Instr.Lea (Instr.mem ~base:Reg.RBP disp, r) ]
    | None -> [ Instr.Mov (sz, Instr.Mem (slot env vr), Instr.Reg r) ])
  | Ir.Const (_, c) -> [ Instr.Mov (sz, Instr.Imm c, Instr.Reg r) ]
  | Ir.Global g -> (
    match Hashtbl.find_opt env.global_addr g with
    | Some a -> [ Instr.Mov (Reg.Q, Instr.Imm (Int64.of_int a), Instr.Reg r) ]
    | None -> error "unknown global @%s" g)

(* Store register [r] into the slot of vreg [d] at type width. *)
let store_result env ty d r =
  [ Instr.Mov (size_of_ty ty, Instr.Reg r, Instr.Mem (slot env d)) ]

let lower_binop env (i : Ir.instr) =
  match i with
  | Ir.Binop { dst; op; ty; a; b } -> (
    let sz = size_of_ty ty in
    let la = load_value env ty a Reg.RAX in
    match op with
    | Ir.Sdiv | Ir.Srem ->
      if ty <> Ir.I64 then error "division only lowered at i64";
      la
      @ load_value env ty b Reg.RCX
      @ [ Instr.Cqto; Instr.Idiv (Reg.Q, Instr.Reg Reg.RCX) ]
      @ store_result env ty dst (if op = Ir.Sdiv then Reg.RAX else Reg.RDX)
    | Ir.Shl | Ir.Ashr | Ir.Lshr -> (
      let kind =
        match op with
        | Ir.Shl -> Instr.Shl
        | Ir.Ashr -> Instr.Sar
        | _ -> Instr.Shr
      in
      match b with
      | Ir.Const (_, c) ->
        la
        @ [ Instr.Shift (kind, sz, Instr.Amt_imm (Int64.to_int c), Instr.Reg Reg.RAX) ]
        @ store_result env ty dst Reg.RAX
      | _ ->
        la
        @ load_value env ty b Reg.RCX
        @ [ Instr.Shift (kind, sz, Instr.Amt_cl, Instr.Reg Reg.RAX) ]
        @ store_result env ty dst Reg.RAX)
    | Ir.Add | Ir.Sub | Ir.Mul | Ir.And | Ir.Or | Ir.Xor ->
      let alu =
        match op with
        | Ir.Add -> Instr.Add
        | Ir.Sub -> Instr.Sub
        | Ir.Mul -> Instr.Imul
        | Ir.And -> Instr.And
        | Ir.Or -> Instr.Or
        | _ -> Instr.Xor
      in
      la
      @ load_value env ty b Reg.RCX
      @ [ Instr.Alu (alu, sz, Instr.Reg Reg.RCX, Instr.Reg Reg.RAX) ]
      @ store_result env ty dst Reg.RAX)
  | _ -> assert false

let lower_instr env (i : Ir.instr) : Instr.t list =
  match i with
  | Ir.Alloca _ -> [] (* static frame space; address taken via load_value *)
  | Ir.Load { dst; ty; ptr } ->
    load_value env Ir.Ptr ptr Reg.RAX
    @ (match ty with
      | Ir.I1 ->
        [ Instr.Movzbq (Instr.Mem (Instr.mem ~base:Reg.RAX 0), Reg.RCX) ]
      | _ ->
        [ Instr.Mov (size_of_ty ty, Instr.Mem (Instr.mem ~base:Reg.RAX 0),
            Instr.Reg Reg.RCX) ])
    @ store_result env ty dst Reg.RCX
  | Ir.Store { ty; v; ptr } ->
    load_value env ty v Reg.RCX
    @ load_value env Ir.Ptr ptr Reg.RAX
    @ [ Instr.Mov (size_of_ty ty, Instr.Reg Reg.RCX,
          Instr.Mem (Instr.mem ~base:Reg.RAX 0)) ]
  | Ir.Binop _ -> lower_binop env i
  | Ir.Icmp { dst; pred; ty; a; b } ->
    load_value env ty a Reg.RAX
    @ load_value env ty b Reg.RCX
    @ [ Instr.Cmp (size_of_ty ty, Instr.Reg Reg.RCX, Instr.Reg Reg.RAX);
        Instr.Set (cc_of_pred pred, Instr.Reg Reg.RAX) ]
    @ store_result env Ir.I1 dst Reg.RAX
  | Ir.Gep { dst; base; index; scale } ->
    load_value env Ir.Ptr base Reg.RAX
    @ load_value env Ir.I64 index Reg.RCX
    @ [ Instr.Lea (Instr.mem ~base:Reg.RAX ~index:Reg.RCX ~scale 0, Reg.RAX) ]
    @ store_result env Ir.Ptr dst Reg.RAX
  | Ir.Cast { dst; kind; v } -> (
    match kind with
    | Ir.Sext_i32_i64 ->
      load_value env Ir.I32 v Reg.RAX
      @ [ Instr.Movslq (Instr.Reg Reg.RAX, Reg.RAX) ]
      @ store_result env Ir.I64 dst Reg.RAX
    | Ir.Trunc_i64_i32 ->
      load_value env Ir.I64 v Reg.RAX @ store_result env Ir.I32 dst Reg.RAX
    | Ir.Zext_i1_i64 ->
      load_value env Ir.I1 v Reg.RAX
      @ [ Instr.Movzbq (Instr.Reg Reg.RAX, Reg.RAX) ]
      @ store_result env Ir.I64 dst Reg.RAX)
  | Ir.Call { dst; callee; args } ->
    if List.length args > List.length arg_regs then
      error "call @%s: too many arguments" callee;
    List.concat
      (List.mapi
         (fun k a -> load_value env Ir.I64 a (List.nth arg_regs k))
         args)
    @ [ Instr.Call callee ]
    @ (match dst with
      | Some d -> store_result env Ir.I64 d Reg.RAX
      | None -> [])

(* Lower a terminator.  Conditional branches re-materialise the i1 from
   its slot with a compare against zero — the paper's Fig. 9 pattern and
   a fault-injection site invisible at IR level. *)
let lower_term env (t : Ir.terminator) : Instr.t list =
  match t with
  | Ir.Jmp l -> [ Instr.Jmp l ]
  | Ir.Br { cond; ifso; ifnot } -> (
    match cond with
    | Ir.Const (_, c) ->
      [ Instr.Jmp (if Int64.equal c 0L then ifnot else ifso) ]
    | Ir.Vreg r ->
      [ Instr.Cmp (Reg.B, Instr.Imm 0L, Instr.Mem (slot env r));
        Instr.Jcc (Cond.E, ifnot); Instr.Jmp ifso ]
    | Ir.Global _ -> error "branch on global")
  | Ir.Ret v ->
    (match v with
    | Some v -> load_value env Ir.I64 v Reg.RAX
    | None -> [])
    @ [ Instr.Mov (Reg.Q, Instr.Reg Reg.RBP, Instr.Reg Reg.RSP);
        Instr.Pop Reg.RBP; Instr.Ret ]

let lower_func oracle global_addr (f : Ir.func) : Prog.func =
  let env = layout_frame f global_addr in
  let prologue =
    [ Instr.Push (Instr.Reg Reg.RBP);
      Instr.Mov (Reg.Q, Instr.Reg Reg.RSP, Instr.Reg Reg.RBP);
      Instr.Alu (Instr.Sub, Reg.Q, Instr.Imm (Int64.of_int env.frame_size),
        Instr.Reg Reg.RSP) ]
    @ List.concat
        (List.mapi
           (fun k (r, ty) ->
             if k >= List.length arg_regs then
               error "@%s: too many parameters" f.name
             else store_result env ty r (List.nth arg_regs k))
           f.params)
  in
  let blocks =
    List.mapi
      (fun bi (b : Ir.block) ->
        let bprov = oracle.block_prov ~fname:f.name ~label:b.label in
        let tag default code =
          let prov = match bprov with Some p -> p | None -> default in
          List.map (fun op -> Instr.{ op; prov }) code
        in
        let body =
          List.concat_map
            (fun i ->
              tag (oracle.instr_prov ~fname:f.name i) (lower_instr env i))
            b.body
        in
        let term =
          tag
            (oracle.term_prov ~fname:f.name ~label:b.label b.term)
            (lower_term env b.term)
        in
        let prologue_tagged = List.map Instr.original (if bi = 0 then prologue else []) in
        Prog.block b.label (prologue_tagged @ body @ term))
      f.blocks
  in
  Prog.func f.name blocks

(* Compile a verified module to an assembly program.  Globals receive
   fixed addresses starting at [global_base]. *)
let compile ?(oracle = default_oracle) (m : Ir.modul) : Prog.t =
  Verify.run m;
  let global_addr = Hashtbl.create 16 in
  let next = ref global_base in
  List.iter
    (fun (g, bytes) ->
      Hashtbl.replace global_addr g !next;
      next := !next + ((bytes + 15) / 16 * 16))
    m.globals;
  let funcs = List.map (lower_func oracle global_addr) m.funcs in
  let p = Prog.program ~entry:m.main funcs in
  Prog.validate p;
  p

(* Total bytes of global data, for memory sizing. *)
let globals_bytes (m : Ir.modul) =
  List.fold_left (fun acc (_, b) -> acc + ((b + 15) / 16 * 16)) 0 m.globals
