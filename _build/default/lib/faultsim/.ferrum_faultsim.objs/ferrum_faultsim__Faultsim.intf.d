lib/faultsim/faultsim.mli: Ferrum_machine Format Rng
