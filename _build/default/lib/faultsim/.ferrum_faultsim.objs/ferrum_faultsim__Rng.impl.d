lib/faultsim/rng.ml: Int64
