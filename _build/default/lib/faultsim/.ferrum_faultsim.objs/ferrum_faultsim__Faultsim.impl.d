lib/faultsim/faultsim.ml: Array Cond Ferrum_asm Ferrum_machine Fmt Instr Int64 List Printf Reg Rng
