lib/faultsim/rng.mli:
