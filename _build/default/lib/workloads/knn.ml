(* kNN (Rodinia "nn", machine learning): brute-force k-nearest-neighbour
   search — squared Euclidean distances from a query to a point set,
   followed by k rounds of selection, as in Rodinia's hurricane search. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n_points = 56
let dims = 4
let k = 5

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x6b6e6eL;
  let pts = B.global t "pts" ~bytes:(8 * n_points * dims) in
  let query = B.global t "query" ~bytes:(8 * dims) in
  let dist = B.global t "dist" ~bytes:(8 * n_points) in
  let taken = B.global t "taken" ~bytes:(8 * n_points) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_points * dims))
           ~hint:"gen" (fun i -> set fb pts i (rand_below fb 1000));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dims) ~hint:"gq" (fun d ->
             set fb query d (rand_below fb 1000));
         (* distance kernel *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_points) ~hint:"dist"
           (fun i ->
             let acc = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dims) ~hint:"dim"
               (fun d ->
                 let diff =
                   B.sub fb (get2 fb pts ~cols:dims i d) (get fb query d)
                 in
                 B.set fb acc (B.add fb (B.get fb acc) (B.mul fb diff diff)));
             set fb dist i (B.get fb acc);
             set fb taken i (B.i64 0));
         (* k selection rounds *)
         let digest = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 k) ~hint:"sel" (fun round ->
             let best = B.local_var fb (B.i64 (-1)) in
             let best_d = B.local_var fb (B.i64 max_int) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_points) ~hint:"scan"
               (fun i ->
                 let free = B.icmp fb Ir.Eq (get fb taken i) (B.i64 0) in
                 B.if_ fb ~hint:"free" free
                   ~then_:(fun () ->
                     let d = get fb dist i in
                     let closer = B.icmp fb Ir.Slt d (B.get fb best_d) in
                     B.if_ fb ~hint:"closer" closer
                       ~then_:(fun () ->
                         B.set fb best_d d;
                         B.set fb best i)
                       ())
                   ());
             set fb taken (B.get fb best) (B.i64 1);
             B.set fb digest
               (B.add fb (B.get fb digest)
                  (B.add fb
                     (B.mul fb (B.get fb best) (B.add fb round (B.i64 1)))
                     (B.get fb best_d)));
             B.print_i64 fb (B.get fb best));
         B.print_i64 fb (B.get fb digest);
         B.ret fb None));
  B.finish t
