(* BFS (Rodinia, graph algorithm): breadth-first search over a
   pseudo-random directed graph with fixed out-degree, using an explicit
   frontier queue and a distance array, as the Rodinia kernel does. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n_nodes = 96
let degree = 4

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x51f15eedL;
  let edges = B.global t "edges" ~bytes:(8 * n_nodes * degree) in
  let dist = B.global t "dist" ~bytes:(8 * n_nodes) in
  let queue = B.global t "queue" ~bytes:(8 * n_nodes * 2) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         (* graph generation: node i points to i+1 (mod n) plus random
            targets, guaranteeing connectivity *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_nodes) ~hint:"gen"
           (fun i ->
             set2 fb edges ~cols:degree i (B.i64 0)
               (B.srem fb (B.add fb i (B.i64 1)) (B.i64 n_nodes));
             B.for_up fb ~from:(B.i64 1) ~to_:(B.i64 degree) ~hint:"gend"
               (fun d ->
                 set2 fb edges ~cols:degree i d (rand_below fb n_nodes)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_nodes) ~hint:"init"
           (fun i -> set fb dist i (B.i64 (-1)));
         (* BFS from node 0 *)
         set fb dist (B.i64 0) (B.i64 0);
         set fb queue (B.i64 0) (B.i64 0);
         let head = B.local_var fb (B.i64 0) in
         let tail = B.local_var fb (B.i64 1) in
         B.while_ fb ~hint:"bfs"
           (fun () -> B.icmp fb Ir.Slt (B.get fb head) (B.get fb tail))
           (fun () ->
             let u = get fb queue (B.get fb head) in
             B.set fb head (B.add fb (B.get fb head) (B.i64 1));
             let du = get fb dist u in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 degree) ~hint:"nbr"
               (fun d ->
                 let v = get2 fb edges ~cols:degree u d in
                 let dv = get fb dist v in
                 let unvisited = B.icmp fb Ir.Slt dv (B.i64 0) in
                 B.if_ fb ~hint:"visit" unvisited
                   ~then_:(fun () ->
                     set fb dist v (B.add fb du (B.i64 1));
                     set fb queue (B.get fb tail) v;
                     B.set fb tail (B.add fb (B.get fb tail) (B.i64 1)))
                   ()));
         (* output: distance histogram digest and eccentricity *)
         let sum = B.local_var fb (B.i64 0) in
         let ecc = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_nodes) ~hint:"out"
           (fun i ->
             let d = get fb dist i in
             B.set fb sum
               (B.add fb (B.get fb sum) (B.mul fb d (B.add fb i (B.i64 1))));
             B.set fb ecc (max_ fb (B.get fb ecc) d));
         B.print_i64 fb (B.get fb sum);
         B.print_i64 fb (B.get fb ecc);
         B.print_i64 fb (B.get fb tail);
         B.ret fb None));
  B.finish t
