(* Needle (Rodinia, dynamic programming): Needleman-Wunsch global
   sequence alignment over a pseudo-random 4-letter alphabet, filling
   the full (L+1)^2 score matrix with the classic match/gap recurrence. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let len = 26
let match_score = 3
let mismatch_penalty = -1
let gap_penalty = -2

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x6e65656cL;
  let dim = len + 1 in
  let seq_a = B.global t "seq_a" ~bytes:(8 * len) in
  let seq_b = B.global t "seq_b" ~bytes:(8 * len) in
  let score = B.global t "score" ~bytes:(8 * dim * dim) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 len) ~hint:"gen" (fun i ->
             set fb seq_a i (rand_below fb 4);
             set fb seq_b i (rand_below fb 4));
         (* boundary: cumulative gap penalties *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dim) ~hint:"b0" (fun i ->
             set2 fb score ~cols:dim i (B.i64 0)
               (B.mul fb i (B.i64 gap_penalty));
             set2 fb score ~cols:dim (B.i64 0) i
               (B.mul fb i (B.i64 gap_penalty)));
         B.for_up fb ~from:(B.i64 1) ~to_:(B.i64 dim) ~hint:"i" (fun i ->
             B.for_up fb ~from:(B.i64 1) ~to_:(B.i64 dim) ~hint:"j" (fun j ->
                 let ai = get fb seq_a (B.sub fb i (B.i64 1)) in
                 let bj = get fb seq_b (B.sub fb j (B.i64 1)) in
                 let same = B.icmp fb Ir.Eq ai bj in
                 let sub_score = B.local_var fb (B.i64 mismatch_penalty) in
                 B.if_ fb ~hint:"match" same
                   ~then_:(fun () -> B.set fb sub_score (B.i64 match_score))
                   ();
                 let diag =
                   B.add fb
                     (get2 fb score ~cols:dim (B.sub fb i (B.i64 1))
                        (B.sub fb j (B.i64 1)))
                     (B.get fb sub_score)
                 in
                 let up =
                   B.add fb
                     (get2 fb score ~cols:dim (B.sub fb i (B.i64 1)) j)
                     (B.i64 gap_penalty)
                 in
                 let left =
                   B.add fb
                     (get2 fb score ~cols:dim i (B.sub fb j (B.i64 1)))
                     (B.i64 gap_penalty)
                 in
                 set2 fb score ~cols:dim i j
                   (max_ fb diag (max_ fb up left))));
         (* output: alignment score and last row/column digest *)
         B.print_i64 fb (get2 fb score ~cols:dim (B.i64 len) (B.i64 len));
         let sum = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dim) ~hint:"out" (fun i ->
             B.set fb sum
               (B.add fb (B.get fb sum)
                  (B.mul fb
                     (get2 fb score ~cols:dim (B.i64 len) i)
                     (B.add fb i (B.i64 1)))));
         B.print_i64 fb (B.get fb sum);
         B.ret fb None));
  B.finish t
