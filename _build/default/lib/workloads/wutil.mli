(** Shared workload scaffolding: a deterministic in-IR LCG (the kernels'
    input generator — no external data loader) and small array helpers
    over the builder. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir

val lcg_mul : int64
val lcg_inc : int64

(** Add the module-level PRNG: a global state cell plus the functions
    [@lcg_seed] (reset to [seed]) and [@lcg_next] (step; returns a
    non-negative 31-bit value). *)
val add_lcg : B.t -> seed:int64 -> unit

(** Next pseudo-random value in [0, n) (emits a call + srem). *)
val rand_below : B.fb -> int -> Ir.value

(** [get fb a i] loads the i64 element [a.(i)]. *)
val get : B.fb -> Ir.value -> Ir.value -> Ir.value

val set : B.fb -> Ir.value -> Ir.value -> Ir.value -> unit

(** Row-major matrix element access with [cols] columns. *)
val get2 : B.fb -> Ir.value -> cols:int -> Ir.value -> Ir.value -> Ir.value

val set2 :
  B.fb -> Ir.value -> cols:int -> Ir.value -> Ir.value -> Ir.value -> unit

(** Minimum / maximum / absolute value, computed through memory as
    clang -O0 would. *)
val min_ : B.fb -> Ir.value -> Ir.value -> Ir.value

val max_ : B.fb -> Ir.value -> Ir.value -> Ir.value
val abs_ : B.fb -> Ir.value -> Ir.value
