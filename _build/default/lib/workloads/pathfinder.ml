(* Pathfinder (Rodinia, dynamic programming): find the minimum-cost path
   through a weighted grid, row by row, each cell extending the cheapest
   of its three upper neighbours — the exact recurrence of the Rodinia
   kernel, with double-buffered rows. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let rows = 24
let cols = 32

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x70a7f1deL;
  let wall = B.global t "wall" ~bytes:(8 * rows * cols) in
  let src = B.global t "srcrow" ~bytes:(8 * cols) in
  let dst = B.global t "dstrow" ~bytes:(8 * cols) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (rows * cols)) ~hint:"gen"
           (fun i -> set fb wall i (rand_below fb 10));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 cols) ~hint:"init" (fun c ->
             set fb src c (get fb wall c));
         B.for_up fb ~from:(B.i64 1) ~to_:(B.i64 rows) ~hint:"row" (fun r ->
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 cols) ~hint:"col"
               (fun c ->
                 let best = B.local_var fb (get fb src c) in
                 let has_left = B.icmp fb Ir.Sgt c (B.i64 0) in
                 B.if_ fb ~hint:"left" has_left
                   ~then_:(fun () ->
                     let l = get fb src (B.sub fb c (B.i64 1)) in
                     B.set fb best (min_ fb (B.get fb best) l))
                   ();
                 let has_right = B.icmp fb Ir.Slt c (B.i64 (cols - 1)) in
                 B.if_ fb ~hint:"right" has_right
                   ~then_:(fun () ->
                     let rv = get fb src (B.add fb c (B.i64 1)) in
                     B.set fb best (min_ fb (B.get fb best) rv))
                   ();
                 set fb dst c
                   (B.add fb (B.get fb best) (get2 fb wall ~cols r c)));
             (* swap buffers by copying, as the serial Rodinia code does *)
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 cols) ~hint:"swap"
               (fun c -> set fb src c (get fb dst c)));
         (* output: cheapest path cost and final-row digest *)
         let best = B.local_var fb (get fb src (B.i64 0)) in
         let sum = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 cols) ~hint:"out" (fun c ->
             let v = get fb src c in
             B.set fb best (min_ fb (B.get fb best) v);
             B.set fb sum (B.add fb (B.get fb sum) (B.mul fb v (B.add fb c (B.i64 3)))));
         B.print_i64 fb (B.get fb best);
         B.print_i64 fb (B.get fb sum);
         B.ret fb None));
  B.finish t
