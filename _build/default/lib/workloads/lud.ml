(* LUD (Rodinia, linear algebra): in-place LU decomposition of a
   diagonally dominant fixed-point (Q8) matrix, Doolittle style, the
   same triple loop nest as the Rodinia kernel. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n = 10
let q = 8

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x1ddeadL;
  let a = B.global t "mat" ~bytes:(8 * n * n) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         (* diagonally dominant: off-diagonal in [-64,63], diagonal large *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"gi" (fun i ->
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"gj" (fun j ->
                 let diag = B.icmp fb Ir.Eq i j in
                 B.if_ fb ~hint:"diag" diag
                   ~then_:(fun () ->
                     set2 fb a ~cols:n i j
                       (B.add fb (B.i64 (n * 64 * 2)) (rand_below fb 128)))
                   ~else_:(fun () ->
                     set2 fb a ~cols:n i j
                       (B.sub fb (rand_below fb 128) (B.i64 64)))
                   ()));
         (* Doolittle elimination *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"k" (fun k ->
             let pivot = get2 fb a ~cols:n k k in
             B.for_up fb ~from:(B.add fb k (B.i64 1)) ~to_:(B.i64 n)
               ~hint:"i" (fun i ->
                 let lik =
                   B.sdiv fb (B.shl fb (get2 fb a ~cols:n i k) q) pivot
                 in
                 set2 fb a ~cols:n i k lik;
                 B.for_up fb ~from:(B.add fb k (B.i64 1)) ~to_:(B.i64 n)
                   ~hint:"j" (fun j ->
                     let upd =
                       B.ashr fb (B.mul fb lik (get2 fb a ~cols:n k j)) q
                     in
                     set2 fb a ~cols:n i j
                       (B.sub fb (get2 fb a ~cols:n i j) upd))));
         (* output: trace of U and full-matrix digest *)
         let trace = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"tr" (fun i ->
             B.set fb trace (B.add fb (B.get fb trace) (get2 fb a ~cols:n i i)));
         B.print_i64 fb (B.get fb trace);
         let sum = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n * n)) ~hint:"dg" (fun i ->
             B.set fb sum
               (B.xor fb (B.get fb sum)
                  (B.mul fb (get fb a i) (B.add fb i (B.i64 7)))));
         B.print_i64 fb (B.get fb sum);
         B.ret fb None));
  B.finish t
