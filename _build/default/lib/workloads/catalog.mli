(** The benchmark catalogue: the eight Rodinia kernels of paper Table
    II, re-implemented against the mini-IR builder with deterministic
    in-IR pseudo-random inputs (DESIGN.md §2 documents the
    substitution). *)

type entry = {
  name : string;
  suite : string;
  domain : string;  (** Table II's "Domain" column *)
  build : unit -> Ferrum_ir.Ir.modul;  (** fresh, verified, deterministic *)
}

(** Backprop, BFS, Pathfinder, LUD, Needle, kNN, kmeans,
    Particlefilter — the paper's Table II order. *)
val all : entry list

(** Case-insensitive lookup by name. *)
val find : string -> entry option

val names : string list
