(* Particlefilter (Rodinia, noise estimation): a 1-d particle filter
   tracking a drifting target — propagation with pseudo-random noise,
   likelihood weighting, and systematic resampling over the cumulative
   weight distribution, the same phases as the Rodinia kernel. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n_particles = 40
let steps = 6
let scale = 1024 (* weight fixed-point scale *)

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x9a47f3c5L;
  let x = B.global t "x" ~bytes:(8 * n_particles) in
  let w = B.global t "w" ~bytes:(8 * n_particles) in
  let cdf = B.global t "cdf" ~bytes:(8 * n_particles) in
  let x_new = B.global t "x_new" ~bytes:(8 * n_particles) in
  let truth = B.global t "truth" ~bytes:8 in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.store fb Ir.I64 (B.i64 500) truth;
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles) ~hint:"init"
           (fun i -> set fb x i (B.add fb (B.i64 480) (rand_below fb 40)));
         let estimate_digest = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 steps) ~hint:"step"
           (fun s ->
             (* the target drifts deterministically *)
             let tr = B.load fb Ir.I64 truth in
             let tr' = B.add fb tr (B.sub fb (rand_below fb 21) (B.i64 10)) in
             B.store fb Ir.I64 tr' truth;
             (* propagate particles with noise *)
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"prop" (fun i ->
                 set fb x i
                   (B.add fb (get fb x i)
                      (B.sub fb (rand_below fb 31) (B.i64 15))));
             (* likelihood weights: scale / (1 + |x - obs|) *)
             let obs = B.load fb Ir.I64 truth in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"wgt" (fun i ->
                 let d = abs_ fb (B.sub fb (get fb x i) obs) in
                 set fb w i
                   (B.sdiv fb (B.i64 scale) (B.add fb (B.i64 1) d)));
             (* cumulative distribution *)
             let run = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"cdf" (fun i ->
                 B.set fb run (B.add fb (B.get fb run) (get fb w i));
                 set fb cdf i (B.get fb run));
             (* systematic resampling *)
             let total = B.get fb run in
             let u0 = B.srem fb (rand_below fb scale) total in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"rs" (fun j ->
                 let u =
                   B.srem fb
                     (B.add fb u0
                        (B.sdiv fb (B.mul fb j total) (B.i64 n_particles)))
                     total
                 in
                 let pick = B.local_var fb (B.i64 (n_particles - 1)) in
                 let found = B.local_var fb (B.i64 0) in
                 B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
                   ~hint:"find" (fun i ->
                     let not_found =
                       B.icmp fb Ir.Eq (B.get fb found) (B.i64 0)
                     in
                     B.if_ fb ~hint:"nf" not_found
                       ~then_:(fun () ->
                         let ge = B.icmp fb Ir.Sgt (get fb cdf i) u in
                         B.if_ fb ~hint:"hit" ge
                           ~then_:(fun () ->
                             B.set fb pick i;
                             B.set fb found (B.i64 1))
                           ())
                       ());
                 set fb x_new j (get fb x (B.get fb pick)));
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"copy" (fun i -> set fb x i (get fb x_new i));
             (* state estimate: particle mean *)
             let sum = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_particles)
               ~hint:"est" (fun i ->
                 B.set fb sum (B.add fb (B.get fb sum) (get fb x i)));
             let est = B.sdiv fb (B.get fb sum) (B.i64 n_particles) in
             B.set fb estimate_digest
               (B.add fb (B.get fb estimate_digest)
                  (B.mul fb est (B.add fb s (B.i64 1)))));
         B.print_i64 fb (B.get fb estimate_digest);
         B.print_i64 fb (B.load fb Ir.I64 truth);
         B.ret fb None));
  B.finish t
