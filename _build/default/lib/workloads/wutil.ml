(* Shared workload scaffolding: a deterministic in-IR LCG used by every
   kernel to generate its inputs (no external data loader — the paper's
   Rodinia inputs are replaced by self-contained pseudo-random data with
   the same structural role), plus small array helpers over the builder. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir

let lcg_mul = 6364136223846793005L
let lcg_inc = 1442695040888963407L

(* Add the module-level PRNG: a global cell and @lcg_next which steps it
   and returns a non-negative 31-bit value. *)
let add_lcg t ~seed =
  let state = B.global t "rng_state" ~bytes:8 in
  ignore
    (B.func t "lcg_seed" ~params:[] ~ret:None (fun fb _ ->
         B.store fb Ir.I64 (B.i64' seed) state;
         B.ret fb None));
  ignore
    (B.func t "lcg_next" ~params:[] ~ret:(Some Ir.I64) (fun fb _ ->
         let s = B.load fb Ir.I64 state in
         let s2 =
           B.add fb (B.binop fb Ir.Mul Ir.I64 s (B.i64' lcg_mul)) (B.i64' lcg_inc)
         in
         B.store fb Ir.I64 s2 state;
         let r = B.binop fb Ir.Lshr Ir.I64 s2 (B.i64 33) in
         B.ret fb (Some r)))

(* Next pseudo-random value in [0, n). *)
let rand_below fb n =
  let v = B.call_v fb "lcg_next" [] in
  B.srem fb v (B.i64 n)

(* a[i] where a holds i64 elements. *)
let get fb arr i = B.load fb Ir.I64 (B.gep fb arr i ~scale:8)

let set fb arr i v = B.store fb Ir.I64 v (B.gep fb arr i ~scale:8)

(* a[i][j] for a row-major matrix with [cols] columns. *)
let get2 fb arr ~cols i j =
  get fb arr (B.add fb (B.mul fb i (B.i64 cols)) j)

let set2 fb arr ~cols i j v =
  set fb arr (B.add fb (B.mul fb i (B.i64 cols)) j) v

(* Minimum of two values, through memory as clang -O0 would. *)
let min_ fb a b =
  let m = B.local_var fb a in
  let c = B.icmp fb Ir.Slt b a in
  B.if_ fb ~hint:"min" c ~then_:(fun () -> B.set fb m b) ();
  B.get fb m

let max_ fb a b =
  let m = B.local_var fb a in
  let c = B.icmp fb Ir.Sgt b a in
  B.if_ fb ~hint:"max" c ~then_:(fun () -> B.set fb m b) ();
  B.get fb m

(* |a| *)
let abs_ fb a =
  let m = B.local_var fb a in
  let c = B.icmp fb Ir.Slt a (B.i64 0) in
  B.if_ fb ~hint:"abs" c ~then_:(fun () -> B.set fb m (B.sub fb (B.i64 0) a)) ();
  B.get fb m
