(* Backprop (Rodinia, machine learning): one hidden layer perceptron
   trained with fixed-point (Q8) gradient steps on pseudo-random data.
   Mirrors the Rodinia kernel's structure: dense forward passes over
   weight matrices, error back-propagation, and weight updates. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n_in = 8
let n_hid = 6
let n_out = 4
let epochs = 3
let q = 8 (* fixed-point shift *)

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x9a3cf2d1L;
  let w1 = B.global t "w1" ~bytes:(8 * n_in * n_hid) in
  let w2 = B.global t "w2" ~bytes:(8 * n_hid * n_out) in
  let x = B.global t "x" ~bytes:(8 * n_in) in
  let hidden = B.global t "hidden" ~bytes:(8 * n_hid) in
  let out = B.global t "out" ~bytes:(8 * n_out) in
  let target = B.global t "target" ~bytes:(8 * n_out) in
  let delta_out = B.global t "delta_out" ~bytes:(8 * n_out) in
  let delta_hid = B.global t "delta_hid" ~bytes:(8 * n_hid) in

  (* squashing function: x / (1 + |x|/2^q), a division-based sigmoid
     stand-in keeping everything in integers *)
  ignore
    (B.func t "squash" ~params:[ Ir.I64 ] ~ret:(Some Ir.I64) (fun fb args ->
         let v = List.nth args 0 in
         let denom = B.add fb (B.i64 (1 lsl q)) (abs_ fb v) in
         let scaled = B.shl fb v q in
         B.ret fb (Some (B.sdiv fb scaled denom))));

  ignore
    (B.func t "forward" ~params:[] ~ret:None (fun fb _ ->
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_hid) ~hint:"fh" (fun j ->
             let acc = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_in) ~hint:"fi"
               (fun i ->
                 let wij = get2 fb w1 ~cols:n_hid i j in
                 let xi = get fb x i in
                 let prod = B.ashr fb (B.mul fb wij xi) q in
                 B.set fb acc (B.add fb (B.get fb acc) prod));
             let h = B.call_v fb "squash" [ B.get fb acc ] in
             set fb hidden j h);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"fo" (fun k ->
             let acc = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_hid) ~hint:"fh2"
               (fun j ->
                 let wjk = get2 fb w2 ~cols:n_out j k in
                 let hj = get fb hidden j in
                 B.set fb acc
                   (B.add fb (B.get fb acc) (B.ashr fb (B.mul fb wjk hj) q)));
             set fb out k (B.call_v fb "squash" [ B.get fb acc ]));
         B.ret fb None));

  ignore
    (B.func t "backward" ~params:[] ~ret:None (fun fb _ ->
         (* output deltas *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"bo" (fun k ->
             let err = B.sub fb (get fb target k) (get fb out k) in
             set fb delta_out k err);
         (* hidden deltas *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_hid) ~hint:"bh" (fun j ->
             let acc = B.local_var fb (B.i64 0) in
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"bh2"
               (fun k ->
                 let wjk = get2 fb w2 ~cols:n_out j k in
                 let dk = get fb delta_out k in
                 B.set fb acc
                   (B.add fb (B.get fb acc) (B.ashr fb (B.mul fb wjk dk) q)));
             set fb delta_hid j (B.get fb acc));
         (* weight updates, learning rate 1/8 in fixed point *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_hid) ~hint:"u2" (fun j ->
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"u2k"
               (fun k ->
                 let dw =
                   B.ashr fb (B.mul fb (get fb delta_out k) (get fb hidden j))
                     (q + 3)
                 in
                 set2 fb w2 ~cols:n_out j k
                   (B.add fb (get2 fb w2 ~cols:n_out j k) dw)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_in) ~hint:"u1" (fun i ->
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_hid) ~hint:"u1j"
               (fun j ->
                 let dw =
                   B.ashr fb (B.mul fb (get fb delta_hid j) (get fb x i))
                     (q + 3)
                 in
                 set2 fb w1 ~cols:n_hid i j
                   (B.add fb (get2 fb w1 ~cols:n_hid i j) dw)));
         B.ret fb None));

  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         (* initialise weights and input in [-128, 127] (about +-0.5 Q8) *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_in * n_hid)) ~hint:"iw1"
           (fun i -> set fb w1 i (B.sub fb (rand_below fb 256) (B.i64 128)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_hid * n_out)) ~hint:"iw2"
           (fun i -> set fb w2 i (B.sub fb (rand_below fb 256) (B.i64 128)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_in) ~hint:"ix" (fun i ->
             set fb x i (B.sub fb (rand_below fb 512) (B.i64 256)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"it" (fun k ->
             set fb target k (B.sub fb (rand_below fb 256) (B.i64 128)));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 epochs) ~hint:"ep" (fun _ ->
             ignore (B.call fb "forward" []);
             ignore (B.call fb "backward" []));
         (* observable output: final network outputs and weight digest *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_out) ~hint:"po" (fun k ->
             B.print_i64 fb (get fb out k));
         let sum = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_in * n_hid)) ~hint:"s1"
           (fun i ->
             B.set fb sum
               (B.xor fb (B.get fb sum)
                  (B.add fb (get fb w1 i) (B.mul fb i (B.i64 31)))));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_hid * n_out)) ~hint:"s2"
           (fun i ->
             B.set fb sum
               (B.xor fb (B.get fb sum)
                  (B.add fb (get fb w2 i) (B.mul fb i (B.i64 17)))));
         B.print_i64 fb (B.get fb sum);
         B.ret fb None));
  B.finish t
