(* kmeans (Rodinia, data mining): Lloyd iterations over 2-d integer
   points — assignment to the nearest centroid by squared distance, then
   centroid recomputation with integer division by cluster size. *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
open Wutil

let n_points = 48
let n_clusters = 4
let dims = 2
let iterations = 4

let modul () =
  let t = B.create () in
  add_lcg t ~seed:0x6b6d65616eL;
  let pts = B.global t "pts" ~bytes:(8 * n_points * dims) in
  let centroid = B.global t "centroid" ~bytes:(8 * n_clusters * dims) in
  let member = B.global t "member" ~bytes:(8 * n_points) in
  let accum = B.global t "accum" ~bytes:(8 * n_clusters * dims) in
  let count = B.global t "count" ~bytes:(8 * n_clusters) in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_points * dims))
           ~hint:"gen" (fun i -> set fb pts i (rand_below fb 1024));
         (* initial centroids: first K points *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_clusters * dims))
           ~hint:"ic" (fun i -> set fb centroid i (get fb pts i));
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 iterations) ~hint:"iter"
           (fun _ ->
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_clusters * dims))
               ~hint:"za" (fun i -> set fb accum i (B.i64 0));
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_clusters) ~hint:"zc"
               (fun c -> set fb count c (B.i64 0));
             (* assignment step *)
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_points) ~hint:"as"
               (fun i ->
                 let best = B.local_var fb (B.i64 0) in
                 let best_d = B.local_var fb (B.i64 max_int) in
                 B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_clusters)
                   ~hint:"cl" (fun c ->
                     let acc = B.local_var fb (B.i64 0) in
                     B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dims)
                       ~hint:"dim" (fun d ->
                         let diff =
                           B.sub fb
                             (get2 fb pts ~cols:dims i d)
                             (get2 fb centroid ~cols:dims c d)
                         in
                         B.set fb acc
                           (B.add fb (B.get fb acc) (B.mul fb diff diff)));
                     let closer =
                       B.icmp fb Ir.Slt (B.get fb acc) (B.get fb best_d)
                     in
                     B.if_ fb ~hint:"closer" closer
                       ~then_:(fun () ->
                         B.set fb best_d (B.get fb acc);
                         B.set fb best c)
                       ());
                 set fb member i (B.get fb best);
                 let c = B.get fb best in
                 set fb count c (B.add fb (get fb count c) (B.i64 1));
                 B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dims) ~hint:"upd"
                   (fun d ->
                     set2 fb accum ~cols:dims c d
                       (B.add fb
                          (get2 fb accum ~cols:dims c d)
                          (get2 fb pts ~cols:dims i d))));
             (* update step: mean with integer division, empty clusters
                keep their centroid *)
             B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_clusters) ~hint:"up"
               (fun c ->
                 let nonempty =
                   B.icmp fb Ir.Sgt (get fb count c) (B.i64 0)
                 in
                 B.if_ fb ~hint:"nonempty" nonempty
                   ~then_:(fun () ->
                     B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 dims)
                       ~hint:"mean" (fun d ->
                         set2 fb centroid ~cols:dims c d
                           (B.sdiv fb
                              (get2 fb accum ~cols:dims c d)
                              (get fb count c))))
                   ()));
         (* output: centroids, sizes and membership digest *)
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 (n_clusters * dims))
           ~hint:"oc" (fun i -> B.print_i64 fb (get fb centroid i));
         let digest = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n_points) ~hint:"om"
           (fun i ->
             B.set fb digest
               (B.add fb (B.get fb digest)
                  (B.mul fb (get fb member i) (B.add fb i (B.i64 1)))));
         B.print_i64 fb (B.get fb digest);
         B.ret fb None));
  B.finish t
