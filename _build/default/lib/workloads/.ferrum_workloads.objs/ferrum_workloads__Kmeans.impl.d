lib/workloads/kmeans.ml: Ferrum_ir Wutil
