lib/workloads/backprop.mli: Ferrum_ir
