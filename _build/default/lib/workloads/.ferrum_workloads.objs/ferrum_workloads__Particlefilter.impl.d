lib/workloads/particlefilter.ml: Ferrum_ir Wutil
