lib/workloads/wutil.ml: Ferrum_ir
