lib/workloads/lud.mli: Ferrum_ir
