lib/workloads/backprop.ml: Ferrum_ir List Wutil
