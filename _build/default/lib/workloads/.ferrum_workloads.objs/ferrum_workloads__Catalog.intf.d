lib/workloads/catalog.mli: Ferrum_ir
