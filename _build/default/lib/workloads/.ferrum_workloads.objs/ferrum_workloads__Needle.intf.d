lib/workloads/needle.mli: Ferrum_ir
