lib/workloads/pathfinder.ml: Ferrum_ir Wutil
