lib/workloads/catalog.ml: Backprop Bfs Ferrum_ir Kmeans Knn List Lud Needle Particlefilter Pathfinder String
