lib/workloads/lud.ml: Ferrum_ir Wutil
