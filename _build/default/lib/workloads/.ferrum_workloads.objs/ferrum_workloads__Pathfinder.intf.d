lib/workloads/pathfinder.mli: Ferrum_ir
