lib/workloads/knn.ml: Ferrum_ir Wutil
