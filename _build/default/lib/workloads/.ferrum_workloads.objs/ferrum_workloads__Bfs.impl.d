lib/workloads/bfs.ml: Ferrum_ir Wutil
