lib/workloads/particlefilter.mli: Ferrum_ir
