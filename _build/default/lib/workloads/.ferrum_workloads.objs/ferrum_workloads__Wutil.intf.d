lib/workloads/wutil.mli: Ferrum_ir
