lib/workloads/kmeans.mli: Ferrum_ir
