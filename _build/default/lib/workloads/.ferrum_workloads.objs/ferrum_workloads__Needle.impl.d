lib/workloads/needle.ml: Ferrum_ir Wutil
