lib/workloads/bfs.mli: Ferrum_ir
