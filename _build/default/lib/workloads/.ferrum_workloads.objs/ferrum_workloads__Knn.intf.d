lib/workloads/knn.mli: Ferrum_ir
