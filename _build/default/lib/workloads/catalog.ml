(* The benchmark catalogue: the eight Rodinia kernels of paper Table II,
   re-implemented against the mini-IR builder (see DESIGN.md §2 for the
   substitution rationale). *)

type entry = {
  name : string;
  suite : string;
  domain : string; (* Table II's "Domain" column *)
  build : unit -> Ferrum_ir.Ir.modul;
}

let all =
  [
    { name = "Backprop"; suite = "Rodinia"; domain = "Machine Learning";
      build = Backprop.modul };
    { name = "BFS"; suite = "Rodinia"; domain = "Graph Algorithm";
      build = Bfs.modul };
    { name = "Pathfinder"; suite = "Rodinia"; domain = "Dynamic Programming";
      build = Pathfinder.modul };
    { name = "LUD"; suite = "Rodinia"; domain = "Linear Algebra";
      build = Lud.modul };
    { name = "Needle"; suite = "Rodinia"; domain = "Dynamic Programming";
      build = Needle.modul };
    { name = "kNN"; suite = "Rodinia"; domain = "Machine Learning";
      build = Knn.modul };
    { name = "kmeans"; suite = "Rodinia"; domain = "Data Mining";
      build = Kmeans.modul };
    { name = "Particlefilter"; suite = "Rodinia"; domain = "Noise estimator";
      build = Particlefilter.modul };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    all

let names = List.map (fun e -> e.name) all
