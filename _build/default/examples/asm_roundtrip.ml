(* Text round-trip: a FERRUM-protected program survives printing to
   AT&T syntax (with provenance comments) and re-parsing, and the
   re-parsed program behaves identically in the simulator.  This is the
   path an external tool would use to inspect or post-process the
   protected assembly.

     dune exec examples/asm_roundtrip.exe *)

module Machine = Ferrum_machine.Machine
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
open Ferrum_asm

let () =
  let e =
    match Ferrum_workloads.Catalog.find "Needle" with
    | Some e -> e
    | None -> assert false
  in
  let prot = Pipeline.protect Technique.Ferrum (e.build ()) in
  let text = Printer.program_to_string prot.program in
  Fmt.pr "protected Needle: %d instructions, %d characters of assembly@."
    (Prog.num_instructions prot.program)
    (String.length text);

  let reparsed = Parser.program text in
  Prog.validate reparsed;
  assert (Prog.num_instructions reparsed = Prog.num_instructions prot.program);
  let o1, _ = Machine.run_fresh (Machine.load prot.program) in
  let o2, _ = Machine.run_fresh (Machine.load reparsed) in
  assert (Machine.equal_outcome o1 o2);
  Fmt.pr "round-trip outcome unchanged: %a@." Machine.pp_outcome o1;

  (* provenance survives the round trip via the trailing comments *)
  let o, d, c, i = Prog.provenance_counts reparsed in
  Fmt.pr "provenance after reparse: original=%d dup=%d check=%d instr=%d@."
    o d c i;
  let o', d', c', i' = Prog.provenance_counts prot.program in
  assert ((o, d, c, i) = (o', d', c', i'));
  Fmt.pr "sample of the text around the first SIMD flush:@.";
  (* show a window containing a vptest *)
  let lines = String.split_on_char '\n' text in
  let rec find i = function
    | [] -> ()
    | l :: rest ->
      if
        String.length l > 6
        && String.trim l |> fun s ->
           String.length s >= 6 && String.sub s 0 6 = "vptest"
      then
        List.iteri
          (fun k line -> if k >= i - 8 && k <= i + 1 then print_endline line)
          lines
      else find (i + 1) rest
  in
  find 0 lines
