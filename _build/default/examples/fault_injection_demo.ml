(* Fault-injection walkthrough on a real workload (BFS): sweep one bit
   flip over many dynamic injection sites of the unprotected and the
   FERRUM-protected binary, and show how the outcome distribution moves
   from silent data corruption to detection.

     dune exec examples/fault_injection_demo.exe *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

let demo_program name program =
  let img = Machine.load program in
  let target = F.prepare img in
  Fmt.pr "@.[%s] golden output: %a@." name
    Fmt.(list ~sep:(any " ") int64)
    target.F.golden_output;
  Fmt.pr "[%s] %d dynamic instructions, %d eligible injection sites@." name
    target.F.golden_steps target.F.eligible_steps;
  (* deterministic sweep: 12 sites spread evenly over the execution *)
  let rng = Ferrum_faultsim.Rng.create ~seed:11L in
  List.init 12 (fun k ->
      let dyn_index = k * target.F.eligible_steps / 12 in
      let cls, fault = F.inject target rng ~dyn_index in
      Fmt.pr "  site %8d  %-12s bit %2d  -> %s@." fault.F.dyn_index
        fault.F.dest_desc fault.F.bit
        (F.classification_name cls);
      cls)

let () =
  let e =
    match Ferrum_workloads.Catalog.find "BFS" with
    | Some e -> e
    | None -> assert false
  in
  let m = e.build () in
  let raw_outcomes = demo_program "raw" (Pipeline.raw m).program in
  let prot_outcomes =
    demo_program "ferrum" (Pipeline.protect Technique.Ferrum m).program
  in
  let count cls l = List.length (List.filter (( = ) cls) l) in
  Fmt.pr "@.raw:    %d sdc, %d detected of 12@." (count F.Sdc raw_outcomes)
    (count F.Detected raw_outcomes);
  Fmt.pr "ferrum: %d sdc, %d detected of 12@."
    (count F.Sdc prot_outcomes)
    (count F.Detected prot_outcomes);
  assert (count F.Sdc prot_outcomes = 0)
