(* Quickstart: write a small kernel against the IR builder, compile it,
   protect it with FERRUM, and execute both versions in the simulator.

     dune exec examples/quickstart.exe *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
module Machine = Ferrum_machine.Machine
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

(* sum of squares 1..n, printed via the builtin print_i64 *)
let build_module () =
  let t = B.create () in
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         let acc = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 1) ~to_:(B.i64 101) ~hint:"i" (fun i ->
             B.set fb acc (B.add fb (B.get fb acc) (B.mul fb i i)));
         B.print_i64 fb (B.get fb acc);
         B.ret fb None));
  B.finish t

let () =
  let m = build_module () in
  Fmt.pr "--- mini-IR ---@.%s@." (Ir.to_string m);

  (* compile unprotected and run *)
  let raw = Pipeline.raw m in
  let outcome, st = Machine.run_fresh (Machine.load raw.program) in
  Fmt.pr "unprotected: %a in %d instructions, %.0f model cycles@."
    Machine.pp_outcome outcome st.Machine.steps st.Machine.cycles;

  (* protect with FERRUM and run again: same output, full duplication *)
  let prot = Pipeline.protect Technique.Ferrum m in
  let outcome', st' = Machine.run_fresh (Machine.load prot.program) in
  Fmt.pr "FERRUM:      %a in %d instructions, %.0f model cycles@."
    Machine.pp_outcome outcome' st'.Machine.steps st'.Machine.cycles;
  assert (Machine.equal_outcome outcome outcome');

  let stats = Ferrum_asm.Stats.of_program prot.program in
  Fmt.pr "@.protected program: %a" Ferrum_asm.Stats.pp stats;
  Fmt.pr "runtime overhead under the cycle model: %+.1f%%@."
    (100.0 *. (st'.Machine.cycles -. st.Machine.cycles) /. st.Machine.cycles);
  Fmt.pr "@.first 25 lines of protected assembly:@.";
  let text = Ferrum_asm.Printer.program_to_string prot.program in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 25)
  |> List.iter print_endline
