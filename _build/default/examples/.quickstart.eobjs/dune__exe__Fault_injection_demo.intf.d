examples/fault_injection_demo.mli:
