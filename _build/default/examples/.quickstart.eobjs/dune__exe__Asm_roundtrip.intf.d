examples/asm_roundtrip.mli:
