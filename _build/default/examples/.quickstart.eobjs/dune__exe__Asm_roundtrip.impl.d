examples/asm_roundtrip.ml: Ferrum_asm Ferrum_eddi Ferrum_machine Ferrum_workloads Fmt List Parser Printer Prog String
