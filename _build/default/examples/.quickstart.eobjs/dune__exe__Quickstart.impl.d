examples/quickstart.ml: Ferrum_asm Ferrum_eddi Ferrum_ir Ferrum_machine Fmt List String
