examples/quickstart.mli:
