examples/protect_c_kernel.ml: Array Ferrum_asm Ferrum_clite Ferrum_eddi Ferrum_faultsim Ferrum_ir Ferrum_machine Ferrum_report Filename Fmt List Sys
