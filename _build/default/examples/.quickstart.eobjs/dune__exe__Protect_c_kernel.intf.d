examples/protect_c_kernel.mli:
