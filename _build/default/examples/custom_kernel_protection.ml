(* Protecting your own kernel: a fixed-point dot product with an
   outlier-rejection loop, run through all three techniques with a
   small seeded campaign each — the complete workflow a user of this
   library would follow for their own code.

     dune exec examples/custom_kernel_protection.exe *)

module B = Ferrum_ir.Builder
module Ir = Ferrum_ir.Ir
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

let n = 64

let build_module () =
  let t = B.create () in
  Ferrum_workloads.Wutil.add_lcg t ~seed:0xd07d07L;
  let xs = B.global t "xs" ~bytes:(8 * n) in
  let ys = B.global t "ys" ~bytes:(8 * n) in
  ignore
    (B.func t "dot" ~params:[ Ir.Ptr; Ir.Ptr ] ~ret:(Some Ir.I64)
       (fun fb args ->
         let a = List.nth args 0 and b = List.nth args 1 in
         let acc = B.local_var fb (B.i64 0) in
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"i" (fun i ->
             let xi = B.load fb Ir.I64 (B.gep fb a i ~scale:8) in
             let yi = B.load fb Ir.I64 (B.gep fb b i ~scale:8) in
             let prod = B.ashr fb (B.mul fb xi yi) 8 in
             (* outlier rejection: skip products above a threshold *)
             let small = B.icmp fb Ir.Slt prod (B.i64 200_000) in
             B.if_ fb ~hint:"keep" small
               ~then_:(fun () ->
                 B.set fb acc (B.add fb (B.get fb acc) prod))
               ());
         B.ret fb (Some (B.get fb acc))));
  ignore
    (B.func t "main" ~params:[] ~ret:None (fun fb _ ->
         ignore (B.call fb "lcg_seed" []);
         B.for_up fb ~from:(B.i64 0) ~to_:(B.i64 n) ~hint:"gen" (fun i ->
             Ferrum_workloads.Wutil.set fb xs i
               (Ferrum_workloads.Wutil.rand_below fb 4096);
             Ferrum_workloads.Wutil.set fb ys i
               (Ferrum_workloads.Wutil.rand_below fb 4096));
         B.print_i64 fb (B.call_v fb "dot" [ xs; ys ]);
         B.ret fb None));
  B.finish t

let () =
  let m = build_module () in
  Ferrum_ir.Verify.run m;
  let raw_img = Machine.load (Pipeline.raw m).program in
  let samples = 250 in
  let raw = (F.campaign ~seed:3L ~samples raw_img).F.counts in
  Fmt.pr "raw       %a@." F.pp_counts raw;
  List.iter
    (fun t ->
      let r = Pipeline.protect t m in
      let img = Machine.load r.program in
      let golden = Machine.golden img in
      let c = (F.campaign ~seed:3L ~samples img).F.counts in
      Fmt.pr "%-9s %a  coverage=%s  overhead=%+.1f%%@."
        (Technique.short_name t) F.pp_counts c
        (Ferrum_report.Ascii.percent (F.sdc_coverage ~raw ~protected_:c))
        (100.0
        *. F.overhead
             ~raw_cycles:(Machine.golden raw_img).Machine.cycles
             ~prot_cycles:golden.Machine.cycles))
    Technique.all
