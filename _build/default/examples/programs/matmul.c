// C-lite: fixed-point matrix multiply with a digest, in the style of
// the Rodinia kernels.  Compiled by ferrum_clite, protected by FERRUM.

long a[64];
long b[64];
long c[64];
long rng;

long next_rand() {
  rng = rng * 6364136223846793005 + 1442695040888963407;
  return (rng >> 33) & 0x7fffffff;
}

void init() {
  rng = 42;
  for (long i = 0; i < 64; i = i + 1) {
    a[i] = next_rand() % 100;
    b[i] = next_rand() % 100;
    c[i] = 0;
  }
}

void matmul(long n) {
  for (long i = 0; i < n; i = i + 1) {
    for (long j = 0; j < n; j = j + 1) {
      long acc = 0;
      for (long k = 0; k < n; k = k + 1) {
        acc = acc + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

void main() {
  init();
  matmul(8);
  long digest = 0;
  for (long i = 0; i < 64; i = i + 1) {
    digest = digest ^ (c[i] + i * 31);
  }
  print(digest);
  print(c[0]);
  print(c[63]);
}
