// C-lite: insertion sort + binary search, exercising nested control
// flow, early exit (break) and short-circuit conditions.

long data[48];
long seed;

long rand_step() {
  seed = seed * 25214903917 + 11;
  return (seed >> 16) & 0xffff;
}

void fill() {
  seed = 7;
  for (long i = 0; i < 48; i = i + 1) {
    data[i] = rand_step();
  }
}

void insertion_sort(long n) {
  for (long i = 1; i < n; i = i + 1) {
    long key = data[i];
    long j = i - 1;
    while (j >= 0 && data[j] > key) {
      data[j + 1] = data[j];
      j = j - 1;
    }
    data[j + 1] = key;
  }
}

long binary_search(long n, long needle) {
  long lo = 0;
  long hi = n - 1;
  while (lo <= hi) {
    long mid = (lo + hi) / 2;
    if (data[mid] == needle) {
      return mid;
    }
    if (data[mid] < needle) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return 0 - 1;
}

void main() {
  fill();
  insertion_sort(48);
  long sorted = 1;
  for (long i = 1; i < 48; i = i + 1) {
    if (data[i - 1] > data[i]) {
      sorted = 0;
      break;
    }
  }
  print(sorted);
  print(data[0]);
  print(data[47]);
  print(binary_search(48, data[17]));
  print(binary_search(48, 0 - 5));
}
