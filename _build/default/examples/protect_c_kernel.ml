(* The full pipeline over C source: compile a C-lite kernel, protect it
   with each technique, and measure coverage and overhead — what a user
   would do to harden their own code.

     dune exec examples/protect_c_kernel.exe [FILE.c] *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

let default_file = "examples/programs/matmul.c"

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_file in
  let file = if Sys.file_exists file then file else Filename.concat ".." file in
  let m = Ferrum_clite.Clite.compile_file file in
  Fmt.pr "compiled %s: %d IR instructions@." file
    (Ferrum_ir.Ir.num_instructions m);
  let raw = Pipeline.raw m in
  let raw_img = Machine.load raw.program in
  let raw_golden = Machine.golden raw_img in
  Fmt.pr "unprotected: %a (%d dynamic instructions)@." Machine.pp_outcome
    raw_golden.Machine.outcome raw_golden.Machine.dyn_instructions;
  let samples = 250 in
  let raw_counts = (F.campaign ~seed:21L ~samples raw_img).F.counts in
  Fmt.pr "raw faults:  %a@." F.pp_counts raw_counts;
  List.iter
    (fun t ->
      let r = Pipeline.protect t m in
      let img = Machine.load r.program in
      let g = Machine.golden img in
      assert (Machine.equal_outcome g.Machine.outcome raw_golden.Machine.outcome);
      let c = (F.campaign ~seed:21L ~samples img).F.counts in
      Fmt.pr "%-9s coverage=%s overhead=%+.1f%% (%d static instrs)@."
        (Technique.short_name t)
        (Ferrum_report.Ascii.percent
           (F.sdc_coverage ~raw:raw_counts ~protected_:c))
        (100.0
        *. F.overhead ~raw_cycles:raw_golden.Machine.cycles
             ~prot_cycles:g.Machine.cycles)
        (Ferrum_asm.Prog.num_instructions r.program))
    Technique.all
