CLI = dune exec --display=quiet bin/ferrum_cli.exe --
BENCH = dune exec --display=quiet bench/main.exe --
SMOKE = /tmp/ferrum_smoke.jsonl
VMAP = /tmp/ferrum_vulnmap.jsonl
LINTM = /tmp/ferrum_lint.jsonl
CAMP = /tmp/ferrum_campaign
STATS = /tmp/ferrum_stats
TRACE = /tmp/ferrum_trace

.PHONY: all build test fmt smoke lint campaign stats-smoke trace-smoke serve-smoke perf bench-snapshot check clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is optional in the dev image; dune files are always checked.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not found: checking dune files only"; \
	  out=$$(dune fmt 2>&1 | grep -v -e ocamlformat -e 'required by' -e context || true); \
	  if [ -n "$$out" ]; then echo "$$out"; echo "dune files were not formatted"; exit 1; fi; \
	fi

# End-to-end smoke: small campaigns must produce schema-valid,
# seed-reproducible metrics and vulnerability-map streams, and the
# propagation tracer must explain a replayed sample.
smoke: build
	$(CLI) inject kmeans -p ferrum --samples 20 --metrics $(SMOKE)
	$(CLI) metrics $(SMOKE)
	$(CLI) inject kmeans -p ferrum --samples 20 --metrics $(SMOKE).2 > /dev/null
	cmp $(SMOKE) $(SMOKE).2
	$(CLI) vulnmap kmeans -p ferrum --samples 20 --metrics $(VMAP) --only-sampled > /dev/null
	$(CLI) metrics $(VMAP)
	$(CLI) vulnmap kmeans -p ferrum --samples 20 --metrics $(VMAP).2 > /dev/null
	cmp $(VMAP) $(VMAP).2
	$(CLI) explain kmeans -p ferrum --fault 2024:0 > /dev/null
	@echo "smoke: metrics valid and reproducible"

# Static protection verifier: the whole catalogue must lint with zero
# error-severity findings under every technique, and the exported
# JSONL must validate and be byte-reproducible.
lint: build
	@set -e; for b in $$($(CLI) list | awk '{print $$1}'); do \
	  for t in ir-eddi hybrid ferrum; do \
	    $(CLI) lint $$b -p $$t > /dev/null || \
	      { echo "lint: $$b/$$t has error findings"; exit 1; }; \
	  done; \
	done
	$(CLI) lint kmeans -p ferrum --metrics $(LINTM) > /dev/null
	$(CLI) metrics $(LINTM)
	$(CLI) lint kmeans -p ferrum --metrics $(LINTM).2 > /dev/null
	cmp $(LINTM) $(LINTM).2
	@echo "lint: catalogue clean under all techniques"

# Sharded campaign smoke: a 2-shard fork-pool run must produce a
# schema-valid event log, byte-reproducible run files, and injection
# output byte-identical to the sequential campaign.
campaign: build
	rm -rf $(CAMP) $(CAMP).2
	$(CLI) campaign kmeans -p ferrum --samples 40 --shards 2 \
	  --out $(CAMP) --html $(CAMP).html > /dev/null
	$(CLI) metrics $(CAMP)/events.jsonl
	$(CLI) metrics $(CAMP)/injection.jsonl > /dev/null
	$(CLI) metrics $(CAMP)/vulnmap.jsonl > /dev/null
	$(CLI) campaign kmeans -p ferrum --samples 40 --shards 2 \
	  --out $(CAMP).2 > /dev/null
	cmp $(CAMP)/injection.jsonl $(CAMP).2/injection.jsonl
	cmp $(CAMP)/vulnmap.jsonl $(CAMP).2/vulnmap.jsonl
	cmp $(CAMP)/events.jsonl $(CAMP).2/events.jsonl
	$(CLI) inject kmeans -p ferrum --samples 40 --metrics $(CAMP).seq > /dev/null
	cmp $(CAMP)/injection.jsonl $(CAMP).seq
	@echo "campaign: sharded run valid, reproducible and sequential-identical"

# Confidence-telemetry smoke: an adaptive vulnmap campaign must emit a
# schema-valid, byte-reproducible ferrum.stats.v1 stream, and a flat
# run of the same workload must agree with it (overlapping Wilson
# intervals — `ferrum stats A B` exits 1 on significant drift).
stats-smoke: build
	$(CLI) vulnmap kmeans -p ferrum --samples 60 --adaptive --rounds 3 \
	  --stats $(STATS).jsonl > /dev/null
	$(CLI) metrics $(STATS).jsonl
	$(CLI) vulnmap kmeans -p ferrum --samples 60 --adaptive --rounds 3 \
	  --stats $(STATS).2.jsonl > /dev/null
	cmp $(STATS).jsonl $(STATS).2.jsonl
	$(CLI) vulnmap kmeans -p ferrum --samples 60 \
	  --stats $(STATS).flat.jsonl > /dev/null
	$(CLI) stats $(STATS).jsonl $(STATS).flat.jsonl
	@echo "stats-smoke: confidence stream valid, reproducible, drift-free"

# Distributed-tracing smoke: a 2-shard campaign must yield one stitched
# ferrum.trace.v1 document (single root, resolvable parent chains) whose
# logical rows are byte-identical across reruns, and the exporters must
# emit loadable Perfetto JSON and folded flamegraph stacks.
trace-smoke: build
	rm -rf $(TRACE).d $(TRACE).d2
	$(CLI) campaign kmeans -p ferrum --samples 40 --shards 2 \
	  --out $(TRACE).d --trace $(TRACE).jsonl > /dev/null
	$(CLI) metrics $(TRACE).jsonl
	$(CLI) trace-export $(TRACE).d --perfetto $(TRACE).perfetto.json \
	  --folded $(TRACE).folded
	grep -q traceEvents $(TRACE).perfetto.json
	grep -q "campaign;" $(TRACE).folded
	$(CLI) campaign kmeans -p ferrum --samples 40 --shards 2 \
	  --out $(TRACE).d2 > /dev/null
	cmp $(TRACE).jsonl $(TRACE).d2/trace.jsonl
	@echo "trace-smoke: stitched, reproducible, exporters loadable"

# Campaign-service smoke: daemon + job queue + live SSE (replay-valid)
# + content-addressed store cache hit with byte-identical artifacts.
serve-smoke: build
	sh scripts/serve_smoke.sh

# Injection-engine throughput smoke (E16): the checkpointed engine must
# be at least as fast as the scratch path, and all engines must agree on
# outcome counts.
perf: build
	$(BENCH) perf --smoke --samples 300

# Append-only benchmark snapshots: writes the next free BENCH_<n>.json
# (ferrum.bench.v1) from a small seeded run.
bench-snapshot: build
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	$(BENCH) --samples 60 --metrics BENCH_$$n.json > /dev/null && \
	$(CLI) metrics BENCH_$$n.json && \
	echo "bench-snapshot: wrote BENCH_$$n.json"

check: fmt build test smoke lint campaign stats-smoke trace-smoke serve-smoke perf

clean:
	dune clean
	rm -f $(SMOKE) $(SMOKE).2 $(VMAP) $(VMAP).2 $(LINTM) $(LINTM).2
	rm -f $(STATS).jsonl $(STATS).2.jsonl $(STATS).flat.jsonl
	rm -f $(TRACE).jsonl $(TRACE).jsonl.wall $(TRACE).perfetto.json $(TRACE).folded
	rm -rf $(CAMP) $(CAMP).2 $(CAMP).html $(CAMP).seq $(TRACE).d $(TRACE).d2
