(* Tests for the pre-decoded threaded dispatcher: decode round-trip
   identity against the legacy interpreter (final state, retirement
   stream, single-stepping), superinstruction fusion boundary cases
   (join targets, avoid masks, fuel running out mid-pair, resuming at a
   pair's second half), the [enabled := false] fallback, the dispatch
   counters, and classification/vulnmap identity of the fault-injection
   engines whichever dispatcher runs. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Predecode = Ferrum_machine.Predecode
module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Catalog = Ferrum_workloads.Catalog

let original = Instr.original

(* A loop fixture: flag-setting ALU traffic, a conditional back edge
   (so cmp+jcc fuses on a loop-carried pair), memory stores and a
   print.  Small enough to single-step exhaustively. *)
let loop_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RAX));
              original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RCX)) ];
          Prog.block "loop"
            [ original
                (Instr.Alu
                   (Instr.Add, Reg.Q, Instr.Reg Reg.RCX, Instr.Reg Reg.RAX));
              original
                (Instr.Mov
                   ( Reg.Q, Instr.Reg Reg.RAX,
                     Instr.Mem (Instr.mem ~index:Reg.RCX ~scale:8 3600) ));
              original
                (Instr.Alu (Instr.Add, Reg.Q, Instr.Imm 1L, Instr.Reg Reg.RCX));
              original (Instr.Cmp (Reg.Q, Instr.Imm 50L, Instr.Reg Reg.RCX));
              original (Instr.Jcc (Cond.NE, "loop")) ];
          Prog.block "done"
            [ original
                (Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RDI));
              original (Instr.Call "print_i64");
              original Instr.Ret ] ] ]

(* ---- helpers ---- *)

let check_state_eq name (want : Machine.state) (got : Machine.state) =
  Alcotest.(check (array int64)) (name ^ ": gpr")
    (Machine.dump_regfile want.Machine.gpr)
    (Machine.dump_regfile got.Machine.gpr);
  Alcotest.(check (array int64)) (name ^ ": simd")
    (Machine.dump_regfile want.Machine.simd)
    (Machine.dump_regfile got.Machine.simd);
  Alcotest.(check bool) (name ^ ": zf") want.Machine.zf got.Machine.zf;
  Alcotest.(check bool) (name ^ ": sf") want.Machine.sf got.Machine.sf;
  Alcotest.(check bool) (name ^ ": cf") want.Machine.cf got.Machine.cf;
  Alcotest.(check bool) (name ^ ": off") want.Machine.off got.Machine.off;
  Alcotest.(check int) (name ^ ": ip") want.Machine.ip got.Machine.ip;
  Alcotest.(check int) (name ^ ": steps") want.Machine.steps got.Machine.steps;
  Alcotest.(check (float 0.)) (name ^ ": cycles") want.Machine.cycles
    got.Machine.cycles;
  Alcotest.(check (list int64)) (name ^ ": output") want.Machine.out_rev
    got.Machine.out_rev;
  Alcotest.(check bool) (name ^ ": memory") true
    (Bytes.equal want.Machine.mem got.Machine.mem)

let run_legacy ?fuel img =
  let st = Machine.fresh_state img in
  let o = Machine.run ?fuel img st in
  (o, st)

let run_fast ?fuel img =
  let d = Predecode.get img in
  let st = Machine.fresh_state img in
  let o = Predecode.exec ?fuel d st in
  (o, st)

let check_run_eq name ?fuel img =
  let o1, st1 = run_legacy ?fuel img in
  let o2, st2 = run_fast ?fuel img in
  Alcotest.(check bool)
    (name ^ ": outcome")
    true
    (Machine.equal_outcome o1 o2);
  check_state_eq name st1 st2

(* ---- decode round-trip: full-run identity ---- *)

let test_fixture_roundtrip () =
  check_run_eq "loop fixture" (Machine.load (loop_program ()))

let test_catalogue_roundtrip () =
  List.iter
    (fun (e : Catalog.entry) ->
      List.iter
        (fun t ->
          let res = Pipeline.protect t (e.Catalog.build ()) in
          let img = Machine.load res.Pipeline.program in
          check_run_eq
            (Printf.sprintf "%s/%s" e.Catalog.name (Technique.short_name t))
            img)
        Technique.all)
    Catalog.all

(* ---- observed path: same retirement stream as Machine.run ---- *)

let test_observed_stream_identity () =
  let img = Machine.load (loop_program ()) in
  let d = Predecode.get img in
  let observe st0 =
    let seen = ref [] in
    let on_step (st : Machine.state) idx =
      seen := (idx, st.Machine.steps, st.Machine.cycles) :: !seen
    in
    (on_step, st0, seen)
  in
  let on1, st1, seen1 = observe (Machine.fresh_state img) in
  let o1 = Machine.run ~on_step:on1 img st1 in
  let on2, st2, seen2 = observe (Machine.fresh_state img) in
  let o2 = Predecode.exec_observed ~on_step:on2 d st2 in
  Alcotest.(check bool) "outcome" true (Machine.equal_outcome o1 o2);
  Alcotest.(check int) "stream length" (List.length !seen1)
    (List.length !seen2);
  List.iter2
    (fun (i1, s1, c1) (i2, s2, c2) ->
      Alcotest.(check int) "retired idx" i1 i2;
      Alcotest.(check int) "steps at retire" s1 s2;
      Alcotest.(check (float 0.)) "cycles at retire" c1 c2)
    !seen1 !seen2;
  check_state_eq "observed final" st1 st2

(* ---- step1: lockstep single-stepping against Machine.step ---- *)

let test_step1_lockstep () =
  let img = Machine.load (loop_program ()) in
  let d = Predecode.get img in
  let st1 = Machine.fresh_state img and st2 = Machine.fresh_state img in
  let halted = ref false in
  while not !halted do
    let r1 = try `Idx (Machine.step img st1) with Machine.Halt o -> `Halt o in
    let r2 = try `Idx (Predecode.step1 d st2) with Machine.Halt o -> `Halt o in
    (match (r1, r2) with
    | `Idx i1, `Idx i2 -> Alcotest.(check int) "retired idx" i1 i2
    | `Halt o1, `Halt o2 ->
      Alcotest.(check bool) "halt outcome" true (Machine.equal_outcome o1 o2);
      halted := true
    | _ -> Alcotest.fail "dispatchers halted at different steps");
    Alcotest.(check int) "lockstep ip" st1.Machine.ip st2.Machine.ip;
    Alcotest.(check (float 0.)) "lockstep cycles" st1.Machine.cycles
      st2.Machine.cycles
  done;
  check_state_eq "step1 final" st1 st2

(* ---- fusion boundary cases ---- *)

(* A branch target is a join point, so the boundary just before it must
   not fuse: jumping to the target would otherwise land in the middle
   of a pair. *)
let test_join_target_unfused () =
  let img = Machine.load (loop_program ()) in
  let d = Predecode.get img in
  Alcotest.(check bool) "some pairs fused" true (Predecode.fused_pairs d > 0);
  let checked = ref 0 in
  Array.iteri
    (fun _ link ->
      match link with
      | Machine.L_target t | Machine.L_call t ->
        if t > 0 && t < Predecode.length d then begin
          incr checked;
          Alcotest.(check string)
            (Printf.sprintf "boundary into join %d unfused" t)
            ""
            (Predecode.fused_name d (t - 1))
        end
      | _ -> ())
    img.Machine.links;
  Alcotest.(check bool) "fixture has join targets" true (!checked > 0);
  (* The loop's flag-setting compare pairs with its conditional branch. *)
  let cmp_jcc =
    List.exists
      (fun (n, c) -> n = "cmp+jcc" && c > 0)
      (Predecode.pattern_counts d)
  in
  Alcotest.(check bool) "cmp+jcc fused in loop" true cmp_jcc

(* [decode ~avoid] masks fusion at the flagged indices; an all-true
   mask is the fully unfused dispatcher and must still be identical. *)
let test_avoid_mask_unfuses () =
  let img = Machine.load (loop_program ()) in
  let avoid = Array.make (Array.length img.Machine.code) true in
  let d = Predecode.decode ~avoid img in
  Alcotest.(check int) "no pairs under full avoid mask" 0
    (Predecode.fused_pairs d);
  let o1, st1 = run_legacy img in
  let st2 = Machine.fresh_state img in
  let o2 = Predecode.exec d st2 in
  Alcotest.(check bool) "outcome" true (Machine.equal_outcome o1 o2);
  check_state_eq "avoid mask" st1 st2

(* Fuel that lands mid-pair must time out at exactly the legacy step
   count: the fused thunk checks fuel between its halves. *)
let test_fuel_mid_pair () =
  let img = Machine.load (loop_program ()) in
  for fuel = 40 to 60 do
    let o1, st1 = run_legacy ~fuel img in
    let o2, st2 = run_fast ~fuel img in
    Alcotest.(check bool)
      (Printf.sprintf "fuel=%d outcome" fuel)
      true
      (Machine.equal_outcome o1 o2);
    Alcotest.(check bool)
      (Printf.sprintf "fuel=%d timed out" fuel)
      true
      (o1 = Machine.Timeout);
    check_state_eq (Printf.sprintf "fuel=%d" fuel) st1 st2
  done

(* Resuming [exec] from a state parked mid-stream — including at the
   second half of a fused pair, which is how the injection engines
   resume after a prefix replay — must match legacy from that point. *)
let test_resume_mid_pair () =
  let img = Machine.load (loop_program ()) in
  let d = Predecode.get img in
  for k = 1 to 9 do
    let st1 = Machine.fresh_state img in
    for _ = 1 to k do
      ignore (Machine.step img st1)
    done;
    let o1 = Machine.run img st1 in
    let st2 = Machine.fresh_state img in
    for _ = 1 to k do
      ignore (Predecode.step1 d st2)
    done;
    let o2 = Predecode.exec d st2 in
    Alcotest.(check bool)
      (Printf.sprintf "resume after %d steps" k)
      true
      (Machine.equal_outcome o1 o2);
    check_state_eq (Printf.sprintf "resume k=%d" k) st1 st2
  done

(* ---- fallback parity: enabled := false ---- *)

let with_disabled f =
  Predecode.enabled := false;
  Fun.protect ~finally:(fun () -> Predecode.enabled := true) f

let test_fallback_parity () =
  let img = Machine.load (loop_program ()) in
  let d = Predecode.get img in
  let o1, st1 = run_fast img in
  Predecode.reset_counters ();
  ignore (run_fast img);
  let fused_fast = Predecode.fused_steps () in
  with_disabled (fun () ->
      let st2 = Machine.fresh_state img in
      let o2 = Predecode.exec d st2 in
      Alcotest.(check bool) "outcome" true (Machine.equal_outcome o1 o2);
      check_state_eq "fallback exec" st1 st2;
      (* The legacy loop replays the fused-step accounting over the
         retirement stream, so the counters agree across dispatchers. *)
      Predecode.reset_counters ();
      let st3 = Machine.fresh_state img in
      ignore (Predecode.exec d st3);
      Alcotest.(check int) "fused_steps parity" fused_fast
        (Predecode.fused_steps ());
      (* Observed path and step1 fall back too. *)
      let st4 = Machine.fresh_state img in
      let o4 = Predecode.exec_observed ~on_step:(fun _ _ -> ()) d st4 in
      Alcotest.(check bool) "fallback observed" true
        (Machine.equal_outcome o1 o4);
      let st5 = Machine.fresh_state img in
      ignore (Predecode.step1 d st5);
      Alcotest.(check int) "fallback step1 steps" 1 st5.Machine.steps)

(* ---- counters and decode cache ---- *)

let test_counters_and_cache () =
  let img = Machine.load (loop_program ()) in
  Predecode.reset_counters ();
  let d = Predecode.get img in
  Alcotest.(check int) "decode counted" 1 (Predecode.decodes ());
  Alcotest.(check bool) "cache hit is physical" true (Predecode.get img == d);
  Alcotest.(check int) "cache hit decodes nothing" 1 (Predecode.decodes ());
  Predecode.reset_counters ();
  let st = Machine.fresh_state img in
  ignore (Predecode.exec d st);
  Alcotest.(check int) "fast_steps = dynamic steps" st.Machine.steps
    (Predecode.fast_steps ());
  let fused = Predecode.fused_steps () in
  Alcotest.(check bool) "fused_steps even" true (fused mod 2 = 0);
  Alcotest.(check bool) "fused within fast" true
    (fused > 0 && fused <= Predecode.fast_steps ())

(* ---- injection engines are dispatcher-independent ---- *)

let campaign_lines ~engine ~seed ~samples img =
  let t = F.prepare ~engine img in
  List.init samples (fun sample ->
      let _, _, r = F.campaign_sample t ~seed ~sample in
      Json.to_string (F.record_to_json r))

let vulnmap_rows ~engine ~seed ~samples img =
  let v = F.vulnmap_campaign ~engine ~seed ~samples img in
  List.map Json.to_string (F.vulnmap_rows v)

let test_engines_across_dispatchers () =
  let entry =
    match Catalog.find "kmeans" with Some e -> e | None -> assert false
  in
  let res = Pipeline.protect Technique.Ferrum (entry.Catalog.build ()) in
  let img = Machine.load res.Pipeline.program in
  let seed = 9L and samples = 6 in
  List.iter
    (fun engine ->
      let name = F.engine_name engine in
      let fast_records = campaign_lines ~engine ~seed ~samples img in
      let fast_vuln = vulnmap_rows ~engine ~seed ~samples img in
      with_disabled (fun () ->
          Alcotest.(check (list string))
            (name ^ " records across dispatchers")
            fast_records
            (campaign_lines ~engine ~seed ~samples img);
          Alcotest.(check (list string))
            (name ^ " vulnmap across dispatchers")
            fast_vuln
            (vulnmap_rows ~engine ~seed ~samples img)))
    [ F.Scratch; F.Pooled; F.Checkpointed 64 ]

let () =
  Alcotest.run "predecode"
    [
      ( "roundtrip",
        [ Alcotest.test_case "loop fixture" `Quick test_fixture_roundtrip;
          Alcotest.test_case "observed stream" `Quick
            test_observed_stream_identity;
          Alcotest.test_case "step1 lockstep" `Quick test_step1_lockstep;
          Alcotest.test_case "catalogue x techniques" `Slow
            test_catalogue_roundtrip ] );
      ( "fusion",
        [ Alcotest.test_case "join targets unfused" `Quick
            test_join_target_unfused;
          Alcotest.test_case "avoid mask" `Quick test_avoid_mask_unfuses;
          Alcotest.test_case "fuel mid-pair" `Quick test_fuel_mid_pair;
          Alcotest.test_case "resume mid-pair" `Quick test_resume_mid_pair ] );
      ( "fallback",
        [ Alcotest.test_case "legacy parity" `Quick test_fallback_parity ] );
      ( "counters",
        [ Alcotest.test_case "counters and cache" `Quick
            test_counters_and_cache ] );
      ( "engines",
        [ Alcotest.test_case "dispatcher-independent" `Slow
            test_engines_across_dispatchers ] );
    ]
