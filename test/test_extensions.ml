(* Tests for the extensions beyond the paper's headline artefact: the
   backend peephole pass (E9), ZMM-batched checking (E10, the paper's
   §III-B5 future work) and multiple-bit upsets (E11, §II-A future
   work). *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Ferrum_pass = Ferrum_eddi.Ferrum_pass
module Peephole = Ferrum_backend.Peephole

let outcome_of p = fst (Machine.run_fresh (Machine.load p))

let all_workloads f =
  List.iter
    (fun (e : Ferrum_workloads.Catalog.entry) -> f e.name (e.build ()))
    Ferrum_workloads.Catalog.all

(* ---- peephole ---- *)

let test_peephole_preserves_semantics () =
  all_workloads (fun name m ->
      let plain = outcome_of (Pipeline.raw m).program in
      let opt = outcome_of (Pipeline.raw ~optimize:true m).program in
      if not (Machine.equal_outcome plain opt) then
        Alcotest.failf "%s: peephole changed behaviour" name)

let test_peephole_shrinks () =
  all_workloads (fun name m ->
      let p = (Pipeline.raw m).program in
      let p', stats = Peephole.run p in
      if stats.Peephole.dead_reloads + stats.Peephole.forwarded_loads = 0 then
        Alcotest.failf "%s: peephole found nothing" name;
      Alcotest.(check bool) (name ^ " not larger") true
        (Prog.num_instructions p' <= Prog.num_instructions p))

let test_peephole_patterns () =
  let slot = Instr.mem ~base:Reg.RBP (-16) in
  let mk ops = Prog.block "b" (List.map Instr.original ops) in
  (* dead reload *)
  let b =
    mk
      [ Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Mem slot);
        Instr.Mov (Reg.Q, Instr.Mem slot, Instr.Reg Reg.RAX); Instr.Ret ]
  in
  let stats = { Peephole.dead_reloads = 0; forwarded_loads = 0 } in
  let b' = Peephole.optimize_block stats b in
  Alcotest.(check int) "dead reload removed" 2 (List.length b'.Prog.insns);
  Alcotest.(check int) "counted" 1 stats.Peephole.dead_reloads;
  (* forwarding *)
  let b2 =
    mk
      [ Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Mem slot);
        Instr.Mov (Reg.Q, Instr.Mem slot, Instr.Reg Reg.RCX); Instr.Ret ]
  in
  let stats2 = { Peephole.dead_reloads = 0; forwarded_loads = 0 } in
  let b2' = Peephole.optimize_block stats2 b2 in
  Alcotest.(check int) "forwarded" 1 stats2.Peephole.forwarded_loads;
  (match (List.nth b2'.Prog.insns 1).Instr.op with
  | Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RCX) -> ()
  | _ -> Alcotest.fail "expected register move");
  (* different slots must not be touched *)
  let other = Instr.mem ~base:Reg.RBP (-24) in
  let b3 =
    mk
      [ Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Mem slot);
        Instr.Mov (Reg.Q, Instr.Mem other, Instr.Reg Reg.RCX); Instr.Ret ]
  in
  let stats3 = { Peephole.dead_reloads = 0; forwarded_loads = 0 } in
  let b3' = Peephole.optimize_block stats3 b3 in
  Alcotest.(check int) "untouched" 3 (List.length b3'.Prog.insns)

let test_peephole_protected_pipelines () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "LUD")).build () in
  let expect = outcome_of (Pipeline.raw m).program in
  List.iter
    (fun t ->
      let p = (Pipeline.protect ~optimize:true t m).program in
      if not (Machine.equal_outcome expect (outcome_of p)) then
        Alcotest.failf "optimized %s broke semantics" (Technique.name t))
    Technique.all

let test_peephole_keeps_ferrum_coverage () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "Pathfinder")).build () in
  let p = (Pipeline.protect ~optimize:true Technique.Ferrum m).program in
  let t = F.prepare (Machine.load p) in
  let rng = Rng.create ~seed:61L in
  for _ = 1 to 120 do
    let dyn_index = Rng.int rng t.F.eligible_steps in
    match fst (F.inject t (Rng.split rng) ~dyn_index) with
    | F.Sdc -> Alcotest.fail "SDC escaped optimized FERRUM"
    | _ -> ()
  done

(* ---- zmm ---- *)

let test_zmm_semantics_machine () =
  (* vinserti64x4 composes two YMM halves; vpxorq/vptestmq compare 512b *)
  let originals = List.map Instr.original in
  let body =
    [ Instr.Mov (Reg.Q, Instr.Imm 1L, Instr.Reg Reg.RAX);
      Instr.MovQ_to_xmm (Instr.Reg Reg.RAX, 0);
      Instr.Pinsrq (1, Instr.Psrc_reg Reg.RAX, 0);
      Instr.MovQ_to_xmm (Instr.Reg Reg.RAX, 1);
      Instr.Pinsrq (1, Instr.Psrc_reg Reg.RAX, 1);
      Instr.Vinserti128 (1, 1, 0, 0); (* ymm0 = 4 x 1 *)
      Instr.Vinserti64x4 (1, 0, 2, 2); (* zmm2 high = ymm0 *)
      Instr.Vinserti64x4 (0, 0, 2, 2); (* zmm2 low = ymm0 *)
      Instr.Vpxorq512 (2, 2, 3); (* zmm3 = 0 *)
      Instr.Vptestmq512 (3, 3);
      Instr.Set (Cond.E, Instr.Reg Reg.RBX); (* all-zero -> 1 *)
      Instr.Vptestmq512 (2, 2);
      Instr.Set (Cond.NE, Instr.Reg Reg.RCX); (* non-zero -> 1 *)
      Instr.Ret ]
  in
  let p = Prog.program [ Prog.func "main" [ Prog.block "main" (originals body) ] ] in
  let img = Machine.load p in
  let st = Machine.fresh_state img in
  (match Machine.run img st with
  | Machine.Exit _ -> ()
  | o -> Alcotest.failf "zmm program failed: %a" Machine.pp_outcome o);
  Alcotest.(check int64) "zero test" 1L st.Machine.gpr.{Reg.gpr_index Reg.RBX};
  Alcotest.(check int64) "nonzero test" 1L st.Machine.gpr.{Reg.gpr_index Reg.RCX};
  (* all 8 lanes of zmm2 hold 1 *)
  for lane = 0 to 7 do
    Alcotest.(check int64) "lane" 1L st.Machine.simd.{(2 * 8) + lane}
  done

let test_zmm_semantics_preserved () =
  all_workloads (fun name m ->
      let raw = outcome_of (Pipeline.raw m).program in
      let p =
        (Pipeline.protect ~ferrum_config:Ferrum_pass.zmm_config
           Technique.Ferrum m)
          .program
      in
      if not (Machine.equal_outcome raw (outcome_of p)) then
        Alcotest.failf "%s: zmm FERRUM broke semantics" name;
      (* the zmm batch actually got used *)
      let uses_zmm = ref false in
      List.iter
        (fun (f : Prog.func) ->
          List.iter
            (fun (b : Prog.block) ->
              List.iter
                (fun (i : Instr.ins) ->
                  match i.Instr.op with
                  | Instr.Vptestmq512 _ -> uses_zmm := true
                  | _ -> ())
                b.insns)
            f.blocks)
        p.Prog.funcs;
      Alcotest.(check bool) (name ^ " uses zmm") true !uses_zmm)

let test_zmm_no_sdc () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "kmeans")).build () in
  let p =
    (Pipeline.protect ~ferrum_config:Ferrum_pass.zmm_config Technique.Ferrum m)
      .program
  in
  let t = F.prepare (Machine.load p) in
  let rng = Rng.create ~seed:67L in
  for _ = 1 to 120 do
    let dyn_index = Rng.int rng t.F.eligible_steps in
    match fst (F.inject t (Rng.split rng) ~dyn_index) with
    | F.Sdc -> Alcotest.fail "SDC escaped zmm FERRUM"
    | _ -> ()
  done

let test_zmm_cheaper_than_ymm () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "Needle")).build () in
  let cycles cfg =
    let p = (Pipeline.protect ~ferrum_config:cfg Technique.Ferrum m).program in
    (Machine.golden (Machine.load p)).Machine.cycles
  in
  Alcotest.(check bool) "zmm batches are cheaper" true
    (cycles Ferrum_pass.zmm_config < cycles Ferrum_pass.default_config)

let test_zmm_text_roundtrip () =
  List.iter
    (fun i ->
      let line = Printer.string_of_instr i in
      Alcotest.(check bool) line true (Parser.parse_instr line = i))
    [ Instr.Vinserti64x4 (1, 0, 2, 2); Instr.Vpxorq512 (1, 2, 3);
      Instr.Vptestmq512 (4, 4) ]

(* ---- liveness analysis + liveness-directed pressure mode ---- *)

module Liveness = Ferrum_eddi.Liveness

let test_liveness_straightline () =
  (* rax written, read, then dead; rbx live into ret as the value path *)
  let body =
    [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 1L, Instr.Reg Reg.RBX));
      Instr.original (Instr.Mov (Reg.Q, Instr.Imm 2L, Instr.Reg Reg.RCX));
      Instr.original (Instr.Alu (Instr.Add, Reg.Q, Instr.Reg Reg.RCX, Instr.Reg Reg.RBX));
      Instr.original (Instr.Mov (Reg.Q, Instr.Reg Reg.RBX, Instr.Reg Reg.RAX));
      Instr.original Instr.Ret ]
  in
  let f = Prog.func "main" [ Prog.block "main" body ] in
  let lv = Liveness.analyze f in
  (* before the add, rbx and rcx are live; r10 never is *)
  Alcotest.(check bool) "rbx live" false
    (Liveness.dead_at lv ~label:"main" ~k:2 Reg.RBX);
  Alcotest.(check bool) "rcx live" false
    (Liveness.dead_at lv ~label:"main" ~k:2 Reg.RCX);
  Alcotest.(check bool) "r10 dead" true
    (Liveness.dead_at lv ~label:"main" ~k:2 Reg.R10);
  (* after its last read (position of the final mov), rcx is dead *)
  Alcotest.(check bool) "rcx dead after last use" true
    (Liveness.dead_at lv ~label:"main" ~k:3 Reg.RCX);
  (* rax is written at k=3 and read by ret: dead before, live content after *)
  Alcotest.(check bool) "rax dead before def" true
    (Liveness.dead_at lv ~label:"main" ~k:3 Reg.RAX)

let test_liveness_across_branches () =
  (* a value live on only one path is live at the fork *)
  let open Instr in
  let blocks =
    [ Prog.block "main"
        (List.map original
           [ Mov (Reg.Q, Imm 5L, Reg Reg.RBX);
             Cmp (Reg.Q, Imm 0L, Reg Reg.RBX);
             Jcc (Cond.E, "use_it");
             Jmp "skip" ]);
      Prog.block "skip"
        (List.map original [ Mov (Reg.Q, Imm 0L, Reg Reg.RAX); Ret ]);
      Prog.block "use_it"
        (List.map original [ Mov (Reg.Q, Reg Reg.RBX, Reg Reg.RAX); Ret ]) ]
  in
  let f = Prog.func "main" blocks in
  let lv = Liveness.analyze f in
  Alcotest.(check bool) "rbx live at fork" false
    (Liveness.dead_at lv ~label:"main" ~k:2 Reg.RBX);
  Alcotest.(check bool) "rbx dead on skip path" true
    (Liveness.dead_at lv ~label:"skip" ~k:0 Reg.RBX)

let test_liveness_call_blocks_deadness () =
  let open Instr in
  let blocks =
    [ Prog.block "main"
        (List.map original
           [ Mov (Reg.Q, Imm 5L, Reg Reg.RBX);
             Call "print_i64";
             Mov (Reg.Q, Reg Reg.RBX, Reg Reg.RDI);
             Ret ]) ]
  in
  let lv = Liveness.analyze (Prog.func "main" blocks) in
  (* conservatively, nothing is dead right before a call *)
  Alcotest.(check bool) "nothing dead before call" true
    (Liveness.dead_regs_at lv ~label:"main" ~k:1 = [])

let lv_pressure_config =
  { Ferrum_pass.default_config with
    max_spare_gprs = Some 0; use_liveness = true }

let test_liveness_pressure_semantics () =
  all_workloads (fun name m ->
      let raw = outcome_of (Pipeline.raw m).program in
      let p =
        (Pipeline.protect ~ferrum_config:lv_pressure_config Technique.Ferrum m)
          .program
      in
      if not (Machine.equal_outcome raw (outcome_of p)) then
        Alcotest.failf "%s: liveness pressure mode broke semantics" name)

let test_liveness_pressure_cheaper () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "kmeans")).build () in
  let cycles cfg =
    let p = (Pipeline.protect ~ferrum_config:cfg Technique.Ferrum m).program in
    (Machine.golden (Machine.load p)).Machine.cycles
  in
  let plain = { Ferrum_pass.default_config with max_spare_gprs = Some 0 } in
  Alcotest.(check bool) "liveness reuse beats push/pop" true
    (cycles lv_pressure_config < cycles plain)

let test_liveness_pressure_no_sdc () =
  (* under zero spares, liveness-directed reuse protects even the RSP
     writers that push/pop requisition must skip: full sweep, no SDC *)
  let m = (Option.get (Ferrum_workloads.Catalog.find "LUD")).build () in
  let p =
    (Pipeline.protect ~ferrum_config:lv_pressure_config Technique.Ferrum m)
      .program
  in
  let t = F.prepare (Machine.load p) in
  let rng = Rng.create ~seed:19L in
  for dyn_index = 0 to t.F.eligible_steps - 1 do
    match fst (F.inject t (Rng.split rng) ~dyn_index) with
    | F.Sdc -> Alcotest.failf "SDC at site %d" dyn_index
    | _ -> ()
  done

(* ---- multi-bit faults ---- *)

let test_multibit_flips_distinct_bits () =
  (* flipping k bits of a zero register yields a popcount-k value *)
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main"
              [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RDI));
                Instr.original (Instr.Call "print_i64");
                Instr.original Instr.Ret ] ] ]
  in
  let t = F.prepare (Machine.load p) in
  List.iter
    (fun bits ->
      for seed = 1 to 20 do
        let rng = Rng.create ~seed:(Int64.of_int (seed * 100 + bits)) in
        let cls, _ = F.inject ~fault_bits:bits t rng ~dyn_index:0 in
        (match cls with
        | F.Sdc -> ()
        | c -> Alcotest.failf "expected sdc, got %s" (F.classification_name c))
      done)
    [ 1; 2; 3 ]

let test_multibit_campaign_reproducible () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "kNN")).build () in
  let img = Machine.load (Pipeline.raw m).program in
  let a = F.campaign ~seed:9L ~samples:30 ~fault_bits:2 img in
  let b = F.campaign ~seed:9L ~samples:30 ~fault_bits:2 img in
  Alcotest.(check bool) "reproducible" true (a.F.counts = b.F.counts)

let test_multibit_ferrum_still_covers () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "BFS")).build () in
  let p = (Pipeline.protect Technique.Ferrum m).program in
  let img = Machine.load p in
  List.iter
    (fun bits ->
      let c = (F.campaign ~seed:71L ~samples:100 ~fault_bits:bits img).F.counts in
      Alcotest.(check int)
        (Printf.sprintf "no sdc at %d bits" bits)
        0 c.F.sdc)
    [ 2; 3 ]

(* configuration combinations must compose: correct fault-free output
   and, when everything is selected, no SDC *)
let test_config_combinations () =
  let combos =
    [ { Ferrum_pass.zmm_config with max_spare_gprs = Some 0;
        use_liveness = true };
      { Ferrum_pass.zmm_config with max_spare_gprs = Some 2 };
      { Ferrum_pass.default_config with use_liveness = true };
      { Ferrum_pass.default_config with use_simd = false;
        use_liveness = true; max_spare_gprs = Some 1 } ]
  in
  List.iter
    (fun name ->
      let m = (Option.get (Ferrum_workloads.Catalog.find name)).build () in
      let raw = outcome_of (Pipeline.raw m).program in
      List.iteri
        (fun k cfg ->
          let img =
            Machine.load
              (Pipeline.protect ~ferrum_config:cfg Technique.Ferrum m).program
          in
          let g = Machine.golden img in
          if not (Machine.equal_outcome g.Machine.outcome raw) then
            Alcotest.failf "%s combo %d broke semantics" name k;
          let c = (F.campaign ~seed:3L ~samples:60 img).F.counts in
          if c.F.sdc > 0 then Alcotest.failf "%s combo %d leaked SDC" name k)
        combos)
    [ "LUD"; "BFS" ]

let () =
  Alcotest.run "extensions"
    [
      ( "peephole",
        [ Alcotest.test_case "semantics preserved" `Quick
            test_peephole_preserves_semantics;
          Alcotest.test_case "shrinks all workloads" `Quick
            test_peephole_shrinks;
          Alcotest.test_case "patterns" `Quick test_peephole_patterns;
          Alcotest.test_case "protected pipelines" `Quick
            test_peephole_protected_pipelines;
          Alcotest.test_case "FERRUM coverage kept" `Slow
            test_peephole_keeps_ferrum_coverage ] );
      ( "zmm",
        [ Alcotest.test_case "machine semantics" `Quick
            test_zmm_semantics_machine;
          Alcotest.test_case "all workloads" `Quick
            test_zmm_semantics_preserved;
          Alcotest.test_case "no SDC" `Slow test_zmm_no_sdc;
          Alcotest.test_case "cheaper than ymm" `Quick
            test_zmm_cheaper_than_ymm;
          Alcotest.test_case "text roundtrip" `Quick test_zmm_text_roundtrip
        ] );
      ( "liveness",
        [ Alcotest.test_case "straight line" `Quick test_liveness_straightline;
          Alcotest.test_case "branches" `Quick test_liveness_across_branches;
          Alcotest.test_case "calls block deadness" `Quick
            test_liveness_call_blocks_deadness;
          Alcotest.test_case "pressure semantics" `Quick
            test_liveness_pressure_semantics;
          Alcotest.test_case "cheaper than push/pop" `Quick
            test_liveness_pressure_cheaper;
          Alcotest.test_case "exhaustive no-SDC under pressure" `Slow
            test_liveness_pressure_no_sdc ] );
      ( "combos",
        [ Alcotest.test_case "configuration matrix" `Slow
            test_config_combinations ] );
      ( "multibit",
        [ Alcotest.test_case "distinct bits" `Quick
            test_multibit_flips_distinct_bits;
          Alcotest.test_case "reproducible" `Quick
            test_multibit_campaign_reproducible;
          Alcotest.test_case "FERRUM covers 2-3 bit faults" `Slow
            test_multibit_ferrum_still_covers ] );
    ]
