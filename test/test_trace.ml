(* Tests for the distributed-tracing subsystem (ferrum.trace.v1):
   deterministic span ids and stitching, traceparent propagation,
   span-context round-trip across a real fork, campaign trace byte
   identity, and the Perfetto / folded-flamegraph exporters. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Trace = Ferrum_telemetry.Trace
module Runner = Ferrum_campaign.Runner

let checked_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.RDI));
              Instr.dup (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.R10));
              Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RDI));
              Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

let fixture_target () = F.prepare (Machine.load (checked_program ()))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---- ids and contexts ---- *)

let test_traceparent_roundtrip () =
  let trace = Trace.derive_id ~seed:42L "salt" in
  Alcotest.(check int) "16 hex chars" 16 (String.length trace);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    trace;
  (* deterministic, and sensitive to both seed and salt *)
  Alcotest.(check string) "derive_id stable" trace
    (Trace.derive_id ~seed:42L "salt");
  Alcotest.(check bool) "seed matters" false
    (String.equal trace (Trace.derive_id ~seed:43L "salt"));
  Alcotest.(check bool) "salt matters" false
    (String.equal trace (Trace.derive_id ~seed:42L "other"));
  let hdr = Trace.to_traceparent ~trace ~span:"0.3" in
  (match Trace.of_traceparent hdr with
  | Some (t, s) ->
    Alcotest.(check string) "trace survives" trace t;
    Alcotest.(check string) "span survives" "0.3" s
  | None -> Alcotest.fail "round-trip failed");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Fmt.str "reject %S" bad) true
        (Trace.of_traceparent bad = None))
    [ ""; "junk"; "00-xyz"; "00--0-01"; "00-abc-" ]

let test_ctx_make () =
  let c = Trace.ctx_make ~trace:"t" ~parent:"0.1" ~seg:"s4" in
  Alcotest.(check string) "child id" "0.1.s4" c.Trace.c_span;
  Alcotest.(check string) "parent" "0.1" c.Trace.c_parent;
  let root = Trace.ctx_make ~trace:"t" ~parent:"" ~seg:"j7" in
  Alcotest.(check string) "rootless child id" "j7" root.Trace.c_span

(* ---- recorder: deterministic ids, stitching ---- *)

let test_recorder_stitching () =
  let r = Trace.create ~trace:"feedc0defeedc0de" ~proc:"runner" () in
  let child_lines = ref [] in
  Trace.span r "campaign" (fun () ->
      Trace.counter r "samples" 10;
      Trace.span r "wave" (fun () -> Trace.advance r 100);
      (* a "remote" child continues the minted context *)
      let ctx = Trace.ctx_for r ~seg:"s0" in
      Alcotest.(check string) "minted under campaign" "0.s0"
        ctx.Trace.c_span;
      let w = Trace.scoped ctx ~proc:"worker-0" in
      Trace.span w "shard" (fun () -> Trace.advance w 40);
      child_lines := Trace.span_lines w;
      Trace.absorb r ~span_lines:!child_lines ~wall_lines:[];
      Trace.span r "merge" ignore);
  let lines = Trace.span_lines r in
  Alcotest.(check int) "4 spans" 4 (List.length lines);
  (match Trace.validate_stitched lines with
  | Ok root -> Alcotest.(check string) "single root" "0" root
  | Error e -> Alcotest.failf "stitching failed: %s" e);
  (* the document validates against its registered schema *)
  let doc = Json.to_string (Trace.header []) :: lines in
  (match
     Metrics.validate_lines ~kind:Trace.kind ~record_fields:Trace.fields doc
   with
  | Ok n -> Alcotest.(check int) "validated records" 4 n
  | Error e -> Alcotest.failf "schema validation failed: %s" e);
  (* child spans keep their parent links *)
  match Trace.rows_of_lines lines with
  | Error e -> Alcotest.failf "rows_of_lines: %s" e
  | Ok rows ->
    let spans = Trace.spans_of_rows rows in
    let shard = List.find (fun s -> s.Trace.sp_name = "shard") spans in
    Alcotest.(check string) "shard id" "0.s0" shard.Trace.sp_id;
    Alcotest.(check string) "shard parent" "0" shard.Trace.sp_parent;
    let campaign = List.find (fun s -> s.Trace.sp_name = "campaign") spans in
    Alcotest.(check (list (pair string int)))
      "campaign counters"
      [ ("samples", 10) ]
      campaign.Trace.sp_counters

let test_stitching_rejects () =
  let line ~id ~parent =
    Json.to_string
      (Trace.span_to_json ~trace:"t"
         { Trace.sp_id = id; sp_parent = parent; sp_name = "x";
           sp_proc = "p"; sp_l_start = 0; sp_l_end = 1; sp_counters = [] })
  in
  let expect_error label lines =
    match Trace.validate_stitched lines with
    | Ok _ -> Alcotest.failf "%s: expected rejection" label
    | Error _ -> ()
  in
  expect_error "empty" [];
  expect_error "two roots" [ line ~id:"0" ~parent:""; line ~id:"1" ~parent:"" ];
  expect_error "duplicate ids"
    [ line ~id:"0" ~parent:""; line ~id:"0" ~parent:"0" ];
  expect_error "orphan subtree"
    [ line ~id:"0" ~parent:""; line ~id:"5.0" ~parent:"5" ];
  (* a parent outside the document is the root (daemon job under a
     client traceparent) — but only one such entry may exist *)
  match
    Trace.validate_stitched
      [ line ~id:"j1" ~parent:"0"; line ~id:"j1.0" ~parent:"j1" ]
  with
  | Ok root -> Alcotest.(check string) "external parent root" "j1" root
  | Error e -> Alcotest.failf "external-parent trace must stitch: %s" e

(* ---- span-context round-trip across a real fork ---- *)

let test_fork_roundtrip () =
  let r = Trace.create ~trace:"ab12ab12ab12ab12" ~proc:"parent" () in
  Trace.span r "campaign" (fun () ->
      let ctx = Trace.ctx_for r ~seg:"s9" in
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* child: continue the context, ship closed spans back *)
        Unix.close rd;
        let w = Trace.scoped ctx ~proc:"worker-9" in
        Trace.span w "shard" (fun () ->
            Trace.advance w 17;
            Trace.span w "engine" (fun () -> Trace.counter w "walks" 3));
        let oc = Unix.out_channel_of_descr wr in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (Trace.span_lines w);
        close_out oc;
        Unix._exit 0
      | pid ->
        Unix.close wr;
        let ic = Unix.in_channel_of_descr rd in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        let _, status = Unix.waitpid [] pid in
        Alcotest.(check bool) "child exited cleanly" true
          (status = Unix.WEXITED 0);
        Trace.absorb r ~span_lines:(List.rev !lines) ~wall_lines:[]);
  let lines = Trace.span_lines r in
  match Trace.validate_stitched lines with
  | Error e -> Alcotest.failf "fork trace does not stitch: %s" e
  | Ok root ->
    Alcotest.(check string) "root is the parent's span" "0" root;
    let spans =
      match Trace.rows_of_lines lines with
      | Ok rows -> Trace.spans_of_rows rows
      | Error e -> Alcotest.failf "rows: %s" e
    in
    let shard = List.find (fun s -> s.Trace.sp_name = "shard") spans in
    let engine = List.find (fun s -> s.Trace.sp_name = "engine") spans in
    Alcotest.(check string) "shard under campaign" "0" shard.Trace.sp_parent;
    Alcotest.(check string) "engine under shard" "0.s9"
      engine.Trace.sp_parent;
    Alcotest.(check string) "worker proc label" "worker-9"
      engine.Trace.sp_proc;
    Alcotest.(check (list (pair string int)))
      "engine counters survive the pipe"
      [ ("walks", 3) ]
      engine.Trace.sp_counters

(* ---- campaign traces: stitching + byte identity ---- *)

let test_campaign_trace () =
  let target = fixture_target () in
  let run () =
    Runner.run ~mode:Runner.Traced ~shards:2 ~seed:7L ~samples:20 target
  in
  let a = run () in
  (match Trace.validate_stitched a.Runner.trace_spans with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "campaign trace does not stitch: %s" e);
  let spans =
    match Trace.rows_of_lines a.Runner.trace_spans with
    | Ok rows -> Trace.spans_of_rows rows
    | Error e -> Alcotest.failf "rows: %s" e
  in
  let names = List.map (fun s -> s.Trace.sp_name) spans in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Fmt.str "has %s span" n) true (List.mem n names))
    [ "campaign"; "wave"; "shard"; "engine"; "merge"; "stats" ];
  Alcotest.(check int) "one shard span per shard" 2
    (List.length (List.filter (( = ) "shard") names));
  (* every span carries the same derived trace id *)
  let engine =
    List.find (fun s -> s.Trace.sp_name = "engine") spans
  in
  Alcotest.(check bool) "engine phases counted" true
    (List.mem_assoc "walks" engine.Trace.sp_counters);
  (* logical rows are byte-identical across reruns; wall rows exist
     but are never compared *)
  let b = run () in
  Alcotest.(check (list string)) "trace byte-identical across reruns"
    a.Runner.trace_spans b.Runner.trace_spans;
  Alcotest.(check bool) "wall sidecar populated" true
    (a.Runner.trace_walls <> [])

let test_campaign_trace_ctx () =
  (* a caller-provided context reparents the whole campaign *)
  let ctx = Trace.ctx_make ~trace:"deadbeefdeadbeef" ~parent:"j1" ~seg:"c" in
  let target = fixture_target () in
  let r =
    Runner.run ~mode:Runner.Inject ~shards:2 ~seed:3L ~samples:10 ~trace_ctx:ctx
      target
  in
  let spans =
    match Trace.rows_of_lines r.Runner.trace_spans with
    | Ok rows -> Trace.spans_of_rows rows
    | Error e -> Alcotest.failf "rows: %s" e
  in
  let campaign = List.find (fun s -> s.Trace.sp_name = "campaign") spans in
  Alcotest.(check string) "campaign keeps minted id" "j1.c"
    campaign.Trace.sp_id;
  Alcotest.(check string) "campaign parented externally" "j1"
    campaign.Trace.sp_parent;
  match Trace.validate_stitched r.Runner.trace_spans with
  | Ok root -> Alcotest.(check string) "minted root" "j1.c" root
  | Error e -> Alcotest.failf "does not stitch: %s" e

(* ---- exporters ---- *)

let exported_spans () =
  let target = fixture_target () in
  let r = Runner.run ~mode:Runner.Inject ~shards:2 ~seed:11L ~samples:10 target in
  match Trace.rows_of_lines r.Runner.trace_spans with
  | Ok rows -> (
    ( Trace.spans_of_rows rows,
      match Trace.rows_of_lines r.Runner.trace_walls with
      | Ok wrows -> Trace.walls_of_rows wrows
      | Error e -> Alcotest.failf "wall rows: %s" e ))
  | Error e -> Alcotest.failf "rows: %s" e

let test_perfetto_export () =
  let spans, walls = exported_spans () in
  let doc = Trace.perfetto ~spans ~walls in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check int) "one event per span" (List.length spans)
    (List.length events);
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.Str "X") -> ()
      | _ -> Alcotest.fail "complete-event phase expected");
      (match Json.member "dur" ev with
      | Some (Json.Float d) ->
        Alcotest.(check bool) "non-negative duration" true (d >= 0.0)
      | _ -> Alcotest.fail "dur missing");
      match (Json.member "name" ev, Json.member "pid" ev) with
      | Some (Json.Str _), Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "name/pid missing")
    events;
  (* the JSON re-parses: what a viewer loads is what we emitted *)
  match Json.of_string_opt (Json.to_string doc) with
  | Some _ -> ()
  | None -> Alcotest.fail "perfetto JSON does not re-parse"

let test_folded_export () =
  let spans, walls = exported_spans () in
  let well_formed lines =
    Alcotest.(check bool) "non-empty" true (lines <> []);
    List.iter
      (fun l ->
        match String.rindex_opt l ' ' with
        | None -> Alcotest.failf "no weight separator in %S" l
        | Some i ->
          let stack = String.sub l 0 i in
          let weight = String.sub l (i + 1) (String.length l - i - 1) in
          Alcotest.(check bool) "stack non-empty" true (stack <> "");
          Alcotest.(check bool)
            (Fmt.str "numeric weight in %S" l)
            true
            (match float_of_string_opt weight with
            | Some w -> w >= 0.0
            | None -> false))
      lines
  in
  (* wall-weighted (full sidecar): well-formed but not byte-compared *)
  well_formed (Trace.folded ~spans ~walls);
  (* logical-weighted (no sidecar): well-formed AND deterministic *)
  let logical = Trace.folded ~spans ~walls:[] in
  well_formed logical;
  Alcotest.(check (list string)) "logical weights deterministic" logical
    (let spans2, _ = exported_spans () in
     Trace.folded ~spans:spans2 ~walls:[])

(* ---- malformed documents ---- *)

let test_rows_error_line_numbers () =
  let good =
    Json.to_string
      (Trace.span_to_json ~trace:"t"
         { Trace.sp_id = "0"; sp_parent = ""; sp_name = "a"; sp_proc = "p";
           sp_l_start = 0; sp_l_end = 1; sp_counters = [] })
  in
  match Trace.rows_of_lines [ good; "{\"not\":\"a row\"}" ] with
  | Ok _ -> Alcotest.fail "malformed row must be rejected"
  | Error e ->
    (* records start at document line 2, so the bad row is line 3 *)
    Alcotest.(check bool) (Fmt.str "line number in %S" e) true
      (contains ~affix:"line 3" e)

let () =
  Alcotest.run "trace"
    [ ( "ids",
        [ Alcotest.test_case "traceparent round-trip" `Quick
            test_traceparent_roundtrip;
          Alcotest.test_case "ctx_make" `Quick test_ctx_make ] );
      ( "stitching",
        [ Alcotest.test_case "recorder + absorb" `Quick
            test_recorder_stitching;
          Alcotest.test_case "incoherent traces rejected" `Quick
            test_stitching_rejects;
          Alcotest.test_case "row errors carry line numbers" `Quick
            test_rows_error_line_numbers ] );
      ( "fork",
        [ Alcotest.test_case "span context crosses fork" `Quick
            test_fork_roundtrip ] );
      ( "campaign",
        [ Alcotest.test_case "stitched, named, byte-identical" `Quick
            test_campaign_trace;
          Alcotest.test_case "caller context reparents" `Quick
            test_campaign_trace_ctx ] );
      ( "export",
        [ Alcotest.test_case "perfetto trace events" `Quick
            test_perfetto_export;
          Alcotest.test_case "folded stacks" `Quick test_folded_export ] ) ]
