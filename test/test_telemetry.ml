(* Tests for the telemetry subsystem: flight-recorder ring buffer,
   pipeline spans, canonical JSON / JSONL metrics, per-opcode profiles,
   and campaign metrics reproducibility. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Flight = Ferrum_machine.Flight
module Json = Ferrum_telemetry.Json
module Span = Ferrum_telemetry.Span
module Metrics = Ferrum_telemetry.Metrics
module Profile = Ferrum_telemetry.Profile
module F = Ferrum_faultsim.Faultsim

let originals = List.map Instr.original

let straightline body =
  Prog.program
    [ Prog.func "main" [ Prog.block "main" (originals (body @ [ Instr.Ret ])) ] ]

(* A tiny protected-looking program with one original injection site, a
   duplicate and a checker -- same shape as the faultsim tests use, so
   campaigns over it are instant. *)
let checked_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.RDI));
              Instr.dup (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.R10));
              Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RDI));
              Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

(* ---- flight recorder ---- *)

let test_flight_wraparound () =
  let open Instr in
  let body =
    List.init 8 (fun i ->
        Mov (Reg.Q, Imm (Int64.of_int i), Reg Reg.RAX))
  in
  let img = Machine.load (straightline body) in
  let fr = Flight.create ~depth:4 () in
  let st = Machine.fresh_state img in
  let outcome = Machine.run ~on_step:(Flight.observe fr img) img st in
  (match outcome with
  | Machine.Exit _ -> ()
  | o -> Alcotest.failf "expected exit, got %a" Machine.pp_outcome o);
  (* 8 movs + ret all retire; the ring holds only the last 4 *)
  Alcotest.(check int) "recorded" 9 (Flight.recorded fr);
  let entries = Flight.entries fr in
  Alcotest.(check int) "held" 4 (List.length entries);
  let steps = List.map (fun e -> e.Flight.step) entries in
  Alcotest.(check (list int)) "last four steps, oldest first" [ 6; 7; 8; 9 ]
    steps;
  (* the last mov's write-back value is visible in its entry *)
  let mov7 = List.nth entries 2 in
  (match mov7.Flight.writes with
  | [ Flight.Wgpr (Reg.RAX, v) ] ->
    Alcotest.(check int64) "write-back value" 7L v
  | _ -> Alcotest.fail "expected a single gpr write");
  Flight.clear fr;
  Alcotest.(check int) "cleared" 0 (Flight.recorded fr);
  Alcotest.(check int) "empty" 0 (List.length (Flight.entries fr))

let test_flight_no_wrap () =
  let open Instr in
  let body = [ Mov (Reg.Q, Imm 1L, Reg Reg.RBX) ] in
  let img = Machine.load (straightline body) in
  let fr = Flight.create ~depth:16 () in
  let st = Machine.fresh_state img in
  ignore (Machine.run ~on_step:(Flight.observe fr img) img st);
  Alcotest.(check int) "recorded" 2 (Flight.recorded fr);
  Alcotest.(check int) "held" 2 (List.length (Flight.entries fr));
  match Flight.create ~depth:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 0 must be rejected"

(* ---- pipeline spans ---- *)

let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1.0;
    !t

let test_span_nesting () =
  let r = Span.create ~clock:(fake_clock ()) () in
  let result =
    Span.span r "compile" (fun () ->
        Span.counter r "instructions" 10;
        Span.span r "peephole" (fun () ->
            Span.counter r "rewrites" 3;
            42))
  in
  Alcotest.(check int) "body result" 42 result;
  match Span.spans r with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer name" "compile" outer.Span.name;
    Alcotest.(check int) "outer depth" 0 outer.Span.depth;
    Alcotest.(check int) "outer order" 0 outer.Span.order;
    Alcotest.(check string) "inner name" "peephole" inner.Span.name;
    Alcotest.(check int) "inner depth" 1 inner.Span.depth;
    Alcotest.(check int) "inner order" 1 inner.Span.order;
    (* fake clock ticks once per reading: outer spans 4 readings *)
    Alcotest.(check (float 1e-9)) "inner duration" 1.0 inner.Span.duration;
    Alcotest.(check (float 1e-9)) "outer duration" 3.0 outer.Span.duration;
    Alcotest.(check (list (pair string int)))
      "outer counters"
      [ ("instructions", 10) ]
      outer.Span.counters;
    Alcotest.(check (list (pair string int)))
      "inner counters" [ ("rewrites", 3) ] inner.Span.counters
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_and_stray_counter () =
  let r = Span.create ~clock:(fake_clock ()) () in
  (* counters outside any span survive on an implicit root span *)
  Span.counter r "stray" 1;
  Span.counter r "stray" 2;
  (match Span.span r "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  match Span.spans r with
  | [ s; root ] ->
    Alcotest.(check string) "span closed despite raise" "boom" s.Span.name;
    Alcotest.(check (list (pair string int))) "no counters" [] s.Span.counters;
    Alcotest.(check string) "stray counters on implicit root" "<root>"
      root.Span.name;
    Alcotest.(check (list (pair string int)))
      "strays kept in order"
      [ ("stray", 1); ("stray", 2) ]
      root.Span.counters
  | spans -> Alcotest.failf "expected span + implicit root, got %d"
               (List.length spans)

let test_span_pp_deterministic () =
  let r = Span.create ~clock:(fake_clock ()) () in
  Span.span r "a" (fun () ->
      Span.counter r "n" 2;
      Span.span r "b" ignore);
  let untimed = Fmt.str "%a" (Span.pp ?timings:None) r in
  (* the default rendering must not contain clock readings *)
  Alcotest.(check bool) "no durations by default" false
    (String.contains untimed '.')

(* ---- canonical JSON ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("schema", Json.Str "t.v1");
        ("n", Json.Int (-3));
        ("x", Json.Float 2.5);
        ("whole", Json.Float 4.0);
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("xs", Json.Arr [ Json.Int 1; Json.Str "a\"b\n" ]) ]
  in
  let s = Json.to_string v in
  Alcotest.(check string) "reparse is canonical" s
    (Json.to_string (Json.of_string s));
  (* integral floats keep a decimal point so the field stays a float *)
  Alcotest.(check bool) "whole float rendered with point" true
    (let re = "\"whole\":4.0" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0);
  match Json.of_string_opt "{\"truncated\":" with
  | None -> ()
  | Some _ -> Alcotest.fail "malformed JSON must not parse"

(* ---- metrics records: schema round-trip ---- *)

let prepare_checked () = F.prepare (Machine.load (checked_program ()))

let collect_records ~seed ~samples =
  let records = ref [] in
  let t = prepare_checked () in
  let _ =
    F.campaign ~seed ~samples
      ~on_record:(fun r -> records := r :: !records)
      t.F.img
  in
  List.rev !records

let test_record_schema_roundtrip () =
  let records = collect_records ~seed:11L ~samples:25 in
  Alcotest.(check int) "one record per sample" 25 (List.length records);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "sample numbering" i r.F.sample;
      let j = F.record_to_json r in
      (match Metrics.validate_fields F.record_fields j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "record %d invalid: %s" i e);
      let s = Json.to_string j in
      Alcotest.(check string) "record canonical round-trip" s
        (Json.to_string (Json.of_string s)))
    records;
  let lines =
    Json.to_string
      (Metrics.header ~kind:F.metrics_kind [ ("benchmark", Json.Str "tiny") ])
    :: List.map (fun r -> Json.to_string (F.record_to_json r)) records
  in
  match
    Metrics.validate_lines ~kind:F.metrics_kind ~record_fields:F.record_fields
      lines
  with
  | Ok n -> Alcotest.(check int) "validated record count" 25 n
  | Error e -> Alcotest.failf "document invalid: %s" e

let test_validate_rejects () =
  let good =
    Json.to_string
      (Metrics.header ~kind:F.metrics_kind [])
  in
  (* wrong schema kind *)
  (match
     Metrics.validate_lines ~kind:"other.v1" ~record_fields:F.record_fields
       [ good ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch must be rejected");
  (* record with a missing required field *)
  match
    Metrics.validate_lines ~kind:F.metrics_kind ~record_fields:F.record_fields
      [ good; "{\"sample\":0}" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete record must be rejected"

(* ---- same-seed campaigns are byte-identical ---- *)

let campaign_bytes ~seed =
  let buf = Buffer.create 1024 in
  let sink = Metrics.buffer_sink buf in
  let t = prepare_checked () in
  let _ =
    F.campaign ~seed ~samples:40
      ~on_record:(fun r -> Metrics.emit sink (F.record_to_json r))
      t.F.img
  in
  Metrics.close sink;
  Buffer.contents buf

let test_same_seed_identical () =
  let a = campaign_bytes ~seed:2024L in
  let b = campaign_bytes ~seed:2024L in
  Alcotest.(check string) "same seed, same bytes" a b;
  Alcotest.(check bool) "stream is non-trivial" true
    (String.length a > 40 * 20)

(* ---- profiles ---- *)

let test_profile_determinism () =
  let img = Machine.load (checked_program ()) in
  let p1 = Profile.run img in
  let p2 = Profile.run img in
  Alcotest.(check bool) "exits" true
    (match p1.Profile.outcome with Machine.Exit _ -> true | _ -> false);
  Alcotest.(check int) "steps stable" p1.Profile.steps p2.Profile.steps;
  Alcotest.(check (float 1e-9)) "cycles stable" p1.Profile.total_cycles
    p2.Profile.total_cycles;
  let row_sum =
    List.fold_left (fun acc r -> acc +. r.Profile.cycles) 0.0 p1.Profile.rows
  in
  Alcotest.(check (float 1e-6)) "rows account for all cycles"
    p1.Profile.total_cycles row_sum;
  let prov_sum =
    List.fold_left
      (fun acc r -> acc +. r.Profile.p_cycles)
      0.0 p1.Profile.by_provenance
  in
  Alcotest.(check (float 1e-6)) "provenance accounts for all cycles"
    p1.Profile.total_cycles prov_sum;
  let golden = Machine.golden img in
  Alcotest.(check (float 1e-6)) "matches golden cycles" golden.Machine.cycles
    p1.Profile.total_cycles;
  (* both dup and check cycles are attributed in the protected program *)
  let prov p =
    List.exists (fun r -> r.Profile.prov = p && r.Profile.p_count > 0)
      p1.Profile.by_provenance
  in
  Alcotest.(check bool) "dup attributed" true (prov Instr.Dup);
  Alcotest.(check bool) "check attributed" true (prov Instr.Check)

let test_mnemonic () =
  let open Instr in
  Alcotest.(check string) "mov" "mov"
    (mnemonic (Mov (Reg.Q, Imm 0L, Reg Reg.RAX)));
  Alcotest.(check string) "jcc keeps condition" "jne"
    (mnemonic (Jcc (Cond.NE, "x")));
  Alcotest.(check string) "ret" "ret" (mnemonic Ret)

(* ---- equal_outcome regression (satellite a) ---- *)

let test_equal_outcome_lengths () =
  (* used to raise Invalid_argument via List.for_all2 *)
  Alcotest.(check bool) "different lengths differ" false
    (Machine.equal_outcome (Machine.Exit [ 1L ]) (Machine.Exit [ 1L; 2L ]));
  Alcotest.(check bool) "equal outputs equal" true
    (Machine.equal_outcome (Machine.Exit [ 1L; 2L ]) (Machine.Exit [ 1L; 2L ]));
  Alcotest.(check bool) "differing value" false
    (Machine.equal_outcome (Machine.Exit [ 1L ]) (Machine.Exit [ 2L ]))

let () =
  Alcotest.run "telemetry"
    [
      ( "flight",
        [ Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "no wrap + bad depth" `Quick test_flight_no_wrap ] );
      ( "span",
        [ Alcotest.test_case "nesting and counters" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_and_stray_counter;
          Alcotest.test_case "pp deterministic" `Quick
            test_span_pp_deterministic ] );
      ( "json",
        [ Alcotest.test_case "canonical round-trip" `Quick test_json_roundtrip ] );
      ( "metrics",
        [ Alcotest.test_case "record schema round-trip" `Quick
            test_record_schema_roundtrip;
          Alcotest.test_case "validation rejects bad input" `Quick
            test_validate_rejects;
          Alcotest.test_case "same seed, identical bytes" `Quick
            test_same_seed_identical ] );
      ( "profile",
        [ Alcotest.test_case "deterministic attribution" `Quick
            test_profile_determinism;
          Alcotest.test_case "mnemonics" `Quick test_mnemonic ] );
      ( "machine",
        [ Alcotest.test_case "equal_outcome length safety" `Quick
            test_equal_outcome_lengths ] );
    ]
