(* Tests for the fault-propagation tracer and the vulnerability-map
   campaigns: lockstep classification agreement, detection latency on a
   fixed seed, escape explanations for SDCs, v2 record schema, and
   byte-reproducible vulnmap JSONL export. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Propagation = F.Propagation
module Rng = Ferrum_faultsim.Rng
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics

let bench name = (Option.get (Ferrum_workloads.Catalog.find name)).build ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let protected_target name =
  let p = (Pipeline.protect Technique.Ferrum (bench name)).program in
  F.prepare (Machine.load p)

(* A raw program whose only eligible fault corrupts the printed value:
   every injection is an SDC, and the tracer must explain it. *)
let unprotected_print () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RDI));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

(* ---- lockstep tracing ---- *)

let test_trace_matches_inject () =
  (* the tracer's observer must not perturb classification: for the same
     sample stream, trace_propagation and inject agree *)
  let t = protected_target "LUD" in
  let rng_a = Rng.create ~seed:11L and rng_b = Rng.create ~seed:11L in
  for _ = 1 to 25 do
    let sa = Rng.split rng_a and sb = Rng.split rng_b in
    let dyn_index = Rng.int sa t.F.eligible_steps in
    let _ = Rng.int sb t.F.eligible_steps in
    let cls_plain, fault_plain = F.inject t sa ~dyn_index in
    let cls_traced, fault_traced, _ = F.trace_propagation t sb ~dyn_index in
    Alcotest.(check string) "same class"
      (F.classification_name cls_plain)
      (F.classification_name cls_traced);
    Alcotest.(check string) "same dest" fault_plain.F.dest_desc
      fault_traced.F.dest_desc;
    Alcotest.(check int) "same bit" fault_plain.F.bit fault_traced.F.bit
  done

let test_detected_fault_has_latency () =
  (* fixed seed: hunt for a detected fault, then assert its latency is
     measured and positive, and that the divergence was recorded *)
  let t = protected_target "LUD" in
  let rng = Rng.create ~seed:1L in
  let rec hunt k =
    if k > 200 then Alcotest.fail "no detected fault in 200 samples"
    else
      let sample_rng = Rng.split rng in
      let dyn_index = Rng.int sample_rng t.F.eligible_steps in
      let cls, _, summary = F.trace_propagation t sample_rng ~dyn_index in
      if cls = F.Detected then summary else hunt (k + 1)
  in
  let summary = hunt 0 in
  Alcotest.(check bool) "program has checks" true
    summary.Propagation.program_has_checks;
  Alcotest.(check bool) "injection noted" true
    (summary.Propagation.injected_at <> None);
  match Propagation.detection_latency summary with
  | None -> Alcotest.fail "detected fault without latency"
  | Some (steps, cycles) ->
    Alcotest.(check bool) "positive step latency" true (steps > 0);
    Alcotest.(check bool) "positive cycle latency" true (cycles > 0.0);
    Alcotest.(check bool) "latency bounded by run" true
      (steps <= summary.Propagation.end_steps)

let test_sdc_explained_unprotected () =
  (* the raw print program: every flip is an SDC and the explanation is
     the absence of checkers *)
  let t = F.prepare (Machine.load (unprotected_print ())) in
  Alcotest.(check int) "one site" 1 t.F.eligible_steps;
  let rng = Rng.create ~seed:3L in
  let cls, _, summary = F.trace_propagation t (Rng.split rng) ~dyn_index:0 in
  Alcotest.(check string) "sdc" "sdc" (F.classification_name cls);
  Alcotest.(check bool) "no checks" false
    summary.Propagation.program_has_checks;
  (match Propagation.explain_escape summary with
  | Propagation.Unprotected_program -> ()
  | e -> Alcotest.failf "expected unprotected-program, got %s"
           (Propagation.escape_name e));
  Alcotest.(check bool) "output divergence seen" true
    (summary.Propagation.first_output_divergence_at <> None)

let test_benign_run_no_divergence_left () =
  (* hunt a benign injection and check the taint died out or never
     surfaced: benign means no corrupted output *)
  let t = protected_target "kNN" in
  let rng = Rng.create ~seed:2L in
  let rec hunt k =
    if k > 300 then Alcotest.fail "no benign fault in 300 samples"
    else
      let sample_rng = Rng.split rng in
      let dyn_index = Rng.int sample_rng t.F.eligible_steps in
      let cls, _, summary = F.trace_propagation t sample_rng ~dyn_index in
      if cls = F.Benign then summary else hunt (k + 1)
  in
  let summary = hunt 0 in
  Alcotest.(check bool) "no corrupted output" true
    (summary.Propagation.first_output_divergence_at = None)

(* ---- vulnerability maps ---- *)

let vulnmap_lines img ~seed ~samples =
  let buf = Buffer.create 4096 in
  let sink = Metrics.buffer_sink buf in
  let v = F.vulnmap_campaign ~seed ~samples img in
  Metrics.emit sink
    (Metrics.header ~kind:F.vulnmap_kind
       [ ("seed", Json.Str (Int64.to_string seed));
         ("samples", Json.Int samples) ]);
  List.iter (Metrics.emit sink) (F.vulnmap_rows v);
  Metrics.close sink;
  (v, Buffer.contents buf)

let test_vulnmap_schema_valid_and_reproducible () =
  let m = bench "Pathfinder" in
  let img = Machine.load (Pipeline.protect Technique.Ferrum m).program in
  let v, doc_a = vulnmap_lines img ~seed:7L ~samples:40 in
  let _, doc_b = vulnmap_lines img ~seed:7L ~samples:40 in
  Alcotest.(check string) "byte-identical per seed" doc_a doc_b;
  (match
     Metrics.validate_lines ~kind:F.vulnmap_kind
       ~record_fields:F.vulnmap_fields
       (Metrics.lines_of_string doc_a)
   with
  | Ok n -> Alcotest.(check bool) "rows exported" true (n > 0)
  | Error e -> Alcotest.failf "invalid vulnmap JSONL: %s" e);
  (* per-site counts sum back to the campaign totals *)
  let sum =
    Array.fold_left
      (fun acc (s : F.site_stat) -> acc + s.F.s_counts.F.samples)
      0 v.F.v_sites
  in
  Alcotest.(check int) "site samples partition campaign" v.F.v_counts.F.samples
    sum;
  Alcotest.(check int) "detected latencies collected"
    v.F.v_counts.F.detected
    (List.length v.F.v_latencies);
  Alcotest.(check int) "every sdc explained" v.F.v_counts.F.sdc
    (List.length v.F.v_escapes)

let test_vulnmap_matches_campaign () =
  (* the traced campaign must classify exactly as the plain one *)
  let m = bench "BFS" in
  let img = Machine.load (Pipeline.protect Technique.Ferrum m).program in
  let plain = F.campaign ~seed:4L ~samples:30 img in
  let traced = F.vulnmap_campaign ~seed:4L ~samples:30 img in
  Alcotest.(check bool) "same counts" true (plain.F.counts = traced.F.v_counts)

let test_render_smoke () =
  let m = bench "Pathfinder" in
  let img = Machine.load (Pipeline.protect Technique.Ferrum m).program in
  let v = F.vulnmap_campaign ~seed:7L ~samples:30 img in
  let text = Ferrum_report.Vulnmap.render ~only_sampled:true v in
  Alcotest.(check bool) "mentions samples" true
    (String.length text > 0 && contains ~sub:"30 samples" text)

(* ---- v2 records ---- *)

let test_records_carry_structured_dest () =
  let m = bench "kmeans" in
  let img = Machine.load (Pipeline.raw m).program in
  let records = ref [] in
  let _ =
    F.campaign ~seed:5L ~samples:25 ~on_record:(fun r -> records := r :: !records)
      img
  in
  Alcotest.(check int) "one record per sample" 25 (List.length !records);
  List.iter
    (fun (r : F.record) ->
      let j = F.record_to_json r in
      (match Metrics.validate_fields F.record_fields j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid v2 record: %s" e);
      (* structured view must agree with the textual destination *)
      match (r.F.r_dest, Json.member "dest_kind" j) with
      | Some (F.Igpr _), Some (Json.Str "gpr") ->
        Alcotest.(check bool) "gpr desc" true
          (String.length r.F.dest > 0 && r.F.dest.[0] = '%')
      | Some (F.Isimd (x, lane)), Some (Json.Str "simd") ->
        Alcotest.(check string) "simd desc"
          (Fmt.str "%%xmm%d[%d]" x lane)
          r.F.dest
      | Some (F.Iflag _), Some (Json.Str "flags") ->
        Alcotest.(check bool) "flag desc" true
          (String.length r.F.dest > 6 && String.sub r.F.dest 0 6 = "flags.")
      | None, Some (Json.Str "none") -> ()
      | _ -> Alcotest.fail "dest_kind disagrees with structured dest")
    !records

let test_v1_files_still_validate () =
  (* a legacy file (v1 schema name, v1 fields only) must still pass with
     the retained v1 validator *)
  let hdr =
    Json.to_string (Metrics.header ~kind:F.metrics_kind_v1 [])
  in
  let record =
    {|{"sample":0,"dyn_index":1,"static_index":2,"opcode":"mov","dest":"%rax","bit":3,"class":"benign","steps":10,"cycles":12.0}|}
  in
  match
    Metrics.validate_lines ~kind:F.metrics_kind_v1
      ~record_fields:F.record_fields_v1 [ hdr; record ]
  with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 record, got %d" n
  | Error e -> Alcotest.failf "v1 file rejected: %s" e

let () =
  Alcotest.run "propagation"
    [
      ( "trace",
        [ Alcotest.test_case "matches inject" `Quick test_trace_matches_inject;
          Alcotest.test_case "detected has latency" `Quick
            test_detected_fault_has_latency;
          Alcotest.test_case "sdc explained (unprotected)" `Quick
            test_sdc_explained_unprotected;
          Alcotest.test_case "benign leaves no corrupted output" `Quick
            test_benign_run_no_divergence_left ] );
      ( "vulnmap",
        [ Alcotest.test_case "schema valid + reproducible" `Quick
            test_vulnmap_schema_valid_and_reproducible;
          Alcotest.test_case "matches plain campaign" `Quick
            test_vulnmap_matches_campaign;
          Alcotest.test_case "render smoke" `Quick test_render_smoke ] );
      ( "records",
        [ Alcotest.test_case "structured dest (v2)" `Quick
            test_records_carry_structured_dest;
          Alcotest.test_case "v1 still validates" `Quick
            test_v1_files_still_validate ] );
    ]
