(* Tests for the lib/analysis layer: CFG construction over Prog
   functions (fall-through, jump edges, loops, diamonds, unreachable
   code), dominators, and the engine-based liveness that lib/core's
   wrapper now delegates to. *)

open Ferrum_asm
module Cfg = Ferrum_analysis.Cfg
module Liveness = Ferrum_analysis.Liveness
module I = Instr

let o op = I.original op
let movi r v = o (I.Mov (Reg.Q, I.Imm (Int64.of_int v), I.Reg r))
let add s d = o (I.Alu (I.Add, Reg.Q, I.Reg s, I.Reg d))
let cmp a b = o (I.Cmp (Reg.Q, I.Reg a, I.Reg b))
let jcc c l = o (I.Jcc (c, l))
let jmp l = o (I.Jmp l)
let store r d = o (I.Mov (Reg.Q, I.Reg r, I.Mem (I.mem ~base:Reg.RBP d)))
let ret = o I.Ret

let ids l = List.sort compare l

(* A diamond:
     head:  cmp; jl right_part  (fall into the left arm)
            movi rax            (left arm, falls through into join)
     join:  ret
     right: movi rbx; jmp join *)
let diamond () =
  Prog.func "main"
    [
      Prog.block "head"
        [ cmp Reg.RBX Reg.RAX; jcc Cond.L "right"; movi Reg.RAX 1 ];
      Prog.block "join" [ ret ];
      Prog.block "right" [ movi Reg.RBX 2; jmp "join" ];
    ]

let test_cfg_diamond () =
  let g = Cfg.build (diamond ()) in
  Alcotest.(check int) "four basic blocks" 4 (Array.length g.Cfg.blocks);
  (* block 0 = head up to the jcc, block 1 = the left arm, block 2 =
     join, block 3 = right *)
  Alcotest.(check (list int)) "branch splits head" [ 1; 3 ]
    (ids g.Cfg.blocks.(0).Cfg.succs);
  Alcotest.(check (list int)) "left arm falls into join" [ 2 ]
    g.Cfg.blocks.(1).Cfg.succs;
  Alcotest.(check (list int)) "join preds" [ 1; 3 ]
    (ids g.Cfg.blocks.(2).Cfg.preds);
  Alcotest.(check (list int)) "right jumps to join" [ 2 ]
    g.Cfg.blocks.(3).Cfg.succs;
  Alcotest.(check (list int)) "no unreachable blocks" []
    (Cfg.unreachable g);
  let doms = Cfg.dominators g in
  Alcotest.(check int) "entry self-dominates" 0 doms.(0);
  Alcotest.(check int) "join's idom is the branch, not an arm" 0 doms.(2);
  Alcotest.(check bool) "head dominates join" true (Cfg.dominates g doms 0 2);
  Alcotest.(check bool) "arm does not dominate join" false
    (Cfg.dominates g doms 1 2)

(* A loop with a back-edge and a checker-style side exit inside the
   textual body block (extended block gets split). *)
let loop () =
  Prog.func "main"
    [
      Prog.block "entry" [ movi Reg.RAX 0 ];
      Prog.block "body"
        [
          add Reg.RBX Reg.RAX;
          jcc Cond.NE Prog.exit_function_label;
          cmp Reg.RCX Reg.RAX;
          jcc Cond.L "body";
        ];
      Prog.block "done" [ ret ];
    ]

let test_cfg_loop () =
  let g = Cfg.build (loop ()) in
  Alcotest.(check int) "side exit splits the body" 4
    (Array.length g.Cfg.blocks);
  (* detector exits produce no edge *)
  Alcotest.(check (list int)) "exit_function edge dropped" [ 2 ]
    g.Cfg.blocks.(1).Cfg.succs;
  let header = Hashtbl.find g.Cfg.by_label "body" in
  Alcotest.(check (list int)) "back-edge to the loop header" [ header; 3 ]
    (ids g.Cfg.blocks.(2).Cfg.succs);
  let doms = Cfg.dominators g in
  Alcotest.(check bool) "header dominates the latch" true
    (Cfg.dominates g doms header 2);
  let rpo = Cfg.reverse_postorder g in
  Alcotest.(check int) "rpo covers every block" (Array.length g.Cfg.blocks)
    (Array.length rpo);
  Alcotest.(check int) "rpo starts at the entry" 0 rpo.(0)

let test_cfg_unreachable () =
  let f =
    Prog.func "main"
      [
        Prog.block "entry" [ jmp "end" ];
        Prog.block "orphan" [ movi Reg.RAX 7; jmp "end" ];
        Prog.block "end" [ ret ];
      ]
  in
  let g = Cfg.build f in
  let orphan = Hashtbl.find g.Cfg.by_label "orphan" in
  Alcotest.(check (list int)) "orphan detected" [ orphan ]
    (Cfg.unreachable g);
  let doms = Cfg.dominators g in
  Alcotest.(check int) "unreachable has no idom" (-1) doms.(orphan);
  Alcotest.(check bool) "nothing dominates unreachable" false
    (Cfg.dominates g doms 0 orphan);
  (* rpo still enumerates every block exactly once *)
  let rpo = Cfg.reverse_postorder g in
  Alcotest.(check (list int)) "rpo is a permutation"
    (List.init (Array.length g.Cfg.blocks) Fun.id)
    (ids (Array.to_list rpo))

let test_cfg_position () =
  let g = Cfg.build (loop ()) in
  (* block 2 is the second half of the textual "body" block *)
  let label, k = Cfg.position g 2 1 in
  Alcotest.(check string) "position label" "body" label;
  Alcotest.(check int) "position offset" 3 k

(* ---- liveness on the engine ---- *)

let test_liveness_basic () =
  let f =
    Prog.func "main"
      [
        Prog.block "entry"
          [ movi Reg.RAX 1; movi Reg.RBX 2; add Reg.RBX Reg.RAX;
            store Reg.RAX (-8); ret ];
      ]
  in
  let t = Liveness.analyze f in
  (* rbx is read by the add at k=2, so live before it... *)
  Alcotest.(check bool) "rbx live before its use" false
    (Liveness.dead_at t ~label:"entry" ~k:2 Reg.RBX);
  (* ...and dead after (killed by nothing, simply never read again) *)
  Alcotest.(check bool) "rbx dead after its last use" true
    (Liveness.dead_at t ~label:"entry" ~k:3 Reg.RBX);
  (* rax flows into the store, then ret reads it (return value) *)
  Alcotest.(check bool) "rax live before the store" false
    (Liveness.dead_at t ~label:"entry" ~k:3 Reg.RAX);
  (* r12 is never mentioned *)
  Alcotest.(check bool) "untouched reg dead" true
    (Liveness.dead_at t ~label:"entry" ~k:0 Reg.R12);
  (* unknown positions are conservatively live *)
  Alcotest.(check bool) "unknown position live" false
    (Liveness.dead_at t ~label:"nope" ~k:0 Reg.R12)

let test_liveness_loop () =
  let t = Liveness.analyze (loop ()) in
  (* rbx feeds the add every iteration: live on block entry of body *)
  Alcotest.(check bool) "loop-carried reg live at header" false
    (Liveness.dead_at t ~label:"body" ~k:0 Reg.RBX);
  Alcotest.(check bool) "loop-carried reg live at latch" false
    (Liveness.dead_at t ~label:"body" ~k:3 Reg.RBX)

let test_liveness_call_reads () =
  let f =
    Prog.func "main"
      [
        Prog.block "entry"
          [ movi Reg.R12 5; o (I.Call "helper"); movi Reg.RAX 0; ret ];
      ]
  in
  (* default: a call reads every GPR, so r12 is live just before it *)
  let t = Liveness.analyze f in
  Alcotest.(check bool) "conservative call keeps r12 live" false
    (Liveness.dead_at t ~label:"entry" ~k:1 Reg.R12);
  (* SysV view: r12 is not an argument register, hence dead *)
  let t' =
    Liveness.analyze
      ~call_reads:Reg.[ RDI; RSI; RDX; RCX; R8; R9; RAX; RSP; RBP ]
      f
  in
  Alcotest.(check bool) "sysv call leaves r12 dead" true
    (Liveness.dead_at t' ~label:"entry" ~k:1 Reg.R12)

let test_liveness_keep () =
  (* A dup occupies an index but must not kill under ~keep:Original:
     the original program's rcx (read by the store) stays live across
     the dup's write to it. *)
  let f =
    Prog.func "main"
      [
        Prog.block "entry"
          [
            movi Reg.RCX 1;
            I.dup (I.Mov (Reg.Q, I.Imm 9L, I.Reg Reg.RCX));
            store Reg.RCX (-8);
            ret;
          ];
      ]
  in
  let keep (i : I.ins) = i.I.prov = I.Original in
  let t = Liveness.analyze ~keep f in
  Alcotest.(check bool) "dup write does not kill" false
    (Liveness.dead_at t ~label:"entry" ~k:1 Reg.RCX);
  (* without ~keep the dup's full-width write kills rcx above it *)
  let t' = Liveness.analyze f in
  Alcotest.(check bool) "real write kills" true
    (Liveness.dead_at t' ~label:"entry" ~k:1 Reg.RCX)

(* The lib/core wrapper preserves the historical interface on real
   transform output: spare/requisition decisions still see their
   clobber targets as dead. *)
let test_wrapper_on_catalogue () =
  let m = (List.hd Ferrum_workloads.Catalog.all).Ferrum_workloads.Catalog.build () in
  let p = (Ferrum_eddi.Pipeline.raw m).Ferrum_eddi.Pipeline.program in
  List.iter
    (fun (f : Prog.func) ->
      let t = Ferrum_eddi.Liveness.analyze f in
      List.iter
        (fun (b : Prog.block) ->
          List.iteri
            (fun k _ ->
              let dead = Ferrum_eddi.Liveness.dead_regs_at t ~label:b.Prog.label ~k in
              (* dead_regs_at is consistent with dead_at *)
              List.iter
                (fun r ->
                  Alcotest.(check bool) "dead list is dead" true
                    (Ferrum_eddi.Liveness.dead_at t ~label:b.Prog.label ~k r))
                dead)
            b.Prog.insns)
        f.Prog.blocks)
    p.Prog.funcs

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop + side exit" `Quick test_cfg_loop;
          Alcotest.test_case "unreachable block" `Quick test_cfg_unreachable;
          Alcotest.test_case "source positions" `Quick test_cfg_position;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "straight line" `Quick test_liveness_basic;
          Alcotest.test_case "loop-carried" `Quick test_liveness_loop;
          Alcotest.test_case "call_reads refinement" `Quick
            test_liveness_call_reads;
          Alcotest.test_case "keep refinement" `Quick test_liveness_keep;
          Alcotest.test_case "core wrapper on catalogue" `Quick
            test_wrapper_on_catalogue;
        ] );
    ]
