(* Unit and property tests for the simulator: instruction semantics,
   flags, memory, control flow, SIMD, traps, costs and the
   fault-injection mutators. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Cost = Ferrum_machine.Cost

let originals = List.map Instr.original

(* Wrap a straight-line body into main; returns the final state. *)
let run_body ?(mem_size = 1 lsl 16) body =
  let p =
    Prog.program
      [ Prog.func "main" [ Prog.block "main" (originals (body @ [ Instr.Ret ])) ] ]
  in
  let img = Machine.load ~mem_size p in
  let st = Machine.fresh_state img in
  let outcome = Machine.run img st in
  (outcome, st)

let gpr st r = st.Machine.gpr.{Reg.gpr_index r}

let check_i64 = Alcotest.(check int64)

let exit_ok = function
  | Machine.Exit _ -> ()
  | o -> Alcotest.failf "expected exit, got %a" Machine.pp_outcome o

(* ---- moves and width semantics ---- *)

let test_mov_widths () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 0x1122334455667788L, Reg Reg.RAX);
        Mov (Reg.Q, Reg Reg.RAX, Reg Reg.RBX);
        Mov (Reg.B, Imm 0xFFL, Reg Reg.RBX);
        Mov (Reg.Q, Reg Reg.RAX, Reg Reg.RCX);
        Mov (Reg.W, Imm 0L, Reg Reg.RCX);
        Mov (Reg.Q, Reg Reg.RAX, Reg Reg.RDX);
        Mov (Reg.D, Imm 0x1L, Reg Reg.RDX) ]
  in
  check_i64 "byte write merges" 0x11223344556677FFL (gpr st Reg.RBX);
  check_i64 "word write merges" 0x1122334455660000L (gpr st Reg.RCX);
  check_i64 "dword write zero-extends" 0x1L (gpr st Reg.RDX)

let test_movslq_movzbq () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 0xFFFFFFFFL, Reg Reg.RAX); (* -1 as i32 *)
        Movslq (Reg Reg.RAX, Reg.RBX);
        Mov (Reg.Q, Imm 0x1FFL, Reg Reg.RCX);
        Movzbq (Reg Reg.RCX, Reg.RDX) ]
  in
  check_i64 "movslq sign-extends" (-1L) (gpr st Reg.RBX);
  check_i64 "movzbq zero-extends byte" 0xFFL (gpr st Reg.RDX)

let test_lea () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 1000L, Reg Reg.RAX);
        Mov (Reg.Q, Imm 5L, Reg Reg.RCX);
        Lea (Instr.mem ~base:Reg.RAX ~index:Reg.RCX ~scale:8 (-16), Reg.RBX) ]
  in
  check_i64 "lea computes address" 1024L (gpr st Reg.RBX)

(* ---- arithmetic and flags ---- *)

let test_alu_basic () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 7L, Reg Reg.RAX);
        Alu (Add, Reg.Q, Imm 3L, Reg Reg.RAX);
        Mov (Reg.Q, Imm 100L, Reg Reg.RBX);
        Alu (Sub, Reg.Q, Imm 42L, Reg Reg.RBX);
        Mov (Reg.Q, Imm (-6L), Reg Reg.RCX);
        Alu (Imul, Reg.Q, Imm 7L, Reg Reg.RCX);
        Mov (Reg.Q, Imm 0xF0L, Reg Reg.RDX);
        Alu (And, Reg.Q, Imm 0x3CL, Reg Reg.RDX);
        Mov (Reg.Q, Imm 1L, Reg Reg.RSI);
        Shift (Shl, Reg.Q, Amt_imm 10, Reg Reg.RSI);
        Mov (Reg.Q, Imm (-1024L), Reg Reg.RDI);
        Shift (Sar, Reg.Q, Amt_imm 3, Reg Reg.RDI);
        Mov (Reg.Q, Imm 16L, Reg Reg.R8);
        Neg (Reg.Q, Reg Reg.R8);
        Mov (Reg.Q, Imm 0L, Reg Reg.R9);
        Not (Reg.Q, Reg Reg.R9) ]
  in
  check_i64 "add" 10L (gpr st Reg.RAX);
  check_i64 "sub" 58L (gpr st Reg.RBX);
  check_i64 "imul" (-42L) (gpr st Reg.RCX);
  check_i64 "and" 0x30L (gpr st Reg.RDX);
  check_i64 "shl" 1024L (gpr st Reg.RSI);
  check_i64 "sar" (-128L) (gpr st Reg.RDI);
  check_i64 "neg" (-16L) (gpr st Reg.R8);
  check_i64 "not" (-1L) (gpr st Reg.R9)

let test_alu_32bit_wrap () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.D, Imm 0x7FFFFFFFL, Reg Reg.RAX);
        Alu (Add, Reg.D, Imm 1L, Reg Reg.RAX) ]
  in
  (* 32-bit overflow wraps and zero-extends *)
  check_i64 "32-bit wrap" 0x80000000L (gpr st Reg.RAX)

(* setcc after cmp, for each signed/unsigned relation *)
let setcc_value a b c =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm a, Reg Reg.RAX);
        Mov (Reg.Q, Imm b, Reg Reg.RCX);
        Mov (Reg.Q, Imm 0L, Reg Reg.RBX);
        Cmp (Reg.Q, Reg Reg.RCX, Reg Reg.RAX); (* flags of rax - rcx *)
        Set (c, Reg Reg.RBX) ]
  in
  gpr st Reg.RBX

let test_cmp_setcc () =
  let t name a b c expected =
    check_i64 name (if expected then 1L else 0L) (setcc_value a b c)
  in
  t "5 = 5" 5L 5L Cond.E true;
  t "5 != 6" 5L 6L Cond.NE true;
  t "-1 < 1 signed" (-1L) 1L Cond.L true;
  t "-1 > 1 unsigned" (-1L) 1L Cond.A true;
  t "3 <= 3" 3L 3L Cond.LE true;
  t "4 > 3" 4L 3L Cond.G true;
  t "3 >= 4 is false" 3L 4L Cond.GE false;
  t "2 < 3 unsigned" 2L 3L Cond.B true;
  t "min_int < 0 signed" Int64.min_int 0L Cond.L true;
  t "sign set" (-5L) 0L Cond.S true;
  t "sign clear" 5L 0L Cond.NS true

let prop_cmp_matches_int64_compare =
  QCheck.Test.make ~name:"cmp/setcc agrees with Int64.compare" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let s = Int64.compare a b and u = Int64.unsigned_compare a b in
      setcc_value a b Cond.E = (if s = 0 then 1L else 0L)
      && setcc_value a b Cond.L = (if s < 0 then 1L else 0L)
      && setcc_value a b Cond.G = (if s > 0 then 1L else 0L)
      && setcc_value a b Cond.B = (if u < 0 then 1L else 0L)
      && setcc_value a b Cond.A = (if u > 0 then 1L else 0L))

let prop_alu_matches_int64 =
  QCheck.Test.make ~name:"64-bit ALU agrees with Int64" ~count:500
    QCheck.(triple int64 int64 (QCheck.make Tgen.alu))
    (fun (a, b, op) ->
      let open Instr in
      let _, st =
        run_body
          [ Mov (Reg.Q, Imm a, Reg Reg.RAX);
            Mov (Reg.Q, Imm b, Reg Reg.RCX);
            Alu (op, Reg.Q, Reg Reg.RCX, Reg Reg.RAX) ]
      in
      let expect =
        match op with
        | Add -> Int64.add a b
        | Sub -> Int64.sub a b
        | Imul -> Int64.mul a b
        | And -> Int64.logand a b
        | Or -> Int64.logor a b
        | Xor -> Int64.logxor a b
      in
      Int64.equal (gpr st Reg.RAX) expect)

(* ---- memory ---- *)

let test_memory_rw () =
  let open Instr in
  let addr = 0x2000 in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm (Int64.of_int addr), Reg Reg.RAX);
        Mov (Reg.Q, Imm 0x0102030405060708L, Reg Reg.RCX);
        Mov (Reg.Q, Reg Reg.RCX, Mem (Instr.mem ~base:Reg.RAX 0));
        Mov (Reg.Q, Mem (Instr.mem ~base:Reg.RAX 0), Reg Reg.RDX);
        Mov (Reg.D, Mem (Instr.mem ~base:Reg.RAX 0), Reg Reg.RSI);
        Mov (Reg.B, Mem (Instr.mem ~base:Reg.RAX 7), Reg Reg.RDI) ]
  in
  check_i64 "q roundtrip" 0x0102030405060708L (gpr st Reg.RDX);
  check_i64 "little-endian dword" 0x05060708L (gpr st Reg.RSI);
  check_i64 "top byte" 0x01L (Int64.logand (gpr st Reg.RDI) 0xFFL)

let test_push_pop () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 111L, Reg Reg.RAX);
        Push (Reg Reg.RAX);
        Push (Imm 222L);
        Pop Reg.RBX;
        Pop Reg.RCX ]
  in
  check_i64 "lifo 1" 222L (gpr st Reg.RBX);
  check_i64 "lifo 2" 111L (gpr st Reg.RCX)

(* ---- division ---- *)

let test_division () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm (-17L), Reg Reg.RAX);
        Cqto;
        Mov (Reg.Q, Imm 5L, Reg Reg.RCX);
        Idiv (Reg.Q, Reg Reg.RCX) ]
  in
  (* x86 idiv truncates toward zero *)
  check_i64 "quotient" (-3L) (gpr st Reg.RAX);
  check_i64 "remainder" (-2L) (gpr st Reg.RDX)

let test_divide_by_zero_crashes () =
  let open Instr in
  let outcome, _ =
    run_body
      [ Mov (Reg.Q, Imm 1L, Reg Reg.RAX); Cqto;
        Mov (Reg.Q, Imm 0L, Reg Reg.RCX); Idiv (Reg.Q, Reg Reg.RCX) ]
  in
  match outcome with
  | Machine.Crash _ -> ()
  | o -> Alcotest.failf "expected crash, got %a" Machine.pp_outcome o

let test_divide_overflow_crashes () =
  let open Instr in
  let outcome, _ =
    run_body
      [ Mov (Reg.Q, Imm 1L, Reg Reg.RAX);
        Mov (Reg.Q, Imm 12345L, Reg Reg.RDX); (* corrupted sign extension *)
        Mov (Reg.Q, Imm 5L, Reg Reg.RCX);
        Idiv (Reg.Q, Reg Reg.RCX) ]
  in
  match outcome with
  | Machine.Crash _ -> ()
  | o -> Alcotest.failf "expected crash, got %a" Machine.pp_outcome o

(* ---- control flow, calls, output ---- *)

let test_branch_and_call () =
  let open Instr in
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main"
              (originals
                 [ Mov (Reg.Q, Imm 30L, Reg Reg.RDI);
                   Call "double_it";
                   Mov (Reg.Q, Reg Reg.RAX, Reg Reg.RDI);
                   Call "print_i64";
                   Cmp (Reg.Q, Imm 60L, Reg Reg.RAX);
                   Jcc (Cond.E, "good");
                   Jmp "bad" ]);
            Prog.block "bad"
              (originals [ Mov (Reg.Q, Imm 0L, Reg Reg.RDI); Call "print_i64"; Ret ]);
            Prog.block "good"
              (originals [ Mov (Reg.Q, Imm 1L, Reg Reg.RDI); Call "print_i64"; Ret ]) ];
        Prog.func "double_it"
          [ Prog.block "double_it"
              (originals
                 [ Mov (Reg.Q, Reg Reg.RDI, Reg Reg.RAX);
                   Alu (Add, Reg.Q, Reg Reg.RDI, Reg Reg.RAX); Ret ]) ] ]
  in
  let outcome, _ = Machine.run_fresh (Machine.load p) in
  match outcome with
  | Machine.Exit [ 60L; 1L ] -> ()
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

let test_detect_label_halts () =
  let open Instr in
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main" (originals [ Jmp "exit_function" ]) ] ]
  in
  match Machine.run_fresh (Machine.load p) with
  | Machine.Detected, _ -> ()
  | o, _ -> Alcotest.failf "expected detected, got %a" Machine.pp_outcome o

let test_oob_crashes () =
  let open Instr in
  let outcome, _ =
    run_body
      [ Mov (Reg.Q, Imm 0x7FFFFFFFFFFFL, Reg Reg.RAX);
        Mov (Reg.Q, Mem (Instr.mem ~base:Reg.RAX 0), Reg Reg.RCX) ]
  in
  match outcome with
  | Machine.Crash _ -> ()
  | o -> Alcotest.failf "expected crash, got %a" Machine.pp_outcome o

let test_timeout () =
  let open Instr in
  let p =
    Prog.program
      [ Prog.func "main" [ Prog.block "main" (originals [ Jmp "main" ]) ] ]
  in
  match Machine.run ~fuel:1000 (Machine.load p) (Machine.fresh_state (Machine.load p)) with
  | Machine.Timeout -> ()
  | o -> Alcotest.failf "expected timeout, got %a" Machine.pp_outcome o

(* ---- SIMD ---- *)

let test_simd_batch_semantics () =
  let open Instr in
  (* reproduce the paper Fig. 6 shape with equal values: vptest must set
     ZF (no mismatch) *)
  let body =
    [ Mov (Reg.Q, Imm 0xAAL, Reg Reg.RAX);
      MovQ_to_xmm (Reg Reg.RAX, 0);
      MovQ_to_xmm (Reg Reg.RAX, 1);
      Mov (Reg.Q, Imm 0xBBL, Reg Reg.RCX);
      Pinsrq (1, Psrc_reg Reg.RCX, 0);
      Pinsrq (1, Psrc_reg Reg.RCX, 1);
      Mov (Reg.Q, Imm 0xCCL, Reg Reg.RDX);
      MovQ_to_xmm (Reg Reg.RDX, 2);
      MovQ_to_xmm (Reg Reg.RDX, 3);
      Pinsrq (1, Psrc_reg Reg.RDX, 2);
      Pinsrq (1, Psrc_reg Reg.RDX, 3);
      Vinserti128 (1, 2, 0, 0);
      Vinserti128 (1, 3, 1, 1);
      Vpxor (1, 0, 0);
      Vptest (0, 0);
      Set (Cond.E, Reg Reg.RBX) ]
  in
  let _, st = run_body body in
  check_i64 "all lanes equal -> ZF" 1L (gpr st Reg.RBX);
  (* now corrupt one lane and re-check *)
  let body2 =
    body
    @ [ Mov (Reg.Q, Imm 0xDEADL, Reg Reg.RSI);
        Pinsrq (0, Psrc_reg Reg.RSI, 0);
        MovQ_to_xmm (Reg Reg.RAX, 1);
        Pinsrq (1, Psrc_reg Reg.RCX, 1);
        Vinserti128 (1, 2, 0, 0);
        Vinserti128 (1, 3, 1, 1);
        Vpxor (1, 0, 0);
        Vptest (0, 0);
        Set (Cond.NE, Reg Reg.R8) ]
  in
  let _, st2 = run_body body2 in
  check_i64 "mismatch -> not ZF" 1L (gpr st2 Reg.R8)

let test_movq_xmm_zeroes_high () =
  let open Instr in
  let _, st =
    run_body
      [ Mov (Reg.Q, Imm 5L, Reg Reg.RAX);
        Pinsrq (1, Psrc_reg Reg.RAX, 0); (* set lane 1 *)
        MovQ_to_xmm (Reg Reg.RAX, 0); (* must zero lane 1 *)
        Pextrq (1, 0, Reg.RBX) ]
  in
  check_i64 "movq zeroes bits 64..127" 0L (gpr st Reg.RBX)

let prop_shifts_match_int64 =
  QCheck.Test.make ~name:"64-bit shifts agree with Int64" ~count:300
    QCheck.(pair int64 (int_range 0 63))
    (fun (a, n) ->
      let open Instr in
      let _, st =
        run_body
          [ Mov (Reg.Q, Imm a, Reg Reg.RAX);
            Shift (Shl, Reg.Q, Amt_imm n, Reg Reg.RAX);
            Mov (Reg.Q, Imm a, Reg Reg.RBX);
            Shift (Sar, Reg.Q, Amt_imm n, Reg Reg.RBX);
            Mov (Reg.Q, Imm a, Reg Reg.RCX);
            Shift (Shr, Reg.Q, Amt_imm n, Reg Reg.RCX) ]
      in
      Int64.equal (gpr st Reg.RAX) (Int64.shift_left a n)
      && Int64.equal (gpr st Reg.RBX) (Int64.shift_right a n)
      && Int64.equal (gpr st Reg.RCX) (Int64.shift_right_logical a n))

let prop_sign_extension =
  QCheck.Test.make ~name:"movslq/movzbq agree with the reference" ~count:300
    QCheck.int64 (fun a ->
      let open Instr in
      let _, st =
        run_body
          [ Mov (Reg.Q, Imm a, Reg Reg.RAX);
            Movslq (Reg Reg.RAX, Reg.RBX);
            Movzbq (Reg Reg.RAX, Reg.RCX) ]
      in
      Int64.equal (gpr st Reg.RBX) (Int64.of_int32 (Int64.to_int32 a))
      && Int64.equal (gpr st Reg.RCX) (Int64.logand a 0xFFL))

let prop_division_matches_int64 =
  QCheck.Test.make ~name:"idiv agrees with Int64.div/rem" ~count:300
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      QCheck.assume (not (Int64.equal b 0L));
      QCheck.assume
        (not (Int64.equal a Int64.min_int && Int64.equal b (-1L)));
      let open Instr in
      let _, st =
        run_body
          [ Mov (Reg.Q, Imm a, Reg Reg.RAX); Cqto;
            Mov (Reg.Q, Imm b, Reg Reg.RCX); Idiv (Reg.Q, Reg Reg.RCX) ]
      in
      Int64.equal (gpr st Reg.RAX) (Int64.div a b)
      && Int64.equal (gpr st Reg.RDX) (Int64.rem a b))

(* ---- fault mutators ---- *)

let test_flip_gpr () =
  let img =
    Machine.load
      (Prog.program
         [ Prog.func "main" [ Prog.block "main" (originals [ Instr.Ret ]) ] ])
  in
  let st = Machine.fresh_state img in
  st.Machine.gpr.{Reg.gpr_index Reg.RAX} <- 0L;
  Machine.flip_gpr st Reg.RAX Reg.Q ~bit:17;
  check_i64 "bit 17" (Int64.shift_left 1L 17) (gpr st Reg.RAX);
  Machine.flip_gpr st Reg.RAX Reg.Q ~bit:17;
  check_i64 "flip back" 0L (gpr st Reg.RAX);
  Machine.flip_gpr st Reg.RAX Reg.B ~bit:70;
  Alcotest.(check bool) "byte view wraps bit index" true
    (Int64.unsigned_compare (gpr st Reg.RAX) 0x100L < 0);
  Machine.flip_flag st Cond.ZF;
  Alcotest.(check bool) "zf flipped" true st.Machine.zf;
  Machine.flip_simd_lane st 3 ~lane:2 ~bit:1;
  check_i64 "simd lane" 2L st.Machine.simd.{(3 * 8) + 2}

(* ---- cost model ---- *)

let test_cost_model () =
  let open Instr in
  let m = Cost.default in
  let load = Mov (Reg.Q, Mem (Instr.mem ~base:Reg.RBP (-8)), Reg Reg.RAX) in
  Alcotest.(check bool) "orig load costs full" true
    (Cost.cost m (Instr.original load) = m.Cost.load);
  Alcotest.(check bool) "dup load discounted" true
    (Cost.cost m (Instr.dup load) < m.Cost.load);
  Alcotest.(check bool) "check branch flat" true
    (Cost.cost m (Instr.check (Jcc (Cond.NE, "exit_function")))
    = m.Cost.check_branch);
  Alcotest.(check bool) "simd protection cheaper than scalar" true
    (Cost.cost m (Instr.dup (MovQ_to_xmm (Reg Reg.RAX, 0)))
    < Cost.cost m (Instr.dup (Mov (Reg.Q, Reg Reg.RAX, Reg Reg.RBX))));
  Alcotest.(check bool) "no_overlap charges full" true
    (Cost.cost Cost.no_overlap (Instr.dup load) = Cost.no_overlap.Cost.load)

let test_cycles_accumulate () =
  let open Instr in
  let outcome, st =
    run_body [ Mov (Reg.Q, Imm 1L, Reg Reg.RAX); Alu (Add, Reg.Q, Imm 1L, Reg Reg.RAX) ]
  in
  exit_ok outcome;
  Alcotest.(check int) "steps" 3 st.Machine.steps;
  Alcotest.(check bool) "cycles positive" true (st.Machine.cycles > 0.0)

let () =
  Alcotest.run "machine"
    [
      ( "moves",
        [ Alcotest.test_case "widths" `Quick test_mov_widths;
          Alcotest.test_case "sign/zero extension" `Quick test_movslq_movzbq;
          Alcotest.test_case "lea" `Quick test_lea ] );
      ( "alu",
        [ Alcotest.test_case "basic ops" `Quick test_alu_basic;
          Alcotest.test_case "32-bit wrap" `Quick test_alu_32bit_wrap;
          QCheck_alcotest.to_alcotest prop_alu_matches_int64;
          QCheck_alcotest.to_alcotest prop_shifts_match_int64;
          QCheck_alcotest.to_alcotest prop_sign_extension ] );
      ( "flags",
        [ Alcotest.test_case "cmp/setcc" `Quick test_cmp_setcc;
          QCheck_alcotest.to_alcotest prop_cmp_matches_int64_compare ] );
      ( "memory",
        [ Alcotest.test_case "load/store widths" `Quick test_memory_rw;
          Alcotest.test_case "push/pop" `Quick test_push_pop ] );
      ( "division",
        [ Alcotest.test_case "idiv semantics" `Quick test_division;
          QCheck_alcotest.to_alcotest prop_division_matches_int64;
          Alcotest.test_case "divide by zero traps" `Quick
            test_divide_by_zero_crashes;
          Alcotest.test_case "divide overflow traps" `Quick
            test_divide_overflow_crashes ] );
      ( "control",
        [ Alcotest.test_case "branch and call" `Quick test_branch_and_call;
          Alcotest.test_case "exit_function halts as detected" `Quick
            test_detect_label_halts;
          Alcotest.test_case "out-of-bounds crashes" `Quick test_oob_crashes;
          Alcotest.test_case "timeout" `Quick test_timeout ] );
      ( "simd",
        [ Alcotest.test_case "batch check semantics" `Quick
            test_simd_batch_semantics;
          Alcotest.test_case "movq zeroes high lane" `Quick
            test_movq_xmm_zeroes_high ] );
      ( "faults",
        [ Alcotest.test_case "flip mutators" `Quick test_flip_gpr ] );
      ( "cost",
        [ Alcotest.test_case "model" `Quick test_cost_model;
          Alcotest.test_case "accumulation" `Quick test_cycles_accumulate ] );
    ]
