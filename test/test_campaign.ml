(* Tests for the campaign orchestrator: deterministic sharding, the
   fork-pool runner's byte-identity with sequential campaigns, the
   typed event stream, ordered-log reassembly under worker death, and
   replayable manifests. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Events = Ferrum_telemetry.Events
module Shard = Ferrum_campaign.Shard
module Runner = Ferrum_campaign.Runner
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog

(* Same protected-looking fixture the faultsim/telemetry tests use:
   one original site, a duplicate and a checker, so campaigns over it
   are instant and produce detected outcomes. *)
let checked_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.RDI));
              Instr.dup (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.R10));
              Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RDI));
              Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

let fixture_target () = F.prepare (Machine.load (checked_program ()))

(* The sequential reference: record lines exactly as `inject --metrics`
   streams them. *)
let sequential ~traced ~seed ~samples img =
  let buf = ref [] in
  let on_record r = buf := Json.to_string (F.record_to_json r) :: !buf in
  if traced then begin
    let v = F.vulnmap_campaign ~seed ~samples ~on_record img in
    (List.rev !buf, v.F.v_counts, Some v)
  end
  else begin
    let res = F.campaign ~seed ~samples ~on_record img in
    (List.rev !buf, res.F.counts, None)
  end

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let tmp_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ferrum-campaign-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf d;
  d

(* ---- sharding ---- *)

let test_split_at () =
  let seed = 123L in
  let root = Rng.create ~seed in
  for k = 0 to 9 do
    let seq = Rng.next_int64 (Rng.split root) in
    let direct = Rng.next_int64 (Rng.split_at ~seed k) in
    Alcotest.(check int64) (Fmt.str "stream %d first draw" k) seq direct
  done;
  match Rng.split_at ~seed (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index must be rejected"

let test_plan () =
  List.iter
    (fun (shards, samples) ->
      let ranges = Shard.plan ~shards ~samples in
      let k = Array.length ranges in
      Alcotest.(check bool)
        (Fmt.str "clamped count %d/%d" shards samples)
        true
        (k >= 1 && k <= min shards samples);
      (* contiguous cover of [0, samples) *)
      Alcotest.(check int) "starts at 0" 0 ranges.(0).Shard.lo;
      Alcotest.(check int) "ends at samples" samples ranges.(k - 1).Shard.hi;
      for i = 1 to k - 1 do
        Alcotest.(check int)
          (Fmt.str "contiguous at %d" i)
          ranges.(i - 1).Shard.hi ranges.(i).Shard.lo
      done;
      (* near-equal: sizes differ by at most one *)
      let sizes =
        Array.to_list (Array.map Shard.range_samples ranges)
      in
      let mn = List.fold_left min max_int sizes
      and mx = List.fold_left max 0 sizes in
      Alcotest.(check bool) "near-equal" true (mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (7, 5); (16, 100) ];
  Alcotest.(check int) "no samples, no shards" 0
    (Array.length (Shard.plan ~shards:4 ~samples:0))

(* ---- runner byte-identity ---- *)

let samples = 48
let seed = 7L

let test_inject_identity () =
  let img = Machine.load (checked_program ()) in
  let target = F.prepare img in
  let ref_lines, ref_counts, _ = sequential ~traced:false ~seed ~samples img in
  List.iter
    (fun k ->
      let r =
        Runner.run ~mode:Runner.Inject ~shards:k ~seed ~samples target
      in
      Alcotest.(check (list string))
        (Fmt.str "record lines, %d shards" k)
        ref_lines r.Runner.record_lines;
      Alcotest.(check bool)
        (Fmt.str "counts, %d shards" k)
        true
        (r.Runner.counts = ref_counts))
    [ 1; 2; 3; 7 ]

let test_vulnmap_identity () =
  let img = Machine.load (checked_program ()) in
  let target = F.prepare img in
  let ref_lines, ref_counts, ref_v =
    sequential ~traced:true ~seed ~samples img
  in
  let ref_v = Option.get ref_v in
  let ref_rows = List.map Json.to_string (F.vulnmap_rows ref_v) in
  List.iter
    (fun k ->
      let r =
        Runner.run ~mode:Runner.Traced ~shards:k ~seed ~samples target
      in
      let v = Option.get r.Runner.vulnmap in
      Alcotest.(check (list string))
        (Fmt.str "record lines, %d shards" k)
        ref_lines r.Runner.record_lines;
      Alcotest.(check (list string))
        (Fmt.str "vulnmap rows, %d shards" k)
        ref_rows
        (List.map Json.to_string (F.vulnmap_rows v));
      Alcotest.(check bool)
        (Fmt.str "latencies, %d shards" k)
        true
        (v.F.v_latencies = ref_v.F.v_latencies);
      Alcotest.(check bool)
        (Fmt.str "escapes, %d shards" k)
        true
        (v.F.v_escapes = ref_v.F.v_escapes);
      Alcotest.(check bool)
        (Fmt.str "counts, %d shards" k)
        true
        (r.Runner.counts = ref_counts))
    [ 1; 2; 3; 7 ]

(* A real workload under a real technique, through the worker pool. *)
let test_workload_identity () =
  let entry = List.hd Catalog.all in
  let res = Pipeline.protect Technique.Ferrum (entry.Catalog.build ()) in
  let img = Machine.load res.Pipeline.program in
  let target = F.prepare img in
  let n = 24 in
  let ref_lines, ref_counts, _ =
    sequential ~traced:false ~seed:11L ~samples:n img
  in
  let r =
    Runner.run ~mode:Runner.Inject ~shards:4 ~seed:11L ~samples:n target
  in
  Alcotest.(check (list string)) "record lines" ref_lines r.Runner.record_lines;
  Alcotest.(check bool) "counts" true (r.Runner.counts = ref_counts)

(* ---- events ---- *)

let test_event_roundtrip () =
  let tally =
    { Events.benign = 3; sdc = 1; detected = 7; crash = 2; timeout = 0 }
  in
  let bodies =
    [ Events.Campaign_started { shards = 4; samples = 100 };
      Events.Shard_started { lo = 25; hi = 50 };
      Events.Progress
        { done_ = 13; total = 25; tally; clock = 991; spent = 38;
          budget = 100; hw = 0.125 };
      Events.Shard_finished { done_ = 25; total = 25; tally; clock = 1800 };
      Events.Shard_retry { reason = "worker exited 66 after 2/25 samples" };
      Events.Campaign_finished { total = 100; tally; clock = 7200 } ]
  in
  List.iteri
    (fun i body ->
      let e = { Events.seq = i; shard = 1; attempt = 0; body } in
      match Events.of_json (Events.to_json e) with
      | Ok e' ->
        Alcotest.(check bool)
          (Fmt.str "round-trip %s" (Events.body_name body))
          true (e = e')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    bodies;
  (* the serialized form validates against the schema's field list *)
  let lines =
    Json.to_string (Events.header [ ("benchmark", Json.Str "x") ])
    :: List.mapi
         (fun i body ->
           Json.to_string
             (Events.to_json { Events.seq = i; shard = 0; attempt = 0; body }))
         bodies
  in
  (match
     Metrics.validate_lines ~kind:Events.kind ~record_fields:Events.fields
       lines
   with
  | Ok n -> Alcotest.(check int) "validated records" (List.length bodies) n
  | Error e -> Alcotest.failf "schema validation failed: %s" e);
  (* a broken record is reported with its line number *)
  match
    Metrics.validate_lines ~kind:Events.kind ~record_fields:Events.fields
      (List.filteri (fun i _ -> i < 2) lines @ [ "{\"event\":1}" ])
  with
  | Error e ->
    Alcotest.(check bool) "line number in error" true
      (contains ~affix:"line 3" e)
  | Ok _ -> Alcotest.fail "broken record must not validate"

let test_replay () =
  let target = fixture_target () in
  let r = Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples target in
  List.iteri
    (fun i (e : Events.t) ->
      Alcotest.(check int) (Fmt.str "seq %d" i) i e.Events.seq)
    r.Runner.events;
  let lines =
    List.map (fun e -> Json.to_string (Events.to_json e)) r.Runner.events
  in
  match Events.replay lines with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok (tally, clock) ->
    Alcotest.(check int) "clock" r.Runner.clock clock;
    Alcotest.(check bool) "tally" true
      (tally = Runner.tally_of_counts r.Runner.counts)

(* ---- worker death and ordered-log reassembly ---- *)

let test_worker_death () =
  let img = Machine.load (checked_program ()) in
  let target = F.prepare img in
  let ref_lines, ref_counts, _ = sequential ~traced:false ~seed ~samples img in
  let sabotage ~shard ~attempt =
    if shard = 1 && attempt = 0 then Some 2 else None
  in
  let r =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~sabotage target
  in
  Alcotest.(check int) "one retry" 1 r.Runner.retried;
  Alcotest.(check (list string)) "records unaffected by the death" ref_lines
    r.Runner.record_lines;
  Alcotest.(check bool) "counts unaffected" true (r.Runner.counts = ref_counts);
  let retries =
    List.filter
      (fun (e : Events.t) ->
        match e.Events.body with Events.Shard_retry _ -> true | _ -> false)
      r.Runner.events
  in
  (match retries with
  | [ e ] ->
    Alcotest.(check int) "retry marker on shard 1" 1 e.Events.shard;
    Alcotest.(check int) "retry marker attempt 0" 0 e.Events.attempt
  | l -> Alcotest.failf "expected one retry marker, got %d" (List.length l));
  (* the reassembled log is still contiguous and replayable *)
  let lines =
    List.map (fun e -> Json.to_string (Events.to_json e)) r.Runner.events
  in
  match Events.replay lines with
  | Error e -> Alcotest.failf "replay after death failed: %s" e
  | Ok (tally, _) ->
    Alcotest.(check bool) "replayed tally" true
      (tally = Runner.tally_of_counts r.Runner.counts)

(* A malformed protocol line must not abort the campaign (or leak the
   other workers): the offending worker is killed and its shard retried
   through the ordinary death path. *)
let test_protocol_error () =
  let img = Machine.load (checked_program ()) in
  let target = F.prepare img in
  let ref_lines, ref_counts, _ = sequential ~traced:false ~seed ~samples img in
  let garble ~shard ~attempt =
    if shard = 1 && attempt = 0 then Some 2 else None
  in
  let r =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~garble target
  in
  Alcotest.(check int) "one retry" 1 r.Runner.retried;
  Alcotest.(check (list string)) "records unaffected" ref_lines
    r.Runner.record_lines;
  Alcotest.(check bool) "counts unaffected" true (r.Runner.counts = ref_counts);
  match
    List.filter_map
      (fun (e : Events.t) ->
        match e.Events.body with
        | Events.Shard_retry { reason } -> Some reason
        | _ -> None)
      r.Runner.events
  with
  | [ reason ] ->
    Alcotest.(check bool) "reason names the protocol error" true
      (contains ~affix:"protocol error" reason)
  | l -> Alcotest.failf "expected one retry marker, got %d" (List.length l)

(* A corrupt part file is rejected by the resume loader, so the shard
   re-runs and the merged output is unchanged. *)
let test_corrupt_part_rejected () =
  let target = fixture_target () in
  let reference =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples target
  in
  let dir = tmp_dir "corrupt" in
  ignore
    (Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~part_dir:dir
       target);
  let part = Filename.concat dir "shard-1.jsonl" in
  let oc = open_out part in
  output_string oc "{\"t\":\"bogus\"}\n";
  close_out oc;
  let resumed =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~part_dir:dir
      target
  in
  Alcotest.(check (list string)) "records unaffected"
    reference.Runner.record_lines resumed.Runner.record_lines;
  rm_rf dir

let test_resume_from_parts () =
  let target = fixture_target () in
  let dir = tmp_dir "resume" in
  let first =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~part_dir:dir
      target
  in
  (* with every shard preloaded from its part file, no worker forks at
     all: a sabotage that would kill any worker instantly cannot fire *)
  let resumed =
    Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples ~part_dir:dir
      ~retries:0
      ~sabotage:(fun ~shard:_ ~attempt:_ -> Some 0)
      target
  in
  Alcotest.(check (list string)) "resumed records" first.Runner.record_lines
    resumed.Runner.record_lines;
  Alcotest.(check bool) "resumed counts" true
    (first.Runner.counts = resumed.Runner.counts);
  let ser r =
    List.map (fun e -> Json.to_string (Events.to_json e)) r.Runner.events
  in
  Alcotest.(check (list string)) "resumed canonical log" (ser first)
    (ser resumed);
  rm_rf dir

let test_log_reproducible () =
  let target = fixture_target () in
  let run () =
    Runner.run ~mode:Runner.Inject ~shards:4 ~workers:2 ~seed ~samples target
  in
  let a = run () and b = run () in
  let ser r =
    List.map (fun e -> Json.to_string (Events.to_json e)) r.Runner.events
  in
  Alcotest.(check (list string))
    "two runs, byte-identical canonical logs" (ser a) (ser b)

(* ---- manifests and run directories ---- *)

let test_manifest_roundtrip () =
  let p = checked_program () in
  let target = F.prepare (Machine.load p) in
  let m =
    Manifest.make ~benchmark:"fixture" ~technique:"raw" ~samples ~seed
      ~shards:3 ~fault_bits:1 ~all_sites:false ~traced:true ~program:p target
  in
  let dir = tmp_dir "manifest" in
  Manifest.save ~dir m;
  (match Manifest.load ~dir with
  | Ok m' -> Alcotest.(check bool) "round-trip" true (m = m')
  | Error e -> Alcotest.failf "load failed: %s" e);
  rm_rf dir

(* Manifest compatibility is what lets a fresh run trust (or clear) a
   directory's part files: any field feeding per-sample derivation or
   shard layout must match; display metadata may differ. *)
let test_manifest_compatible () =
  let p = checked_program () in
  let target = F.prepare (Machine.load p) in
  let make ?(benchmark = "fixture") ?(samples = samples) ?(seed = seed)
      ?(shards = 3) ?(fault_bits = 1) ?(all_sites = false) ?(traced = true)
      ?(program = p) () =
    Manifest.make ~benchmark ~technique:"raw" ~samples ~seed ~shards
      ~fault_bits ~all_sites ~traced ~program target
  in
  let base = make () in
  let check name expected m =
    Alcotest.(check bool) name expected (Manifest.compatible base m)
  in
  check "identical config" true (make ());
  check "display-only drift" true (make ~benchmark:"renamed" ());
  check "seed change" false (make ~seed:8L ());
  check "sample-count change" false (make ~samples:(samples + 1) ());
  check "shard-map change" false (make ~shards:4 ());
  check "fault-width change" false (make ~fault_bits:2 ());
  check "scope change" false (make ~all_sites:true ());
  check "traced change" false (make ~traced:false ());
  let scratch_target = F.prepare ~engine:F.Scratch (Machine.load p) in
  check "engine change" false
    (Manifest.make ~benchmark:"fixture" ~technique:"raw" ~samples ~seed
       ~shards:3 ~fault_bits:1 ~all_sites:false ~traced:true ~program:p
       scratch_target);
  let other =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main"
              [ Instr.original
                  (Instr.Mov (Reg.Q, Instr.Imm 9L, Instr.Reg Reg.RDI));
                Instr.original Instr.Ret ] ] ]
  in
  check "program change" false (make ~program:other ())

let test_run_dir_replay_equality () =
  let p = checked_program () in
  let target = F.prepare (Machine.load p) in
  let m =
    Manifest.make ~benchmark:"fixture" ~technique:"raw" ~samples ~seed
      ~shards:3 ~fault_bits:1 ~all_sites:false ~traced:true ~program:p target
  in
  let write dir =
    let result =
      Runner.run ~mode:Runner.Traced ~shards:3 ~seed ~samples
        ~part_dir:(Store.parts_dir dir) target
    in
    Store.write_run ~dir ~manifest:m ~result ()
  in
  let d1 = tmp_dir "run1" and d2 = tmp_dir "run2" in
  write d1;
  write d2;
  let contents dir file =
    String.concat "\n" (Metrics.read_lines (Filename.concat dir file))
  in
  List.iter
    (fun file ->
      Alcotest.(check string)
        (Fmt.str "%s identical across runs" file)
        (contents d1 file) (contents d2 file))
    [ Store.injection_file; Store.vulnmap_file; Store.events_file;
      Store.trace_file; Manifest.file ];
  (* the emitted events file validates against its schema *)
  (match
     Metrics.validate_lines ~kind:Events.kind ~record_fields:Events.fields
       (Metrics.read_lines (Filename.concat d1 Store.events_file))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "events file invalid: %s" e);
  (* and the injection file equals the sequential CLI's byte-for-byte *)
  let ref_lines, _, _ =
    sequential ~traced:true ~seed ~samples (Machine.load p)
  in
  let expected =
    Json.to_string
      (Store.injection_header ~benchmark:"fixture" ~technique:"raw" ~samples
         ~seed ~all_sites:false ~fault_bits:1)
    :: ref_lines
  in
  Alcotest.(check (list string)) "injection file = header + records"
    expected
    (Metrics.read_lines (Filename.concat d1 Store.injection_file));
  rm_rf d1;
  rm_rf d2

let () =
  Alcotest.run "campaign"
    [
      ( "sharding",
        [
          Alcotest.test_case "split_at = iterated splits" `Quick test_split_at;
          Alcotest.test_case "plan covers and balances" `Quick test_plan;
        ] );
      ( "runner",
        [
          Alcotest.test_case "inject identity K=1,2,3,7" `Quick
            test_inject_identity;
          Alcotest.test_case "vulnmap identity K=1,2,3,7" `Quick
            test_vulnmap_identity;
          Alcotest.test_case "protected workload identity" `Slow
            test_workload_identity;
          Alcotest.test_case "canonical log reproducible" `Quick
            test_log_reproducible;
        ] );
      ( "events",
        [
          Alcotest.test_case "round-trip + schema" `Quick test_event_roundtrip;
          Alcotest.test_case "replay" `Quick test_replay;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "worker death, ordered reassembly" `Quick
            test_worker_death;
          Alcotest.test_case "protocol error, kill and retry" `Quick
            test_protocol_error;
          Alcotest.test_case "corrupt part file rejected" `Quick
            test_corrupt_part_rejected;
          Alcotest.test_case "resume from part files" `Quick
            test_resume_from_parts;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "compatibility gate" `Quick
            test_manifest_compatible;
          Alcotest.test_case "run directories replay equal" `Quick
            test_run_dir_replay_equality;
        ] );
    ]
