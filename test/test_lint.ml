(* The static protection verifier, attacked from both sides:

   - negative corpus: hand-mutated protected shapes (checker deleted,
     check moved after its store, spare clobbered while live, SIMD
     batch never flushed, pair verification removed) must each produce
     exactly the expected finding kind;
   - positive: the whole catalogue under all three techniques lints
     with zero error-severity findings;
   - the JSONL export validates against its own schema and is
     byte-reproducible;
   - cross-validation: every unchecked-site / output-before-check /
     unprotected-program SDC escape of a fixed-seed vulnmap campaign
     lies inside the statically predicted uncovered set;
   - printer/parser round-trip over the catalogue in every protected
     form. *)

open Ferrum_asm
module Shadow = Ferrum_analysis.Shadow
module Lint = Ferrum_analysis.Lint
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Catalog = Ferrum_workloads.Catalog
module Metrics = Ferrum_telemetry.Metrics
module Json = Ferrum_telemetry.Json
module I = Instr

let kind_t =
  Alcotest.testable
    (fun ppf k -> Fmt.string ppf (Shadow.kind_name k))
    ( = )

let kinds fs = List.map (fun (f : Shadow.finding) -> f.Shadow.f_kind) fs

let severe fs =
  List.filter
    (fun (f : Shadow.finding) -> f.Shadow.f_severity = Shadow.Error)
    fs

(* ---- the hand-built corpus ---- *)

let o op = I.original op
let movi r v = o (I.Mov (Reg.Q, I.Imm (Int64.of_int v), I.Reg r))
let store r d = o (I.Mov (Reg.Q, I.Reg r, I.Mem (I.mem ~base:Reg.RBP d)))
let ret = o I.Ret

(* Fig. 4 re-execution protection of `movq $5, %rax` with spare rcx,
   followed by a store (the sync point) and a return. *)
let protected_mov ~checker ~dup ~late_check extra =
  let dup_i = [ I.dup (I.Mov (Reg.Q, I.Imm 5L, I.Reg Reg.RCX)) ] in
  let chk =
    [
      I.check (I.Cmp (Reg.Q, I.Reg Reg.RCX, I.Reg Reg.RAX));
      I.check (I.Jcc (Cond.NE, Prog.exit_function_label));
    ]
  in
  Prog.func "main"
    [
      Prog.block "entry"
        ((if dup then dup_i else [])
        @ [ movi Reg.RAX 5 ]
        @ (if checker then chk else [])
        @ [ store Reg.RAX (-8) ]
        @ (if late_check then chk else [])
        @ extra @ [ ret ]);
    ]

let hybrid = Lint.profile_hybrid
let ferrum = Lint.profile_ferrum

let test_clean_shape () =
  let f = protected_mov ~checker:true ~dup:true ~late_check:false [] in
  Alcotest.(check (list kind_t)) "no findings" [] (kinds (Shadow.scan_func hybrid f))

let test_checker_deleted () =
  let f = protected_mov ~checker:false ~dup:true ~late_check:false [] in
  Alcotest.(check (list kind_t)) "unchecked sync"
    [ Shadow.Unchecked_sync ]
    (kinds (severe (Shadow.scan_func hybrid f)))

let test_check_after_store () =
  (* the duplicate is checked, but only after the store retired: one
     finding, and exactly one — the late checker must discharge
     silently rather than count as dead code *)
  let f = protected_mov ~checker:false ~dup:true ~late_check:true [] in
  Alcotest.(check (list kind_t)) "check moved after its store"
    [ Shadow.Unchecked_sync ]
    (kinds (Shadow.scan_func hybrid f))

let test_dup_deleted () =
  let f = protected_mov ~checker:true ~dup:false ~late_check:false [] in
  let fs = Shadow.scan_func hybrid f in
  Alcotest.(check (list kind_t)) "orphan checker"
    [ Shadow.Checker_dead_code ]
    (kinds (severe fs));
  Alcotest.(check bool) "unprotected original warned" true
    (List.mem Shadow.Missing_duplicate (kinds fs))

let test_both_deleted () =
  let f = protected_mov ~checker:false ~dup:false ~late_check:false [] in
  Alcotest.(check (list kind_t)) "bare original is only a warning"
    [ Shadow.Missing_duplicate ]
    (kinds (Shadow.scan_func hybrid f));
  Alcotest.(check (list kind_t)) "no errors" []
    (kinds (severe (Shadow.scan_func hybrid f)))

let test_spare_not_dead () =
  (* rcx is requisitioned as the spare while a downstream store still
     reads its original value *)
  let f =
    protected_mov ~checker:true ~dup:true ~late_check:false
      [ store Reg.RCX (-16) ]
  in
  Alcotest.(check (list kind_t)) "clobbered live spare"
    [ Shadow.Spare_not_dead ]
    (kinds (severe (Shadow.scan_func hybrid f)))

(* Figs. 6-7: a SIMD-batched duplicate comparison. *)
let simd_block ~flushed =
  let deposit =
    [
      I.dup (I.MovQ_to_xmm (I.Reg Reg.RBX, 14));
      o (I.Mov (Reg.Q, I.Reg Reg.RBX, I.Reg Reg.RAX));
      I.instrumentation (I.MovQ_to_xmm (I.Reg Reg.RAX, 12));
    ]
  in
  let flush =
    [
      I.check (I.Vpxor (12, 14, 14));
      I.check (I.Vptest (14, 14));
      I.check (I.Jcc (Cond.NE, Prog.exit_function_label));
    ]
  in
  Prog.func "main"
    [
      Prog.block "entry"
        (deposit @ (if flushed then flush else []) @ [ ret ]);
    ]

let test_simd_flushed () =
  Alcotest.(check (list kind_t)) "flushed batch is clean" []
    (kinds (Shadow.scan_func ferrum (simd_block ~flushed:true)))

let test_simd_unflushed () =
  Alcotest.(check (list kind_t)) "batch never flushed"
    [ Shadow.Simd_batch_unflushed ]
    (kinds (severe (Shadow.scan_func ferrum (simd_block ~flushed:false))))

(* Fig. 5: protected compare-and-branch; the target block must open
   with the deferred pair verification. *)
let cmp_jcc_func ~entry_check =
  let target_checks =
    [
      I.check (I.Cmp (Reg.B, I.Reg Reg.RDX, I.Reg Reg.RCX));
      I.check (I.Jcc (Cond.NE, Prog.exit_function_label));
    ]
  in
  Prog.func "main"
    [
      Prog.block "entry"
        [
          o (I.Cmp (Reg.Q, I.Reg Reg.RBX, I.Reg Reg.RAX));
          I.instrumentation (I.Set (Cond.L, I.Reg Reg.RCX));
          I.dup (I.Cmp (Reg.Q, I.Reg Reg.RBX, I.Reg Reg.RAX));
          I.dup (I.Set (Cond.L, I.Reg Reg.RDX));
          o (I.Jcc (Cond.L, "taken"));
          I.check (I.Cmp (Reg.B, I.Reg Reg.RDX, I.Reg Reg.RCX));
          I.check (I.Jcc (Cond.NE, Prog.exit_function_label));
        ];
      Prog.block "fall" [ ret ];
      Prog.block "taken"
        ((if entry_check then target_checks else []) @ [ ret ]);
    ]

let test_pair_checked_branch () =
  Alcotest.(check (list kind_t)) "paired branch is clean" []
    (kinds (Shadow.scan_func ferrum (cmp_jcc_func ~entry_check:true)))

let test_pair_check_removed () =
  Alcotest.(check (list kind_t)) "missing entry verification"
    [ Shadow.Rflags_unpaired ]
    (kinds (severe (Shadow.scan_func ferrum (cmp_jcc_func ~entry_check:false))))

(* ---- the catalogue lints clean under every technique ---- *)

let test_catalogue_clean () =
  List.iter
    (fun (e : Catalog.entry) ->
      let m = e.Catalog.build () in
      List.iter
        (fun t ->
          let r = Pipeline.protect t m in
          let report = Pipeline.lint ~assert_clean:true r in
          Alcotest.(check int)
            (Fmt.str "%s/%s error findings" e.Catalog.name
               (Technique.short_name t))
            0 (Lint.errors report))
        Technique.all)
    Catalog.all

(* FERRUM protects aggressively enough that the uncovered set is empty
   on the whole catalogue — the static face of the paper's ~0% SDC. *)
let test_ferrum_uncovered_empty () =
  List.iter
    (fun (e : Catalog.entry) ->
      let r = Pipeline.protect Technique.Ferrum (e.Catalog.build ()) in
      let sites, eligible = Lint.uncovered r.Pipeline.program in
      Alcotest.(check int)
        (Fmt.str "%s uncovered" e.Catalog.name)
        0 (List.length sites);
      Alcotest.(check bool) "eligible sites exist" true (eligible > 0))
    Catalog.all

(* ---- JSONL schema + reproducibility ---- *)

let lint_lines (p : Prog.t) report =
  let buf = Buffer.create 4096 in
  let sink = Metrics.buffer_sink buf in
  Metrics.emit sink (Metrics.header ~kind:Lint.metrics_kind []);
  List.iter (Metrics.emit sink) (Lint.rows p report);
  Metrics.close sink;
  Buffer.contents buf

let test_jsonl_schema () =
  let e = List.hd Catalog.all in
  let r = Pipeline.protect Technique.Ferrum (e.Catalog.build ()) in
  let report = Pipeline.lint r in
  let text = lint_lines r.Pipeline.program report in
  match
    Metrics.validate_lines ~kind:Lint.metrics_kind
      ~record_fields:Lint.record_fields
      (Metrics.lines_of_string text)
  with
  | Ok n ->
    Alcotest.(check int) "one row per finding + uncovered site"
      (List.length report.Lint.r_findings
      + List.length report.Lint.r_uncovered)
      n
  | Error msg -> Alcotest.fail msg

let test_jsonl_reproducible () =
  let e = List.hd Catalog.all in
  let once () =
    let r = Pipeline.protect Technique.Ferrum (e.Catalog.build ()) in
    lint_lines r.Pipeline.program (Pipeline.lint r)
  in
  Alcotest.(check string) "byte-identical" (once ()) (once ())

(* ---- cross-validation against the dynamic campaign ---- *)

let crossval_case name technique ~samples () =
  let e = List.hd Catalog.all in
  let m = e.Catalog.build () in
  let r =
    match technique with
    | None -> Pipeline.raw m
    | Some t -> Pipeline.protect t m
  in
  let o =
    Ferrum_report.Crossval.run ~seed:2024L ~samples r.Pipeline.program
  in
  if not (Ferrum_report.Crossval.passed o) then
    Alcotest.failf "%s: %a" name Ferrum_report.Crossval.pp o;
  o

let test_crossval_raw () =
  (* the unprotected program escapes freely: the check must not be
     vacuous *)
  let o = crossval_case "raw" None ~samples:150 () in
  Alcotest.(check bool) "campaign produced checkable escapes" true
    (o.Ferrum_report.Crossval.c_checkable > 0);
  Alcotest.(check int) "all confirmed"
    o.Ferrum_report.Crossval.c_checkable
    o.Ferrum_report.Crossval.c_confirmed

let test_crossval_ir_eddi () =
  ignore (crossval_case "ir-eddi" (Some Technique.Ir_level_eddi) ~samples:150 ())

let test_crossval_ferrum () =
  ignore (crossval_case "ferrum" (Some Technique.Ferrum) ~samples:100 ())

(* ---- printer/parser round-trip over protected programs ---- *)

let test_roundtrip_catalogue () =
  List.iter
    (fun (e : Catalog.entry) ->
      let m = e.Catalog.build () in
      let programs =
        (Pipeline.raw m).Pipeline.program
        :: List.map
             (fun t -> (Pipeline.protect t m).Pipeline.program)
             Technique.all
      in
      List.iter
        (fun p ->
          let text = Printer.program_to_string p in
          let p' = Parser.program text in
          Alcotest.(check bool)
            (Fmt.str "%s round-trips" e.Catalog.name)
            true (p = p'))
        programs)
    Catalog.all

let () =
  Alcotest.run "lint"
    [
      ( "mutations",
        [
          Alcotest.test_case "clean shape" `Quick test_clean_shape;
          Alcotest.test_case "checker deleted" `Quick test_checker_deleted;
          Alcotest.test_case "check after store" `Quick test_check_after_store;
          Alcotest.test_case "dup deleted" `Quick test_dup_deleted;
          Alcotest.test_case "both deleted" `Quick test_both_deleted;
          Alcotest.test_case "spare not dead" `Quick test_spare_not_dead;
          Alcotest.test_case "simd flushed" `Quick test_simd_flushed;
          Alcotest.test_case "simd unflushed" `Quick test_simd_unflushed;
          Alcotest.test_case "paired branch" `Quick test_pair_checked_branch;
          Alcotest.test_case "pair check removed" `Quick
            test_pair_check_removed;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "zero errors everywhere" `Slow
            test_catalogue_clean;
          Alcotest.test_case "ferrum uncovered set empty" `Slow
            test_ferrum_uncovered_empty;
          Alcotest.test_case "round-trip all techniques" `Slow
            test_roundtrip_catalogue;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "schema valid" `Quick test_jsonl_schema;
          Alcotest.test_case "byte reproducible" `Quick
            test_jsonl_reproducible;
        ] );
      ( "crossval",
        [
          Alcotest.test_case "raw (non-vacuous)" `Slow test_crossval_raw;
          Alcotest.test_case "ir-eddi" `Slow test_crossval_ir_eddi;
          Alcotest.test_case "ferrum" `Slow test_crossval_ferrum;
        ] );
    ]
