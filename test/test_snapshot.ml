(* Tests for the checkpointed fault-injection engine: the machine's
   dirty-page write tracking, golden-run snapshot capture and
   incremental restore exactness, and — the load-bearing guarantee —
   bit-identity of the pooled and checkpointed engines against the
   scratch path for classifications, records, vulnerability maps and
   sharded campaign streams. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Snapshot = Ferrum_machine.Snapshot
module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Propagation = Ferrum_telemetry.Propagation
module Runner = Ferrum_campaign.Runner
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique
module Catalog = Ferrum_workloads.Catalog

let original = Instr.original

(* A loop fixture with enough dynamic instructions (~1400) to span
   many checkpoints, and stores that walk across the page 0 / page 1
   boundary so restores must undo real memory dirt. *)
let loop_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RAX));
              original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RCX)) ];
          Prog.block "loop"
            [ original
                (Instr.Alu
                   (Instr.Add, Reg.Q, Instr.Reg Reg.RCX, Instr.Reg Reg.RAX));
              original
                (Instr.Mov
                   ( Reg.Q, Instr.Reg Reg.RAX,
                     Instr.Mem (Instr.mem ~index:Reg.RCX ~scale:8 3600) ));
              original
                (Instr.Alu (Instr.Add, Reg.Q, Instr.Imm 1L, Instr.Reg Reg.RCX));
              original (Instr.Cmp (Reg.Q, Instr.Imm 200L, Instr.Reg Reg.RCX));
              original (Instr.Jcc (Cond.NE, "loop")) ];
          Prog.block "done"
            [ original
                (Instr.Mov
                   (Reg.Q, Instr.Mem (Instr.mem 4400), Instr.Reg Reg.RDI));
              original (Instr.Call "print_i64");
              original Instr.Ret ] ] ]

(* A single Q store straddling the page 0 / page 1 boundary. *)
let straddle_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ original
                (Instr.Mov (Reg.Q, Instr.Imm 0x0123456789abcdefL,
                            Instr.Reg Reg.RAX));
              original
                (Instr.Mov (Reg.Q, Instr.Reg Reg.RAX,
                            Instr.Mem (Instr.mem 4094)));
              original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RDI));
              original (Instr.Call "print_i64");
              original Instr.Ret ] ] ]

(* Crash-at-flip-site: the very first eligible write-back loads a base
   register; flipping one of its high bits sends the immediately
   following load out of the address space, so the crash surfaces on
   the first post-restore instruction. *)
let crash_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ original (Instr.Mov (Reg.Q, Instr.Imm 4096L, Instr.Reg Reg.RBX));
              original
                (Instr.Mov
                   ( Reg.Q, Instr.Mem (Instr.mem ~base:Reg.RBX 0),
                     Instr.Reg Reg.RAX ));
              original (Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RDI));
              original (Instr.Call "print_i64");
              original Instr.Ret ] ] ]

(* Timeout-near-fuel: a counted loop whose bound lives in a register
   for its whole run; corrupting the bound or the counter overruns the
   loop until the injector's fuel gives out.  Fuel accounting must
   count from program start even when the run resumes mid-way from a
   checkpoint. *)
let timeout_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ original (Instr.Mov (Reg.Q, Instr.Imm 60L, Instr.Reg Reg.RBX));
              original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RAX)) ];
          Prog.block "loop"
            [ original
                (Instr.Alu (Instr.Add, Reg.Q, Instr.Imm 1L, Instr.Reg Reg.RAX));
              original (Instr.Cmp (Reg.Q, Instr.Reg Reg.RBX, Instr.Reg Reg.RAX));
              original (Instr.Jcc (Cond.NE, "loop")) ];
          Prog.block "done"
            [ original (Instr.Mov (Reg.Q, Instr.Reg Reg.RAX, Instr.Reg Reg.RDI));
              original (Instr.Call "print_i64");
              original Instr.Ret ] ] ]

(* ---- helpers ---- *)

let check_state_eq name (want : Machine.state) (got : Machine.state) =
  Alcotest.(check (array int64)) (name ^ ": gpr")
    (Machine.dump_regfile want.Machine.gpr)
    (Machine.dump_regfile got.Machine.gpr);
  Alcotest.(check (array int64)) (name ^ ": simd")
    (Machine.dump_regfile want.Machine.simd)
    (Machine.dump_regfile got.Machine.simd);
  Alcotest.(check bool) (name ^ ": zf") want.Machine.zf got.Machine.zf;
  Alcotest.(check bool) (name ^ ": sf") want.Machine.sf got.Machine.sf;
  Alcotest.(check bool) (name ^ ": cf") want.Machine.cf got.Machine.cf;
  Alcotest.(check bool) (name ^ ": off") want.Machine.off got.Machine.off;
  Alcotest.(check int) (name ^ ": ip") want.Machine.ip got.Machine.ip;
  Alcotest.(check int) (name ^ ": steps") want.Machine.steps got.Machine.steps;
  Alcotest.(check (float 0.)) (name ^ ": cycles") want.Machine.cycles
    got.Machine.cycles;
  Alcotest.(check (list int64)) (name ^ ": output") want.Machine.out_rev
    got.Machine.out_rev;
  Alcotest.(check bool) (name ^ ": memory") true
    (Bytes.equal want.Machine.mem got.Machine.mem)

(* Serialized per-injection records for [samples] campaign samples. *)
let campaign_lines ~engine ~seed ~samples img =
  let t = F.prepare ~engine img in
  List.init samples (fun sample ->
      let _, _, r = F.campaign_sample t ~seed ~sample in
      Json.to_string (F.record_to_json r))

(* Assert every fast engine reproduces the scratch record stream byte
   for byte. *)
let check_identity name engines ~seed ~samples img =
  let reference = campaign_lines ~engine:F.Scratch ~seed ~samples img in
  List.iter
    (fun e ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed=%Ld %s" name seed (F.engine_name e))
        reference
        (campaign_lines ~engine:e ~seed ~samples img))
    engines

(* Everything a traced campaign produces, flattened to strings: the
   record stream, the vulnmap rows, and the raw latency/escape lists
   (hex floats, so equality is bit-exactness). *)
let vulnmap_strings ~engine ~seed ~samples img =
  let recs = ref [] in
  let v =
    F.vulnmap_campaign ~engine ~seed ~samples
      ~on_record:(fun r -> recs := Json.to_string (F.record_to_json r) :: !recs)
      img
  in
  let rows = List.map Json.to_string (F.vulnmap_rows v) in
  let lats =
    List.map (fun (s, c) -> Printf.sprintf "%d:%h" s c) v.F.v_latencies
  in
  let escs =
    List.map
      (fun (i, e) -> Printf.sprintf "%d:%s" i (Propagation.escape_name e))
      v.F.v_escapes
  in
  List.rev !recs @ rows @ lats @ escs

let fast_fixture_engines =
  [ F.Pooled; F.Checkpointed 1; F.Checkpointed 2; F.Checkpointed 3;
    F.Checkpointed 64 ]

(* ---- dirty-page tracking ---- *)

let test_track_attach_and_pages () =
  let img = Machine.load (loop_program ()) in
  let st = Machine.fresh_state img in
  Alcotest.(check bool) "fresh state untracked" true (st.Machine.track = None);
  Machine.track_writes st;
  let tr =
    match st.Machine.track with
    | Some tr -> tr
    | None -> Alcotest.fail "track_writes attached no tracker"
  in
  Machine.track_writes st;
  (match st.Machine.track with
  | Some tr' -> Alcotest.(check bool) "attach is idempotent" true (tr == tr')
  | None -> Alcotest.fail "tracker lost");
  (try
     while true do
       ignore (Machine.step img st)
     done
   with Machine.Halt _ -> ());
  let pages =
    Array.to_list (Array.sub tr.Machine.tr_pages 0 tr.Machine.tr_count)
  in
  let uniq = List.sort_uniq compare pages in
  Alcotest.(check int) "bitmap dedupes the first-touch log"
    (List.length uniq) (List.length pages);
  Alcotest.(check bool) "data page 0 dirty" true (List.mem 0 uniq);
  Alcotest.(check bool) "data page 1 dirty (stores crossed 4096)" true
    (List.mem 1 uniq);
  Machine.clear_dirty st;
  Alcotest.(check int) "clear_dirty empties the log" 0 tr.Machine.tr_count;
  ignore (Machine.step img (Machine.fresh_state img))

let test_track_straddling_store () =
  let img = Machine.load (straddle_program ()) in
  let st = Machine.fresh_state img in
  Machine.track_writes st;
  let tr = match st.Machine.track with Some tr -> tr | None -> assert false in
  (try
     while true do
       ignore (Machine.step img st)
     done
   with Machine.Halt _ -> ());
  let pages =
    Array.to_list (Array.sub tr.Machine.tr_pages 0 tr.Machine.tr_count)
  in
  Alcotest.(check bool) "page 0 dirty" true (List.mem 0 pages);
  Alcotest.(check bool) "Q store at 4094 also dirties page 1" true
    (List.mem 1 pages)

(* ---- snapshot capture and restore ---- *)

(* Reference: a fresh state stepped to exactly [steps] retired
   instructions. *)
let stepped_reference img steps =
  let st = Machine.fresh_state img in
  (try
     while st.Machine.steps < steps do
       ignore (Machine.step img st)
     done
   with Machine.Halt _ | Machine.Trap _ -> ());
  st

let test_restore_exactness () =
  let img = Machine.load (loop_program ()) in
  let cache = Snapshot.build ~interval:7 ~counted:(fun _ -> true) img in
  Alcotest.(check bool) "many checkpoints captured" true
    (Snapshot.ckpt_count cache > 100);
  let sl = Snapshot.make_slot cache in
  (* Visit checkpoints forwards and backwards, dirtying the slot
     between restores so each restore has real work to undo. *)
  List.iter
    (fun dyn ->
      let seen = Snapshot.restore sl ~dyn_index:dyn in
      let st = Snapshot.state sl in
      Alcotest.(check bool)
        (Printf.sprintf "restore %d resumes at or before the site" dyn)
        true
        (seen <= dyn);
      check_state_eq
        (Printf.sprintf "restore dyn=%d" dyn)
        (stepped_reference img st.Machine.steps)
        st;
      try
        for _ = 1 to 50 do
          ignore (Machine.step img st)
        done
      with Machine.Halt _ | Machine.Trap _ -> ())
    [ 0; 3; 900; 14; 500; 499; 1300; 2; 0; 700 ];
  Snapshot.reset sl;
  check_state_eq "reset restores the pristine start"
    (Machine.fresh_state img) (Snapshot.state sl)

let test_pooled_cache_resets () =
  (* interval:None — no checkpoints, but restore-to-pristine must still
     be exact after the slot has run to completion. *)
  let img = Machine.load (loop_program ()) in
  let cache = Snapshot.build ~counted:(fun _ -> true) img in
  Alcotest.(check int) "no checkpoints" 0 (Snapshot.ckpt_count cache);
  let sl = Snapshot.make_slot cache in
  for _ = 1 to 3 do
    let seen = Snapshot.restore sl ~dyn_index:12345 in
    Alcotest.(check int) "pristine restore sees zero write-backs" 0 seen;
    let st = Snapshot.state sl in
    check_state_eq "pristine slot" (Machine.fresh_state img) st;
    try
      while true do
        ignore (Machine.step img st)
      done
    with Machine.Halt _ -> ()
  done

let test_sync_clones_run_state () =
  let img = Machine.load (loop_program ()) in
  let cache = Snapshot.build ~interval:13 ~counted:(fun _ -> true) img in
  let src = Snapshot.make_slot cache in
  let dst = Snapshot.make_slot cache in
  ignore (Snapshot.restore src ~dyn_index:400);
  let sst = Snapshot.state src in
  (try
     for _ = 1 to 37 do
       ignore (Machine.step img sst)
     done
   with Machine.Halt _ | Machine.Trap _ -> ());
  ignore (Snapshot.restore dst ~dyn_index:400);
  Snapshot.sync ~src dst;
  check_state_eq "sync copies the advanced state" sst (Snapshot.state dst);
  (* The copy must also be usable: both continue identically. *)
  let dstt = Snapshot.state dst in
  (try
     for _ = 1 to 100 do
       ignore (Machine.step img sst);
       ignore (Machine.step img dstt)
     done
   with Machine.Halt _ | Machine.Trap _ -> ());
  check_state_eq "synced slot tracks the source" sst dstt

(* ---- engine bit-identity on fixtures ---- *)

let test_fixture_identity () =
  let img = Machine.load (loop_program ()) in
  List.iter
    (fun seed ->
      check_identity "loop fixture" fast_fixture_engines ~seed ~samples:60 img)
    [ 1L; 42L ]

let test_fixture_vulnmap_identity () =
  let img = Machine.load (loop_program ()) in
  let reference = vulnmap_strings ~engine:F.Scratch ~seed:17L ~samples:40 img in
  List.iter
    (fun e ->
      Alcotest.(check (list string))
        ("loop fixture vulnmap " ^ F.engine_name e)
        reference
        (vulnmap_strings ~engine:e ~seed:17L ~samples:40 img))
    fast_fixture_engines

let test_crash_at_flip_site () =
  let img = Machine.load (crash_program ()) in
  let res = F.campaign ~engine:F.Scratch ~seed:3L ~samples:40 img in
  Alcotest.(check bool) "high-bit flips of the base register crash" true
    (res.F.counts.F.crash > 0);
  List.iter
    (fun seed ->
      check_identity "crash fixture" fast_fixture_engines ~seed ~samples:40 img)
    [ 3L; 77L ]

let test_timeout_near_fuel () =
  let img = Machine.load (timeout_program ()) in
  let res = F.campaign ~engine:F.Scratch ~seed:9L ~samples:40 img in
  Alcotest.(check bool) "corrupted loop bounds exhaust the fuel" true
    (res.F.counts.F.timeout > 0);
  List.iter
    (fun seed ->
      check_identity "timeout fixture" fast_fixture_engines ~seed ~samples:40
        img)
    [ 9L; 23L ]

(* ---- engine bit-identity across the catalogue ---- *)

(* K = 1 is exercised on the small fixtures above only: one checkpoint
   per dynamic instruction over a catalogue workload's hundreds of
   thousands of steps would pin hundreds of megabytes of page deltas. *)
let catalogue_engines = [ F.Pooled; F.Checkpointed 64; F.Checkpointed 4096 ]

let test_catalogue_identity () =
  let techniques =
    [ Technique.Ir_level_eddi; Technique.Hybrid_assembly_eddi;
      Technique.Ferrum ]
  in
  List.iter
    (fun entry ->
      List.iter
        (fun tech ->
          let res = Pipeline.protect tech (entry.Catalog.build ()) in
          let img = Machine.load res.Pipeline.program in
          check_identity
            (entry.Catalog.name ^ "/" ^ Technique.short_name tech)
            catalogue_engines ~seed:7L ~samples:8 img)
        techniques)
    Catalog.all

let test_catalogue_vulnmap_identity () =
  List.iter
    (fun name ->
      let entry =
        match Catalog.find name with
        | Some e -> e
        | None -> Alcotest.failf "no catalogue entry %s" name
      in
      let res = Pipeline.protect Technique.Ferrum (entry.Catalog.build ()) in
      let img = Machine.load res.Pipeline.program in
      let reference =
        vulnmap_strings ~engine:F.Scratch ~seed:11L ~samples:6 img
      in
      List.iter
        (fun e ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s vulnmap %s" name (F.engine_name e))
            reference
            (vulnmap_strings ~engine:e ~seed:11L ~samples:6 img))
        [ F.Pooled; F.Checkpointed 64 ])
    [ "kmeans"; "lud" ]

(* ---- sharded campaigns on the checkpointed engine ---- *)

let test_sharded_checkpointed_identity () =
  let entry =
    match Catalog.find "kmeans" with Some e -> e | None -> assert false
  in
  let res = Pipeline.protect Technique.Ferrum (entry.Catalog.build ()) in
  let img = Machine.load res.Pipeline.program in
  let samples = 30 and seed = 5L in
  let seq_records = campaign_lines ~engine:F.Scratch ~seed ~samples img in
  let t = F.prepare ~engine:(F.Checkpointed 64) img in
  let inj = Runner.run ~mode:Runner.Inject ~shards:3 ~seed ~samples t in
  Alcotest.(check (list string)) "sharded inject records" seq_records
    inj.Runner.record_lines;
  let traced = Runner.run ~mode:Runner.Traced ~shards:3 ~seed ~samples t in
  Alcotest.(check (list string)) "sharded traced records" seq_records
    traced.Runner.record_lines;
  let v =
    match traced.Runner.vulnmap with
    | Some v -> v
    | None -> Alcotest.fail "traced run produced no vulnmap"
  in
  let seq_v = F.vulnmap_campaign ~engine:F.Scratch ~seed ~samples img in
  Alcotest.(check (list string)) "sharded vulnmap rows"
    (List.map Json.to_string (F.vulnmap_rows seq_v))
    (List.map Json.to_string (F.vulnmap_rows v))

(* ---- engine names ---- *)

let test_engine_names_roundtrip () =
  List.iter
    (fun e ->
      match F.engine_of_name (F.engine_name e) with
      | Some e' ->
          Alcotest.(check string) "round trip" (F.engine_name e)
            (F.engine_name e')
      | None -> Alcotest.failf "engine name %s did not parse" (F.engine_name e))
    [ F.Scratch; F.Pooled; F.Checkpointed 1; F.Checkpointed 4096 ];
  Alcotest.(check bool) "unknown name rejected" true
    (F.engine_of_name "ckpt-0" = None && F.engine_of_name "warp" = None)

let () =
  Alcotest.run "snapshot"
    [
      ( "tracking",
        [ Alcotest.test_case "attach and dirty pages" `Quick
            test_track_attach_and_pages;
          Alcotest.test_case "straddling store" `Quick
            test_track_straddling_store ] );
      ( "restore",
        [ Alcotest.test_case "bit-exact restore" `Quick test_restore_exactness;
          Alcotest.test_case "pooled pristine resets" `Quick
            test_pooled_cache_resets;
          Alcotest.test_case "sync" `Quick test_sync_clones_run_state ] );
      ( "identity",
        [ Alcotest.test_case "loop fixture" `Quick test_fixture_identity;
          Alcotest.test_case "loop fixture vulnmap" `Quick
            test_fixture_vulnmap_identity;
          Alcotest.test_case "crash at flip site" `Quick
            test_crash_at_flip_site;
          Alcotest.test_case "timeout near fuel" `Quick test_timeout_near_fuel
        ] );
      ( "catalogue",
        [ Alcotest.test_case "records across engines" `Slow
            test_catalogue_identity;
          Alcotest.test_case "vulnmaps across engines" `Slow
            test_catalogue_vulnmap_identity ] );
      ( "sharded",
        [ Alcotest.test_case "checkpointed runner byte-identity" `Slow
            test_sharded_checkpointed_identity ] );
      ( "engines",
        [ Alcotest.test_case "name round-trip" `Quick
            test_engine_names_roundtrip ] );
    ]
