(* Tests for the fault-injection framework: PRNG determinism, site
   eligibility, campaign reproducibility, outcome classification and the
   coverage arithmetic. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Pipeline = Ferrum_eddi.Pipeline
module Technique = Ferrum_eddi.Technique

(* ---- rng ---- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:123L and b = Rng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:55L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:9L in
  let a = Rng.split r and b = Rng.split r in
  Alcotest.(check bool) "different streams" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let prop_rng_uniformish =
  QCheck.Test.make ~name:"rng: rough uniformity over 8 buckets" ~count:20
    QCheck.int64 (fun seed ->
      let r = Rng.create ~seed in
      let buckets = Array.make 8 0 in
      for _ = 1 to 8000 do
        let v = Rng.int r 8 in
        buckets.(v) <- buckets.(v) + 1
      done;
      Array.for_all (fun n -> n > 800 && n < 1200) buckets)

(* ---- site eligibility ---- *)

let small_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.RDI));
              Instr.dup (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.R10));
              Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RDI));
              Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

let test_eligibility_scopes () =
  let img = Machine.load (small_program ()) in
  let orig = F.prepare ~scope:F.Original_only img in
  let all = F.prepare ~scope:F.All_sites img in
  (* original scope: only the first mov has a destination (call/ret do
     not); all-sites adds the dup mov and the checker cmp's flags *)
  Alcotest.(check int) "original sites" 1 orig.F.eligible_steps;
  Alcotest.(check int) "all sites" 3 all.F.eligible_steps;
  Alcotest.(check (list int64)) "golden output" [ 7L ] orig.F.golden_output

let test_golden_failure_raises () =
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main" [ Instr.original (Instr.Jmp "exit_function") ] ] ]
  in
  match F.prepare (Machine.load p) with
  | _ -> Alcotest.fail "expected Golden_failure"
  | exception F.Golden_failure _ -> ()

(* ---- single injections ---- *)

let test_injection_flips_output () =
  (* flipping a bit of RDI right before print must change the output or
     be detected -- in this unprotected program it must be an SDC *)
  let p =
    Prog.program
      [ Prog.func "main"
          [ Prog.block "main"
              [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 0L, Instr.Reg Reg.RDI));
                Instr.original (Instr.Call "print_i64");
                Instr.original Instr.Ret ] ] ]
  in
  let t = F.prepare (Machine.load p) in
  Alcotest.(check int) "one site" 1 t.F.eligible_steps;
  let sdc = ref 0 in
  for seed = 1 to 32 do
    let rng = Rng.create ~seed:(Int64.of_int seed) in
    let cls, fault = F.inject t rng ~dyn_index:0 in
    Alcotest.(check bool) "site reached" true (fault.F.static_index >= 0);
    match cls with
    | F.Sdc -> incr sdc
    | c -> Alcotest.failf "expected sdc, got %s" (F.classification_name c)
  done;
  Alcotest.(check int) "every flip corrupts the printed value" 32 !sdc

let test_injection_detected_when_protected () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "LUD")).build () in
  let p = (Pipeline.protect Technique.Ferrum m).program in
  let t = F.prepare (Machine.load p) in
  let rng = Rng.create ~seed:1L in
  let detected = ref 0 and sdc = ref 0 in
  for k = 0 to 49 do
    let dyn_index = k * t.F.eligible_steps / 50 in
    match fst (F.inject t (Rng.split rng) ~dyn_index) with
    | F.Detected -> incr detected
    | F.Sdc -> incr sdc
    | _ -> ()
  done;
  Alcotest.(check int) "no sdc" 0 !sdc;
  Alcotest.(check bool) "many detected" true (!detected > 20)

(* ---- campaigns ---- *)

let test_campaign_reproducible () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "kNN")).build () in
  let img = Machine.load (Pipeline.raw m).program in
  let a = F.campaign ~seed:5L ~samples:40 img in
  let b = F.campaign ~seed:5L ~samples:40 img in
  Alcotest.(check bool) "same counts" true (a.F.counts = b.F.counts);
  let c = F.campaign ~seed:6L ~samples:40 img in
  Alcotest.(check bool) "likely different counts with another seed" true
    (a.F.counts <> c.F.counts || a.F.faults <> c.F.faults)

let test_campaign_counts_sum () =
  let m = (Option.get (Ferrum_workloads.Catalog.find "Pathfinder")).build () in
  let img = Machine.load (Pipeline.raw m).program in
  let r = F.campaign ~seed:8L ~samples:60 img in
  let c = r.F.counts in
  Alcotest.(check int) "samples" 60 c.F.samples;
  Alcotest.(check int) "partition" 60
    (c.F.benign + c.F.sdc + c.F.detected + c.F.crash + c.F.timeout);
  Alcotest.(check int) "raw code never detects" 0 c.F.detected

(* ---- metrics ---- *)

let counts ~samples ~sdc =
  { F.samples; benign = samples - sdc; sdc; detected = 0; crash = 0;
    timeout = 0 }

let test_coverage_math () =
  let raw = counts ~samples:100 ~sdc:40 in
  Alcotest.(check (float 1e-9)) "full" 1.0
    (F.sdc_coverage ~raw ~protected_:(counts ~samples:100 ~sdc:0));
  Alcotest.(check (float 1e-9)) "half" 0.5
    (F.sdc_coverage ~raw ~protected_:(counts ~samples:100 ~sdc:20));
  Alcotest.(check (float 1e-9)) "none" 0.0
    (F.sdc_coverage ~raw ~protected_:(counts ~samples:100 ~sdc:40));
  (* worse than raw clamps at 0 *)
  Alcotest.(check (float 1e-9)) "clamped" 0.0
    (F.sdc_coverage ~raw ~protected_:(counts ~samples:100 ~sdc:90));
  (* no raw SDC: coverage trivially 1 *)
  Alcotest.(check (float 1e-9)) "degenerate" 1.0
    (F.sdc_coverage ~raw:(counts ~samples:100 ~sdc:0)
       ~protected_:(counts ~samples:100 ~sdc:0))

let test_overhead_math () =
  Alcotest.(check (float 1e-9)) "50%" 0.5
    (F.overhead ~raw_cycles:100.0 ~prot_cycles:150.0);
  Alcotest.(check (float 1e-9)) "zero" 0.0
    (F.overhead ~raw_cycles:100.0 ~prot_cycles:100.0)

let test_confidence_shrinks () =
  let narrow = F.confidence95 (counts ~samples:1000 ~sdc:100) in
  let wide = F.confidence95 (counts ~samples:10 ~sdc:1) in
  Alcotest.(check bool) "more samples, tighter bound" true (narrow < wide)

let test_degenerate_stats () =
  (* zero samples: probability 0, and the Wilson interval is the whole
     [0, 1] — half-width 1/2 — rather than the normal approximation's
     spurious zero *)
  Alcotest.(check (float 0.0)) "empty probability" 0.0
    (F.sdc_probability F.zero_counts);
  Alcotest.(check (float 1e-9)) "empty interval" 0.5
    (F.confidence95 F.zero_counts);
  (* all-SDC: probability 1, but the interval no longer collapses to a
     width-zero lie at p(1-p) = 0 — Wilson keeps honest uncertainty *)
  let all = counts ~samples:25 ~sdc:25 in
  Alcotest.(check (float 1e-9)) "all-sdc probability" 1.0
    (F.sdc_probability all);
  Alcotest.(check bool) "all-sdc interval finite" true
    (Float.is_finite (F.confidence95 all));
  Alcotest.(check bool) "all-sdc interval positive" true
    (F.confidence95 all > 0.0);
  Alcotest.(check bool) "all-sdc interval below half" true
    (F.confidence95 all < 0.5);
  (* a single sample keeps everything finite too *)
  let one = counts ~samples:1 ~sdc:1 in
  Alcotest.(check (float 1e-9)) "one-sample probability" 1.0
    (F.sdc_probability one);
  Alcotest.(check bool) "one-sample interval finite" true
    (Float.is_finite (F.confidence95 one));
  Alcotest.(check bool) "one-sample interval positive" true
    (F.confidence95 one > 0.0)

let () =
  Alcotest.run "faultsim"
    [
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_uniformish ] );
      ( "sites",
        [ Alcotest.test_case "scopes" `Quick test_eligibility_scopes;
          Alcotest.test_case "golden failure" `Quick test_golden_failure_raises
        ] );
      ( "injection",
        [ Alcotest.test_case "unprotected print corrupts" `Quick
            test_injection_flips_output;
          Alcotest.test_case "protected detects" `Quick
            test_injection_detected_when_protected ] );
      ( "campaign",
        [ Alcotest.test_case "reproducible" `Quick test_campaign_reproducible;
          Alcotest.test_case "counts partition" `Quick test_campaign_counts_sum
        ] );
      ( "metrics",
        [ Alcotest.test_case "coverage" `Quick test_coverage_math;
          Alcotest.test_case "overhead" `Quick test_overhead_math;
          Alcotest.test_case "confidence interval" `Quick
            test_confidence_shrinks;
          Alcotest.test_case "degenerate counts" `Quick
            test_degenerate_stats ] );
    ]
