(* Tests for the campaign service: SSE framing across arbitrary chunk
   boundaries and Last-Event-ID resume, the content-addressed run
   store (cache-hit byte-identity, corrupt-entry rejection), the
   persistent job queue, Fsutil's copy/rename plumbing, the heartbeat
   ETA clamp, the cross-run history page, and an end-to-end daemon
   round trip over a loopback socket. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Events = Ferrum_telemetry.Events
module Sse = Ferrum_telemetry.Sse
module Trace = Ferrum_telemetry.Trace
module Runner = Ferrum_campaign.Runner
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store
module Queue = Ferrum_campaign.Queue
module Fsutil = Ferrum_campaign.Fsutil
module Html = Ferrum_report.Html
module History = Ferrum_report.History
module Http = Ferrum_serve.Http
module Spec = Ferrum_serve.Spec
module Daemon = Ferrum_serve.Daemon

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let tmp_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ferrum-serve-%d-%s" (Unix.getpid ()) name)
  in
  Fsutil.rm_rf d;
  d

(* The instant protected-looking fixture the campaign tests use. *)
let checked_program () =
  Prog.program
    [ Prog.func "main"
        [ Prog.block "main"
            [ Instr.original (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.RDI));
              Instr.dup (Instr.Mov (Reg.Q, Instr.Imm 7L, Instr.Reg Reg.R10));
              Instr.check (Instr.Cmp (Reg.Q, Instr.Reg Reg.R10, Instr.Reg Reg.RDI));
              Instr.check (Instr.Jcc (Cond.NE, "exit_function"));
              Instr.original (Instr.Call "print_i64");
              Instr.original Instr.Ret ] ] ]

let fixture_target () = F.prepare (Machine.load (checked_program ()))

(* One finished fixture campaign plus its manifest. *)
let fixture_run ?(seed = 99L) ?(samples = 30) ?(shards = 3) () =
  let program = checked_program () in
  let target = fixture_target () in
  let result =
    Runner.run ~mode:Runner.Traced ~shards ~seed ~samples target
  in
  let manifest =
    Manifest.make ~benchmark:"fixture" ~technique:"raw" ~samples ~seed
      ~shards ~fault_bits:1 ~all_sites:false ~traced:true ~program target
  in
  (manifest, result)

(* Write a finished run as a complete, publishable store entry. *)
let spool_run ~dir (manifest, result) =
  Store.write_run ~dir ~manifest ~result ();
  Fsutil.write_file
    (Filename.concat dir Store.run_file)
    (Store.jsonl (Store.run_header [])
       [ Json.to_string (Store.run_record ~manifest ~result) ])

(* ---- SSE framing ---- *)

(* Chunk boundaries must never change what a decoder sees: the same
   byte stream fed 1, 2, 3, 7 bytes at a time and all at once yields
   the same events. *)
let test_sse_chunking () =
  let events =
    List.init 40 (fun i ->
        (i, Fmt.str "{\"seq\":%d,\"payload\":\"x%d\"}" i i))
  in
  let stream =
    Sse.retry_frame 500 ^ Sse.comment "hello"
    ^ Sse.encode_lines events ^ Sse.comment "bye"
  in
  let reference = Sse.decode_string stream in
  Alcotest.(check int) "event count" 40 (List.length reference);
  List.iter
    (fun size ->
      let d = Sse.decoder () in
      let out = ref [] in
      let n = String.length stream in
      let rec go off =
        if off < n then begin
          let len = min size (n - off) in
          out := List.rev_append (Sse.feed d (String.sub stream off len)) !out;
          go (off + len)
        end
      in
      go 0;
      let got = List.rev !out in
      Alcotest.(check int)
        (Fmt.str "count at chunk size %d" size)
        (List.length reference) (List.length got);
      List.iter2
        (fun (r : Sse.event) (g : Sse.event) ->
          Alcotest.(check (option int)) "id" r.Sse.id g.Sse.id;
          Alcotest.(check string) "data" r.Sse.data g.Sse.data)
        reference got;
      Alcotest.(check int) "last id" 39 (Sse.last_event_id d))
    [ 1; 2; 3; 7 ]

(* Multiple data: lines in one frame join with a newline (the SSE
   dispatch rule), and the joined payload survives arbitrary chunk
   boundaries — including cuts inside the continuation lines. *)
let test_sse_multiline_data () =
  let stream =
    "id: 7\ndata: first\ndata: second\ndata: third\n\n"
    ^ ": keepalive\n\n" ^ "data: solo\n\n"
  in
  let expect = [ (Some 7, "first\nsecond\nthird"); (None, "solo") ] in
  let check_events label got =
    Alcotest.(check int) (label ^ " count") (List.length expect)
      (List.length got);
    List.iter2
      (fun (id, data) (g : Sse.event) ->
        Alcotest.(check (option int)) (label ^ " id") id g.Sse.id;
        Alcotest.(check string) (label ^ " data") data g.Sse.data)
      expect got
  in
  check_events "whole" (Sse.decode_string stream);
  List.iter
    (fun size ->
      let d = Sse.decoder () in
      let out = ref [] in
      let n = String.length stream in
      let rec go off =
        if off < n then begin
          let len = min size (n - off) in
          out := List.rev_append (Sse.feed d (String.sub stream off len)) !out;
          go (off + len)
        end
      in
      go 0;
      check_events (Fmt.str "chunk %d" size) (List.rev !out))
    [ 1; 2; 5 ]

(* CRLF line endings and field-colon variants decode identically. *)
let test_sse_crlf () =
  let crlf = "id: 4\r\ndata: {\"a\":1}\r\n\r\n" in
  (match Sse.decode_string crlf with
  | [ e ] ->
    Alcotest.(check (option int)) "id" (Some 4) e.Sse.id;
    Alcotest.(check string) "data" "{\"a\":1}" e.Sse.data
  | other ->
    Alcotest.failf "expected one event, got %d" (List.length other));
  match Sse.decode_string "data:nospace\n\n" with
  | [ e ] -> Alcotest.(check string) "no space" "nospace" e.Sse.data
  | other -> Alcotest.failf "expected one event, got %d" (List.length other)

(* Disconnect mid-frame, resume with Last-Event-ID: the reassembled
   stream is the canonical event log and passes Events.replay. *)
let test_sse_resume_replay () =
  let _, result = fixture_run () in
  let lines =
    List.map
      (fun (e : Events.t) -> (e.Events.seq, Json.to_string (Events.to_json e)))
      result.Runner.events
  in
  let stream = Sse.encode_lines lines in
  (* cut mid-stream, inside a frame, at several offsets *)
  List.iter
    (fun frac ->
      let cut = String.length stream * frac / 10 in
      let d = Sse.decoder () in
      let first = Sse.feed d (String.sub stream 0 cut) in
      let last = Sse.last_event_id d in
      (* server side: everything strictly after [last] *)
      let rest = Sse.resume ~after:last lines in
      let second = Sse.decode_string (Sse.encode_lines rest) in
      let records =
        List.map (fun (e : Sse.event) -> e.Sse.data) (first @ second)
      in
      Alcotest.(check int)
        (Fmt.str "no gaps, no dupes at cut %d" cut)
        (List.length lines) (List.length records);
      match Events.replay records with
      | Ok (tally, clock) ->
        Alcotest.(check int)
          "replayed samples" 30 (Events.tally_total tally);
        Alcotest.(check bool) "clock positive" true (clock > 0)
      | Error e -> Alcotest.failf "cut %d: replay failed: %s" cut e)
    [ 1; 3; 5; 7; 9 ]

(* ---- heartbeat ETA clamp ---- *)

let test_eta_clamp () =
  let check msg expected got =
    Alcotest.(check (float 1e-9)) msg expected got
  in
  (* a shard finishing inside one heartbeat interval used to divide by
     a zero rate; now: no observed rate assumes one clock unit per
     remaining sample *)
  check "no progress yet" 10. (Events.eta ~done_:0 ~total:10 ~clock:0);
  check "clock stuck at zero" 4. (Events.eta ~done_:6 ~total:10 ~clock:0);
  check "nothing remaining" 0. (Events.eta ~done_:10 ~total:10 ~clock:0);
  check "overshoot clamps to zero" 0. (Events.eta ~done_:12 ~total:10 ~clock:50);
  (* the normal extrapolation is untouched *)
  check "extrapolation" 50. (Events.eta ~done_:5 ~total:10 ~clock:50)

(* ---- content-addressed store ---- *)

let read_file = Fsutil.read_file

(* Publishing the same configuration twice is a cache hit: the second
   publish is discarded and the stored artifacts are byte-identical to
   the first run's. *)
let test_store_cache_hit () =
  let root = tmp_dir "store-hit" in
  let publish () =
    let dir = tmp_dir "store-hit-src" in
    let run = fixture_run () in
    spool_run ~dir run;
    let bytes =
      List.map
        (fun f -> (f, read_file (Filename.concat dir f)))
        [ Store.injection_file; Store.vulnmap_file; Store.events_file ]
    in
    match Store.publish ~root ~src:dir with
    | Ok digest -> (digest, bytes)
    | Error e -> Alcotest.failf "publish: %s" e
  in
  let d1, bytes1 = publish () in
  let d2, bytes2 = publish () in
  Alcotest.(check string) "same digest" d1 d2;
  let entry = Store.entry_dir ~root d1 in
  List.iter
    (fun (f, b) ->
      Alcotest.(check string)
        (Fmt.str "stored %s byte-identical to first run" f)
        b
        (read_file (Filename.concat entry f)))
    bytes1;
  (* and the second run produced the same bytes to begin with *)
  List.iter2
    (fun (f, a) (_, b) ->
      Alcotest.(check string) (Fmt.str "runs agree on %s" f) a b)
    bytes1 bytes2;
  (match Store.lookup ~root d1 with
  | Store.Hit dir -> Alcotest.(check string) "hit dir" entry dir
  | _ -> Alcotest.fail "expected Hit");
  (* exactly one index record *)
  match Metrics.read_lines (Store.index_file root) with
  | [ _header; record ] ->
    Alcotest.(check bool) "index names the digest" true
      (contains ~affix:d1 record)
  | lines -> Alcotest.failf "index has %d lines" (List.length lines)

(* Tampered or torn entries are rejected, never served. *)
let test_store_corrupt_rejected () =
  let root = tmp_dir "store-corrupt" in
  let dir = tmp_dir "store-corrupt-src" in
  spool_run ~dir (fixture_run ());
  let digest =
    match Store.publish ~root ~src:dir with
    | Ok d -> d
    | Error e -> Alcotest.failf "publish: %s" e
  in
  Alcotest.(check bool) "unknown digest is Miss" true
    (Store.lookup ~root (String.make 32 '0') = Store.Miss);
  Alcotest.(check bool) "path-traversal name is Miss" true
    (Store.lookup ~root "../evil" = Store.Miss);
  let entry = Store.entry_dir ~root digest in
  (* torn entry: a promised artifact is gone *)
  Sys.remove (Filename.concat entry Store.vulnmap_file);
  (match Store.lookup ~root digest with
  | Store.Corrupt e ->
    Alcotest.(check bool) "names the artifact" true
      (contains ~affix:Store.vulnmap_file e)
  | _ -> Alcotest.fail "expected Corrupt after deleting an artifact");
  (* tampered manifest: re-digests to a different name *)
  let mpath = Filename.concat entry Manifest.file in
  let m = read_file mpath in
  let tampered =
    let needle = "\"samples\":30" in
    match
      let n = String.length needle and len = String.length m in
      let rec find i =
        if i + n > len then None
        else if String.sub m i n = needle then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i ->
      String.sub m 0 i ^ "\"samples\":31"
      ^ String.sub m (i + String.length needle)
          (String.length m - i - String.length needle)
    | None -> Alcotest.fail "fixture manifest lacks the samples field"
  in
  Fsutil.write_file mpath tampered;
  (match Store.lookup ~root digest with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt after tampering the manifest");
  (* a rebuilt index drops the corrupt entry *)
  Alcotest.(check (list string)) "rebuild drops it" []
    (Store.rebuild_index ~root)

(* The index preserves publication order across rebuilds. *)
let test_store_index_order () =
  let root = tmp_dir "store-order" in
  let publish seed =
    let dir = tmp_dir (Fmt.str "store-order-%Ld" seed) in
    spool_run ~dir (fixture_run ~seed ());
    match Store.publish ~root ~src:dir with
    | Ok d -> d
    | Error e -> Alcotest.failf "publish: %s" e
  in
  (* descending seeds so publication order differs from name order
     only sometimes — the point is stability, not the names *)
  let d1 = publish 7L in
  let d2 = publish 3L in
  let d3 = publish 5L in
  let order = Store.rebuild_index ~root in
  Alcotest.(check (list string)) "publication order" [ d1; d2; d3 ] order;
  Alcotest.(check (list string)) "stable across rebuilds" order
    (Store.rebuild_index ~root)

(* ---- job queue ---- *)

let test_queue_persistence () =
  let dir = tmp_dir "queue" in
  let q = Queue.load ~dir in
  let j1 = Queue.submit q ~spec:"{}" ~digest:"" ~cached:false ~state:Queue.Pending in
  let _j2 = Queue.submit q ~spec:"{}" ~digest:"d2" ~cached:true ~state:Queue.Done in
  let j3 = Queue.submit q ~spec:"{}" ~digest:"" ~cached:false ~state:Queue.Pending in
  Alcotest.(check (list int)) "dense ids" [ 1; 2; 3 ]
    (List.map (fun (j : Queue.job) -> j.Queue.id) (Queue.jobs q));
  Queue.update q { j1 with Queue.state = Queue.Running };
  Queue.update q { j3 with Queue.state = Queue.Failed; error = "boom" };
  (* the file is a valid ferrum.jobs.v1 document *)
  (match
     Metrics.validate_lines ~kind:Queue.kind ~record_fields:Queue.fields
       (Metrics.read_lines (Queue.path q))
   with
  | Ok n -> Alcotest.(check int) "records" 3 n
  | Error e -> Alcotest.failf "queue file invalid: %s" e);
  (* reload: Running demoted to Pending, everything else intact *)
  let q' = Queue.load ~dir in
  let state id =
    match Queue.find q' id with
    | Some j -> j.Queue.state
    | None -> Alcotest.failf "job %d lost" id
  in
  Alcotest.(check bool) "running demoted" true (state 1 = Queue.Pending);
  Alcotest.(check bool) "done kept" true (state 2 = Queue.Done);
  Alcotest.(check bool) "failed kept" true (state 3 = Queue.Failed);
  (match Queue.find q' 3 with
  | Some j -> Alcotest.(check string) "error kept" "boom" j.Queue.error
  | None -> Alcotest.fail "job 3 lost");
  (match Queue.find q' 2 with
  | Some j -> Alcotest.(check bool) "cached kept" true j.Queue.cached
  | None -> Alcotest.fail "job 2 lost");
  match Queue.next_pending q' with
  | Some j -> Alcotest.(check int) "oldest pending first" 1 j.Queue.id
  | None -> Alcotest.fail "no pending job after demotion"

(* ---- fsutil ---- *)

let test_fsutil_tree_ops () =
  let src = tmp_dir "fsutil-src" in
  Fsutil.mkdir_p (Filename.concat src "a/b");
  Fsutil.write_file (Filename.concat src "top.txt") "top";
  Fsutil.write_file (Filename.concat src "a/b/deep.txt") "deep";
  let copy = tmp_dir "fsutil-copy" in
  Fsutil.copy_tree src copy;
  Alcotest.(check string) "copied leaf" "deep"
    (read_file (Filename.concat copy "a/b/deep.txt"));
  Alcotest.(check string) "copied root file" "top"
    (read_file (Filename.concat copy "top.txt"));
  (* the original survives a copy *)
  Alcotest.(check string) "source intact" "deep"
    (read_file (Filename.concat src "a/b/deep.txt"));
  let dst = tmp_dir "fsutil-moved" in
  Fsutil.rename copy dst;
  Alcotest.(check bool) "rename consumed the source" false
    (Sys.file_exists copy);
  Alcotest.(check string) "renamed leaf" "deep"
    (read_file (Filename.concat dst "a/b/deep.txt"))

(* ---- history page ---- *)

let test_history_percentile () =
  let dist = [ (10., 1); (20., 1); (30., 2) ] in
  Alcotest.(check (option (float 1e-9))) "p50" (Some 20.)
    (History.percentile 0.5 dist);
  Alcotest.(check (option (float 1e-9))) "p95" (Some 30.)
    (History.percentile 0.95 dist);
  Alcotest.(check (option (float 1e-9))) "empty" None
    (History.percentile 0.5 [])

let test_history_render () =
  let root = tmp_dir "history-store" in
  let publish seed =
    let dir = tmp_dir (Fmt.str "history-src-%Ld" seed) in
    spool_run ~dir (fixture_run ~seed ());
    match Store.publish ~root ~src:dir with
    | Ok d -> d
    | Error e -> Alcotest.failf "publish: %s" e
  in
  let d1 = publish 7L in
  let d2 = publish 3L in
  (match History.render ~root with
  | Ok html ->
    Alcotest.(check bool) "summary table" true
      (contains ~affix:"Published runs" html);
    Alcotest.(check bool) "diff section (same label twice)" true
      (contains ~affix:"Run-to-run diff" html);
    Alcotest.(check bool) "first digest shown" true
      (contains ~affix:(String.sub d1 0 12) html);
    Alcotest.(check bool) "second digest shown" true
      (contains ~affix:(String.sub d2 0 12) html);
    Alcotest.(check bool) "panels reused" true
      (contains ~affix:"Outcome distribution" html
      || contains ~affix:"<svg" html)
  | Error e -> Alcotest.failf "render: %s" e);
  (* drift of a run against itself is zero everywhere *)
  match Html.load_run (Store.entry_dir ~root d1) with
  | Ok r ->
    Alcotest.(check (option (pair int int))) "self drift" (Some (0, 0))
      (History.drift r r)
  | Error e -> Alcotest.failf "load_run: %s" e

let test_history_empty () =
  let root = tmp_dir "history-empty" in
  Fsutil.mkdir_p root;
  match History.render ~root with
  | Ok html ->
    Alcotest.(check bool) "empty-state page" true
      (contains ~affix:"No published runs" html)
  | Error e -> Alcotest.failf "render: %s" e

(* ---- HTTP plumbing ---- *)

let test_http_request_parse () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let body = "{\"benchmark\":\"Backprop\"}" in
  Http.write_all a
    (Fmt.str
       "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Type: \
        application/json\r\nLast-Event-ID: 7\r\nContent-Length: %d\r\n\r\n%s"
       (String.length body) body);
  Unix.close a;
  (match Http.read_request b with
  | Ok req ->
    Alcotest.(check string) "method" "POST" req.Http.meth;
    Alcotest.(check string) "path" "/jobs" req.Http.path;
    Alcotest.(check string) "body" body req.Http.body;
    Alcotest.(check (option string)) "case-insensitive header" (Some "7")
      (Http.header_value "Last-Event-ID" req.Http.headers)
  | Error e -> Alcotest.failf "parse: %s" e);
  Unix.close b

(* A client that connects and sends nothing: the receive timeout must
   surface as a parse error, not an exception out of [read_request] —
   an uncaught EAGAIN here used to take down the whole daemon. *)
let test_http_silent_client () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.2;
  (match Http.read_request b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "silent client must not parse");
  Unix.close a;
  Unix.close b

(* Unbounded header bytes must be rejected, not buffered forever. *)
let test_http_head_cap () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Http.write_all a "GET / HTTP/1.1\r\n";
  (* properly terminated on purpose: the cap must trip on the bytes
     themselves, not rely on the parser never finding the blank line *)
  Http.write_all a ("X-Flood: " ^ String.make (80 * 1024) 'a' ^ "\r\n\r\n");
  Unix.close a;
  (match Http.read_request b with
  | Error e ->
    Alcotest.(check bool) "head cap named" true (contains ~affix:"exceeds" e)
  | Ok _ -> Alcotest.fail "oversized head must not parse");
  Unix.close b

(* ---- job specs ---- *)

let test_spec_roundtrip () =
  (* minimal submission: everything but the benchmark defaults *)
  (match Spec.of_string "{\"benchmark\":\"Backprop\"}" with
  | Ok s ->
    Alcotest.(check string) "technique default" "raw" s.Spec.technique;
    Alcotest.(check int) "samples default" 400 s.Spec.samples;
    Alcotest.(check int) "shards default" 4 s.Spec.shards;
    Alcotest.(check bool) "traced default" true s.Spec.traced;
    let s' =
      match Spec.of_string (Spec.to_string s) with
      | Ok v -> v
      | Error e -> Alcotest.failf "reparse: %s" e
    in
    Alcotest.(check bool) "canonical round-trip" true (s = s')
  | Error e -> Alcotest.failf "parse: %s" e);
  (match Spec.of_string "{}" with
  | Error e ->
    Alcotest.(check bool) "missing benchmark named" true
      (contains ~affix:"benchmark" e)
  | Ok _ -> Alcotest.fail "benchmark must be required");
  match
    Result.bind (Spec.of_string "{\"benchmark\":\"nonesuch\"}") Spec.resolve
  with
  | Error e ->
    Alcotest.(check bool) "unknown benchmark rejected" true
      (contains ~affix:"nonesuch" e)
  | Ok _ -> Alcotest.fail "unknown benchmark must not resolve"

(* ---- end-to-end daemon ---- *)

(* Fork a real daemon on a loopback auto-assigned port, drive it with
   the HTTP client: submit, stream the live SSE events through the
   decoder into Events.replay, resubmit for a cache hit, and check the
   served artifact bytes match across the two submissions. *)
let test_daemon_end_to_end () =
  let root = tmp_dir "daemon" in
  flush stdout;
  flush stderr;
  let pid =
    match Unix.fork () with
    | 0 ->
      (try Daemon.serve { Daemon.root; host = "127.0.0.1"; port = 0 }
       with _ -> ());
      Stdlib.exit 0
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_port () =
        if Sys.file_exists (Daemon.port_file root) then
          int_of_string (String.trim (Fsutil.read_file (Daemon.port_file root)))
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "daemon never wrote its port file"
        else begin
          Unix.sleepf 0.05;
          wait_port ()
        end
      in
      let port = wait_port () in
      let host = "127.0.0.1" in
      let get path =
        match Http.request ~host ~port ~meth:"GET" ~path () with
        | Ok r -> r
        | Error e -> Alcotest.failf "GET %s: %s" path e
      in
      (* bad spec is a 400, not a crash *)
      (match
         Http.request ~host ~port ~meth:"POST" ~path:"/jobs" ~body:"{}" ()
       with
      | Ok r -> Alcotest.(check int) "bad spec status" 400 r.Http.status
      | Error e -> Alcotest.failf "POST: %s" e);
      let spec =
        "{\"benchmark\":\"Backprop\",\"technique\":\"ferrum\",\
         \"samples\":8,\"shards\":2,\"traced\":0}"
      in
      let submit () =
        match
          Http.request ~host ~port ~meth:"POST" ~path:"/jobs" ~body:spec ()
        with
        | Error e -> Alcotest.failf "submit: %s" e
        | Ok r -> (
          let record =
            match
              List.filter_map Json.of_string_opt
                (Metrics.lines_of_string r.Http.r_body)
            with
            | [ _header; record ] -> record
            | _ -> Alcotest.failf "response is not header + one record"
          in
          match
            ( Json.member "id" record,
              Json.member "state" record,
              Json.member "digest" record,
              Json.member "cached" record )
          with
          | Some (Json.Int id), Some (Json.Str state),
            Some (Json.Str digest), Some (Json.Int cached) ->
            (id, state, digest, cached <> 0, r.Http.status)
          | _ -> Alcotest.failf "job record incomplete: %s" r.Http.r_body)
      in
      let id, state, digest, cached, status = submit () in
      Alcotest.(check int) "fresh submit is 202" 202 status;
      Alcotest.(check bool) "fresh submit not cached" false cached;
      Alcotest.(check bool) "queued or already running" true
        (state = "pending" || state = "running");
      (* stream the live events until the end-of-stream comment *)
      let d = Sse.decoder () in
      let records = ref [] in
      (match
         Http.stream ~host ~port
           ~path:(Fmt.str "/jobs/%d/events" id)
           ~on_chunk:(fun chunk ->
             List.iter
               (fun (e : Sse.event) -> records := e.Sse.data :: !records)
               (Sse.feed d chunk))
           ()
       with
      | Ok 200 -> ()
      | Ok s -> Alcotest.failf "events stream status %d" s
      | Error e -> Alcotest.failf "events stream: %s" e);
      (match Events.replay (List.rev !records) with
      | Ok (tally, _clock) ->
        Alcotest.(check int) "live stream replays all samples" 8
          (Events.tally_total tally)
      | Error e -> Alcotest.failf "live stream does not replay: %s" e);
      (* the job settles as done *)
      let rec wait_done tries =
        let r = get (Fmt.str "/jobs/%d" id) in
        if contains ~affix:"\"state\":\"done\"" r.Http.r_body then ()
        else if tries = 0 then
          Alcotest.failf "job never settled: %s" r.Http.r_body
        else begin
          Unix.sleepf 0.2;
          wait_done (tries - 1)
        end
      in
      wait_done 100;
      let records_1 = (get (Fmt.str "/runs/%s/records" digest)).Http.r_body in
      (* resubmitting the identical spec is a cache hit served from the
         store: done immediately, same digest, byte-identical bytes *)
      let id2, state2, digest2, cached2, status2 = submit () in
      Alcotest.(check int) "cache hit is 200" 200 status2;
      Alcotest.(check bool) "cache hit flagged" true cached2;
      Alcotest.(check string) "cache hit is done" "done" state2;
      Alcotest.(check string) "same digest" digest digest2;
      Alcotest.(check bool) "new job id" true (id2 <> id);
      let records_2 = (get (Fmt.str "/runs/%s/records" digest)).Http.r_body in
      Alcotest.(check string) "served records byte-identical" records_1
        records_2;
      (match
         Metrics.validate_lines ~kind:F.metrics_kind
           ~record_fields:F.record_fields
           (Metrics.lines_of_string records_1)
       with
      | Ok n -> Alcotest.(check int) "served records validate" 8 n
      | Error e -> Alcotest.failf "served records invalid: %s" e);
      (* cached job's event stream comes from the store and replays *)
      let d2 = Sse.decoder () in
      let cached_records = ref [] in
      (match
         Http.stream ~host ~port
           ~path:(Fmt.str "/jobs/%d/events" id2)
           ~on_chunk:(fun chunk ->
             List.iter
               (fun (e : Sse.event) -> cached_records := e.Sse.data :: !cached_records)
               (Sse.feed d2 chunk))
           ()
       with
      | Ok 200 -> ()
      | Ok s -> Alcotest.failf "cached events status %d" s
      | Error e -> Alcotest.failf "cached events: %s" e);
      (match Events.replay (List.rev !cached_records) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "cached stream does not replay: %s" e);
      (* queue and metricz endpoints validate as ferrum.jobs.v1 *)
      List.iter
        (fun path ->
          match
            Metrics.validate_lines ~kind:Queue.kind
              ~record_fields:Queue.fields
              (Metrics.lines_of_string (get path).Http.r_body)
          with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" path e)
        [ "/jobs"; "/metricz" ];
      (* text exposition stays behind ?format=text *)
      let text = get "/metricz?format=text" in
      Alcotest.(check int) "metricz text status" 200 text.Http.status;
      List.iter
        (fun affix ->
          Alcotest.(check bool)
            (Fmt.str "metricz text has %S" affix)
            true
            (contains ~affix text.Http.r_body))
        [ "# TYPE ferrum_http_requests_total counter";
          "ferrum_jobs{state=\"done\"}";
          "# TYPE ferrum_job_seconds histogram";
          "ferrum_job_seconds_bucket{le=\"+Inf\"}"; "ferrum_job_seconds_count" ];
      (* the stored run carries a stitched trace, and a submission
         under a client traceparent adopts the caller's trace id with
         the job span parented under the caller's span *)
      let client_trace = "00112233445566aa" in
      let spec3 =
        "{\"benchmark\":\"Backprop\",\"technique\":\"ferrum\",\
         \"samples\":6,\"shards\":2,\"traced\":0}"
      in
      let id3, digest3 =
        match
          Http.request ~host ~port ~meth:"POST" ~path:"/jobs"
            ~headers:
              [ ("traceparent",
                 Trace.to_traceparent ~trace:client_trace ~span:"0") ]
            ~body:spec3 ()
        with
        | Error e -> Alcotest.failf "traced submit: %s" e
        | Ok r -> (
          let record =
            match
              List.filter_map Json.of_string_opt
                (Metrics.lines_of_string r.Http.r_body)
            with
            | [ _header; record ] -> record
            | _ -> Alcotest.failf "response is not header + one record"
          in
          match (Json.member "id" record, Json.member "digest" record) with
          | Some (Json.Int id), Some (Json.Str dg) -> (id, dg)
          | _ -> Alcotest.failf "job record incomplete: %s" r.Http.r_body)
      in
      let rec wait_done3 tries =
        let r = get (Fmt.str "/jobs/%d" id3) in
        if contains ~affix:"\"state\":\"done\"" r.Http.r_body then ()
        else if tries = 0 then
          Alcotest.failf "traced job never settled: %s" r.Http.r_body
        else begin
          Unix.sleepf 0.2;
          wait_done3 (tries - 1)
        end
      in
      wait_done3 100;
      let trace_doc = get (Fmt.str "/runs/%s/trace" digest3) in
      Alcotest.(check int) "trace artifact status" 200 trace_doc.Http.status;
      let trace_lines = Metrics.lines_of_string trace_doc.Http.r_body in
      (match
         Metrics.validate_lines ~kind:Trace.kind ~record_fields:Trace.fields
           trace_lines
       with
      | Ok n -> Alcotest.(check bool) "trace has records" true (n > 0)
      | Error e -> Alcotest.failf "served trace invalid: %s" e);
      let records3 =
        match trace_lines with _hdr :: r -> r | [] -> []
      in
      (match Trace.validate_stitched records3 with
      | Error e -> Alcotest.failf "served trace does not stitch: %s" e
      | Ok root -> (
        match Trace.rows_of_lines records3 with
        | Error e -> Alcotest.failf "trace rows: %s" e
        | Ok rows ->
          let spans = Trace.spans_of_rows rows in
          let root_span =
            List.find (fun s -> s.Trace.sp_id = root) spans
          in
          Alcotest.(check string) "job span is the document root" "job"
            root_span.Trace.sp_name;
          Alcotest.(check string) "rooted under the client's span" "0"
            root_span.Trace.sp_parent;
          List.iter
            (fun n ->
              Alcotest.(check bool)
                (Fmt.str "trace has %s span" n)
                true
                (List.exists (fun s -> s.Trace.sp_name = n) spans))
            [ "job"; "queue-wait"; "resolve"; "campaign"; "shard" ]));
      (* the client's trace id is adopted verbatim in every row *)
      Alcotest.(check bool) "client trace id adopted" true
        (List.for_all (contains ~affix:client_trace) records3);
      (* the wall sidecar is served too *)
      Alcotest.(check int) "trace-wall artifact status" 200
        (get (Fmt.str "/runs/%s/trace-wall" digest3)).Http.status;
      (* history page lists the run *)
      Alcotest.(check bool) "history names the digest" true
        (contains ~affix:(String.sub digest 0 12)
           (get "/history").Http.r_body))

let () =
  Alcotest.run "serve"
    [
      ( "sse",
        [
          Alcotest.test_case "chunk-boundary independence" `Quick
            test_sse_chunking;
          Alcotest.test_case "multi-line data joins" `Quick
            test_sse_multiline_data;
          Alcotest.test_case "crlf and field variants" `Quick test_sse_crlf;
          Alcotest.test_case "Last-Event-ID resume replays" `Quick
            test_sse_resume_replay;
        ] );
      ( "events",
        [ Alcotest.test_case "heartbeat ETA clamp" `Quick test_eta_clamp ] );
      ( "store",
        [
          Alcotest.test_case "cache hit, byte identity" `Quick
            test_store_cache_hit;
          Alcotest.test_case "corrupt entries rejected" `Quick
            test_store_corrupt_rejected;
          Alcotest.test_case "index keeps publication order" `Quick
            test_store_index_order;
        ] );
      ( "queue",
        [
          Alcotest.test_case "persistence and demotion" `Quick
            test_queue_persistence;
        ] );
      ( "fsutil",
        [ Alcotest.test_case "copy_tree and rename" `Quick test_fsutil_tree_ops ] );
      ( "history",
        [
          Alcotest.test_case "weighted percentiles" `Quick
            test_history_percentile;
          Alcotest.test_case "render with diffs" `Quick test_history_render;
          Alcotest.test_case "empty store" `Quick test_history_empty;
        ] );
      ( "http",
        [
          Alcotest.test_case "request parsing" `Quick test_http_request_parse;
          Alcotest.test_case "silent client times out" `Quick
            test_http_silent_client;
          Alcotest.test_case "request head cap" `Quick test_http_head_cap;
        ] );
      ( "spec",
        [ Alcotest.test_case "defaults and round-trip" `Quick test_spec_roundtrip ] );
      ( "daemon",
        [
          Alcotest.test_case "end-to-end over loopback" `Slow
            test_daemon_end_to_end;
        ] );
    ]
