(* Tests for the statistical confidence layer: Wilson/Jeffreys interval
   correctness (including the degenerate tallies the old normal
   approximation got wrong), streaming-tally/batch-recompute equality,
   shard-merge associativity, serialization of the ferrum.stats.v1
   rows, byte-identical adaptive campaigns across shard counts, and
   the adaptive-vs-flat acceptance bound: with the same budget the
   adaptive allocator must shrink the mean Wilson half-width over the
   worst decile of vulnerability-map sites. *)

module Machine = Ferrum_machine.Machine
module F = Ferrum_faultsim.Faultsim
module Stats = Ferrum_telemetry.Stats
module Runner = Ferrum_campaign.Runner
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog

let feq ?(eps = 1e-6) msg a b =
  if abs_float (a -. b) > eps then
    Alcotest.failf "%s: expected %.8f, got %.8f" msg a b

(* ---- interval estimators ---- *)

let test_wilson_known_value () =
  (* n=100, k=50, z=1.96: the textbook Wilson interval is
     [0.40383, 0.59617]. *)
  let w = Stats.wilson (Stats.make ~n:100 ~k:50) in
  feq ~eps:1e-4 "lo" 0.40383 w.Stats.lo;
  feq ~eps:1e-4 "hi" 0.59617 w.Stats.hi;
  feq ~eps:1e-4 "half-width" 0.09617 (Stats.half_width w)

let test_wilson_degenerate () =
  (* The degeneracies the normal approximation suffered: n=0 gave NaN
     and k=0 / k=n gave zero-width intervals.  Wilson must yield the
     whole unit interval for n=0 and nonzero width at the corners. *)
  let empty = Stats.wilson Stats.zero in
  feq "n=0 lo" 0.0 empty.Stats.lo;
  feq "n=0 hi" 1.0 empty.Stats.hi;
  let none = Stats.wilson (Stats.make ~n:10 ~k:0) in
  feq "k=0 lower bound" 0.0 none.Stats.lo;
  Alcotest.(check bool) "k=0 has width" true (none.Stats.hi > 0.0);
  let all = Stats.wilson (Stats.make ~n:10 ~k:10) in
  feq "k=n upper bound" 1.0 all.Stats.hi;
  Alcotest.(check bool) "k=n has width" true (all.Stats.lo < 1.0)

let test_wilson_shrinks () =
  let hw n k = Stats.half_width (Stats.wilson (Stats.make ~n ~k)) in
  Alcotest.(check bool) "10 -> 100 shrinks" true (hw 100 50 < hw 10 5);
  Alcotest.(check bool) "100 -> 1000 shrinks" true (hw 1000 500 < hw 100 50);
  Alcotest.(check bool) "bounded by [0,1]" true
    (let w = Stats.wilson (Stats.make ~n:3 ~k:1) in
     w.Stats.lo >= 0.0 && w.Stats.hi <= 1.0 && w.Stats.lo < w.Stats.hi)

let test_jeffreys_quantiles () =
  (* The Jeffreys bounds are the 2.5%/97.5% quantiles of the
     Beta(k+1/2, n-k+1/2) posterior, so the regularized incomplete
     beta must evaluate to the tail masses at the bounds. *)
  let t = Stats.make ~n:40 ~k:10 in
  let j = Stats.jeffreys t in
  feq ~eps:1e-4 "lower tail mass" 0.025 (Stats.betai 10.5 30.5 j.Stats.lo);
  feq ~eps:1e-4 "upper tail mass" 0.975 (Stats.betai 10.5 30.5 j.Stats.hi);
  (* standard endpoint convention at the corners *)
  let none = Stats.jeffreys (Stats.make ~n:10 ~k:0) in
  feq "k=0 lower bound" 0.0 none.Stats.lo;
  let all = Stats.jeffreys (Stats.make ~n:10 ~k:10) in
  feq "k=n upper bound" 1.0 all.Stats.hi

(* ---- tallies: streaming vs batch, merge algebra ---- *)

let tally_of_list = List.fold_left Stats.add Stats.zero

let prop_stream_equals_batch =
  QCheck.Test.make ~name:"stats: streaming tally = batch recompute"
    ~count:200
    QCheck.(list bool)
    (fun outcomes ->
      let streamed = tally_of_list outcomes in
      let batch =
        Stats.make ~n:(List.length outcomes)
          ~k:(List.length (List.filter Fun.id outcomes))
      in
      streamed = batch)

let prop_merge_associative =
  QCheck.Test.make ~name:"stats: shard merge associative and exact"
    ~count:200
    QCheck.(triple (list bool) (list bool) (list bool))
    (fun (a, b, c) ->
      let ta = tally_of_list a
      and tb = tally_of_list b
      and tc = tally_of_list c in
      Stats.merge (Stats.merge ta tb) tc
      = Stats.merge ta (Stats.merge tb tc)
      && Stats.merge (Stats.merge ta tb) tc = tally_of_list (a @ b @ c))

let test_stream_sites_and_rows () =
  let s = Stats.create ~stride:2 ~budget:6 () in
  Stats.observe s ~site:3 ~sdc:false;
  Stats.observe s ~site:3 ~sdc:true;
  Stats.round_end s;
  Stats.observe s ~site:1 ~sdc:false;
  Alcotest.(check int) "spent" 3 (Stats.spent s);
  Alcotest.(check bool) "total tally" true
    (Stats.total s = Stats.make ~n:3 ~k:1);
  Alcotest.(check bool) "site tally" true
    (Stats.site_tally s 3 = Stats.make ~n:2 ~k:1);
  (* every serialized row must parse back to itself *)
  List.iter
    (fun line ->
      match Stats.row_of_string line with
      | Error e -> Alcotest.failf "unparseable row %s: %s" line e
      | Ok r ->
        let again =
          Result.get_ok (Stats.row_of_string (Ferrum_telemetry.Json.to_string
                                                (Stats.row_json r)))
        in
        if again <> r then Alcotest.failf "roundtrip drift: %s" line)
    (Stats.lines s);
  let rows = Stats.rows s in
  Alcotest.(check bool) "has a round row" true
    (List.exists (fun r -> r.Stats.row = "round") rows);
  match List.rev rows with
  | last :: _ -> Alcotest.(check string) "campaign row last" "campaign"
                   last.Stats.row
  | [] -> Alcotest.fail "no rows"

(* ---- adaptive campaigns ---- *)

let raw_workload name =
  let m = (Option.get (Catalog.find name)).Catalog.build () in
  F.prepare (Machine.load (Pipeline.raw m).program)

let test_adaptive_shard_identity () =
  (* Fixed seed and budget: the adaptive campaign's merged record and
     stats documents must be byte-identical for any shard count. *)
  let run k =
    let r =
      Runner.run_adaptive ~mode:Runner.Inject ~shards:k ~seed:77L ~budget:48
        ~policy:{ F.rounds = 3; target_ci = 0.0 }
        (raw_workload "kNN")
    in
    (r.Runner.record_lines, r.Runner.stats_lines)
  in
  let ref_records, ref_stats = run 1 in
  List.iter
    (fun k ->
      let records, stats = run k in
      Alcotest.(check (list string))
        (Fmt.str "records, %d shards" k)
        ref_records records;
      Alcotest.(check (list string))
        (Fmt.str "stats, %d shards" k)
        ref_stats stats)
    [ 2; 3 ]

(* The acceptance bound from the issue: with the same total budget, the
   adaptive allocator must achieve a strictly smaller mean Wilson SDC
   half-width than the flat campaign over the worst decile of
   vulnerability-map sites (the top tenth of static sites ranked by the
   flat run's SDC estimate, ties broken by index). *)
let test_adaptive_beats_flat_on_worst_decile () =
  (* The budget must comfortably exceed the candidate-site count
     (kNN raw: 261) or neither scheme can lift the worst sites past a
     couple of samples each. *)
  let budget = 1200 and seed = 21L in
  let target = raw_workload "kNN" in
  let flat =
    Runner.run ~mode:Runner.Traced ~shards:1 ~seed ~samples:budget target
  in
  let adaptive =
    Runner.run_adaptive ~mode:Runner.Traced ~shards:1 ~seed ~budget
      ~policy:{ F.rounds = 8; target_ci = 0.0 }
      target
  in
  let site_counts r i =
    let v = Option.get r.Runner.vulnmap in
    v.F.v_sites.(i).F.s_counts
  in
  let eligible = target.F.eligible in
  let candidates =
    List.filter (fun i -> eligible.(i))
      (List.init (Array.length eligible) Fun.id)
  in
  let p_hat c =
    if c.F.samples = 0 then 0.0
    else float_of_int c.F.sdc /. float_of_int c.F.samples
  in
  let ranked =
    List.sort
      (fun a b ->
        let d = compare (p_hat (site_counts flat b))
                  (p_hat (site_counts flat a)) in
        if d <> 0 then d else compare a b)
      candidates
  in
  let decile =
    let n = (List.length candidates + 9) / 10 in
    List.filteri (fun i _ -> i < n) ranked
  in
  let mean_hw r =
    let sum =
      List.fold_left
        (fun acc i ->
          let c = site_counts r i in
          acc
          +. Stats.half_width
               (Stats.wilson { Stats.n = c.F.samples; k = c.F.sdc }))
        0.0 decile
    in
    sum /. float_of_int (List.length decile)
  in
  let flat_hw = mean_hw flat and adaptive_hw = mean_hw adaptive in
  if not (adaptive_hw < flat_hw) then
    Alcotest.failf
      "adaptive did not shrink worst-decile CI: flat %.4f vs adaptive %.4f"
      flat_hw adaptive_hw

let () =
  Alcotest.run "stats"
    [
      ( "intervals",
        [
          Alcotest.test_case "wilson known value" `Quick
            test_wilson_known_value;
          Alcotest.test_case "wilson degenerate tallies" `Quick
            test_wilson_degenerate;
          Alcotest.test_case "wilson shrinks with n" `Quick
            test_wilson_shrinks;
          Alcotest.test_case "jeffreys quantiles" `Quick
            test_jeffreys_quantiles;
        ] );
      ( "tallies",
        [
          QCheck_alcotest.to_alcotest prop_stream_equals_batch;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          Alcotest.test_case "stream rows and sites" `Quick
            test_stream_sites_and_rows;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "byte-identical across shard counts" `Slow
            test_adaptive_shard_identity;
          Alcotest.test_case "beats flat on worst decile" `Slow
            test_adaptive_beats_flat_on_worst_decile;
        ] );
    ]
