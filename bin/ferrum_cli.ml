(* ferrum — command-line front end for the toolchain.

   Subcommands:
     list                      benchmark catalogue (paper Table II)
     ir BENCH                  print the mini-IR of a benchmark
     compile BENCH [-p TECH]   print (protected) assembly
     run BENCH [-p TECH]       simulate and report output/cycles
     inject BENCH [-p TECH]    fault-injection campaign (+ JSONL metrics)
     trace BENCH [--fault]     execution trace / flight-recorder dump
     profile BENCH             per-opcode cycle and overhead breakdown
     metrics FILE              validate and summarise a metrics JSONL file
     vulnmap BENCH [-p TECH]   per-site vulnerability map + detection latency
     lint BENCH [-p TECH]      static protection verifier (+ --crossval)
     explain BENCH --fault S:I propagation trace of one campaign sample
     campaign BENCH --shards N sharded fork-pool campaign -> run directory
     serve --root DIR          campaign daemon: job queue + run store + SSE
     submit BENCH              POST a campaign job to a running daemon
     watch JOB                 stream a job's live events (SSE client)
     fetch PATH                GET a daemon path (stored artifacts, queue)
     report [ARTEFACT]         regenerate the paper's tables/figures *)

module Machine = Ferrum_machine.Machine
module Flight = Ferrum_machine.Flight
module F = Ferrum_faultsim.Faultsim
module Rng = Ferrum_faultsim.Rng
module Technique = Ferrum_eddi.Technique
module Pipeline = Ferrum_eddi.Pipeline
module Catalog = Ferrum_workloads.Catalog
module Lint = Ferrum_analysis.Lint
module Shadow = Ferrum_analysis.Shadow
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Span = Ferrum_telemetry.Span
module Profile = Ferrum_telemetry.Profile
module Events = Ferrum_telemetry.Events
module Stats = Ferrum_telemetry.Stats
module Trace = Ferrum_telemetry.Trace
module Runner = Ferrum_campaign.Runner
module Manifest = Ferrum_campaign.Manifest
module Store = Ferrum_campaign.Store
module Fsutil = Ferrum_campaign.Fsutil
module Queue = Ferrum_campaign.Queue
module Sse = Ferrum_telemetry.Sse
module Html = Ferrum_report.Html
module Serve = Ferrum_serve.Daemon
module Jobspec = Ferrum_serve.Spec
module Http = Ferrum_serve.Http
open Cmdliner

let find_bench name =
  match Catalog.find name with
  | Some e -> e
  | None ->
    Fmt.epr "unknown benchmark %S; try: %s@." name
      (String.concat ", " Catalog.names);
    exit 1

let technique_conv =
  let parse s =
    match Technique.of_short_name s with
    | Some t -> Ok t
    | None -> Error (`Msg "expected ir-eddi, hybrid or ferrum")
  in
  let print ppf t = Fmt.string ppf (Technique.short_name t) in
  Arg.conv (parse, print)

let bench_arg =
  let doc = "Benchmark name (see `ferrum list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let protect_arg =
  let doc = "Protection technique: ir-eddi, hybrid or ferrum." in
  Arg.(value & opt (some technique_conv) None & info [ "p"; "protect" ] ~doc)

let samples_arg =
  let doc = "Number of fault injections to sample." in
  Arg.(value & opt int 400 & info [ "samples" ] ~doc)

let seed_arg =
  let doc = "PRNG seed; campaigns are bit-reproducible for a given seed." in
  Arg.(value & opt int64 2024L & info [ "seed" ] ~doc)

let all_sites_arg =
  let doc =
    "Also inject into duplicated/checker/instrumentation instructions \
     (DESIGN.md experiment E8)."
  in
  Arg.(value & flag & info [ "all-sites" ] ~doc)

let fault_bits_arg =
  let doc = "Bits flipped per fault (>1 reproduces multi-bit upsets, E11)." in
  Arg.(value & opt int 1 & info [ "fault-bits" ] ~doc)

(* Execution engine: checkpointed by default, `--no-checkpoints` falls
   back to the pooled scratch path.  Both are bit-identical to the
   historical scratch engine; the escape hatch exists for debugging and
   perf comparison. *)
let checkpoint_interval_arg =
  let doc =
    "Golden-run checkpoint spacing in dynamic instructions; each \
     injection resumes from the nearest checkpoint below its flip \
     point."
  in
  Arg.(value & opt int 4096 & info [ "checkpoint-interval" ] ~docv:"N" ~doc)

let no_checkpoints_arg =
  let doc =
    "Disable golden-run checkpoints (injections re-execute from program \
     start on a pooled state).  Results are bit-identical either way."
  in
  Arg.(value & flag & info [ "no-checkpoints" ] ~doc)

let engine_term =
  let make interval no_checkpoints =
    if no_checkpoints then F.Pooled
    else begin
      if interval < 1 then begin
        Fmt.epr "ferrum: --checkpoint-interval must be >= 1@.";
        exit 2
      end;
      F.Checkpointed interval
    end
  in
  Term.(const make $ checkpoint_interval_arg $ no_checkpoints_arg)

let optimize_arg =
  let doc = "Run the backend peephole optimiser before protection (E9)." in
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc)

let no_simd_arg =
  let doc = "Disable FERRUM's SIMD batching (E6 ablation)." in
  Arg.(value & flag & info [ "no-simd" ] ~doc)

let zmm_arg =
  let doc = "Batch eight results through ZMM registers (E10 extension)." in
  Arg.(value & flag & info [ "zmm" ] ~doc)

let liveness_arg =
  let doc =
    "Under register pressure, clobber liveness-proven dead registers \
     instead of push/pop requisition (paper SIII-B2)."
  in
  Arg.(value & flag & info [ "liveness" ] ~doc)

let spares_arg =
  let doc =
    "Cap the spare general-purpose registers FERRUM may use (E7: forces \
     stack-level requisition, paper Fig. 7)."
  in
  Arg.(value & opt (some int) None & info [ "max-spares" ] ~doc)

type knobs = {
  optimize : bool;
  ferrum_config : Ferrum_eddi.Ferrum_pass.config;
}

let knobs_term =
  let make optimize no_simd zmm liveness max_spares =
    {
      optimize;
      ferrum_config =
        {
          Ferrum_eddi.Ferrum_pass.use_simd = not no_simd;
          use_zmm = zmm;
          use_liveness = liveness;
          select = None;
          max_spare_gprs = max_spares;
          max_spare_simd = None;
        };
    }
  in
  Term.(
    const make $ optimize_arg $ no_simd_arg $ zmm_arg $ liveness_arg
    $ spares_arg)

let program_of ?technique knobs entry =
  let m = entry.Catalog.build () in
  match technique with
  | None -> (Pipeline.raw ~optimize:knobs.optimize m).program
  | Some t ->
    (Pipeline.protect ~ferrum_config:knobs.ferrum_config
       ~optimize:knobs.optimize t m)
      .program

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Catalog.entry) ->
        Fmt.pr "%-16s %-8s %s@." e.name e.suite e.domain)
      Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark catalogue (Table II).")
    Term.(const run $ const ())

(* ---- ir ---- *)

let ir_cmd =
  let run bench =
    let e = find_bench bench in
    print_string (Ferrum_ir.Ir.to_string (e.build ()))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Print the mini-IR of a benchmark.")
    Term.(const run $ bench_arg)

(* ---- compile ---- *)

let compile_cmd =
  let run bench technique knobs =
    let p = program_of ?technique knobs (find_bench bench) in
    print_string (Ferrum_asm.Printer.program_to_string p)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a benchmark to AT&T-syntax assembly, optionally protected.")
    Term.(const run $ bench_arg $ protect_arg $ knobs_term)

(* ---- run ---- *)

let run_cmd =
  let run bench technique knobs =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let outcome, st = Machine.run_fresh img in
    Fmt.pr "outcome: %a@." Machine.pp_outcome outcome;
    Fmt.pr "dynamic instructions: %d@." st.Machine.steps;
    Fmt.pr "model cycles: %.0f@." st.Machine.cycles;
    Fmt.pr "static instructions: %d@." (Ferrum_asm.Prog.num_instructions p);
    match outcome with Machine.Exit _ -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a (optionally protected) benchmark.")
    Term.(const run $ bench_arg $ protect_arg $ knobs_term)

(* ---- inject ---- *)

let technique_name = function
  | Some t -> Technique.short_name t
  | None -> "raw"

let metrics_arg =
  let doc =
    "Stream one JSON record per injection to $(docv) (JSONL: a header \
     line, then site/opcode/destination/bit/classification/cycles per \
     sample; bit-reproducible for a given seed)."
  in
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"PATH" ~doc)

(* Live progress on stderr, driven by ferrum.events.v1 heartbeats —
   the one renderer behind `campaign`, `inject --progress` and
   `vulnmap --progress`.  Stdout stays deterministic; the carriage
   return keeps it to a single updating line. *)
let progress_renderer label =
  let shards = Hashtbl.create 8 in
  let budget = ref (-1) in
  let hw = ref 0.0 in
  let closed = ref false in
  fun (e : Events.t) ->
    (match e.Events.body with
    | Events.Shard_started { lo; hi } ->
      Hashtbl.replace shards e.Events.shard (0, hi - lo, 0)
    | Events.Progress { done_; total; clock; budget = b; hw = w; _ } ->
      Hashtbl.replace shards e.Events.shard (done_, total, clock);
      if b >= 0 then budget := b;
      if w > 0.0 then hw := w
    | Events.Shard_finished { done_; total; clock; _ } ->
      Hashtbl.replace shards e.Events.shard (done_, total, clock)
    | _ -> ());
    let done_, started, clock =
      Hashtbl.fold
        (fun _ (d, t, c) (ad, at, ac) -> (ad + d, at + t, ac + c))
        shards (0, 0, 0)
    in
    (* Denominator: the campaign's sample budget when heartbeats carry
       one (adaptive runs start shards round by round, so the sum of
       started shard ranges would undercount and the bar would jump),
       else the started total.  An early-stopped adaptive campaign ends
       below its budget, so closing the line waits for the
       campaign-finished event rather than done = total. *)
    let total = if !budget > started then !budget else started in
    if (not !closed) && total > 0 then begin
      let eta = Events.eta ~done_ ~total ~clock in
      if !hw > 0.0 then
        Fmt.epr
          "\r[%s] %d/%d samples  clock %d  ci ±%.4f  eta ~%.0f steps   %!"
          label done_ total clock !hw eta
      else
        Fmt.epr "\r[%s] %d/%d samples  clock %d  eta ~%.0f steps   %!" label
          done_ total clock eta;
      let finished =
        match e.Events.body with
        | Events.Campaign_finished _ -> true
        | _ -> done_ = total
      in
      if finished then begin
        Fmt.epr "@.";
        closed := true
      end
    end

(* Synthesize heartbeat events from a sequential record stream so the
   sequential paths drive the same renderer as the sharded runner. *)
let sequential_heartbeats ~samples fire =
  let tally = ref Events.zero_tally in
  let clock = ref 0 and done_ = ref 0 in
  let every = max 1 (samples / 10) in
  fire
    {
      Events.seq = 0;
      shard = 0;
      attempt = 0;
      body = Events.Shard_started { lo = 0; hi = samples };
    };
  fun (r : F.record) ->
    incr done_;
    clock := !clock + r.F.steps;
    (match
       Events.tally_of_name !tally (F.classification_name r.F.r_class)
     with
    | Some t -> tally := t
    | None -> ());
    if !done_ mod every = 0 || !done_ = samples then
      fire
        {
          Events.seq = 0;
          shard = 0;
          attempt = 0;
          body =
            Events.Progress
              { done_ = !done_; total = samples; tally = !tally;
                clock = !clock; spent = !done_; budget = samples;
                hw =
                  Stats.half_width
                    (Stats.wilson
                       { Stats.n = !done_; k = !tally.Events.sdc }) };
        }

let progress_arg =
  let doc =
    "Render live progress on stderr (heartbeat-driven; quiet by \
     default)."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* ---- adaptive allocation / stats flags (inject, vulnmap, campaign) ---- *)

let adaptive_arg =
  let doc =
    "Adaptive sample allocation: split the budget into rounds and \
     direct each round at the fault sites with the widest SDC \
     confidence intervals so far.  Byte-reproducible for a fixed seed."
  in
  Arg.(value & flag & info [ "adaptive" ] ~doc)

let rounds_arg =
  let doc = "Allocation rounds for $(b,--adaptive)." in
  Arg.(value & opt int 8 & info [ "rounds" ] ~docv:"N" ~doc)

let target_ci_arg =
  let doc =
    "With $(b,--adaptive), stop early once every reached site's Wilson \
     95% half-width is at or below $(docv) (0 disables early stop)."
  in
  Arg.(value & opt float 0.0 & info [ "target-ci" ] ~docv:"W" ~doc)

let stats_out_arg =
  let doc =
    "Write the ferrum.stats.v1 convergence document (CI half-width vs \
     samples spent, per-site intervals, campaign interval) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"PATH" ~doc)

let write_stats_file ~path ~bench ~technique ~samples ~seed ~all_sites
    ~fault_bits lines =
  let header =
    Store.stats_header ~benchmark:bench ~technique:(technique_name technique)
      ~samples ~seed ~all_sites ~fault_bits
  in
  Fsutil.write_file path (Store.jsonl header lines);
  Fmt.epr "[stats] wrote %s@." path

let run_campaign ?technique ?stats_out ~bench ~samples ~seed ~all_sites
    ~fault_bits ~engine ~metrics ~progress img =
  let scope = if all_sites then F.All_sites else F.Original_only in
  let heartbeat =
    if progress then
      sequential_heartbeats ~samples (progress_renderer "inject")
    else fun _ -> ()
  in
  let stream =
    match stats_out with
    | None -> None
    | Some path -> Some (path, Stats.create ~budget:samples ())
  in
  let observe (r : F.record) =
    (match stream with
    | Some (_, s) ->
      Stats.observe s ~site:r.F.r_static_index ~sdc:(r.F.r_class = F.Sdc)
    | None -> ());
    heartbeat r
  in
  let res =
    match metrics with
    | None ->
      F.campaign ~scope ~seed ~samples ~fault_bits ~engine
        ~on_record:observe img
    | Some path ->
      let sink = Metrics.file_sink path in
      Metrics.emit sink
        (Store.injection_header ~benchmark:bench
           ~technique:(technique_name technique) ~samples ~seed ~all_sites
           ~fault_bits);
      let on_record r =
        Metrics.emit sink (F.record_to_json r);
        observe r
      in
      let res =
        Fun.protect
          ~finally:(fun () -> Metrics.close sink)
          (fun () ->
            F.campaign ~scope ~seed ~samples ~fault_bits ~engine ~on_record
              img)
      in
      Fmt.epr "[inject] wrote %s@." path;
      res
  in
  (match stream with
  | Some (path, s) ->
    write_stats_file ~path ~bench ~technique ~samples ~seed ~all_sites
      ~fault_bits (Stats.lines s)
  | None -> ());
  res

(* Shared by inject/vulnmap --adaptive: a single-process adaptive
   campaign through the runner's round machinery. *)
let run_adaptive_local ~mode ~label ~rounds ~target_ci ~fault_bits ~seed
    ~samples ~progress target =
  let on_event = if progress then Some (progress_renderer label) else None in
  try
    Runner.run_adaptive ?on_event ~fault_bits
      ~policy:{ F.rounds; target_ci } ~mode ~shards:1 ~seed ~budget:samples
      target
  with Failure msg | Invalid_argument msg ->
    Fmt.epr "%s@." msg;
    exit 1

let pp_campaign_interval ppf (counts : F.counts) =
  let t = F.sdc_tally counts in
  let w = Stats.wilson t and j = Stats.jeffreys t in
  Fmt.pf ppf
    "SDC probability: %.4f +/- %.4f (Wilson 95%%: [%.4f, %.4f]; Jeffreys: \
     [%.4f, %.4f])"
    (F.sdc_probability counts)
    (Stats.half_width w) w.Stats.lo w.Stats.hi j.Stats.lo j.Stats.hi

let inject_cmd =
  let run bench technique knobs samples seed all_sites fault_bits engine
      verbose metrics progress adaptive rounds target_ci stats_out =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    if adaptive then begin
      let scope = if all_sites then F.All_sites else F.Original_only in
      let target =
        try F.prepare ~scope ~engine img
        with Invalid_argument msg ->
          Fmt.epr "%s@." msg;
          exit 1
      in
      let result =
        run_adaptive_local ~mode:Runner.Inject ~label:"inject" ~rounds
          ~target_ci ~fault_bits ~seed ~samples ~progress target
      in
      (match metrics with
      | None -> ()
      | Some path ->
        let header =
          Store.injection_header ~benchmark:bench
            ~technique:(technique_name technique) ~samples ~seed ~all_sites
            ~fault_bits
        in
        Fsutil.write_file path
          (Store.jsonl header result.Runner.record_lines);
        Fmt.epr "[inject] wrote %s@." path);
      (match stats_out with
      | None -> ()
      | Some path ->
        write_stats_file ~path ~bench ~technique ~samples ~seed ~all_sites
          ~fault_bits result.Runner.stats_lines);
      Fmt.pr "%a@." F.pp_counts result.Runner.counts;
      Fmt.pr "%a@." pp_campaign_interval result.Runner.counts;
      if result.Runner.counts.F.samples < samples then
        Fmt.pr "early stop: spent %d of %d budget (target ci %.4f)@."
          result.Runner.counts.F.samples samples target_ci
    end
    else begin
      let res =
        run_campaign ?technique ?stats_out ~bench ~samples ~seed ~all_sites
          ~fault_bits ~engine ~metrics ~progress img
      in
      Fmt.pr "%a@." F.pp_counts res.F.counts;
      Fmt.pr "%a@." pp_campaign_interval res.F.counts;
      if verbose then
        List.iter
          (fun (cls, (f : F.fault)) ->
            Fmt.pr "  %-8s dyn=%-8d %s bit=%d@." (F.classification_name cls)
              f.F.dyn_index f.F.dest_desc f.F.bit)
          (List.rev res.F.faults)
    end
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print every fault (sequential campaigns only).")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Fault-injection campaign: single bit flips in destination \
          registers of sampled dynamic instructions.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ samples_arg
      $ seed_arg $ all_sites_arg $ fault_bits_arg $ engine_term
      $ verbose_arg $ metrics_arg $ progress_arg $ adaptive_arg
      $ rounds_arg $ target_ci_arg $ stats_out_arg)

(* ---- trace: annotated execution trace / flight-recorder dump ---- *)

(* Replay seeded injections until one is caught (or otherwise ends the
   run), with a flight recorder attached; dump the window that led to
   the event.  The sampling loop mirrors {!F.campaign}, so a fault
   found here corresponds to the same-seed campaign's sample. *)
let trace_fault ?technique ~bench ~seed ~attempts ~depth ~all_sites img =
  let scope = if all_sites then F.All_sites else F.Original_only in
  let t = F.prepare ~scope img in
  if t.F.eligible_steps = 0 then begin
    Fmt.epr "no eligible injection sites@.";
    exit 1
  end;
  let rng = Rng.create ~seed in
  let flight = Flight.create ~depth () in
  let rec hunt sample =
    if sample >= attempts then None
    else begin
      let sample_rng = Rng.split rng in
      let dyn_index = Rng.int sample_rng t.F.eligible_steps in
      Flight.clear flight;
      let cls, fault, st =
        F.inject_full ~observe:(Flight.observe flight img) t sample_rng
          ~dyn_index
      in
      match cls with
      | F.Benign -> hunt (sample + 1)
      | _ -> Some (sample, cls, fault, st)
    end
  in
  match hunt 0 with
  | None ->
    Fmt.pr "all %d sampled faults were benign; try more --samples@." attempts;
    exit 1
  | Some (sample, cls, fault, st) ->
    Fmt.pr "benchmark %s (%s): sample %d classified %s@." bench
      (match technique with
      | Some t -> Technique.short_name t
      | None -> "raw")
      sample (F.classification_name cls);
    Fmt.pr
      "fault: bit %d of %s at static index %d (dynamic write-back %d)@."
      fault.F.bit fault.F.dest_desc fault.F.static_index fault.F.dyn_index;
    Fmt.pr "run: %d instructions, %.0f model cycles@.@." st.Machine.steps
      st.Machine.cycles;
    Fmt.pr "%a" Flight.pp flight

let trace_cmd =
  let run bench technique knobs limit skip fault seed attempts depth
      all_sites =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    if fault then
      trace_fault ?technique ~bench ~seed ~attempts ~depth ~all_sites img
    else
    let printed = ref 0 and seen = ref 0 in
    let on_step (st : Machine.state) idx =
      incr seen;
      if !seen > skip && !printed < limit then begin
        incr printed;
        let ins = img.Machine.code.(idx) in
        let dests =
          List.filter_map
            (function
              | Ferrum_asm.Instr.Dgpr (r, _) ->
                Some
                  (Fmt.str "%s=%Ld"
                     (Ferrum_asm.Reg.gpr_name r Ferrum_asm.Reg.Q)
                     st.Machine.gpr.{Ferrum_asm.Reg.gpr_index r})
              | Ferrum_asm.Instr.Dflags _ ->
                Some
                  (Fmt.str "zf=%b sf=%b" st.Machine.zf st.Machine.sf)
              | Ferrum_asm.Instr.Dsimd (x, lanes) ->
                Some
                  (Fmt.str "xmm%d[%d]=%Ld" x (List.hd lanes)
                     st.Machine.simd.{(x * 8) + List.hd lanes}))
            img.Machine.dests.(idx)
        in
        Fmt.pr "%8d  %-40s %s@." !seen
          (Ferrum_asm.Printer.string_of_instr ins.Ferrum_asm.Instr.op)
          (String.concat "  " dests)
      end
    in
    let outcome, st = Machine.run_fresh ~on_step img in
    Fmt.pr "... %a after %d instructions@." Machine.pp_outcome outcome
      st.Machine.steps
  in
  let limit_arg =
    Arg.(value & opt int 60 & info [ "limit" ] ~doc:"Instructions to print.")
  in
  let skip_arg =
    Arg.(value & opt int 0 & info [ "skip" ] ~doc:"Instructions to skip first.")
  in
  let fault_arg =
    Arg.(value & flag
         & info [ "fault" ]
             ~doc:
               "Inject seeded faults until one is caught (or crashes or \
                times out) and dump the flight-recorder window that led \
                to the event.")
  in
  let attempts_arg =
    Arg.(value & opt int 400
         & info [ "samples" ]
             ~doc:"Max injections to try in --fault mode.")
  in
  let depth_arg =
    Arg.(value & opt int Flight.default_depth
         & info [ "depth" ]
             ~doc:"Flight-recorder depth (retired instructions kept).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Print an annotated execution trace (each retired instruction \
          with the values it wrote), or, with --fault, the \
          flight-recorder dump of an injected fault's last instructions.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ limit_arg
      $ skip_arg $ fault_arg $ seed_arg $ attempts_arg $ depth_arg
      $ all_sites_arg)

(* ---- check: parse/validate/run assembly text ---- *)

let check_cmd =
  let run file execute =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ferrum_asm.Parser.program text with
    | exception Ferrum_asm.Parser.Parse_error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1
    | p -> (
      match Ferrum_asm.Prog.validate p with
      | exception Ferrum_asm.Prog.Ill_formed msg ->
        Fmt.epr "%s: ill-formed: %s@." file msg;
        exit 1
      | () ->
        let stats = Ferrum_asm.Stats.of_program p in
        Fmt.pr "%s: ok@.%a" file Ferrum_asm.Stats.pp stats;
        if execute then begin
          let outcome, st = Machine.run_fresh (Machine.load p) in
          Fmt.pr "outcome: %a (%d instructions, %.0f cycles)@."
            Machine.pp_outcome outcome st.Machine.steps st.Machine.cycles;
          match outcome with Machine.Exit _ -> () | _ -> exit 1
        end)
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Assembly text in the dialect printed by `compile'.")
  in
  let exec_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Also simulate the program.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse and validate an assembly file (as printed by `compile'), \
          report its composition, and optionally simulate it.")
    Term.(const run $ file_arg $ exec_arg)

(* ---- stats: transform statistics ---- *)

(* Load and validate a ferrum.stats.v1 file; returns its parsed record
   rows (header excluded). *)
let load_stats_rows file =
  let lines =
    try Metrics.read_lines file
    with Sys_error msg ->
      Fmt.epr "%s@." msg;
      exit 1
  in
  match
    Metrics.validate_lines ~kind:Stats.kind ~record_fields:Stats.fields
      lines
  with
  | Error e ->
    Fmt.epr "%s: invalid stats file: %s@." file e;
    exit 1
  | Ok _ ->
    List.filteri (fun i _ -> i > 0) lines
    |> List.filter_map (fun l ->
           match Stats.row_of_string l with Ok r -> Some r | Error _ -> None)

let stats_campaign_row file rows =
  match List.find_opt (fun (r : Stats.row) -> r.Stats.row = "campaign") rows with
  | Some c -> c
  | None ->
    Fmt.epr "%s: no campaign row@." file;
    exit 1

let print_stats_summary file rows =
  let c = stats_campaign_row file rows in
  Fmt.pr "campaign: p=%.4f  wilson [%.4f, %.4f] ±%.4f  jeffreys [%.4f, \
          %.4f]  spent %d/%d@."
    c.Stats.p c.Stats.lo c.Stats.hi c.Stats.hw c.Stats.jlo c.Stats.jhi
    c.Stats.spent c.Stats.budget;
  let count kind =
    List.length (List.filter (fun (r : Stats.row) -> r.Stats.row = kind) rows)
  in
  Fmt.pr "rows: %d trace, %d round, %d site@." (count "trace")
    (count "round") (count "site");
  let sites =
    List.filter (fun (r : Stats.row) -> r.Stats.row = "site") rows
    |> List.sort (fun (a : Stats.row) (b : Stats.row) ->
           if a.Stats.hw = b.Stats.hw then compare a.Stats.index b.Stats.index
           else compare b.Stats.hw a.Stats.hw)
  in
  if sites <> [] then begin
    Fmt.pr "widest site intervals:@.";
    List.iteri
      (fun i (r : Stats.row) ->
        if i < 5 then
          Fmt.pr "  site %-5d p=%.4f ±%.4f  (%d samples, %d sdc)@."
            r.Stats.index r.Stats.p r.Stats.hw r.Stats.samples r.Stats.sdc)
      sites
  end

(* Two campaigns drift significantly only when their Wilson intervals
   are disjoint — overlapping intervals can't distinguish the runs at
   the interval's confidence level. *)
let compare_stats_files a b =
  let ca = stats_campaign_row a (load_stats_rows a) in
  let cb = stats_campaign_row b (load_stats_rows b) in
  Fmt.pr "%-40s p=%.4f  [%.4f, %.4f]@." (Filename.basename a) ca.Stats.p
    ca.Stats.lo ca.Stats.hi;
  Fmt.pr "%-40s p=%.4f  [%.4f, %.4f]@." (Filename.basename b) cb.Stats.p
    cb.Stats.lo cb.Stats.hi;
  let disjoint = ca.Stats.hi < cb.Stats.lo || cb.Stats.hi < ca.Stats.lo in
  if disjoint then begin
    Fmt.pr "drift: SIGNIFICANT (95%% intervals are disjoint)@.";
    exit 1
  end
  else Fmt.pr "drift: not significant (95%% intervals overlap)@."

let stats_cmd =
  let transform_stats bench knobs =
    let e = find_bench bench in
    let m = e.Catalog.build () in
    let raw = (Pipeline.raw ~optimize:knobs.optimize m).program in
    let p, fstats =
      Ferrum_eddi.Ferrum_pass.protect ~config:knobs.ferrum_config raw
    in
    let sraw = Ferrum_asm.Stats.of_program raw in
    let sprot = Ferrum_asm.Stats.of_program p in
    Fmt.pr "raw:@.%a@.ferrum:@.%a@." Ferrum_asm.Stats.pp sraw
      Ferrum_asm.Stats.pp sprot;
    Fmt.pr "static expansion: %.2fx@."
      (Ferrum_asm.Stats.expansion ~baseline:sraw ~protected_:sprot);
    Fmt.pr "transform: %a@." Ferrum_eddi.Ferrum_pass.pp_stats fstats
  in
  let run args knobs =
    match args with
    | [ a; b ] when Sys.file_exists a && Sys.file_exists b ->
      compare_stats_files a b
    | [ a ] when Sys.file_exists a -> print_stats_summary a (load_stats_rows a)
    | [ bench ] -> transform_stats bench knobs
    | _ ->
      Fmt.epr
        "expected a BENCH name, one ferrum.stats.v1 file, or two stats \
         files to compare@.";
      exit 1
  in
  let args_arg =
    let doc =
      "A benchmark name (static transform statistics), an existing \
       ferrum.stats.v1 file (confidence summary), or two stats files \
       (drift comparison; exits 1 when the campaigns' 95% intervals \
       are disjoint)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"BENCH|FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Static transform statistics for a benchmark, or confidence \
          summaries and drift comparison of ferrum.stats.v1 files.")
    Term.(const run $ args_arg $ knobs_term)

(* ---- profile: per-opcode cycles and overhead attribution ---- *)

let profile_cmd =
  let run bench technique knobs top timings json =
    let e = find_bench bench in
    let m = e.Catalog.build () in
    let techniques =
      match technique with Some t -> [ t ] | None -> Technique.all
    in
    (* Raw baseline first: the reference for overhead attribution. *)
    let raw_recorder = Span.create () in
    let raw =
      (Pipeline.raw ~recorder:raw_recorder ~optimize:knobs.optimize m)
        .Pipeline.program
    in
    let raw_img = Machine.load raw in
    let raw_profile = Profile.run raw_img in
    if json then begin
      (* One canonical JSON object: raw profile plus, per technique, the
         hot-opcode table, provenance overhead split and overhead vs
         raw.  No wall-clock values, so output is byte-stable. *)
      let raw_cycles = raw_profile.Profile.total_cycles in
      let tech_json t =
        let img =
          Machine.load
            (Pipeline.protect ~ferrum_config:knobs.ferrum_config
               ~optimize:knobs.optimize t m)
              .Pipeline.program
        in
        let profile = Profile.run img in
        Json.Obj
          [
            ("technique", Json.Str (Technique.short_name t));
            ("profile", Profile.to_json profile);
            ("dispatch", Profile.dispatch_to_json (Profile.dispatch img));
            ("overhead_pct",
             Json.Float
               (if raw_cycles > 0.0 then
                  100.0
                  *. (profile.Profile.total_cycles -. raw_cycles)
                  /. raw_cycles
                else 0.0));
          ]
      in
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("benchmark", Json.Str e.Catalog.name);
                ("raw", Profile.to_json raw_profile);
                ("raw_dispatch",
                 Profile.dispatch_to_json (Profile.dispatch raw_img));
                ("techniques", Json.Arr (List.map tech_json techniques));
              ]));
      exit 0
    end;
    Fmt.pr "== %s, raw ==@." e.Catalog.name;
    Fmt.pr "pipeline:@.%a" (Span.pp ~timings) raw_recorder;
    Fmt.pr "%a" (Profile.pp ~top) raw_profile;
    Fmt.pr "%a@." Profile.pp_dispatch (Profile.dispatch raw_img);
    List.iter
      (fun t ->
        let recorder = Span.create () in
        let r =
          Pipeline.protect ~recorder ~ferrum_config:knobs.ferrum_config
            ~optimize:knobs.optimize t m
        in
        let img = Machine.load r.Pipeline.program in
        let profile = Profile.run img in
        Fmt.pr "== %s, %s ==@." e.Catalog.name (Technique.short_name t);
        Fmt.pr "pipeline:@.%a" (Span.pp ~timings) recorder;
        Fmt.pr "%a" (Profile.pp ~top) profile;
        Fmt.pr "%a" Profile.pp_provenance profile;
        Fmt.pr "%a" Profile.pp_dispatch (Profile.dispatch img);
        let raw_cycles = raw_profile.Profile.total_cycles in
        if raw_cycles > 0.0 then begin
          Fmt.pr "overhead vs raw: %+.1f%%"
            (100.0 *. (profile.Profile.total_cycles -. raw_cycles)
            /. raw_cycles);
          let contrib =
            List.filter_map
              (fun (p : Profile.prov_row) ->
                if p.Profile.p_cycles > 0.0 && p.Profile.prov <> Ferrum_asm.Instr.Original
                then
                  Some
                    (Fmt.str "%s %+.1f%%"
                       (Profile.prov_name p.Profile.prov)
                       (100.0 *. p.Profile.p_cycles /. raw_cycles))
                else None)
              profile.Profile.by_provenance
          in
          if contrib <> [] then
            Fmt.pr " (%s)" (String.concat ", " contrib);
          Fmt.pr "@."
        end;
        Fmt.pr "@.")
      techniques
  in
  let top_arg =
    Arg.(value & opt int 12
         & info [ "top" ] ~doc:"Hot-opcode rows to print (0 = all).")
  in
  let timings_arg =
    Arg.(value & flag
         & info [ "timings" ]
             ~doc:"Include wall-clock stage durations (non-deterministic).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Emit one canonical JSON object (hot-opcode table and \
                provenance overhead split per technique) instead of \
                tables.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Per-opcode cycle breakdown of a benchmark under the cycle \
          model, pipeline-stage spans with transform counters, the \
          protection overhead attributed to duplicate / check / \
          instrumentation cycles, and predecoded-dispatch coverage \
          (fused superinstruction pairs and fast-path share).  Without \
          -p, profiles all three techniques against the raw baseline.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ top_arg
      $ timings_arg $ json_arg)

(* ---- metrics: validate and summarise a JSONL metrics file ---- *)

let metrics_cmd =
  (* Per-injection record files: outcome-class histogram. *)
  let summarize_injections lines =
    let by_class = Hashtbl.create 8 in
    List.iteri
      (fun i line ->
        if i > 0 then
          match Json.member "class" (Json.of_string line) with
          | Some (Json.Str c) ->
            Hashtbl.replace by_class c
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_class c))
          | _ -> ())
      lines;
    List.iter
      (fun c ->
        match Hashtbl.find_opt by_class c with
        | Some k -> Fmt.pr "  %-8s %d@." c k
        | None -> ())
      [ "benign"; "sdc"; "detected"; "crash"; "timeout" ]
  in
  (* Vulnerability-map files: outcome classes summed over sites. *)
  let summarize_vulnmap lines =
    let sum = Hashtbl.create 8 in
    let classes = [ "samples"; "benign"; "sdc"; "detected"; "crash"; "timeout" ] in
    List.iteri
      (fun i line ->
        if i > 0 then
          let j = Json.of_string line in
          List.iter
            (fun c ->
              match Json.member c j with
              | Some (Json.Int n) ->
                Hashtbl.replace sum c
                  (n + Option.value ~default:0 (Hashtbl.find_opt sum c))
              | _ -> ())
            classes)
      lines;
    List.iter
      (fun c ->
        Fmt.pr "  %-8s %d@." c
          (Option.value ~default:0 (Hashtbl.find_opt sum c)))
      classes
  in
  (* Lint files: finding-kind histogram. *)
  let summarize_lint lines =
    let by_kind = Hashtbl.create 8 in
    List.iteri
      (fun i line ->
        if i > 0 then
          match Json.member "kind" (Json.of_string line) with
          | Some (Json.Str k) ->
            Hashtbl.replace by_kind k
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k))
          | _ -> ())
      lines;
    List.iter
      (fun k ->
        match Hashtbl.find_opt by_kind k with
        | Some n -> Fmt.pr "  %-20s %d@." k n
        | None -> ())
      (List.map Shadow.kind_name Shadow.all_kinds @ [ "uncovered-site" ])
  in
  (* Event logs: event-type histogram plus a full replay check. *)
  let summarize_events lines =
    let by_event = Hashtbl.create 8 in
    List.iteri
      (fun i line ->
        if i > 0 then
          match Json.member "event" (Json.of_string line) with
          | Some (Json.Str e) ->
            Hashtbl.replace by_event e
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_event e))
          | _ -> ())
      lines;
    List.iter
      (fun e ->
        match Hashtbl.find_opt by_event e with
        | Some n -> Fmt.pr "  %-18s %d@." e n
        | None -> ())
      [ "campaign_started"; "shard_started"; "progress"; "shard_retry";
        "shard_finished"; "campaign_finished" ];
    match Events.replay (List.tl lines) with
    | Ok (tally, clock) ->
      Fmt.pr "  replay: %d samples (%d sdc, %d detected), clock %d@."
        (Events.tally_total tally) tally.Events.sdc tally.Events.detected
        clock
    | Error e ->
      Fmt.epr "event log does not replay: %s@." e;
      exit 1
  in
  (* Bench documents are one JSON object, not JSONL: validated by the
     header check alone; summarised by their experiment wall times. *)
  let summarize_bench lines =
    match lines with
    | [ doc ] -> (
      let j = Json.of_string doc in
      match Json.member "experiments" j with
      | Some (Json.Arr exps) ->
        List.iter
          (fun e ->
            match (Json.member "name" e, Json.member "wall_seconds" e) with
            | Some (Json.Str n), Some (Json.Float w) ->
              Fmt.pr "  %-24s %8.3f s@." n w
            | Some (Json.Str n), Some (Json.Int w) ->
              Fmt.pr "  %-24s %8d s@." n w
            | _ -> ())
          exps
      | _ -> ())
    | _ -> ()
  in
  (* Run-store indexes: one line per published run with its tallies. *)
  let summarize_runs lines =
    List.iteri
      (fun i line ->
        if i > 0 then
          let j = Json.of_string line in
          let s name =
            match Json.member name j with Some (Json.Str v) -> v | _ -> "?"
          in
          let n name =
            match Json.member name j with Some (Json.Int v) -> v | _ -> 0
          in
          let digest = s "digest" in
          Fmt.pr "  %-12s %-24s %6d samples %5d sdc %5d detected@."
            (if String.length digest > 12 then String.sub digest 0 12
             else digest)
            (s "benchmark" ^ "." ^ s "technique")
            (n "samples") (n "sdc") (n "detected"))
      lines
  in
  (* Job queues: job-state histogram plus the cache-hit count. *)
  let summarize_jobs lines =
    let by_state = Hashtbl.create 4 in
    let cached = ref 0 in
    List.iteri
      (fun i line ->
        if i > 0 then begin
          let j = Json.of_string line in
          (match Json.member "state" j with
          | Some (Json.Str s) ->
            Hashtbl.replace by_state s
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_state s))
          | _ -> ());
          match Json.member "cached" j with
          | Some (Json.Int c) when c <> 0 -> incr cached
          | _ -> ()
        end)
      lines;
    List.iter
      (fun s ->
        match Hashtbl.find_opt by_state s with
        | Some n -> Fmt.pr "  %-8s %d@." s n
        | None -> ())
      [ "pending"; "running"; "done"; "failed" ];
    Fmt.pr "  cached   %d@." !cached
  in
  (* Confidence telemetry: row-type histogram plus the campaign
     interval. *)
  let summarize_stats lines =
    let rows =
      List.filteri (fun i _ -> i > 0) lines
      |> List.filter_map (fun l ->
             match Stats.row_of_string l with
             | Ok r -> Some r
             | Error _ -> None)
    in
    List.iter
      (fun kind ->
        Fmt.pr "  %-8s %d@." kind
          (List.length
             (List.filter (fun (r : Stats.row) -> r.Stats.row = kind) rows)))
      [ "trace"; "round"; "site"; "campaign" ];
    match
      List.find_opt (fun (r : Stats.row) -> r.Stats.row = "campaign") rows
    with
    | Some c ->
      Fmt.pr "  campaign: p=%.4f wilson [%.4f, %.4f] ±%.4f, spent %d/%d@."
        c.Stats.p c.Stats.lo c.Stats.hi c.Stats.hw c.Stats.spent
        c.Stats.budget
    | None -> ()
  in
  (* Trace documents: per-process span counts plus the stitching
     check (skipped for the wall sidecar, which has no span rows). *)
  let summarize_trace lines =
    let records = List.filteri (fun i _ -> i > 0) lines in
    match Trace.rows_of_lines records with
    | Error e ->
      Fmt.epr "trace does not parse: %s@." e;
      exit 1
    | Ok rows ->
      let spans = Trace.spans_of_rows rows in
      let walls = Trace.walls_of_rows rows in
      let by_proc = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun (s : Trace.span) ->
          if not (Hashtbl.mem by_proc s.Trace.sp_proc) then
            order := s.Trace.sp_proc :: !order;
          Hashtbl.replace by_proc s.Trace.sp_proc
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_proc s.Trace.sp_proc)))
        spans;
      List.iter
        (fun p ->
          Fmt.pr "  %-12s %d spans@." p
            (Option.value ~default:0 (Hashtbl.find_opt by_proc p)))
        (List.rev !order);
      if walls <> [] then Fmt.pr "  wall     %d rows@." (List.length walls);
      if spans <> [] then begin
        match Trace.validate_stitched records with
        | Ok root -> Fmt.pr "  stitched: one trace, root span %s@." root
        | Error e ->
          Fmt.epr "trace does not stitch: %s@." e;
          exit 1
      end
  in
  (* The schema registry: adding a schema to `ferrum metrics` is one
     entry here.  [s_fields] validates each record line (failures are
     reported with their line number); [s_summarize] renders the
     post-validation summary. *)
  let registry =
    [
      (F.metrics_kind, F.record_fields, summarize_injections);
      (F.metrics_kind_v1, F.record_fields_v1, summarize_injections);
      (F.vulnmap_kind, F.vulnmap_fields, summarize_vulnmap);
      (Lint.metrics_kind, Lint.record_fields, summarize_lint);
      (Events.kind, Events.fields, summarize_events);
      (Stats.kind, Stats.fields, summarize_stats);
      (Trace.kind, Trace.fields, summarize_trace);
      (Store.run_kind, Store.run_fields, summarize_runs);
      (Queue.kind, Queue.fields, summarize_jobs);
      (Ferrum_report.Export.bench_kind, [], summarize_bench);
    ]
  in
  let run file =
    let lines =
      try Metrics.read_lines file
      with Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit 1
    in
    let schema =
      match lines with
      | [] ->
        Fmt.epr "%s: empty metrics file@." file;
        exit 1
      | hdr :: _ -> (
        match Option.bind (Json.of_string_opt hdr) (Json.member "schema") with
        | Some (Json.Str k) -> k
        | _ ->
          Fmt.epr "%s: line 1: header lacks a schema field@." file;
          exit 1)
    in
    let record_fields, summarize =
      match
        List.find_opt (fun (kind, _, _) -> kind = schema) registry
      with
      | Some (_, fields, summarize) -> (fields, summarize)
      | None ->
        Fmt.epr "%s: unknown schema %S (expected one of: %s)@." file schema
          (String.concat ", " (List.map (fun (k, _, _) -> k) registry));
        exit 1
    in
    match Metrics.validate_lines ~kind:schema ~record_fields lines with
    | Error e ->
      Fmt.epr "%s: invalid metrics file: %s@." file e;
      exit 1
    | Ok n ->
      (match lines with
      | hdr :: _ -> Fmt.pr "header: %s@." hdr
      | [] -> ());
      Fmt.pr "valid: %d records (%s)@." n schema;
      summarize lines
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Metrics JSONL file written by `inject --metrics'.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Validate a metrics JSONL file against its declared schema \
          (injection records, vulnerability maps, event logs, run-store \
          indexes, job queues ...) and summarise it.")
    Term.(const run $ file_arg)

(* ---- vulnmap: per-site vulnerability map with detection latency ---- *)

let vulnmap_cmd =
  let run bench technique knobs samples seed all_sites fault_bits engine
      metrics only_sampled progress adaptive rounds target_ci stats_out =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let scope = if all_sites then F.All_sites else F.Original_only in
    let v, stats_lines =
      if adaptive then begin
        let target =
          try F.prepare ~scope ~engine img
          with Invalid_argument msg ->
            Fmt.epr "%s@." msg;
            exit 1
        in
        let result =
          run_adaptive_local ~mode:Runner.Traced ~label:"vulnmap" ~rounds
            ~target_ci ~fault_bits ~seed ~samples ~progress target
        in
        match result.Runner.vulnmap with
        | Some v -> (v, result.Runner.stats_lines)
        | None -> assert false (* Traced mode always builds one *)
      end
      else begin
        let heartbeat =
          if progress then
            sequential_heartbeats ~samples (progress_renderer "vulnmap")
          else fun _ -> ()
        in
        let stream =
          match stats_out with
          | None -> None
          | Some _ -> Some (Stats.create ~budget:samples ())
        in
        let on_record (r : F.record) =
          (match stream with
          | Some s ->
            Stats.observe s ~site:r.F.r_static_index
              ~sdc:(r.F.r_class = F.Sdc)
          | None -> ());
          heartbeat r
        in
        let v =
          try
            F.vulnmap_campaign ~scope ~seed ~samples ~fault_bits ~engine
              ~on_record img
          with Invalid_argument msg ->
            Fmt.epr "%s@." msg;
            exit 1
        in
        (v, match stream with Some s -> Stats.lines s | None -> [])
      end
    in
    (match metrics with
    | None -> ()
    | Some path ->
      let sink = Metrics.file_sink path in
      Metrics.emit sink
        (Store.vulnmap_header ~benchmark:bench
           ~technique:(technique_name technique) ~samples ~seed ~all_sites
           ~fault_bits);
      List.iter (Metrics.emit sink) (F.vulnmap_rows v);
      Metrics.close sink;
      Fmt.epr "[vulnmap] wrote %s@." path);
    (match stats_out with
    | None -> ()
    | Some path ->
      write_stats_file ~path ~bench ~technique ~samples ~seed ~all_sites
        ~fault_bits stats_lines);
    print_string (Ferrum_report.Vulnmap.render ~only_sampled v)
  in
  let only_sampled_arg =
    Arg.(value & flag
         & info [ "only-sampled" ]
             ~doc:"Omit listing lines for sites no fault was injected into.")
  in
  Cmd.v
    (Cmd.info "vulnmap"
       ~doc:
         "Per-static-instruction vulnerability map: a traced injection \
          campaign aggregated by site, rendered as an annotated assembly \
          listing with outcome distributions, Wilson confidence \
          intervals and detection latencies; --metrics exports it as \
          ferrum.vulnmap.v1 JSONL, --stats as ferrum.stats.v1."
    )
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ samples_arg
      $ seed_arg $ all_sites_arg $ fault_bits_arg $ engine_term
      $ metrics_arg $ only_sampled_arg $ progress_arg $ adaptive_arg
      $ rounds_arg $ target_ci_arg $ stats_out_arg)

(* ---- lint: static protection verifier ---- *)

let lint_cmd =
  let kind_conv =
    let parse s =
      match Shadow.kind_of_name s with
      | Some k -> Ok k
      | None ->
        Error
          (`Msg
            (Fmt.str "expected one of: %s"
               (String.concat ", "
                  (List.map Shadow.kind_name Shadow.all_kinds))))
    in
    let print ppf k = Fmt.string ppf (Shadow.kind_name k) in
    Arg.conv (parse, print)
  in
  let lint_header ~bench ~technique =
    Metrics.header ~kind:Lint.metrics_kind
      [
        ("benchmark", Json.Str bench);
        ("technique",
         Json.Str
           (match technique with
           | Some t -> Technique.short_name t
           | None -> "raw"));
      ]
  in
  let run bench technique knobs json metrics kind crossval samples seed =
    let e = find_bench bench in
    let m = e.Catalog.build () in
    let result =
      match technique with
      | None -> Pipeline.raw ~optimize:knobs.optimize m
      | Some t ->
        Pipeline.protect ~ferrum_config:knobs.ferrum_config
          ~optimize:knobs.optimize t m
    in
    let report = Pipeline.lint result in
    let report =
      match kind with
      | None -> report
      | Some k ->
        { report with
          Lint.r_findings =
            List.filter
              (fun (f : Shadow.finding) -> f.Shadow.f_kind = k)
              report.Lint.r_findings }
    in
    let rows () = lint_header ~bench ~technique :: Lint.rows result.Pipeline.program report in
    (match metrics with
    | None -> ()
    | Some path ->
      let sink = Metrics.file_sink path in
      List.iter (Metrics.emit sink) (rows ());
      Metrics.close sink;
      Fmt.epr "[lint] wrote %s@." path);
    if json then List.iter (fun j -> print_endline (Json.to_string j)) (rows ())
    else Fmt.pr "%a" Lint.pp_report report;
    let failed = ref (Lint.errors report > 0) in
    if crossval then begin
      let o =
        Ferrum_report.Crossval.run ~seed ~samples result.Pipeline.program
      in
      Fmt.pr "%a" Ferrum_report.Crossval.pp o;
      if not (Ferrum_report.Crossval.passed o) then failed := true
    end;
    if !failed then exit 1
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Emit ferrum.lint.v1 JSONL (header, one row per finding, \
                then one uncovered-site row per statically uncovered \
                eligible site) instead of the human report; \
                byte-reproducible.")
  in
  let kind_arg =
    Arg.(value & opt (some kind_conv) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only report findings of this kind.")
  in
  let crossval_arg =
    Arg.(value & flag
         & info [ "crossval" ]
             ~doc:
               "Replay a seeded vulnerability-map campaign and verify \
                every unchecked-site/output-before-check SDC escape lies \
                inside the statically predicted uncovered set.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify a (protected) benchmark: shadow-consistency \
          findings against the technique's invariants (Figs. 4-7) plus \
          the check-free-path uncovered set.  Exits 1 when any \
          error-severity finding (or crossval violation) is present.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ json_arg
      $ metrics_arg $ kind_arg $ crossval_arg $ samples_arg $ seed_arg)

(* ---- explain: propagation trace of one campaign sample ---- *)

(* "SEED:IDX" — the IDX-th sample of the campaign seeded SEED. *)
let fault_spec_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i -> (
      let seed = String.sub s 0 i in
      let idx = String.sub s (i + 1) (String.length s - i - 1) in
      match (Int64.of_string_opt seed, int_of_string_opt idx) with
      | Some seed, Some idx when idx >= 0 -> Ok (seed, idx)
      | _ -> Error (`Msg "expected SEED:IDX (int64, non-negative int)"))
    | None -> Error (`Msg "expected SEED:IDX, e.g. 2024:17")
  in
  let print ppf (seed, idx) = Fmt.pf ppf "%Ld:%d" seed idx in
  Arg.conv (parse, print)

let explain_cmd =
  let run bench technique knobs (seed, idx) all_sites fault_bits =
    let p = program_of ?technique knobs (find_bench bench) in
    let img = Machine.load p in
    let scope = if all_sites then F.All_sites else F.Original_only in
    let t = F.prepare ~scope img in
    if t.F.eligible_steps = 0 then begin
      Fmt.epr "no eligible injection sites@.";
      exit 1
    end;
    (* Replay the campaign's RNG stream: sample k of a campaign uses the
       (k+1)-th split of the root generator, so `explain SEED:IDX`
       retraces exactly the fault that `inject --seed SEED` classified
       as sample IDX. *)
    let rng = Rng.create ~seed in
    let sample_rng = ref (Rng.split rng) in
    for _ = 1 to idx do
      sample_rng := Rng.split rng
    done;
    let dyn_index = Rng.int !sample_rng t.F.eligible_steps in
    let cls, fault, summary =
      F.trace_propagation ~fault_bits t !sample_rng ~dyn_index
    in
    Fmt.pr "benchmark %s (%s), seed %Ld, sample %d@." bench
      (match technique with
      | Some t -> Technique.short_name t
      | None -> "raw")
      seed idx;
    Fmt.pr "fault: bit %d of %s at static index %d (dynamic write-back %d)@."
      fault.F.bit fault.F.dest_desc fault.F.static_index fault.F.dyn_index;
    Fmt.pr "classification: %s@." (F.classification_name cls);
    (match F.Propagation.detection_latency summary with
    | Some (steps, cycles) when cls = F.Detected ->
      Fmt.pr "detection latency: %d instructions, %.1f model cycles@." steps
        cycles
    | _ -> ());
    (match cls with
    | F.Sdc ->
      let escape = F.Propagation.explain_escape summary in
      Fmt.pr "escape: %s — %s@."
        (F.Propagation.escape_name escape)
        (F.Propagation.escape_describe escape)
    | _ -> ());
    Fmt.pr "%a" F.Propagation.pp_summary summary
  in
  let fault_arg =
    Arg.(required
         & opt (some fault_spec_conv) None
         & info [ "fault" ] ~docv:"SEED:IDX"
             ~doc:
               "Which fault to explain: sample $(i,IDX) of the campaign \
                seeded $(i,SEED) (same sampling stream as `inject \
                --seed').")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run one campaign sample in lockstep with the golden \
          execution and explain its outcome: first architectural \
          divergence, taint spread, detection latency for detected \
          faults, and the escape mechanism for SDCs.")
    Term.(
      const run $ bench_arg $ protect_arg $ knobs_term $ fault_arg
      $ all_sites_arg $ fault_bits_arg)

(* ---- cc: the C-lite frontend ---- *)

let cc_cmd =
  let run file technique knobs emit samples seed fault_bits metrics =
    let m =
      try Ferrum_clite.Clite.compile_file file
      with Ferrum_clite.Clite.Error msg ->
        Fmt.epr "%s: %s@." file msg;
        exit 1
    in
    let program () =
      match technique with
      | None -> (Pipeline.raw ~optimize:knobs.optimize m).program
      | Some t ->
        (Pipeline.protect ~ferrum_config:knobs.ferrum_config
           ~optimize:knobs.optimize t m)
          .program
    in
    match emit with
    | "ir" -> print_string (Ferrum_ir.Ir.to_string m)
    | "asm" -> print_string (Ferrum_asm.Printer.program_to_string (program ()))
    | "run" ->
      let img = Machine.load (program ()) in
      let outcome, st = Machine.run_fresh img in
      Fmt.pr "outcome: %a@." Machine.pp_outcome outcome;
      Fmt.pr "dynamic instructions: %d@." st.Machine.steps;
      Fmt.pr "model cycles: %.0f@." st.Machine.cycles;
      (match outcome with Machine.Exit _ -> () | _ -> exit 1)
    | "inject" ->
      let img = Machine.load (program ()) in
      let res =
        run_campaign ?technique ~bench:file ~samples ~seed ~all_sites:false
          ~fault_bits ~engine:F.default_engine ~metrics ~progress:false img
      in
      Fmt.pr "%a@." F.pp_counts res.F.counts;
      Fmt.pr "SDC probability: %.4f +/- %.4f (95%%)@."
        (F.sdc_probability res.F.counts)
        (F.confidence95 res.F.counts)
    | other ->
      Fmt.epr "unknown --emit %S (expected ir, asm, run or inject)@." other;
      exit 2
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"C-lite source file (see examples/programs).")
  in
  let emit_arg =
    Arg.(value & opt string "run"
         & info [ "emit" ] ~doc:"What to do: ir, asm, run or inject.")
  in
  Cmd.v
    (Cmd.info "cc"
       ~doc:
         "Compile a C-lite source file and print its IR or assembly, \
          simulate it, or run a fault-injection campaign on it.")
    Term.(
      const run $ file_arg $ protect_arg $ knobs_term $ emit_arg
      $ samples_arg $ seed_arg $ fault_bits_arg $ metrics_arg)

(* ---- campaign: sharded fork-pool campaign -> run directory ---- *)

let campaign_cmd =
  let run bench technique knobs samples seed all_sites fault_bits engine
      shards workers no_trace out events_path html_path trace_path resume
      progress adaptive rounds target_ci =
    (* Configuration comes from the command line (BENCH given) or from a
       previous run's manifest (--resume DIR); the manifest's program
       digest gates resume against workload or knob drift. *)
    let bench, technique, samples, seed, all_sites, fault_bits, engine,
        shards, traced, out, prior, adaptive, rounds, target_ci =
      match resume with
      | Some dir -> (
        match Manifest.load ~dir with
        | Error e ->
          Fmt.epr "--resume %s: %s@." dir e;
          exit 1
        | Ok m ->
          let technique =
            if m.Manifest.technique = "raw" then None
            else
              match Technique.of_short_name m.Manifest.technique with
              | Some t -> Some t
              | None ->
                Fmt.epr "--resume %s: unknown technique %S in manifest@."
                  dir m.Manifest.technique;
                exit 1
          in
          let engine =
            match F.engine_of_name m.Manifest.engine with
            | Some e -> e
            | None ->
              Fmt.epr "--resume %s: unknown engine %S in manifest@." dir
                m.Manifest.engine;
              exit 1
          in
          ( m.Manifest.benchmark, technique, m.Manifest.samples,
            m.Manifest.seed, m.Manifest.scope = "all-sites",
            m.Manifest.fault_bits, engine, m.Manifest.shards,
            m.Manifest.traced, dir, Some m,
            m.Manifest.policy = "adaptive", m.Manifest.rounds,
            m.Manifest.target_ci ))
      | None -> (
        match bench with
        | None ->
          Fmt.epr "a BENCH argument or --resume DIR is required@.";
          exit 1
        | Some bench ->
          let out =
            match out with
            | Some d -> d
            | None ->
              Filename.concat "_campaign"
                (bench ^ "." ^ technique_name technique)
          in
          ( bench, technique, samples, seed, all_sites, fault_bits,
            engine, shards, not no_trace, out, None, adaptive,
            (if adaptive then rounds else 1),
            (if adaptive then target_ci else 0.0) ))
    in
    let p = program_of ?technique knobs (find_bench bench) in
    (match prior with
    | Some m when m.Manifest.program_digest <> Manifest.program_digest p ->
      Fmt.epr
        "--resume %s: program digest mismatch — the workload or the \
         transform knobs changed since the recorded run@."
        out;
      exit 1
    | _ -> ());
    let img = Machine.load p in
    let scope = if all_sites then F.All_sites else F.Original_only in
    let target =
      try F.prepare ~scope ~engine img
      with Invalid_argument msg ->
        Fmt.epr "%s@." msg;
        exit 1
    in
    let manifest =
      Manifest.make
        ~policy:(if adaptive then "adaptive" else "flat")
        ~rounds ~target_ci ~benchmark:bench
        ~technique:(technique_name technique) ~samples ~seed ~shards
        ~fault_bits ~all_sites ~traced ~program:p target
    in
    (* Part files are only trusted when the manifest they were written
       under matches this run's configuration — a fresh run over a
       reused --out directory (the default one is stable per
       BENCH.TECH) must not silently replay parts left by a run with a
       different seed, scope, fault width or workload.  The --resume
       path is already gated by the digest check above. *)
    (match prior with
    | Some _ -> ()
    | None -> (
      match Manifest.load ~dir:out with
      | Ok recorded when Manifest.compatible recorded manifest -> ()
      | Ok _ | Error _ -> Fsutil.rm_rf (Store.parts_dir out)));
    (* Saved before the run so an interruption leaves a resumable
       directory: parts/ plus the manifest that vouches for it. *)
    Manifest.save ~dir:out manifest;
    let on_event =
      if progress then Some (progress_renderer "campaign") else None
    in
    let mode = if traced then Runner.Traced else Runner.Inject in
    let result =
      try
        if adaptive then
          Runner.run_adaptive ?workers ?on_event ~fault_bits
            ~part_dir:(Store.parts_dir out)
            ~policy:{ F.rounds; target_ci } ~mode ~shards ~seed
            ~budget:samples target
        else
          Runner.run ?workers ?on_event ~fault_bits
            ~part_dir:(Store.parts_dir out) ~mode ~shards ~seed ~samples
            target
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1
    in
    Store.write_run ~dir:out ~manifest ~result ();
    (match events_path with
    | None -> ()
    | Some path ->
      let header =
        Store.events_header ~benchmark:bench
          ~technique:(technique_name technique) ~samples ~seed ~all_sites
          ~fault_bits ~shards
      in
      let lines =
        List.map
          (fun e -> Json.to_string (Events.to_json e))
          result.Runner.events
      in
      Fsutil.write_file path (Store.jsonl header lines);
      Fmt.epr "[campaign] wrote %s@." path);
    (match trace_path with
    | None -> ()
    | Some path ->
      (* The run directory already holds the canonical copy; --trace
         re-emits it (and its wall sidecar next to it) for pipelines
         that want the stitched trace without the directory. *)
      Fsutil.write_file path
        (Fsutil.read_file (Filename.concat out Store.trace_file));
      Fsutil.write_file (path ^ ".wall")
        (Fsutil.read_file (Filename.concat out Store.trace_wall_file));
      Fmt.epr "[campaign] wrote %s (+ %s.wall)@." path path);
    (match html_path with
    | None -> ()
    | Some path -> (
      match Html.render_dir out with
      | Ok html ->
        Fsutil.write_file path html;
        Fmt.epr "[campaign] wrote %s@." path
      | Error e ->
        Fmt.epr "--html: %s@." e;
        exit 1));
    Fmt.pr "%a@." F.pp_counts result.Runner.counts;
    Fmt.pr "%a@." pp_campaign_interval result.Runner.counts;
    if adaptive && result.Runner.counts.F.samples < samples then
      Fmt.pr "early stop: spent %d of %d budget (target ci %.4f)@."
        result.Runner.counts.F.samples samples target_ci;
    Fmt.pr "logical clock: %d steps over %d shards@." result.Runner.clock
      shards;
    if result.Runner.retried > 0 then
      Fmt.pr "worker retries: %d@." result.Runner.retried;
    Fmt.pr "run directory: %s@." out
  in
  let bench_opt_arg =
    let doc = "Benchmark name (omit only with $(b,--resume))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let shards_arg =
    let doc =
      "Split the campaign into $(docv) shards; merged output is \
       byte-identical to the sequential campaign for any value."
    in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc =
      "Concurrent forked workers (default: min shards 4)."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let no_trace_arg =
    let doc =
      "Skip lockstep tracing: outcome counts and injection records \
       only, no vulnerability map (faster)."
    in
    Arg.(value & flag & info [ "no-trace" ] ~doc)
  in
  let out_arg =
    let doc =
      "Run directory (default: _campaign/BENCH.TECH).  Receives \
       manifest.json, injection.jsonl, events.jsonl, stats.jsonl, \
       trace.jsonl, trace-wall.jsonl, vulnmap.jsonl and parts/."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let events_arg =
    let doc = "Also write the ferrum.events.v1 log to $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "events" ] ~docv:"PATH" ~doc)
  in
  let html_arg =
    let doc =
      "Render the run directory as a self-contained HTML dashboard at \
       $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"PATH" ~doc)
  in
  let trace_arg =
    let doc =
      "Also write the stitched ferrum.trace.v1 span document to $(docv) \
       (and its wall sidecar to $(docv).wall).  Span rows carry logical \
       clocks only and are byte-identical across same-seed reruns."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume the run recorded in $(docv): configuration comes from its \
       manifest, finished shards are loaded from parts/ instead of \
       re-running."
    in
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Sharded fault-injection campaign on a fork worker pool: \
          byte-identical to the sequential campaign for any shard \
          count, with a typed event log, a replayable manifest, \
          crash-safe per-shard resume state and an optional HTML \
          dashboard.  --adaptive allocates samples round by round \
          toward the sites with the widest confidence intervals.")
    Term.(
      const run $ bench_opt_arg $ protect_arg $ knobs_term $ samples_arg
      $ seed_arg $ all_sites_arg $ fault_bits_arg $ engine_term
      $ shards_arg $ workers_arg $ no_trace_arg $ out_arg $ events_arg
      $ html_arg $ trace_arg $ resume_arg $ progress_arg $ adaptive_arg
      $ rounds_arg $ target_ci_arg)

(* ---- trace-export ---- *)

(* Export a stored campaign trace for external viewers.  Accepts a run
   directory (uses its trace.jsonl + trace-wall.jsonl) or a trace file
   written by `campaign --trace` (sidecar expected at PATH.wall).  The
   document is schema-validated and stitch-checked before export, so a
   file that exports at all is a coherent single-root trace. *)
let trace_export_cmd =
  let run src perfetto folded =
    let trace_path, wall_path =
      if Sys.file_exists src && Sys.is_directory src then
        ( Filename.concat src Store.trace_file,
          Filename.concat src Store.trace_wall_file )
      else (src, src ^ ".wall")
    in
    let lines =
      try Metrics.read_lines trace_path
      with Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit 1
    in
    (match
       Metrics.validate_lines ~kind:Trace.kind ~record_fields:Trace.fields
         lines
     with
    | Ok _ -> ()
    | Error e ->
      Fmt.epr "%s: invalid trace document: %s@." trace_path e;
      exit 1);
    let records = match lines with _hdr :: r -> r | [] -> [] in
    let root =
      match Trace.validate_stitched records with
      | Ok root -> root
      | Error e ->
        Fmt.epr "%s: trace does not stitch: %s@." trace_path e;
        exit 1
    in
    let spans =
      match Trace.rows_of_lines records with
      | Ok rows -> Trace.spans_of_rows rows
      | Error _ -> assert false (* validated above *)
    in
    let walls =
      if not (Sys.file_exists wall_path) then []
      else
        match Metrics.read_lines wall_path with
        | _hdr :: records -> (
          match Trace.rows_of_lines records with
          | Ok rows -> Trace.walls_of_rows rows
          | Error e ->
            Fmt.epr "%s: invalid wall sidecar: %s@." wall_path e;
            exit 1)
        | [] -> []
    in
    Fmt.pr "%d spans, root %s, wall rows for %d@." (List.length spans) root
      (List.length walls);
    (match perfetto with
    | None -> ()
    | Some path ->
      Fsutil.write_file path
        (Json.to_string (Trace.perfetto ~spans ~walls) ^ "\n");
      Fmt.pr "wrote %s (chrome trace-event JSON)@." path);
    match folded with
    | None -> ()
    | Some path ->
      Fsutil.write_file path
        (String.concat "" (List.map (fun l -> l ^ "\n") (Trace.folded ~spans ~walls)));
      Fmt.pr "wrote %s (folded flamegraph stacks)@." path
  in
  let src_arg =
    let doc =
      "Campaign run directory (its trace.jsonl is used), or a trace \
       file from `campaign --trace' (wall sidecar expected at \
       $(docv).wall)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN" ~doc)
  in
  let perfetto_arg =
    let doc =
      "Write Chrome trace-event JSON to $(docv) (loadable in Perfetto \
       and chrome://tracing).  Wall-clock timestamps when the sidecar \
       covers every span; logical steps as microseconds otherwise."
    in
    Arg.(value & opt (some string) None
         & info [ "perfetto" ] ~docv:"PATH" ~doc)
  in
  let folded_arg =
    let doc =
      "Write folded flamegraph stacks (one `a;b;c weight' line per \
       stack, flamegraph.pl-compatible) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"PATH" ~doc)
  in
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:
         "Validate a stored campaign trace (ferrum.trace.v1) and export \
          it as Chrome trace-event JSON (--perfetto) and/or folded \
          flamegraph stacks (--folded).")
    Term.(const run $ src_arg $ perfetto_arg $ folded_arg)

(* ---- report ---- *)

let report_cmd =
  let run samples seed =
    let options =
      { Ferrum_report.Experiments.default_options with samples; seed }
    in
    let results = Ferrum_report.Experiments.run ~options () in
    print_endline (Ferrum_report.Render.table1 ());
    print_newline ();
    print_endline (Ferrum_report.Render.table2 results);
    print_newline ();
    print_endline (Ferrum_report.Render.fig10 results);
    print_endline (Ferrum_report.Render.fig11 results);
    print_endline (Ferrum_report.Render.exec_time results);
    print_newline ();
    print_endline (Ferrum_report.Render.summary results)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate the paper's evaluation tables and figures.")
    Term.(const run $ samples_arg $ seed_arg)

(* ---- serve / submit / watch / fetch: the campaign daemon ---- *)

let host_arg =
  let doc = "Daemon host." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "Daemon TCP port." in
  Arg.(value & opt int 8414 & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let run root host port =
    try Serve.serve { Serve.root; host; port }
    with Unix.Unix_error (e, fn, _) ->
      Fmt.epr "ferrum serve: %s: %s@." fn (Unix.error_message e);
      exit 1
  in
  let root_arg =
    let doc =
      "Daemon state directory: receives queue/ (ferrum.jobs.v1 + per-job \
       scratch), store/ (content-addressed run store), and the port/pid \
       files."
    in
    Arg.(value & opt string "_serve" & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let port_arg =
    let doc =
      "Daemon TCP port; 0 auto-assigns (the bound port is written to \
       ROOT/port either way)."
    in
    Arg.(value & opt int 8414 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: POST /jobs queues campaigns, \
          GET /jobs/:id/events streams live ferrum.events.v1 over SSE, \
          GET /runs/... serves the content-addressed run store, and \
          GET /history compares runs.  Identical jobs are served from \
          the store without re-running.")
    Term.(const run $ root_arg $ host_arg $ port_arg)

let submit_cmd =
  let run bench technique samples seed all_sites fault_bits engine shards
      no_trace host port =
    let spec =
      {
        Jobspec.benchmark = bench;
        technique = technique_name technique;
        samples;
        seed;
        shards;
        fault_bits;
        scope = (if all_sites then "all-sites" else "original");
        traced = not no_trace;
        engine = F.engine_name engine;
      }
    in
    let body = Jobspec.to_string spec in
    (* Root the job's trace on the client side: the daemon stitches its
       job/queue-wait/campaign spans under this id, so the stored trace
       names the submission, not just the execution. *)
    let trace = Trace.derive_id ~seed (Fmt.str "submit:%s" body) in
    Fmt.epr "[submit] trace %s@." trace;
    match
      Http.request ~host ~port ~meth:"POST" ~path:"/jobs"
        ~headers:
          [
            ("Content-Type", "application/json");
            ("traceparent", Trace.to_traceparent ~trace ~span:"0");
          ]
        ~body ()
    with
    | Error e ->
      Fmt.epr "ferrum submit: %s@." e;
      exit 1
    | Ok resp ->
      print_string resp.Http.r_body;
      if resp.Http.status <> 200 && resp.Http.status <> 202 then exit 1
  in
  let shards_arg =
    let doc = "Shard count for the submitted campaign." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let no_trace_arg =
    let doc = "Submit without lockstep tracing (no vulnerability map)." in
    Arg.(value & flag & info [ "no-trace" ] ~doc)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign job to a running `ferrum serve' daemon.  \
          Prints the daemon's ferrum.jobs.v1 response; an \
          already-stored identical job comes back `done' immediately \
          (cache hit).")
    Term.(
      const run $ bench_arg $ protect_arg $ samples_arg $ seed_arg
      $ all_sites_arg $ fault_bits_arg $ engine_term $ shards_arg
      $ no_trace_arg $ host_arg $ port_arg)

let watch_cmd =
  let run job host port from =
    let d = Sse.decoder () in
    let on_chunk chunk =
      List.iter
        (fun (e : Sse.event) ->
          print_endline e.Sse.data;
          flush stdout)
        (Sse.feed d chunk)
    in
    let headers =
      match from with
      | Some n -> [ ("Last-Event-ID", string_of_int n) ]
      | None -> []
    in
    match
      Http.stream ~host ~port
        ~path:(Fmt.str "/jobs/%d/events" job)
        ~headers ~on_chunk ()
    with
    | Error e ->
      Fmt.epr "ferrum watch: %s@." e;
      exit 1
    | Ok 200 -> ()
    | Ok status ->
      Fmt.epr "ferrum watch: server returned %d@." status;
      exit 1
  in
  let job_arg =
    let doc = "Job id (from `ferrum submit')." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"JOB" ~doc)
  in
  let from_arg =
    let doc =
      "Resume from event $(docv) (sent as Last-Event-ID; the stream \
       restarts at the next event)."
    in
    Arg.(value & opt (some int) None & info [ "from" ] ~docv:"SEQ" ~doc)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Stream a job's live ferrum.events.v1 records from a running \
          daemon (SSE client).  One JSON record per line; reconnecting \
          with --from resumes without gaps.")
    Term.(const run $ job_arg $ host_arg $ port_arg $ from_arg)

let fetch_cmd =
  let run path out host port =
    match Http.request ~host ~port ~meth:"GET" ~path () with
    | Error e ->
      Fmt.epr "ferrum fetch: %s@." e;
      exit 1
    | Ok resp ->
      (match out with
      | Some file -> Fsutil.write_file file resp.Http.r_body
      | None -> print_string resp.Http.r_body);
      if resp.Http.status <> 200 then begin
        Fmt.epr "ferrum fetch: server returned %d@." resp.Http.status;
        exit 1
      end
  in
  let path_arg =
    let doc =
      "Server path, e.g. /runs, /runs/DIGEST/records, /jobs/1, /metricz, \
       /history."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)
  in
  let out_arg =
    let doc = "Write the response body to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "GET a path from a running daemon and print (or save) the body \
          — stored artifacts, queue state, the history page — without \
          needing curl.")
    Term.(const run $ path_arg $ out_arg $ host_arg $ port_arg)

let () =
  let doc =
    "FERRUM: assembly-level error detection by duplicated instructions \
     with SIMD-batched checking (reproduction of He, Xu & Li, DSN 2024)."
  in
  let info = Cmd.info "ferrum" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; ir_cmd; compile_cmd; run_cmd; inject_cmd; cc_cmd;
            check_cmd; stats_cmd; trace_cmd; profile_cmd; metrics_cmd;
            vulnmap_cmd; lint_cmd; explain_cmd; campaign_cmd;
            trace_export_cmd; serve_cmd; submit_cmd; watch_cmd; fetch_cmd;
            report_cmd ]))
