(* Development smoke driver: runs every workload through interpretation,
   compilation and all three protections, reporting sizes and outputs;
   every protected program must also lint clean, with schema-valid,
   byte-reproducible ferrum.lint.v1 JSONL. *)

module Machine = Ferrum_machine.Machine
module Lint = Ferrum_analysis.Lint
module Metrics = Ferrum_telemetry.Metrics

let pp_out ppf l = Fmt.(list ~sep:(any " ") int64) ppf l

(* Lint a pipeline result (raising on error findings) and render its
   JSONL; validate the lines against the schema and check a second
   rendering is byte-identical. *)
let lint_smoke (r : Ferrum_eddi.Pipeline.result) =
  let report = Ferrum_eddi.Pipeline.lint ~assert_clean:true r in
  let render () =
    let buf = Buffer.create 4096 in
    let sink = Metrics.buffer_sink buf in
    Metrics.emit sink (Metrics.header ~kind:Lint.metrics_kind []);
    List.iter (Metrics.emit sink) (Lint.rows r.Ferrum_eddi.Pipeline.program report);
    Metrics.close sink;
    Buffer.contents buf
  in
  let text = render () in
  (match
     Metrics.validate_lines ~kind:Lint.metrics_kind
       ~record_fields:Lint.record_fields
       (Metrics.lines_of_string text)
   with
  | Ok _ -> ()
  | Error msg -> Fmt.failwith "lint JSONL invalid: %s" msg);
  if not (String.equal text (render ())) then
    Fmt.failwith "lint JSONL not byte-reproducible";
  report

let () =
  List.iter
    (fun (e : Ferrum_workloads.Catalog.entry) ->
      let m = e.build () in
      Ferrum_ir.Verify.run m;
      let interp = Ferrum_ir.Interp.run m in
      Fmt.pr "== %s ==@." e.name;
      Fmt.pr "  interp: [%a] (%d steps)@." pp_out interp.output interp.steps;
      let raw = Ferrum_eddi.Pipeline.raw m in
      let img = Machine.load raw.program in
      let g = Machine.golden img in
      Fmt.pr "  raw:    %a  dyn=%d cycles=%.0f static=%d@."
        Machine.pp_outcome g.outcome g.dyn_instructions g.cycles
        (Ferrum_asm.Prog.num_instructions raw.program);
      (match g.outcome with
      | Machine.Exit out when out = interp.output -> ()
      | _ -> Fmt.pr "  *** MISMATCH vs interpreter@.");
      List.iter
        (fun t ->
          let r = Ferrum_eddi.Pipeline.protect t m in
          let img = Machine.load r.program in
          let g2 = Machine.golden img in
          let ok =
            match g2.outcome with
            | Machine.Exit out -> out = interp.output
            | _ -> false
          in
          let report = lint_smoke r in
          Fmt.pr
            "  %-8s %s dyn=%d (x%.2f) cycles=%.0f (+%.0f%%) static=%d \
             lint=%d/%d %.3fs@."
            (Ferrum_eddi.Technique.short_name t)
            (if ok then "ok " else Fmt.str "BAD %a" Machine.pp_outcome g2.outcome)
            g2.dyn_instructions
            (float_of_int g2.dyn_instructions /. float_of_int g.dyn_instructions)
            g2.cycles
            (100.0 *. (g2.cycles -. g.cycles) /. g.cycles)
            (Ferrum_asm.Prog.num_instructions r.program)
            (List.length report.Lint.r_findings)
            (List.length report.Lint.r_uncovered)
            r.transform_seconds)
        Ferrum_eddi.Technique.all)
    Ferrum_workloads.Catalog.all
