(* Campaign run directories.

   A finished run is a directory:

     manifest.json      ferrum.manifest.v1 (config, shard map, digests)
     injection.jsonl    ferrum.injection.v2 (header + per-sample records)
     vulnmap.jsonl      ferrum.vulnmap.v1 (traced runs only)
     events.jsonl       ferrum.events.v1 (canonical merged event log)
     parts/             per-shard raw streams (resume state)

   The header builders here are the single source of the campaign
   metrics headers: the CLI's sequential `inject --metrics` and
   `vulnmap --metrics` paths and the sharded runner both use them, which
   is what makes the sharded files byte-comparable to sequential ones. *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Events = Ferrum_telemetry.Events

(* Campaign configuration fields shared by every header, in the field
   order the v2 files have always used. *)
let config_fields ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    =
  [
    ("benchmark", Json.Str benchmark);
    ("technique", Json.Str technique);
    ("samples", Json.Int samples);
    ("seed", Json.Str (Int64.to_string seed));
    ("scope", Json.Str (if all_sites then "all-sites" else "original"));
    ("fault_bits", Json.Int fault_bits);
  ]

let injection_header ~benchmark ~technique ~samples ~seed ~all_sites
    ~fault_bits =
  Metrics.header ~kind:F.metrics_kind
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let vulnmap_header ~benchmark ~technique ~samples ~seed ~all_sites
    ~fault_bits =
  Metrics.header ~kind:F.vulnmap_kind
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let events_header ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    ~shards =
  Events.header
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits
    @ [ ("shards", Json.Int shards) ])

let injection_file = "injection.jsonl"
let vulnmap_file = "vulnmap.jsonl"
let events_file = "events.jsonl"
let parts_dir dir = Filename.concat dir "parts"

let jsonl header lines =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

(* Write a finished run.  All files are written atomically so a
   directory either has a coherent set or is still resumable. *)
let write_run ~dir ~(manifest : Manifest.t) ~(result : Runner.result) =
  Fsutil.mkdir_p dir;
  let m = manifest in
  let technique = m.Manifest.technique in
  let all_sites = m.Manifest.scope = "all-sites" in
  let header_of f =
    f ~benchmark:m.Manifest.benchmark ~technique ~samples:m.Manifest.samples
      ~seed:m.Manifest.seed ~all_sites ~fault_bits:m.Manifest.fault_bits
  in
  Fsutil.write_file
    (Filename.concat dir injection_file)
    (jsonl (header_of injection_header) result.Runner.record_lines);
  (match result.Runner.vulnmap with
  | Some v ->
    Fsutil.write_file
      (Filename.concat dir vulnmap_file)
      (jsonl (header_of vulnmap_header)
         (List.map Json.to_string (F.vulnmap_rows v)))
  | None -> ());
  Fsutil.write_file
    (Filename.concat dir events_file)
    (jsonl
       (header_of events_header ~shards:m.Manifest.shards)
       (List.map
          (fun e -> Json.to_string (Events.to_json e))
          result.Runner.events));
  Manifest.save ~dir m
