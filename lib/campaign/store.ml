(* Campaign run directories.

   A finished run is a directory:

     manifest.json      ferrum.manifest.v1 (config, shard map, digests)
     injection.jsonl    ferrum.injection.v2 (header + per-sample records)
     vulnmap.jsonl      ferrum.vulnmap.v1 (traced runs only)
     events.jsonl       ferrum.events.v1 (canonical merged event log)
     stats.jsonl        ferrum.stats.v1 (convergence document)
     trace.jsonl        ferrum.trace.v1 (stitched spans, logical clocks)
     trace-wall.jsonl   ferrum.trace.v1 wall sidecar (not in schemas:
                        wall/CPU/RSS data is non-deterministic)
     parts/             per-shard raw streams (resume state)

   The header builders here are the single source of the campaign
   metrics headers: the CLI's sequential `inject --metrics` and
   `vulnmap --metrics` paths and the sharded runner both use them, which
   is what makes the sharded files byte-comparable to sequential ones. *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Events = Ferrum_telemetry.Events
module Stats = Ferrum_telemetry.Stats

(* Campaign configuration fields shared by every header, in the field
   order the v2 files have always used. *)
let config_fields ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    =
  [
    ("benchmark", Json.Str benchmark);
    ("technique", Json.Str technique);
    ("samples", Json.Int samples);
    ("seed", Json.Str (Int64.to_string seed));
    ("scope", Json.Str (if all_sites then "all-sites" else "original"));
    ("fault_bits", Json.Int fault_bits);
  ]

let injection_header ~benchmark ~technique ~samples ~seed ~all_sites
    ~fault_bits =
  Metrics.header ~kind:F.metrics_kind
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let vulnmap_header ~benchmark ~technique ~samples ~seed ~all_sites
    ~fault_bits =
  Metrics.header ~kind:F.vulnmap_kind
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let events_header ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    ~shards =
  Events.header
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits
    @ [ ("shards", Json.Int shards) ])

let stats_header ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    =
  Stats.header
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let trace_header ~benchmark ~technique ~samples ~seed ~all_sites ~fault_bits
    =
  Ferrum_telemetry.Trace.header
    (config_fields ~benchmark ~technique ~samples ~seed ~all_sites
       ~fault_bits)

let injection_file = "injection.jsonl"
let vulnmap_file = "vulnmap.jsonl"
let events_file = "events.jsonl"
let stats_file = "stats.jsonl"
let trace_file = "trace.jsonl"
let trace_wall_file = "trace-wall.jsonl"
let parts_dir dir = Filename.concat dir "parts"

let jsonl header lines =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

(* Write a finished run.  All files are written atomically so a
   directory either has a coherent set or is still resumable.

   [extra_trace] prepends caller span rows (e.g. the serve daemon's
   job/queue-wait spans) to the campaign's own, so the stored trace is
   the whole stitched story; the wall sidecar is appended likewise. *)
let write_run ?(extra_trace = ([], [])) ~dir ~(manifest : Manifest.t)
    ~(result : Runner.result) () =
  Fsutil.mkdir_p dir;
  let m = manifest in
  let technique = m.Manifest.technique in
  let all_sites = m.Manifest.scope = "all-sites" in
  let header_of f =
    f ~benchmark:m.Manifest.benchmark ~technique ~samples:m.Manifest.samples
      ~seed:m.Manifest.seed ~all_sites ~fault_bits:m.Manifest.fault_bits
  in
  Fsutil.write_file
    (Filename.concat dir injection_file)
    (jsonl (header_of injection_header) result.Runner.record_lines);
  (match result.Runner.vulnmap with
  | Some v ->
    Fsutil.write_file
      (Filename.concat dir vulnmap_file)
      (jsonl (header_of vulnmap_header)
         (List.map Json.to_string (F.vulnmap_rows v)))
  | None -> ());
  Fsutil.write_file
    (Filename.concat dir events_file)
    (jsonl
       (header_of events_header ~shards:m.Manifest.shards)
       (List.map
          (fun e -> Json.to_string (Events.to_json e))
          result.Runner.events));
  Fsutil.write_file
    (Filename.concat dir stats_file)
    (jsonl (header_of stats_header) result.Runner.stats_lines);
  let extra_spans, extra_walls = extra_trace in
  Fsutil.write_file
    (Filename.concat dir trace_file)
    (jsonl (header_of trace_header)
       (extra_spans @ result.Runner.trace_spans));
  Fsutil.write_file
    (Filename.concat dir trace_wall_file)
    (jsonl (header_of trace_header)
       (extra_walls @ result.Runner.trace_walls));
  Manifest.save ~dir m

(* ------------------------------------------------------------------ *)
(* Content-addressed run store: `ferrum.run.v1`.                       *)
(* ------------------------------------------------------------------ *)

(* Layout under a store root:

     <root>/<digest>/          one published run, digest = Manifest.digest
       manifest.json injection.jsonl events.jsonl [vulnmap.jsonl]
       run.json                ferrum.run.v1 header + one record
       dashboard.html          (when the publisher rendered one)
     <root>/index.jsonl        ferrum.run.v1 header + one record per run,
                               publication order

   A digest names a complete, immutable run: publishing the same digest
   twice is a cache hit and the stored bytes are served unchanged. *)

let run_kind = "ferrum.run.v1"
let run_file = "run.json"
let dashboard_file = "dashboard.html"

let run_fields =
  Metrics.
    [
      field "digest" F_string;
      field "benchmark" F_string;
      field "technique" F_string;
      field "samples" F_int;
      field "seed" F_string;
      field "scope" F_string;
      field "traced" F_int;
      field "engine" F_string;
      field "shards" F_int;
      field "benign" F_int;
      field "sdc" F_int;
      field "detected" F_int;
      field "crash" F_int;
      field "timeout" F_int;
      field "clock" F_int;
      field "retried" F_int;
    ]

let run_record ~(manifest : Manifest.t) ~(result : Runner.result) : Json.t =
  let t = Runner.tally_of_counts result.Runner.counts in
  Json.Obj
    [
      ("digest", Json.Str (Manifest.digest manifest));
      ("benchmark", Json.Str manifest.Manifest.benchmark);
      ("technique", Json.Str manifest.Manifest.technique);
      ("samples", Json.Int manifest.Manifest.samples);
      ("seed", Json.Str (Int64.to_string manifest.Manifest.seed));
      ("scope", Json.Str manifest.Manifest.scope);
      ("traced", Json.Int (if manifest.Manifest.traced then 1 else 0));
      ("engine", Json.Str manifest.Manifest.engine);
      ("shards", Json.Int manifest.Manifest.shards);
      ("benign", Json.Int t.Events.benign);
      ("sdc", Json.Int t.Events.sdc);
      ("detected", Json.Int t.Events.detected);
      ("crash", Json.Int t.Events.crash);
      ("timeout", Json.Int t.Events.timeout);
      ("clock", Json.Int result.Runner.clock);
      ("retried", Json.Int result.Runner.retried);
    ]

let run_header extra = Metrics.header ~kind:run_kind extra

let entry_dir ~root digest = Filename.concat root digest
let index_file root = Filename.concat root "index.jsonl"

(* A digest is 32 hex characters; reject anything else before it can
   name a path (the daemon feeds URL components through here). *)
let valid_digest d =
  String.length d = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       d

type lookup =
  | Hit of string  (** entry directory; contents verified coherent *)
  | Corrupt of string  (** entry present but fails verification *)
  | Miss

(* Verify a stored entry: the manifest must parse and re-digest to the
   entry's name, and every artifact the manifest promises must exist —
   a tampered or torn entry is rejected rather than served. *)
let lookup ~root digest =
  if not (valid_digest digest) then Miss
  else begin
    let dir = entry_dir ~root digest in
    if not (Sys.file_exists (Filename.concat dir Manifest.file)) then Miss
    else
      match Manifest.load ~dir with
      | Error e -> Corrupt e
      | Ok m ->
        if Manifest.digest m <> digest then
          Corrupt
            (Fmt.str "manifest digests to %s, stored as %s"
               (Manifest.digest m) digest)
        else begin
          let missing =
            List.filter
              (fun (f, _) -> not (Sys.file_exists (Filename.concat dir f)))
              ((run_file, run_kind) :: m.Manifest.schemas)
          in
          match missing with
          | [] -> Hit dir
          | (f, _) :: _ -> Corrupt (Fmt.str "missing artifact %s" f)
        end
  end

(* Read the run.json record line of a published entry. *)
let entry_record ~root digest =
  match Metrics.read_lines (Filename.concat (entry_dir ~root digest) run_file) with
  | [ _header; record ] -> Some record
  | _ -> None

(* Rebuild <root>/index.jsonl: existing index order is preserved (it
   is publication order), stale digests are dropped, new coherent
   entries are appended in name order.  Atomic via Fsutil. *)
let rebuild_index ~root =
  Fsutil.mkdir_p root;
  let known =
    if Sys.file_exists (index_file root) then
      match Metrics.read_lines (index_file root) with
      | _header :: records ->
        List.filter_map
          (fun line ->
            match
              Option.bind (Json.of_string_opt line) (Json.member "digest")
            with
            | Some (Json.Str d) -> Some d
            | _ -> None)
          records
      | [] -> []
    else []
  in
  let present =
    Sys.readdir root |> Array.to_list
    |> List.filter (fun d -> lookup ~root d = Hit (entry_dir ~root d))
  in
  let ordered =
    List.filter (fun d -> List.mem d present) known
    @ List.sort compare
        (List.filter (fun d -> not (List.mem d known)) present)
  in
  let records = List.filter_map (entry_record ~root) ordered in
  Fsutil.write_file (index_file root)
    (jsonl (run_header [ ("runs", Json.Int (List.length records)) ]) records);
  ordered

(* Publish [src] (a finished run directory already containing run.json)
   under its manifest digest.  Returns the digest; when the digest is
   already stored the existing entry wins and [src] is discarded — the
   store is immutable and a second identical run is a cache hit. *)
let publish ~root ~src =
  match Manifest.load ~dir:src with
  | Error e -> Error (Fmt.str "publish %s: %s" src e)
  | Ok m ->
    let digest = Manifest.digest m in
    Fsutil.mkdir_p root;
    (match lookup ~root digest with
    | Hit _ -> Fsutil.rm_rf src
    | Corrupt _ ->
      (* replace a torn entry with the fresh coherent one *)
      Fsutil.rm_rf (entry_dir ~root digest);
      Fsutil.rename src (entry_dir ~root digest)
    | Miss -> Fsutil.rename src (entry_dir ~root digest));
    ignore (rebuild_index ~root);
    Ok digest
