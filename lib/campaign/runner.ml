(* Sharded campaign execution on a Unix.fork worker pool.

   Each worker runs one shard (a contiguous global-sample range) and
   streams a line protocol back over its pipe: typed events, per-sample
   outputs, then an explicit done marker.  The parent multiplexes the
   pipes with Unix.select, detects worker death (EOF without the done
   marker) and retries the shard, then merges shard outputs in global
   sample order — which, with index-keyed per-sample RNG, makes the
   merged result byte-identical to the sequential campaign.

   Wire protocol (one JSON object per line, worker -> parent):
     {"t":"ev","ev":{...}}   a Ferrum_telemetry.Events event
     {"t":"s","d":{...}}     a Shard.sample_out
     {"t":"tr","l":"..."}    a serialized ferrum.trace.v1 span row
     {"t":"tw","l":"..."}    a serialized ferrum.trace.v1 wall row
     {"t":"done"}            clean end of stream

   Trace rows are emitted in one batch after the shard's last sample
   (a worker that dies or garbles mid-shard contributes none), so the
   stitched campaign trace — like the canonical event log — contains
   only successful attempts and stays byte-reproducible per seed.

   A shard's successful raw stream is also persisted verbatim to
   [part_dir]/shard-<i>.jsonl (write-then-rename), so an interrupted
   campaign resumes by replaying finished shards from disk.

   Adaptive campaigns ([run_adaptive]) reuse the same machinery in
   waves: round r's shard s runs under the global shard id r*K + s, so
   part files, the event log and progress aggregation all work
   unchanged — each round-shard owns a unique id and a unique global
   sample range.  Rounds are barriers: round r's allocation is a pure
   function of the merged statistics of rounds < r, which is what keeps
   adaptive runs byte-reproducible for any shard count.

   Live stream vs canonical log: [on_event] observes events as they
   arrive, including heartbeats from attempts that later die (each such
   attempt is closed off by a Shard_retry marker).  Aggregating live
   consumers should key on (shard, attempt) or on shard id with
   last-write-wins, as the progress renderer does; the [result]'s
   canonical log contains only each shard's successful attempt. *)

module F = Ferrum_faultsim.Faultsim
module Events = Ferrum_telemetry.Events
module Json = Ferrum_telemetry.Json
module Stats = Ferrum_telemetry.Stats
module Trace = Ferrum_telemetry.Trace

type mode = Inject | Traced

type result = {
  counts : F.counts;
  record_lines : string list;  (** global sample order *)
  vulnmap : F.vulnmap option;  (** [Traced] mode only *)
  clock : int;  (** logical clock: summed injected-run steps *)
  events : Events.t list;  (** canonical merged log, seq 0.. *)
  retried : int;  (** worker deaths recovered by retry *)
  stats_lines : string list;  (** ferrum.stats.v1 rows, canonical order *)
  trace_spans : string list;  (** ferrum.trace.v1 span rows, deterministic *)
  trace_walls : string list;  (** wall sidecar rows (non-deterministic) *)
}

let tally_of_counts (c : F.counts) : Events.tally =
  {
    Events.benign = c.F.benign;
    sdc = c.F.sdc;
    detected = c.F.detected;
    crash = c.F.crash;
    timeout = c.F.timeout;
  }

(* ------------------------------------------------------------------ *)
(* Wire protocol.                                                      *)
(* ------------------------------------------------------------------ *)

type wire =
  | W_event of Events.t
  | W_sample of Shard.sample_out
  | W_trace of string  (** raw ferrum.trace.v1 span row *)
  | W_twall of string  (** raw ferrum.trace.v1 wall row *)
  | W_done

let parse_wire line : (wire, string) Stdlib.result =
  match Json.of_string_opt line with
  | None -> Error "worker line is not valid JSON"
  | Some j -> (
    match Json.member "t" j with
    | Some (Json.Str "ev") -> (
      match Json.member "ev" j with
      | Some ev -> Result.map (fun e -> W_event e) (Events.of_json ev)
      | None -> Error "ev line lacks payload")
    | Some (Json.Str "s") -> (
      match Json.member "d" j with
      | Some d -> Result.map (fun s -> W_sample s) (Shard.sample_out_of_json d)
      | None -> Error "sample line lacks payload")
    | Some (Json.Str "tr") -> (
      match Json.member "l" j with
      | Some (Json.Str l) -> Ok (W_trace l)
      | _ -> Error "trace line lacks payload")
    | Some (Json.Str "tw") -> (
      match Json.member "l" j with
      | Some (Json.Str l) -> Ok (W_twall l)
      | _ -> Error "trace wall line lacks payload")
    | Some (Json.Str "done") -> Ok W_done
    | _ -> Error "worker line lacks a known tag")

(* ------------------------------------------------------------------ *)
(* Worker side.                                                        *)
(* ------------------------------------------------------------------ *)

(* Runs in the forked child; never returns.  Exits with Unix._exit so
   no parent at_exit handler (test runners, sinks) fires twice.

   [base_spent]/[budget]/[prior] parameterize the confidence heartbeat:
   the global samples completed before this shard's range began, the
   whole campaign's sample budget, and the SDC tally of those completed
   samples — so Progress events carry budget-denominated progress and a
   live Wilson half-width that already includes prior rounds. *)
let worker_main ~fault_bits ~traced ~seed ~heartbeats ~shard ~attempt
    ~die_after ~garble_after ~assign ~base_spent ~budget ~prior ~tctx target
    (range : Shard.range) wfd =
  let oc = Unix.out_channel_of_descr wfd in
  let emit_line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  let emit_event body =
    emit_line
      (Json.Obj
         [
           ("t", Json.Str "ev");
           ("ev", Events.to_json { Events.seq = 0; shard; attempt; body });
         ])
  in
  (* The worker's span recorder continues the parent's trace context
     inherited through the fork: its root span id was minted by the
     parent from the global shard id, so ids are collision-free across
     the pool without coordination.  Rows ship back over the pipe in
     one batch before the done marker — a dead attempt contributes
     nothing, keeping the stitched trace deterministic under retries. *)
  let tr = Trace.scoped tctx ~proc:(Fmt.str "worker-%d" shard) in
  F.reset_phases target;
  let total = Shard.range_samples range in
  let every = max 1 (total / max 1 heartbeats) in
  (try
     Trace.span tr "shard" (fun () ->
         emit_event
           (Events.Shard_started { lo = range.Shard.lo; hi = range.hi });
         let done_ = ref 0 and tally = ref Events.zero_tally and clock = ref 0 in
         Shard.run_range ~fault_bits ?assign ~traced ~seed target range
           ~on_sample:(fun out ->
             (match die_after with
             | Some k when !done_ >= k ->
               flush oc;
               Unix._exit 66
             | _ -> ());
             (match garble_after with
             | Some k when !done_ = k ->
               output_string oc "{\"t\":\"bogus\"}\n"
             | _ -> ());
             emit_line
               (Json.Obj
                  [ ("t", Json.Str "s"); ("d", Shard.sample_out_to_json out) ]);
             incr done_;
             clock := !clock + out.Shard.o_steps;
             Trace.advance tr out.Shard.o_steps;
             (match
                Events.tally_of_name !tally
                  (F.classification_name out.Shard.o_class)
              with
             | Some t -> tally := t
             | None -> ());
             if !done_ mod every = 0 && !done_ < total then begin
               let seen =
                 Stats.merge prior { Stats.n = !done_; k = !tally.Events.sdc }
               in
               emit_event
                 (Events.Progress
                    {
                      done_ = !done_;
                      total;
                      tally = !tally;
                      clock = !clock;
                      spent = base_spent + !done_;
                      budget;
                      hw = Stats.half_width (Stats.wilson seen);
                    })
             end);
         (* Engine-phase breakdown of this shard's work, as one span of
            deterministic counters (golden walk, checkpoint restores,
            prefix replay, post-flip suffixes, predecode activity). *)
         Trace.span tr "engine" (fun () ->
             let ph = F.phases target in
             Trace.counter tr "walks" ph.F.ph_walks;
             Trace.counter tr "walk_steps" ph.F.ph_walk_steps;
             Trace.counter tr "restores" ph.F.ph_restores;
             Trace.counter tr "prefix_steps" ph.F.ph_prefix_steps;
             Trace.counter tr "suffix_steps" ph.F.ph_suffix_steps;
             Trace.counter tr "decodes" ph.F.ph_decodes;
             Trace.counter tr "fused_steps" ph.F.ph_fused_steps);
         Trace.counter tr "samples" !done_;
         emit_event
           (Events.Shard_finished
              { done_ = !done_; total; tally = !tally; clock = !clock }));
     List.iter
       (fun l -> emit_line (Json.Obj [ ("t", Json.Str "tr"); ("l", Json.Str l) ]))
       (Trace.span_lines tr);
     List.iter
       (fun l -> emit_line (Json.Obj [ ("t", Json.Str "tw"); ("l", Json.Str l) ]))
       (Trace.wall_lines tr);
     emit_line (Json.Obj [ ("t", Json.Str "done") ]);
     flush oc;
     Unix._exit 0
   with _ ->
     (try flush oc with _ -> ());
     Unix._exit 70)

(* ------------------------------------------------------------------ *)
(* Parent side.                                                        *)
(* ------------------------------------------------------------------ *)

(* One shard's parsed successful stream, plus the raw lines for the
   part file. *)
type shard_data = {
  d_events : Events.t list;  (** stream order *)
  d_samples : Shard.sample_out list;  (** stream order *)
  d_lines : string list;  (** raw protocol lines, stream order *)
  d_tr : string list;  (** raw span rows, stream order *)
  d_tw : string list;  (** raw wall rows, stream order *)
}

type running = {
  r_shard : int;  (** global shard id *)
  r_index : int;  (** index into this wave's range array *)
  r_attempt : int;
  r_pid : int;
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;  (** partial trailing line *)
  mutable r_events : Events.t list;  (** reversed *)
  mutable r_samples : Shard.sample_out list;  (** reversed *)
  mutable r_lines : string list;  (** reversed *)
  mutable r_tr : string list;  (** reversed *)
  mutable r_tw : string list;  (** reversed *)
  mutable r_done : bool;
  mutable r_fail : string option;
      (** protocol violation on this attempt's stream; treated like
          worker death (kill, reap, retry) *)
}

let part_path dir shard = Filename.concat dir (Fmt.str "shard-%d.jsonl" shard)

(* Parse a saved part stream; [None] unless it is a complete, coherent
   stream for [range] (ends with the done marker, samples are exactly
   [lo, hi) in order). *)
let load_part (range : Shard.range) path : shard_data option =
  if not (Sys.file_exists path) then None
  else begin
    let lines = Ferrum_telemetry.Metrics.read_lines path in
    let rec go events samples tr tw expected = function
      | [] -> None (* no done marker *)
      | [ last ] -> (
        match parse_wire last with
        | Ok W_done when expected = range.Shard.hi ->
          Some
            {
              d_events = List.rev events;
              d_samples = List.rev samples;
              d_lines = lines;
              d_tr = List.rev tr;
              d_tw = List.rev tw;
            }
        | _ -> None)
      | line :: rest -> (
        match parse_wire line with
        | Ok (W_event e) -> go (e :: events) samples tr tw expected rest
        | Ok (W_sample s) ->
          if s.Shard.o_sample = expected then
            go events (s :: samples) tr tw (expected + 1) rest
          else None
        | Ok (W_trace l) -> go events samples (l :: tr) tw expected rest
        | Ok (W_twall l) -> go events samples tr (l :: tw) expected rest
        | Ok W_done | Error _ -> None)
    in
    go [] [] [] [] range.Shard.lo lines
  end

let save_part dir shard (d : shard_data) =
  Fsutil.mkdir_p dir;
  let path = part_path dir shard in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    d.d_lines;
  close_out oc;
  Sys.rename tmp path

let status_reason status ~got ~total =
  match status with
  | Unix.WEXITED c -> Fmt.str "worker exited %d after %d/%d samples" c got total
  | Unix.WSIGNALED s ->
    Fmt.str "worker killed by signal %d after %d/%d samples" s got total
  | Unix.WSTOPPED s ->
    Fmt.str "worker stopped by signal %d after %d/%d samples" s got total

let rec select_read fds =
  match Unix.select fds [] [] (-1.0) with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_read fds

(* One wave of shard execution: spawn, multiplex, retry and persist a
   set of shards, where wave-local index i runs range [ranges.(i)]
   under global shard id [ids.(i)].  A flat campaign is a single wave
   with ids 0..K-1; an adaptive campaign runs one wave per round with
   ids r*K + s.  Returns the per-shard successful streams, the
   per-shard retry markers (chronological) and the retry count. *)
let run_wave ~fault_bits ~traced ~heartbeats ~retries ~workers ~fire ~part_dir
    ~sabotage ~garble ~seed ~assign ~base_spent ~budget ~prior ~tracer target
    (ids : int array) (ranges : Shard.range array) :
    shard_data array * Events.t list array * int =
  let k = Array.length ranges in
  (* Resume: replay finished shards from their part files. *)
  let completed : shard_data option array = Array.make k None in
  (match part_dir with
  | Some dir ->
    Array.iteri
      (fun i range -> completed.(i) <- load_part range (part_path dir ids.(i)))
      ranges
  | None -> ());
  Array.iter
    (function
      | Some d -> List.iter fire d.d_events
      | None -> ())
    completed;
  let retry_markers : Events.t list array = Array.make k [] (* reversed *) in
  let retried = ref 0 in
  let running : running list ref = ref [] in
  let spawn i attempt =
    (* Span context for the child, keyed on the global shard id alone:
       a retried attempt re-mints the identical context, so the
       eventual successful attempt's span ids do not depend on how
       many attempts preceded it. *)
    let tctx = Trace.ctx_for tracer ~seg:(Fmt.str "s%d" ids.(i)) in
    let rfd, wfd = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (* Child: drop every parent-side read end so a long-lived sibling
         cannot hold another shard's pipe open past its worker's exit. *)
      Unix.close rfd;
      List.iter (fun r -> try Unix.close r.r_fd with _ -> ()) !running;
      let die_after =
        match sabotage with
        | Some f -> f ~shard:ids.(i) ~attempt
        | None -> None
      in
      let garble_after =
        match garble with
        | Some f -> f ~shard:ids.(i) ~attempt
        | None -> None
      in
      worker_main ~fault_bits ~traced ~seed ~heartbeats ~shard:ids.(i)
        ~attempt ~die_after ~garble_after ~assign ~base_spent ~budget ~prior
        ~tctx target ranges.(i) wfd
    | pid ->
      Unix.close wfd;
      running :=
        {
          r_shard = ids.(i);
          r_index = i;
          r_attempt = attempt;
          r_pid = pid;
          r_fd = rfd;
          r_buf = Buffer.create 4096;
          r_events = [];
          r_samples = [];
          r_lines = [];
          r_tr = [];
          r_tw = [];
          r_done = false;
          r_fail = None;
        }
        :: !running
  in
  (* A line that fails to parse poisons the attempt: stop consuming,
     drop the rest of the buffered data, and let the caller route the
     worker through the ordinary death/retry path.  Never raise from
     inside the select loop — that would leak live children. *)
  let feed r chunk =
    Buffer.add_string r.r_buf chunk;
    let data = Buffer.contents r.r_buf in
    let rec consume start =
      match String.index_from_opt data start '\n' with
      | None ->
        Buffer.clear r.r_buf;
        Buffer.add_substring r.r_buf data start (String.length data - start)
      | Some nl ->
        let line = String.sub data start (nl - start) in
        if String.trim line <> "" then begin
          match parse_wire line with
          | Ok (W_event e) ->
            fire e;
            r.r_events <- e :: r.r_events;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok (W_sample s) ->
            r.r_samples <- s :: r.r_samples;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok (W_trace l) ->
            r.r_tr <- l :: r.r_tr;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok (W_twall l) ->
            r.r_tw <- l :: r.r_tw;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok W_done ->
            r.r_done <- true;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Error e ->
            r.r_fail <- Some e;
            Buffer.clear r.r_buf
        end
        else consume (nl + 1)
    in
    consume 0
  in
  (* Kill and reap every outstanding worker; used before the campaign
     propagates a failure so no forked child outlives the parent. *)
  let reap_all () =
    List.iter
      (fun r ->
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] r.r_pid) with Unix.Unix_error _ -> ())
      !running;
    running := []
  in
  let finish r =
    (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] r.r_pid in
    running := List.filter (fun x -> x != r) !running;
    let total = Shard.range_samples ranges.(r.r_index) in
    let got = List.length r.r_samples in
    if r.r_fail = None && r.r_done && got = total then begin
      let d =
        {
          d_events = List.rev r.r_events;
          d_samples = List.rev r.r_samples;
          d_lines = List.rev r.r_lines;
          d_tr = List.rev r.r_tr;
          d_tw = List.rev r.r_tw;
        }
      in
      completed.(r.r_index) <- Some d;
      match part_dir with
      | Some dir -> save_part dir r.r_shard d
      | None -> ()
    end
    else begin
      let reason =
        match r.r_fail with
        | Some e -> Fmt.str "protocol error after %d/%d samples: %s" got total e
        | None -> status_reason status ~got ~total
      in
      let marker =
        {
          Events.seq = 0;
          shard = r.r_shard;
          attempt = r.r_attempt;
          body = Events.Shard_retry { reason };
        }
      in
      fire marker;
      retry_markers.(r.r_index) <- marker :: retry_markers.(r.r_index);
      incr retried;
      if r.r_attempt + 1 > retries then begin
        reap_all ();
        failwith
          (Fmt.str "campaign shard %d failed after %d attempts: %s" r.r_shard
             (r.r_attempt + 1) reason)
      end
      else spawn r.r_index (r.r_attempt + 1)
    end
  in
  let next = ref 0 in
  let buf = Bytes.create 65536 in
  while !next < k || !running <> [] do
    while
      !next < k
      && (completed.(!next) <> None || List.length !running < workers)
    do
      let i = !next in
      incr next;
      if completed.(i) = None then spawn i 0
    done;
    if !running <> [] then begin
      let ready = select_read (List.map (fun r -> r.r_fd) !running) in
      List.iter
        (fun fd ->
          match List.find_opt (fun r -> r.r_fd = fd) !running with
          | None -> ()
          | Some r -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> finish r
            | n ->
              feed r (Bytes.sub_string buf 0 n);
              if r.r_fail <> None then begin
                (try Unix.kill r.r_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                finish r
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        ready
    end
  done;
  let datas =
    Array.map
      (function Some d -> d | None -> assert false (* loop invariant *))
      completed
  in
  (* Stitch worker rows into the parent recorder in shard-id order —
     completion order is racy, absorption order is not — and advance
     the parent's logical clock past the wave's work so later spans
     start after every child span they follow. *)
  Array.iter
    (fun (d : shard_data) ->
      Trace.absorb tracer ~span_lines:d.d_tr ~wall_lines:d.d_tw)
    datas;
  Trace.advance tracer
    (Array.fold_left
       (fun acc d ->
         List.fold_left (fun a (o : Shard.sample_out) -> a + o.Shard.o_steps)
           acc d.d_samples)
       0 datas);
  (datas, Array.map List.rev retry_markers, !retried)

(* ------------------------------------------------------------------ *)
(* Merging.                                                            *)
(* ------------------------------------------------------------------ *)

(* Merge in global sample order: shard (and round) ranges are
   contiguous and ascending, so processing order is sample order.  The
   traced fold re-runs the float summation in exactly the sequential
   order. *)
let merge_samples ~mode target (all_samples : Shard.sample_out list) =
  let record_lines = List.map (fun s -> s.Shard.o_record) all_samples in
  let clock =
    List.fold_left (fun acc s -> acc + s.Shard.o_steps) 0 all_samples
  in
  let counts, vulnmap =
    match mode with
    | Inject ->
      ( List.fold_left
          (fun c s -> F.add_count c s.Shard.o_class)
          F.zero_counts all_samples,
        None )
    | Traced ->
      let b = F.vulnmap_builder target in
      List.iter
        (fun (s : Shard.sample_out) ->
          F.vulnmap_add b ~sample:s.o_sample ~static_index:s.o_static
            s.o_class ~latency:s.o_latency ~escape:s.o_escape)
        all_samples;
      let v = F.vulnmap_build b in
      (v.F.v_counts, Some v)
  in
  (record_lines, clock, counts, vulnmap)

(* The ferrum.stats.v1 document of a merged campaign: fold every sample
   in global order through a convergence stream, closing a round at
   each boundary in [round_ends] (cumulative sample counts). *)
let stats_of_samples ~budget ~round_ends (all_samples : Shard.sample_out list)
    =
  let s = Stats.create ~budget () in
  List.iter
    (fun (o : Shard.sample_out) ->
      Stats.observe s ~site:o.Shard.o_static
        ~sdc:(o.Shard.o_class = F.Sdc);
      if List.mem (Stats.spent s) round_ends then Stats.round_end s)
    all_samples;
  Stats.lines s

let started ~shards ~samples =
  {
    Events.seq = 0;
    shard = -1;
    attempt = 0;
    body = Events.Campaign_started { shards; samples };
  }

(* Canonical log: campaign start, then per shard (global id order) its
   retry markers followed by the successful attempt's events, then
   campaign finish — renumbered into one contiguous sequence. *)
let canonical_log ~start ~finished body =
  List.mapi
    (fun i e -> { e with Events.seq = i })
    ((start :: body) @ [ finished ])

let wave_body (datas : shard_data array) (markers : Events.t list array) =
  List.concat
    (List.init (Array.length datas) (fun i ->
         markers.(i) @ datas.(i).d_events))

(* ------------------------------------------------------------------ *)
(* Campaign drivers.                                                   *)
(* ------------------------------------------------------------------ *)

(* The campaign tracer: continue a caller-provided context (daemon job
   span), or root a fresh trace whose id is either caller-chosen or
   derived from the campaign parameters — so a campaign traces
   unconditionally and trace.jsonl is a total artifact like the event
   log. *)
let make_tracer ?trace_ctx ?trace_id ~seed ~samples ~shards () =
  match trace_ctx with
  | Some ctx -> Trace.scoped ctx ~proc:"runner"
  | None ->
    let trace =
      match trace_id with
      | Some t -> t
      | None ->
        Trace.derive_id ~seed (Fmt.str "campaign:%d:%d" samples shards)
    in
    Trace.create ~trace ~proc:"runner" ()

let run ?(fault_bits = 1) ?(heartbeats = 8) ?(retries = 2) ?workers ?on_event
    ?part_dir ?sabotage ?garble ?trace_ctx ?trace_id ~mode ~shards ~seed
    ~samples (target : F.target) : result =
  let traced = mode = Traced in
  let ranges = Shard.plan ~shards ~samples in
  let k = Array.length ranges in
  if k = 0 then invalid_arg "Runner.run: samples must be positive";
  let workers = match workers with Some w -> max 1 w | None -> min k 4 in
  let fire = match on_event with Some f -> f | None -> ignore in
  let tracer = make_tracer ?trace_ctx ?trace_id ~seed ~samples ~shards () in
  let start = started ~shards:k ~samples in
  fire start;
  let counts, record_lines, vulnmap, clock, events, retried, stats_lines =
    Trace.span tracer "campaign" (fun () ->
        let datas, markers, retried =
          Trace.span tracer "wave" (fun () ->
              run_wave ~fault_bits ~traced ~heartbeats ~retries ~workers ~fire
                ~part_dir ~sabotage ~garble ~seed ~assign:None ~base_spent:0
                ~budget:samples ~prior:Stats.zero ~tracer target
                (Array.init k (fun i -> i))
                ranges)
        in
        let all_samples =
          List.concat_map (fun d -> d.d_samples) (Array.to_list datas)
        in
        let record_lines, clock, counts, vulnmap =
          Trace.span tracer "merge" (fun () ->
              merge_samples ~mode target all_samples)
        in
        let stats_lines =
          Trace.span tracer "stats" (fun () ->
              stats_of_samples ~budget:samples ~round_ends:[] all_samples)
        in
        Trace.counter tracer "samples" samples;
        Trace.counter tracer "shards" k;
        let finished =
          {
            Events.seq = 0;
            shard = -1;
            attempt = 0;
            body =
              Events.Campaign_finished
                { total = samples; tally = tally_of_counts counts; clock };
          }
        in
        fire finished;
        ( counts,
          record_lines,
          vulnmap,
          clock,
          canonical_log ~start ~finished (wave_body datas markers),
          retried,
          stats_lines ))
  in
  {
    counts;
    record_lines;
    vulnmap;
    clock;
    events;
    retried;
    stats_lines;
    trace_spans = Trace.span_lines tracer;
    trace_walls = Trace.wall_lines tracer;
  }

(* Adaptive campaign: split the budget into rounds, run each round as
   one wave of K shards (global shard ids r*K + s), and allocate round
   r's samples from the merged per-site statistics of rounds < r via
   {!F.allocate}.  Because rounds are barriers over contiguous global
   index blocks and the allocation is a pure function of merged prior
   output, the sample-to-site assignment — and hence every record —
   is byte-identical for any shard count, and a resumed run (same
   part_dir, compatible manifest) recomputes the same allocations from
   its part files. *)
let run_adaptive ?(fault_bits = 1) ?(heartbeats = 8) ?(retries = 2) ?workers
    ?on_event ?part_dir ?(policy = F.default_policy) ?trace_ctx ?trace_id
    ~mode ~shards ~seed ~budget (target : F.target) : result =
  let traced = mode = Traced in
  if budget <= 0 then invalid_arg "Runner.run_adaptive: budget must be positive";
  let round_ranges = F.plan_rounds ~rounds:policy.F.rounds ~budget in
  let nr = Array.length round_ranges in
  let fire = match on_event with Some f -> f | None -> ignore in
  let tracer =
    make_tracer ?trace_ctx ?trace_id ~seed ~samples:budget ~shards ()
  in
  let start = started ~shards ~samples:budget in
  fire start;
  let counts, record_lines, vulnmap, clock, events, retried, stats_lines =
    Trace.span tracer "campaign" (fun () ->
        let site_tallies : (int, Stats.tally) Hashtbl.t = Hashtbl.create 64 in
        let tally site =
          Option.value ~default:Stats.zero (Hashtbl.find_opt site_tallies site)
        in
        let candidates = F.site_candidates target in
        let prior = ref Stats.zero in
        let rev_datas = ref [] in
        let rev_body = ref [] in
        let round_ends = ref [] in
        let retried = ref 0 in
        let round = ref 0 in
        let stop = ref false in
        while !round < nr && not !stop do
          Trace.span tracer "round" (fun () ->
              let lo, hi = round_ranges.(!round) in
              let n = hi - lo in
              let assign =
                if !round = 0 then None
                else
                  Trace.span tracer "allocate" (fun () ->
                      let alloc = F.allocate target ~tally ~n in
                      Some (fun sample -> alloc.(sample - lo)))
              in
              let ranges =
                Array.map
                  (fun (r : Shard.range) ->
                    { Shard.lo = r.Shard.lo + lo; hi = r.Shard.hi + lo })
                  (Shard.plan ~shards ~samples:n)
              in
              let k = Array.length ranges in
              let ids = Array.init k (fun s -> (!round * shards) + s) in
              let wv = match workers with Some w -> max 1 w | None -> min k 4 in
              let datas, markers, r =
                run_wave ~fault_bits ~traced ~heartbeats ~retries ~workers:wv
                  ~fire ~part_dir ~sabotage:None ~garble:None ~seed ~assign
                  ~base_spent:lo ~budget ~prior:!prior ~tracer target ids
                  ranges
              in
              Array.iter
                (fun (d : shard_data) ->
                  List.iter
                    (fun (o : Shard.sample_out) ->
                      if o.Shard.o_static >= 0 then
                        Hashtbl.replace site_tallies o.o_static
                          (Stats.add (tally o.o_static) (o.o_class = F.Sdc));
                      prior := Stats.add !prior (o.Shard.o_class = F.Sdc))
                    d.d_samples)
                datas;
              Trace.counter tracer "round" !round;
              Trace.counter tracer "samples" n;
              rev_datas := datas :: !rev_datas;
              rev_body := wave_body datas markers :: !rev_body;
              round_ends := hi :: !round_ends;
              retried := !retried + r;
              incr round;
              if policy.F.target_ci > 0.0 && !round < nr then begin
                let worst =
                  Array.fold_left
                    (fun acc site ->
                      Float.max acc
                        (Stats.half_width (Stats.wilson (tally site))))
                    0.0 candidates
                in
                if worst <= policy.F.target_ci then stop := true
              end)
        done;
        let all_samples =
          List.concat_map
            (fun datas ->
              List.concat_map (fun d -> d.d_samples) (Array.to_list datas))
            (List.rev !rev_datas)
        in
        let record_lines, clock, counts, vulnmap =
          Trace.span tracer "merge" (fun () ->
              merge_samples ~mode target all_samples)
        in
        let stats_lines =
          Trace.span tracer "stats" (fun () ->
              stats_of_samples ~budget ~round_ends:!round_ends all_samples)
        in
        Trace.counter tracer "samples" counts.F.samples;
        Trace.counter tracer "rounds" !round;
        let finished =
          {
            Events.seq = 0;
            shard = -1;
            attempt = 0;
            body =
              Events.Campaign_finished
                {
                  total = counts.F.samples;
                  tally = tally_of_counts counts;
                  clock;
                };
          }
        in
        fire finished;
        ( counts,
          record_lines,
          vulnmap,
          clock,
          canonical_log ~start ~finished (List.concat (List.rev !rev_body)),
          !retried,
          stats_lines ))
  in
  {
    counts;
    record_lines;
    vulnmap;
    clock;
    events;
    retried;
    stats_lines;
    trace_spans = Trace.span_lines tracer;
    trace_walls = Trace.wall_lines tracer;
  }
