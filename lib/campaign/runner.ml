(* Sharded campaign execution on a Unix.fork worker pool.

   Each worker runs one shard (a contiguous global-sample range) and
   streams a line protocol back over its pipe: typed events, per-sample
   outputs, then an explicit done marker.  The parent multiplexes the
   pipes with Unix.select, detects worker death (EOF without the done
   marker) and retries the shard, then merges shard outputs in global
   sample order — which, with index-keyed per-sample RNG, makes the
   merged result byte-identical to the sequential campaign.

   Wire protocol (one JSON object per line, worker -> parent):
     {"t":"ev","ev":{...}}   a Ferrum_telemetry.Events event
     {"t":"s","d":{...}}     a Shard.sample_out
     {"t":"done"}            clean end of stream

   A shard's successful raw stream is also persisted verbatim to
   [part_dir]/shard-<i>.jsonl (write-then-rename), so an interrupted
   campaign resumes by replaying finished shards from disk.

   Live stream vs canonical log: [on_event] observes events as they
   arrive, including heartbeats from attempts that later die (each such
   attempt is closed off by a Shard_retry marker).  Aggregating live
   consumers should key on (shard, attempt) or on shard id with
   last-write-wins, as the progress renderer does; the [result]'s
   canonical log contains only each shard's successful attempt. *)

module F = Ferrum_faultsim.Faultsim
module Events = Ferrum_telemetry.Events
module Json = Ferrum_telemetry.Json

type mode = Inject | Traced

type result = {
  counts : F.counts;
  record_lines : string list;  (** global sample order *)
  vulnmap : F.vulnmap option;  (** [Traced] mode only *)
  clock : int;  (** logical clock: summed injected-run steps *)
  events : Events.t list;  (** canonical merged log, seq 0.. *)
  retried : int;  (** worker deaths recovered by retry *)
}

let tally_of_counts (c : F.counts) : Events.tally =
  {
    Events.benign = c.F.benign;
    sdc = c.F.sdc;
    detected = c.F.detected;
    crash = c.F.crash;
    timeout = c.F.timeout;
  }

(* ------------------------------------------------------------------ *)
(* Wire protocol.                                                      *)
(* ------------------------------------------------------------------ *)

type wire =
  | W_event of Events.t
  | W_sample of Shard.sample_out
  | W_done

let parse_wire line : (wire, string) Stdlib.result =
  match Json.of_string_opt line with
  | None -> Error "worker line is not valid JSON"
  | Some j -> (
    match Json.member "t" j with
    | Some (Json.Str "ev") -> (
      match Json.member "ev" j with
      | Some ev -> Result.map (fun e -> W_event e) (Events.of_json ev)
      | None -> Error "ev line lacks payload")
    | Some (Json.Str "s") -> (
      match Json.member "d" j with
      | Some d -> Result.map (fun s -> W_sample s) (Shard.sample_out_of_json d)
      | None -> Error "sample line lacks payload")
    | Some (Json.Str "done") -> Ok W_done
    | _ -> Error "worker line lacks a known tag")

(* ------------------------------------------------------------------ *)
(* Worker side.                                                        *)
(* ------------------------------------------------------------------ *)

(* Runs in the forked child; never returns.  Exits with Unix._exit so
   no parent at_exit handler (test runners, sinks) fires twice. *)
let worker_main ~fault_bits ~traced ~seed ~heartbeats ~shard ~attempt
    ~die_after ~garble_after target (range : Shard.range) wfd =
  let oc = Unix.out_channel_of_descr wfd in
  let emit_line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  let emit_event body =
    emit_line
      (Json.Obj
         [
           ("t", Json.Str "ev");
           ("ev", Events.to_json { Events.seq = 0; shard; attempt; body });
         ])
  in
  let total = Shard.range_samples range in
  let every = max 1 (total / max 1 heartbeats) in
  (try
     emit_event (Events.Shard_started { lo = range.Shard.lo; hi = range.hi });
     let done_ = ref 0 and tally = ref Events.zero_tally and clock = ref 0 in
     Shard.run_range ~fault_bits ~traced ~seed target range
       ~on_sample:(fun out ->
         (match die_after with
         | Some k when !done_ >= k ->
           flush oc;
           Unix._exit 66
         | _ -> ());
         (match garble_after with
         | Some k when !done_ = k ->
           output_string oc "{\"t\":\"bogus\"}\n"
         | _ -> ());
         emit_line
           (Json.Obj
              [ ("t", Json.Str "s"); ("d", Shard.sample_out_to_json out) ]);
         incr done_;
         clock := !clock + out.Shard.o_steps;
         (match
            Events.tally_of_name !tally
              (F.classification_name out.Shard.o_class)
          with
         | Some t -> tally := t
         | None -> ());
         if !done_ mod every = 0 && !done_ < total then
           emit_event
             (Events.Progress
                { done_ = !done_; total; tally = !tally; clock = !clock }));
     emit_event
       (Events.Shard_finished
          { done_ = !done_; total; tally = !tally; clock = !clock });
     emit_line (Json.Obj [ ("t", Json.Str "done") ]);
     flush oc;
     Unix._exit 0
   with _ ->
     (try flush oc with _ -> ());
     Unix._exit 70)

(* ------------------------------------------------------------------ *)
(* Parent side.                                                        *)
(* ------------------------------------------------------------------ *)

(* One shard's parsed successful stream, plus the raw lines for the
   part file. *)
type shard_data = {
  d_events : Events.t list;  (** stream order *)
  d_samples : Shard.sample_out list;  (** stream order *)
  d_lines : string list;  (** raw protocol lines, stream order *)
}

type running = {
  r_shard : int;
  r_attempt : int;
  r_pid : int;
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;  (** partial trailing line *)
  mutable r_events : Events.t list;  (** reversed *)
  mutable r_samples : Shard.sample_out list;  (** reversed *)
  mutable r_lines : string list;  (** reversed *)
  mutable r_done : bool;
  mutable r_fail : string option;
      (** protocol violation on this attempt's stream; treated like
          worker death (kill, reap, retry) *)
}

let part_path dir shard = Filename.concat dir (Fmt.str "shard-%d.jsonl" shard)

(* Parse a saved part stream; [None] unless it is a complete, coherent
   stream for [range] (ends with the done marker, samples are exactly
   [lo, hi) in order). *)
let load_part (range : Shard.range) path : shard_data option =
  if not (Sys.file_exists path) then None
  else begin
    let lines = Ferrum_telemetry.Metrics.read_lines path in
    let rec go events samples expected = function
      | [] -> None (* no done marker *)
      | [ last ] -> (
        match parse_wire last with
        | Ok W_done when expected = range.Shard.hi ->
          Some
            {
              d_events = List.rev events;
              d_samples = List.rev samples;
              d_lines = lines;
            }
        | _ -> None)
      | line :: rest -> (
        match parse_wire line with
        | Ok (W_event e) -> go (e :: events) samples expected rest
        | Ok (W_sample s) ->
          if s.Shard.o_sample = expected then
            go events (s :: samples) (expected + 1) rest
          else None
        | Ok W_done | Error _ -> None)
    in
    go [] [] range.Shard.lo lines
  end

let save_part dir shard (d : shard_data) =
  Fsutil.mkdir_p dir;
  let path = part_path dir shard in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    d.d_lines;
  close_out oc;
  Sys.rename tmp path

let status_reason status ~got ~total =
  match status with
  | Unix.WEXITED c -> Fmt.str "worker exited %d after %d/%d samples" c got total
  | Unix.WSIGNALED s ->
    Fmt.str "worker killed by signal %d after %d/%d samples" s got total
  | Unix.WSTOPPED s ->
    Fmt.str "worker stopped by signal %d after %d/%d samples" s got total

let rec select_read fds =
  match Unix.select fds [] [] (-1.0) with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_read fds

let run ?(fault_bits = 1) ?(heartbeats = 8) ?(retries = 2) ?workers ?on_event
    ?part_dir ?sabotage ?garble ~mode ~shards ~seed ~samples
    (target : F.target) : result =
  let traced = mode = Traced in
  let ranges = Shard.plan ~shards ~samples in
  let k = Array.length ranges in
  if k = 0 then invalid_arg "Runner.run: samples must be positive";
  let workers = match workers with Some w -> max 1 w | None -> min k 4 in
  let fire = match on_event with Some f -> f | None -> ignore in
  (* Resume: replay finished shards from their part files. *)
  let completed : shard_data option array = Array.make k None in
  (match part_dir with
  | Some dir ->
    Array.iteri
      (fun i range -> completed.(i) <- load_part range (part_path dir i))
      ranges
  | None -> ());
  fire
    {
      Events.seq = 0;
      shard = -1;
      attempt = 0;
      body = Events.Campaign_started { shards = k; samples };
    };
  Array.iter
    (function
      | Some d -> List.iter fire d.d_events
      | None -> ())
    completed;
  let retry_markers : Events.t list array = Array.make k [] (* reversed *) in
  let retried = ref 0 in
  let running : running list ref = ref [] in
  let spawn i attempt =
    let rfd, wfd = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (* Child: drop every parent-side read end so a long-lived sibling
         cannot hold another shard's pipe open past its worker's exit. *)
      Unix.close rfd;
      List.iter (fun r -> try Unix.close r.r_fd with _ -> ()) !running;
      let die_after =
        match sabotage with
        | Some f -> f ~shard:i ~attempt
        | None -> None
      in
      let garble_after =
        match garble with
        | Some f -> f ~shard:i ~attempt
        | None -> None
      in
      worker_main ~fault_bits ~traced ~seed ~heartbeats ~shard:i ~attempt
        ~die_after ~garble_after target ranges.(i) wfd
    | pid ->
      Unix.close wfd;
      running :=
        {
          r_shard = i;
          r_attempt = attempt;
          r_pid = pid;
          r_fd = rfd;
          r_buf = Buffer.create 4096;
          r_events = [];
          r_samples = [];
          r_lines = [];
          r_done = false;
          r_fail = None;
        }
        :: !running
  in
  (* A line that fails to parse poisons the attempt: stop consuming,
     drop the rest of the buffered data, and let the caller route the
     worker through the ordinary death/retry path.  Never raise from
     inside the select loop — that would leak live children. *)
  let feed r chunk =
    Buffer.add_string r.r_buf chunk;
    let data = Buffer.contents r.r_buf in
    let rec consume start =
      match String.index_from_opt data start '\n' with
      | None ->
        Buffer.clear r.r_buf;
        Buffer.add_substring r.r_buf data start (String.length data - start)
      | Some nl ->
        let line = String.sub data start (nl - start) in
        if String.trim line <> "" then begin
          match parse_wire line with
          | Ok (W_event e) ->
            fire e;
            r.r_events <- e :: r.r_events;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok (W_sample s) ->
            r.r_samples <- s :: r.r_samples;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Ok W_done ->
            r.r_done <- true;
            r.r_lines <- line :: r.r_lines;
            consume (nl + 1)
          | Error e ->
            r.r_fail <- Some e;
            Buffer.clear r.r_buf
        end
        else consume (nl + 1)
    in
    consume 0
  in
  (* Kill and reap every outstanding worker; used before the campaign
     propagates a failure so no forked child outlives the parent. *)
  let reap_all () =
    List.iter
      (fun r ->
        (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] r.r_pid) with Unix.Unix_error _ -> ())
      !running;
    running := []
  in
  let finish r =
    (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] r.r_pid in
    running := List.filter (fun x -> x != r) !running;
    let total = Shard.range_samples ranges.(r.r_shard) in
    let got = List.length r.r_samples in
    if r.r_fail = None && r.r_done && got = total then begin
      let d =
        {
          d_events = List.rev r.r_events;
          d_samples = List.rev r.r_samples;
          d_lines = List.rev r.r_lines;
        }
      in
      completed.(r.r_shard) <- Some d;
      match part_dir with
      | Some dir -> save_part dir r.r_shard d
      | None -> ()
    end
    else begin
      let reason =
        match r.r_fail with
        | Some e -> Fmt.str "protocol error after %d/%d samples: %s" got total e
        | None -> status_reason status ~got ~total
      in
      let marker =
        {
          Events.seq = 0;
          shard = r.r_shard;
          attempt = r.r_attempt;
          body = Events.Shard_retry { reason };
        }
      in
      fire marker;
      retry_markers.(r.r_shard) <- marker :: retry_markers.(r.r_shard);
      incr retried;
      if r.r_attempt + 1 > retries then begin
        reap_all ();
        failwith
          (Fmt.str "campaign shard %d failed after %d attempts: %s" r.r_shard
             (r.r_attempt + 1) reason)
      end
      else spawn r.r_shard (r.r_attempt + 1)
    end
  in
  let next = ref 0 in
  let buf = Bytes.create 65536 in
  while !next < k || !running <> [] do
    while
      !next < k
      && (completed.(!next) <> None || List.length !running < workers)
    do
      let i = !next in
      incr next;
      if completed.(i) = None then spawn i 0
    done;
    if !running <> [] then begin
      let ready = select_read (List.map (fun r -> r.r_fd) !running) in
      List.iter
        (fun fd ->
          match List.find_opt (fun r -> r.r_fd = fd) !running with
          | None -> ()
          | Some r -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> finish r
            | n ->
              feed r (Bytes.sub_string buf 0 n);
              if r.r_fail <> None then begin
                (try Unix.kill r.r_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                finish r
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        ready
    end
  done;
  (* Merge in global sample order: shard ranges are contiguous and
     ascending, so shard index order is sample order.  The traced fold
     re-runs the float summation in exactly the sequential order. *)
  let datas =
    Array.map
      (function Some d -> d | None -> assert false (* loop invariant *))
      completed
  in
  let all_samples =
    List.concat_map (fun d -> d.d_samples) (Array.to_list datas)
  in
  let record_lines = List.map (fun s -> s.Shard.o_record) all_samples in
  let clock =
    List.fold_left (fun acc s -> acc + s.Shard.o_steps) 0 all_samples
  in
  let counts, vulnmap =
    match mode with
    | Inject ->
      ( List.fold_left
          (fun c s -> F.add_count c s.Shard.o_class)
          F.zero_counts all_samples,
        None )
    | Traced ->
      let b = F.vulnmap_builder target in
      List.iter
        (fun (s : Shard.sample_out) ->
          F.vulnmap_add b ~sample:s.o_sample ~static_index:s.o_static
            s.o_class ~latency:s.o_latency ~escape:s.o_escape)
        all_samples;
      let v = F.vulnmap_build b in
      (v.F.v_counts, Some v)
  in
  let tally = tally_of_counts counts in
  let finished =
    {
      Events.seq = 0;
      shard = -1;
      attempt = 0;
      body = Events.Campaign_finished { total = samples; tally; clock };
    }
  in
  fire finished;
  (* Canonical log: campaign start, then per shard (index order) its
     retry markers followed by the successful attempt's events, then
     campaign finish — renumbered into one contiguous sequence. *)
  let body =
    List.concat
      (List.init k (fun i ->
           List.rev retry_markers.(i) @ datas.(i).d_events))
  in
  let events =
    List.mapi
      (fun i e -> { e with Events.seq = i })
      (({
          Events.seq = 0;
          shard = -1;
          attempt = 0;
          body = Events.Campaign_started { shards = k; samples };
        }
       :: body)
      @ [ finished ])
  in
  { counts; record_lines; vulnmap; clock; events; retried = !retried }
