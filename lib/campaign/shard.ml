(* Deterministic campaign sharding.

   A shard is a contiguous range of global sample indices.  Because the
   per-sample RNG is a pure function of the campaign seed and the global
   index (Rng.split_at, via Faultsim.campaign_sample), a shard can run
   anywhere — another process, another machine, a resumed run — and the
   concatenation of shard outputs in index order is byte-identical to
   the sequential campaign for any shard count. *)

module F = Ferrum_faultsim.Faultsim
module Propagation = Ferrum_telemetry.Propagation
module Json = Ferrum_telemetry.Json

type range = { lo : int; hi : int }

let range_samples r = r.hi - r.lo

(* Near-equal contiguous split: the first [samples mod k] shards get one
   extra sample.  Shard count is clamped to [1, samples]. *)
let plan ~shards ~samples =
  if samples <= 0 then [||]
  else begin
    let k = max 1 (min shards samples) in
    let base = samples / k and extra = samples mod k in
    let ranges = Array.make k { lo = 0; hi = 0 } in
    let lo = ref 0 in
    for i = 0 to k - 1 do
      let n = base + if i < extra then 1 else 0 in
      ranges.(i) <- { lo = !lo; hi = !lo + n };
      lo := !lo + n
    done;
    ranges
  end

(* ------------------------------------------------------------------ *)
(* Per-sample shard output.                                            *)
(* ------------------------------------------------------------------ *)

(* Everything the merge step needs from one sample: the already
   serialized record line, plus the aggregation inputs of the traced
   (vulnmap) variant.  The detection-latency cycle value is a float the
   parent must re-sum in global order, so it crosses the worker pipe as
   its exact IEEE-754 bit pattern — a decimal rendering could lose the
   low bits that byte-identity with the sequential run depends on. *)
type sample_out = {
  o_sample : int;
  o_class : F.classification;
  o_static : int;  (** static site, -1 when unreached *)
  o_record : string;  (** serialized record JSON (one line) *)
  o_latency : (int * float) option;  (** Detected runs only *)
  o_escape : Propagation.escape option;  (** Sdc runs only *)
  o_steps : int;  (** logical-clock contribution (injected-run steps) *)
}

let sample_out_to_json (o : sample_out) : Json.t =
  let lat_steps, lat_bits =
    match o.o_latency with
    | Some (s, c) -> (s, Int64.to_string (Int64.bits_of_float c))
    | None -> (-1, "")
  in
  Json.Obj
    [
      ("sample", Json.Int o.o_sample);
      ("class", Json.Str (F.classification_name o.o_class));
      ("static", Json.Int o.o_static);
      ("record", Json.Str o.o_record);
      ("lat_steps", Json.Int lat_steps);
      ("lat_cycles_bits", Json.Str lat_bits);
      ( "escape",
        Json.Str
          (match o.o_escape with
          | Some e -> Propagation.escape_name e
          | None -> "") );
      ("steps", Json.Int o.o_steps);
    ]

let ( let* ) = Result.bind

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Fmt.str "sample_out: bad field %S" name)

let str_member name j =
  match Json.member name j with
  | Some (Json.Str v) -> Ok v
  | _ -> Error (Fmt.str "sample_out: bad field %S" name)

let sample_out_of_json (j : Json.t) : (sample_out, string) result =
  let* o_sample = int_member "sample" j in
  let* cls = str_member "class" j in
  let* o_class =
    match F.classification_of_name cls with
    | Some c -> Ok c
    | None -> Error (Fmt.str "sample_out: unknown class %S" cls)
  in
  let* o_static = int_member "static" j in
  let* o_record = str_member "record" j in
  let* lat_steps = int_member "lat_steps" j in
  let* lat_bits = str_member "lat_cycles_bits" j in
  let* o_latency =
    if lat_steps < 0 then Ok None
    else
      match Int64.of_string_opt lat_bits with
      | Some bits -> Ok (Some (lat_steps, Int64.float_of_bits bits))
      | None -> Error "sample_out: bad lat_cycles_bits"
  in
  let* esc = str_member "escape" j in
  let* o_escape =
    if esc = "" then Ok None
    else
      match Propagation.escape_of_name esc with
      | Some e -> Ok (Some e)
      | None -> Error (Fmt.str "sample_out: unknown escape %S" esc)
  in
  let* o_steps = int_member "steps" j in
  Ok { o_sample; o_class; o_static; o_record; o_latency; o_escape; o_steps }

(* ------------------------------------------------------------------ *)
(* Running a range.                                                    *)
(* ------------------------------------------------------------------ *)

(* Run one shard's samples in index order.  [traced] selects the
   lockstep-traced variant (vulnmap campaigns); the record stream is
   identical either way.  [assign] maps a global sample index to the
   static site the adaptive allocator aimed it at (negative = uniform,
   the default and the whole story for flat campaigns). *)
let run_range ?(fault_bits = 1) ?(assign = fun _ -> -1) ~traced ~seed
    (t : F.target) (r : range) ~on_sample =
  for sample = r.lo to r.hi - 1 do
    let site = assign sample in
    let out =
      if traced then begin
        let cls, fault, record, summary =
          F.vulnmap_sample ~fault_bits ~site t ~seed ~sample
        in
        let latency =
          if cls = F.Detected then Propagation.detection_latency summary
          else None
        in
        let escape =
          if cls = F.Sdc then Some (Propagation.explain_escape summary)
          else None
        in
        {
          o_sample = sample;
          o_class = cls;
          o_static = fault.F.static_index;
          o_record = Json.to_string (F.record_to_json record);
          o_latency = latency;
          o_escape = escape;
          o_steps = record.F.steps;
        }
      end
      else begin
        let cls, fault, record =
          F.campaign_sample ~fault_bits ~site t ~seed ~sample
        in
        {
          o_sample = sample;
          o_class = cls;
          o_static = fault.F.static_index;
          o_record = Json.to_string (F.record_to_json record);
          o_latency = None;
          o_escape = None;
          o_steps = record.F.steps;
        }
      end
    in
    on_sample out
  done
