(** Sharded campaign execution on a [Unix.fork] worker pool.

    Workers stream typed events and per-sample outputs over pipes; the
    parent multiplexes them with [Unix.select], detects worker death
    (EOF before the protocol's done marker), retries dead shards, and
    merges shard outputs in global sample order — byte-identical to the
    sequential campaign for any shard count. *)

module F = Ferrum_faultsim.Faultsim
module Events = Ferrum_telemetry.Events
module Trace = Ferrum_telemetry.Trace

type mode =
  | Inject  (** plain campaign: outcome counts + record stream *)
  | Traced  (** lockstep-traced campaign: vulnerability map as well *)

(** View a campaign's outcome counts as an event tally. *)
val tally_of_counts : F.counts -> Events.tally

type result = {
  counts : F.counts;
  record_lines : string list;
      (** serialized per-injection records, global sample order —
          concatenating them under the usual header reproduces the
          sequential [--metrics] file byte-for-byte *)
  vulnmap : F.vulnmap option;  (** [Traced] mode only *)
  clock : int;  (** logical clock: summed injected-run steps *)
  events : Events.t list;
      (** canonical merged event log: campaign_started, then per shard
          (index order) its retry markers and successful attempt's
          events, then campaign_finished; [seq] contiguous from 0 *)
  retried : int;  (** worker deaths recovered by retry *)
  stats_lines : string list;
      (** [ferrum.stats.v1] convergence document built from the merged
          sample stream in global order: trace rows (CI half-width vs.
          samples spent), per-site rows, round rows (adaptive runs
          only) and the final campaign row *)
  trace_spans : string list;
      (** [ferrum.trace.v1] span rows of the stitched campaign trace:
          the runner's own spans (campaign / wave / round / allocate /
          merge / stats) followed by each worker's spans in shard-id
          order — logical clocks only, byte-identical per seed for any
          shard count *)
  trace_walls : string list;
      (** wall-clock / CPU / peak-RSS sidecar rows for the same spans;
          non-deterministic, never byte-compared *)
}

(** Run a campaign split into [shards] ranges on at most [workers]
    (default [min shards 4]) concurrent forked workers.

    [heartbeats] (default 8) progress events per shard; [retries]
    (default 2) extra attempts per shard before the campaign fails;
    [on_event] observes events live in arrival order — including
    heartbeats from attempts that later die, each closed off by a
    [Shard_retry] marker, so aggregating consumers should key on
    (shard, attempt) or treat a shard's latest event as authoritative
    (the [result]'s canonical log is ordered, renumbered and contains
    only successful attempts); [part_dir] persists each
    finished shard's stream (write-then-rename) and, when present
    beforehand, resumes from any complete part files found there;
    [sabotage] (tests) makes a worker die after [k] samples when it
    returns [Some k] for a (shard, attempt); [garble] (tests) makes a
    worker emit a malformed protocol line after [k] samples instead.

    Malformed worker output is treated like worker death: the worker
    is killed and the shard retried.  Raises [Failure] if a shard
    exhausts its retries — outstanding workers are killed and reaped
    before the exception propagates.

    Every campaign is traced: [trace_ctx] continues a caller's span
    context (e.g. the serve daemon's job span) so the campaign spans
    stitch under it; otherwise a fresh trace is rooted whose id is
    [trace_id] when given and {!Trace.derive_id} of the campaign
    parameters when not.  Worker span contexts are keyed on the global
    shard id alone, so retries do not perturb span ids and the span
    rows in [trace_spans] are byte-identical per seed. *)
val run :
  ?fault_bits:int ->
  ?heartbeats:int ->
  ?retries:int ->
  ?workers:int ->
  ?on_event:(Events.t -> unit) ->
  ?part_dir:string ->
  ?sabotage:(shard:int -> attempt:int -> int option) ->
  ?garble:(shard:int -> attempt:int -> int option) ->
  ?trace_ctx:Trace.ctx ->
  ?trace_id:string ->
  mode:mode ->
  shards:int ->
  seed:int64 ->
  samples:int ->
  F.target ->
  result

(** Run an adaptive campaign: the sample [budget] is split into
    [policy.rounds] near-equal rounds; round 0 samples fault sites
    uniformly, and each later round directs its samples at the sites
    with the widest Wilson SDC confidence intervals so far
    ({!F.allocate} over the merged statistics of all prior rounds).
    When [policy.target_ci > 0], the campaign stops early once every
    reached site's half-width is at or below the target — the
    [Campaign_finished] total then reports the samples actually spent.

    Each round runs as one worker-pool wave of [shards] shards under
    global shard ids [round * shards + s], so part files, retry
    markers and event aggregation behave exactly as in {!run}; rounds
    are barriers over contiguous global sample ranges and allocations
    are pure functions of merged prior output, so the result is
    byte-identical for any shard count and resumable via [part_dir]
    like a flat campaign.  Progress events carry budget-denominated
    [spent]/[budget] and a live Wilson half-width, so ETA displays do
    not overshoot when rounds stop early.

    Tracing works as in {!run}, with one "round" span per round (each
    holding its "allocate" phase and its workers' spans). *)
val run_adaptive :
  ?fault_bits:int ->
  ?heartbeats:int ->
  ?retries:int ->
  ?workers:int ->
  ?on_event:(Events.t -> unit) ->
  ?part_dir:string ->
  ?policy:F.policy ->
  ?trace_ctx:Trace.ctx ->
  ?trace_id:string ->
  mode:mode ->
  shards:int ->
  seed:int64 ->
  budget:int ->
  F.target ->
  result
