(* Small filesystem helpers shared by the campaign modules. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomic whole-file write: temp file in place, then rename. *)
let write_file path content =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path
