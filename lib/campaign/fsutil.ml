(* Small filesystem helpers shared by the campaign modules. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

(* Recursive copy; [dst] must not exist yet (its parents are created). *)
let rec copy_tree src dst =
  match (Unix.lstat src).Unix.st_kind with
  | Unix.S_DIR ->
    mkdir_p dst;
    Array.iter
      (fun f -> copy_tree (Filename.concat src f) (Filename.concat dst f))
      (Sys.readdir src)
  | _ ->
    mkdir_p (Filename.dirname dst);
    copy_file src dst

(* Rename that survives EXDEV: when [src] and [dst] live on different
   mounts (the run store on one volume, the scratch directory on
   another) a plain rename fails, so fall back to copying the tree to a
   temporary sibling of [dst] — same filesystem as [dst] — renaming
   that into place, and only then removing [src].  The visible effect
   at [dst] is atomic either way. *)
let rename src dst =
  try Unix.rename src dst
  with Unix.Unix_error (Unix.EXDEV, _, _) ->
    let tmp = Printf.sprintf "%s.%d.exdev-tmp" dst (Unix.getpid ()) in
    rm_rf tmp;
    copy_tree src tmp;
    Unix.rename tmp dst;
    rm_rf src

(* Atomic whole-file write: temp file in place, then rename.  The temp
   is a sibling of the target, so the rename itself cannot cross a
   mount; [rename] keeps even pathological layouts safe.  The temp name
   carries the writer's pid: the daemon parent and a runner child may
   both rewrite the same file (e.g. the store index), and a shared temp
   path would let the two writers interleave truncate/write/rename and
   publish a torn result. *)
let write_file path content =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s
