(* Small filesystem helpers shared by the campaign modules. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

(* Atomic whole-file write: temp file in place, then rename. *)
let write_file path content =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path
