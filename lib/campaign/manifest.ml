(* Replayable run manifests: `ferrum.manifest.v1`.

   Everything needed to reproduce (or refuse to resume) a campaign run
   lives in one JSON object in the run directory: the campaign
   configuration, the shard map, the schema versions of the files
   alongside it, and digests of the workload — the printed program (the
   authoritative input) plus golden-run invariants that double as a
   cheap equivalence check before a resume reuses part files. *)

module F = Ferrum_faultsim.Faultsim
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics
module Profile = Ferrum_telemetry.Profile

let kind = "ferrum.manifest.v1"

type t = {
  benchmark : string;
  technique : string;  (** short name, or "raw" *)
  samples : int;
  seed : int64;
  shards : int;
  fault_bits : int;
  scope : string;  (** "original" | "all-sites" *)
  traced : bool;
  engine : string;  (** execution engine, {!F.engine_name} form *)
  policy : string;  (** sample allocation: "flat" | "adaptive" *)
  rounds : int;  (** adaptive allocation rounds (1 when flat) *)
  target_ci : float;  (** early-stop CI half-width target (0 = none) *)
  shard_map : Shard.range array;
  program_digest : string;  (** MD5 hex of the printed assembly *)
  static_instructions : int;
  golden_steps : int;
  golden_cycles : float;
  eligible_steps : int;
  profile : (string * float) list;
      (** provenance name -> golden cycles (overhead split) *)
  schemas : (string * string) list;  (** file -> schema kind *)
}

let program_digest p =
  Digest.to_hex (Digest.string (Ferrum_asm.Printer.program_to_string p))

let make ?(policy = "flat") ?(rounds = 1) ?(target_ci = 0.0) ~benchmark
    ~technique ~samples ~seed ~shards ~fault_bits ~all_sites ~traced ~program
    (target : F.target) =
  let profile = Profile.run target.F.img in
  {
    benchmark;
    technique;
    samples;
    seed;
    shards;
    fault_bits;
    scope = (if all_sites then "all-sites" else "original");
    traced;
    engine = F.engine_name target.F.engine;
    policy;
    rounds;
    target_ci;
    shard_map = Shard.plan ~shards ~samples;
    program_digest = program_digest program;
    static_instructions = Array.length target.F.img.F.Machine.code;
    golden_steps = target.F.golden_steps;
    golden_cycles = target.F.golden_cycles;
    eligible_steps = target.F.eligible_steps;
    profile =
      List.map
        (fun (p : Profile.prov_row) ->
          (Profile.prov_name p.Profile.prov, p.Profile.p_cycles))
        profile.Profile.by_provenance;
    schemas =
      (("events.jsonl", Ferrum_telemetry.Events.kind)
      :: ("injection.jsonl", F.metrics_kind)
      :: ("stats.jsonl", Ferrum_telemetry.Stats.kind)
      :: ("trace.jsonl", Ferrum_telemetry.Trace.kind)
      ::
      (if traced then [ ("vulnmap.jsonl", F.vulnmap_kind) ] else []));
  }

let to_json (m : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str kind);
      ("version", Json.Int Metrics.schema_version);
      ("benchmark", Json.Str m.benchmark);
      ("technique", Json.Str m.technique);
      ("samples", Json.Int m.samples);
      ("seed", Json.Str (Int64.to_string m.seed));
      ("shards", Json.Int m.shards);
      ("fault_bits", Json.Int m.fault_bits);
      ("scope", Json.Str m.scope);
      ("traced", Json.Int (if m.traced then 1 else 0));
      ("engine", Json.Str m.engine);
      ("policy", Json.Str m.policy);
      ("rounds", Json.Int m.rounds);
      ("target_ci", Json.Float m.target_ci);
      ( "shard_map",
        Json.Arr
          (Array.to_list m.shard_map
          |> List.map (fun (r : Shard.range) ->
                 Json.Obj
                   [ ("lo", Json.Int r.Shard.lo); ("hi", Json.Int r.hi) ])) );
      ("program_digest", Json.Str m.program_digest);
      ("static_instructions", Json.Int m.static_instructions);
      ("golden_steps", Json.Int m.golden_steps);
      ("golden_cycles", Json.Float m.golden_cycles);
      ("eligible_steps", Json.Int m.eligible_steps);
      ( "profile",
        Json.Obj (List.map (fun (p, c) -> (p, Json.Float c)) m.profile) );
      ( "schemas",
        Json.Obj (List.map (fun (f, s) -> (f, Json.Str s)) m.schemas) );
    ]

let ( let* ) = Result.bind

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Fmt.str "manifest: bad field %S" name)

let str_member name j =
  match Json.member name j with
  | Some (Json.Str v) -> Ok v
  | _ -> Error (Fmt.str "manifest: bad field %S" name)

let float_member name j =
  match Json.member name j with
  | Some (Json.Float v) -> Ok v
  | Some (Json.Int v) -> Ok (float_of_int v)
  | _ -> Error (Fmt.str "manifest: bad field %S" name)

let of_json (j : Json.t) : (t, string) result =
  let* schema = str_member "schema" j in
  let* () =
    if schema = kind then Ok ()
    else Error (Fmt.str "manifest: schema is %S, expected %S" schema kind)
  in
  let* benchmark = str_member "benchmark" j in
  let* technique = str_member "technique" j in
  let* samples = int_member "samples" j in
  let* seed_s = str_member "seed" j in
  let* seed =
    match Int64.of_string_opt seed_s with
    | Some s -> Ok s
    | None -> Error "manifest: bad seed"
  in
  let* shards = int_member "shards" j in
  let* fault_bits = int_member "fault_bits" j in
  let* scope = str_member "scope" j in
  let* traced = int_member "traced" j in
  let* engine = str_member "engine" j in
  (* pre-stats manifests lack the allocation policy: default to the
     behavior they recorded (flat, one round, no CI target) *)
  let* policy =
    match Json.member "policy" j with
    | None -> Ok "flat"
    | Some (Json.Str p) -> Ok p
    | Some _ -> Error "manifest: bad field \"policy\""
  in
  let* rounds =
    match Json.member "rounds" j with
    | None -> Ok 1
    | Some (Json.Int r) -> Ok r
    | Some _ -> Error "manifest: bad field \"rounds\""
  in
  let* target_ci =
    match Json.member "target_ci" j with
    | None -> Ok 0.0
    | Some (Json.Float v) -> Ok v
    | Some (Json.Int v) -> Ok (float_of_int v)
    | Some _ -> Error "manifest: bad field \"target_ci\""
  in
  let* shard_map =
    match Json.member "shard_map" j with
    | Some (Json.Arr rs) ->
      let ranges =
        List.map
          (fun r ->
            let* lo = int_member "lo" r in
            let* hi = int_member "hi" r in
            Ok { Shard.lo; hi })
          rs
      in
      List.fold_right
        (fun r acc ->
          let* r = r in
          let* acc = acc in
          Ok (r :: acc))
        ranges (Ok [])
      |> Result.map Array.of_list
    | _ -> Error "manifest: bad shard_map"
  in
  let* program_digest = str_member "program_digest" j in
  let* static_instructions = int_member "static_instructions" j in
  let* golden_steps = int_member "golden_steps" j in
  let* golden_cycles = float_member "golden_cycles" j in
  let* eligible_steps = int_member "eligible_steps" j in
  let* profile =
    match Json.member "profile" j with
    | Some (Json.Obj fields) ->
      List.fold_right
        (fun (p, v) acc ->
          let* acc = acc in
          match v with
          | Json.Float c -> Ok ((p, c) :: acc)
          | Json.Int c -> Ok ((p, float_of_int c) :: acc)
          | _ -> Error "manifest: bad profile entry")
        fields (Ok [])
    | _ -> Error "manifest: bad profile"
  in
  let* schemas =
    match Json.member "schemas" j with
    | Some (Json.Obj fields) ->
      List.fold_right
        (fun (f, v) acc ->
          let* acc = acc in
          match v with
          | Json.Str s -> Ok ((f, s) :: acc)
          | _ -> Error "manifest: bad schemas entry")
        fields (Ok [])
    | _ -> Error "manifest: bad schemas"
  in
  Ok
    {
      benchmark;
      technique;
      samples;
      seed;
      shards;
      fault_bits;
      scope;
      traced = traced <> 0;
      engine;
      policy;
      rounds;
      target_ci;
      shard_map;
      program_digest;
      static_instructions;
      golden_steps;
      golden_cycles;
      eligible_steps;
      profile;
      schemas;
    }

(* Do the part files recorded under [recorded] describe the same
   sample streams the [fresh] configuration would produce?  Everything
   that feeds per-sample derivation or shard layout must match; display
   metadata (benchmark/technique names, profile rows) may differ. *)
let compatible (recorded : t) (fresh : t) =
  recorded.program_digest = fresh.program_digest
  && recorded.seed = fresh.seed
  && recorded.samples = fresh.samples
  && recorded.fault_bits = fresh.fault_bits
  && recorded.scope = fresh.scope
  && recorded.traced = fresh.traced
  && recorded.engine = fresh.engine
  && recorded.policy = fresh.policy
  && recorded.rounds = fresh.rounds
  && recorded.target_ci = fresh.target_ci
  && recorded.shard_map = fresh.shard_map

(* Content address of a run: MD5 over the canonical manifest JSON.
   Everything that determines a campaign's output — program digest,
   seed, samples, fault bits, scope, engine, shard map — feeds the
   serialization, so two submissions of the same job share a digest
   and an identical stored result. *)
let digest (m : t) = Digest.to_hex (Digest.string (Json.to_string (to_json m)))

let file = "manifest.json"

let save ~dir (m : t) =
  Fsutil.write_file
    (Filename.concat dir file)
    (Json.to_string (to_json m) ^ "\n")

let load ~dir : (t, string) result =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then Error (Fmt.str "no %s in %s" file dir)
  else
    match Metrics.read_lines path with
    | [ line ] -> (
      match Json.of_string_opt line with
      | Some j -> of_json j
      | None -> Error "manifest: not valid JSON")
    | _ -> Error "manifest: expected exactly one JSON line"
