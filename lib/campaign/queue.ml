(* Persistent campaign job queue: `ferrum.jobs.v1`.

   The serve daemon's source of truth for job state.  The whole queue
   lives in one JSONL document — a header then one record per job in
   submission order — rewritten atomically (Fsutil temp+rename) on
   every transition, so a daemon restart resumes exactly where the
   previous process stopped: [Running] jobs are demoted to [Pending]
   on load (their shard part files make the re-run cheap), finished
   jobs keep their digests, and SSE readers in forked children can
   poll the file for state without sharing memory with the daemon. *)

module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics

let kind = "ferrum.jobs.v1"
let file = "jobs.jsonl"

type state = Pending | Running | Done | Failed

let state_name = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"

let state_of_name = function
  | "pending" -> Some Pending
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | _ -> None

type job = {
  id : int;
  spec : string;  (** submitted job spec, canonical JSON text *)
  state : state;
  digest : string;  (** manifest digest; "" until computed *)
  cached : bool;  (** served from the run store without running *)
  error : string;  (** failure reason, "" otherwise *)
  trace : string;  (** client traceparent header; "" when absent *)
  submitted : float;  (** submission wall time; 0. for legacy records *)
}

let fields =
  Metrics.
    [
      field "id" F_int;
      field "state" F_string;
      field "digest" F_string;
      field "cached" F_int;
      field "error" F_string;
      field "spec" F_string;
      field ~required:false "trace" F_string;
      field ~required:false "submitted" F_float;
    ]

let job_to_json (j : job) : Json.t =
  Json.Obj
    ([
       ("id", Json.Int j.id);
       ("state", Json.Str (state_name j.state));
       ("digest", Json.Str j.digest);
       ("cached", Json.Int (if j.cached then 1 else 0));
       ("error", Json.Str j.error);
       ("spec", Json.Str j.spec);
     ]
    @ (if j.trace = "" then [] else [ ("trace", Json.Str j.trace) ])
    @
    if j.submitted = 0.0 then []
    else [ ("submitted", Json.Float j.submitted) ])

let ( let* ) = Result.bind

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Fmt.str "job: bad field %S" name)

let str_member name j =
  match Json.member name j with
  | Some (Json.Str v) -> Ok v
  | _ -> Error (Fmt.str "job: bad field %S" name)

let job_of_json (j : Json.t) : (job, string) result =
  let* id = int_member "id" j in
  let* state_s = str_member "state" j in
  let* state =
    match state_of_name state_s with
    | Some s -> Ok s
    | None -> Error (Fmt.str "job: unknown state %S" state_s)
  in
  let* digest = str_member "digest" j in
  let* cached = int_member "cached" j in
  let* error = str_member "error" j in
  let* spec = str_member "spec" j in
  (* both absent from pre-trace queue files *)
  let trace =
    match Json.member "trace" j with Some (Json.Str t) -> t | _ -> ""
  in
  let submitted =
    match Json.member "submitted" j with
    | Some (Json.Float v) -> v
    | Some (Json.Int v) -> float_of_int v
    | _ -> 0.0
  in
  Ok { id; spec; state; digest; cached = cached <> 0; error; trace; submitted }

let header extra = Metrics.header ~kind extra

type t = {
  dir : string;
  mutable jobs : job list;  (** submission order *)
}

let path t = Filename.concat t.dir file
let jobs t = t.jobs
let find t id = List.find_opt (fun j -> j.id = id) t.jobs

let next_pending t = List.find_opt (fun j -> j.state = Pending) t.jobs

let save t =
  let lines =
    List.map (fun j -> Json.to_string (job_to_json j)) t.jobs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Json.to_string (header [ ("jobs", Json.Int (List.length t.jobs)) ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Fsutil.write_file (path t) (Buffer.contents buf)

(* Load a queue directory.  A [Running] job belonged to a daemon that
   died mid-run: demote it to [Pending] so the next scheduler pass
   restarts it (its part files resume finished shards). *)
let load ~dir =
  Fsutil.mkdir_p dir;
  let t = { dir; jobs = [] } in
  let p = path t in
  if Sys.file_exists p then begin
    (match Metrics.read_lines p with
    | _header :: records ->
      t.jobs <-
        List.filter_map
          (fun line ->
            match Json.of_string_opt line with
            | None -> None
            | Some j -> (
              match job_of_json j with
              | Ok job ->
                Some
                  (if job.state = Running then { job with state = Pending }
                   else job)
              | Error _ -> None))
          records
    | [] -> ());
    save t
  end;
  t

(* Append a new job and persist.  Ids are dense from 1 in submission
   order — stable across restarts because the queue file is. *)
let submit ?(trace = "") ?(submitted = 0.0) t ~spec ~digest ~cached ~state =
  let id = 1 + List.fold_left (fun a j -> max a j.id) 0 t.jobs in
  let job = { id; spec; state; digest; cached; error = ""; trace; submitted } in
  t.jobs <- t.jobs @ [ job ];
  save t;
  job

let update t (job : job) =
  t.jobs <- List.map (fun j -> if j.id = job.id then job else j) t.jobs;
  save t

(* Per-job scratch directory (live event log, parts, spool). *)
let job_dir t id = Filename.concat t.dir (Fmt.str "job-%d" id)
