(** Persistent campaign job queue ([ferrum.jobs.v1]).

    One JSONL document — header, then one record per job in submission
    order — rewritten atomically on every transition.  A daemon
    restart resumes from the file: [Running] jobs are demoted to
    [Pending] on load (shard part files make the re-run cheap), and
    forked readers can poll the file for job state without sharing
    memory with the daemon. *)

module Json = Ferrum_telemetry.Json

val kind : string
(** ["ferrum.jobs.v1"] *)

val file : string
(** ["jobs.jsonl"] *)

type state = Pending | Running | Done | Failed

val state_name : state -> string
val state_of_name : string -> state option

type job = {
  id : int;
  spec : string;  (** submitted job spec, canonical JSON text *)
  state : state;
  digest : string;  (** manifest digest; [""] until computed *)
  cached : bool;  (** served from the run store without running *)
  error : string;  (** failure reason, [""] otherwise *)
  trace : string;
      (** the client's traceparent header at submission, [""] when
          absent — lets the runner's spans stitch under the caller's
          trace *)
  submitted : float;
      (** submission wall time ([Unix.gettimeofday]); [0.] in records
          from pre-trace queue files *)
}

(** Field list for {!Ferrum_telemetry.Metrics.validate_lines}. *)
val fields : Ferrum_telemetry.Metrics.field list

val job_to_json : job -> Json.t
val job_of_json : Json.t -> (job, string) result

(** [ferrum.jobs.v1] header with caller context appended. *)
val header : (string * Json.t) list -> Json.t

type t

(** Load (or initialise) the queue under [dir], demoting [Running]
    jobs to [Pending]. *)
val load : dir:string -> t

val path : t -> string
val jobs : t -> job list
val find : t -> int -> job option

(** Oldest [Pending] job, if any. *)
val next_pending : t -> job option

(** Append a new job (dense ids from 1) and persist.  [trace] is the
    client's traceparent header (default [""]); [submitted] the
    submission wall time (default [0.], meaning unknown). *)
val submit :
  ?trace:string ->
  ?submitted:float ->
  t ->
  spec:string ->
  digest:string ->
  cached:bool ->
  state:state ->
  job

(** Replace the job with the same id and persist. *)
val update : t -> job -> unit

(** Persist the current state (also done by every mutation). *)
val save : t -> unit

(** Per-job scratch directory ([<dir>/job-<id>]). *)
val job_dir : t -> int -> string
