(** Campaign run directories and canonical metrics headers.

    A finished run directory holds [manifest.json], [injection.jsonl],
    [events.jsonl], optionally [vulnmap.jsonl], and a [parts/]
    directory of per-shard resume state.  The header builders here are
    the single source of campaign metrics headers — sequential CLI
    paths and the sharded runner share them, which is what makes
    sharded output byte-comparable to sequential output. *)

module Json = Ferrum_telemetry.Json

val injection_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

val vulnmap_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

val events_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> shards:int -> Json.t

val injection_file : string
val vulnmap_file : string
val events_file : string

(** [parts_dir dir] is the per-shard resume-state directory of run
    directory [dir]. *)
val parts_dir : string -> string

(** One JSONL document: header line then record lines. *)
val jsonl : Json.t -> string list -> string

(** Write a finished run's files (atomically, write-then-rename). *)
val write_run : dir:string -> manifest:Manifest.t -> result:Runner.result -> unit
