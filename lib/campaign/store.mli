(** Campaign run directories and canonical metrics headers.

    A finished run directory holds [manifest.json], [injection.jsonl],
    [events.jsonl], [stats.jsonl], [trace.jsonl] (stitched
    [ferrum.trace.v1] spans, logical clocks only), [trace-wall.jsonl]
    (its non-deterministic wall/CPU/RSS sidecar), optionally
    [vulnmap.jsonl], and a [parts/] directory of per-shard resume
    state.  The header builders here are the single source of campaign
    metrics headers — sequential CLI paths and the sharded runner
    share them, which is what makes sharded output byte-comparable to
    sequential output. *)

module Json = Ferrum_telemetry.Json

val injection_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

val vulnmap_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

val events_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> shards:int -> Json.t

(** [ferrum.stats.v1] header with the shared campaign config fields. *)
val stats_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

(** [ferrum.trace.v1] header with the shared campaign config fields
    (used for both the span document and the wall sidecar). *)
val trace_header :
  benchmark:string -> technique:string -> samples:int -> seed:int64 ->
  all_sites:bool -> fault_bits:int -> Json.t

val injection_file : string
val vulnmap_file : string
val events_file : string

val stats_file : string
(** ["stats.jsonl"] — [ferrum.stats.v1] convergence document *)

val trace_file : string
(** ["trace.jsonl"] — stitched [ferrum.trace.v1] span document *)

val trace_wall_file : string
(** ["trace-wall.jsonl"] — wall/CPU/RSS sidecar (non-deterministic,
    excluded from the manifest's schema map and byte comparisons) *)

(** [parts_dir dir] is the per-shard resume-state directory of run
    directory [dir]. *)
val parts_dir : string -> string

(** One JSONL document: header line then record lines. *)
val jsonl : Json.t -> string list -> string

(** Write a finished run's files (atomically, write-then-rename).
    [extra_trace] is [(span_rows, wall_rows)] from an enclosing tracer
    (e.g. the serve daemon's job spans), prepended to the campaign's
    own rows so the stored trace is the whole stitched story. *)
val write_run :
  ?extra_trace:string list * string list ->
  dir:string ->
  manifest:Manifest.t ->
  result:Runner.result ->
  unit ->
  unit

(** {1 Content-addressed run store ([ferrum.run.v1])}

    Layout under a store root: one immutable directory per run named
    by its {!Manifest.digest}, plus [index.jsonl] — a
    [ferrum.run.v1] JSONL document with one record per published run
    in publication order.  Publishing an already-stored digest is a
    cache hit: the stored bytes win and are served unchanged. *)

val run_kind : string
(** ["ferrum.run.v1"] *)

val run_file : string
(** ["run.json"] — per-entry [ferrum.run.v1] header + one record *)

val dashboard_file : string
(** ["dashboard.html"] *)

(** Field list for {!Ferrum_telemetry.Metrics.validate_lines}. *)
val run_fields : Ferrum_telemetry.Metrics.field list

(** The one [ferrum.run.v1] record of a finished run: digest, config
    and outcome tallies. *)
val run_record : manifest:Manifest.t -> result:Runner.result -> Json.t

(** [ferrum.run.v1] header with caller context appended. *)
val run_header : (string * Json.t) list -> Json.t

(** [entry_dir ~root digest] is the entry directory for [digest]. *)
val entry_dir : root:string -> string -> string

val index_file : string -> string

(** 32 lowercase hex characters — the only strings accepted as entry
    names (URL components are routed through this). *)
val valid_digest : string -> bool

type lookup =
  | Hit of string  (** entry directory; contents verified coherent *)
  | Corrupt of string  (** entry present but fails verification *)
  | Miss

(** Verify-and-locate: the stored manifest must re-digest to the
    entry name and every artifact it promises must exist. *)
val lookup : root:string -> string -> lookup

(** Rebuild [index.jsonl] from the entries on disk, preserving the
    existing index's publication order and appending new digests;
    returns the indexed digests in order. *)
val rebuild_index : root:string -> string list

(** Publish a finished run directory (already containing [run.json])
    into the store under its manifest digest; the source directory is
    consumed (renamed in, EXDEV-safe).  A second publish of the same
    digest is a cache hit: the existing entry wins and the source is
    discarded.  Returns the digest. *)
val publish : root:string -> src:string -> (string, string) result
