(** Replayable run manifests ([ferrum.manifest.v1]).

    One JSON object per run directory: campaign configuration, shard
    map, the schema versions of the files alongside it, and workload
    digests (printed-program MD5 plus golden-run invariants) that gate
    resume — a part file is only trusted if the manifest still matches
    the workload. *)

module F = Ferrum_faultsim.Faultsim

val kind : string
(** ["ferrum.manifest.v1"] *)

type t = {
  benchmark : string;
  technique : string;  (** short name, or "raw" *)
  samples : int;
  seed : int64;
  shards : int;
  fault_bits : int;
  scope : string;  (** "original" | "all-sites" *)
  traced : bool;
  engine : string;  (** execution engine, {!F.engine_name} form *)
  policy : string;  (** sample allocation: "flat" | "adaptive" *)
  rounds : int;  (** adaptive allocation rounds (1 when flat) *)
  target_ci : float;  (** early-stop CI half-width target (0 = none) *)
  shard_map : Shard.range array;
  program_digest : string;  (** MD5 hex of the printed assembly *)
  static_instructions : int;
  golden_steps : int;
  golden_cycles : float;
  eligible_steps : int;
  profile : (string * float) list;
      (** provenance name -> golden cycles (overhead split) *)
  schemas : (string * string) list;  (** file -> schema kind *)
}

(** MD5 hex of the printed assembly — the workload identity a resume
    checks against. *)
val program_digest : Ferrum_asm.Prog.t -> string

val make :
  ?policy:string -> ?rounds:int -> ?target_ci:float -> benchmark:string ->
  technique:string -> samples:int -> seed:int64 -> shards:int ->
  fault_bits:int -> all_sites:bool -> traced:bool ->
  program:Ferrum_asm.Prog.t -> F.target -> t
(** [policy] (default ["flat"]), [rounds] (default [1]) and
    [target_ci] (default [0.]) record the sample-allocation policy.
    Adaptive campaigns must record ["adaptive"], their round count and
    their early-stop target: all three feed {!compatible} (an adaptive
    part file is only meaningful under the allocation schedule that
    produced it) and {!digest}. *)

val to_json : t -> Ferrum_telemetry.Json.t
val of_json : Ferrum_telemetry.Json.t -> (t, string) result

(** [compatible recorded fresh] is true when part files written under
    the [recorded] manifest hold exactly the sample streams the
    [fresh] configuration would produce — same program digest, seed,
    samples, fault bits, scope, traced mode, execution engine,
    allocation policy (policy, rounds, target CI) and shard map.  Engines produce bit-identical streams, but gating on
    the engine keeps a run directory attributable to one execution
    path (and protects resumes if an engine ever changes).  Display
    metadata (benchmark/technique names, profile) is not compared. *)
val compatible : t -> t -> bool

(** Content address of a run: MD5 hex over the canonical manifest
    JSON.  Identical jobs (same program, seed, samples, fault bits,
    scope, engine, shard map, metadata) share a digest, which is what
    keys the content-addressed run store. *)
val digest : t -> string

val file : string
(** ["manifest.json"] *)

val save : dir:string -> t -> unit
val load : dir:string -> (t, string) result
