(** Deterministic campaign sharding.

    A shard is a contiguous range of global sample indices.  The
    per-sample RNG is a pure function of the campaign seed and the
    global index, so concatenating shard outputs in index order is
    byte-identical to the sequential {!Ferrum_faultsim.Faultsim}
    campaign for any shard count. *)

module F = Ferrum_faultsim.Faultsim
module Propagation = Ferrum_telemetry.Propagation
module Json = Ferrum_telemetry.Json

(** Sample range [lo, hi). *)
type range = { lo : int; hi : int }

val range_samples : range -> int

(** Near-equal contiguous split of [samples] into at most [shards]
    ranges (clamped to [1, samples]; empty on [samples <= 0]). *)
val plan : shards:int -> samples:int -> range array

(** One sample's shard output: the serialized record line plus the
    traced-campaign aggregation inputs.  Detection-latency cycles cross
    process boundaries as exact IEEE-754 bit patterns so the parent's
    re-summation in global order is bit-identical to sequential. *)
type sample_out = {
  o_sample : int;
  o_class : F.classification;
  o_static : int;  (** static site, -1 when unreached *)
  o_record : string;  (** serialized record JSON (one line) *)
  o_latency : (int * float) option;  (** Detected runs only *)
  o_escape : Propagation.escape option;  (** Sdc runs only *)
  o_steps : int;  (** logical-clock contribution *)
}

val sample_out_to_json : sample_out -> Json.t
val sample_out_of_json : Json.t -> (sample_out, string) result

(** Run one shard's samples in index order; [traced] selects the
    lockstep-traced (vulnmap) variant.  [assign] maps a global sample
    index to the static site the adaptive allocator aimed it at
    (negative = uniform draw; default). *)
val run_range :
  ?fault_bits:int -> ?assign:(int -> int) -> traced:bool -> seed:int64 ->
  F.target -> range -> on_sample:(sample_out -> unit) -> unit
