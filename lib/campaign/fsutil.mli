(** Small filesystem helpers shared by the campaign modules. *)

(** Create a directory and any missing parents. *)
val mkdir_p : string -> unit

(** Remove a file or directory tree; missing paths are fine. *)
val rm_rf : string -> unit

(** Recursive file/directory copy; destination parents are created. *)
val copy_tree : string -> string -> unit

(** [rename src dst] — [Unix.rename] with an EXDEV fallback: across
    mounts the tree is copied to a temporary sibling of [dst], renamed
    into place, and [src] removed, so the effect at [dst] is atomic
    either way. *)
val rename : string -> string -> unit

(** Atomic whole-file write: temp file, then rename into place. *)
val write_file : string -> string -> unit

(** Read a whole file as bytes. *)
val read_file : string -> string
