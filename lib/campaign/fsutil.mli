(** Small filesystem helpers shared by the campaign modules. *)

(** Create a directory and any missing parents. *)
val mkdir_p : string -> unit

(** Remove a file or directory tree; missing paths are fine. *)
val rm_rf : string -> unit

(** Atomic whole-file write: temp file, then rename into place. *)
val write_file : string -> string -> unit
