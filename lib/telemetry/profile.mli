(** Per-opcode cycle profiling: one fresh run of an image with every
    retired instruction's model cycles attributed to its bare mnemonic
    (the hot-instruction table) and to its provenance (the protection
    overhead split into original / duplicate / check / instrumentation
    cycles). *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine

type row = {
  mnemonic : string;
  klass : Instr.klass;
  count : int;
  cycles : float;
}

type prov_row = { prov : Instr.provenance; p_count : int; p_cycles : float }

type t = {
  outcome : Machine.outcome;
  steps : int;
  total_cycles : float;
  rows : row list;  (** cycles descending, then mnemonic *)
  by_provenance : prov_row list;
      (** Original, Dup, Check, Instrumentation order *)
}

val prov_name : Instr.provenance -> string

(** Profile one fresh run.  Deterministic for a given image. *)
val run : ?fuel:int -> Machine.image -> t

(** Canonical JSON object: outcome, steps, total cycles, the hot-opcode
    table and the provenance overhead split; byte-stable per image. *)
val to_json : t -> Json.t

(** Hot-instruction table; [~top] truncates (0 = all rows). *)
val pp : ?top:int -> Format.formatter -> t -> unit

(** Provenance (overhead-attribution) table; empty provenances are
    skipped. *)
val pp_provenance : Format.formatter -> t -> unit

(** {1 Predecoded-dispatch statistics}

    Coverage of {!Ferrum_machine.Predecode}'s threaded dispatcher over
    one image: static fused superinstruction sites, the share of a
    golden run's steps the unobserved fast path retires, and a dynamic
    histogram of the superinstruction patterns that actually fire. *)

type dispatch = {
  d_sites : int;  (** static code length *)
  d_fused_sites : int;  (** static fused pair sites *)
  d_steps : int;  (** golden-run dynamic steps *)
  d_fast_steps : int;  (** steps retired by the unobserved fast path *)
  d_fused_steps : int;  (** steps retired inside fused superinstructions *)
  d_patterns : (string * int) list;
      (** dynamic pairs fired per pattern, descending *)
}

(** One unobserved fast-path run (counters) plus one observed replay
    (dynamic pattern histogram).  Deterministic for a given image. *)
val dispatch : ?fuel:int -> Machine.image -> dispatch

val dispatch_to_json : dispatch -> Json.t
val pp_dispatch : Format.formatter -> dispatch -> unit
