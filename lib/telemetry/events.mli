(** Typed campaign event stream ([ferrum.events.v1]).

    Campaign orchestration emits these as flat JSONL — lifecycle events
    plus progress heartbeats carrying outcome tallies and an ETA on a
    deterministic logical clock (cumulative simulated steps, never
    wall-clock), so an event log is byte-reproducible per seed and
    validates under the same {!Metrics} machinery as every other
    schema. *)

val kind : string
(** ["ferrum.events.v1"] *)

(** {1 Outcome tallies} *)

type tally = {
  benign : int;
  sdc : int;
  detected : int;
  crash : int;
  timeout : int;
}

val zero_tally : tally
val tally_total : tally -> int

(** Component-wise sum. *)
val tally_add : tally -> tally -> tally

(** Bump the component named by a classification name
    ({!Ferrum_faultsim} [classification_name]); [None] on unknown
    names. *)
val tally_of_name : tally -> string -> tally option

(** {1 Events} *)

type body =
  | Campaign_started of { shards : int; samples : int }
  | Shard_started of { lo : int; hi : int }  (** sample range [lo, hi) *)
  | Progress of {
      done_ : int;
      total : int;
      tally : tally;
      clock : int;
      spent : int;
          (** samples of the global budget spent as of this heartbeat
              (prior rounds plus this shard's progress); -1 when the
              emitter does not track a budget *)
      budget : int;  (** global campaign sample budget; -1 if unknown *)
      hw : float;
          (** live Wilson 95% half-width of the campaign SDC estimate *)
    }
  | Shard_finished of { done_ : int; total : int; tally : tally; clock : int }
  | Shard_retry of { reason : string }
      (** the previous attempt of this shard died; a fresh attempt
          follows *)
  | Campaign_finished of { total : int; tally : tally; clock : int }

type t = {
  seq : int;  (** 0-based position in the merged log *)
  shard : int;  (** owning shard, -1 for campaign-level events *)
  attempt : int;  (** 0-based retry attempt of the owning shard *)
  body : body;
}

val body_name : body -> string

(** Deterministic ETA on the logical clock: clock units still to run,
    extrapolated from the per-sample rate so far.  Clamped against the
    zero-rate edge (a shard finishing within one heartbeat interval):
    with work remaining but no observed rate ([done_ <= 0] or
    [clock <= 0]) it assumes one clock unit per remaining sample, and
    with nothing remaining it is exactly 0. *)
val eta : done_:int -> total:int -> clock:int -> float

(** Flat JSON object with every schema field present (unused scalars
    -1, unused tallies 0, unused detail ""). *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** {1 Schema} *)

(** Field list for {!Metrics.validate_lines}. *)
val fields : Metrics.field list

(** Header line for an events file, with caller context appended. *)
val header : (string * Json.t) list -> Json.t

(** {1 Replay}

    Re-derive the campaign outcome from record lines alone (header
    excluded) and cross-check internal consistency: contiguous
    sequence numbers, [campaign_started] first, [campaign_finished]
    last, per-shard final tallies and clocks summing to the campaign
    totals.  Returns the final (tally, clock). *)
val replay : string list -> (tally * int, string) result
