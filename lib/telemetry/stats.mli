(** Statistical confidence layer: exact streaming tallies, honest
    binomial interval estimators, and the [ferrum.stats.v1]
    convergence stream emitted alongside injection and
    vulnerability-map records.

    Campaign outcomes are Bernoulli trials; everything here is exact
    integer bookkeeping plus closed-form (Wilson) or posterior-quantile
    (Jeffreys) intervals, so merged shard statistics are byte-identical
    to sequential ones. *)

(** {1 Tallies} *)

(** Exact binomial tally: [n] trials, [k] hits.  Mergeable — the merge
    of per-shard tallies equals the tally of the concatenated sample
    stream, in any grouping (associative, commutative). *)
type tally = { n : int; k : int }

val zero : tally

(** [make ~n ~k] checks [0 <= k <= n] and raises [Invalid_argument]
    otherwise. *)
val make : n:int -> k:int -> tally

(** [add t hit] records one more trial. *)
val add : tally -> bool -> tally

val merge : tally -> tally -> tally

(** Point estimate [k/n]; [0.] when [n = 0]. *)
val p_hat : tally -> float

(** {1 Interval estimators} *)

type interval = { lo : float; hi : float }

val half_width : interval -> float

(** Wilson score interval at critical value [z] (default 1.96, i.e.
    95%).  Never degenerate: [n = 0] yields [[0, 1]], and [k = 0] or
    [k = n] still have nonzero width — unlike the normal approximation
    these replace. *)
val wilson : ?z:float -> tally -> interval

(** Jeffreys interval: equal-tailed [coverage] (default 0.95) credible
    interval of the Beta(k + ½, n − k + ½) posterior, with the
    standard endpoint convention (lower bound 0 at [k = 0], upper
    bound 1 at [k = n]). *)
val jeffreys : ?coverage:float -> tally -> interval

(** [betai a b x] is the regularized incomplete beta function
    I_x(a, b) — exposed for tests. *)
val betai : float -> float -> float -> float

(** {1 Schema: ferrum.stats.v1} *)

val kind : string

(** One flat record of the stats stream.  [row] is ["trace"] (a
    campaign-level convergence point), ["round"] (an adaptive round
    boundary), ["site"] (final per-static-site estimate) or
    ["campaign"] (the final aggregate).  [index] is the static site
    index for site rows, -1 otherwise.  [lo]/[hi]/[hw] are the Wilson
    bounds and half-width; [jlo]/[jhi] the Jeffreys bounds. *)
type row = {
  row : string;
  index : int;
  round : int;
  spent : int;
  budget : int;
  samples : int;
  sdc : int;
  p : float;
  lo : float;
  hi : float;
  hw : float;
  jlo : float;
  jhi : float;
}

(** Build a row (both interval families computed) from a tally. *)
val row_of :
  row:string -> index:int -> round:int -> spent:int -> budget:int ->
  tally -> row

val row_json : row -> Json.t
val row_of_json : Json.t -> (row, string) result
val row_of_string : string -> (row, string) result

(** Field specs for [Metrics.validate_lines]. *)
val fields : Metrics.field list

(** Header line for a stats JSONL document. *)
val header : (string * Json.t) list -> Json.t

(** {1 Convergence streams} *)

(** Folds classified samples in global campaign order: campaign-level
    convergence trace every [stride] samples, per-site tallies for the
    final listing, round boundaries for adaptive campaigns. *)
type stream

(** [create ?stride ~budget ()] — [stride] defaults to [budget/64]
    (at least 1). *)
val create : ?stride:int -> budget:int -> unit -> stream

(** [observe s ~site ~sdc] folds one classified sample; [site] is the
    static site index (negative when unknown). *)
val observe : stream -> site:int -> sdc:bool -> unit

(** Close an adaptive allocation round: emits a "round" row and
    increments the round counter. *)
val round_end : stream -> unit

val spent : stream -> int
val total : stream -> tally
val site_tally : stream -> int -> tally

(** All rows in canonical order: the chronological trace (trace and
    round rows), then site rows ascending by static index, then the
    final campaign row. *)
val rows : stream -> row list

(** [rows], serialized as canonical JSON lines. *)
val lines : stream -> string list
