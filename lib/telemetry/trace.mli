(** Distributed traces: [ferrum.trace.v1].

    A campaign yields one stitched trace: spans with deterministic
    dotted-path ids and parent links, crossing process boundaries by
    fork (the worker pool serializes closed spans back over its pipe)
    and by traceparent-style HTTP headers (the serve daemon).

    Dual clocks keep identity tests exact: span rows carry only the
    deterministic logical clock and integer counters; wall intervals,
    CPU deltas and peak RSS go to a separate sidecar document of wall
    rows under the same schema. *)

val kind : string
(** ["ferrum.trace.v1"] *)

(** {1 Ids and contexts} *)

(** Deterministic 16-hex trace id from the campaign seed and a caller
    salt (manifest digest, spec text, ...). *)
val derive_id : seed:int64 -> string -> string

(** Everything a child process needs to continue a trace: trace id,
    parent link, and its pre-minted root span id. *)
type ctx = { c_trace : string; c_parent : string; c_span : string }

(** Mint a context by hand: the child's root span id is
    [parent ^ "." ^ seg] (or [seg] when parent is [""]). *)
val ctx_make : trace:string -> parent:string -> seg:string -> ctx

(** [00-<trace>-<span>-01] (W3C-shaped; our ids never contain '-'). *)
val to_traceparent : trace:string -> span:string -> string

(** Parse a traceparent header into (trace id, span id); [None] on
    anything malformed. *)
val of_traceparent : string -> (string * string) option

(** {1 Rows} *)

type span = {
  sp_id : string;
  sp_parent : string;  (** [""] for a trace root *)
  sp_name : string;
  sp_proc : string;  (** process label, e.g. "runner", "worker-3" *)
  sp_l_start : int;  (** logical clock at open (deterministic) *)
  sp_l_end : int;
  sp_counters : (string * int) list;  (** insertion order *)
}

type wall = {
  wl_span : string;
  wl_name : string;
  wl_proc : string;
  wl_start : float;  (** [Unix.gettimeofday] at open *)
  wl_end : float;
  wl_cpu_user : float;  (** CPU seconds over the span *)
  wl_cpu_sys : float;
  wl_maxrss_kb : int;  (** peak RSS at close; [-1] when unavailable *)
}

(** {1 Recorder} *)

type recorder

(** A root recorder: top-level spans get ids "0", "1", ... with empty
    parents. *)
val create : trace:string -> proc:string -> unit -> recorder

(** A recorder continuing a received context: its first top-level span
    is the context's pre-minted span id, parented under the sender. *)
val scoped : ctx -> proc:string -> recorder

val trace_id : recorder -> string

(** Current logical clock; advanced only by {!advance}. *)
val logical : recorder -> int

(** Advance the logical clock (e.g. by an injected run's steps). *)
val advance : recorder -> int -> unit

(** Run [f] inside a named span; closes it even if [f] raises.
    [w_start] backdates the wall interval (e.g. queue wait measured
    from submission time). *)
val span : ?w_start:float -> recorder -> string -> (unit -> 'a) -> 'a

(** Attach a counter to the innermost open span (dropped when no span
    is open — internal instrumentation only). *)
val counter : recorder -> string -> int -> unit

(** Mint a child-process context under the innermost open span.  [seg]
    must be a caller-unique non-numeric [0-9a-z]+ segment ("s5",
    "j12") so minted ids never collide with numbered children. *)
val ctx_for : recorder -> seg:string -> ctx

(** Merge serialized rows a child process sent back; kept verbatim, in
    absorption order, after this recorder's own rows. *)
val absorb : recorder -> span_lines:string list -> wall_lines:string list -> unit

(** Closed span rows as canonical JSONL record lines: own spans in
    start order, then absorbed rows.  Deterministic for a given seed.
    Open spans are not reported. *)
val span_lines : recorder -> string list

(** Wall sidecar record lines (non-deterministic; never byte-compared). *)
val wall_lines : recorder -> string list

(** {1 Serialization} *)

val span_to_json : trace:string -> span -> Json.t
val wall_to_json : trace:string -> wall -> Json.t

(** Parse one row; returns its trace id alongside the payload. *)
val span_of_json : Json.t -> (string * span, string) result

val wall_of_json : Json.t -> (string * wall, string) result

type row = Span_row of string * span | Wall_row of string * wall

val row_of_json : Json.t -> (row, string) result

(** Parse record lines (header excluded); errors carry the document
    line number (records start at line 2). *)
val rows_of_lines : string list -> (row list, string) result

val spans_of_rows : row list -> span list
val walls_of_rows : row list -> wall list

(** {1 Schema} *)

(** Field list for {!Metrics.validate_lines}; one list validates both
    row kinds (discriminator and ids required, the rest optional). *)
val fields : Metrics.field list

(** [ferrum.trace.v1] header with caller context appended. *)
val header : (string * Json.t) list -> Json.t

(** {1 Stitching validation} *)

(** Check record lines form one coherent trace: a single trace id,
    unique span ids, exactly one root, and every parent chain
    resolving to it without cycles.  Returns the root span id. *)
val validate_stitched : string list -> (string, string) result

(** {1 Exporters} *)

(** Chrome trace-event JSON (Perfetto-loadable): one "ph":"X" event
    per span; wall microseconds when the sidecar covers every span,
    logical steps otherwise. *)
val perfetto : spans:span list -> walls:wall list -> Json.t

(** Folded flamegraph stacks ("a;b;c <self-weight>"), sorted, weights
    on the same clock selection as {!perfetto}. *)
val folded : spans:span list -> walls:wall list -> string list
