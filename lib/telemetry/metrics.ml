(* Streaming JSONL metrics files.

   A metrics file is one JSON object per line: a header line first
   (schema name + version and free-form context fields — the only place
   wall-clock values may appear, so that the record stream itself is
   bit-reproducible for a given seed), then one record per event.

   [field] specs give the subsystem enough schema to validate files it
   wrote — the `ferrum metrics` subcommand and the smoke check both run
   [validate_lines] over a freshly written campaign. *)

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)
(* ------------------------------------------------------------------ *)

type sink = { emit : string -> unit; close : unit -> unit }

let channel_sink ?(close = false) oc =
  {
    emit =
      (fun line ->
        output_string oc line;
        output_char oc '\n');
    close = (fun () -> if close then close_out oc else flush oc);
  }

let file_sink path = channel_sink ~close:true (open_out path)

let buffer_sink buf =
  {
    emit =
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n');
    close = ignore;
  }

let emit sink json = sink.emit (Json.to_string json)

let close sink = sink.close ()

(* Header line: schema identification first, then caller context.
   Callers keep wall-clock values (if any) here and out of records. *)
let header ~kind extra =
  Json.Obj
    (("schema", Json.Str kind)
    :: ("version", Json.Int schema_version)
    :: extra)

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)
(* ------------------------------------------------------------------ *)

type field_kind = F_int | F_float | F_string
type field = { fname : string; kind : field_kind; required : bool }

let field ?(required = true) fname kind = { fname; kind; required }

let kind_name = function
  | F_int -> "int"
  | F_float -> "float"
  | F_string -> "string"

let kind_matches kind (j : Json.t) =
  match (kind, j) with
  | F_int, Json.Int _ -> true
  | F_float, (Json.Float _ | Json.Int _) -> true (* integral floats *)
  | F_string, Json.Str _ -> true
  | _ -> false

(* Check one object against a field list: required fields present, all
   typed fields well-typed.  Unknown fields are allowed (forward
   compatibility). *)
let validate_fields fields (j : Json.t) =
  match j with
  | Json.Obj _ ->
    let problem =
      List.find_map
        (fun f ->
          match Json.member f.fname j with
          | None ->
            if f.required then Some (Fmt.str "missing field %S" f.fname)
            else None
          | Some v ->
            if kind_matches f.kind v then None
            else
              Some
                (Fmt.str "field %S is not a %s" f.fname (kind_name f.kind)))
        fields
    in
    (match problem with Some p -> Error p | None -> Ok ())
  | _ -> Error "not a JSON object"

(* Validate a whole JSONL document: a header of [kind], then records
   matching [record_fields].  Returns the number of records. *)
let validate_lines ~kind ~record_fields lines =
  match lines with
  | [] -> Error "empty metrics file"
  | hdr :: records ->
    let check_header =
      match Json.of_string_opt hdr with
      | None -> Error "line 1: header line is not valid JSON"
      | Some j -> (
        match (Json.member "schema" j, Json.member "version" j) with
        | Some (Json.Str k), Some (Json.Int v) ->
          if k <> kind then
            Error (Fmt.str "line 1: schema is %S, expected %S" k kind)
          else if v <> schema_version then
            Error
              (Fmt.str "line 1: schema version %d, expected %d" v
                 schema_version)
          else Ok ()
        | _ -> Error "line 1: header lacks schema/version fields")
    in
    Result.bind check_header (fun () ->
        let rec go n i = function
          | [] -> Ok n
          | line :: rest -> (
            match Json.of_string_opt line with
            | None -> Error (Fmt.str "line %d is not valid JSON" i)
            | Some j -> (
              match validate_fields record_fields j with
              | Error e -> Error (Fmt.str "line %d: %s" i e)
              | Ok () -> go (n + 1) (i + 1) rest))
        in
        go 0 2 records)

(* Split a file's contents into non-empty lines. *)
let lines_of_string s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let read_lines path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  lines_of_string s
