(* Pipeline spans: timed, nested sections of work with counters.

   A recorder collects spans as the compilation pipeline runs (clite
   parse -> lower -> compile -> protect -> peephole -> load), each with
   a duration from an injectable clock and integer counters attached by
   the stage (instructions duplicated, checkers inserted, spare
   registers found, stack requisitions, ...).

   The clock defaults to [Unix.gettimeofday]; tests inject a fake
   monotonic counter so span output is deterministic, and the default
   pretty-printer omits durations for the same reason ([~timings:true]
   includes them). *)

type span = {
  name : string;
  depth : int; (* nesting level; top-level spans are 0 *)
  order : int; (* start order, 0-based, over the whole recorder *)
  duration : float; (* seconds under the recorder's clock *)
  counters : (string * int) list; (* insertion order *)
}

type open_span = {
  o_name : string;
  o_depth : int;
  o_order : int;
  o_start : float;
  mutable o_counters : (string * int) list; (* newest first *)
}

type recorder = {
  clock : unit -> float;
  mutable stack : open_span list; (* innermost first *)
  mutable closed : span list; (* newest first *)
  mutable started : int;
  mutable stray : (string * int) list; (* counters with no open span, newest first *)
  mutable stray_warned : bool;
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; stack = []; closed = []; started = 0; stray = []; stray_warned = false }

let enter r name =
  let o =
    {
      o_name = name;
      o_depth = List.length r.stack;
      o_order = r.started;
      o_start = r.clock ();
      o_counters = [];
    }
  in
  r.started <- r.started + 1;
  r.stack <- o :: r.stack;
  o

let exit_ r o =
  (match r.stack with
  | top :: rest when top == o -> r.stack <- rest
  | _ -> invalid_arg "Span: exited a span that is not innermost");
  r.closed <-
    {
      name = o.o_name;
      depth = o.o_depth;
      order = o.o_order;
      duration = r.clock () -. o.o_start;
      counters = List.rev o.o_counters;
    }
    :: r.closed

(* Run [f] inside a span; the span closes even if [f] raises. *)
let span r name f =
  let o = enter r name in
  match f () with
  | v ->
    exit_ r o;
    v
  | exception e ->
    exit_ r o;
    raise e

(* Attach a counter to the innermost open span.  Counters recorded
   with no span open are not lost: they collect on an implicit root
   span (reported last by {!spans}), and the first such stray warns
   once per recorder — instrumented code stays callable without an
   active section, but the data survives and the drift is visible. *)
let counter r name value =
  match r.stack with
  | o :: _ -> o.o_counters <- (name, value) :: o.o_counters
  | [] ->
    if not r.stray_warned then begin
      r.stray_warned <- true;
      Fmt.epr
        "[span] counter %S recorded with no open span; attaching to an \
         implicit root@."
        name
    end;
    r.stray <- (name, value) :: r.stray

(* Closed spans in start order, then the implicit root carrying stray
   counters (if any).  Open spans are not reported. *)
let spans r =
  let closed =
    List.sort (fun a b -> compare a.order b.order) (List.rev r.closed)
  in
  match r.stray with
  | [] -> closed
  | stray ->
    closed
    @ [
        {
          name = "<root>";
          depth = 0;
          order = r.started;
          duration = 0.0;
          counters = List.rev stray;
        };
      ]

let pp_counters ppf = function
  | [] -> ()
  | cs ->
    Fmt.pf ppf "  [%a]"
      Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s=%d" k v))
      cs

let pp ?(timings = false) ppf r =
  List.iter
    (fun s ->
      Fmt.pf ppf "%s%-*s" (String.make (2 * s.depth) ' ')
        (max 1 (24 - (2 * s.depth)))
        s.name;
      if timings then Fmt.pf ppf " %8.3f ms" (s.duration *. 1e3);
      Fmt.pf ppf "%a@." pp_counters s.counters)
    (spans r)
