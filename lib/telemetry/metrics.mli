(** Streaming JSONL metrics files: one header line (schema name +
    version + caller context — the only place wall-clock values may
    appear), then one JSON record per event, bit-reproducible for a
    given campaign seed.  Includes enough schema machinery to validate
    files the subsystem wrote itself. *)

val schema_version : int

(** {1 Sinks} *)

type sink

(** Emit lines to a channel; flushes on [close] (closes the channel
    with [~close:true]). *)
val channel_sink : ?close:bool -> out_channel -> sink

(** Truncate/create [path] and close it on [close]. *)
val file_sink : string -> sink

val buffer_sink : Buffer.t -> sink

(** Write one JSON value as one line. *)
val emit : sink -> Json.t -> unit

val close : sink -> unit

(** Header line: [schema]/[version] fields followed by caller context
    (benchmark, technique, seed, ...). *)
val header : kind:string -> (string * Json.t) list -> Json.t

(** {1 Validation} *)

type field_kind = F_int | F_float | F_string
type field

val field : ?required:bool -> string -> field_kind -> field

(** Check one object: required fields present and well-typed; unknown
    fields allowed. *)
val validate_fields : field list -> Json.t -> (unit, string) result

(** Validate a whole JSONL document (header of [kind], then records);
    returns the record count. *)
val validate_lines :
  kind:string -> record_fields:field list -> string list ->
  (int, string) result

(** Non-empty lines of a string / file. *)
val lines_of_string : string -> string list

val read_lines : string -> string list
