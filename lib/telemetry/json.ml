(* Minimal JSON: just enough for the telemetry subsystem's JSONL
   emission and for validating files it wrote itself.

   Serialisation is canonical — object keys keep insertion order,
   numbers print through a fixed format — so that two campaigns with the
   same seed produce byte-identical metrics files (an acceptance
   criterion of the observability layer; no dependence on hash order or
   locale). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialisation.                                                      *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Fixed float format: integral values render as "x.0", everything else
   through %.12g (12 significant digits cover the cycle model's sums
   exactly while staying locale-independent). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; accepts what [to_string] emits plus      *)
(* arbitrary whitespace).                                               *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %c at %d, got %c" ch c.pos x
  | None -> fail "expected %c at %d, got end of input" ch c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail "truncated \\u escape";
        let hex = String.sub c.text c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail "bad \\u escape %s" hex
        in
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else fail "non-ASCII \\u escape unsupported"
      | _ -> fail "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S at %d" s start)

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.text
    && String.sub c.text c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail "bad literal at %d" c.pos

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string_body c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected , or } at %d" c.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail "expected , or ] at %d" c.pos
      in
      Arr (elements [])
    end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected %c at %d" ch c.pos

let of_string s =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing input at %d" c.pos;
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
