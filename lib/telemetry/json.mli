(** Minimal JSON for the telemetry subsystem: canonical serialisation
    (insertion-ordered object keys, fixed number formats) so same-seed
    campaigns write byte-identical JSONL, plus a parser sufficient to
    validate files the subsystem wrote itself. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact, canonical rendering (no whitespace). *)
val to_string : t -> string

exception Parse_error of string

(** Parse one JSON value; raises {!Parse_error} on malformed or
    trailing input. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option
