(* Statistical confidence layer: `ferrum.stats.v1`.

   Campaign numbers are binomial estimates, and the paper's flat-1000
   protocol never says how sure they are.  This module makes the
   uncertainty explicit: exact streaming tallies (mergeable, so shards
   can be combined in any grouping), Wilson and Jeffreys interval
   estimators that stay honest at p = 0, p = 1 and n = 0 where the
   normal approximation collapses to a zero-width interval, and a
   convergence stream (CI half-width vs. samples spent) serialized as
   a schema-versioned JSONL document alongside the injection and
   vulnerability-map records. *)

(* ------------------------------------------------------------------ *)
(* Tallies.                                                            *)
(* ------------------------------------------------------------------ *)

type tally = { n : int; k : int }

let zero = { n = 0; k = 0 }
let make ~n ~k =
  if n < 0 || k < 0 || k > n then invalid_arg "Stats.make: need 0 <= k <= n";
  { n; k }

let add t hit = { n = t.n + 1; k = (if hit then t.k + 1 else t.k) }
let merge a b = { n = a.n + b.n; k = a.k + b.k }
let p_hat t = if t.n = 0 then 0.0 else float_of_int t.k /. float_of_int t.n

(* ------------------------------------------------------------------ *)
(* Interval estimators.                                                *)
(* ------------------------------------------------------------------ *)

type interval = { lo : float; hi : float }

let half_width i = (i.hi -. i.lo) /. 2.0

(* Wilson score interval.  Unlike the Wald/normal approximation it
   never collapses: n = 0 is total ignorance ([0, 1]), and k = 0 or
   k = n still admit the probability mass the sample size cannot rule
   out. *)
let wilson ?(z = 1.96) t =
  if t.n = 0 then { lo = 0.0; hi = 1.0 }
  else begin
    let n = float_of_int t.n in
    let p = p_hat t in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let margin =
      z /. denom
      *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    { lo = Float.max 0.0 (center -. margin);
      hi = Float.min 1.0 (center +. margin) }
  end

(* Log-gamma (Lanczos, g = 7): enough precision for interval bounds
   rendered to a handful of decimals.  Beta posteriors only ever call
   it with positive arguments >= 1/2, so no reflection is needed. *)
let log_gamma x =
  let c =
    [| 676.5203681218851; -1259.1392167224028; 771.32342877765313;
       -176.61502916214059; 12.507343278686905; -0.13857109526572012;
       9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  let x = x -. 1.0 in
  let a = ref 0.99999999999980993 in
  Array.iteri
    (fun i ci -> a := !a +. (ci /. (x +. float_of_int i +. 1.0)))
    c;
  let t = x +. 7.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. (((x +. 0.5) *. log t) -. t) +. log !a

(* Continued fraction for the regularized incomplete beta function
   (modified Lentz), valid for x < (a+1)/(a+b+2). *)
let betacf a b x =
  let tiny = 1e-30 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to 200 do
       let fm = float_of_int m in
       let m2 = 2.0 *. fm in
       let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 1e-12 then raise Exit
     done
   with Exit -> ());
  !h

(* Regularized incomplete beta I_x(a, b). *)
let betai a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let lbeta =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log (1.0 -. x))
    in
    let front = exp lbeta in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. (front *. betacf b a (1.0 -. x) /. b)
  end

(* Quantile of Beta(a, b) by bisection on the (monotone) CDF. *)
let beta_quantile a b q =
  if q <= 0.0 then 0.0
  else if q >= 1.0 then 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if betai a b mid < q then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* Jeffreys interval: equal-tailed credible interval of the
   Beta(k + 1/2, n - k + 1/2) posterior, with the standard endpoint
   convention (lower bound 0 when k = 0, upper bound 1 when k = n). *)
let jeffreys ?(coverage = 0.95) t =
  if t.n = 0 then { lo = 0.0; hi = 1.0 }
  else begin
    let a = float_of_int t.k +. 0.5 in
    let b = float_of_int (t.n - t.k) +. 0.5 in
    let tail = (1.0 -. coverage) /. 2.0 in
    let lo = if t.k = 0 then 0.0 else beta_quantile a b tail in
    let hi = if t.k = t.n then 1.0 else beta_quantile a b (1.0 -. tail) in
    { lo; hi }
  end

(* ------------------------------------------------------------------ *)
(* Schema: ferrum.stats.v1.                                            *)
(* ------------------------------------------------------------------ *)

let kind = "ferrum.stats.v1"

(* Every row serializes every field, like the event schema: "trace"
   rows are convergence points of the campaign-level SDC estimate,
   "round" rows close an adaptive allocation round, "site" rows are
   the final per-static-site estimates, and the single "campaign" row
   is the final aggregate.  Unused scalars are -1. *)
type row = {
  row : string;
  index : int;
  round : int;
  spent : int;
  budget : int;
  samples : int;
  sdc : int;
  p : float;
  lo : float;
  hi : float;
  hw : float;
  jlo : float;
  jhi : float;
}

let row_of ~row ~index ~round ~spent ~budget t =
  let w = wilson t and j = jeffreys t in
  {
    row;
    index;
    round;
    spent;
    budget;
    samples = t.n;
    sdc = t.k;
    p = p_hat t;
    lo = w.lo;
    hi = w.hi;
    hw = half_width w;
    jlo = j.lo;
    jhi = j.hi;
  }

let row_json (r : row) : Json.t =
  Json.Obj
    [
      ("row", Json.Str r.row);
      ("index", Json.Int r.index);
      ("round", Json.Int r.round);
      ("spent", Json.Int r.spent);
      ("budget", Json.Int r.budget);
      ("samples", Json.Int r.samples);
      ("sdc", Json.Int r.sdc);
      ("p", Json.Float r.p);
      ("lo", Json.Float r.lo);
      ("hi", Json.Float r.hi);
      ("hw", Json.Float r.hw);
      ("jlo", Json.Float r.jlo);
      ("jhi", Json.Float r.jhi);
    ]

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | Some _ -> Error (Fmt.str "field %S is not an int" name)
  | None -> Error (Fmt.str "missing field %S" name)

let float_member name j =
  match Json.member name j with
  | Some (Json.Float v) -> Ok v
  | Some (Json.Int v) -> Ok (float_of_int v)
  | Some _ -> Error (Fmt.str "field %S is not a number" name)
  | None -> Error (Fmt.str "missing field %S" name)

let ( let* ) = Result.bind

let row_of_json (j : Json.t) : (row, string) result =
  let* row =
    match Json.member "row" j with
    | Some (Json.Str v) -> Ok v
    | Some _ -> Error "field \"row\" is not a string"
    | None -> Error "missing field \"row\""
  in
  let* index = int_member "index" j in
  let* round = int_member "round" j in
  let* spent = int_member "spent" j in
  let* budget = int_member "budget" j in
  let* samples = int_member "samples" j in
  let* sdc = int_member "sdc" j in
  let* p = float_member "p" j in
  let* lo = float_member "lo" j in
  let* hi = float_member "hi" j in
  let* hw = float_member "hw" j in
  let* jlo = float_member "jlo" j in
  let* jhi = float_member "jhi" j in
  Ok { row; index; round; spent; budget; samples; sdc; p; lo; hi; hw; jlo; jhi }

let row_of_string line =
  match Json.of_string_opt line with
  | None -> Error "not valid JSON"
  | Some j -> row_of_json j

let fields =
  Metrics.
    [
      field "row" F_string;
      field "index" F_int;
      field "round" F_int;
      field "spent" F_int;
      field "budget" F_int;
      field "samples" F_int;
      field "sdc" F_int;
      field "p" F_float;
      field "lo" F_float;
      field "hi" F_float;
      field "hw" F_float;
      field "jlo" F_float;
      field "jhi" F_float;
    ]

let header extra = Metrics.header ~kind extra

(* ------------------------------------------------------------------ *)
(* Convergence streams.                                                *)
(* ------------------------------------------------------------------ *)

(* A stream folds classified samples in campaign order and records the
   campaign-level SDC estimate every [stride] samples — the
   convergence trace the dashboard plots as CI bands — plus per-site
   tallies for the final listing rows.  Observation order is the
   global sample order, so a stream built from merged shard output is
   byte-identical to the sequential one. *)
type stream = {
  stride : int;
  s_budget : int;
  mutable s_round : int;
  mutable s_spent : int;
  mutable total : tally;
  sites : (int, tally) Hashtbl.t;
  mutable rev_trace : row list;
}

let create ?stride ~budget () =
  let stride =
    match stride with Some s -> max 1 s | None -> max 1 (budget / 64)
  in
  {
    stride;
    s_budget = budget;
    s_round = 0;
    s_spent = 0;
    total = zero;
    sites = Hashtbl.create 64;
    rev_trace = [];
  }

let observe s ~site ~sdc =
  s.total <- add s.total sdc;
  if site >= 0 then begin
    let t = Option.value ~default:zero (Hashtbl.find_opt s.sites site) in
    Hashtbl.replace s.sites site (add t sdc)
  end;
  s.s_spent <- s.s_spent + 1;
  if s.s_spent mod s.stride = 0 || s.s_spent = s.s_budget then
    s.rev_trace <-
      row_of ~row:"trace" ~index:(-1) ~round:s.s_round ~spent:s.s_spent
        ~budget:s.s_budget s.total
      :: s.rev_trace

let round_end s =
  s.rev_trace <-
    row_of ~row:"round" ~index:(-1) ~round:s.s_round ~spent:s.s_spent
      ~budget:s.s_budget s.total
    :: s.rev_trace;
  s.s_round <- s.s_round + 1

let spent s = s.s_spent
let total s = s.total

let site_tally s site =
  Option.value ~default:zero (Hashtbl.find_opt s.sites site)

let rows s =
  let site_rows =
    Hashtbl.fold (fun site t acc -> (site, t) :: acc) s.sites []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (site, t) ->
           row_of ~row:"site" ~index:site ~round:s.s_round ~spent:s.s_spent
             ~budget:s.s_budget t)
  in
  List.rev s.rev_trace
  @ site_rows
  @ [
      row_of ~row:"campaign" ~index:(-1) ~round:s.s_round ~spent:s.s_spent
        ~budget:s.s_budget s.total;
    ]

let lines s = List.map (fun r -> Json.to_string (row_json r)) (rows s)
