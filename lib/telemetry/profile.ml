(* Per-opcode cycle profiling.

   Runs an image once with an observer that attributes every retired
   instruction's model cycles to (a) its bare mnemonic and (b) its
   provenance.  The mnemonic table answers "where do the cycles go?"
   (the hot-instruction view behind the ROADMAP's make-a-hot-path-faster
   goal); the provenance split breaks a protected program's overhead
   into original / duplicate / check / instrumentation (requisition
   push-pop and batch plumbing) cycles — the decomposition the paper's
   Fig. 11 discussion reasons about. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Predecode = Ferrum_machine.Predecode

type row = {
  mnemonic : string;
  klass : Instr.klass;
  count : int;
  cycles : float;
}

type prov_row = { prov : Instr.provenance; p_count : int; p_cycles : float }

type t = {
  outcome : Machine.outcome;
  steps : int;
  total_cycles : float;
  rows : row list; (* cycles descending, then mnemonic *)
  by_provenance : prov_row list; (* Original, Dup, Check, Instrumentation *)
}

let all_provs =
  [ Instr.Original; Instr.Dup; Instr.Check; Instr.Instrumentation ]

let prov_name = function
  | Instr.Original -> "original"
  | Instr.Dup -> "duplicate"
  | Instr.Check -> "check"
  | Instr.Instrumentation -> "instrumentation"

let prov_index = function
  | Instr.Original -> 0
  | Instr.Dup -> 1
  | Instr.Check -> 2
  | Instr.Instrumentation -> 3

(* Profile one fresh run of [img].  Deterministic: the simulator and the
   cost model are, and rows come out in a total order. *)
let run ?fuel (img : Machine.image) : t =
  let tbl : (string, Instr.klass * int ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let prov_count = Array.make 4 0 in
  let prov_cycles = Array.make 4 0.0 in
  let on_step (_st : Machine.state) idx =
    let ins = img.Machine.code.(idx) in
    let cost = img.Machine.costs.(idx) in
    let m = Instr.mnemonic ins.Instr.op in
    (match Hashtbl.find_opt tbl m with
    | Some (_, count, cycles) ->
      incr count;
      cycles := !cycles +. cost
    | None -> Hashtbl.add tbl m (Instr.klass ins.Instr.op, ref 1, ref cost));
    let p = prov_index ins.Instr.prov in
    prov_count.(p) <- prov_count.(p) + 1;
    prov_cycles.(p) <- prov_cycles.(p) +. cost
  in
  let outcome, st = Machine.run_fresh ?fuel ~on_step img in
  let rows =
    Hashtbl.fold
      (fun mnemonic (klass, count, cycles) acc ->
        { mnemonic; klass; count = !count; cycles = !cycles } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match compare b.cycles a.cycles with
           | 0 -> compare a.mnemonic b.mnemonic
           | c -> c)
  in
  let by_provenance =
    List.map
      (fun prov ->
        let i = prov_index prov in
        { prov; p_count = prov_count.(i); p_cycles = prov_cycles.(i) })
      all_provs
  in
  {
    outcome;
    steps = st.Machine.steps;
    total_cycles = st.Machine.cycles;
    rows;
    by_provenance;
  }

(* ---- Predecoded-dispatch statistics ----

   How much of the program the threaded dispatcher covers: static fused
   pair sites, the share of a golden run's steps the unobserved fast
   path retires, and a dynamic histogram of which superinstruction
   patterns actually fire (static pair counts overweight cold code). *)

type dispatch = {
  d_sites : int; (* static code length *)
  d_fused_sites : int; (* static fused pair sites *)
  d_steps : int; (* golden-run dynamic steps *)
  d_fast_steps : int; (* steps retired by the unobserved fast path *)
  d_fused_steps : int; (* steps retired inside fused superinstructions *)
  d_patterns : (string * int) list; (* dynamic pairs fired, descending *)
}

let dispatch ?fuel (img : Machine.image) : dispatch =
  let d = Predecode.get img in
  Predecode.reset_counters ();
  let st = Machine.fresh_state img in
  ignore (Predecode.exec ?fuel d st);
  let fast = Predecode.fast_steps () and fused = Predecode.fused_steps () in
  (* Dynamic pattern histogram: replay observed and pair retirements the
     way the fused dispatcher does — a pair fires when control enters a
     fused head and the second half retires right after it. *)
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref (-1) in
  let on_step (_ : Machine.state) idx =
    if !pending >= 0 && idx = !pending + 1 then begin
      let name = Predecode.fused_name d !pending in
      (match Hashtbl.find_opt tbl name with
      | Some r -> incr r
      | None -> Hashtbl.add tbl name (ref 1));
      pending := -1
    end
    else if idx < Predecode.length d && Predecode.is_fused_start d idx then
      pending := idx
    else pending := -1
  in
  ignore (Machine.run ?fuel ~on_step img (Machine.fresh_state img));
  let patterns =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
    |> List.sort (fun (n1, c1) (n2, c2) ->
           match compare c2 c1 with 0 -> compare n1 n2 | c -> c)
  in
  {
    d_sites = Predecode.length d;
    d_fused_sites = Predecode.fused_pairs d;
    d_steps = st.Machine.steps;
    d_fast_steps = fast;
    d_fused_steps = fused;
    d_patterns = patterns;
  }

let pct part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total

let ipct a b = pct (float_of_int a) (float_of_int b)

let dispatch_to_json dp =
  Json.Obj
    [
      ("sites", Json.Int dp.d_sites);
      ("fused_sites", Json.Int dp.d_fused_sites);
      ("steps", Json.Int dp.d_steps);
      ("fast_steps", Json.Int dp.d_fast_steps);
      ("fused_steps", Json.Int dp.d_fused_steps);
      ("fused_boundary_pct",
       Json.Float (ipct dp.d_fused_sites (max 1 (dp.d_sites - 1))));
      ("fast_path_pct", Json.Float (ipct dp.d_fast_steps dp.d_steps));
      ("fused_steps_pct", Json.Float (ipct dp.d_fused_steps dp.d_steps));
      ("patterns",
       Json.Arr
         (List.map
            (fun (n, c) ->
              Json.Obj [ ("name", Json.Str n); ("pairs", Json.Int c) ])
            dp.d_patterns));
    ]

let pp_dispatch ppf dp =
  Fmt.pf ppf
    "predecoded dispatch: %d of %d instruction boundaries fused (%.1f%%)@."
    dp.d_fused_sites (max 1 (dp.d_sites - 1))
    (ipct dp.d_fused_sites (max 1 (dp.d_sites - 1)));
  Fmt.pf ppf
    "  fast path retired %d/%d steps (%.1f%%), %.1f%% in superinstructions@."
    dp.d_fast_steps dp.d_steps
    (ipct dp.d_fast_steps dp.d_steps)
    (ipct dp.d_fused_steps dp.d_steps);
  if dp.d_patterns <> [] then begin
    Fmt.pf ppf "  %-16s %10s %7s@." "superinstruction" "pairs" "steps%";
    List.iter
      (fun (n, c) ->
        Fmt.pf ppf "  %-16s %10d %6.1f%%@." n c (ipct (2 * c) dp.d_steps))
      dp.d_patterns
  end

(* Canonical JSON view: outcome/steps/cycles, the full hot-opcode table
   and the provenance overhead split.  Field order is fixed so the
   rendering is byte-stable for a given image. *)
let to_json t =
  let row_json r =
    Json.Obj
      [
        ("mnemonic", Json.Str r.mnemonic);
        ("class", Json.Str (Instr.klass_name r.klass));
        ("count", Json.Int r.count);
        ("cycles", Json.Float r.cycles);
        ("cycles_pct", Json.Float (pct r.cycles t.total_cycles));
      ]
  in
  let prov_json p =
    Json.Obj
      [
        ("provenance", Json.Str (prov_name p.prov));
        ("count", Json.Int p.p_count);
        ("cycles", Json.Float p.p_cycles);
        ("cycles_pct", Json.Float (pct p.p_cycles t.total_cycles));
      ]
  in
  Json.Obj
    [
      ("outcome", Json.Str (Fmt.str "%a" Machine.pp_outcome t.outcome));
      ("steps", Json.Int t.steps);
      ("total_cycles", Json.Float t.total_cycles);
      ("opcodes", Json.Arr (List.map row_json t.rows));
      ("by_provenance", Json.Arr (List.map prov_json t.by_provenance));
    ]

let pp ?(top = 0) ppf t =
  Fmt.pf ppf "%a: %d instructions, %.1f model cycles@." Machine.pp_outcome
    t.outcome t.steps t.total_cycles;
  Fmt.pf ppf "  %-14s %-8s %10s %12s %7s@." "opcode" "class" "count" "cycles"
    "cyc%";
  let rows =
    if top > 0 && List.length t.rows > top then
      List.filteri (fun i _ -> i < top) t.rows
    else t.rows
  in
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-14s %-8s %10d %12.1f %6.1f%%@." r.mnemonic
        (Instr.klass_name r.klass) r.count r.cycles
        (pct r.cycles t.total_cycles))
    rows;
  if List.length t.rows > List.length rows then
    Fmt.pf ppf "  ... %d more opcodes@." (List.length t.rows - List.length rows)

let pp_provenance ppf t =
  Fmt.pf ppf "  %-16s %10s %12s %7s@." "provenance" "count" "cycles" "cyc%";
  List.iter
    (fun p ->
      if p.p_count > 0 then
        Fmt.pf ppf "  %-16s %10d %12.1f %6.1f%%@." (prov_name p.prov)
          p.p_count p.p_cycles
          (pct p.p_cycles t.total_cycles))
    t.by_provenance
