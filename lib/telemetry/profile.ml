(* Per-opcode cycle profiling.

   Runs an image once with an observer that attributes every retired
   instruction's model cycles to (a) its bare mnemonic and (b) its
   provenance.  The mnemonic table answers "where do the cycles go?"
   (the hot-instruction view behind the ROADMAP's make-a-hot-path-faster
   goal); the provenance split breaks a protected program's overhead
   into original / duplicate / check / instrumentation (requisition
   push-pop and batch plumbing) cycles — the decomposition the paper's
   Fig. 11 discussion reasons about. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine

type row = {
  mnemonic : string;
  klass : Instr.klass;
  count : int;
  cycles : float;
}

type prov_row = { prov : Instr.provenance; p_count : int; p_cycles : float }

type t = {
  outcome : Machine.outcome;
  steps : int;
  total_cycles : float;
  rows : row list; (* cycles descending, then mnemonic *)
  by_provenance : prov_row list; (* Original, Dup, Check, Instrumentation *)
}

let all_provs =
  [ Instr.Original; Instr.Dup; Instr.Check; Instr.Instrumentation ]

let prov_name = function
  | Instr.Original -> "original"
  | Instr.Dup -> "duplicate"
  | Instr.Check -> "check"
  | Instr.Instrumentation -> "instrumentation"

let prov_index = function
  | Instr.Original -> 0
  | Instr.Dup -> 1
  | Instr.Check -> 2
  | Instr.Instrumentation -> 3

(* Profile one fresh run of [img].  Deterministic: the simulator and the
   cost model are, and rows come out in a total order. *)
let run ?fuel (img : Machine.image) : t =
  let tbl : (string, Instr.klass * int ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let prov_count = Array.make 4 0 in
  let prov_cycles = Array.make 4 0.0 in
  let on_step (_st : Machine.state) idx =
    let ins = img.Machine.code.(idx) in
    let cost = img.Machine.costs.(idx) in
    let m = Instr.mnemonic ins.Instr.op in
    (match Hashtbl.find_opt tbl m with
    | Some (_, count, cycles) ->
      incr count;
      cycles := !cycles +. cost
    | None -> Hashtbl.add tbl m (Instr.klass ins.Instr.op, ref 1, ref cost));
    let p = prov_index ins.Instr.prov in
    prov_count.(p) <- prov_count.(p) + 1;
    prov_cycles.(p) <- prov_cycles.(p) +. cost
  in
  let outcome, st = Machine.run_fresh ?fuel ~on_step img in
  let rows =
    Hashtbl.fold
      (fun mnemonic (klass, count, cycles) acc ->
        { mnemonic; klass; count = !count; cycles = !cycles } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match compare b.cycles a.cycles with
           | 0 -> compare a.mnemonic b.mnemonic
           | c -> c)
  in
  let by_provenance =
    List.map
      (fun prov ->
        let i = prov_index prov in
        { prov; p_count = prov_count.(i); p_cycles = prov_cycles.(i) })
      all_provs
  in
  {
    outcome;
    steps = st.Machine.steps;
    total_cycles = st.Machine.cycles;
    rows;
    by_provenance;
  }

let pct part total = if total <= 0.0 then 0.0 else 100.0 *. part /. total

(* Canonical JSON view: outcome/steps/cycles, the full hot-opcode table
   and the provenance overhead split.  Field order is fixed so the
   rendering is byte-stable for a given image. *)
let to_json t =
  let row_json r =
    Json.Obj
      [
        ("mnemonic", Json.Str r.mnemonic);
        ("class", Json.Str (Instr.klass_name r.klass));
        ("count", Json.Int r.count);
        ("cycles", Json.Float r.cycles);
        ("cycles_pct", Json.Float (pct r.cycles t.total_cycles));
      ]
  in
  let prov_json p =
    Json.Obj
      [
        ("provenance", Json.Str (prov_name p.prov));
        ("count", Json.Int p.p_count);
        ("cycles", Json.Float p.p_cycles);
        ("cycles_pct", Json.Float (pct p.p_cycles t.total_cycles));
      ]
  in
  Json.Obj
    [
      ("outcome", Json.Str (Fmt.str "%a" Machine.pp_outcome t.outcome));
      ("steps", Json.Int t.steps);
      ("total_cycles", Json.Float t.total_cycles);
      ("opcodes", Json.Arr (List.map row_json t.rows));
      ("by_provenance", Json.Arr (List.map prov_json t.by_provenance));
    ]

let pp ?(top = 0) ppf t =
  Fmt.pf ppf "%a: %d instructions, %.1f model cycles@." Machine.pp_outcome
    t.outcome t.steps t.total_cycles;
  Fmt.pf ppf "  %-14s %-8s %10s %12s %7s@." "opcode" "class" "count" "cycles"
    "cyc%";
  let rows =
    if top > 0 && List.length t.rows > top then
      List.filteri (fun i _ -> i < top) t.rows
    else t.rows
  in
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-14s %-8s %10d %12.1f %6.1f%%@." r.mnemonic
        (Instr.klass_name r.klass) r.count r.cycles
        (pct r.cycles t.total_cycles))
    rows;
  if List.length t.rows > List.length rows then
    Fmt.pf ppf "  ... %d more opcodes@." (List.length t.rows - List.length rows)

let pp_provenance ppf t =
  Fmt.pf ppf "  %-16s %10s %12s %7s@." "provenance" "count" "cycles" "cyc%";
  List.iter
    (fun p ->
      if p.p_count > 0 then
        Fmt.pf ppf "  %-16s %10d %12.1f %6.1f%%@." (prov_name p.prov)
          p.p_count p.p_cycles
          (pct p.p_cycles t.total_cycles))
    t.by_provenance
