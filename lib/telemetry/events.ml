(* Typed campaign event stream: `ferrum.events.v1`.

   One flat JSON object per event so the stream validates with the same
   field machinery as every other metrics schema.  Events carry a
   deterministic logical clock (cumulative simulated steps), never
   wall-clock time, so an event log is byte-reproducible per seed — the
   smoke check diffs two runs of the same campaign. *)

let kind = "ferrum.events.v1"

(* ------------------------------------------------------------------ *)
(* Outcome tallies.                                                    *)
(* ------------------------------------------------------------------ *)

type tally = {
  benign : int;
  sdc : int;
  detected : int;
  crash : int;
  timeout : int;
}

let zero_tally = { benign = 0; sdc = 0; detected = 0; crash = 0; timeout = 0 }

let tally_total t = t.benign + t.sdc + t.detected + t.crash + t.timeout

let tally_add a b =
  {
    benign = a.benign + b.benign;
    sdc = a.sdc + b.sdc;
    detected = a.detected + b.detected;
    crash = a.crash + b.crash;
    timeout = a.timeout + b.timeout;
  }

let tally_of_name t = function
  | "benign" -> Some { t with benign = t.benign + 1 }
  | "sdc" -> Some { t with sdc = t.sdc + 1 }
  | "detected" -> Some { t with detected = t.detected + 1 }
  | "crash" -> Some { t with crash = t.crash + 1 }
  | "timeout" -> Some { t with timeout = t.timeout + 1 }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Events.                                                             *)
(* ------------------------------------------------------------------ *)

type body =
  | Campaign_started of { shards : int; samples : int }
  | Shard_started of { lo : int; hi : int }
  | Progress of {
      done_ : int;
      total : int;
      tally : tally;
      clock : int;
      spent : int;
      budget : int;
      hw : float;
    }
  | Shard_finished of { done_ : int; total : int; tally : tally; clock : int }
  | Shard_retry of { reason : string }
  | Campaign_finished of { total : int; tally : tally; clock : int }

type t = { seq : int; shard : int; attempt : int; body : body }

let body_name = function
  | Campaign_started _ -> "campaign_started"
  | Shard_started _ -> "shard_started"
  | Progress _ -> "progress"
  | Shard_finished _ -> "shard_finished"
  | Shard_retry _ -> "shard_retry"
  | Campaign_finished _ -> "campaign_finished"

(* ETA on the logical clock: clock units still to run, extrapolated
   from the per-sample rate so far.  Deterministic by construction.

   Clamped: a shard that finishes (or heartbeats) within one interval
   can report done_ = 0 or clock = 0 — a zero observed rate.  Rather
   than claim nothing remains, assume at least one clock unit per
   remaining sample; and once nothing remains the ETA is exactly 0
   even if the rate is degenerate. *)
let eta ~done_ ~total ~clock =
  let remaining = max 0 (total - done_) in
  if remaining = 0 then 0.
  else if done_ <= 0 || clock <= 0 then float_of_int remaining
  else float_of_int clock /. float_of_int done_ *. float_of_int remaining

(* Every event serializes every field (unused scalars as -1, unused
   tallies as 0, unused detail as ""): a flat, fixed schema keeps
   `ferrum metrics` validation a single required-field list. *)
let to_json (e : t) : Json.t =
  let shards, samples =
    match e.body with
    | Campaign_started { shards; samples } -> (shards, samples)
    | _ -> (-1, -1)
  in
  let lo, hi =
    match e.body with Shard_started { lo; hi } -> (lo, hi) | _ -> (-1, -1)
  in
  let done_, total, tally, clock =
    match e.body with
    | Progress { done_; total; tally; clock; _ }
    | Shard_finished { done_; total; tally; clock } ->
      (done_, total, tally, clock)
    | Campaign_finished { total; tally; clock } -> (total, total, tally, clock)
    | Campaign_started _ | Shard_started _ | Shard_retry _ ->
      (-1, -1, zero_tally, 0)
  in
  let detail = match e.body with Shard_retry { reason } -> reason | _ -> "" in
  let eta_v =
    match e.body with
    | Progress _ -> eta ~done_ ~total ~clock
    | _ -> 0.
  in
  (* Confidence heartbeat: global budget spent/total and the live
     Wilson half-width of the SDC estimate.  Adaptive campaigns run
     rounds, so a shard's own (done, total) no longer bounds campaign
     progress — watch/dashboard bars key off these instead. *)
  let spent, budget, hw =
    match e.body with
    | Progress { spent; budget; hw; _ } -> (spent, budget, hw)
    | _ -> (-1, -1, 0.)
  in
  Json.Obj
    [
      ("event", Json.Str (body_name e.body));
      ("seq", Json.Int e.seq);
      ("shard", Json.Int e.shard);
      ("attempt", Json.Int e.attempt);
      ("shards", Json.Int shards);
      ("samples", Json.Int samples);
      ("lo", Json.Int lo);
      ("hi", Json.Int hi);
      ("done", Json.Int done_);
      ("total", Json.Int total);
      ("benign", Json.Int tally.benign);
      ("sdc", Json.Int tally.sdc);
      ("detected", Json.Int tally.detected);
      ("crash", Json.Int tally.crash);
      ("timeout", Json.Int tally.timeout);
      ("clock", Json.Int clock);
      ("eta", Json.Float eta_v);
      ("detail", Json.Str detail);
      ("spent", Json.Int spent);
      ("budget", Json.Int budget);
      ("hw", Json.Float hw);
    ]

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | Some _ -> Error (Fmt.str "field %S is not an int" name)
  | None -> Error (Fmt.str "missing field %S" name)

(* The confidence fields arrived after v1 logs existed; stored logs
   without them still parse (and validate) with the unused defaults. *)
let opt_int_member ~default name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | Some _ -> Error (Fmt.str "field %S is not an int" name)
  | None -> Ok default

let opt_float_member ~default name j =
  match Json.member name j with
  | Some (Json.Float v) -> Ok v
  | Some (Json.Int v) -> Ok (float_of_int v)
  | Some _ -> Error (Fmt.str "field %S is not a number" name)
  | None -> Ok default

let str_member name j =
  match Json.member name j with
  | Some (Json.Str v) -> Ok v
  | Some _ -> Error (Fmt.str "field %S is not a string" name)
  | None -> Error (Fmt.str "missing field %S" name)

let ( let* ) = Result.bind

let tally_of_json j =
  let* benign = int_member "benign" j in
  let* sdc = int_member "sdc" j in
  let* detected = int_member "detected" j in
  let* crash = int_member "crash" j in
  let* timeout = int_member "timeout" j in
  Ok { benign; sdc; detected; crash; timeout }

let of_json (j : Json.t) : (t, string) result =
  let* name = str_member "event" j in
  let* seq = int_member "seq" j in
  let* shard = int_member "shard" j in
  let* attempt = int_member "attempt" j in
  let progresslike j =
    let* done_ = int_member "done" j in
    let* total = int_member "total" j in
    let* tally = tally_of_json j in
    let* clock = int_member "clock" j in
    Ok (done_, total, tally, clock)
  in
  let* body =
    match name with
    | "campaign_started" ->
      let* shards = int_member "shards" j in
      let* samples = int_member "samples" j in
      Ok (Campaign_started { shards; samples })
    | "shard_started" ->
      let* lo = int_member "lo" j in
      let* hi = int_member "hi" j in
      Ok (Shard_started { lo; hi })
    | "progress" ->
      let* done_, total, tally, clock = progresslike j in
      let* spent = opt_int_member ~default:(-1) "spent" j in
      let* budget = opt_int_member ~default:(-1) "budget" j in
      let* hw = opt_float_member ~default:0. "hw" j in
      Ok (Progress { done_; total; tally; clock; spent; budget; hw })
    | "shard_finished" ->
      let* done_, total, tally, clock = progresslike j in
      Ok (Shard_finished { done_; total; tally; clock })
    | "shard_retry" ->
      let* reason = str_member "detail" j in
      Ok (Shard_retry { reason })
    | "campaign_finished" ->
      let* _, total, tally, clock = progresslike j in
      Ok (Campaign_finished { total; tally; clock })
    | other -> Error (Fmt.str "unknown event %S" other)
  in
  Ok { seq; shard; attempt; body }

let of_string line =
  match Json.of_string_opt line with
  | None -> Error "not valid JSON"
  | Some j -> of_json j

(* ------------------------------------------------------------------ *)
(* Schema.                                                             *)
(* ------------------------------------------------------------------ *)

let fields =
  Metrics.
    [
      field "event" F_string;
      field "seq" F_int;
      field "shard" F_int;
      field "attempt" F_int;
      field "shards" F_int;
      field "samples" F_int;
      field "lo" F_int;
      field "hi" F_int;
      field "done" F_int;
      field "total" F_int;
      field "benign" F_int;
      field "sdc" F_int;
      field "detected" F_int;
      field "crash" F_int;
      field "timeout" F_int;
      field "clock" F_int;
      field "eta" F_float;
      field "detail" F_string;
      field ~required:false "spent" F_int;
      field ~required:false "budget" F_int;
      field ~required:false "hw" F_float;
    ]

let header extra = Metrics.header ~kind extra

(* ------------------------------------------------------------------ *)
(* Replay.                                                             *)
(* ------------------------------------------------------------------ *)

(* Re-derive the campaign outcome from its event log alone (record
   lines, header excluded) and cross-check the log's internal
   consistency: contiguous sequence numbers, campaign_started first,
   campaign_finished last, and per-shard final tallies summing to the
   campaign tally.  Returns the final (tally, clock). *)
let replay (lines : string list) : (tally * int, string) result =
  let n = List.length lines in
  let rec loop i seen_start shard_sum shard_clock final = function
    | [] -> (
      if not seen_start then Error "no campaign_started event"
      else
        match final with
        | None -> Error "no campaign_finished event"
        | Some (total, tally, clock) ->
          if tally <> shard_sum then
            Error "shard_finished tallies do not sum to the campaign tally"
          else if clock <> shard_clock then
            Error "shard_finished clocks do not sum to the campaign clock"
          else if total <> tally_total tally then
            Error "campaign_finished total does not match its tally"
          else Ok (tally, clock))
    | line :: rest -> (
      match of_string line with
      | Error e -> Error (Fmt.str "event %d: %s" i e)
      | Ok ev -> (
        if ev.seq <> i then
          Error (Fmt.str "event %d: sequence number %d, expected %d" i ev.seq i)
        else
          match ev.body with
          | Campaign_started _ ->
            if i <> 0 then Error (Fmt.str "event %d: campaign_started mid-log" i)
            else loop (i + 1) true shard_sum shard_clock final rest
          | Campaign_finished { total; tally; clock } ->
            if i <> n - 1 then
              Error (Fmt.str "event %d: campaign_finished mid-log" i)
            else
              loop (i + 1) seen_start shard_sum shard_clock
                (Some (total, tally, clock))
                rest
          | Shard_finished { tally; clock; _ } ->
            loop (i + 1) seen_start (tally_add shard_sum tally)
              (shard_clock + clock) final rest
          | Shard_started _ | Progress _ | Shard_retry _ ->
            if not seen_start then
              Error (Fmt.str "event %d precedes campaign_started" i)
            else loop (i + 1) seen_start shard_sum shard_clock final rest))
  in
  loop 0 false zero_tally 0 None lines
