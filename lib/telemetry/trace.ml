(* Distributed traces: `ferrum.trace.v1`.

   One campaign — CLI or daemon, fork-pool workers, engine phases —
   yields a single stitched trace: a set of spans, each with a unique
   id, a parent link, a name and a process label.  Span ids are
   deterministic dotted paths ("0", "0.2", "0.2.s5", ...) allocated
   hierarchically: a recorder numbers its children sequentially, and a
   process handing work to a child process mints the child's root span
   id under its own innermost span ({!ctx_for}), so forked workers
   create collision-free ids with no coordination.

   Dual clocks keep byte-reproducibility intact:

     - span rows carry only the *logical* clock (summed injected-run
       steps, advanced explicitly via {!advance}) and integer counters
       — deterministic for a given seed, so trace.jsonl byte-compares
       across reruns exactly like the injection stream;
     - wall rows (gettimeofday interval, CPU user/sys deltas from
       [Unix.times], peak RSS from /proc) are segregated into a
       sidecar document that identity tests never compare.

   Context crosses process boundaries two ways: by closure through
   [Unix.fork] (the campaign worker pool — the child serializes its
   closed spans back over the worker pipe and the parent {!absorb}s
   them), and by `traceparent`-style HTTP headers on the daemon API
   ({!to_traceparent} / {!of_traceparent}). *)

let kind = "ferrum.trace.v1"

(* ------------------------------------------------------------------ *)
(* Ids and contexts.                                                   *)
(* ------------------------------------------------------------------ *)

(* Deterministic trace id: 16 hex chars from the campaign seed and a
   caller salt (manifest digest, spec text, ...), so reruns of the
   same configuration stitch under the same id without coordination. *)
let derive_id ~seed salt =
  String.sub (Digest.to_hex (Digest.string (Int64.to_string seed ^ "/" ^ salt))) 0 16

(* What a process needs to start spans under another process's trace:
   the trace id, the parent link for its root span, and the root span
   id itself (minted by the sender, so ids stay collision-free). *)
type ctx = { c_trace : string; c_parent : string; c_span : string }

let ctx_make ~trace ~parent ~seg =
  {
    c_trace = trace;
    c_parent = parent;
    c_span = (if parent = "" then seg else parent ^ "." ^ seg);
  }

(* W3C-shaped traceparent: version 00, our trace and span ids, flags
   01.  Our ids are dot-separated [0-9a-z] segments — no dashes — so
   splitting on '-' is unambiguous. *)
let to_traceparent ~trace ~span = Fmt.str "00-%s-%s-01" trace span

let id_ok s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'z' | '.' -> true | _ -> false)
       s

let of_traceparent s =
  match String.split_on_char '-' (String.trim s) with
  | [ "00"; trace; span; _flags ] when id_ok trace && id_ok span ->
    Some (trace, span)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Spans and wall rows.                                                *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_id : string;
  sp_parent : string;  (** [""] for a trace root *)
  sp_name : string;
  sp_proc : string;
  sp_l_start : int;  (** recorder logical clock at open *)
  sp_l_end : int;
  sp_counters : (string * int) list;  (** insertion order *)
}

type wall = {
  wl_span : string;
  wl_name : string;
  wl_proc : string;
  wl_start : float;  (** [Unix.gettimeofday] at open *)
  wl_end : float;
  wl_cpu_user : float;  (** CPU seconds, [Unix.times] delta *)
  wl_cpu_sys : float;
  wl_maxrss_kb : int;  (** peak RSS at close; [-1] when unavailable *)
}

(* ------------------------------------------------------------------ *)
(* Recorder.                                                           *)
(* ------------------------------------------------------------------ *)

type open_span = {
  o_id : string;
  o_parent : string;
  o_name : string;
  o_order : int;
  o_l_start : int;
  mutable o_counters : (string * int) list;  (* newest first *)
  mutable o_children : int;
  mutable o_w_start : float;
  o_cpu_u : float;
  o_cpu_s : float;
}

type recorder = {
  r_trace : string;
  r_proc : string;
  r_base : string;  (* id of the first top-level span; "" = number them *)
  r_parent : string;  (* parent link of top-level spans *)
  mutable r_logical : int;
  mutable r_started : int;
  mutable r_top : int;
  mutable r_stack : open_span list;  (* innermost first *)
  mutable r_spans : (int * span) list;  (* (start order, span), newest first *)
  mutable r_walls : wall list;  (* newest first *)
  mutable r_foreign_spans : string list;  (* absorbed raw rows, in order *)
  mutable r_foreign_walls : string list;
}

let make ~trace ~proc ~base ~parent =
  {
    r_trace = trace;
    r_proc = proc;
    r_base = base;
    r_parent = parent;
    r_logical = 0;
    r_started = 0;
    r_top = 0;
    r_stack = [];
    r_spans = [];
    r_walls = [];
    r_foreign_spans = [];
    r_foreign_walls = [];
  }

let create ~trace ~proc () = make ~trace ~proc ~base:"" ~parent:""
let scoped (c : ctx) ~proc =
  make ~trace:c.c_trace ~proc ~base:c.c_span ~parent:c.c_parent

let trace_id r = r.r_trace
let logical r = r.r_logical
let advance r n = r.r_logical <- r.r_logical + n

let now_cpu () =
  let t = Unix.times () in
  (t.Unix.tms_utime, t.Unix.tms_stime)

(* Peak RSS in kB from /proc/self/status (OCaml's Unix has no
   getrusage); -1 off Linux. *)
let maxrss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> -1
  | ic ->
    let rec go () =
      match input_line ic with
      | exception End_of_file -> -1
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          Option.value ~default:(-1) (int_of_string_opt digits)
        else go ()
    in
    let v = go () in
    close_in ic;
    v

let enter r name =
  let id, parent =
    match r.r_stack with
    | o :: _ ->
      let id = o.o_id ^ "." ^ string_of_int o.o_children in
      o.o_children <- o.o_children + 1;
      (id, o.o_id)
    | [] ->
      let id =
        (* a scoped recorder's first top-level span IS the minted base
           id; later top-level spans (rare) suffix with 'x' so they can
           never collide with the first span's numeric children *)
        if r.r_base = "" then string_of_int r.r_top
        else if r.r_top = 0 then r.r_base
        else r.r_base ^ "x" ^ string_of_int (r.r_top - 1)
      in
      r.r_top <- r.r_top + 1;
      (id, r.r_parent)
  in
  let u, s = now_cpu () in
  let o =
    {
      o_id = id;
      o_parent = parent;
      o_name = name;
      o_order = r.r_started;
      o_l_start = r.r_logical;
      o_counters = [];
      o_children = 0;
      o_w_start = Unix.gettimeofday ();
      o_cpu_u = u;
      o_cpu_s = s;
    }
  in
  r.r_started <- r.r_started + 1;
  r.r_stack <- o :: r.r_stack;
  o

let exit_ r o =
  (match r.r_stack with
  | top :: rest when top == o -> r.r_stack <- rest
  | _ -> invalid_arg "Trace: exited a span that is not innermost");
  let u, s = now_cpu () in
  r.r_spans <-
    ( o.o_order,
      {
        sp_id = o.o_id;
        sp_parent = o.o_parent;
        sp_name = o.o_name;
        sp_proc = r.r_proc;
        sp_l_start = o.o_l_start;
        sp_l_end = r.r_logical;
        sp_counters = List.rev o.o_counters;
      } )
    :: r.r_spans;
  r.r_walls <-
    {
      wl_span = o.o_id;
      wl_name = o.o_name;
      wl_proc = r.r_proc;
      wl_start = o.o_w_start;
      wl_end = Unix.gettimeofday ();
      wl_cpu_user = u -. o.o_cpu_u;
      wl_cpu_sys = s -. o.o_cpu_s;
      wl_maxrss_kb = maxrss_kb ();
    }
    :: r.r_walls

(* Run [f] inside a span; closes it even if [f] raises.  [w_start]
   backdates the wall interval (queue-wait spans open at submission
   time, not at observation time). *)
let span ?w_start r name f =
  let o = enter r name in
  (match w_start with Some w -> o.o_w_start <- w | None -> ());
  match f () with
  | v ->
    exit_ r o;
    v
  | exception e ->
    exit_ r o;
    raise e

(* Attach a counter to the innermost open span.  Every internal call
   site sits inside a span; a stray counter (no span open) is dropped —
   {!Span.counter} is the user-facing recorder and keeps such data. *)
let counter r name value =
  match r.r_stack with
  | o :: _ -> o.o_counters <- (name, value) :: o.o_counters
  | [] -> ()

(* Child-process context under the innermost open span (or this
   recorder's own root position when none is open).  [seg] must be a
   non-numeric [0-9a-z]+ segment chosen unique by the caller — e.g.
   "s<gid>" for shard gid — so minted ids never collide with the
   sequentially numbered in-process children. *)
let ctx_for r ~seg =
  match r.r_stack with
  | o :: _ -> ctx_make ~trace:r.r_trace ~parent:o.o_id ~seg
  | [] -> ctx_make ~trace:r.r_trace ~parent:r.r_parent ~seg

let absorb r ~span_lines ~wall_lines =
  r.r_foreign_spans <- r.r_foreign_spans @ span_lines;
  r.r_foreign_walls <- r.r_foreign_walls @ wall_lines

(* ------------------------------------------------------------------ *)
(* Serialization.                                                      *)
(* ------------------------------------------------------------------ *)

let span_to_json ~trace (s : span) : Json.t =
  Json.Obj
    ([
       ("row", Json.Str "span");
       ("trace", Json.Str trace);
       ("span", Json.Str s.sp_id);
       ("parent", Json.Str s.sp_parent);
       ("name", Json.Str s.sp_name);
       ("proc", Json.Str s.sp_proc);
       ("l_start", Json.Int s.sp_l_start);
       ("l_end", Json.Int s.sp_l_end);
     ]
    @
    match s.sp_counters with
    | [] -> []
    | cs ->
      [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)) ]
    )

let wall_to_json ~trace (w : wall) : Json.t =
  Json.Obj
    [
      ("row", Json.Str "wall");
      ("trace", Json.Str trace);
      ("span", Json.Str w.wl_span);
      ("name", Json.Str w.wl_name);
      ("proc", Json.Str w.wl_proc);
      ("w_start", Json.Float w.wl_start);
      ("w_end", Json.Float w.wl_end);
      ("cpu_user", Json.Float w.wl_cpu_user);
      ("cpu_sys", Json.Float w.wl_cpu_sys);
      ("maxrss_kb", Json.Int w.wl_maxrss_kb);
    ]

let str_member name j =
  match Json.member name j with
  | Some (Json.Str v) -> Ok v
  | _ -> Error (Fmt.str "trace row: bad field %S" name)

let int_member name j =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Fmt.str "trace row: bad field %S" name)

let float_member name j =
  match Json.member name j with
  | Some (Json.Float v) -> Ok v
  | Some (Json.Int v) -> Ok (float_of_int v)
  | _ -> Error (Fmt.str "trace row: bad field %S" name)

let ( let* ) = Result.bind

let span_of_json j : (string * span, string) result =
  let* trace = str_member "trace" j in
  let* sp_id = str_member "span" j in
  let* sp_parent = str_member "parent" j in
  let* sp_name = str_member "name" j in
  let* sp_proc = str_member "proc" j in
  let* sp_l_start = int_member "l_start" j in
  let* sp_l_end = int_member "l_end" j in
  let* sp_counters =
    match Json.member "counters" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
      List.fold_right
        (fun (k, v) acc ->
          let* acc = acc in
          match v with
          | Json.Int n -> Ok ((k, n) :: acc)
          | _ -> Error (Fmt.str "trace row: counter %S is not an int" k))
        fields (Ok [])
    | Some _ -> Error "trace row: bad field \"counters\""
  in
  Ok (trace, { sp_id; sp_parent; sp_name; sp_proc; sp_l_start; sp_l_end; sp_counters })

let wall_of_json j : (string * wall, string) result =
  let* trace = str_member "trace" j in
  let* wl_span = str_member "span" j in
  let* wl_name = str_member "name" j in
  let* wl_proc = str_member "proc" j in
  let* wl_start = float_member "w_start" j in
  let* wl_end = float_member "w_end" j in
  let* wl_cpu_user = float_member "cpu_user" j in
  let* wl_cpu_sys = float_member "cpu_sys" j in
  let* wl_maxrss_kb = int_member "maxrss_kb" j in
  Ok
    ( trace,
      { wl_span; wl_name; wl_proc; wl_start; wl_end; wl_cpu_user; wl_cpu_sys;
        wl_maxrss_kb } )

type row = Span_row of string * span | Wall_row of string * wall

let row_of_json j : (row, string) result =
  match Json.member "row" j with
  | Some (Json.Str "span") ->
    Result.map (fun (t, s) -> Span_row (t, s)) (span_of_json j)
  | Some (Json.Str "wall") ->
    Result.map (fun (t, w) -> Wall_row (t, w)) (wall_of_json j)
  | _ -> Error "trace row: missing or unknown \"row\""

(* Record lines (no header) -> parsed rows, first error wins. *)
let rows_of_lines lines : (row list, string) result =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Json.of_string_opt line with
      | None -> Error (Fmt.str "line %d is not valid JSON" i)
      | Some j -> (
        match row_of_json j with
        | Ok r -> go (i + 1) (r :: acc) rest
        | Error e -> Error (Fmt.str "line %d: %s" i e)))
  in
  go 2 [] lines

let spans_of_rows rows =
  List.filter_map (function Span_row (_, s) -> Some s | Wall_row _ -> None) rows

let walls_of_rows rows =
  List.filter_map (function Wall_row (_, w) -> Some w | Span_row _ -> None) rows

(* ------------------------------------------------------------------ *)
(* Harvest.                                                            *)
(* ------------------------------------------------------------------ *)

(* Own closed spans in start order (the root a recorder opened first
   comes first even though it closed last), then absorbed child-process
   rows in absorption order — deterministic because the campaign runner
   absorbs shards in global id order. *)
let span_lines r =
  let own =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.rev r.r_spans)
  in
  List.map (fun (_, s) -> Json.to_string (span_to_json ~trace:r.r_trace s)) own
  @ r.r_foreign_spans

let wall_lines r =
  let own = List.rev r.r_walls in
  List.map (fun w -> Json.to_string (wall_to_json ~trace:r.r_trace w)) own
  @ r.r_foreign_walls

(* ------------------------------------------------------------------ *)
(* Schema.                                                             *)
(* ------------------------------------------------------------------ *)

(* One field list validates both row kinds: the discriminator and ids
   are required, everything else is per-kind optional.  Registered in
   the `ferrum metrics` registry, so validation failures come back
   line-numbered like every other schema. *)
let fields =
  Metrics.
    [
      field "row" F_string;
      field "trace" F_string;
      field "span" F_string;
      field ~required:false "parent" F_string;
      field ~required:false "name" F_string;
      field ~required:false "proc" F_string;
      field ~required:false "l_start" F_int;
      field ~required:false "l_end" F_int;
      field ~required:false "w_start" F_float;
      field ~required:false "w_end" F_float;
      field ~required:false "cpu_user" F_float;
      field ~required:false "cpu_sys" F_float;
      field ~required:false "maxrss_kb" F_int;
    ]

let header extra = Metrics.header ~kind extra

(* ------------------------------------------------------------------ *)
(* Stitching validation.                                               *)
(* ------------------------------------------------------------------ *)

(* A stitched trace is coherent when its span rows share one trace id,
   ids are unique, exactly one span is a root (parent empty or outside
   the document — a daemon-side trace may hang under a client span the
   file never saw), and every other span's parent chain resolves to
   that root without cycles.  Returns the root span id. *)
let validate_stitched lines : (string, string) result =
  let* rows = rows_of_lines lines in
  let spans = spans_of_rows rows in
  if spans = [] then Error "trace has no span rows"
  else begin
    let traces =
      List.sort_uniq compare
        (List.filter_map
           (function Span_row (t, _) -> Some t | Wall_row _ -> None)
           rows)
    in
    let* () =
      match traces with
      | [ _ ] -> Ok ()
      | ts -> Error (Fmt.str "trace has %d distinct trace ids" (List.length ts))
    in
    let tbl = Hashtbl.create 64 in
    let* () =
      List.fold_left
        (fun acc s ->
          let* () = acc in
          if Hashtbl.mem tbl s.sp_id then
            Error (Fmt.str "duplicate span id %S" s.sp_id)
          else begin
            Hashtbl.add tbl s.sp_id s;
            Ok ()
          end)
        (Ok ()) spans
    in
    let is_root s = s.sp_parent = "" || not (Hashtbl.mem tbl s.sp_parent) in
    let* root =
      match List.filter is_root spans with
      | [ r ] -> Ok r
      | [] -> Error "trace has no root span"
      | rs ->
        Error
          (Fmt.str "trace has %d roots (%s)" (List.length rs)
             (String.concat ", " (List.map (fun s -> s.sp_id) rs)))
    in
    let limit = List.length spans in
    let rec climbs s steps =
      if s.sp_id = root.sp_id then Ok ()
      else if steps > limit then
        Error (Fmt.str "span %S: parent chain does not terminate" s.sp_id)
      else
        match Hashtbl.find_opt tbl s.sp_parent with
        | Some p -> climbs p (steps + 1)
        | None -> Error (Fmt.str "span %S: unresolved parent %S" s.sp_id s.sp_parent)
    in
    let* () =
      List.fold_left
        (fun acc s ->
          let* () = acc in
          climbs s 0)
        (Ok ()) spans
    in
    Ok root.sp_id
  end

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)
(* ------------------------------------------------------------------ *)

(* Index processes in first-seen span order: Chrome trace viewers group
   rows by (pid, tid), and a stable small integer per process label
   keeps the export deterministic. *)
let proc_index spans =
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s.sp_proc) then begin
        Hashtbl.add seen s.sp_proc !next;
        incr next
      end)
    spans;
  fun proc -> Option.value ~default:0 (Hashtbl.find_opt seen proc)

(* Chrome trace-event JSON (Perfetto-loadable): one complete event
   ("ph":"X") per span.  When every span has a wall row the timeline is
   wall microseconds rebased to the earliest open; otherwise it falls
   back to the logical clock (1 step = 1 us), which is what exports of
   byte-reproducible traces without their sidecar use. *)
let perfetto ~spans ~walls : Json.t =
  let wall_of = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace wall_of w.wl_span w) walls;
  let use_wall =
    spans <> [] && List.for_all (fun s -> Hashtbl.mem wall_of s.sp_id) spans
  in
  let t0 =
    List.fold_left
      (fun acc s ->
        match Hashtbl.find_opt wall_of s.sp_id with
        | Some w -> Float.min acc w.wl_start
        | None -> acc)
      infinity spans
  in
  let events =
    List.map
      (fun s ->
        let ts, dur =
          if use_wall then begin
            let w = Hashtbl.find wall_of s.sp_id in
            ( (w.wl_start -. t0) *. 1e6,
              Float.max 0.0 (w.wl_end -. w.wl_start) *. 1e6 )
          end
          else
            ( float_of_int s.sp_l_start,
              float_of_int (max 0 (s.sp_l_end - s.sp_l_start)) )
        in
        let idx = proc_index spans s.sp_proc in
        let args =
          ("span", Json.Str s.sp_id)
          :: ("proc", Json.Str s.sp_proc)
          :: List.map (fun (k, v) -> (k, Json.Int v)) s.sp_counters
        in
        Json.Obj
          [
            ("name", Json.Str s.sp_name);
            ("cat", Json.Str "ferrum");
            ("ph", Json.Str "X");
            ("ts", Json.Float ts);
            ("dur", Json.Float dur);
            ("pid", Json.Int idx);
            ("tid", Json.Int idx);
            ("args", Json.Obj args);
          ])
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms");
    ]

(* Folded flamegraph stacks ("root;child;leaf <weight>"), one line per
   distinct name path, weights summed and sorted for determinism.
   Weights are self time: a span's duration minus its children's, wall
   microseconds when the sidecar covers every span, logical steps
   otherwise. *)
let folded ~spans ~walls : string list =
  let wall_of = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace wall_of w.wl_span w) walls;
  let use_wall =
    spans <> [] && List.for_all (fun s -> Hashtbl.mem wall_of s.sp_id) spans
  in
  let duration s =
    if use_wall then
      let w = Hashtbl.find wall_of s.sp_id in
      Float.max 0.0 (w.wl_end -. w.wl_start) *. 1e6
    else float_of_int (max 0 (s.sp_l_end - s.sp_l_start))
  in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.sp_id s) spans;
  let child_sum = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem by_id s.sp_parent then
        Hashtbl.replace child_sum s.sp_parent
          (Option.value ~default:0.0 (Hashtbl.find_opt child_sum s.sp_parent)
          +. duration s))
      spans;
  let rec stack s =
    match Hashtbl.find_opt by_id s.sp_parent with
    | Some p when p != s -> stack p @ [ s.sp_name ]
    | _ -> [ s.sp_name ]
  in
  let weights = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self =
        Float.max 0.0
          (duration s
          -. Option.value ~default:0.0 (Hashtbl.find_opt child_sum s.sp_id))
      in
      let key = String.concat ";" (stack s) in
      Hashtbl.replace weights key
        (Option.value ~default:0.0 (Hashtbl.find_opt weights key) +. self))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort compare
  |> List.filter_map (fun (k, v) ->
         let n = int_of_float (Float.round v) in
         if n <= 0 then None else Some (Fmt.str "%s %d" k n))
