(** Fault-propagation tracing.

    Re-runs the golden (fault-free) execution in lockstep with a faulted
    run from inside the injector's per-step observer, and tracks the
    {e tainted set} — the GPRs, SIMD lanes, flag bits and memory bytes
    where the two architectural states differ — exactly at write-backs.
    Yields per-injection detection latency (retired instructions and
    model cycles from flip to checker) and, for silent data corruptions,
    a mechanical explanation of why the checkers missed.

    Driven by {!Ferrum_faultsim.Faultsim.trace_propagation}; the tracer
    itself only needs a loaded {!Ferrum_machine.Machine.image} and the
    observer/injection hooks. *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine

(** A tainted architectural location. *)
type loc =
  | Lgpr of Reg.gpr
  | Lsimd of int * int  (** register, 64-bit lane *)
  | Lflag of Cond.flag
  | Lmem of int  (** byte address *)

val loc_name : loc -> string

(** The first write-back at which the two runs differed. *)
type divergence = {
  div_step : int;  (** dynamic instruction number *)
  div_static : int;  (** static index of the diverging instruction *)
  div_locs : loc list;
      (** locations that first differed, in write order; empty when the
          divergence was control flow only *)
}

(** {1 Tracing} *)

type t

(** [golden] (default a fresh state of [img]) is the lockstep golden
    state the tracer steps alongside the injected run.  A checkpointed
    injector passes a state already advanced to the flip site, since
    observing the identical pre-flip prefix records nothing. *)
val create : ?golden:Machine.state -> Machine.image -> t

(** To be called right after the injector flips the bit(s) (see
    [?on_inject] of {!Ferrum_faultsim.Faultsim.inject_full}). *)
val note_injection : t -> Machine.state -> unit

(** The per-step observer: steps the golden machine in lockstep and
    updates the tainted set.  Pass as [?observe] to [inject_full]. *)
val observe : t -> Machine.state -> int -> unit

(** {1 Summaries} *)

type summary = {
  program_has_checks : bool;
      (** any [Check]-provenance instruction in the image *)
  injected_at : int option;  (** retired-instruction number of the flip *)
  injected_cycles : float;
  first_divergence : divergence option;
      (** [None]: the flip never became architecturally visible *)
  control_diverged_at : int option;
      (** step at which the instruction pointers separated *)
  peak_taint : int;  (** max simultaneous tainted locations *)
  reg_taint_at_end : int;
  mem_taint_at_end : int;
  first_mem_taint_at : int option;
      (** taint first reached ECC-trusted memory *)
  first_output_divergence_at : int option;
      (** a corrupted (or wrong-path) value was printed *)
  first_check_after_divergence : int option;
  checks_after_divergence : int;
  tainted_checks : int;  (** checks retired while the taint was live *)
  masked_at : int option;
      (** register/flag/lane taint dropped to zero while memory taint
          remained *)
  reactivated_at : int option;
      (** register taint reappeared (reloaded from memory) after
          [masked_at] *)
  end_steps : int;
  end_cycles : float;
}

(** Freeze the tracer against the faulted run's final state. *)
val finish : t -> Machine.state -> summary

(** Retired instructions and model cycles from the flip to the end of
    the run; for a [Detected] run this is the detection latency.
    [None] when no fault was injected. *)
val detection_latency : summary -> (int * float) option

(** {1 Escape explanations}

    Why an SDC slipped past the checkers, derived from the propagation
    timeline. *)

type escape =
  | Unprotected_program  (** the image carries no checkers at all *)
  | Unchecked_site
      (** no checker executed between corruption and exit *)
  | Masked_then_reactivated
      (** register taint masked, survived in memory, reloaded later *)
  | Output_before_check
      (** corrupted output preceded the first post-corruption check *)
  | Memory_before_check
      (** taint was stored to trusted memory before the first check *)
  | Check_missed_taint
      (** checks ran over live taint but compared clean locations *)

val escape_name : escape -> string

(** Inverse of {!escape_name}; [None] on unknown names. *)
val escape_of_name : string -> escape option

(** One-sentence human explanation. *)
val escape_describe : escape -> string

val explain_escape : summary -> escape

val pp_summary : Format.formatter -> summary -> unit
