(* Server-Sent Events framing for `ferrum.events.v1` streams.

   The daemon streams live campaign events as SSE: one event per frame,
   the JSON record as the [data:] field and the event's sequence number
   as the [id:] field, so a dropped client can resume with the standard
   `Last-Event-ID` request header and receive exactly the suffix it
   missed.  The decoder is an incremental state machine fed arbitrary
   byte chunks — frames split at any byte boundary reassemble to the
   same event list, which is what makes the stream validatable by
   {!Events.replay} end-to-end. *)

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)
(* ------------------------------------------------------------------ *)

let encode ~id data = Fmt.str "id: %d\ndata: %s\n\n" id data

let encode_event (e : Events.t) =
  encode ~id:e.Events.seq (Json.to_string (Events.to_json e))

(* A comment frame: ignored by decoders, useful as a keep-alive and as
   an explicit end-of-stream marker that is not an event. *)
let comment text = Fmt.str ": %s\n\n" text

let retry_frame ms = Fmt.str "retry: %d\n\n" ms

(* ------------------------------------------------------------------ *)
(* Decoding.                                                           *)
(* ------------------------------------------------------------------ *)

(* Per the SSE spec (reduced to what the encoder emits): fields are
   [name ":" [" "] value], an empty line dispatches the pending event,
   [data] lines accumulate joined by newlines, [id] sets the last-event
   id, lines starting with ":" are comments, and a lone CR before LF is
   tolerated. *)
type event = { id : int option; data : string }

type decoder = {
  buf : Buffer.t;  (** undelivered partial line *)
  mutable data : string list;  (** pending data lines, reversed *)
  mutable ev_id : int option;  (** id field of the pending event *)
  mutable last_id : int;  (** last dispatched id, -1 initially *)
}

let decoder () = { buf = Buffer.create 256; data = []; ev_id = None; last_id = -1 }

let last_event_id d = d.last_id

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let field_value line colon =
  let start =
    if colon + 1 < String.length line && line.[colon + 1] = ' ' then colon + 2
    else colon + 1
  in
  String.sub line start (String.length line - start)

(* Process one complete line; completed events are appended to [out]. *)
let line d out line =
  let line = strip_cr line in
  if line = "" then begin
    (* dispatch *)
    match (d.data, d.ev_id) with
    | [], None -> ()
    | data, id ->
      let data = String.concat "\n" (List.rev data) in
      (match id with Some i -> d.last_id <- i | None -> ());
      d.data <- [];
      d.ev_id <- None;
      if data <> "" then out := { id; data } :: !out
  end
  else if line.[0] = ':' then () (* comment *)
  else
    match String.index_opt line ':' with
    | None -> () (* field with no value: none we care about *)
    | Some colon -> (
      let name = String.sub line 0 colon in
      let value = field_value line colon in
      match name with
      | "data" -> d.data <- value :: d.data
      | "id" -> (
        match int_of_string_opt value with
        | Some i -> d.ev_id <- Some i
        | None -> ())
      | _ -> () (* event/retry/unknown: ignored *))

(* Feed a chunk; returns the events completed by it, in stream order. *)
let feed d chunk =
  let out = ref [] in
  String.iter
    (fun c ->
      if c = '\n' then begin
        let l = Buffer.contents d.buf in
        Buffer.clear d.buf;
        line d out l
      end
      else Buffer.add_char d.buf c)
    chunk;
  List.rev !out

(* Decode a whole byte string at once. *)
let decode_string s = feed (decoder ()) s

(* ------------------------------------------------------------------ *)
(* Resume.                                                             *)
(* ------------------------------------------------------------------ *)

(* Server side of `Last-Event-ID`: the suffix of an id-ordered event
   line list strictly after [after] ([-1] replays everything).  Lines
   are (id, data) pairs as the daemon stores them. *)
let resume ~after lines =
  List.filter (fun (id, _) -> id > after) lines

let encode_lines lines =
  String.concat "" (List.map (fun (id, data) -> encode ~id data) lines)
