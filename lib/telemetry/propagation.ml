(* Fault-propagation tracing.

   Re-executes the golden (fault-free) run in lockstep with a faulted
   run, from inside the fault injector's per-step observer: after every
   retired instruction the golden machine executes the same instruction,
   and the two architectural states are compared at exactly the
   locations that instruction wrote.  The set of differing locations is
   the *tainted set* — GPRs, SIMD lanes, flag bits and memory bytes the
   flip has reached.  Because both machines are deterministic, the
   incremental comparison is exact while control flow agrees: a location
   can only change when written, so taint is added and removed precisely
   at write-backs (a corrupted value overwritten by an equal one is
   "masked").

   When the two instruction pointers separate (a conditional read a
   tainted flag, or the golden run exits while the faulted run lives
   on), per-location comparison stops being meaningful; the tracer
   records the control divergence and from then on only watches the
   faulted run for checker executions and output events.

   The resulting {!summary} answers the questions the final
   classification cannot: where the flip first became architecturally
   visible, how far it spread, whether it reached ECC-protected memory
   or program output before a checker ran, and — for detected runs — the
   *detection latency* in retired instructions and model cycles, the
   paper's "fast" claim as a per-injection measurement (cf. DME's
   trace-divergence framing and FastFlip's per-site outcome analysis). *)

open Ferrum_asm
module Machine = Ferrum_machine.Machine
module Predecode = Ferrum_machine.Predecode

(* ------------------------------------------------------------------ *)
(* Tainted locations.                                                  *)
(* ------------------------------------------------------------------ *)

type loc =
  | Lgpr of Reg.gpr
  | Lsimd of int * int (* register, 64-bit lane *)
  | Lflag of Cond.flag
  | Lmem of int (* byte address *)

let flag_name = function
  | Cond.ZF -> "ZF"
  | Cond.SF -> "SF"
  | Cond.CF -> "CF"
  | Cond.OF -> "OF"

let loc_name = function
  | Lgpr r -> Printf.sprintf "%%%s" (Reg.gpr_name r Reg.Q)
  | Lsimd (x, lane) -> Printf.sprintf "%%%s[%d]" (Reg.xmm_name x) lane
  | Lflag f -> Printf.sprintf "flags.%s" (flag_name f)
  | Lmem a -> Printf.sprintf "mem[0x%x]" a

type divergence = {
  div_step : int; (* dynamic instruction number of the write-back *)
  div_static : int; (* static index of the diverging instruction *)
  div_locs : loc list; (* locations that first differed, write order *)
}

(* ------------------------------------------------------------------ *)
(* Tracer state.                                                       *)
(* ------------------------------------------------------------------ *)

type phase = Lockstep | Diverged

type t = {
  img : Machine.image;
  golden : Machine.state;
  has_checks : bool;
  reg_taint : (loc, unit) Hashtbl.t; (* GPRs, SIMD lanes, flags *)
  mem_taint : (int, unit) Hashtbl.t; (* byte addresses *)
  mutable phase : phase;
  mutable golden_exited : bool;
  mutable injected_at : int option;
  mutable injected_cycles : float;
  mutable first_divergence : divergence option;
  mutable control_diverged_at : int option;
  mutable peak_taint : int;
  mutable first_mem_taint_at : int option;
  mutable first_output_divergence_at : int option;
  mutable first_check_after_divergence : int option;
  mutable checks_after_divergence : int;
  mutable tainted_checks : int;
  mutable masked_at : int option;
  mutable reactivated_at : int option;
}

let create ?golden (img : Machine.image) =
  {
    img;
    golden =
      (match golden with Some g -> g | None -> Machine.fresh_state img);
    has_checks =
      Array.exists
        (fun (i : Instr.ins) -> i.Instr.prov = Instr.Check)
        img.Machine.code;
    reg_taint = Hashtbl.create 16;
    mem_taint = Hashtbl.create 64;
    phase = Lockstep;
    golden_exited = false;
    injected_at = None;
    injected_cycles = 0.0;
    first_divergence = None;
    control_diverged_at = None;
    peak_taint = 0;
    first_mem_taint_at = None;
    first_output_divergence_at = None;
    first_check_after_divergence = None;
    checks_after_divergence = 0;
    tainted_checks = 0;
    masked_at = None;
    reactivated_at = None;
  }

(* Called by the injector right after it flips the bit(s), before the
   per-step observation of the same instruction. *)
let note_injection t (st : Machine.state) =
  if t.injected_at = None then begin
    t.injected_at <- Some st.Machine.steps;
    t.injected_cycles <- st.Machine.cycles
  end

(* ------------------------------------------------------------------ *)
(* Write-back comparison.                                              *)
(* ------------------------------------------------------------------ *)

(* The memory regions the instruction at [idx] wrote, evaluated under
   one state's register file.  A tainted base register makes the faulted
   store land elsewhere, so callers compare the regions of *both*
   states; comparing the same byte address across the two memories is
   correct regardless of which run wrote it. *)
let write_regions (img : Machine.image) (st : Machine.state) idx =
  let region s (m : Instr.mem) =
    [ (Int64.to_int (Machine.effective_address st m), Reg.size_bytes s) ]
  in
  let stack_slot () =
    (* push/call already decremented RSP: the slot is at the new top *)
    [ (Int64.to_int st.Machine.gpr.{Reg.gpr_index Reg.RSP}, 8) ]
  in
  match img.Machine.code.(idx).Instr.op with
  | Instr.Mov (s, _, Instr.Mem m)
  | Instr.Alu (_, s, _, Instr.Mem m)
  | Instr.Shift (_, s, _, Instr.Mem m)
  | Instr.Neg (s, Instr.Mem m)
  | Instr.Not (s, Instr.Mem m) ->
    region s m
  | Instr.Set (_, Instr.Mem m) -> region Reg.B m
  | Instr.Push _ -> stack_slot ()
  | Instr.Call _ -> (
    match img.Machine.links.(idx) with
    | Machine.L_call _ -> stack_slot ()
    | _ -> [])
  | _ -> []

let flag_value (st : Machine.state) = function
  | Cond.ZF -> st.Machine.zf
  | Cond.SF -> st.Machine.sf
  | Cond.CF -> st.Machine.cf
  | Cond.OF -> st.Machine.off

(* Compare every location the instruction wrote; update the taint sets
   and return the newly tainted locations in write order. *)
let compare_writes t (st : Machine.state) idx =
  let g = t.golden in
  let newly = ref [] in
  let set_reg loc equal =
    if equal then Hashtbl.remove t.reg_taint loc
    else if not (Hashtbl.mem t.reg_taint loc) then begin
      Hashtbl.replace t.reg_taint loc ();
      newly := loc :: !newly
    end
  in
  List.iter
    (function
      | Instr.Dgpr (r, _) ->
        let i = Reg.gpr_index r in
        set_reg (Lgpr r) (Int64.equal st.Machine.gpr.{i} g.Machine.gpr.{i})
      | Instr.Dsimd (x, lanes) ->
        List.iter
          (fun lane ->
            let i = (x * 8) + lane in
            set_reg (Lsimd (x, lane))
              (Int64.equal st.Machine.simd.{i} g.Machine.simd.{i}))
          lanes
      | Instr.Dflags flags ->
        List.iter
          (fun f -> set_reg (Lflag f) (flag_value st f = flag_value g f))
          flags)
    t.img.Machine.dests.(idx);
  let bytes = Bytes.length st.Machine.mem in
  let compare_region (a0, n) =
    for a = max 0 a0 to min (bytes - 1) (a0 + n - 1) do
      if Bytes.get st.Machine.mem a = Bytes.get g.Machine.mem a then
        Hashtbl.remove t.mem_taint a
      else if not (Hashtbl.mem t.mem_taint a) then begin
        Hashtbl.replace t.mem_taint a ();
        newly := Lmem a :: !newly
      end
    done
  in
  List.iter compare_region (write_regions t.img st idx);
  List.iter compare_region (write_regions t.img g idx);
  List.rev !newly

(* ------------------------------------------------------------------ *)
(* Per-step bookkeeping.                                               *)
(* ------------------------------------------------------------------ *)

let mark_control_divergence t (st : Machine.state) idx =
  if t.phase = Lockstep then begin
    t.phase <- Diverged;
    t.control_diverged_at <- Some st.Machine.steps;
    if t.first_divergence = None then
      t.first_divergence <-
        Some
          { div_step = st.Machine.steps; div_static = idx; div_locs = [] }
  end

let taint_bookkeeping t (st : Machine.state) idx newly =
  let rt = Hashtbl.length t.reg_taint and mt = Hashtbl.length t.mem_taint in
  if newly <> [] && t.first_divergence = None then
    t.first_divergence <-
      Some { div_step = st.Machine.steps; div_static = idx; div_locs = newly };
  if mt > 0 && t.first_mem_taint_at = None then
    t.first_mem_taint_at <- Some st.Machine.steps;
  if rt + mt > t.peak_taint then t.peak_taint <- rt + mt;
  match t.first_divergence with
  | None -> ()
  | Some _ ->
    if rt = 0 && mt > 0 && t.masked_at = None then
      t.masked_at <- Some st.Machine.steps
    else if rt > 0 && t.masked_at <> None && t.reactivated_at = None then
      t.reactivated_at <- Some st.Machine.steps

(* Checker and output events; valid in both phases.  After a control
   divergence the comparison against the golden output is no longer
   available, so any print on the separated path counts as a corrupted
   output event (it is wrong-path, or at best unverifiable). *)
let note_instruction t (st : Machine.state) idx =
  let ins = t.img.Machine.code.(idx) in
  if ins.Instr.prov = Instr.Check && t.first_divergence <> None then begin
    t.checks_after_divergence <- t.checks_after_divergence + 1;
    if t.first_check_after_divergence = None then
      t.first_check_after_divergence <- Some st.Machine.steps;
    if Hashtbl.length t.reg_taint > 0 || Hashtbl.length t.mem_taint > 0 then
      t.tainted_checks <- t.tainted_checks + 1
  end;
  match t.img.Machine.links.(idx) with
  | Machine.L_print
    when t.first_output_divergence_at = None && t.first_divergence <> None ->
    let differs =
      match t.phase with
      | Diverged -> true
      | Lockstep -> (
        match (st.Machine.out_rev, t.golden.Machine.out_rev) with
        | a :: _, b :: _ -> not (Int64.equal a b)
        | _ -> true)
    in
    if differs then t.first_output_divergence_at <- Some st.Machine.steps
  | _ -> ()

(* The observer to pass to the injector (it sees post-flip state). *)
let observe t (st : Machine.state) idx =
  match t.phase with
  | Diverged -> note_instruction t st idx
  | Lockstep ->
    if t.golden_exited || t.golden.Machine.ip <> idx then
      (* the faulted run retired an instruction the golden run did not *)
      mark_control_divergence t st idx
    else begin
      (match Predecode.step1 (Predecode.get t.img) t.golden with
      | (_ : int) -> ()
      | exception Machine.Halt _ -> t.golden_exited <- true
      | exception Machine.Trap _ ->
        (* unreachable on the fault-free path; treat as an exit *)
        t.golden_exited <- true);
      let newly = compare_writes t st idx in
      taint_bookkeeping t st idx newly;
      note_instruction t st idx;
      (* If both runs halt on this very instruction no further observe
         arrives and lockstep simply ends; only an IP mismatch while
         both are alive is a control divergence. *)
      if (not t.golden_exited) && st.Machine.ip <> t.golden.Machine.ip then
        mark_control_divergence t st idx
    end

(* ------------------------------------------------------------------ *)
(* Summaries.                                                          *)
(* ------------------------------------------------------------------ *)

type summary = {
  program_has_checks : bool;
  injected_at : int option;
  injected_cycles : float;
  first_divergence : divergence option;
  control_diverged_at : int option;
  peak_taint : int;
  reg_taint_at_end : int;
  mem_taint_at_end : int;
  first_mem_taint_at : int option;
  first_output_divergence_at : int option;
  first_check_after_divergence : int option;
  checks_after_divergence : int;
  tainted_checks : int;
  masked_at : int option;
  reactivated_at : int option;
  end_steps : int;
  end_cycles : float;
}

let finish t (st : Machine.state) =
  {
    program_has_checks = t.has_checks;
    injected_at = t.injected_at;
    injected_cycles = t.injected_cycles;
    first_divergence = t.first_divergence;
    control_diverged_at = t.control_diverged_at;
    peak_taint = t.peak_taint;
    reg_taint_at_end = Hashtbl.length t.reg_taint;
    mem_taint_at_end = Hashtbl.length t.mem_taint;
    first_mem_taint_at = t.first_mem_taint_at;
    first_output_divergence_at = t.first_output_divergence_at;
    first_check_after_divergence = t.first_check_after_divergence;
    checks_after_divergence = t.checks_after_divergence;
    tainted_checks = t.tainted_checks;
    masked_at = t.masked_at;
    reactivated_at = t.reactivated_at;
    end_steps = st.Machine.steps;
    end_cycles = st.Machine.cycles;
  }

let detection_latency s =
  match s.injected_at with
  | None -> None
  | Some at -> Some (s.end_steps - at, s.end_cycles -. s.injected_cycles)

(* ------------------------------------------------------------------ *)
(* Escape explanations for SDCs.                                       *)
(* ------------------------------------------------------------------ *)

type escape =
  | Unprotected_program
  | Unchecked_site
  | Masked_then_reactivated
  | Output_before_check
  | Memory_before_check
  | Check_missed_taint

let escape_name = function
  | Unprotected_program -> "unprotected-program"
  | Unchecked_site -> "unchecked-site"
  | Masked_then_reactivated -> "masked-then-reactivated"
  | Output_before_check -> "output-before-check"
  | Memory_before_check -> "memory-before-check"
  | Check_missed_taint -> "check-missed-taint"

let escape_of_name = function
  | "unprotected-program" -> Some Unprotected_program
  | "unchecked-site" -> Some Unchecked_site
  | "masked-then-reactivated" -> Some Masked_then_reactivated
  | "output-before-check" -> Some Output_before_check
  | "memory-before-check" -> Some Memory_before_check
  | "check-missed-taint" -> Some Check_missed_taint
  | _ -> None

let escape_describe = function
  | Unprotected_program ->
    "the program carries no checkers at all; every corruption that \
     reaches output escapes silently"
  | Unchecked_site ->
    "no checker executed between the corruption and program exit: the \
     faulted site is outside the protected region"
  | Masked_then_reactivated ->
    "the corrupted registers were overwritten (taint fully masked) \
     while a corrupted value survived in ECC-trusted memory, and was \
     later reloaded past the checks that had already passed"
  | Output_before_check ->
    "a corrupted value reached program output before the first checker \
     after the corruption fired"
  | Memory_before_check ->
    "the taint was stored to ECC-trusted memory before the first \
     checker after the corruption ran; later checks only saw clean \
     registers"
  | Check_missed_taint ->
    "checkers executed while the taint was live but compared locations \
     the taint had not reached"

(* Explain why an SDC escaped, from the propagation timeline.  The
   priority order matters: the more specific mechanisms first. *)
let explain_escape s =
  if not s.program_has_checks then Unprotected_program
  else if s.checks_after_divergence = 0 then Unchecked_site
  else if s.reactivated_at <> None then Masked_then_reactivated
  else
    match s.first_check_after_divergence with
    | None -> Unchecked_site
    | Some check -> (
      match s.first_output_divergence_at with
      | Some out when out <= check -> Output_before_check
      | _ -> (
        match s.first_mem_taint_at with
        | Some m when m < check -> Memory_before_check
        | _ -> Check_missed_taint))

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)
(* ------------------------------------------------------------------ *)

let pp_step_opt ppf = function
  | None -> Fmt.string ppf "never"
  | Some s -> Fmt.pf ppf "instruction %d" s

let pp_summary ppf s =
  (match s.injected_at with
  | None -> Fmt.pf ppf "fault: never injected (site unreached)@."
  | Some at ->
    Fmt.pf ppf "injected at retired instruction %d (cycle %.0f)@." at
      s.injected_cycles);
  (match s.first_divergence with
  | None -> Fmt.pf ppf "no architectural divergence: the flip was absorbed@."
  | Some d ->
    Fmt.pf ppf "first divergence at instruction %d (static index %d): %s@."
      d.div_step d.div_static
      (match d.div_locs with
      | [] -> "control flow"
      | locs -> String.concat ", " (List.map loc_name locs)));
  (match s.control_diverged_at with
  | None -> ()
  | Some c -> Fmt.pf ppf "control flow diverged at instruction %d@." c);
  Fmt.pf ppf
    "taint: peak %d location(s); at end %d register(s)/flag(s)/lane(s), %d \
     memory byte(s)@."
    s.peak_taint s.reg_taint_at_end s.mem_taint_at_end;
  Fmt.pf ppf "taint reached memory: %a@." pp_step_opt s.first_mem_taint_at;
  Fmt.pf ppf "corrupted output: %a@." pp_step_opt
    s.first_output_divergence_at;
  (match (s.masked_at, s.reactivated_at) with
  | Some m, Some r ->
    Fmt.pf ppf
      "register taint masked at instruction %d, reactivated from memory at \
       %d@."
      m r
  | Some m, None ->
    Fmt.pf ppf "register taint fully masked at instruction %d@." m
  | None, _ -> ());
  Fmt.pf ppf
    "checkers after divergence: %d (%d with live taint), first at %a@."
    s.checks_after_divergence s.tainted_checks pp_step_opt
    s.first_check_after_divergence;
  Fmt.pf ppf "run ended after %d instructions, %.0f model cycles@."
    s.end_steps s.end_cycles
