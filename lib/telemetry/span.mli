(** Pipeline spans: timed, nested sections of work with counters
    attached by the stage (instructions duplicated, checkers inserted,
    spare registers found, stack requisitions, ...).

    The clock is injectable — [Unix.gettimeofday] by default, a fake
    counter in tests — and the default pretty-printer omits durations so
    test-asserted output stays deterministic. *)

type span = {
  name : string;
  depth : int;  (** nesting level; top-level spans are 0 *)
  order : int;  (** start order over the whole recorder, 0-based *)
  duration : float;  (** seconds under the recorder's clock *)
  counters : (string * int) list;  (** insertion order *)
}

type recorder

val create : ?clock:(unit -> float) -> unit -> recorder

(** Run [f] inside a named span; closes the span even if [f] raises. *)
val span : recorder -> string -> (unit -> 'a) -> 'a

(** Attach a counter to the innermost open span.  With no span open
    the counter is kept on an implicit ["<root>"] span (reported last
    by {!spans}) and the first such stray warns once per recorder on
    stderr — never silently dropped. *)
val counter : recorder -> string -> int -> unit

(** Closed spans in start order, then the implicit root carrying any
    stray counters; open spans are not reported. *)
val spans : recorder -> span list

(** Indented tree; durations only with [~timings:true]. *)
val pp : ?timings:bool -> Format.formatter -> recorder -> unit
