(** Server-Sent Events framing for [ferrum.events.v1] streams.

    Encoder for the daemon ([id:] = event sequence number, [data:] =
    the JSON record) and an incremental decoder for clients and tests.
    The decoder is framing-safe: frames split across arbitrary chunk
    boundaries reassemble into the same event list, so a decoded live
    stream can be handed to {!Events.replay} unchanged.  [id]s make
    `Last-Event-ID` resume exact — {!resume} is the server side of
    that contract. *)

(** {1 Encoding} *)

(** One SSE frame: [id: <id>\ndata: <data>\n\n]. *)
val encode : id:int -> string -> string

(** {!encode} of an event's canonical JSON under its [seq]. *)
val encode_event : Events.t -> string

(** A comment frame ([: text]) — ignored by decoders; used as
    keep-alive and end-of-stream marker. *)
val comment : string -> string

(** A [retry: <ms>] frame (client reconnect delay hint). *)
val retry_frame : int -> string

(** {1 Decoding} *)

type decoder

(** One dispatched SSE event: its [id:] field (if any) and the joined
    [data:] payload. *)
type event = { id : int option; data : string }

val decoder : unit -> decoder

(** Feed one chunk of bytes; returns the events it completed, in
    stream order.  Partial frames are buffered until later chunks
    finish them. *)
val feed : decoder -> string -> event list

(** Id of the last dispatched event carrying one; [-1] initially —
    the value a reconnecting client sends as [Last-Event-ID]. *)
val last_event_id : decoder -> int

(** Decode a complete byte string. *)
val decode_string : string -> event list

(** {1 Resume} *)

(** Server side of [Last-Event-ID]: the suffix of an id-ordered
    [(id, data)] list strictly after [after] ([-1] = everything). *)
val resume : after:int -> (int * string) list -> (int * string) list

(** Encode an [(id, data)] list as consecutive frames. *)
val encode_lines : (int * string) list -> string
