(** Static protection verifier: drives the {!Shadow} scanner over a
    protected program, computes the statically {e uncovered} set of
    fault-injection sites via an interprocedural check-free-path
    analysis, and renders both as [ferrum.lint.v1] JSONL rows.

    {2 Uncovered sites}

    An eligible site (an [Original] instruction with at least one
    injectable destination — exactly {!Ferrum_faultsim}'s sampling
    eligibility) is {e uncovered} when some CFG-consistent path from
    just after it reaches an observable output ([call print_i64]), or
    the program's final return, executing no [Check]-provenance
    instruction.  Dynamically, an SDC whose escape is classified
    [unchecked-site] (no check retired after the divergence) or
    [output-before-check] ran exactly such a path, so every one of
    those escapes must land on a statically uncovered site — the
    cross-validation property `ferrum lint --crossval` replays a
    vulnmap campaign to prove. *)

open Ferrum_asm

type profile = Shadow.profile = {
  asm_dup : bool;
  pair_comparisons : bool;
  simd : bool;
}

val profile_unprotected : profile
val profile_ir_eddi : profile
val profile_hybrid : profile
val profile_ferrum : profile

(** An eligible site with a check-free path to an output or the final
    return. *)
type site = {
  u_static_index : int;  (** flattened index, = the machine's *)
  u_func : string;
  u_label : string;
  u_index : int;  (** within the Prog block *)
  u_site : string;  (** printed instruction *)
}

type report = {
  r_findings : Shadow.finding list;
  r_uncovered : site list;  (** ordered by static index *)
  r_eligible : int;  (** eligible Original sites in the program *)
}

(** Uncovered-site analysis alone (no shadow scan); works on any
    program, protected or not. *)
val uncovered : Prog.t -> site list * int

(** Flattened instruction index of [(label, k)], mirroring
    {!Ferrum_machine.Machine.load}'s layout. *)
val static_index_of : Prog.t -> label:string -> k:int -> int

val run : profile -> Prog.t -> report

(** Error- / warning-severity finding counts. *)
val errors : report -> int

val warnings : report -> int

(** {1 JSONL export (schema [ferrum.lint.v1])} *)

val metrics_kind : string

val record_fields : Ferrum_telemetry.Metrics.field list

(** One row per finding (in program order) followed by one
    [kind = "uncovered-site"] row per uncovered site; byte-identical
    across runs on the same program. *)
val rows : Prog.t -> report -> Ferrum_telemetry.Json.t list

(** Human-readable rendering: findings grouped by severity, then the
    uncovered-set summary. *)
val pp_report : Format.formatter -> report -> unit
