open Ferrum_asm

type severity = Error | Warning | Info

type kind =
  | Unchecked_sync
  | Missing_duplicate
  | Spare_not_dead
  | Simd_batch_unflushed
  | Rflags_unpaired
  | Checker_dead_code

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_func : string;
  f_label : string;
  f_index : int;
  f_site : string;
  f_message : string;
  f_hint : string;
}

type profile = { asm_dup : bool; pair_comparisons : bool; simd : bool }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let kind_name = function
  | Unchecked_sync -> "unchecked-sync"
  | Missing_duplicate -> "missing-duplicate"
  | Spare_not_dead -> "spare-not-dead"
  | Simd_batch_unflushed -> "simd-batch-unflushed"
  | Rflags_unpaired -> "rflags-unpaired"
  | Checker_dead_code -> "checker-dead-code"

let all_kinds =
  [ Unchecked_sync; Missing_duplicate; Spare_not_dead; Simd_batch_unflushed;
    Rflags_unpaired; Checker_dead_code ]

let kind_of_name s =
  List.find_opt (fun k -> String.equal (kind_name k) s) all_kinds

let exit_l = Prog.exit_function_label

(* ------------------------------------------------------------------ *)
(* Shape helpers mirroring [Asm_protect] / [Ferrum_pass] emission.     *)
(* ------------------------------------------------------------------ *)

(* The single GPR destination of an instruction, if any. *)
let dest_gpr (op : Instr.t) =
  match
    List.filter_map
      (function Instr.Dgpr (r, s) -> Some (r, s) | _ -> None)
      (Instr.defs op)
  with
  | [ d ] -> Some d
  | _ -> None

let is_cmp_like = function Instr.Cmp _ | Instr.Test _ -> true | _ -> false

(* The 64-bit value a batch-lane deposit copies, if [op] is one. *)
let deposit_src (op : Instr.t) =
  match op with
  | Instr.MovQ_to_xmm (src, _) -> Some src
  | Instr.Pinsrq (_, Instr.Psrc_reg r, _) -> Some (Instr.Reg r)
  | Instr.Pinsrq (_, Instr.Psrc_mem m, _) -> Some (Instr.Mem m)
  | _ -> None

(* Does [dup] re-execute [orig] with only the destination renamed?
   (the Fig. 4 duplicate-first family of [Asm_protect]) *)
let reexec_match (dup : Instr.t) (orig : Instr.t) =
  match (dup, orig) with
  | Instr.Mov (w1, s1, Instr.Reg _), Instr.Mov (w2, s2, Instr.Reg _) ->
    w1 = w2 && s1 = s2
  | Instr.Movslq (s1, _), Instr.Movslq (s2, _) -> s1 = s2
  | Instr.Movzbq (s1, _), Instr.Movzbq (s2, _) -> s1 = s2
  | Instr.Lea (m1, _), Instr.Lea (m2, _) -> m1 = m2
  | Instr.Set (c1, Instr.Reg _), Instr.Set (c2, Instr.Reg _) -> c1 = c2
  | Instr.MovQ_from_xmm (x1, _), Instr.MovQ_from_xmm (x2, _) -> x1 = x2
  | Instr.Pextrq (l1, x1, _), Instr.Pextrq (l2, x2, _) -> l1 = l2 && x1 = x2
  | _ -> false

(* Does [dup] apply the same accumulator operation to spare [s] that
   [orig] applies to [d]?  ([Asm_protect] redirects a source equal to
   the destination onto the spare, so sources need not coincide.) *)
let acc_match (dup : Instr.t) (orig : Instr.t) ~s ~d =
  let src_ok s1 s2 =
    s1 = s2
    || match (s1, s2) with
       | Instr.Reg r1, Instr.Reg r2 -> Reg.equal_gpr r1 s && Reg.equal_gpr r2 d
       | _ -> false
  in
  match (dup, orig) with
  | Instr.Alu (o1, w1, src1, Instr.Reg r1), Instr.Alu (o2, w2, src2, Instr.Reg r2)
    ->
    o1 = o2 && w1 = w2 && src_ok src1 src2 && Reg.equal_gpr r1 s
    && Reg.equal_gpr r2 d
  | ( Instr.Shift (k1, w1, a1, Instr.Reg r1),
      Instr.Shift (k2, w2, a2, Instr.Reg r2) ) ->
    k1 = k2 && w1 = w2 && a1 = a2 && Reg.equal_gpr r1 s && Reg.equal_gpr r2 d
  | Instr.Neg (w1, Instr.Reg r1), Instr.Neg (w2, Instr.Reg r2)
  | Instr.Not (w1, Instr.Reg r1), Instr.Not (w2, Instr.Reg r2) ->
    w1 = w2 && Reg.equal_gpr r1 s && Reg.equal_gpr r2 d
  | _ -> false

(* An instrumentation-provenance 64-bit register-to-register copy. *)
let icopy (x : Instr.ins) =
  match (x.Instr.prov, x.Instr.op) with
  | Instr.Instrumentation, Instr.Mov (Reg.Q, Instr.Reg s, Instr.Reg d) ->
    Some (s, d)
  | _ -> None

(* What a call may read in the *original* program: argument registers,
   the stack frame, and the accumulator (for re-called results).  The
   default "a call reads everything" conservatism would make every
   spare acquired before a call look live. *)
let original_call_reads =
  Reg.[ RDI; RSI; RDX; RCX; R8; R9; RAX; RSP; RBP ]

(* ------------------------------------------------------------------ *)
(* Per-function scan.                                                  *)
(* ------------------------------------------------------------------ *)

(* A comparison owed to a duplicated site and not yet discharged by a
   checker or a pair of batch-lane deposits. *)
type owed = {
  o_orig : Reg.gpr;
  o_dup : Instr.operand;
  o_site : int;  (** index of the original instruction in its block *)
  mutable o_reported : bool;
}

let scan_func (profile : profile) (f : Prog.func) : finding list =
  if not profile.asm_dup then []
  else begin
    let findings = ref [] in
    let liveness =
      lazy
        (Liveness.analyze ~call_reads:original_call_reads
           ~keep:(fun i -> i.Instr.prov = Instr.Original)
           f)
    in
    (* every setcc destination in the function: byte compares between
       two of these are Fig. 5 flag-pair verifications *)
    let set_regs = Hashtbl.create 8 in
    (* labels whose block opens with the deferred pair verification *)
    let entry_checked = Hashtbl.create 8 in
    List.iter
      (fun (b : Prog.block) ->
        List.iter
          (fun (i : Instr.ins) ->
            match i.op with
            | Instr.Set (_, Instr.Reg r) -> Hashtbl.replace set_regs r ()
            | _ -> ())
          b.insns;
        match b.insns with
        | { Instr.prov = Check; op = Instr.Cmp (Reg.B, Instr.Reg _, Instr.Reg _) }
          :: { Instr.prov = Check; op = Instr.Jcc (Cond.NE, l) }
          :: _
          when String.equal l exit_l ->
          Hashtbl.replace entry_checked b.label ()
        | _ -> ())
      f.blocks;
    let is_pair_check w dup_op orig =
      w = Reg.B
      && (match dup_op with
         | Instr.Reg r -> Hashtbl.mem set_regs r && Hashtbl.mem set_regs orig
         | _ -> false)
    in
    let walk_block (b : Prog.block) =
      let a = Array.of_list b.insns in
      let n = Array.length a in
      let get i = if i >= 0 && i < n then Some a.(i) else None in
      let add ?(severity = Error) kind i message hint =
        let site =
          match get i with
          | Some ins -> Printer.string_of_instr ins.Instr.op
          | None -> "<end of block>"
        in
        findings :=
          { f_kind = kind; f_severity = severity; f_func = f.fname;
            f_label = b.label; f_index = min i (max 0 (n - 1));
            f_site = site; f_message = message; f_hint = hint }
          :: !findings
      in
      let owed = ref [] in
      let batch = ref [] in (* (site index, original reg) pending lanes *)
      let saved = ref [] in (* push-saved (requisitioned) registers *)
      let new_owed ~acq ~site ~orig ~dup =
        (match dup with
        | Instr.Reg s when not (List.exists (Reg.equal_gpr s) !saved) -> (
          match Liveness.live_in_at (Lazy.force liveness) ~label:b.label ~k:acq with
          | Some live when Liveness.GSet.mem s live ->
            add Spare_not_dead site
              (Fmt.str
                 "spare %s holds the duplicate of %s but is live in the \
                  original program at its acquisition"
                 (Reg.gpr_name s Reg.Q) (Reg.gpr_name orig Reg.Q))
              "pick a register that is dead here, or save/restore it with \
               push/pop (Fig. 7)"
          | _ -> ())
        | _ -> ());
        owed := { o_orig = orig; o_dup = dup; o_site = site; o_reported = false }
                :: !owed
      in
      let discharge ~dup_op ~orig =
        match
          List.find_opt
            (fun o -> o.o_dup = dup_op && Reg.equal_gpr o.o_orig orig)
            !owed
        with
        | Some o ->
          owed := List.filter (fun x -> x != o) !owed;
          true
        | None -> false
      in
      let batch_pair op1 op2 =
        match op2 with
        | Instr.Reg r2 -> (
          match
            List.find_opt
              (fun o -> o.o_dup = op1 && Reg.equal_gpr o.o_orig r2)
              !owed
          with
          | Some o ->
            owed := List.filter (fun x -> x != o) !owed;
            batch := (o.o_site, o.o_orig) :: !batch;
            true
          | None -> false)
        | _ -> false
      in
      let sync_owed what =
        List.iter
          (fun o ->
            if not o.o_reported then begin
              o.o_reported <- true;
              add Unchecked_sync o.o_site
                (Fmt.str
                   "duplicate of %s is never compared before %s retires"
                   (Reg.gpr_name o.o_orig Reg.Q) what)
                "emit the checker (or batch deposits) before the next sync \
                 point"
            end)
          !owed
      in
      let sync_flush i what =
        match !batch with
        | [] -> ()
        | lanes ->
          add Simd_batch_unflushed i
            (Fmt.str "%d batched comparison(s) still pending at %s"
               (List.length lanes) what)
            "flush the SIMD batch (vpxor+vptest+jne) before this point";
          batch := []
      in
      let rec go i =
        if i >= n then begin
          sync_owed "the end of the block";
          sync_flush (n - 1) "the end of the block"
        end
        else
          let ins = a.(i) in
          match (ins.Instr.prov, ins.Instr.op) with
          (* -------- checks -------- *)
          | Instr.Check, (Instr.Vpxor _ | Instr.Vpxorq512 _) -> (
            match (get (i + 1), get (i + 2)) with
            | ( Some { Instr.prov = Check;
                       op = Instr.Vptest _ | Instr.Vptestmq512 _ },
                Some { Instr.prov = Check; op = Instr.Jcc (Cond.NE, l) } )
              when String.equal l exit_l ->
              batch := [];
              go (i + 3)
            | _ -> go (i + 1))
          | Instr.Check, Instr.Cmp (w, dup_op, Instr.Reg orig) -> (
            match get (i + 1) with
            | Some { Instr.prov = Check; op = Instr.Jcc (Cond.NE, l) }
              when String.equal l exit_l ->
              if discharge ~dup_op ~orig then go (i + 2)
              else if is_pair_check w dup_op orig then go (i + 2)
              else begin
                add Checker_dead_code i
                  "checker guards no duplicate (its shadow was never \
                   produced)"
                  "restore the duplicate this checker compares, or delete \
                   the checker";
                go (i + 2)
              end
            | _ ->
              (* Not the Asm_protect checker shape (cmp + jne exit):
                 IR-level check code lowers to Check-provenance
                 cmp/set/branch sequences of its own — leave those to
                 the uncovered-set analysis. *)
              go (i + 1))
          | Instr.Check, _ -> go (i + 1)
          (* -------- instrumentation -------- *)
          | Instr.Instrumentation, _ when icopy ins <> None -> (
            let s, d = Option.get (icopy ins) in
            (* idiv save/compute/restore/re-divide cluster *)
            let idiv_cluster () =
              match
                ( get (i + 1), get (i + 2), get (i + 3), get (i + 4),
                  get (i + 5), get (i + 6), get (i + 7) )
              with
              | ( Some c1, Some ({ Instr.prov = Original;
                                   op = Instr.Idiv (sz, src) } as _div),
                  Some c3, Some c4, Some c5, Some c6,
                  Some { Instr.prov = Dup; op = Instr.Idiv (sz', src') } )
                when sz = sz' && src = src' -> (
                match (icopy c1, icopy c3, icopy c4, icopy c5, icopy c6) with
                | ( Some (rdx, s1), Some (rax2, s2), Some (rdx2, s3),
                    Some (s0', rax'), Some (s1', rdx') )
                  when Reg.equal_gpr s Reg.RAX && Reg.equal_gpr rdx Reg.RDX
                       && Reg.equal_gpr rax2 Reg.RAX
                       && Reg.equal_gpr rdx2 Reg.RDX
                       && Reg.equal_gpr s0' d && Reg.equal_gpr s1' s1
                       && Reg.equal_gpr rax' Reg.RAX
                       && Reg.equal_gpr rdx' Reg.RDX ->
                  new_owed ~acq:i ~site:(i + 2) ~orig:Reg.RAX
                    ~dup:(Instr.Reg s2);
                  new_owed ~acq:i ~site:(i + 2) ~orig:Reg.RDX
                    ~dup:(Instr.Reg s3);
                  true
                | _ -> false)
              | _ -> false
            in
            (* icopy returns (source, destination): an accumulator copy
               moves the original destination register [s] into the
               spare [d] before the duplicate runs on the spare. *)
            match (get (i + 1), get (i + 2)) with
            | _ when Reg.equal_gpr s Reg.RAX && idiv_cluster () -> go (i + 8)
            | ( Some { Instr.prov = Dup; op = dop },
                Some ({ Instr.prov = Original; op = oop } as _orig) )
              when acc_match dop oop ~s:d ~d:s ->
              new_owed ~acq:i ~site:(i + 2) ~orig:s ~dup:(Instr.Reg d);
              go (i + 3)
            | _ -> go (i + 1))
          | Instr.Instrumentation, Instr.Push (Instr.Reg r) ->
            saved := r :: !saved;
            go (i + 1)
          | Instr.Instrumentation, Instr.Pop r ->
            saved := List.filter (fun x -> not (Reg.equal_gpr x r)) !saved;
            go (i + 1)
          | Instr.Instrumentation, op when deposit_src op <> None -> (
            let op1 = Option.get (deposit_src op) in
            match get (i + 1) with
            | Some { Instr.prov = Instrumentation; op = op2 }
              when deposit_src op2 <> None
                   && batch_pair op1 (Option.get (deposit_src op2)) ->
              go (i + 2)
            | _ -> go (i + 1))
          | Instr.Instrumentation, _ -> go (i + 1)
          (* -------- duplicates -------- *)
          | Instr.Dup, dop when deposit_src dop <> None -> (
            (* SIMD-ENABLED move: dup deposit, original, original deposit *)
            match (get (i + 1), get (i + 2)) with
            | ( Some { Instr.prov = Original;
                       op = Instr.Mov (Reg.Q, _, Instr.Reg d) },
                Some { Instr.prov = Instrumentation; op = dop2 } )
              when deposit_src dop2 = Some (Instr.Reg d) ->
              batch := (i + 1, d) :: !batch;
              go (i + 3)
            | _ -> go (i + 1))
          | Instr.Dup, dop -> (
            match (dest_gpr dop, get (i + 1)) with
            | Some (s, _), Some { Instr.prov = Original; op = oop }
              when reexec_match dop oop -> (
              match dest_gpr oop with
              | Some (d, _) ->
                new_owed ~acq:i ~site:(i + 1) ~orig:d ~dup:(Instr.Reg s);
                go (i + 2)
              | None -> go (i + 1))
            | _ -> go (i + 1))
          (* -------- originals -------- *)
          | Instr.Original, op when is_cmp_like op ->
            sync_owed "a compare";
            sync_flush i "a compare (the transform flushes before compares)";
            handle_cmp i
          | Instr.Original, Instr.Cqto -> (
            match (get (i + 1), get (i + 2)) with
            | Some c1, Some { Instr.prov = Dup; op = Instr.Cqto } -> (
              match icopy c1 with
              | Some (rdx, s) when Reg.equal_gpr rdx Reg.RDX ->
                new_owed ~acq:(i + 1) ~site:i ~orig:Reg.RDX
                  ~dup:(Instr.Reg s);
                go (i + 3)
              | _ -> missing_dup i)
            | _ -> missing_dup i)
          | Instr.Original, Instr.Idiv _ -> missing_dup i
          | Instr.Original, Instr.Pop d ->
            new_owed ~acq:i ~site:i ~orig:d
              ~dup:(Instr.Mem (Instr.mem ~base:Reg.RSP (-8)));
            go (i + 1)
          | Instr.Original, Instr.Mov (_, _, Instr.Mem _) ->
            sync_owed "a store";
            (match !batch with
            | [] -> ()
            | lanes ->
              add ~severity:Info Unchecked_sync i
                (Fmt.str
                   "store retires inside an open SIMD batch window (%d \
                    lane pair(s) pending)"
                   (List.length lanes))
                "accepted memory-before-check exposure; flush earlier to \
                 close the window");
            go (i + 1)
          | Instr.Original, (Instr.Jmp _ | Instr.Ret) ->
            sync_owed "a control transfer";
            sync_flush i "a jump/return";
            go (i + 1)
          | Instr.Original, Instr.Call _ ->
            sync_owed "a call";
            sync_flush i "a call";
            go (i + 1)
          | Instr.Original, Instr.Jcc _ ->
            sync_owed "a branch";
            sync_flush i "a branch";
            if profile.pair_comparisons then
              add ~severity:Warning Rflags_unpaired i
                "branch without the set<cc> pair capture of its compare"
                "protect the compare/branch with the Fig. 5 deferred \
                 detection sequence";
            go (i + 1)
          | Instr.Original, op when dest_gpr op <> None ->
            let writes_sp =
              match dest_gpr op with
              | Some (r, _) -> Reg.equal_gpr r Reg.RSP || Reg.equal_gpr r Reg.RBP
              | None -> false
            in
            add ~severity:Warning Missing_duplicate i
              (if writes_sp then
                 "stack-register write carries no duplicate (requisition \
                  around RSP/RBP is unsound; counted as unprotected by the \
                  transform)"
               else "protectable instruction carries no duplicate")
              "duplicate it via Fig. 4, or record an explicit waiver";
            go (i + 1)
          | _ -> go (i + 1)
      and missing_dup i =
        add ~severity:Warning Missing_duplicate i
          "protectable instruction carries no duplicate"
          "duplicate it via Fig. 4, or record an explicit waiver";
        go (i + 1)
      and handle_cmp i =
        (* Fig. 5 set<cc> pair capture, possibly behind two requisition
           pushes (pair-less functions). *)
        let capture off =
          match (get (i + off + 1), get (i + off + 2), get (i + off + 3)) with
          | ( Some { Instr.prov = Instrumentation;
                     op = Instr.Set (_, Instr.Reg pa) },
              Some { Instr.prov = Dup; op = dcmp },
              Some { Instr.prov = Dup; op = Instr.Set (_, Instr.Reg pb) } )
            when is_cmp_like dcmp ->
            Some (pa, pb, i + off + 3)
          | _ -> None
        in
        let cap =
          match capture 0 with
          | Some c -> Some c
          | None -> (
            match (get (i + 1), get (i + 2)) with
            | ( Some { Instr.prov = Instrumentation; op = Instr.Push _ },
                Some { Instr.prov = Instrumentation; op = Instr.Push _ } ) ->
              capture 2
            | _ -> None)
        in
        let pair_check_at j pa pb =
          match (get j, get (j + 1)) with
          | ( Some { Instr.prov = Check;
                     op = Instr.Cmp (Reg.B, Instr.Reg b', Instr.Reg a') },
              Some { Instr.prov = Check; op = Instr.Jcc (Cond.NE, l) } )
            when String.equal l exit_l && Reg.equal_gpr b' pb
                 && Reg.equal_gpr a' pa ->
            true
          | _ -> false
        in
        match cap with
        | Some (pa, pb, c3) -> (
          match get (c3 + 1) with
          | Some { Instr.prov = Original; op = Instr.Jcc (_, tgt) } ->
            if not (pair_check_at (c3 + 2) pa pb) then
              add Rflags_unpaired (c3 + 1)
                "protected branch retires with no fall-through pair \
                 verification"
                "re-verify the set<cc> pair right after the branch (Fig. 5)";
            if
              (not (String.equal tgt exit_l))
              && not (Hashtbl.mem entry_checked tgt)
            then
              add Rflags_unpaired (c3 + 1)
                (Fmt.str
                   "jump target %s lacks the entry pair verification" tgt)
                "insert the set<cc> pair check at the top of the target \
                 block (Fig. 5 deferred detection)";
            go (c3 + 2)
          | Some { Instr.prov = Original; op = Instr.Set _ } ->
            if not (pair_check_at (c3 + 2) pa pb) then
              add Rflags_unpaired (c3 + 1)
                "protected setcc retires with no pair verification"
                "re-verify the set<cc> pair right after the setcc (Fig. 5)";
            go (c3 + 2)
          | Some { Instr.prov = Check; op = Instr.Cmp (Reg.B, _, _) } ->
            (* requisitioned immediate-detection variant: checks, pops and
               the re-materialising compare precede the branch *)
            let rec fwd j =
              if j >= n then go j
              else
                match (a.(j).Instr.prov, a.(j).Instr.op) with
                | Instr.Original, Instr.Jcc _ -> go (j + 1)
                | Instr.Original, _ -> go j
                | _ -> fwd (j + 1)
            in
            fwd (c3 + 1)
          | _ -> go (c3 + 1))
        | None -> (
          match get (i + 1) with
          | Some { Instr.prov = Original; op = Instr.Jcc _ | Instr.Set _ } ->
            if profile.pair_comparisons then
              add ~severity:Warning Rflags_unpaired (i + 1)
                "flag consumer without the set<cc> pair capture"
                "protect the compare and its consumer with the Fig. 5 \
                 sequence";
            go (i + 2)
          | _ ->
            (* flags unread before redefinition: benign *)
            go (i + 1))
      in
      if n > 0 then go 0
    in
    List.iter walk_block f.blocks;
    List.rev !findings
  end

let scan profile (p : Prog.t) : finding list =
  List.concat_map (scan_func profile) p.funcs
