open Ferrum_asm

module GSet = Set.Make (struct
  type t = Reg.gpr

  let compare = Reg.compare_gpr
end)

let reads ?(call_reads = Reg.all_gprs) (i : Instr.t) : GSet.t =
  let of_operand = function
    | Instr.Reg r -> [ r ]
    | Instr.Mem m -> Instr.gprs_of_mem m
    | Instr.Imm _ -> []
  in
  let addr_only = function
    | Instr.Mem m -> Instr.gprs_of_mem m
    | Instr.Reg _ | Instr.Imm _ -> []
  in
  let l =
    match i with
    | Instr.Mov (_, src, dst) -> of_operand src @ addr_only dst
    | Instr.Movslq (src, _) | Instr.Movzbq (src, _) -> of_operand src
    | Instr.Lea (m, _) -> Instr.gprs_of_mem m
    (* two-operand ALU and shifts read their destination too *)
    | Instr.Alu (_, _, src, dst) -> of_operand src @ of_operand dst
    | Instr.Shift (_, _, amt, dst) ->
      (match amt with Instr.Amt_cl -> [ Reg.RCX ] | Instr.Amt_imm _ -> [])
      @ of_operand dst
    | Instr.Neg (_, o) | Instr.Not (_, o) -> of_operand o
    | Instr.Cmp (_, a, b) | Instr.Test (_, a, b) -> of_operand a @ of_operand b
    | Instr.Set (_, dst) -> addr_only dst
    | Instr.Jmp _ | Instr.Jcc _ -> []
    | Instr.Call _ -> call_reads
    | Instr.Ret -> Reg.[ RAX; RSP; RBP ]
    | Instr.Push o -> Reg.RSP :: of_operand o
    | Instr.Pop _ -> [ Reg.RSP ]
    | Instr.Cqto -> [ Reg.RAX ]
    | Instr.Idiv (_, o) -> Reg.[ RAX; RDX ] @ of_operand o
    | Instr.MovQ_to_xmm (o, _) -> of_operand o
    | Instr.MovQ_from_xmm _ -> []
    | Instr.Pinsrq (_, s, _) -> Instr.gprs_of_pinsr_src s
    | Instr.Pextrq _ -> []
    | Instr.Vinserti128 _ | Instr.Vpxor _ | Instr.Vptest _
    | Instr.Vinserti64x4 _ | Instr.Vpxorq512 _ | Instr.Vptestmq512 _ -> []
  in
  GSet.of_list l

let writes (i : Instr.t) : GSet.t =
  let l =
    List.filter_map
      (function
        | Instr.Dgpr (r, (Reg.Q | Reg.D)) -> Some r
        | Instr.Dgpr (_, (Reg.B | Reg.W)) -> None
        | Instr.Dsimd _ | Instr.Dflags _ -> None)
      (Instr.defs i)
  in
  let l =
    match i with Instr.Push _ | Instr.Pop _ -> Reg.RSP :: l | _ -> l
  in
  GSet.of_list l

type t = {
  live_in : (string * int, GSet.t) Hashtbl.t;
  block_live_out : (string, GSet.t) Hashtbl.t;
}

let analyze ?call_reads ?(keep = fun (_ : Instr.ins) -> true) (f : Prog.func) :
    t =
  let module D = struct
    type fact = GSet.t

    let bottom = GSet.empty
    let equal = GSet.equal
    let join = GSet.union

    let transfer (ins : Instr.ins) live =
      if keep ins then
        GSet.union (reads ?call_reads ins.op)
          (GSet.diff live (writes ins.op))
      else live
  end in
  let module E = Dataflow.Make (D) in
  let cfg = Cfg.build f in
  let sol = E.solve Dataflow.Backward cfg in
  let live_in = Hashtbl.create 256 in
  let block_live_out = Hashtbl.create 16 in
  Array.iteri
    (fun id (b : Cfg.block) ->
      (* the last CFG block of each Prog block carries its live-out *)
      Hashtbl.replace block_live_out b.label (E.block_out sol id);
      Array.iteri
        (fun k _ ->
          let label, kk = Cfg.position cfg id k in
          Hashtbl.replace live_in (label, kk) (E.before sol id k))
        b.insns)
    cfg.blocks;
  { live_in; block_live_out }

let live_in_at t ~label ~k = Hashtbl.find_opt t.live_in (label, k)

let dead_at t ~label ~k r =
  match live_in_at t ~label ~k with
  | Some live -> not (GSet.mem r live)
  | None -> false

let block_live_out t ~label =
  Option.value ~default:GSet.empty (Hashtbl.find_opt t.block_live_out label)
