(** Shadow-consistency abstract interpretation over protected assembly.

    The protection transforms (paper Figs. 4–7) promise that every
    duplicated value is compared against its shadow — a spare GPR, the
    still-intact stack slot of a [pop], or a SIMD batch lane — before
    the value can influence a sync point (store, branch, call, return).
    This scanner walks each block recognising the exact emission shapes
    of [Asm_protect] and [Ferrum_pass], tracks which shadows are live
    and whether they have been checked since their defining site, and
    reports violations as typed findings.

    The scanner is exact on transform output and conservative on
    mutations of it: an unrecognised duplicate simply never discharges
    and surfaces at the next sync point. *)

open Ferrum_asm

type severity = Error | Warning | Info

type kind =
  | Unchecked_sync
      (** a live duplicate reached a sync point (store/branch/call/
          return/block end) without its comparison; also (at Info
          severity) a store retiring inside an open SIMD batch window —
          the paper's accepted memory-before-check exposure *)
  | Missing_duplicate
      (** a protectable original instruction carries no duplicate
          (the transforms' own [unprotected]/[skipped] counters
          legitimise these, hence Warning) *)
  | Spare_not_dead
      (** a spare register holding a duplicate is live-in at its
          acquisition point under original-program liveness *)
  | Simd_batch_unflushed
      (** collected batch lanes still pending at a point where the
          transform guarantees a flush (compare, jump, call, return,
          block end) *)
  | Rflags_unpaired
      (** a flag-consuming branch/setcc without the Fig. 5 set<cc>
          pair capture, or a protected branch whose target block lacks
          the entry pair verification *)
  | Checker_dead_code
      (** a checker compare/branch that guards no duplicate (e.g. its
          duplicate was deleted) and is not a flag-pair verification *)

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_func : string;
  f_label : string;  (** enclosing Prog block *)
  f_index : int;  (** instruction index within that block *)
  f_site : string;  (** printed instruction at the site *)
  f_message : string;
  f_hint : string;  (** how to fix *)
}

(** What the applied technique promises, hence what the scanner
    enforces.  [asm_dup]: originals with a GPR destination carry
    Fig. 4 duplicates.  [pair_comparisons]: compare/branch sequences
    carry the Fig. 5 set<cc> pair capture (false for the hybrid
    baseline, which protects comparisons at IR level).  [simd]:
    duplicate comparisons may be batched through SIMD lanes
    (Figs. 6–7). *)
type profile = { asm_dup : bool; pair_comparisons : bool; simd : bool }

val severity_name : severity -> string
val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

(** Scan one function.  No findings when [profile.asm_dup] is false:
    IR-level techniques leave no assembly-level invariants to check. *)
val scan_func : profile -> Prog.func -> finding list

(** Scan every function of a program, in layout order. *)
val scan : profile -> Prog.t -> finding list
