open Ferrum_asm

type direction = Forward | Backward

module type DOMAIN = sig
  type fact

  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val transfer : Instr.ins -> fact -> fact
end

module Make (D : DOMAIN) = struct
  type t = {
    cfg : Cfg.t;
    dir : direction;
    entry : D.fact array;  (** execution-order block-entry facts *)
    exit_ : D.fact array;  (** execution-order block-exit facts *)
  }

  (* Push a fact through a whole block in [dir] order. *)
  let through dir (insns : Instr.ins array) fact =
    let n = Array.length insns in
    let acc = ref fact in
    (match dir with
    | Forward -> for k = 0 to n - 1 do acc := D.transfer insns.(k) !acc done
    | Backward -> for k = n - 1 downto 0 do acc := D.transfer insns.(k) !acc done);
    !acc

  let solve dir (cfg : Cfg.t) =
    let n = Array.length cfg.blocks in
    (* [inp] is the fact at the edge where flow enters a block in the
       analysis direction: block entry for forward, block exit for
       backward.  [out] is the other side. *)
    let inp = Array.make n D.bottom in
    let out = Array.make n D.bottom in
    let order = Cfg.reverse_postorder cfg in
    let order =
      match dir with
      | Forward -> order
      | Backward ->
        let m = Array.length order in
        Array.init m (fun i -> order.(m - 1 - i))
    in
    let sources i =
      match dir with
      | Forward -> cfg.blocks.(i).Cfg.preds
      | Backward -> cfg.blocks.(i).Cfg.succs
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun i ->
          let j =
            List.fold_left (fun acc p -> D.join acc out.(p)) D.bottom (sources i)
          in
          inp.(i) <- j;
          let o = through dir cfg.blocks.(i).Cfg.insns j in
          if not (D.equal o out.(i)) then begin
            out.(i) <- o;
            changed := true
          end)
        order
    done;
    let entry, exit_ =
      match dir with Forward -> (inp, out) | Backward -> (out, inp)
    in
    { cfg; dir; entry; exit_ }

  let before t block k =
    let insns = t.cfg.Cfg.blocks.(block).Cfg.insns in
    match t.dir with
    | Forward ->
      let acc = ref t.entry.(block) in
      for i = 0 to k - 1 do acc := D.transfer insns.(i) !acc done;
      !acc
    | Backward ->
      let n = Array.length insns in
      let acc = ref t.exit_.(block) in
      for i = n - 1 downto k do acc := D.transfer insns.(i) !acc done;
      !acc

  let after t block k = before t block (k + 1)
  let block_in t i = t.entry.(i)
  let block_out t i = t.exit_.(i)
end
