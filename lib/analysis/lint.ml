open Ferrum_asm
module Json = Ferrum_telemetry.Json
module Metrics = Ferrum_telemetry.Metrics

type profile = Shadow.profile = {
  asm_dup : bool;
  pair_comparisons : bool;
  simd : bool;
}

let profile_unprotected =
  { asm_dup = false; pair_comparisons = false; simd = false }

(* IR-level EDDI leaves no assembly-level duplication invariants: its
   checks are ordinary lowered compares, so only the uncovered-set
   analysis applies. *)
let profile_ir_eddi = profile_unprotected
let profile_hybrid = { asm_dup = true; pair_comparisons = false; simd = false }
let profile_ferrum = { asm_dup = true; pair_comparisons = true; simd = true }

type site = {
  u_static_index : int;
  u_func : string;
  u_label : string;
  u_index : int;
  u_site : string;
}

type report = {
  r_findings : Shadow.finding list;
  r_uncovered : site list;
  r_eligible : int;
}

(* ------------------------------------------------------------------ *)
(* Flattening, mirroring Machine.load's layout exactly so static       *)
(* indices agree with the injector's.                                  *)
(* ------------------------------------------------------------------ *)

type link = L_none | L_target of int | L_call of int | L_detect | L_print

type flat = {
  code : Instr.ins array;
  links : link array;
  pos : (string * string * int) array;  (** func, label, k per index *)
  index_of : (string * int, int) Hashtbl.t;
  entry_range : int * int;
}

let flatten (p : Prog.t) : flat =
  let items = ref [] and n = ref 0 in
  let label_ix = Hashtbl.create 64 in
  let func_ix = Hashtbl.create 16 in
  let index_of = Hashtbl.create 256 in
  let entry_range = ref (0, 0) in
  List.iter
    (fun (f : Prog.func) ->
      let start = !n in
      Hashtbl.replace func_ix f.fname start;
      List.iter
        (fun (b : Prog.block) ->
          Hashtbl.replace label_ix b.label !n;
          List.iteri
            (fun k (i : Instr.ins) ->
              Hashtbl.replace index_of (b.label, k) !n;
              items := (i, f.fname, b.label, k) :: !items;
              incr n)
            b.insns)
        f.blocks;
      if String.equal f.fname p.entry then entry_range := (start, !n))
    p.funcs;
  let items = Array.of_list (List.rev !items) in
  let code = Array.map (fun (i, _, _, _) -> i) items in
  let pos = Array.map (fun (_, f, l, k) -> (f, l, k)) items in
  let resolve_label l =
    if String.equal l Prog.exit_function_label then L_detect
    else
      match Hashtbl.find_opt label_ix l with
      | Some i -> L_target i
      | None -> L_none
  in
  let links =
    Array.map
      (fun (i : Instr.ins) ->
        match i.op with
        | Instr.Jmp l | Instr.Jcc (_, l) -> resolve_label l
        | Instr.Call f ->
          if String.equal f Prog.builtin_print then L_print
          else if String.equal f Prog.builtin_detect then L_detect
          else (
            match Hashtbl.find_opt func_ix f with
            | Some i -> L_call i
            | None -> L_none)
        | _ -> L_none)
      code
  in
  { code; links; pos; index_of; entry_range = !entry_range }

let static_index_of p ~label ~k =
  let fl = flatten p in
  Option.value ~default:(-1) (Hashtbl.find_opt fl.index_of (label, k))

(* ------------------------------------------------------------------ *)
(* Check-free-path analysis (uncovered set).                           *)
(*                                                                     *)
(* Backward boolean fixpoint over the flattened program, with per-      *)
(* function summaries read off the entry index:                        *)
(*   E(i): a path from before i reaches `call print` or the entry      *)
(*         function's return with no Check-provenance instruction;     *)
(*   Q(i): a path from before i reaches this function's Ret with no    *)
(*         Check-provenance instruction (the "transparent callee"      *)
(*         summary).                                                   *)
(* Both start false and only ever grow, so the iteration converges to  *)
(* the least fixpoint even through recursion.                          *)
(* ------------------------------------------------------------------ *)

let uncovered (p : Prog.t) : site list * int =
  let fl = flatten p in
  let len = Array.length fl.code in
  let e = Array.make len false and q = Array.make len false in
  let s_entry, e_entry = fl.entry_range in
  let in_entry i = i >= s_entry && i < e_entry in
  let nxt arr i = if i + 1 < len then arr.(i + 1) else false in
  (* A non-entry Ret continues at every caller's return site, so its E
     joins the continuations of all call sites targeting this function
     (context-insensitive, hence an over-approximation). *)
  let fstart = Array.make len 0 in
  let starts = ref [] in
  Array.iteri
    (fun i (f, _, _) ->
      (match !starts with
      | (f', _) :: _ when String.equal f f' -> ()
      | _ -> starts := (f, i) :: !starts);
      fstart.(i) <- snd (List.hd !starts))
    fl.pos;
  let callers = Hashtbl.create 16 in
  Array.iteri
    (fun i link ->
      match link with
      | L_call t ->
        Hashtbl.replace callers t
          ((i + 1) :: Option.value ~default:[] (Hashtbl.find_opt callers t))
      | _ -> ())
    fl.links;
  let ret_e i =
    match Hashtbl.find_opt callers fstart.(i) with
    | None -> false
    | Some conts -> List.exists (fun c -> c < len && e.(c)) conts
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = len - 1 downto 0 do
      let ins = fl.code.(i) in
      let ev, qv =
        if ins.Instr.prov = Instr.Check then (false, false)
        else
          match (ins.op, fl.links.(i)) with
          | Instr.Jmp _, L_detect -> (false, false)
          | Instr.Jmp _, L_target t -> (e.(t), q.(t))
          | Instr.Jcc _, L_detect -> (nxt e i, nxt q i)
          | Instr.Jcc _, L_target t -> (e.(t) || nxt e i, q.(t) || nxt q i)
          | Instr.Ret, _ -> (in_entry i || ret_e i, true)
          | Instr.Call _, L_print -> (true, nxt q i)
          | Instr.Call _, L_detect -> (false, false)
          | Instr.Call _, L_call t ->
            (e.(t) || (q.(t) && nxt e i), q.(t) && nxt q i)
          | _ -> (nxt e i, nxt q i)
      in
      if ev <> e.(i) then begin
        e.(i) <- ev;
        changed := true
      end;
      if qv <> q.(i) then begin
        q.(i) <- qv;
        changed := true
      end
    done
  done;
  let sites = ref [] and eligible = ref 0 in
  for i = len - 1 downto 0 do
    let ins = fl.code.(i) in
    if ins.Instr.prov = Instr.Original && Instr.defs ins.op <> [] then begin
      incr eligible;
      if e.(i) then
        let fname, label, k = fl.pos.(i) in
        sites :=
          { u_static_index = i; u_func = fname; u_label = label;
            u_index = k; u_site = Printer.string_of_instr ins.op }
          :: !sites
    end
  done;
  (!sites, !eligible)

let run (profile : profile) (p : Prog.t) : report =
  let findings = Shadow.scan profile p in
  let sites, eligible = uncovered p in
  { r_findings = findings; r_uncovered = sites; r_eligible = eligible }

let count sev r =
  List.length
    (List.filter (fun (f : Shadow.finding) -> f.f_severity = sev) r.r_findings)

let errors r = count Shadow.Error r
let warnings r = count Shadow.Warning r

(* ------------------------------------------------------------------ *)
(* JSONL export.                                                       *)
(* ------------------------------------------------------------------ *)

let metrics_kind = "ferrum.lint.v1"

let record_fields =
  Metrics.
    [ field "kind" F_string; field "severity" F_string;
      field "func" F_string; field "label" F_string; field "index" F_int;
      field "static_index" F_int; field "site" F_string;
      field "message" F_string; field "hint" F_string ]

let rows (p : Prog.t) (r : report) : Json.t list =
  let fl = flatten p in
  let idx label k =
    Option.value ~default:(-1) (Hashtbl.find_opt fl.index_of (label, k))
  in
  let finding_row (f : Shadow.finding) =
    Json.Obj
      [ ("kind", Json.Str (Shadow.kind_name f.f_kind));
        ("severity", Json.Str (Shadow.severity_name f.f_severity));
        ("func", Json.Str f.f_func); ("label", Json.Str f.f_label);
        ("index", Json.Int f.f_index);
        ("static_index", Json.Int (idx f.f_label f.f_index));
        ("site", Json.Str f.f_site); ("message", Json.Str f.f_message);
        ("hint", Json.Str f.f_hint) ]
  in
  let site_row (s : site) =
    Json.Obj
      [ ("kind", Json.Str "uncovered-site"); ("severity", Json.Str "info");
        ("func", Json.Str s.u_func); ("label", Json.Str s.u_label);
        ("index", Json.Int s.u_index);
        ("static_index", Json.Int s.u_static_index);
        ("site", Json.Str s.u_site);
        ( "message",
          Json.Str
            "eligible site with a check-free path to an output or the \
             final return" );
        ("hint", Json.Str "") ]
  in
  List.map finding_row r.r_findings @ List.map site_row r.r_uncovered

let pp_report ppf (r : report) =
  let open Shadow in
  List.iter
    (fun (f : finding) ->
      Fmt.pf ppf "%-7s %s: %s:%s[%d]: %s@."
        (severity_name f.f_severity) (kind_name f.f_kind) f.f_func f.f_label
        f.f_index f.f_message;
      Fmt.pf ppf "        at `%s`; %s@." f.f_site f.f_hint)
    r.r_findings;
  Fmt.pf ppf
    "findings: %d error(s), %d warning(s), %d total; uncovered sites: \
     %d/%d eligible@."
    (errors r) (warnings r)
    (List.length r.r_findings)
    (List.length r.r_uncovered)
    r.r_eligible
