(** Control-flow graph over {!Ferrum_asm.Prog} functions.

    {!Ferrum_asm.Prog} blocks are labelled {e extended} blocks: the
    protection transforms emit mid-block conditional exits (checker
    [jne exit_function] branches, deferred pair verifications), so a
    textual block may have several side exits.  This module re-derives
    true basic blocks — leaders are the first instruction of every
    labelled block and every instruction following a control transfer —
    and connects them with fall-through and jump edges.  Analyses
    (the {!Dataflow} engine, {!Liveness}, {!Shadow}) and future passes
    work on this graph rather than re-deriving successor logic. *)

open Ferrum_asm

(** A basic block: a maximal single-entry straight-line run of
    instructions.  [label] and [offset] locate the first instruction
    inside the enclosing {!Prog.block} ([offset] in instructions). *)
type block = {
  id : int;  (** index into {!t.blocks} *)
  label : string;  (** enclosing [Prog.block] label *)
  offset : int;  (** first instruction's index within that block *)
  insns : Instr.ins array;
  succs : int list;  (** successor block ids, fall-through first *)
  preds : int list;
}

type t = {
  func : Prog.func;
  blocks : block array;  (** in layout order; entry is [blocks.(0)] *)
  by_label : (string, int) Hashtbl.t;  (** label -> leader block id *)
}

(** Build the CFG of a function.  Jumps to
    {!Prog.exit_function_label} are detector exits and produce no
    edge. *)
val build : Prog.func -> t

(** Block ids in reverse postorder from the entry (unreachable blocks
    appended at the end in layout order, so every id appears exactly
    once). *)
val reverse_postorder : t -> int array

(** Immediate dominator of every reachable block ([idom.(entry) =
    entry]); unreachable blocks map to [-1].  Cooper–Harvey–Kennedy
    iteration over the reverse postorder. *)
val dominators : t -> int array

(** [dominates t doms a b]: does block [a] dominate block [b]?
    (Reflexive; false when [b] is unreachable.) *)
val dominates : t -> int array -> int -> int -> bool

(** Ids of blocks unreachable from the entry. *)
val unreachable : t -> int list

(** Enclosing source position of instruction [k] of block [id], as
    (Prog-block label, index within that Prog block). *)
val position : t -> int -> int -> string * int
