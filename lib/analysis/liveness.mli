(** GPR liveness over {!Cfg}, built on the {!Dataflow} engine.

    This replaces the hand-rolled fixpoint in [lib/core/liveness.ml]
    (which is now a thin wrapper over this module) and adds the two
    refinements the static lint needs:

    - [?call_reads] overrides the conservative "a call reads every
      register" default.  The lint analyses the {e original} program
      embedded in a protected one, where treating calls as reading only
      the SysV argument/clobber set avoids flagging every spare
      acquisition that precedes a call.
    - [?keep] restricts the transfer function to a subset of
      instructions (others are identity), so liveness of the original
      program can be computed positionally {e inside} a protected
      function: instrumentation occupies indices but neither reads nor
      kills. *)

open Ferrum_asm

module GSet : Set.S with type elt = Reg.gpr

(** Registers an instruction reads (address components and the read
    half of read-modify-write destinations included). *)
val reads : ?call_reads:Reg.gpr list -> Instr.t -> GSet.t

(** Registers an instruction fully defines (64/32-bit writes kill;
    partial 8/16-bit merges do not). *)
val writes : Instr.t -> GSet.t

type t

(** Backward liveness to fixpoint over the function's CFG.  Defaults
    reproduce [lib/core/liveness.ml] exactly: calls read all GPRs, every
    instruction participates. *)
val analyze :
  ?call_reads:Reg.gpr list -> ?keep:(Instr.ins -> bool) -> Prog.func -> t

(** Live-in set immediately before instruction [k] of Prog block
    [label]; [None] for unknown positions. *)
val live_in_at : t -> label:string -> k:int -> GSet.t option

(** Is [r] dead immediately before instruction [k] of block [label]?
    Unknown positions are live (conservative). *)
val dead_at : t -> label:string -> k:int -> Reg.gpr -> bool

(** Live-out set of Prog block [label] ([empty] if unknown). *)
val block_live_out : t -> label:string -> GSet.t
